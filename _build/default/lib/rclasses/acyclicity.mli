(** Acyclicity-based termination classes.

    - {e Weak acyclicity} (Fagin–Kolaitis–Miller–Popa): no cycle through a
      special edge in the position graph.  Guarantees termination of every
      chase variant on every instance (hence fes).
    - {e Joint acyclicity} (Krötzsch–Rudolph): acyclicity of the dependency
      graph between existential variables, where [Ω(z)] — the positions a
      [z]-null can travel to — is computed as a least fixed point.  Strictly
      generalises weak acyclicity. *)

open Syntax

val weakly_acyclic : Rule.t list -> bool

val omega : Rule.t list -> Term.t -> Position.t list
(** [omega rules z]: the positions that nulls created for the existential
    variable [z] (of one of the rules) may reach. *)

val jointly_acyclic : Rule.t list -> bool
