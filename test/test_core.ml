(* Tests for lib/core and lib/modelfinder: structural measures, robust
   renaming/sequences/aggregation (Definitions 14-16), entailment engines
   (Theorem 1's skeleton), class probes, SAT solver and bounded model
   finding. *)

open Syntax
module CC = Corechase

let atom p args = Atom.make p args
let aset = Atomset.of_list
let a = Term.const "a"
let b = Term.const "b"

let aset_t : Atomset.t Alcotest.testable =
  Alcotest.testable Atomset.pp_verbose Atomset.equal

(* ------------------------------------------------------------------ *)
(* Measures *)

let test_measures_basic () =
  let s = aset [ atom "p" [ a; b ]; atom "q" [ a ] ] in
  Alcotest.(check int) "size" 2 (CC.Measures.size.CC.Measures.measure s);
  Alcotest.(check int) "terms" 2 (CC.Measures.term_count.CC.Measures.measure s);
  Alcotest.(check int) "treewidth" 1 (CC.Measures.treewidth.CC.Measures.measure s)

let test_measures_boundedness () =
  Alcotest.(check bool) "uniform" true
    (CC.Measures.uniformly_bounded_by 2 [ 1; 2; 2; 1 ]);
  Alcotest.(check bool) "not uniform" false
    (CC.Measures.uniformly_bounded_by 2 [ 1; 3 ]);
  Alcotest.(check (option int)) "uniform bound" (Some 3)
    (CC.Measures.uniform_bound [ 1; 3; 2 ]);
  Alcotest.(check (option int)) "empty" None (CC.Measures.uniform_bound [])

let test_measures_recurring_proxy () =
  (* treewidth dips back to 1 every 3 steps: recurringly 1-bounded *)
  let series = [ 1; 5; 9; 1; 6; 11; 1; 8 ] in
  Alcotest.(check bool) "recurring at k=1,w=3" true
    (CC.Measures.recurringly_bounded_proxy ~k:1 ~window:3 series);
  Alcotest.(check bool) "not recurring at k=1,w=2" false
    (CC.Measures.recurringly_bounded_proxy ~k:1 ~window:2 series)

let test_measures_monotone_growing () =
  Alcotest.(check bool) "growing" true
    (CC.Measures.is_monotone_growing [ 1; 1; 2; 3; 3 ]);
  Alcotest.(check bool) "flat is not growing" false
    (CC.Measures.is_monotone_growing [ 2; 2; 2 ]);
  Alcotest.(check bool) "dip disqualifies" false
    (CC.Measures.is_monotone_growing [ 1; 3; 2 ])

(* ------------------------------------------------------------------ *)
(* Robust renaming (Definition 14) *)

let test_robust_renaming_picks_smallest () =
  (* A = {p(x,y), p(y,y)} with rank(x) < rank(y); σ: x↦y is a retraction;
     ρ_σ must rename y back to x (the <X-smallest preimage). *)
  let x = Term.fresh_var ~hint:"x" () in
  let y = Term.fresh_var ~hint:"y" () in
  let s = aset [ atom "p" [ x; y ]; atom "p" [ y; y ] ] in
  let sigma = Subst.of_list [ (x, y) ] in
  let rho = CC.Robust.robust_renaming s sigma in
  Alcotest.(check bool) "y ↦ x" true
    (Term.equal (Subst.apply_term rho y) x);
  (* τ_σ = ρ_σ • σ maps the whole atomset onto the renamed retract *)
  let tau = CC.Robust.tau_of s sigma in
  Alcotest.(check aset_t) "τ_σ(A) = {p(x,x)}"
    (aset [ atom "p" [ x; x ] ])
    (Subst.apply tau s)

let test_robust_renaming_identity_on_untouched () =
  let x = Term.fresh_var ~hint:"x" () in
  let y = Term.fresh_var ~hint:"y" () in
  let z = Term.fresh_var ~hint:"z" () in
  let s = aset [ atom "p" [ x; y ]; atom "p" [ y; y ]; atom "q" [ z ] ] in
  let sigma = Subst.of_list [ (x, y) ] in
  let rho = CC.Robust.robust_renaming s sigma in
  Alcotest.(check bool) "z untouched" true
    (Term.equal (Subst.apply_term rho z) z)

let test_robust_renaming_rejects_non_retraction () =
  let x = Term.fresh_var ~hint:"x" () in
  let y = Term.fresh_var ~hint:"y" () in
  let s = aset [ atom "p" [ x; y ] ] in
  let swap = Subst.of_list [ (x, y); (y, x) ] in
  match CC.Robust.robust_renaming s swap with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "must reject non-retractions"

let test_robust_renaming_is_isomorphism_of_image () =
  let x = Term.fresh_var ~hint:"x" () in
  let y = Term.fresh_var ~hint:"y" () in
  let z = Term.fresh_var ~hint:"z" () in
  let s = aset [ atom "p" [ x; y ]; atom "p" [ y; z ]; atom "p" [ z; z ] ] in
  (* σ: x↦z, y↦z is a retraction onto {p(z,z)} *)
  let sigma = Subst.of_list [ (x, z); (y, z) ] in
  let rho = CC.Robust.robust_renaming s sigma in
  (* smallest preimage of z is x *)
  Alcotest.(check bool) "z ↦ x" true (Term.equal (Subst.apply_term rho z) x);
  let image = Subst.apply sigma s in
  Alcotest.(check bool) "ρ_σ iso on image" true
    (Homo.Morphism.isomorphic image (Subst.apply rho image))

(* ------------------------------------------------------------------ *)
(* Robust sequences on a handcrafted non-monotonic derivation *)

(* KB: facts {p(a)}, rules: r1: p(X) → ∃Y e(X,Y) ∧ p(Y); r2: p(X) → e(X,X).
   The core chase terminates after collapsing the spawned chain. *)
let core_wins_kb () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" () in
  let r1 =
    Rule.make ~name:"spawn" ~body:[ atom "p" [ x ] ]
      ~head:[ atom "e" [ x; y ]; atom "p" [ y ] ] ()
  in
  let x2 = Term.fresh_var ~hint:"X" () in
  let r2 =
    Rule.make ~name:"loop" ~body:[ atom "p" [ x2 ] ] ~head:[ atom "e" [ x2; x2 ] ] ()
  in
  Kb.of_lists ~facts:[ atom "p" [ a ] ] ~rules:[ r1; r2 ]

let test_robust_sequence_invariants_on_core_chase () =
  let run = Chase.Variants.core (core_wins_kb ()) in
  let r = CC.Robust.of_derivation run.Chase.Variants.derivation in
  (match CC.Robust.check_invariants r with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "same length as derivation"
    (Chase.Derivation.length run.Chase.Variants.derivation)
    (CC.Robust.length r)

let test_robust_g_isomorphic_to_f () =
  let run = Chase.Variants.core (core_wins_kb ()) in
  let d = run.Chase.Variants.derivation in
  let r = CC.Robust.of_derivation d in
  List.iteri
    (fun i st ->
      Alcotest.(check bool)
        (Printf.sprintf "G_%d ≅ F_%d" i i)
        true
        (Homo.Morphism.isomorphic st.CC.Robust.g
           (Chase.Derivation.instance_at d i)))
    (CC.Robust.steps r)

let test_robust_aggregation_terminating_case () =
  (* on a terminating core chase, D⊛ must be hom-equivalent to the final
     universal model (both are finitely universal models of K) *)
  let kb = core_wins_kb () in
  let run = Chase.Variants.core kb in
  let d = run.Chase.Variants.derivation in
  let r = CC.Robust.of_derivation d in
  let agg = CC.Robust.aggregation r in
  let final = (Chase.Derivation.last d).Chase.Derivation.instance in
  Alcotest.(check bool) "D⊛ ≡hom final" true
    (Homo.Morphism.hom_equivalent agg final);
  Alcotest.(check bool) "D⊛ is a model" true (Chase.is_model kb agg)

let test_robust_aggregation_monotonic_equals_natural () =
  (* for a monotonic (restricted) derivation the robust and natural
     aggregations coincide up to isomorphism *)
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" () in
  let kb =
    Kb.of_lists
      ~facts:[ atom "p" [ a; b ] ]
      ~rules:[ Rule.make ~name:"sym" ~body:[ atom "p" [ x; y ] ] ~head:[ atom "p" [ y; x ] ] () ]
  in
  let run = Chase.Variants.restricted kb in
  let d = run.Chase.Variants.derivation in
  let r = CC.Robust.of_derivation d in
  Alcotest.(check bool) "D⊛ ≅ D*" true
    (Homo.Morphism.isomorphic (CC.Robust.aggregation r)
       (Chase.Derivation.natural_aggregation d))

(* ------------------------------------------------------------------ *)
(* The paper's Section 8 narrative: robust aggregation of the staircase *)

let staircase_core_run budget_steps =
  Chase.Variants.core
    ~budget:{ Chase.Variants.max_steps = budget_steps; max_atoms = 2000 }
    (Zoo.Staircase.kb ())

let test_staircase_robust_aggregation_is_column () =
  let run = staircase_core_run 40 in
  let d = run.Chase.Variants.derivation in
  let r = CC.Robust.of_derivation d in
  (match CC.Robust.check_invariants r with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let agg = CC.Robust.aggregation r in
  (* Proposition 12.2 on the prefix: D⊛ inherits the derivation's
     treewidth bound (2); the prefix aggregation carries the in-flight
     frontier of the last instance, the stable part is the pure column *)
  Alcotest.(check bool) "tw(D⊛ prefix) ≤ 2" true
    (fst (Treewidth.best_effort agg) <= 2);
  let stable = CC.Robust.stable_aggregation r in
  Alcotest.(check bool) "tw(stable part) ≤ 1" true
    (fst (Treewidth.best_effort stable) <= 1);
  Alcotest.(check bool) "no grid in stable D⊛" false
    (Treewidth.Grid.contains ~n:2 stable);
  (* while the natural aggregation of the same derivation has a grid *)
  let nat = Chase.Derivation.natural_aggregation d in
  Alcotest.(check bool) "grid in D*" true (Treewidth.Grid.contains ~n:2 nat);
  (* and the stable part maps into the column generator (and receives its
     small prefix) *)
  let col = Zoo.Staircase.infinite_column_prefix ~height:30 in
  Alcotest.(check bool) "stable D⊛ ↪ Ĩ^h prefix" true
    (Homo.Hom.maps_to stable col.Zoo.Staircase.atoms);
  let small = Zoo.Staircase.infinite_column_prefix ~height:1 in
  Alcotest.(check bool) "Ĩ^h small prefix ↪ stable D⊛" true
    (Homo.Hom.maps_to small.Zoo.Staircase.atoms stable)

let test_staircase_robust_aggregation_grows_with_prefix () =
  let height agg =
    (* longest strict v-path = number of c-atoms + 1 in a column *)
    Atomset.fold
      (fun at n -> if Atom.pred at = "c" then n + 1 else n)
      agg 0
  in
  let h1 =
    height (CC.Robust.aggregation (CC.Robust.of_derivation (staircase_core_run 15).Chase.Variants.derivation))
  in
  let h2 =
    height (CC.Robust.aggregation (CC.Robust.of_derivation (staircase_core_run 45).Chase.Variants.derivation))
  in
  Alcotest.(check bool) "column grows with the prefix" true (h2 > h1)

let test_staircase_tau_stabilises () =
  (* Proposition 10 on the prefix: early G_i variables reach stable values:
     pushing through one more τ does not change the image of G_0 *)
  let run = staircase_core_run 40 in
  let r = CC.Robust.of_derivation run.Chase.Variants.derivation in
  let k = CC.Robust.length r - 1 in
  let img_pre = Subst.apply (CC.Robust.tau_trace r ~from_:0 ~to_:(k - 1)) (CC.Robust.g_at r 0) in
  let img = Subst.apply (CC.Robust.tau_trace r ~from_:0 ~to_:k) (CC.Robust.g_at r 0) in
  Alcotest.(check aset_t) "τ̄(G_0) stable at the end" img_pre img

let test_elevator_robust_invariants_and_bound () =
  (* the elevator's core chase has GROWING treewidth; Prop 12.2 still
     applies with the prefix maximum as the (recurring) bound: the robust
     aggregation cannot exceed it *)
  let run =
    Chase.Variants.core
      ~budget:{ Chase.Variants.max_steps = 30; max_atoms = 2000 }
      (Zoo.Elevator.kb ())
  in
  let d = run.Chase.Variants.derivation in
  let r = CC.Robust.of_derivation d in
  (match CC.Robust.check_invariants r with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let series =
    List.map
      (fun st -> Treewidth.upper_bound st.Chase.Derivation.instance)
      (Chase.Derivation.steps d)
  in
  let bound = List.fold_left max 0 series in
  let agg = CC.Robust.aggregation r in
  Alcotest.(check bool) "tw(D⊛ prefix) ≤ prefix bound" true
    (Treewidth.upper_bound agg <= bound)

let test_aggregation_upto_monotone () =
  let run = staircase_core_run 30 in
  let r = CC.Robust.of_derivation run.Chase.Variants.derivation in
  let k = CC.Robust.length r - 1 in
  (* ⊆-monotone in the truncation index, and the full index recovers the
     aggregation *)
  let rec check_mono i =
    if i >= k then ()
    else begin
      Alcotest.(check bool)
        (Printf.sprintf "upto %d ⊆ upto %d" i (i + 1))
        true
        (Atomset.subset
           (CC.Robust.aggregation_upto r i)
           (CC.Robust.aggregation_upto r (i + 1)));
      check_mono (i + 1)
    end
  in
  check_mono 0;
  Alcotest.(check bool) "upto K = aggregation" true
    (Atomset.equal (CC.Robust.aggregation_upto r k) (CC.Robust.aggregation r))

(* ------------------------------------------------------------------ *)
(* SAT solver *)

let test_sat_trivial () =
  (match Modelfinder.Sat.solve ~nvars:1 [ [ 1 ] ] with
  | Modelfinder.Sat.Sat m -> Alcotest.(check bool) "v1 true" true m.(1)
  | Modelfinder.Sat.Unsat -> Alcotest.fail "satisfiable");
  match Modelfinder.Sat.solve ~nvars:1 [ [ 1 ]; [ -1 ] ] with
  | Modelfinder.Sat.Unsat -> ()
  | Modelfinder.Sat.Sat _ -> Alcotest.fail "unsatisfiable"

let test_sat_chain_propagation () =
  (* implications 1→2→3→4 with unit 1 and ¬4: unsat *)
  let clauses = [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ]; [ -3; 4 ]; [ -4 ] ] in
  (match Modelfinder.Sat.solve ~nvars:4 clauses with
  | Modelfinder.Sat.Unsat -> ()
  | _ -> Alcotest.fail "unit chain must conflict");
  let clauses' = [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ] ] in
  match Modelfinder.Sat.solve ~nvars:3 clauses' with
  | Modelfinder.Sat.Sat m ->
      Alcotest.(check bool) "propagated" true (m.(1) && m.(2) && m.(3))
  | _ -> Alcotest.fail "satisfiable"

let test_sat_pigeonhole_2_into_1 () =
  (* two pigeons, one hole: p1 ∨ p1?  encode: x1 = pigeon1 in hole, x2 =
     pigeon2 in hole, both must be placed, not together *)
  match Modelfinder.Sat.solve ~nvars:2 [ [ 1 ]; [ 2 ]; [ -1; -2 ] ] with
  | Modelfinder.Sat.Unsat -> ()
  | _ -> Alcotest.fail "PHP(2,1) is unsat"

let test_sat_validates_models () =
  let clauses = [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3 ] ] in
  match Modelfinder.Sat.solve ~nvars:3 clauses with
  | Modelfinder.Sat.Sat m ->
      Alcotest.(check bool) "model checks" true
        (Modelfinder.Sat.is_satisfying clauses m)
  | _ -> Alcotest.fail "satisfiable"

let test_sat_range_check () =
  match Modelfinder.Sat.solve ~nvars:1 [ [ 2 ] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "literal out of range must raise"

let prop_sat_agrees_with_bruteforce =
  QCheck.Test.make ~name:"DPLL agrees with brute force" ~count:200
    QCheck.(
      make
        Gen.(
          let lit = map (fun (v, s) -> if s then v + 1 else -(v + 1)) (pair (int_bound 3) bool) in
          list_size (int_bound 8) (list_size (int_range 1 3) lit)))
    (fun clauses ->
      let nvars = 4 in
      let brute =
        let rec assigns v acc =
          if v > nvars then [ acc ]
          else assigns (v + 1) (true :: acc) @ assigns (v + 1) (false :: acc)
        in
        List.exists
          (fun bits ->
            let arr = Array.of_list (false :: List.rev bits) in
            Modelfinder.Sat.is_satisfying clauses arr)
          (assigns 1 [])
      in
      let dpll =
        match Modelfinder.Sat.solve ~nvars clauses with
        | Modelfinder.Sat.Sat m -> Modelfinder.Sat.is_satisfying clauses m
        | Modelfinder.Sat.Unsat -> false
      in
      brute = dpll)

(* ------------------------------------------------------------------ *)
(* Model finder *)

let test_modelfinder_finds_loop_model () =
  (* r(X,Y) → ∃Z r(Y,Z) over r(a,b): domain size 2 has the model with a
     cycle on b (or similar) *)
  let kb = Zoo.Classic.bts_not_fes () in
  match Modelfinder.find_model_upto ~max_domain:2 kb with
  | Some m ->
      Alcotest.(check bool) "verified model" true
        (Modelfinder.is_model_of kb m.Modelfinder.atoms)
  | None -> Alcotest.fail "a 2-element model exists"

let test_modelfinder_respects_negated_query () =
  let kb = Zoo.Classic.bts_not_fes () in
  (* forbid r(X,X): self-loop-free finite models of the chain rule exist
     only with a longer cycle: domain 1 impossible, 2 possible (2-cycle) *)
  let x = Term.fresh_var ~hint:"X" () in
  let q = Kb.Query.make [ atom "r" [ x; x ] ] in
  (* domain 1 cannot even hold the two constants: rejected *)
  (match Modelfinder.find_model ~domain_size:1 ~forbid:q kb with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "domain below the constant count must be rejected");
  match Modelfinder.find_model ~domain_size:2 ~forbid:q kb with
  | Some m ->
      Alcotest.(check bool) "no r(X,X)" false
        (Modelfinder.satisfies_query q m.Modelfinder.atoms);
      Alcotest.(check bool) "still a model" true
        (Modelfinder.is_model_of kb m.Modelfinder.atoms)
  | None -> Alcotest.fail "2-cycle model exists"

let test_modelfinder_unsat_when_query_entailed () =
  (* datalog: p(a,b) with symmetry entails p(b,a): no countermodel exists
     at any domain size *)
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" () in
  let kb =
    Kb.of_lists
      ~facts:[ atom "p" [ a; b ] ]
      ~rules:[ Rule.make ~name:"sym" ~body:[ atom "p" [ x; y ] ] ~head:[ atom "p" [ y; x ] ] () ]
  in
  let q = Kb.Query.make [ atom "p" [ b; a ] ] in
  Alcotest.(check bool) "no countermodel" true
    (Modelfinder.find_model_upto ~max_domain:3 ~forbid:q kb = None)

let test_modelfinder_nulls_in_facts () =
  (* facts with a null: p(a, Y): a model must embed it somewhere *)
  let y = Term.fresh_var ~hint:"Y" () in
  let kb = Kb.of_lists ~facts:[ atom "p" [ a; y ] ] ~rules:[] in
  match Modelfinder.find_model ~domain_size:1 kb with
  | Some m -> Alcotest.(check bool) "p(a,a)" true (Atomset.mem (atom "p" [ a; a ]) m.Modelfinder.atoms)
  | None -> Alcotest.fail "must find the collapse model"

let test_modelfinder_domain_too_small () =
  let kb = Kb.of_lists ~facts:[ atom "p" [ a; b ] ] ~rules:[] in
  match Modelfinder.find_model ~domain_size:1 kb with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "2 constants cannot fit in domain 1"

(* ------------------------------------------------------------------ *)
(* Entailment (Theorem 1's skeleton) *)

let test_entailment_via_chase_positive () =
  let kb = Zoo.Staircase.kb () in
  let x = Term.fresh_var ~hint:"X" () in
  let q = Kb.Query.make [ atom "c" [ x ] ] in
  Alcotest.(check bool) "K_h ⊨ ∃X c(X)" true
    (CC.Entailment.via_chase
       ~budget:{ Chase.Variants.max_steps = 15; max_atoms = 500 }
       kb q
    = CC.Entailment.Entailed)

let test_entailment_via_chase_terminating_negative () =
  let kb = Zoo.Classic.transitive_closure () in
  let q = Kb.Query.make [ atom "e" [ b; a ] ] in
  Alcotest.(check bool) "no backward edge" true
    (CC.Entailment.via_chase kb q = CC.Entailment.Not_entailed)

let test_entailment_via_countermodel () =
  let kb = Zoo.Staircase.kb () in
  (* unused predicate: trivially not entailed, and the collapse model
     witnesses it *)
  let x = Term.fresh_var ~hint:"X" () in
  let q = Kb.Query.make [ atom "g" [ x ] ] in
  Alcotest.(check bool) "countermodel found" true
    (CC.Entailment.via_countermodel ~max_domain:1 kb q
    = CC.Entailment.Not_entailed)

let test_entailment_decide_combines () =
  let kb = Zoo.Classic.bts_not_fes () in
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" () in
  (* entailed: ∃XY r(X,Y) *)
  let q1 = Kb.Query.make [ atom "r" [ x; y ] ] in
  Alcotest.(check bool) "positive" true
    (CC.Entailment.decide
       ~budget:{ Chase.Variants.max_steps = 10; max_atoms = 100 }
       kb q1
    = CC.Entailment.Entailed);
  (* not entailed, needs the countermodel side (chase diverges):
     ∃X r(X,X) *)
  let x2 = Term.fresh_var ~hint:"X" () in
  let q2 = Kb.Query.make [ atom "r" [ x2; x2 ] ] in
  Alcotest.(check bool) "negative via countermodel" true
    (CC.Entailment.decide
       ~budget:{ Chase.Variants.max_steps = 10; max_atoms = 100 }
       ~max_domain:3 kb q2
    = CC.Entailment.Not_entailed)

let test_entailment_unknown_when_budgets_small () =
  let kb = Zoo.Staircase.kb () in
  (* a query true only deep in the chase and with no small countermodel
     decidable at domain 1-2?  Use the v-2-path: entailed eventually *)
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" ()
  and z = Term.fresh_var ~hint:"Z" () in
  let q = Kb.Query.make [ atom "v" [ x; y ]; atom "v" [ y; z ]; atom "c" [ y ]; atom "c" [ z ] ] in
  match
    CC.Entailment.via_chase
      ~budget:{ Chase.Variants.max_steps = 1; max_atoms = 50 }
      kb q
  with
  | CC.Entailment.Unknown _ -> ()
  | v -> Alcotest.failf "expected unknown, got %a" CC.Entailment.pp_verdict v

let test_entailment_proposition9_on_column () =
  (* Proposition 9 experimentally: the finitely universal Ĩ^h decides the
     same queries as the universal staircase prefix *)
  let col = (Zoo.Staircase.infinite_column_prefix ~height:8).Zoo.Staircase.atoms in
  let stair = (Zoo.Staircase.universal_model_prefix ~cols:8).Zoo.Staircase.atoms in
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" () in
  let queries =
    [
      Kb.Query.make [ atom "c" [ x ] ];
      Kb.Query.make [ atom "f" [ x ]; atom "h" [ x; x ] ];
      Kb.Query.make [ atom "v" [ x; y ]; atom "c" [ y ] ];
      Kb.Query.make [ atom "f" [ x ]; atom "c" [ x ] ];
    ]
  in
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Fmt.str "agree on %a" Kb.Query.pp q)
        (CC.Entailment.holds_in q stair)
        (CC.Entailment.holds_in q col))
    queries

let test_certain_answers_terminating () =
  let kb = Zoo.Classic.transitive_closure () in
  let x = Term.fresh_var ~hint:"X" () in
  let q = Kb.Query.make ~answers:[ x ] [ atom "e" [ a; x ] ] in
  match CC.Entailment.certain_answers kb q with
  | CC.Entailment.Complete tuples ->
      (* e(a,b), e(a,c), e(a,d) after closure *)
      Alcotest.(check int) "three reachable" 3 (List.length tuples);
      Alcotest.(check bool) "b among them" true (List.mem [ b ] tuples)
  | CC.Entailment.Sound _ -> Alcotest.fail "datalog chase terminates"

let test_certain_answers_nulls_filtered () =
  (* r(X,Y) → ∃Z r(Y,Z) over r(a,b): answers to r(a,X) are certain only
     for X=b; the invented successors are nulls *)
  let kb = Zoo.Classic.bts_not_fes () in
  let x = Term.fresh_var ~hint:"X" () in
  let q = Kb.Query.make ~answers:[ x ] [ atom "r" [ a; x ] ] in
  match
    CC.Entailment.certain_answers
      ~budget:{ Chase.Variants.max_steps = 15; max_atoms = 200 }
      kb q
  with
  | CC.Entailment.Sound tuples ->
      Alcotest.(check (list (list (Alcotest.testable Term.pp_debug Term.equal))))
        "only the constant answer" [ [ b ] ] tuples
  | CC.Entailment.Complete _ -> Alcotest.fail "this chase diverges"

let test_certain_answers_rejects_boolean () =
  let kb = Zoo.Classic.transitive_closure () in
  let q = Kb.Query.make [ atom "e" [ a; b ] ] in
  match CC.Entailment.certain_answers kb q with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Boolean queries must be rejected"

let test_ucq_entailment () =
  let kb = Zoo.Classic.transitive_closure () in
  let x = Term.fresh_var ~hint:"X" () in
  (* e(d,X) ∨ e(a,d): second disjunct holds after closure *)
  let u =
    Ucq.make
      [
        Kb.Query.make [ atom "e" [ Term.const "d"; x ] ];
        Kb.Query.make [ atom "e" [ a; Term.const "d" ] ];
      ]
  in
  Alcotest.(check bool) "entailed via second disjunct" true
    (CC.Entailment.decide_ucq kb u = CC.Entailment.Entailed);
  let x2 = Term.fresh_var ~hint:"X" () in
  let u2 =
    Ucq.make
      [
        Kb.Query.make [ atom "e" [ Term.const "d"; x2 ] ];
        Kb.Query.make [ atom "e" [ b; a ] ];
      ]
  in
  Alcotest.(check bool) "neither disjunct entailed" true
    (CC.Entailment.decide_ucq kb u2 = CC.Entailment.Not_entailed)

let test_ucq_countermodel_refutes_all_disjuncts () =
  (* on a diverging KB, the countermodel must avoid BOTH disjuncts at
     once: r(X,X) ∨ loop2 where loop2 = r(X,Y) ∧ r(Y,X).  A 2-cycle
     refutes the first but not the second; a 3-cycle refutes both. *)
  let kb = Zoo.Classic.bts_not_fes () in
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" () in
  let u =
    Ucq.make
      [
        Kb.Query.make [ atom "r" [ x; x ] ];
        (let x2 = Term.fresh_var () and y2 = Term.fresh_var () in
         Kb.Query.make [ atom "r" [ x2; y2 ]; atom "r" [ y2; x2 ] ]);
      ]
  in
  ignore y;
  Alcotest.(check bool) "3-cycle countermodel found" true
    (CC.Entailment.decide_ucq
       ~budget:{ Chase.Variants.max_steps = 10; max_atoms = 100 }
       ~max_domain:3 kb u
    = CC.Entailment.Not_entailed)

let test_ucq_make_rejects_empty () =
  match Ucq.make [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty UCQ must be rejected"

let test_inconsistency_checking () =
  let kb = Zoo.Classic.transitive_closure () in
  let x = Term.fresh_var ~hint:"X" () in
  (* violated constraint: there is an edge out of a *)
  let bad = Kb.Query.make [ atom "e" [ a; x ] ] in
  (* satisfied constraint: no self-loop *)
  let fine = Kb.Query.make [ atom "e" [ x; x ] ] in
  Alcotest.(check bool) "violation detected" true
    (CC.Entailment.inconsistent ~constraints:[ bad ] kb = CC.Entailment.Entailed);
  Alcotest.(check bool) "consistent KB passes" true
    (CC.Entailment.inconsistent ~constraints:[ fine ] kb
    = CC.Entailment.Not_entailed)

(* ------------------------------------------------------------------ *)
(* Probes *)

let test_probes_critical_instance () =
  let kb = Zoo.Classic.transitive_closure () in
  let ci = CC.Probes.critical_instance (Kb.rules kb) in
  (* predicates e/2 over constants {star,a?}: rules of transitive closure
     have no constants, so only star: e(star,star) *)
  Alcotest.(check int) "one atom" 1 (Atomset.cardinal ci)

let test_probes_fes () =
  (match CC.Probes.fes_probe (Kb.rules (Zoo.Classic.transitive_closure ())) with
  | CC.Probes.Terminates _ -> ()
  | CC.Probes.No_verdict _ -> Alcotest.fail "datalog is fes");
  match
    CC.Probes.fes_probe
      ~budget:{ Chase.Variants.max_steps = 30; max_atoms = 300 }
      (Kb.rules (Zoo.Classic.bts_not_fes ()))
  with
  | CC.Probes.No_verdict _ -> ()
  | CC.Probes.Terminates _ ->
      (* on the critical instance r(star,star) the chase terminates at
         once (the loop satisfies everything): the probe is only a
         heuristic — accept either outcome but record it *)
      ()

let test_probes_tw_profile_staircase_vs_elevator () =
  let bud = { Chase.Variants.max_steps = 35; max_atoms = 2000 } in
  let stair = CC.Probes.tw_profile ~budget:bud ~variant:`Core (Zoo.Staircase.kb ()) in
  Alcotest.(check bool) "staircase core profile ≤ 2" true
    (stair.CC.Probes.max_seen <= 2);
  let elev = CC.Probes.tw_profile ~budget:{ Chase.Variants.max_steps = 60; max_atoms = 2000 } ~variant:`Core (Zoo.Elevator.kb ()) in
  Alcotest.(check bool) "elevator core profile ≥ 2" true
    (elev.CC.Probes.max_seen >= 2)

let test_finitely_universal_on_prefixes () =
  let col3 = (Zoo.Staircase.infinite_column_prefix ~height:3).Zoo.Staircase.atoms in
  let col5 = (Zoo.Staircase.infinite_column_prefix ~height:5).Zoo.Staircase.atoms in
  let stair = (Zoo.Staircase.universal_model_prefix ~cols:8).Zoo.Staircase.atoms in
  Alcotest.(check bool) "column prefixes universal wrt staircase" true
    (CC.finitely_universal_on_prefixes [ col3; col5 ] [ stair ])

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_sat_agrees_with_bruteforce ]

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "core.measures",
      [
        tc "basic" test_measures_basic;
        tc "boundedness" test_measures_boundedness;
        tc "recurring proxy" test_measures_recurring_proxy;
        tc "monotone growing" test_measures_monotone_growing;
      ] );
    ( "core.robust.renaming",
      [
        tc "picks <X-smallest preimage" test_robust_renaming_picks_smallest;
        tc "identity on untouched" test_robust_renaming_identity_on_untouched;
        tc "rejects non-retraction" test_robust_renaming_rejects_non_retraction;
        tc "isomorphism on image" test_robust_renaming_is_isomorphism_of_image;
      ] );
    ( "core.robust.sequence",
      [
        tc "invariants on core chase" test_robust_sequence_invariants_on_core_chase;
        tc "G_i ≅ F_i" test_robust_g_isomorphic_to_f;
        tc "terminating aggregation" test_robust_aggregation_terminating_case;
        tc "monotonic = natural" test_robust_aggregation_monotonic_equals_natural;
      ] );
    ( "core.robust.staircase",
      [
        tc "D⊛ is the column (Section 8)" test_staircase_robust_aggregation_is_column;
        tc "column grows with prefix" test_staircase_robust_aggregation_grows_with_prefix;
        tc "τ stabilises (Prop 10)" test_staircase_tau_stabilises;
        tc "elevator: invariants & Prop 12.2 bound" test_elevator_robust_invariants_and_bound;
        tc "aggregation_upto monotone" test_aggregation_upto_monotone;
      ] );
    ( "modelfinder.sat",
      [
        tc "trivial" test_sat_trivial;
        tc "unit chains" test_sat_chain_propagation;
        tc "pigeonhole" test_sat_pigeonhole_2_into_1;
        tc "model validation" test_sat_validates_models;
        tc "range check" test_sat_range_check;
      ] );
    ( "modelfinder.search",
      [
        tc "finds loop model" test_modelfinder_finds_loop_model;
        tc "negated query" test_modelfinder_respects_negated_query;
        tc "no countermodel when entailed" test_modelfinder_unsat_when_query_entailed;
        tc "nulls in facts" test_modelfinder_nulls_in_facts;
        tc "domain too small" test_modelfinder_domain_too_small;
      ] );
    ( "core.entailment",
      [
        tc "chase positive" test_entailment_via_chase_positive;
        tc "chase negative (terminated)" test_entailment_via_chase_terminating_negative;
        tc "countermodel negative" test_entailment_via_countermodel;
        tc "decide combines both" test_entailment_decide_combines;
        tc "unknown on tiny budgets" test_entailment_unknown_when_budgets_small;
        tc "Proposition 9 on the column" test_entailment_proposition9_on_column;
        tc "certain answers (terminating)" test_certain_answers_terminating;
        tc "certain answers filter nulls" test_certain_answers_nulls_filtered;
        tc "certain answers reject Boolean" test_certain_answers_rejects_boolean;
        tc "inconsistency checking" test_inconsistency_checking;
        tc "UCQ entailment" test_ucq_entailment;
        tc "UCQ countermodel refutes all disjuncts" test_ucq_countermodel_refutes_all_disjuncts;
        tc "UCQ rejects empty union" test_ucq_make_rejects_empty;
      ] );
    ( "core.probes",
      [
        tc "critical instance" test_probes_critical_instance;
        tc "fes probes" test_probes_fes;
        tc "tw profiles" test_probes_tw_profile_staircase_vs_elevator;
        tc "finitely universal prefixes" test_finitely_universal_on_prefixes;
      ] );
    ("core.properties", qcheck_cases);
  ]
