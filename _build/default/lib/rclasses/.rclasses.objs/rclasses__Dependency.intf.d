lib/rclasses/dependency.mli: Rule Syntax
