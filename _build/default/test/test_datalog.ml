(* Tests for the datalog saturation engine (naive and semi-naive). *)

open Syntax

let atom p args = Atom.make p args

let chain_facts n =
  List.init n (fun i ->
      atom "e" [ Term.const (Printf.sprintf "n%d" i);
                 Term.const (Printf.sprintf "n%d" (i + 1)) ])

let tc_rules () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" ()
  and z = Term.fresh_var ~hint:"Z" () in
  [
    Rule.make ~name:"trans"
      ~body:[ atom "e" [ x; y ]; atom "e" [ y; z ] ]
      ~head:[ atom "e" [ x; z ] ]
      ();
  ]

let test_transitive_closure_count () =
  let n = 8 in
  let sat = Chase.Datalog.saturate (tc_rules ()) (Atomset.of_list (chain_facts n)) in
  (* closure of a chain of n edges: n(n+1)/2 pairs *)
  Alcotest.(check int) "closure size" (n * (n + 1) / 2) (Atomset.cardinal sat)

let test_strategies_agree () =
  let facts = Atomset.of_list (chain_facts 6) in
  let s1 = Chase.Datalog.saturate ~strategy:`Naive (tc_rules ()) facts in
  let s2 = Chase.Datalog.saturate ~strategy:`Seminaive (tc_rules ()) facts in
  Alcotest.(check bool) "same fixpoint" true (Atomset.equal s1 s2)

let test_agrees_with_restricted_chase () =
  let kb =
    Kb.make ~facts:(Atomset.of_list (chain_facts 5)) ~rules:(tc_rules ())
  in
  let run = Chase.Variants.restricted kb in
  let chase_final =
    (Chase.Derivation.last run.Chase.Variants.derivation).Chase.Derivation.instance
  in
  let sat = Chase.Datalog.saturate (Kb.rules kb) (Kb.facts kb) in
  Alcotest.(check bool) "saturation = chase fixpoint" true
    (Atomset.equal chase_final sat)

let test_rejects_existentials () =
  let x = Term.fresh_var () and y = Term.fresh_var () in
  let r = Rule.make ~body:[ atom "p" [ x ] ] ~head:[ atom "q" [ x; y ] ] () in
  match Chase.Datalog.saturate [ r ] (Atomset.of_list [ atom "p" [ Term.const "a" ] ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "existential rules must be rejected"

let test_rounds_monotone () =
  let rs =
    Chase.Datalog.rounds (tc_rules ()) (Atomset.of_list (chain_facts 6))
  in
  let rec mono = function
    | a :: (b :: _ as rest) -> Atomset.subset a b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "rounds grow" true (mono rs);
  Alcotest.(check bool) "at least two rounds" true (List.length rs >= 2)

let test_random_datalog_agrees () =
  List.iter
    (fun kb ->
      let sat = Chase.Datalog.saturate (Kb.rules kb) (Kb.facts kb) in
      let run = Chase.Variants.restricted kb in
      let final =
        (Chase.Derivation.last run.Chase.Variants.derivation).Chase.Derivation.instance
      in
      Alcotest.(check bool) "agrees on random datalog" true
        (Atomset.equal sat final))
    (Zoo.Randomkb.generate_many ~seed:47 ~count:10 Zoo.Randomkb.datalog)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "datalog",
      [
        tc "transitive closure" test_transitive_closure_count;
        tc "strategies agree" test_strategies_agree;
        tc "agrees with restricted chase" test_agrees_with_restricted_chase;
        tc "rejects existentials" test_rejects_existentials;
        tc "rounds monotone" test_rounds_monotone;
        tc "random datalog agrees" test_random_datalog_agrees;
      ] );
  ]
