examples/staircase_tour.mli:
