lib/zoo/classic.ml: Atom Kb Rule Syntax Term
