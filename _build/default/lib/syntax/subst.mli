(** Substitutions (Section 2).

    A substitution of a set of variables [Y ⊆ Δ_V] is a mapping [σ : Y → Δ_T].
    Application to a term uses the extension [σ⁺] that is the identity
    outside [Y].  We implement the paper's operations verbatim:

    - composition [σ' • σ]  (Y ↦ σ'⁺(σ⁺(Y)), defined on [dom σ ∪ dom σ']);
    - compatibility (two substitutions mapping shared variables identically);
    - the classification of a substitution as an endomorphism / retraction
      of a given atomset (Section 2's notions are properties of the pair
      (σ, A), so they live here as predicates).

    Substitutions are immutable persistent maps keyed by variable rank. *)

type t

val empty : t

val is_empty : t -> bool

val singleton : Term.t -> Term.t -> t
(** [singleton x t] maps variable [x] to [t].
    @raise Invalid_argument if [x] is a constant. *)

val of_list : (Term.t * Term.t) list -> t
(** @raise Invalid_argument if a key is a constant or bound twice to
    different images. *)

val to_list : t -> (Term.t * Term.t) list
(** Bindings sorted by variable rank. *)

val add : Term.t -> Term.t -> t -> t
(** [add x t σ] binds [x ↦ t].  Any previous binding of [x] is replaced. *)

val find : Term.t -> t -> Term.t option
(** The raw binding of a variable, [None] if unbound (or a constant). *)

val mem : Term.t -> t -> bool

val domain : t -> Term.t list
(** The variables the substitution is defined on, sorted by rank. *)

val range : t -> Term.t list
(** Distinct image terms, sorted. *)

val cardinal : t -> int

val apply_term : t -> Term.t -> Term.t
(** [σ⁺(t)]: the binding if [t] is a bound variable, [t] itself otherwise. *)

val apply_atom : t -> Atom.t -> Atom.t

val apply : t -> Atomset.t -> Atomset.t
(** [σ(A) = { σ(at) | at ∈ A }]. *)

val compose : t -> t -> t
(** [compose s' s] is the paper's [σ' • σ]: defined on [dom s ∪ dom s'],
    mapping [Y ↦ s'⁺(s⁺(Y))]. *)

val compatible : t -> t -> bool
(** Two substitutions are compatible if they map shared variables to the
    same terms. *)

val merge : t -> t -> t option
(** Union of two substitutions when compatible, [None] otherwise. *)

val restrict : Term.t list -> t -> t
(** Restriction of the substitution to the given variables. *)

val restrict_to_vars_of : Atomset.t -> t -> t
(** Restriction to the variables of an atomset. *)

val equal : t -> t -> bool

val is_identity_on : Term.t list -> t -> bool
(** [true] iff every listed term is mapped to itself (constants trivially
    are). *)

val is_endomorphism_of : Atomset.t -> t -> bool
(** [σ(A) ⊆ A]. *)

val is_retraction_of : Atomset.t -> t -> bool
(** Section 2: a retraction of [A] is an endomorphism [σ] whose restriction
    to [terms(σ(A))] is the identity. *)

val is_injective_on : Term.t list -> t -> bool
(** No two listed terms share an image under [σ⁺]. *)

val inverse_on : Term.t list -> t -> t option
(** [inverse_on ts σ]: when [σ⁺] is injective on [ts] and maps every listed
    term to a variable, the substitution sending each image back to its
    source.  [None] otherwise.  Used to invert isomorphisms and
    automorphisms. *)

val pp : t Fmt.t

val pp_debug : t Fmt.t
