lib/homo/core.mli: Atomset Subst Syntax
