lib/rclasses/dependency.ml: Array Atomset Chase Fun Homo List Printf Rule String Subst Syntax Term
