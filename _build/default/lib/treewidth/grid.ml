open Syntax

let cooccur a t1 t2 =
  Atomset.exists (fun at -> Atom.mem_term t1 at && Atom.mem_term t2 at) a

let check naming n a =
  let terms = Array.init n (fun i -> Array.init n (fun j -> naming (i + 1) (j + 1))) in
  let all = Array.to_list terms |> Array.concat |> Array.to_list in
  let distinct = List.sort_uniq Term.compare all in
  List.length distinct = n * n
  &&
  let ok = ref true in
  for k = 0 to n - 2 do
    for l = 0 to n - 1 do
      if not (cooccur a terms.(k).(l) terms.(k + 1).(l)) then ok := false;
      if not (cooccur a terms.(l).(k) terms.(l).(k + 1)) then ok := false
    done
  done;
  !ok

(* Encode the Gaifman adjacency of [a] as a symmetric binary predicate and
   search for the grid pattern with the injective homomorphism solver. *)
let adjacency_atomset a =
  let edges = ref Atomset.empty in
  let add t1 t2 =
    edges := Atomset.add (Atom.make "adj" [ t1; t2 ]) !edges;
    edges := Atomset.add (Atom.make "adj" [ t2; t1 ]) !edges
  in
  Atomset.iter
    (fun at ->
      let ts = Atom.term_set at in
      let rec pairs = function
        | [] -> ()
        | t :: rest ->
            List.iter (add t) rest;
            pairs rest
      in
      pairs ts)
    a;
  !edges

let grid_pattern n =
  let cells = Array.init n (fun _ -> Array.init n (fun _ -> Term.fresh_var ~hint:"g" ())) in
  let atoms = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i + 1 < n then
        atoms := Atom.make "adj" [ cells.(i).(j); cells.(i + 1).(j) ] :: !atoms;
      if j + 1 < n then
        atoms := Atom.make "adj" [ cells.(i).(j); cells.(i).(j + 1) ] :: !atoms
    done
  done;
  (cells, Atomset.of_list !atoms)

let find ~n a =
  if n <= 0 then invalid_arg "Grid.find: n must be positive";
  if n = 1 then
    match Atomset.terms a with
    | [] -> None
    | t :: _ -> Some [| [| t |] |]
  else
    let adj = adjacency_atomset a in
    let cells, pattern = grid_pattern n in
    match Homo.Hom.find ~injective:true pattern (Homo.Instance.of_atomset adj) with
    | None -> None
    | Some h ->
        Some (Array.map (Array.map (Subst.apply_term h)) cells)

let contains ~n a = match find ~n a with Some _ -> true | None -> false

let lower_bound_via_grids ?(max_n = 3) a =
  let rec go best n =
    if n > max_n then best
    else if contains ~n a then go n (n + 1)
    else best
  in
  go 0 1
