lib/zoo/randomkb.mli: Kb Syntax
