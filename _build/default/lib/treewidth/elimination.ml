module ISet = Set.Make (Int)

(* Working state: alive adjacency sets that we mutate as we eliminate. *)
type state = { adj : ISet.t array; mutable alive : ISet.t }

let state_of_graph g =
  let n = Graph.vertex_count g in
  {
    adj = Array.init n (fun v -> ISet.of_list (Graph.neighbors g v));
    alive = ISet.of_list (List.init n Fun.id);
  }

let live_neighbors st v = ISet.inter st.adj.(v) st.alive

let eliminate st v =
  let nb = live_neighbors st v in
  ISet.iter
    (fun u -> st.adj.(u) <- ISet.union st.adj.(u) (ISet.remove u nb))
    nb;
  st.alive <- ISet.remove v st.alive;
  nb

let width_of_order g order =
  let st = state_of_graph g in
  Array.fold_left
    (fun acc v ->
      let nb = eliminate st v in
      max acc (ISet.cardinal nb))
    (-1) order

let decomposition_of_order primal order =
  let g = primal.Primal.graph in
  let n = Graph.vertex_count g in
  let st = state_of_graph g in
  let bags = Array.make n [] in
  let position = Array.make n 0 in
  Array.iteri (fun i v -> position.(v) <- i) order;
  let parents = ref [] in
  Array.iteri
    (fun i v ->
      let nb = eliminate st v in
      bags.(i) <- v :: ISet.elements nb;
      (* link to the bag of the first-eliminated later neighbour *)
      match ISet.min_elt_opt (ISet.map (fun u -> position.(u)) nb) with
      | Some j -> parents := (i, j) :: !parents
      | None -> ())
    order;
  let to_terms vs = List.map (Primal.term_of_vertex primal) vs in
  { Decomposition.bags = Array.map to_terms bags; edges = !parents }

let greedy_order score g =
  let n = Graph.vertex_count g in
  let st = state_of_graph g in
  let order = Array.make n 0 in
  for i = 0 to n - 1 do
    let best =
      ISet.fold
        (fun v best ->
          let s = score st v in
          match best with
          | Some (bs, _) when bs <= s -> best
          | _ -> Some (s, v))
        st.alive None
    in
    match best with
    | Some (_, v) ->
        order.(i) <- v;
        ignore (eliminate st v)
    | None -> assert false
  done;
  order

let min_degree_order g =
  greedy_order (fun st v -> ISet.cardinal (live_neighbors st v)) g

let fill_count st v =
  let nb = ISet.elements (live_neighbors st v) in
  let rec go acc = function
    | [] -> acc
    | u :: rest ->
        let missing =
          List.length (List.filter (fun w -> not (ISet.mem w st.adj.(u))) rest)
        in
        go (acc + missing) rest
  in
  go 0 nb

let min_fill_order g = greedy_order fill_count g
