(** Structural measures and boundedness of sequences (Section 5).

    A structural measure maps instances to [ℕ ∪ {∞}]; computationally we
    only evaluate them on finite instances, where they are finite, so the
    codomain here is [int].  A sequence [(F_i)] is {e uniformly μ-bounded}
    when some [k] bounds every [μ(F_i)], and {e recurringly μ-bounded} when
    some [k] is reached again and again beyond every index.

    On finite prefixes, uniform boundedness is checkable outright; recurring
    boundedness is approximated by a sliding-window proxy (every window of
    a given length contains an element ≤ k), which experiments combine with
    the known closed forms of the paper's sequences. *)

open Syntax

type t = { name : string; measure : Atomset.t -> int }

val size : t
(** Number of atoms (the measure for which Deutsch–Nash–Remmel's
    equivalence holds). *)

val term_count : t

val treewidth : t
(** Exact treewidth when the instance has ≤ 62 terms, min-fill upper bound
    beyond. *)

val treewidth_upper : t
(** Min-fill upper bound (cheap, never below the true value). *)

val pathwidth : t
(** Pathwidth (vertex separation): exact up to 25 terms, greedy upper
    bound beyond.  Always ≥ treewidth; the paper's Section 5 statements
    about structural measures apply to it verbatim, and the grid-based
    counterexamples defeat it as well (pw(grid) ≥ tw(grid)). *)

val series : t -> Atomset.t list -> int list

val uniformly_bounded_by : int -> int list -> bool

val uniform_bound : int list -> int option
(** The maximum of the series — [None] on the empty series. *)

val recurringly_bounded_proxy : k:int -> window:int -> int list -> bool
(** Every length-[window] window of the series contains a value ≤ [k].
    A finite-prefix proxy for recurring μ-boundedness. *)

val is_monotone_growing : int list -> bool
(** Never decreases and strictly increases somewhere — the signature of the
    inflating elevator's treewidth series (Proposition 8.4). *)
