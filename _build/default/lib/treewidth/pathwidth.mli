(** Pathwidth, as a further instance of Section 5's generic structural
    measures.

    We compute the vertex separation number (equal to pathwidth): for a
    linear order [v_1 … v_n], the cost is the maximum over prefixes [S] of
    the number of vertices in [S] with a neighbour outside [S]; pathwidth
    is the minimum cost over all orders.  Solved by branch-and-bound with
    memoisation on the placed-vertex set (bitmask), so graphs up to
    {!max_vertices} vertices; a greedy order provides the incumbent and a
    fallback upper bound beyond the limit.

    Note [tw(G) ≤ pw(G)] always. *)

val max_vertices : int
(** 25: the memoisation is per-subset. *)

val exact : Graph.t -> int
(** Exact pathwidth ([-1] for the empty graph).
    @raise Invalid_argument beyond {!max_vertices}. *)

val upper_bound : Graph.t -> int
(** Greedy (min-boundary-growth) order cost — sound for any size. *)

val of_atomset : Syntax.Atomset.t -> int * bool
(** Pathwidth of the Gaifman graph: exact when small (flag [true]),
    greedy upper bound otherwise. *)
