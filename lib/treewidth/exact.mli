(** Exact treewidth by branch-and-bound over elimination orderings
    (QuickBB-style), for graphs of at most 62 vertices (bitmask-encoded
    states).

    Prunings used: greedy min-fill upper bound as the incumbent, MMD lower
    bound at every node, the simplicial-vertex rule (a vertex whose live
    neighbourhood is a clique can always be eliminated first without loss),
    and memoisation on the set of eliminated vertices (the eliminated graph
    is independent of the elimination order inside the set).

    When the {!Par} pool is active, the root branches are explored as
    independent tasks sharing only an [Atomic] incumbent (DESIGN.md §10);
    the branch-and-bound argument makes the returned width exact — and
    hence equal to the sequential answer — under any schedule. *)

val treewidth : Graph.t -> int
(** Exact treewidth ([-1] for the empty graph).
    @raise Invalid_argument on graphs with more than 62 vertices. *)

val max_vertices : int
(** The 62-vertex limit. *)

