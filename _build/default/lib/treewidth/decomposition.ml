open Syntax
module TS = Set.Make (Term)

type t = { bags : Term.t list array; edges : (int * int) list }

let width d =
  Array.fold_left
    (fun acc bag -> max acc (List.length (List.sort_uniq Term.compare bag) - 1))
    (-1) d.bags

(* Union-find acyclicity & bounds check. *)
let is_tree d =
  let n = Array.length d.bags in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let ok = ref true in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n || u = v then ok := false
      else
        let ru = find u and rv = find v in
        if ru = rv then ok := false (* cycle *) else parent.(ru) <- rv)
    d.edges;
  !ok

let covers aset d =
  let bag_sets = Array.map TS.of_list d.bags in
  Atomset.for_all
    (fun a ->
      let ts = Atom.term_set a in
      Array.exists (fun bag -> List.for_all (fun t -> TS.mem t bag) ts) bag_sets)
    aset

let connected d =
  let n = Array.length d.bags in
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    d.edges;
  let bag_sets = Array.map TS.of_list d.bags in
  let terms =
    Array.fold_left (fun acc b -> TS.union acc (TS.of_list b)) TS.empty d.bags
  in
  TS.for_all
    (fun t ->
      let holds = ref [] in
      Array.iteri (fun i b -> if TS.mem t b then holds := i :: !holds) bag_sets;
      match !holds with
      | [] -> true
      | start :: _ ->
          (* BFS restricted to bags containing t must reach all of them. *)
          let seen = Hashtbl.create 8 in
          let rec dfs i =
            if not (Hashtbl.mem seen i) then begin
              Hashtbl.replace seen i ();
              List.iter
                (fun j -> if TS.mem t bag_sets.(j) then dfs j)
                adj.(i)
            end
          in
          dfs start;
          List.for_all (Hashtbl.mem seen) !holds)
    terms

let is_valid aset d =
  let aset_terms = TS.of_list (Atomset.terms aset) in
  let bags_within =
    Array.for_all (List.for_all (fun t -> TS.mem t aset_terms)) d.bags
  in
  bags_within && is_tree d && covers aset d && connected d

let trivial aset =
  match Atomset.terms aset with
  | [] -> { bags = [||]; edges = [] }
  | ts -> { bags = [| ts |]; edges = [] }

let pp ppf d =
  Fmt.pf ppf "@[<v>%a@,edges: %a@]"
    Fmt.(
      array ~sep:cut (fun ppf bag ->
          Fmt.pf ppf "bag {@[%a@]}" (list ~sep:comma Term.pp) bag))
    d.bags
    Fmt.(list ~sep:comma (pair ~sep:(any "-") int int))
    d.edges
