open Syntax

type diagnosis = {
  rules : int;
  cyclic : string list list;
  frozen_cyclic : string list list;
  datalog_cycles_only : bool;
  existential_frozen_cycle : bool;
}

let diagnose rules =
  let arr = Array.of_list rules in
  let n = Array.length arr in
  let names comp = List.map (fun i -> Rule.name arr.(i)) comp in
  let sorted sccs = List.sort compare (List.map (List.sort compare) sccs) in
  let cyclic_idx =
    sorted (Rclasses.Dependency.cyclic_sccs ~n (Rclasses.Dependency.pred_graph rules))
  in
  let frozen_idx =
    sorted (Rclasses.Dependency.cyclic_sccs ~n (Rclasses.Dependency.frozen_graph rules))
  in
  {
    rules = n;
    cyclic = List.map names cyclic_idx;
    frozen_cyclic = List.map names frozen_idx;
    datalog_cycles_only =
      List.for_all (List.for_all (fun i -> Rule.is_datalog arr.(i))) cyclic_idx;
    existential_frozen_cycle =
      List.exists (List.exists (fun i -> not (Rule.is_datalog arr.(i)))) frozen_idx;
  }
