lib/syntax/egd.mli: Atom Atomset Fmt Term
