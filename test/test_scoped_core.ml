(* Incremental core maintenance (DESIGN.md §9):

   (a) scoped-fold completeness units — deltas that break the core
       property are folded, deltas that keep it are certified, and the
       documented regression instance (an old atom mapping onto a new
       ground delta atom, no fresh null involved) is caught;
   (b) generation stamps — content changes bump the epoch, no-ops do
       not, birth stamps track exactly the live atoms;
   (c) hom failure memo — failures are cached per epoch, hits are
       counted, generation advance invalidates;
   (d) differential runs — Scoped and Exhaustive scoping produce
       equivalent chases on staircase/elevator prefixes and random KBs,
       and Audit mode (which raises on any core disagreement) passes
       over every core-cadence engine. *)

open Syntax

let atom p args = Atom.make p args

let with_scoping mode f =
  let saved = !Homo.Core.scoping in
  Homo.Core.scoping := mode;
  Fun.protect ~finally:(fun () -> Homo.Core.scoping := saved) f

let budget steps = { Chase.Variants.max_steps = steps; max_atoms = 5_000 }

(* ------------------------------------------------------------------ *)
(* (a) scoped-fold completeness *)

let test_scoped_catches_pair_fold () =
  (* A = {s(x,y), s(y,c), s(c,c), t(y)} is a core; adding D = {t(c)}
     lets y fold onto c (and then x).  No fresh null is involved — only
     the (t(y) → t(c)) pair search can catch it. *)
  let x = Term.fresh_var ~hint:"x" () and y = Term.fresh_var ~hint:"y" () in
  let c = Term.const "c" in
  let a =
    Atomset.of_list
      [ atom "s" [ x; y ]; atom "s" [ y; c ]; atom "s" [ c; c ]; atom "t" [ y ] ]
  in
  Alcotest.(check bool) "A is a core" true (Homo.Core.is_core a);
  let d = atom "t" [ c ] in
  let i = Atomset.add d a in
  let idx = Homo.Instance.of_atomset i in
  let r =
    with_scoping Homo.Core.Scoped (fun () ->
        Homo.Core.retraction_to_core_indexed
          ~scope:(Homo.Core.Delta { fresh = []; added = [ d ] })
          idx)
  in
  let core = Subst.apply r i in
  Alcotest.(check int) "core has 2 atoms" 2 (Atomset.cardinal core);
  Alcotest.(check bool) "core is s(c,c), t(c)" true
    (Atomset.equal core (Atomset.of_list [ atom "s" [ c; c ]; d ]))

let test_scoped_catches_fresh_fold () =
  (* A = {u(k0)} plus a delta atom on a fresh null folds back onto k0 *)
  let z = Term.fresh_var ~hint:"z" () in
  let k0 = Term.const "k0" in
  let a = Atomset.of_list [ atom "u" [ k0 ] ] in
  let d = atom "u" [ z ] in
  let idx = Homo.Instance.of_atomset (Atomset.add d a) in
  let r =
    with_scoping Homo.Core.Scoped (fun () ->
        Homo.Core.retraction_to_core_indexed
          ~scope:(Homo.Core.Delta { fresh = [ z ]; added = [ d ] })
          idx)
  in
  Alcotest.(check bool) "z folded to k0" true
    (match Subst.find z r with Some t -> Term.equal t k0 | None -> false)

let test_scoped_certifies_real_core () =
  (* a genuinely new ground edge keeps the instance a core: the scoped
     search must certify it with the empty retraction *)
  let e i j =
    atom "e" [ Term.const (Printf.sprintf "n%d" i); Term.const (Printf.sprintf "n%d" j) ]
  in
  let a = Atomset.of_list [ e 0 1; e 1 2 ] in
  let d = e 2 3 in
  let idx = Homo.Instance.of_atomset (Atomset.add d a) in
  let r =
    with_scoping Homo.Core.Scoped (fun () ->
        Homo.Core.retraction_to_core_indexed
          ~scope:(Homo.Core.Delta { fresh = []; added = [ d ] })
          idx)
  in
  Alcotest.(check bool) "identity retraction" true (Subst.is_empty r)

let test_scoped_agrees_with_full_on_random_deltas () =
  (* grow random instances one atom at a time, keeping the invariant "the
     instance is a core" by retracting after each addition; the scoped
     retraction must always land on a core isomorphic to the full one
     (Audit mode checks exactly that and raises on divergence) *)
  let rand =
    let state = ref 20240805 in
    fun bound ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      !state mod bound
  in
  let random_atom () =
    let preds = [| ("p", 2); ("q", 2); ("r", 1) |] in
    let p, ar = preds.(rand (Array.length preds)) in
    let term () =
      if rand 3 = 0 then Term.const (Printf.sprintf "c%d" (rand 3))
      else Term.var_of_id ~hint:"w" (820_000 + rand 8)
    in
    atom p (List.init ar (fun _ -> term ()))
  in
  with_scoping Homo.Core.Audit (fun () ->
      for _case = 1 to 20 do
        let idx = ref (Homo.Instance.of_atomset Atomset.empty) in
        for _step = 1 to 12 do
          let a = random_atom () in
          if not (Homo.Instance.mem !idx a) then begin
            idx := Homo.Instance.add_atoms !idx [ a ];
            let r =
              Homo.Core.retraction_to_core_indexed
                ~scope:(Homo.Core.Delta { fresh = Atom.vars a; added = [ a ] })
                !idx
            in
            idx := Homo.Instance.apply_subst r !idx
          end
        done
      done)

(* ------------------------------------------------------------------ *)
(* (b) generation stamps *)

let test_generation_monotone () =
  let g0 = Homo.Instance.generation Homo.Instance.empty in
  Alcotest.(check int) "empty is epoch 0" 0 g0;
  let a1 = atom "p" [ Term.const "a" ] in
  let i1 = Homo.Instance.add_atoms Homo.Instance.empty [ a1 ] in
  Alcotest.(check bool) "add bumps" true (Homo.Instance.generation i1 > g0);
  let i2 = Homo.Instance.add_atoms i1 [ a1 ] in
  Alcotest.(check int) "re-add is a no-op" (Homo.Instance.generation i1)
    (Homo.Instance.generation i2);
  let i3 = Homo.Instance.remove_atoms i2 [ a1 ] in
  Alcotest.(check bool) "remove bumps" true
    (Homo.Instance.generation i3 > Homo.Instance.generation i2);
  let i4 = Homo.Instance.remove_atoms i3 [ a1 ] in
  Alcotest.(check int) "re-remove is a no-op" (Homo.Instance.generation i3)
    (Homo.Instance.generation i4);
  let i5 = Homo.Instance.apply_subst Subst.empty i3 in
  Alcotest.(check int) "empty subst is a no-op" (Homo.Instance.generation i3)
    (Homo.Instance.generation i5)

let test_born_and_atoms_since () =
  let a1 = atom "p" [ Term.const "a" ] and a2 = atom "p" [ Term.const "b" ] in
  let i1 = Homo.Instance.add_atoms Homo.Instance.empty [ a1 ] in
  let g1 = Homo.Instance.generation i1 in
  let i2 = Homo.Instance.add_atoms i1 [ a2 ] in
  (match Homo.Instance.born i2 a1 with
  | Some s -> Alcotest.(check int) "a1 born at g1" g1 s
  | None -> Alcotest.fail "a1 has no birth stamp");
  Alcotest.(check bool) "a2 born after g1" true
    (match Homo.Instance.born i2 a2 with Some s -> s > g1 | None -> false);
  Alcotest.(check (list string)) "atoms_since g1 = [a2]"
    [ Fmt.str "%a" Atom.pp a2 ]
    (List.map (Fmt.str "%a" Atom.pp) (Homo.Instance.atoms_since i2 g1));
  Alcotest.(check int) "atoms_since 0 sees both" 2
    (List.length (Homo.Instance.atoms_since i2 0));
  Alcotest.(check bool) "invariants" true (Homo.Instance.invariants_ok i2)

let test_apply_subst_swaps_content () =
  (* a non-idempotent substitution swapping a 2-cycle must preserve both
     atoms (regression: interleaved remove/add lost one) *)
  let x = Term.fresh_var ~hint:"x" () and y = Term.fresh_var ~hint:"y" () in
  let pair = Atomset.of_list [ atom "e" [ x; y ]; atom "e" [ y; x ] ] in
  let swap = Subst.add x y (Subst.add y x Subst.empty) in
  let idx = Homo.Instance.apply_subst swap (Homo.Instance.of_atomset pair) in
  Alcotest.(check bool) "both atoms survive" true
    (Atomset.equal (Homo.Instance.atomset idx) pair);
  Alcotest.(check bool) "invariants" true (Homo.Instance.invariants_ok idx)

(* ------------------------------------------------------------------ *)
(* (c) hom failure memo *)

let counter_value name =
  match List.assoc_opt name (Obs.Metrics.counters ()) with
  | Some v -> v
  | None -> 0

let with_metrics f =
  Obs.Metrics.reset ();
  Obs.Metrics.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.enabled := false) f

let test_memo_caches_failures () =
  Homo.Hom.memo_clear ();
  let src = Atomset.of_list [ atom "p" [ Term.const "a" ] ] in
  let tgt = Homo.Instance.of_atomset (Atomset.of_list [ atom "q" [ Term.const "a" ] ]) in
  let epoch = Homo.Instance.generation tgt in
  with_metrics (fun () ->
      let r1 = Homo.Hom.find ~memo:([| 99; 1 |], epoch) src tgt in
      Alcotest.(check bool) "first check fails" true (r1 = None);
      Alcotest.(check int) "one miss" 1 (counter_value "hom.memo_misses");
      Alcotest.(check int) "no hit yet" 0 (counter_value "hom.memo_hits");
      let r2 = Homo.Hom.find ~memo:([| 99; 1 |], epoch) src tgt in
      Alcotest.(check bool) "second check fails" true (r2 = None);
      Alcotest.(check int) "second check hits" 1 (counter_value "hom.memo_hits");
      (* growing the target bumps its generation: stale entry must miss *)
      let tgt' = Homo.Instance.add_atoms tgt [ atom "p" [ Term.const "a" ] ] in
      let epoch' = Homo.Instance.generation tgt' in
      Alcotest.(check bool) "epoch advanced" true (epoch' > epoch);
      let r3 = Homo.Hom.find ~memo:([| 99; 1 |], epoch') src tgt' in
      Alcotest.(check bool) "now finds a hom" true (r3 <> None);
      Alcotest.(check int) "stale entry missed" 2
        (counter_value "hom.memo_misses"))

let test_memo_disabled_bypasses () =
  Homo.Hom.memo_clear ();
  let src = Atomset.of_list [ atom "p" [ Term.const "a" ] ] in
  let tgt = Homo.Instance.of_atomset (Atomset.of_list [ atom "q" [ Term.const "a" ] ]) in
  let epoch = Homo.Instance.generation tgt in
  Homo.Hom.memo_enabled := false;
  Fun.protect
    ~finally:(fun () -> Homo.Hom.memo_enabled := true)
    (fun () ->
      with_metrics (fun () ->
          ignore (Homo.Hom.find ~memo:([| 99; 2 |], epoch) src tgt);
          ignore (Homo.Hom.find ~memo:([| 99; 2 |], epoch) src tgt);
          Alcotest.(check int) "no hits when disabled" 0
            (counter_value "hom.memo_hits");
          Alcotest.(check int) "no misses counted either" 0
            (counter_value "hom.memo_misses")))

let test_memo_successes_cached () =
  Homo.Hom.memo_clear ();
  let src = Atomset.of_list [ atom "p" [ Term.const "a" ] ] in
  let tgt = Homo.Instance.of_atomset (Atomset.of_list [ atom "p" [ Term.const "a" ] ]) in
  let epoch = Homo.Instance.generation tgt in
  with_metrics (fun () ->
      let r1 = Homo.Hom.find ~memo:([| 99; 3 |], epoch) src tgt in
      Alcotest.(check bool) "finds a hom" true (r1 <> None);
      let r2 = Homo.Hom.find ~memo:([| 99; 3 |], epoch) src tgt in
      Alcotest.(check bool) "replays the cached witness" true
        (match (r1, r2) with
        | Some s1, Some s2 -> Subst.equal s1 s2
        | _ -> false);
      Alcotest.(check int) "same-epoch success hits" 1
        (counter_value "hom.memo_hits");
      (* witness-returning calls never reuse a stale-epoch success: a new
         epoch means a fresh search (and a second miss) *)
      let tgt' = Homo.Instance.add_atoms tgt [ atom "q" [ Term.const "b" ] ] in
      let epoch' = Homo.Instance.generation tgt' in
      let r3 = Homo.Hom.find ~memo:([| 99; 3 |], epoch') src tgt' in
      Alcotest.(check bool) "searches again at the new epoch" true (r3 <> None);
      Alcotest.(check int) "find misses across epochs" 2
        (counter_value "hom.memo_misses");
      (* [exists] may revalidate the stale witness instead: σ(src) still
         lands inside the grown target, so no search runs *)
      let tgt'' = Homo.Instance.add_atoms tgt' [ atom "q" [ Term.const "c" ] ] in
      let epoch'' = Homo.Instance.generation tgt'' in
      Alcotest.(check bool) "exists via the stale witness" true
        (Homo.Hom.exists ~memo:([| 99; 3 |], epoch'') src tgt'');
      Alcotest.(check int) "stale-witness reuse is a hit" 2
        (counter_value "hom.memo_hits");
      Alcotest.(check int) "and not a miss" 2
        (counter_value "hom.memo_misses"))

(* ------------------------------------------------------------------ *)
(* (d) differential runs: Scoped ≡ Exhaustive, Audit everywhere *)

let equivalent_runs run_a run_b =
  let open Chase.Variants in
  run_a.outcome = run_b.outcome
  && run_a.rounds = run_b.rounds
  && Chase.Derivation.length run_a.derivation
     = Chase.Derivation.length run_b.derivation
  &&
  let fin r = (Chase.Derivation.last r.derivation).Chase.Derivation.instance in
  Atomset.cardinal (fin run_a) = Atomset.cardinal (fin run_b)
  && Homo.Morphism.hom_equivalent (fin run_a) (fin run_b)

let test_scoped_vs_full_runs () =
  let compare_on kb name steps =
    let scoped_run =
      with_scoping Homo.Core.Scoped (fun () ->
          Chase.Variants.core ~budget:(budget steps) kb)
    in
    let full_run =
      with_scoping Homo.Core.Exhaustive (fun () ->
          Chase.Variants.core ~budget:(budget steps) kb)
    in
    Alcotest.(check bool)
      (name ^ ": scoped and full runs equivalent")
      true
      (equivalent_runs scoped_run full_run)
  in
  compare_on (Zoo.Staircase.kb ()) "staircase" 20;
  compare_on (Zoo.Elevator.kb ()) "elevator" 15;
  List.iteri
    (fun i kb -> compare_on kb (Printf.sprintf "randomkb%d" i) 20)
    (Zoo.Randomkb.generate_many ~seed:23 ~count:3 Zoo.Randomkb.default)

let test_audit_core_both_cadences () =
  with_scoping Homo.Core.Audit (fun () ->
      let kb = Zoo.Staircase.kb () in
      ignore (Chase.Variants.core ~budget:(budget 20) kb);
      ignore
        (Chase.Variants.core ~cadence:Chase.Variants.Every_round
           ~budget:(budget 15) kb);
      ignore (Chase.Variants.core ~budget:(budget 15) (Zoo.Elevator.kb ())))

let test_audit_stream_core () =
  with_scoping Homo.Core.Audit (fun () ->
      ignore
        (List.of_seq
           (Seq.take 12 (Chase.Variants.stream ~variant:`Core (Zoo.Staircase.kb ())))))

let test_audit_egds_core () =
  with_scoping Homo.Core.Audit (fun () ->
      let x = Term.fresh_var ~hint:"X" ()
      and y = Term.fresh_var ~hint:"Y" ()
      and z = Term.fresh_var ~hint:"Z" () in
      let fd =
        Egd.make ~name:"fd"
          ~body:[ atom "emp" [ x; y ]; atom "emp" [ x; z ] ]
          y z
      in
      let x2 = Term.fresh_var ~hint:"X" () and w = Term.fresh_var ~hint:"W" () in
      let rule =
        Rule.make ~name:"hire"
          ~body:[ atom "dept" [ x2 ] ]
          ~head:[ atom "emp" [ x2; w ]; atom "dept" [ w ] ]
          ()
      in
      let kb =
        Kb.with_egds [ fd ]
          (Kb.of_lists
             ~facts:
               [
                 atom "dept" [ Term.const "d0" ];
                 atom "emp" [ Term.const "d0"; Term.const "e0" ];
               ]
             ~rules:[ rule ])
      in
      ignore (Chase.Variants.Egds.run ~variant:`Core ~budget:(budget 25) kb))

let test_audit_randomkb_core () =
  with_scoping Homo.Core.Audit (fun () ->
      List.iter
        (fun kb -> ignore (Chase.Variants.core ~budget:(budget 20) kb))
        (Zoo.Randomkb.generate_many ~seed:31 ~count:4 Zoo.Randomkb.default))

let suites =
  [
    ( "scoped_core.folds",
      [
        Alcotest.test_case "pair fold caught (regression)" `Quick
          test_scoped_catches_pair_fold;
        Alcotest.test_case "fresh-null fold caught" `Quick
          test_scoped_catches_fresh_fold;
        Alcotest.test_case "real core certified" `Quick
          test_scoped_certifies_real_core;
        Alcotest.test_case "random deltas audit clean" `Quick
          test_scoped_agrees_with_full_on_random_deltas;
      ] );
    ( "scoped_core.generations",
      [
        Alcotest.test_case "epoch bumps on change only" `Quick
          test_generation_monotone;
        Alcotest.test_case "birth stamps and atoms_since" `Quick
          test_born_and_atoms_since;
        Alcotest.test_case "apply_subst handles swaps" `Quick
          test_apply_subst_swaps_content;
      ] );
    ( "scoped_core.memo",
      [
        Alcotest.test_case "failures cached per epoch" `Quick
          test_memo_caches_failures;
        Alcotest.test_case "disabled memo bypasses" `Quick
          test_memo_disabled_bypasses;
        Alcotest.test_case "successes cached and revalidated" `Quick
          test_memo_successes_cached;
      ] );
    ( "scoped_core.differential",
      [
        Alcotest.test_case "scoped ≡ full core runs" `Quick
          test_scoped_vs_full_runs;
        Alcotest.test_case "audit: core both cadences" `Quick
          test_audit_core_both_cadences;
        Alcotest.test_case "audit: stream core" `Quick test_audit_stream_core;
        Alcotest.test_case "audit: egds core" `Quick test_audit_egds_core;
        Alcotest.test_case "audit: random KBs" `Quick test_audit_randomkb_core;
      ] );
  ]
