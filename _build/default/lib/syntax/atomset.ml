module S = Set.Make (Atom)

type t = S.t

let empty = S.empty

let is_empty = S.is_empty

let singleton = S.singleton

let of_list = S.of_list

let to_list = S.elements

let add = S.add

let remove = S.remove

let mem = S.mem

let cardinal = S.cardinal

let union = S.union

let inter = S.inter

let diff = S.diff

let subset = S.subset

let equal = S.equal

let compare = S.compare

let fold = S.fold

let iter = S.iter

let exists = S.exists

let for_all = S.for_all

let filter = S.filter

let map f s = S.fold (fun a acc -> S.add (f a) acc) s S.empty

let terms s =
  S.fold (fun a acc -> List.rev_append (Atom.terms a) acc) s []
  |> List.sort_uniq Term.compare

let vars s = List.filter Term.is_var (terms s)

let consts s = List.filter Term.is_const (terms s)

let preds s =
  S.fold (fun a acc -> (Atom.pred a, Atom.arity a) :: acc) s []
  |> List.sort_uniq Stdlib.compare

let atoms_with_term t s = S.elements (S.filter (Atom.mem_term t) s)

module TS = Set.Make (Term)

let induced ts s =
  let keep = TS.of_list ts in
  S.filter (fun a -> List.for_all (fun t -> TS.mem t keep) (Atom.terms a)) s

let without_term t s = S.filter (fun a -> not (Atom.mem_term t a)) s

let pp ppf s =
  Fmt.pf ppf "{@[%a@]}" Fmt.(list ~sep:comma Atom.pp) (S.elements s)

let pp_verbose ppf s =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list Atom.pp_debug) (S.elements s)
