(** Robust renaming, robust sequences and robust aggregation
    (Definitions 14–16, Proposition 10, Lemma 1) — the paper's central
    construction.

    The natural aggregation [D* = ⋃ F_i] of a non-monotonic derivation may
    fail to be a model (atoms that were retracted away linger in the
    union).  The robust aggregation instead unions {e collapsed} versions
    of the [F_i]: each simplification is propagated backwards through a
    rank-minimising renaming, so that variables are re-mapped only finitely
    often (Proposition 10) and the limit [D⊛ = ⋃ τ̂(G_i)] is a model that
    is {e finitely universal} (Proposition 11) and inherits any recurring
    treewidth bound of the derivation (Proposition 12.2).

    The total order [<_X] on variables required by Definition 14 is the
    rank order of {!Syntax.Term} (ranks are a bijection with ℕ).

    We materialise the construction for a finite derivation prefix; the
    prefix aggregation [⋃_{i≤k} τ̄_i^k(G_i)] converges to [D⊛] as the
    prefix grows. *)

open Syntax

val robust_renaming : Atomset.t -> Subst.t -> Subst.t
(** [robust_renaming a σ] is [ρ_σ] for a retraction [σ] of [a]: it maps
    each variable [X] of [σ(a)] to the [<_X]-smallest variable of
    [σ⁻¹(X)].  An isomorphism from [σ(a)] onto [τ_σ(a)].
    @raise Invalid_argument if [σ] is not a retraction of [a]. *)

val tau_of : Atomset.t -> Subst.t -> Subst.t
(** [τ_σ = ρ_σ • σ]. *)

type step = {
  index : int;
  a_prime : Atomset.t;  (** [A'_i = ρ_{i-1}(A_i)]; [A'_0 = F] *)
  sigma_prime : Subst.t;  (** [σ'_i = ρ_{i-1} • σ_i • ρ_{i-1}⁻¹]; [σ'_0 = σ_0] *)
  f_prime : Atomset.t;  (** [F'_i = σ'_i(A'_i) = ρ_{i-1}(F_i)] *)
  renaming : Subst.t;  (** [ρ_{σ'_i}] *)
  g : Atomset.t;  (** [G_i] *)
  rho : Subst.t;  (** [ρ_i : F_i → G_i], an isomorphism *)
  tau : Subst.t;  (** [τ_i = ρ_{σ'_i} • σ'_i]  (maps [G_{i-1}] into [G_i]) *)
}

type t

val of_derivation : Chase.Derivation.t -> t
(** Build the robust sequence associated with the derivation prefix. *)

val derivation : t -> Chase.Derivation.t

val length : t -> int

val step : t -> int -> step

val steps : t -> step list

val g_at : t -> int -> Atomset.t

val tau_trace : t -> from_:int -> to_:int -> Subst.t
(** [τ̄_i^j = τ_j • ⋯ • τ_{i+1}] (identity when [i = j]). *)

val aggregation : t -> Atomset.t
(** The prefix robust aggregation [⋃_{i≤k} τ̄_i^k(G_i)] where [k] is the
    last index of the prefix. *)

val aggregation_upto : t -> int -> Atomset.t
(** [aggregation_upto r i = ⋃_{j≤i} τ̄_j^K(G_j)] with [K] the prefix's last
    index: only the first [i+1] elements contribute, but their atoms are
    still pushed through every later [τ].  [aggregation_upto r K =
    aggregation r]; the family is ⊆-monotone in [i] (Lemma 1(i)). *)

val stable_aggregation : t -> Atomset.t
(** The full prefix aggregation always carries the last instance verbatim
    ([τ̄_K^K] is the identity), i.e. the not-yet-folded frontier transient.
    This function instead returns the {!aggregation_upto} at the
    simplification boundary of minimal treewidth (ties: largest, latest) —
    on the staircase this is exactly the stable column [Ĩ^h] of Section 8.
    Both aggregations converge to [D⊛] as the prefix grows. *)

val check_invariants : t -> (unit, string) result
(** Validate the construction on the prefix: each [σ'_i] is a retraction
    of [A'_i], each [ρ_i] an isomorphism [F_i → G_i], each [τ_i] maps
    [G_{i-1}] into [G_i], and the [τ̄(G_i)] increase monotonically
    (Lemma 1(i)).  Used by tests and the experiment harness. *)
