(** Deterministic domain-pool parallelism (DESIGN.md §10).

    A process-wide pool of OCaml 5 domains plus fan-out combinators whose
    results are {e independent of the schedule}: [map]/[map_reduce] merge
    in input order, [find_first_map] returns the first-by-index success
    (exactly what the sequential [List.find_map] returns), and task
    [i] of a batch always runs on slot [i mod jobs] (static round-robin,
    the caller participating as slot 0) so even the per-domain metric
    split of {!Obs.Metrics} is reproducible.

    With [jobs = 1] (the default) no pool exists and every combinator is
    {e definitionally} its sequential counterpart — no extra allocation,
    no trace events, no counters — so single-job runs are byte-identical
    to pre-pool builds.

    Sizing: [CORECHASE_JOBS] in the environment at startup, or
    {!set_jobs} / the CLI's [--jobs N] at runtime.

    Reentrancy: a combinator called from inside a running batch (from a
    worker, or from the caller's own slice) degrades to the sequential
    path rather than deadlocking on the single batch slot. *)

val max_jobs : int
(** Hard cap on the pool width (64 workers + the caller). *)

val jobs : unit -> int
(** Current pool width; [1] when no pool is running. *)

val set_jobs : int -> unit
(** Resize the pool: tears the running pool down (joining its domains)
    and spawns [n - 1] workers; [set_jobs 1] just tears down.  A no-op
    when [n] already is the current width.  Values above {!max_jobs} are
    clamped.  @raise Invalid_argument when [n < 1]. *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** Run the thunk under [set_jobs n], restoring the previous width
    afterwards (also on exceptions).  Test harness convenience. *)

val sequential : unit -> bool
(** [true] when a combinator called here and now would run its
    sequential path: no pool, a worker domain, or a batch in flight. *)

(** {1 Deterministic fan-out combinators}

    [site] names the fan-out point in [Par_fanout] trace events and is
    free-form ("trigger.satcheck", "tw.branch", …).  Exceptions raised
    by tasks are re-raised in the caller — the lowest-index failing
    task wins, again matching sequential order. *)

val map : ?site:string -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel [List.map]. *)

val iter : ?site:string -> ('a -> unit) -> 'a list -> unit
(** Parallel [List.iter]; all tasks complete before it returns. *)

val find_first_map : ?site:string -> ('a -> 'b option) -> 'a list -> 'b option
(** Parallel [List.find_map] with sequential-first-success semantics:
    items are evaluated in waves of [2 × jobs]; within each wave all
    items run, and the lowest-index [Some] wins.  Later waves are not
    started once a wave succeeds, so early successes still prune —
    at the price of (at most one wave of) extra evaluations relative
    to the sequential early exit. *)

val map_reduce :
  ?site:string ->
  map:('a -> 'b) ->
  reduce:('c -> 'b -> 'c) ->
  init:'c ->
  'a list ->
  'c
(** [map] in parallel, then fold the results {e in input order} on the
    caller: [map_reduce ~map ~reduce ~init [x1; …; xn]] equals
    [reduce (… (reduce init (map x1)) …) (map xn)] exactly. *)

(** {1 The pool itself}

    Exposed for callers that want to drive raw batches; the combinators
    above are the intended interface. *)
module Pool : sig
  type t

  val create : jobs:int -> t
  (** Spawn [jobs - 1] worker domains (slot [k] pinned via
      [Obs.Metrics.set_slot k]).  @raise Invalid_argument when
      [jobs < 2]. *)

  val jobs : t -> int

  val run : t -> (unit -> unit) array -> unit
  (** Execute one batch: chunk [i] runs on slot [i mod jobs], the caller
      executing slot 0's chunks itself; returns when every chunk has.
      Chunks must not raise (the combinators wrap payloads).  Batches
      must not be nested. *)

  val shutdown : t -> unit
  (** Stop and join the workers.  The pool must not be used after. *)
end
