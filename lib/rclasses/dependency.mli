(** Rule dependencies and the graph of rule dependencies (GRD).

    [r₂] depends on [r₁] when some application of [r₁] can create a new
    unsatisfied trigger for [r₂] (Baget et al.).  Exact dependency checking
    needs piece-unifiers; we provide two practical detectors bracketing it:

    - {!may_depend_pred}: predicate-level test — complete (never misses a
      dependency) but may report spurious ones;
    - {!depends_frozen}: freeze [body(r₁)] to fresh constants, apply [r₁],
      and look for a new trigger of [r₂] using a created atom — sound
      (every hit is a real dependency) but may miss dependencies that
      require unifying distinct body variables of [r₁].

    Acyclicity of the {e complete} overapproximation therefore soundly
    certifies an acyclic GRD (aGRD), which implies chase termination. *)

open Syntax

val may_depend_pred : Rule.t -> on:Rule.t -> bool
(** Some predicate of [body r] occurs in [head on]. *)

val depends_frozen : Rule.t -> on:Rule.t -> bool

val pred_graph : Rule.t list -> (int * int) list
(** Edges [(i, j)]: rule [j] may depend on rule [i] (predicate-level). *)

val frozen_graph : Rule.t list -> (int * int) list

val sccs : n:int -> (int * int) list -> int list list
(** Strongly connected components of an edge list over vertices
    [0 .. n-1] (Tarjan).  Each component lists its vertices in discovery
    order; components arrive in reverse topological order. *)

val cyclic_sccs : n:int -> (int * int) list -> int list list
(** The components that actually contain a cycle: size ≥ 2, or a single
    vertex with a self-loop.  Rules outside every cyclic SCC can fire
    only finitely often regardless of the rest of the ruleset. *)

val agrd_sound : Rule.t list -> bool
(** The predicate-level graph is acyclic — a sound certificate for an
    acyclic GRD (hence termination of all chase variants, hence fes). *)
