(** The Steepening Staircase [K_h] (Definition 7, Figure 2) and its
    associated infinite structures.

    The KB admits a core chase sequence uniformly treewidth-bounded by 2,
    while {e no} universal model of it has finite treewidth
    (Propositions 4 and 5).

    Cells are addressed as [(i, j)] — column [i ≥ 0], row [j]; the
    staircase's universal model [I^h] (Definition 8) has cells
    [0 ≤ j ≤ i+1] per column.  Atoms of [I^h]:

    - [f(X^i_0)] — the floor;
    - [c(X^i_j)] for [1 ≤ j ≤ i] — ceilings;
    - [h(X^i_j, X^i_j)] for [j ≤ i] — the horizontal self-loops;
    - [v(X^i_j, X^i_{j+1})] for [j ≤ i] — vertical edges;
    - [h(X^i_j, X^{i+1}_j)] — horizontal edges between columns.

    All generators create fresh variables per call; the returned [term]
    function gives the cell naming, for grid checks and isomorphism
    tests. *)

open Syntax

val kb : unit -> Kb.t
(** [K_h = (F_h, Σ_h)] with [F_h = {f(X^0_0), h(X^0_0, X^0_0)}] (the
    initial term is a null, as in the paper) and the four rules R1–R4. *)

type structure = {
  atoms : Atomset.t;
  term : int -> int -> Term.t option;  (** [term i j] = cell [(i,j)] *)
}

val universal_model_prefix : cols:int -> structure
(** [P^h_n]: the subset of [I^h] induced by the columns [0..n]. *)

val column : structure -> int -> Atomset.t
(** [C^h_k]: the subset induced by [{X^k_j}_{j ≤ k}] (the k-th column minus
    its top element).  The structure must contain column [k]. *)

val step_atomset : structure -> int -> Atomset.t
(** [S^h_k]: the "step" — the subset induced by
    [C_k ∪ C_{k+1} ∪ {X^k_{k+1}}].  Requires columns [k] and [k+1]. *)

val infinite_column_prefix : height:int -> structure
(** [Ĩ^h] truncated at row [height]: the finitely universal (but not
    universal) infinite-column model of [K_h] — [f] at the bottom, [c]
    above, a horizontal self-loop on every cell, a vertical path upward.
    ([term 0 j] addresses row [j].) *)

val grid_naming : structure -> n:int -> (int -> int -> Term.t) option
(** The [n×n]-grid inside the prefix used by Proposition 5's proof:
    cell [(a,b) ↦ X^{n+a}_{b-1}] for [1 ≤ a,b ≤ n].  [None] if the prefix
    is too small (needs [cols ≥ 2n]). *)
