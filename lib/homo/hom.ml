open Syntax

let naive_order = ref false

(* Observability (DESIGN.md §8): one counter pair for the backtracking
   search.  A "backtrack" is a candidate target atom that failed to extend
   the current partial homomorphism (or violated injectivity); the count is
   accumulated in a local ref — one increment per dead end — and flushed to
   the registry / trace sink only when observability is live, so the
   disabled path adds nothing to the search itself. *)
let m_solve_calls = Obs.Metrics.counter "hom.solve_calls"

let m_backtracks = Obs.Metrics.counter "hom.backtracks"

module TS = Set.Make (Term)

let extend_pair sigma pat_t tgt_t acc_new =
  match pat_t with
  | Term.Const _ -> if Term.equal pat_t tgt_t then Some (sigma, acc_new) else None
  | Term.Var _ -> (
      match Subst.find pat_t sigma with
      | Some img -> if Term.equal img tgt_t then Some (sigma, acc_new) else None
      | None -> Some (Subst.add pat_t tgt_t sigma, (pat_t, tgt_t) :: acc_new))

let extend_via_atom_full sigma pattern target =
  if
    (not (String.equal (Atom.pred pattern) (Atom.pred target)))
    || Atom.arity pattern <> Atom.arity target
  then None
  else
    let rec go sigma acc_new ps ts =
      match (ps, ts) with
      | [], [] -> Some (sigma, acc_new)
      | p :: ps', t :: ts' -> (
          match extend_pair sigma p t acc_new with
          | None -> None
          | Some (sigma', acc') -> go sigma' acc' ps' ts')
      | _ -> None
    in
    go sigma [] (Atom.args pattern) (Atom.args target)

let extend_via_atom sigma pattern target =
  Option.map fst (extend_via_atom_full sigma pattern target)

(* Core backtracking engine.  [k] is called on every solution; raising from
   [k] aborts the search (used for early exit). *)
let solve ?(seed = Subst.empty) ?(injective = false) ~(k : Subst.t -> unit)
    (src : Atomset.t) (tgt : Instance.t) : unit =
  let bt = ref 0 in
  let atoms = Atomset.to_list src in
  (* Under injectivity, track the set of image terms already in use.  The
     initial set contains the seed's images and the source's constants
     (which are their own images). *)
  let init_used =
    if not injective then TS.empty
    else
      List.fold_left
        (fun used v ->
          match Subst.find v seed with
          | Some img -> TS.add img used
          | None -> used)
        (TS.of_list (Atomset.consts src))
        (Atomset.vars src)
  in
  (* remove the i-th element, returning it and the remainder in order *)
  let rec extract_nth i = function
    | [] -> invalid_arg "Hom.solve: extract_nth"
    | x :: rest ->
        if i = 0 then (x, rest)
        else
          let y, rest' = extract_nth (i - 1) rest in
          (y, x :: rest')
  in
  let rec go sigma used remaining =
    match remaining with
    | [] -> k sigma
    | [ a ] -> match_next sigma used a []
    | _ ->
        let next, rest =
          if !naive_order then (List.hd remaining, List.tl remaining)
          else
            (* most-constrained-first: smallest candidate bucket.  One
               pass per level; each count is read off the cached bucket
               cardinalities, and the winner is removed by index. *)
            let best_i, _, _ =
              List.fold_left
                (fun (bi, bc, i) a ->
                  let c = Instance.candidate_count tgt a sigma in
                  if c < bc then (i, c, i + 1) else (bi, bc, i + 1))
                (-1, max_int, 0) remaining
            in
            extract_nth best_i remaining
        in
        match_next sigma used next rest
  and match_next sigma used next rest =
        let try_candidate target_atom =
          match extend_via_atom_full sigma next target_atom with
          | None -> incr bt
          | Some (sigma', new_bindings) ->
              if injective then begin
                (* each fresh image must be unused, and fresh images must be
                   pairwise distinct (checked by sequential insertion) *)
                let rec check used = function
                  | [] -> Some used
                  | (_, img) :: rest ->
                      if TS.mem img used then None
                      else check (TS.add img used) rest
                in
                match check used new_bindings with
                | None -> incr bt
                | Some used' -> go sigma' used' rest
              end
              else go sigma' used rest
        in
        List.iter try_candidate (Instance.candidates tgt next sigma)
  in
  let run () = go seed init_used atoms in
  if not (Obs.live ()) then run ()
  else begin
    Obs.Metrics.incr m_solve_calls;
    (* [k] may abort the search by raising (see [find]/[exists]); flush the
       backtrack count on every exit path *)
    Fun.protect
      ~finally:(fun () ->
        if !bt > 0 then begin
          Obs.Metrics.add m_backtracks !bt;
          if Obs.Trace.enabled () then
            Obs.Trace.emit
              (Obs.Trace.Hom_backtrack
                 {
                   backtracks = !bt;
                   src_atoms = Atomset.cardinal src;
                   tgt_atoms = Instance.cardinal tgt;
                 })
        end)
      run
  end

exception Stop

let find ?seed ?injective src tgt =
  let result = ref None in
  (try
     solve ?seed ?injective
       ~k:(fun s ->
         result := Some s;
         raise Stop)
       src tgt
   with Stop -> ());
  !result

let exists ?seed ?injective src tgt =
  match find ?seed ?injective src tgt with Some _ -> true | None -> false

let all ?seed ?injective ?limit src tgt =
  let acc = ref [] in
  let n = ref 0 in
  (try
     solve ?seed ?injective
       ~k:(fun s ->
         acc := s :: !acc;
         incr n;
         match limit with Some l when !n >= l -> raise Stop | _ -> ())
       src tgt
   with Stop -> ());
  List.rev !acc

let count ?seed ?injective ?limit src tgt =
  let n = ref 0 in
  (try
     solve ?seed ?injective
       ~k:(fun _ ->
         incr n;
         match limit with Some l when !n >= l -> raise Stop | _ -> ())
       src tgt
   with Stop -> ());
  !n

let iter ?seed ?injective f src tgt = solve ?seed ?injective ~k:f src tgt

let find_into src tgt_atoms = find src (Instance.of_atomset tgt_atoms)

let maps_to src tgt_atoms =
  match find_into src tgt_atoms with Some _ -> true | None -> false
