lib/core/robust.mli: Atomset Chase Subst Syntax
