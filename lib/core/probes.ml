open Syntax

let critical_instance rules =
  let star = Term.const "star" in
  let consts =
    star
    :: List.concat_map
         (fun r ->
           Atomset.consts (Rule.body r) @ Atomset.consts (Rule.head r))
         rules
    |> List.sort_uniq Term.compare
  in
  let preds = List.sort_uniq compare (List.concat_map Rule.preds rules) in
  (* all atoms over all predicates with all argument combinations drawn from
     the constants: the classical critical instance uses the single ★; we
     include rule constants as well, which only strengthens the probe *)
  let rec tuples k =
    if k = 0 then [ [] ]
    else
      let shorter = tuples (k - 1) in
      List.concat_map (fun c -> List.map (fun tl -> c :: tl) shorter) consts
  in
  List.concat_map
    (fun (p, ar) -> List.map (fun args -> Atom.make p args) (tuples ar))
    preds
  |> Atomset.of_list

type termination = Terminates of int | No_verdict of Chase.Variants.outcome

let core_chase_terminates ?budget kb =
  let run = Chase.Variants.core ?budget kb in
  match run.Chase.Variants.outcome with
  | Chase.Variants.Fixpoint ->
      Terminates (Chase.Derivation.length run.Chase.Variants.derivation - 1)
  | o -> No_verdict o

let fes_probe ?budget rules =
  core_chase_terminates ?budget
    (Kb.make ~facts:(critical_instance rules) ~rules)

let tw_series_of_run ?budget ~variant kb =
  let run =
    match variant with
    | `Restricted -> Chase.Variants.restricted ?budget kb
    | `Core -> Chase.Variants.core ?budget kb
  in
  List.map
    (fun st -> Measures.treewidth.Measures.measure st.Chase.Derivation.instance)
    (Chase.Derivation.steps run.Chase.Variants.derivation)

type tw_profile = {
  series : int list;
  max_seen : int;
  uniform_candidate : int;
  monotone_growing : bool;
}

let tw_profile ?budget ~variant kb =
  let series = tw_series_of_run ?budget ~variant kb in
  let max_seen = match Measures.uniform_bound series with Some m -> m | None -> -1 in
  {
    series;
    max_seen;
    uniform_candidate = max_seen;
    monotone_growing = Measures.is_monotone_growing series;
  }
