(** Typed WAL records and their total binary codec (DESIGN.md §16).

    One record is one durable event.  A chase run journals [Begin]
    (header + the counter values right after the KB parse), [Start]
    (σ₀ of the start step), one [Add] per rule application (the step's
    delta: genuinely-new atoms + the step's simplification), [Retract]
    when a round-end simplification replaces the last step's σ, and
    [Round] at every completed-round boundary (the only consistent cuts,
    carrying the freshness counters to re-pin on resume).  The EGD chase
    journals its unifications as [Merge].  Snapshot files carry
    [Snap_step] — the full Definition-1 step — instead of deltas.  The
    serve daemon journals [Sess_op] (canonical request text of
    OPEN/LOAD/CLOSE), [Sess_chase] (the stamped snapshot in full: chase
    results are {e not} re-executed on restart) and [Sess_gen].

    The codec is total: {!decode} returns [Error] on any byte soup —
    never an exception — with length/count fields validated against the
    remaining bytes before any allocation.  Laws in test/test_props.ml:
    [decode (encode r) = Ok r], random bytes never raise. *)

open Syntax

type t =
  | Begin of {
      engine : string;
      kb_path : string option;
      kb_digest : string option;
      max_steps : int;
      max_atoms : int;
      term_counter : int;
      generation_counter : int;
    }
  | Start of { sigma : Subst.t }
  | Add of {
      index : int;
      pi_safe : Subst.t;
      sigma : Subst.t;
      added : Atom.t list;
    }
  | Retract of { index : int; sigma : Subst.t }
  | Merge of { sigma : Subst.t }
  | Round of {
      rounds : int;
      steps : int;
      snapshot_index : int;  (** -1 encodes "no discovery snapshot yet" *)
      term_counter : int;
      generation_counter : int;
    }
  | Snap_step of {
      index : int;
      pi_safe : Subst.t;
      sigma : Subst.t;
      pre : Atom.t list;
      inst : Atom.t list;
    }
  | Sess_op of string
  | Sess_chase of {
      session : string;
      variant : string;
      max_steps : int;
      max_atoms : int;
      outcome : string;
      chase_steps : int;
      final : Atom.t list;
    }
  | Sess_gen of { session : string; generation : int }

val kind_name : t -> string
(** Stable kebab-case id: [begin], [start], [add], … *)

val encode : t -> string
(** Binary payload bytes (framed by {!Xlog.encode_frame}). *)

val decode : string -> (t, string) result
(** Total inverse of {!encode}.  Decoding a variable registers its rank
    with the global freshness counter ({!Syntax.Term.var_of_id}), so a
    chase log must be decoded {e after} the KB re-parse — same counter
    discipline as {!Chase.Checkpoint.load}. *)

val equal : t -> t -> bool
(** Structural equality (substitutions compared as maps). *)

val pp : t Fmt.t
(** Kind name only — records can be huge. *)
