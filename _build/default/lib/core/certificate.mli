(** Checkable entailment certificates.

    When the chase-based semi-procedure answers [K ⊨ Q], the evidence is a
    Definition-1 derivation prefix from [K] together with a homomorphism
    of [Q] into one of its elements: every derivation element is universal
    for [K] (Proposition 1(1)), so the pair proves the entailment.  The
    certificate can be re-checked independently of the search that
    produced it — the checker replays the rule applications and verifies
    the homomorphism, trusting only Definition 1 and Proposition 1. *)

open Syntax

type t = {
  derivation : Chase.Derivation.t;
  index : int;  (** the element the query maps into *)
  witness : Subst.t;  (** the homomorphism [Q → F_index] *)
}

val find :
  ?variant:[ `Restricted | `Core ] -> ?budget:Chase.Variants.budget ->
  Kb.t -> Kb.Query.t -> t option
(** Produce a certificate by chasing (default: core chase); [None] when
    the budget runs out before the query is reached (or the chase
    terminates without it — the KB then does not entail the query). *)

val check : Kb.t -> Kb.Query.t -> t -> (unit, string) result
(** Independent verification: the derivation starts from [K]'s facts and
    uses only [K]'s rules, every Definition-1 side condition holds
    ({!Chase.Derivation.validate}), and the witness maps the query's atoms
    into the indexed element. *)

val pp : t Fmt.t
(** A short human-readable account: step count, rules fired, witness. *)
