lib/syntax/ucq.mli: Fmt Kb
