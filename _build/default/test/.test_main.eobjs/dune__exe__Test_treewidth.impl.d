test/test_treewidth.ml: Alcotest Array Atom Atomset Fmt Gen List Option Printf QCheck QCheck_alcotest String Syntax Term Treewidth
