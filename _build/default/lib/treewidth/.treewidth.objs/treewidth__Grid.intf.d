lib/treewidth/grid.mli: Atomset Syntax Term
