open Syntax

let atom_contains_all vars a =
  List.for_all (fun v -> Atom.mem_term v a) vars

let exists_guard vars r =
  vars = [] || Atomset.exists (atom_contains_all vars) (Rule.body r)

let is_linear r = Atomset.cardinal (Rule.body r) = 1

let is_guarded r = exists_guard (Rule.universal_vars r) r

let is_frontier_guarded r = exists_guard (Rule.frontier r) r

let is_frontier_one r = List.length (Rule.frontier r) <= 1

let only_at_affected affected r v =
  let pos = Position.positions_of_var v (Rule.body r) in
  List.for_all (fun p -> List.exists (fun q -> Position.compare p q = 0) affected) pos

let is_weakly_guarded affected r =
  exists_guard
    (List.filter (only_at_affected affected r) (Rule.universal_vars r))
    r

let is_weakly_frontier_guarded affected r =
  exists_guard (List.filter (only_at_affected affected r) (Rule.frontier r)) r

let lift pred rules = List.for_all pred rules

let ruleset_linear = lift is_linear

let ruleset_guarded = lift is_guarded

let ruleset_frontier_guarded = lift is_frontier_guarded

let ruleset_frontier_one = lift is_frontier_one

let ruleset_weakly_guarded rules =
  let affected = Position.affected_positions rules in
  lift (is_weakly_guarded affected) rules

let ruleset_weakly_frontier_guarded rules =
  let affected = Position.affected_positions rules in
  lift (is_weakly_frontier_guarded affected) rules
