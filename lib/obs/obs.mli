(** Structured observability for the chase engines (DESIGN.md §8).

    Entry module of [corechase.obs]: {!Metrics} (named monotonic counters,
    gauges and timing histograms behind one [enabled] switch) and {!Trace}
    (a typed event stream with pluggable sinks).  The library sits below
    [syntax] in the dependency order — events carry only strings and
    integers — so every layer (homo, chase, treewidth, core) can emit
    without cycles. *)

module Metrics : module type of Metrics

module Trace : module type of Trace

val live : unit -> bool
(** [true] when either subsystem is on — the one-branch guard for
    instrumentation sites that need to precompute event payloads. *)
