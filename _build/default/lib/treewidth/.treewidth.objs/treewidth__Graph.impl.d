lib/treewidth/graph.ml: Array Fmt Fun Int List Set
