lib/treewidth/elimination.mli: Decomposition Graph Primal
