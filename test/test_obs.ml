(* Differential telemetry tests (DESIGN.md §8): the trace-event stream and
   the metrics registry must agree with what the engines report through
   their ordinary return values — [Chase.report.steps], [Variants.run.rounds],
   the derivation's simplification record — on every variant, over the
   zoo KBs and random ones.  Plus the sink contracts: JSONL lines parse
   and round-trip, and the null sink never sees an event. *)

open Syntax

let budget = { Chase.Variants.max_steps = 25; max_atoms = 2_000 }

let kbs () =
  [
    ("staircase", Zoo.Staircase.kb ());
    ("elevator", Zoo.Elevator.kb ());
  ]
  @ List.mapi
      (fun i kb -> (Printf.sprintf "random-%d" i, kb))
      (Zoo.Randomkb.generate_many ~seed:42 ~count:4 Zoo.Randomkb.default)

(* run [f] under a collecting sink, returning its result and the events *)
let collect f =
  let events = ref [] in
  let r =
    Obs.Trace.with_sink
      (Obs.Trace.Custom (fun e -> events := e :: !events))
      f
  in
  (r, List.rev !events)

let count p evs = List.length (List.filter p evs)

let is_applied = function Obs.Trace.Trigger_applied _ -> true | _ -> false

let is_round = function Obs.Trace.Round_start _ -> true | _ -> false

let is_retract = function Obs.Trace.Retract _ -> true | _ -> false

let is_merge = function Obs.Trace.Egd_merge _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Trigger_applied events ≡ Chase.report.steps, all five variants *)

let variants =
  [ Chase.Oblivious; Chase.Skolem; Chase.Restricted; Chase.Frugal; Chase.Core ]

let test_applied_equals_steps () =
  List.iter
    (fun (kname, kb) ->
      List.iter
        (fun v ->
          let report, evs = collect (fun () -> Chase.run ~budget v kb) in
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: applied events = report.steps" kname
               (Chase.variant_name v))
            report.Chase.steps (count is_applied evs))
        variants)
    (kbs ())

(* ------------------------------------------------------------------ *)
(* Round_start events ≡ run.rounds; applied ≡ derivation length - 1 *)

let def1_engines =
  [
    ("restricted", fun kb -> Chase.Variants.restricted ~budget kb);
    ("frugal", fun kb -> Chase.Variants.frugal ~budget kb);
    ("core", fun kb -> Chase.Variants.core ~budget kb);
    ( "core-round",
      fun kb -> Chase.Variants.core ~budget ~cadence:Chase.Variants.Every_round kb );
  ]

let test_rounds_and_lengths () =
  List.iter
    (fun (kname, kb) ->
      List.iter
        (fun (ename, engine) ->
          let run, evs = collect (fun () -> engine kb) in
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: round events = rounds" kname ename)
            run.Chase.Variants.rounds (count is_round evs);
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: applied events = |derivation| - 1" kname
               ename)
            (Chase.Derivation.length run.Chase.Variants.derivation - 1)
            (count is_applied evs))
        def1_engines)
    (kbs ())

(* ------------------------------------------------------------------ *)
(* Retract events ≡ derivation steps with a nonempty simplification
   (step 0 included: σ_0 = retraction-to-core of the facts) *)

let test_retracts_match_simplifications () =
  List.iter
    (fun (kname, kb) ->
      List.iter
        (fun (ename, engine) ->
          let run, evs = collect (fun () -> engine kb) in
          let folds =
            List.length
              (List.filter
                 (fun (st : Chase.Derivation.step) ->
                   not (Subst.is_empty st.Chase.Derivation.simplification))
                 (Chase.Derivation.steps run.Chase.Variants.derivation))
          in
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: retract events = nonempty σ_i" kname ename)
            folds (count is_retract evs))
        def1_engines)
    (kbs ())

(* ------------------------------------------------------------------ *)
(* Metrics registry agrees with the same quantities *)

let test_metrics_agree () =
  List.iter
    (fun (kname, kb) ->
      Corechase.Obs.Metrics.reset ();
      Corechase.Obs.Metrics.enabled := true;
      let run =
        Fun.protect
          ~finally:(fun () -> Corechase.Obs.Metrics.enabled := false)
          (fun () -> Chase.Variants.core ~budget kb)
      in
      Alcotest.(check int)
        (Printf.sprintf "%s: chase.triggers_applied counter" kname)
        (Chase.Derivation.length run.Chase.Variants.derivation - 1)
        (Obs.Metrics.counter_value "chase.triggers_applied");
      Alcotest.(check int)
        (Printf.sprintf "%s: chase.rounds counter" kname)
        run.Chase.Variants.rounds
        (Obs.Metrics.counter_value "chase.rounds"))
    (kbs ())

(* ------------------------------------------------------------------ *)
(* Stream engine: one Trigger_applied per derivation extension *)

let take n seq =
  let rec go n seq acc =
    if n = 0 then List.rev acc
    else
      match seq () with
      | Seq.Nil -> List.rev acc
      | Seq.Cons (x, rest) -> go (n - 1) rest (x :: acc)
  in
  go n seq []

let test_stream_events () =
  let elems, evs =
    collect (fun () ->
        take 6 (Chase.Variants.stream ~variant:`Restricted (Zoo.Staircase.kb ())))
  in
  Alcotest.(check int) "stream: applied events = elements - 1"
    (List.length elems - 1)
    (count is_applied evs)

(* ------------------------------------------------------------------ *)
(* EGD engine: a TGD application then one unification *)

let egd_kb () =
  let x = Term.fresh_var ~hint:"X" ()
  and y = Term.fresh_var ~hint:"Y" ()
  and z = Term.fresh_var ~hint:"Z" () in
  let a = Term.const "a" and b = Term.const "b" in
  let kb =
    Kb.of_lists
      ~facts:[ Atom.make "p" [ a; b ] ]
      ~rules:
        [
          Rule.make ~name:"mk_q"
            ~body:[ Atom.make "p" [ x; y ] ]
            ~head:[ Atom.make "q" [ x; z ] ]
            ();
        ]
  in
  let x' = Term.fresh_var ~hint:"X" () and y' = Term.fresh_var ~hint:"Y" () in
  Kb.with_egds
    [ Egd.make ~body:[ Atom.make "q" [ x'; y' ] ] x' y' ]
    kb

let test_egd_events () =
  let run, evs = collect (fun () -> Chase.Variants.Egds.run (egd_kb ())) in
  let applied = count is_applied evs and merges = count is_merge evs in
  Alcotest.(check int) "egd: one TGD application" 1 applied;
  Alcotest.(check int) "egd: one unification" 1 merges;
  Alcotest.(check int) "egd: steps = applications + unifications"
    run.Chase.Variants.Egds.steps (applied + merges);
  Alcotest.(check bool) "egd: terminated" true
    (run.Chase.Variants.Egds.outcome = Chase.Variants.Egds.Terminated)

(* ------------------------------------------------------------------ *)
(* Hom_backtrack: a dead-ending search reports its backtracks *)

let test_hom_backtrack () =
  let x = Term.fresh_var ~hint:"X" () in
  let src = Atomset.of_list [ Atom.make "p" [ x; x ] ] in
  let tgt =
    Homo.Instance.of_atomset
      (Atomset.of_list [ Atom.make "p" [ Term.const "a"; Term.const "b" ] ])
  in
  let found, evs = collect (fun () -> Homo.Hom.exists src tgt) in
  Alcotest.(check bool) "no homomorphism" false found;
  match List.filter (function Obs.Trace.Hom_backtrack _ -> true | _ -> false) evs with
  | [ Obs.Trace.Hom_backtrack f ] ->
      Alcotest.(check bool) "backtracks reported" true (f.backtracks >= 1);
      Alcotest.(check int) "src size" 1 f.src_atoms;
      Alcotest.(check int) "tgt size" 1 f.tgt_atoms
  | evs' ->
      Alcotest.failf "expected exactly one Hom_backtrack event, got %d"
        (List.length evs')

(* ------------------------------------------------------------------ *)
(* Tw_decomposed: width computations announce themselves *)

let test_tw_events () =
  let a = Term.const "a" and b = Term.const "b" and c = Term.const "c" in
  let triangle =
    Atomset.of_list
      [ Atom.make "p" [ a; b ]; Atom.make "p" [ b; c ]; Atom.make "p" [ c; a ] ]
  in
  let (w, ex), evs = collect (fun () -> Treewidth.best_effort triangle) in
  Alcotest.(check int) "triangle width" 2 w;
  Alcotest.(check bool) "triangle exact" true ex;
  match List.filter (function Obs.Trace.Tw_decomposed _ -> true | _ -> false) evs with
  | Obs.Trace.Tw_decomposed f :: _ ->
      Alcotest.(check int) "vertices" 3 f.vertices;
      Alcotest.(check int) "width" 2 f.width;
      Alcotest.(check bool) "exact" true f.exact
  | _ -> Alcotest.fail "expected a Tw_decomposed event"

(* ------------------------------------------------------------------ *)
(* JSONL sink: every line parses and round-trips *)

let test_jsonl_sink () =
  let path = Filename.temp_file "corechase" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      ignore
        (Obs.Trace.with_jsonl_file path (fun () ->
             Chase.Variants.core ~budget (Zoo.Staircase.kb ())));
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      let lines = List.rev !lines in
      Alcotest.(check bool) "some events written" true (List.length lines > 0);
      List.iter
        (fun line ->
          match Obs.Trace.of_json_line line with
          | None -> Alcotest.failf "unparseable trace line: %s" line
          | Some e ->
              Alcotest.(check string)
                "line survives the round trip" line (Obs.Trace.to_json e))
        lines)

(* ------------------------------------------------------------------ *)
(* Null sink: no events constructed, no counters moved *)

let test_null_sink_silent () =
  Obs.Trace.with_sink Obs.Trace.Null (fun () ->
      Obs.Trace.reset_emitted ();
      Corechase.Obs.Metrics.reset ();
      ignore (Chase.Variants.core ~budget (Zoo.Staircase.kb ()));
      ignore (Treewidth.best_effort (Kb.facts (Zoo.Elevator.kb ())));
      Alcotest.(check int) "no events emitted" 0 (Obs.Trace.events_emitted ());
      List.iter
        (fun (name, v) ->
          Alcotest.(check int) (name ^ " untouched while disabled") 0 v)
        (Obs.Metrics.counters ()))

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "obs.differential",
      [
        tc "applied events = report.steps (5 variants)" test_applied_equals_steps;
        tc "round events = run.rounds" test_rounds_and_lengths;
        tc "retract events = nonempty simplifications"
          test_retracts_match_simplifications;
        tc "metrics counters agree" test_metrics_agree;
        tc "stream engine events" test_stream_events;
        tc "egd engine events" test_egd_events;
        tc "hom backtrack event" test_hom_backtrack;
        tc "treewidth event" test_tw_events;
      ] );
    ( "obs.sinks",
      [
        tc "jsonl lines parse and round-trip" test_jsonl_sink;
        tc "null sink emits nothing" test_null_sink_silent;
      ] );
  ]
