lib/syntax/rule.mli: Atom Atomset Fmt Term
