(** Cycle analysis of the graph of rule dependencies, refining
    {!Rclasses.Dependency.agrd_sound}.

    The predicate-level dependency graph is a {e complete}
    overapproximation (it never misses a dependency), so its strongly
    connected components soundly over-cover every real dependency
    cycle.  Two refinements over the plain acyclicity bit:

    - {b datalog-cycles certificate}: if every cyclic SCC consists of
      datalog rules only, all chase variants terminate on every
      instance.  Topologically order the SCC condensation: datalog
      SCCs create no terms, and an existential rule outside every
      cycle draws its body from upstream components only, so by
      induction each component saturates finitely.  (This certificate
      is subsumed by weak acyclicity in expressive power but names the
      {e rules} responsible, which the justification trail wants.)
    - {b cycle diagnosis}: the cyclic SCCs of the complete graph, and
      of the sound (frozen-body) graph, as rule-name lists.  A frozen
      cycle through an existential rule is a genuine dependency cycle
      that can create terms — evidence (not proof) of divergence. *)

open Syntax

type diagnosis = {
  rules : int;  (** number of rules analysed *)
  cyclic : string list list;
      (** cyclic SCCs of the complete predicate-level graph, rule names
          in index order *)
  frozen_cyclic : string list list;
      (** cyclic SCCs of the sound frozen-body graph *)
  datalog_cycles_only : bool;
      (** every rule inside a cyclic (complete-graph) SCC is datalog —
          a universal termination certificate *)
  existential_frozen_cycle : bool;
      (** some sound-graph cycle contains an existential rule *)
}

val diagnose : Rule.t list -> diagnosis
