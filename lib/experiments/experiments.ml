open Syntax

let check ppf ok fmt =
  Format.kasprintf
    (fun msg ->
      Format.fprintf ppf "  [%s] %s@." (if ok then "ok" else "FAIL") msg;
      ok)
    fmt

let pp_series ppf name series =
  Format.fprintf ppf "  %-28s %s@." name
    (String.concat " " (List.map string_of_int series))

let budget steps = { Chase.Variants.max_steps = steps; max_atoms = 20_000 }

let tw a = fst (Treewidth.best_effort a)

let last_instance (run : Chase.Variants.run) =
  (Chase.Derivation.last run.Chase.Variants.derivation).Chase.Derivation.instance

let tw_series (run : Chase.Variants.run) =
  List.map
    (fun st -> tw st.Chase.Derivation.instance)
    (Chase.Derivation.steps run.Chase.Variants.derivation)

let size_series (run : Chase.Variants.run) =
  List.map
    (fun st -> Atomset.cardinal st.Chase.Derivation.instance)
    (Chase.Derivation.steps run.Chase.Variants.derivation)

(* ------------------------------------------------------------------ *)
(* F1: the class landscape *)

let exp_f1 ?(scale = 1) ppf =
  Format.fprintf ppf "=== F1: decidable-class landscape (Figure 1) ===@.";
  let steps = 60 * scale in
  let ok = ref true in
  let row name kb expect_fes_probe expect_bts_cert =
    let report = Rclasses.analyze (Kb.rules kb) in
    let fes_cert = Rclasses.implies_fes report in
    let bts_cert = Rclasses.implies_bts report in
    let termination =
      match Corechase.Probes.core_chase_terminates ~budget:(budget steps) kb with
      | Corechase.Probes.Terminates n -> Printf.sprintf "terminates(%d)" n
      | Corechase.Probes.No_verdict o ->
          Printf.sprintf "diverges(%s)" (Resilience.outcome_name o)
    in
    let profile =
      Corechase.Probes.tw_profile ~budget:(budget (40 * scale)) ~variant:`Core kb
    in
    Format.fprintf ppf "  %-18s fes-cert=%-5b bts-cert=%-5b cc=%-18s tw-max=%d%s@."
      name fes_cert bts_cert termination profile.Corechase.Probes.max_seen
      (if profile.Corechase.Probes.monotone_growing then " (growing)" else "");
    (match expect_fes_probe with
    | Some expected ->
        let actual = String.length termination >= 10 && String.sub termination 0 10 = "terminates" in
        ok := check ppf (actual = expected) "%s: core-chase termination as expected" name && !ok
    | None -> ());
    match expect_bts_cert with
    | Some expected ->
        ok := check ppf (bts_cert = expected) "%s: bts certificate as expected" name && !ok
    | None -> ()
  in
  row "transitive-closure" (Zoo.Classic.transitive_closure ()) (Some true)
    (Some true) (* datalog is trivially weakly guarded, hence bts *);
  row "fes-not-bts" (Zoo.Classic.fes_not_bts ()) (Some true) (Some false);
  row "bts-not-fes" (Zoo.Classic.bts_not_fes ()) (Some false) (Some true);
  row "core-terminating" (Zoo.Classic.core_terminating ()) (Some true) None;
  row "guarded-ancestor" (Zoo.Classic.guarded_ancestor ()) (Some false) (Some true);
  row "steepening-staircase" (Zoo.Staircase.kb ()) (Some false) (Some false);
  row "inflating-elevator" (Zoo.Elevator.kb ()) (Some false) (Some false);
  (* the separations of Figure 1, behaviourally:
     - fes-not-bts: the core chase terminates (fes) yet no guardedness-
       style bts certificate applies and its syntactic fes certificates
       fail too (its fes-hood is semantic);
     - bts-not-fes: guarded (bts) while the core chase diverges. *)
  let fes_not_bts = Rclasses.analyze (Kb.rules (Zoo.Classic.fes_not_bts ())) in
  let bts_not_fes = Rclasses.analyze (Kb.rules (Zoo.Classic.bts_not_fes ())) in
  let fnb_terminates =
    match
      Corechase.Probes.core_chase_terminates ~budget:(budget steps)
        (Zoo.Classic.fes_not_bts ())
    with
    | Corechase.Probes.Terminates _ -> true
    | Corechase.Probes.No_verdict _ -> false
  in
  ok :=
    check ppf
      (fnb_terminates && not (Rclasses.implies_bts fes_not_bts))
      "fes-not-bts: fes behaviour without a bts certificate"
    && !ok;
  let bnf_diverges =
    match
      Corechase.Probes.core_chase_terminates ~budget:(budget steps)
        (Zoo.Classic.bts_not_fes ())
    with
    | Corechase.Probes.Terminates _ -> false
    | Corechase.Probes.No_verdict _ -> true
  in
  ok :=
    check ppf
      (Rclasses.implies_bts bts_not_fes && bnf_diverges
      && not (Rclasses.implies_fes bts_not_fes))
      "bts-not-fes: bts certificate while the core chase diverges"
    && !ok;
  !ok

(* ------------------------------------------------------------------ *)
(* F2: the steepening staircase *)

let exp_f2 ?(scale = 1) ppf =
  Format.fprintf ppf "=== F2: steepening staircase (Figure 2, Props 3-5) ===@.";
  let steps = 45 * scale in
  let ok = ref true in
  let kb = Zoo.Staircase.kb () in
  let cc = Chase.Variants.core ~budget:(budget steps) kb in
  let rc = Chase.Variants.restricted ~budget:(budget steps) kb in
  let cc_tw = tw_series cc in
  pp_series ppf "core-chase treewidth" cc_tw;
  ok :=
    check ppf
      (Corechase.Measures.uniformly_bounded_by 2 cc_tw)
      "core-chase sequence uniformly treewidth-bounded by 2 (Prop 4)"
    && !ok;
  pp_series ppf "core-chase |F_i|" (size_series cc);
  pp_series ppf "restricted |F_i|" (size_series rc);
  ok :=
    check ppf
      (Atomset.cardinal (last_instance cc) < Atomset.cardinal (last_instance rc))
      "core chase instances stay leaner than restricted"
    && !ok;
  (* Prop 5: the natural aggregation (= I^h) accumulates grids *)
  let nat = Chase.Derivation.natural_aggregation cc.Chase.Variants.derivation in
  let grid_n = Treewidth.Grid.lower_bound_via_grids ~max_n:3 nat in
  Format.fprintf ppf "  largest grid found in D*: %dx%d (tw ≥ %d)@." grid_n
    grid_n grid_n;
  ok := check ppf (grid_n >= 2) "D* contains a 2x2 grid (Prop 5 prefix)" && !ok;
  (* generator side: prefixes of I^h have growing exact treewidth *)
  let prefix_tws =
    List.map
      (fun n -> tw (Zoo.Staircase.universal_model_prefix ~cols:n).Zoo.Staircase.atoms)
      [ 2; 4; 6 ]
  in
  pp_series ppf "tw(P^h_n), n=2,4,6" prefix_tws;
  ok :=
    check ppf
      (match prefix_tws with [ a; b; c ] -> a < c && a <= b && b <= c | _ -> false)
      "tw(I^h prefix) grows with the prefix (no finite bound, Prop 5)"
    && !ok;
  ok :=
    check ppf
      (Homo.Hom.maps_to (last_instance rc)
         (Zoo.Staircase.universal_model_prefix ~cols:(4 * scale + 8)).Zoo.Staircase.atoms)
      "restricted-chase prefix embeds into the I^h generator (Prop 3)"
    && !ok;
  !ok

(* ------------------------------------------------------------------ *)
(* F3: the inflating elevator KB *)

let exp_f3 ?(scale = 1) ppf =
  Format.fprintf ppf "=== F3: inflating elevator KB (Figure 3, Prop 6) ===@.";
  let ok = ref true in
  let kb = Zoo.Elevator.kb () in
  let n = 3 + scale in
  let s = Zoo.Elevator.universal_model_prefix ~cols:n in
  Format.fprintf ppf "  I^v prefix (cols=%d): %d atoms, %d terms, tw=%d@." n
    (Atomset.cardinal s.Zoo.Elevator.atoms)
    (List.length (Atomset.terms s.Zoo.Elevator.atoms))
    (tw s.Zoo.Elevator.atoms);
  ok :=
    check ppf
      (Homo.Hom.maps_to (Kb.facts kb) s.Zoo.Elevator.atoms)
      "F_v embeds into the I^v generator"
    && !ok;
  let frontier =
    List.filter_map (fun j -> s.Zoo.Elevator.term n j) (List.init (2 * n + 1) Fun.id)
  in
  let module TS = Set.Make (Term) in
  let fr = TS.of_list frontier in
  let confined =
    List.for_all
      (fun tr ->
        let image =
          Subst.apply (Chase.Trigger.mapping tr) (Rule.body (Chase.Trigger.rule tr))
        in
        List.exists (fun t -> TS.mem t fr) (Atomset.terms image))
      (Chase.Trigger.unsatisfied_triggers (Kb.rules kb) s.Zoo.Elevator.atoms)
  in
  ok :=
    check ppf confined
      "I^v generator is a model except at its frontier column (Prop 6)"
    && !ok;
  let rc = Chase.Variants.restricted ~budget:(budget (40 * scale)) kb in
  ok :=
    check ppf
      (Homo.Hom.maps_to (last_instance rc)
         (Zoo.Elevator.spine_prefix ~cols:40).Zoo.Elevator.atoms)
      "restricted-chase prefix collapses onto the spine"
    && !ok;
  !ok

(* ------------------------------------------------------------------ *)
(* F4: I^v*, the growing cores, and Corollary 1 *)

let exp_f4 ?(scale = 1) ppf =
  Format.fprintf ppf
    "=== F4: elevator models & core growth (Figure 4, Props 7-8, Cor 1) ===@.";
  let ok = ref true in
  (* I^v* has treewidth 1 at every prefix length (Prop 7) *)
  let spine_tws =
    List.map
      (fun n -> tw (Zoo.Elevator.spine_prefix ~cols:n).Zoo.Elevator.atoms)
      [ 2; 5; 8; 12 ]
  in
  pp_series ppf "tw(I^v* prefix), n=2,5,8,12" spine_tws;
  ok :=
    check ppf
      (List.for_all (fun w -> w = 1) spine_tws)
      "I^v* is a treewidth-1 universal model (Prop 7)"
    && !ok;
  (* Section 5's remark: the grid-based counterexamples defeat other
     structural measures too — measure pathwidth alongside *)
  let spine_pws =
    List.map
      (fun n ->
        fst (Treewidth.Pathwidth.of_atomset
               (Zoo.Elevator.spine_prefix ~cols:n).Zoo.Elevator.atoms))
      [ 2; 5; 8 ]
  in
  pp_series ppf "pw(I^v* prefix), n=2,5,8" spine_pws;
  ok :=
    check ppf
      (List.for_all (fun w -> w <= 1) spine_pws)
      "the spine is pathwidth-1 as well"
    && !ok;
  (* growing cores: I^v_n are cores with growing treewidth (Prop 8.1-8.2:
     tw ≥ ⌊n/3⌋+1, so growth shows from n ≈ 6 on) *)
  let ns = [ 1; 2; 4; 3 + (3 * scale) ] in
  let cores_ok = ref true and tws = ref [] in
  List.iter
    (fun n ->
      let fc = Zoo.Elevator.frontier_core ~cols:n in
      if not (Homo.Core.is_core fc.Zoo.Elevator.atoms) then cores_ok := false;
      tws := tw fc.Zoo.Elevator.atoms :: !tws)
    ns;
  let tws = List.rev !tws in
  pp_series ppf "tw(I^v_n)" tws;
  let pws =
    List.map
      (fun n ->
        fst (Treewidth.Pathwidth.of_atomset
               (Zoo.Elevator.frontier_core ~cols:n).Zoo.Elevator.atoms))
      ns
  in
  pp_series ppf "pw(I^v_n)" pws;
  ok :=
    check ppf
      (List.for_all2 (fun p t -> p >= t) pws tws)
      "pathwidth dominates treewidth on every I^v_n (Section 5 remark)"
    && !ok;
  ok := check ppf !cores_ok "every I^v_n is a core (Prop 8.1)" && !ok;
  ok :=
    check ppf
      (List.length tws >= 2
      && List.nth tws (List.length tws - 1) > List.hd tws)
      "tw(I^v_n) grows (Prop 8.2)"
    && !ok;
  (* Corollary 1: the core chase's treewidth series grows *)
  let cc = Chase.Variants.core ~budget:(budget (60 * scale)) (Zoo.Elevator.kb ()) in
  let series = tw_series cc in
  pp_series ppf "core-chase treewidth" series;
  let max_tw = List.fold_left max 0 series in
  ok :=
    check ppf (max_tw >= 2)
      "core-chase treewidth exceeds every small bound on the prefix (Cor 1)"
    && !ok;
  let tail = List.filteri (fun i _ -> i >= List.length series - 5) series in
  ok :=
    check ppf
      (List.for_all (fun w -> w >= max_tw - 1) tail)
      "treewidth does not recur to small values at the end of the prefix"
    && !ok;
  !ok

(* ------------------------------------------------------------------ *)
(* F5: the robust sequence and the aggregation theorem *)

let exp_f5 ?(scale = 1) ppf =
  Format.fprintf ppf
    "=== F5: robust aggregation of the staircase (Defs 14-16, Props 10-12) ===@.";
  let ok = ref true in
  let cc = Chase.Variants.core ~budget:(budget (40 * scale)) (Zoo.Staircase.kb ()) in
  let d = cc.Chase.Variants.derivation in
  let r = Corechase.Robust.of_derivation d in
  (match Corechase.Robust.check_invariants r with
  | Ok () -> ok := check ppf true "all Definition-15 invariants hold" && !ok
  | Error m -> ok := check ppf false "invariants: %s" m && !ok);
  let agg = Corechase.Robust.aggregation r in
  let stable = Corechase.Robust.stable_aggregation r in
  let nat = Chase.Derivation.natural_aggregation d in
  (* aggregations can exceed the exact-treewidth vertex budget: min-fill
     upper bounds suffice for the ≤-side checks, grids for the ≥-side *)
  let tw_ub = Treewidth.upper_bound in
  Format.fprintf ppf
    "  |D*|=%d (tw≤%d)   |D⊛ prefix|=%d (tw≤%d)   |stable|=%d (tw≤%d)@."
    (Atomset.cardinal nat) (tw_ub nat) (Atomset.cardinal agg) (tw_ub agg)
    (Atomset.cardinal stable) (tw_ub stable);
  ok :=
    check ppf (tw_ub agg <= 2)
      "D⊛ inherits the derivation's treewidth bound 2 (Prop 12.2)"
    && !ok;
  ok :=
    check ppf (tw_ub stable <= 1) "stable part of D⊛ is the column (tw 1)"
    && !ok;
  ok :=
    check ppf
      (Treewidth.Grid.contains ~n:2 nat)
      "natural aggregation D* contains grids (its treewidth diverges)"
    && !ok;
  ok :=
    check ppf
      (not (Treewidth.Grid.contains ~n:2 stable))
      "stable D⊛ contains no grid"
    && !ok;
  let col = Zoo.Staircase.infinite_column_prefix ~height:(30 * scale) in
  ok :=
    check ppf
      (Homo.Hom.maps_to stable col.Zoo.Staircase.atoms)
      "stable D⊛ embeds into the Ĩ^h column (Section 8's narrative)"
    && !ok;
  (* Prop 10: τ stabilisation of G_0 *)
  let k = Corechase.Robust.length r - 1 in
  let img j = Subst.apply (Corechase.Robust.tau_trace r ~from_:0 ~to_:j) (Corechase.Robust.g_at r 0) in
  ok :=
    check ppf
      (Atomset.equal (img k) (img (k - 1)))
      "τ̄(G_0) is stable at the end of the prefix (Prop 10)"
    && !ok;
  !ok

(* ------------------------------------------------------------------ *)
(* T1: replay of Table 1's schedule *)

let find_trigger rule_name rules inst mapping_hints =
  let r = List.find (fun r -> Rule.name r = rule_name) rules in
  let vars = List.sort_uniq Term.compare (Rule.universal_vars r) in
  let sigma =
    List.fold_left
      (fun s v ->
        match List.assoc_opt (Term.hint v) mapping_hints with
        | Some t -> Subst.add v t s
        | None -> s)
      Subst.empty vars
  in
  let tr = Chase.Trigger.make r sigma in
  if not (Chase.Trigger.is_trigger_for tr inst) then None else Some tr

let exp_t1 ?(scale = 1) ppf =
  Format.fprintf ppf "=== T1: Table 1 replay (column C_k → step S_k) ===@.";
  let ok = ref true in
  let kb = Zoo.Staircase.kb () in
  let rules = Kb.rules kb in
  List.iter
    (fun k ->
      let s = Zoo.Staircase.universal_model_prefix ~cols:(k + 1) in
      let cell i j = Option.get (s.Zoo.Staircase.term i j) in
      let column = Zoo.Staircase.column s k in
      (* drive a derivation from (C_k, Σ_h) following Table 1's schedule *)
      let kb_k = Kb.make ~facts:column ~rules in
      let d = ref (Chase.Derivation.start kb_k) in
      let apply rule_name hints =
        let inst = (Chase.Derivation.last !d).Chase.Derivation.instance in
        match find_trigger rule_name rules inst hints with
        | Some tr ->
            d := Chase.Derivation.extend !d tr ~simplification:Subst.empty
        | None -> failwith (rule_name ^ ": scheduled trigger not applicable")
      in
      (try
         (* R1 on the top loop *)
         apply "Rh1" [ ("X", cell k k) ];
         (* the fresh nulls created play the roles of (k,k+1), (k+1,k),
            (k+1,k+1); recover them from the derivation's last step *)
         let last = Chase.Derivation.last !d in
         let x' , y, y' =
           match last.Chase.Derivation.trigger with
           | Some tr ->
               let ps = last.Chase.Derivation.pi_safe in
               let r1 = Chase.Trigger.rule tr in
               let img h =
                 Subst.apply_term ps
                   (List.find (fun v -> Term.hint v = h) (Rule.existential_vars r1))
               in
               (img "X'", img "Y", img "Y'")
           | None -> assert false
         in
         (* bookkeeping for the new column's cells *)
         let new_cell = Hashtbl.create 8 in
         Hashtbl.replace new_cell (k, k + 1) x';
         Hashtbl.replace new_cell (k + 1, k) y;
         Hashtbl.replace new_cell (k + 1, k + 1) y';
         (* R2 from top to bottom: j = k .. 1 *)
         for j = k downto 1 do
           apply "Rh2"
             [
               ("X", cell k (j - 1)); ("X'", cell k j);
               ("Y'", Hashtbl.find new_cell (k + 1, j));
             ];
           let last = Chase.Derivation.last !d in
           let ps = last.Chase.Derivation.pi_safe in
           let r2 =
             Chase.Trigger.rule (Option.get last.Chase.Derivation.trigger)
           in
           let y_new =
             Subst.apply_term ps
               (List.find (fun v -> Term.hint v = "Y") (Rule.existential_vars r2))
           in
           Hashtbl.replace new_cell (k + 1, j - 1) y_new
         done;
         (* R3 propagates the floor *)
         apply "Rh3"
           [ ("X", cell k 0); ("Y", Hashtbl.find new_cell (k + 1, 0)) ];
         (* R4 climbs the loops: rows 1 .. k+1 *)
         for j = 1 to k + 1 do
           apply "Rh4"
             [
               ("X", Hashtbl.find new_cell (k + 1, j - 1));
               ("X'", Hashtbl.find new_cell (k + 1, j));
             ]
         done;
         let result = (Chase.Derivation.last !d).Chase.Derivation.instance in
         let expected = Zoo.Staircase.step_atomset s k in
         ok :=
           check ppf
             (Homo.Morphism.isomorphic result expected)
             "k=%d: schedule yields S^h_%d (%d rule applications)" k k
             (Chase.Derivation.length !d - 1)
           && !ok
       with Failure m -> ok := check ppf false "k=%d: %s" k m && !ok))
    (List.init (1 + scale) (fun i -> i + 1));
  !ok

let all =
  [
    ("F1", exp_f1);
    ("F2", exp_f2);
    ("F3", exp_f3);
    ("F4", exp_f4);
    ("F5", exp_f5);
    ("T1", exp_t1);
  ]

let run_all ?scale ppf =
  List.fold_left
    (fun acc (name, f) ->
      Format.fprintf ppf "@.";
      let ok = f ?scale ppf in
      Format.fprintf ppf "--- %s: %s ---@." name (if ok then "PASS" else "FAIL");
      acc && ok)
    true all
