(** Flat interned atom representation (DESIGN.md §12).

    The hot path of homomorphism search and instance maintenance runs on
    a flat mirror of the boxed {!Term.t}/{!Atom.t} trees:

    - predicate names and constant strings are interned into dense
      non-negative ids by a process-wide, mutex-protected symbol table;
    - a variable of {!Term} rank [r] is encoded as the negative code
      [lnot r] — the PR-4 [Atomic] freshness counter carries over
      unchanged, and the two sign classes can never collide;
    - an atom is a predicate id plus an [int array] of term codes, with
      O(arity) integer hash/equal and an allocation-free substitution
      application into a reusable scratch array.

    The boxed API remains the parse/print boundary ([Dlgp], checkpoint
    files, trace sinks): {!encode}/{!decode} convert at the edges, and
    [decode ∘ encode] is the identity up to {!Atom.equal} (variable
    hints, which equality ignores, are not stored flat — consumers that
    print keep the boxed originals). *)

module Symtab : sig
  val intern : string -> int
  (** Id of the symbol, allocating a fresh dense id on first sight.
      Thread-safe (shared across [Par] worker domains). *)

  val find : string -> int option
  (** Id of the symbol if already interned; never allocates an id. *)

  val name : int -> string
  (** Inverse of {!intern}.  @raise Invalid_argument on unknown ids. *)

  val size : unit -> int
  (** Number of interned symbols (monotone; the table never shrinks). *)
end

val no_code : int
(** Sentinel ([min_int]) used by searches for "unbound"; never a valid
    code ({!code_of_var_rank} of any real rank is [> min_int]). *)

val code_of_term : Term.t -> int
(** Constants intern (non-negative id); variables encode as [lnot rank]
    (negative).  Total and injective up to {!Term.equal}. *)

val code_of_term_opt : Term.t -> int option
(** Query-side encoding: [None] for a constant that was never interned
    (so index probes cannot grow the symbol table). *)

val term_of_code : int -> Term.t
(** Decode a code back to a boxed term.  Constants round-trip exactly;
    variables come back with an empty hint (rank — the identity — is
    preserved, and {!Term.equal} ignores hints).  Callers that need
    hint-exact terms keep a side map from codes to their boxed
    originals, as {!Homo.Instance} does.
    @raise Invalid_argument on {!no_code}. *)

val is_var_code : int -> bool

val code_of_var_rank : int -> int

val rank_of_code : int -> int
(** Inverse of {!code_of_var_rank} (both are [lnot]). *)

type t = { pred : int; args : int array }
(** One flat atom.  The [args] array is owned by the atom: callers must
    not mutate it after construction (instances share these arrays
    freely across persistent versions). *)

val make : int -> int array -> t

val pred : t -> int

val args : t -> int array

val arity : t -> int

val is_ground : t -> bool

val encode : Atom.t -> t
(** Interns the predicate and every constant argument. *)

val decode : t -> Atom.t
(** [decode (encode a)] equals [a] up to {!Atom.equal}. *)

val equal : t -> t -> bool
(** O(arity) over ints.  Agrees with {!Atom.equal} through {!encode}:
    [equal (encode a) (encode b) = Atom.equal a b]. *)

val compare : t -> t -> int

val hash : t -> int
(** O(arity) integer mixing — no polymorphic-hash traversal, no
    allocation.  [equal a b] implies [hash a = hash b]. *)

val pp : t Fmt.t
(** Debug printer over raw codes ([#pred(c1,c2)]); use {!decode} and
    {!Atom.pp} for human-readable output. *)

module Subst : sig
  type flat := t

  type t = (int, int) Hashtbl.t
  (** Variable code -> term code. *)

  val of_subst : Subst.t -> t

  val apply_code : t -> int -> int

  val apply_into : t -> args:int array -> scratch:int array -> bool
  (** Write σ(args) into the prefix of [scratch] (length ≥ [args]) and
      report whether any code moved — zero allocations, the primitive
      behind incremental {!Homo.Instance.apply_subst}.  Agrees with the
      boxed {!Syntax.Subst.apply_atom} through {!encode} (tested in
      [test_props.ml]).
      @raise Invalid_argument if [scratch] is shorter than [args]. *)

  val apply : t -> flat -> flat
  (** Allocating convenience wrapper (returns the input when σ leaves
      the atom fixed). *)
end
