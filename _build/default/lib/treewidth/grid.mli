(** Grids inside atomsets (Definition 5) and the lower bound of Fact 2.

    An atomset [A] contains an [n×n]-grid when there are [n²] distinct
    terms [t_i^j] such that vertically and horizontally adjacent pairs
    co-occur in some atom of [A].  Fact 2: containment of an [n×n]-grid
    implies [tw(A) ≥ n].

    Checking a *given* naming is linear; *searching* for a grid is subgraph
    isomorphism on the Gaifman graph, which we solve by encoding adjacency
    as a binary predicate and reusing the injective homomorphism solver. *)

open Syntax

val check : (int -> int -> Term.t) -> int -> Atomset.t -> bool
(** [check naming n a]: does the naming [t_i^j = naming i j]
    (1-based [i], [j] per Definition 5) witness an [n×n]-grid in [a]? *)

val find : n:int -> Atomset.t -> Term.t array array option
(** Search for an [n×n]-grid among the terms of the atomset.  Exponential
    in general: intended for small [n] (≤ 3–4) on moderate instances. *)

val contains : n:int -> Atomset.t -> bool

val lower_bound_via_grids : ?max_n:int -> Atomset.t -> int
(** The largest [n ≤ max_n] (default 3) such that an [n×n]-grid is found;
    by Fact 2 this is a treewidth lower bound.  Returns 0 when even a 1×1
    grid (a term) is absent. *)
