(* Interactive chase shell — a thin stdin loop over the Repl interpreter.

   Run with:  dune exec bin/corechase_repl.exe
   then e.g.: kb p(a). [spawn] e(X,Y), p(Y) :- p(X). [loop] e(X,X) :- p(X).
              step 3
              show
              robust
              quit *)

let () =
  print_endline "corechase shell — type 'help' for commands";
  let rec loop st =
    if Repl.wants_exit st then ()
    else begin
      print_string "chase> ";
      match read_line () with
      | exception End_of_file -> ()
      | line ->
          let st', out = Repl.exec st line in
          if out <> "" then print_endline out;
          loop st'
    end
  in
  loop Repl.initial
