lib/modelfinder/modelfinder.ml: Atomset Encode Homo Kb List Rule Sat Syntax Term
