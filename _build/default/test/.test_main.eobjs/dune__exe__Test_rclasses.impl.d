test/test_rclasses.ml: Alcotest Atom Atomset Chase Corechase Kb List Rclasses Rule Syntax Term Zoo
