(** Treewidth lower bounds.

    - [mmd]: the Maximum Minimum Degree bound (a.k.a. the degeneracy
      bound): repeatedly delete a minimum-degree vertex; the largest
      minimum degree encountered is a lower bound on treewidth.
    - [clique]: (size of any clique) - 1 is a lower bound; we report the
      largest clique found greedily (sound, not necessarily maximum). *)

val mmd : Graph.t -> int
(** [-1] on the empty graph. *)

val greedy_clique : Graph.t -> int list
(** A (maximal, not necessarily maximum) clique. *)

val clique : Graph.t -> int
(** [List.length (greedy_clique g) - 1]. *)

val best : Graph.t -> int
(** The max of the implemented bounds. *)
