open Syntax

type strategy = By_variable | By_atom

let strategy = ref By_variable

(* The fold search works on one index of the current instance; candidate
   targets (the instance minus the atoms carrying one variable / minus one
   atom) are derived from it by incremental removal rather than rebuilt. *)
let find_fold_indexed idx =
  let a = Instance.atomset idx in
  match !strategy with
  | By_variable ->
      List.find_map
        (fun x ->
          let target = Instance.remove_atoms idx (Instance.atoms_with_term idx x) in
          Hom.find a target)
        (Atomset.vars a)
  | By_atom ->
      List.find_map
        (fun at ->
          if Atom.is_ground at then None
          else Hom.find a (Instance.remove_atoms idx [ at ]))
        (Atomset.to_list a)

let find_fold a = find_fold_indexed (Instance.of_atomset a)

let rec fold_loop sigma idx =
  match find_fold_indexed idx with
  | None -> (sigma, Instance.atomset idx)
  | Some h -> fold_loop (Subst.compose h sigma) (Instance.apply_subst h idx)

let retraction_to_core a =
  let sigma_star, c = fold_loop Subst.empty (Instance.of_atomset a) in
  if Subst.is_empty sigma_star then Subst.empty
  else begin
    (* σ* : A → C is a homomorphism onto the core C; its restriction to C
       is an endomorphism of the finite core C, hence an automorphism.
       Pre-composing with the inverse yields a retraction. *)
    let g = Subst.restrict (Atomset.vars c) sigma_star in
    let r =
      if Subst.is_identity_on (Atomset.terms c) g then sigma_star
      else
        let g_inv = Morphism.invert_automorphism c g in
        Subst.compose g_inv sigma_star
    in
    assert (Subst.is_retraction_of a r);
    r
  end

let core_with_retraction a =
  let r = retraction_to_core a in
  (Subst.apply r a, r)

let of_atomset a = fst (core_with_retraction a)

let is_core a = match find_fold a with None -> true | Some _ -> false
