(** Syntactic decidability classes for existential rules (the concrete
    landscape sketched in Sections 1 and 4 of the paper).

    Entry module of the [rclasses] library: re-exports {!Position},
    {!Guardedness}, {!Acyclicity} and {!Dependency} and offers a one-call
    analysis with the standard implications

    - datalog / weak acyclicity / joint acyclicity / acyclic GRD ⟹ the
      chase terminates on every instance ⟹ fes ⟹ core-bts;
    - (weakly) (frontier-)guarded / linear ⟹ treewidth-bounded chases
      ⟹ bts ⟹ core-bts. *)

module Position = Position
module Guardedness = Guardedness
module Acyclicity = Acyclicity
module Dependency = Dependency

open Syntax

type report = {
  datalog : bool;
  linear : bool;
  guarded : bool;
  frontier_guarded : bool;
  frontier_one : bool;
  weakly_guarded : bool;
  weakly_frontier_guarded : bool;
  weakly_acyclic : bool;
  jointly_acyclic : bool;
  agrd_sound : bool;
}

let analyze (rules : Rule.t list) : report =
  {
    datalog = List.for_all Rule.is_datalog rules;
    linear = Guardedness.ruleset_linear rules;
    guarded = Guardedness.ruleset_guarded rules;
    frontier_guarded = Guardedness.ruleset_frontier_guarded rules;
    frontier_one = Guardedness.ruleset_frontier_one rules;
    weakly_guarded = Guardedness.ruleset_weakly_guarded rules;
    weakly_frontier_guarded = Guardedness.ruleset_weakly_frontier_guarded rules;
    weakly_acyclic = Acyclicity.weakly_acyclic rules;
    jointly_acyclic = Acyclicity.jointly_acyclic rules;
    agrd_sound = Dependency.agrd_sound rules;
  }

(** Syntactic certificate that the ruleset is fes (core chase terminates on
    every instance). *)
let implies_fes (r : report) : bool =
  r.datalog || r.weakly_acyclic || r.jointly_acyclic || r.agrd_sound

(** Syntactic certificate that the ruleset is bts (treewidth-bounded
    restricted chases on every instance). *)
let implies_bts (r : report) : bool =
  r.linear || r.guarded || r.frontier_guarded || r.frontier_one
  || r.weakly_guarded || r.weakly_frontier_guarded

(** Syntactic certificate for the paper's core-bts (Definition 17):
    subsumes both (Proposition 13). *)
let implies_core_bts (r : report) : bool = implies_fes r || implies_bts r

let pp_report ppf (r : report) =
  let flag name b = Fmt.pf ppf "  %-26s %s@," name (if b then "yes" else "no") in
  Fmt.pf ppf "@[<v>";
  flag "datalog" r.datalog;
  flag "linear" r.linear;
  flag "guarded" r.guarded;
  flag "frontier-guarded" r.frontier_guarded;
  flag "frontier-one" r.frontier_one;
  flag "weakly guarded" r.weakly_guarded;
  flag "weakly frontier-guarded" r.weakly_frontier_guarded;
  flag "weakly acyclic" r.weakly_acyclic;
  flag "jointly acyclic" r.jointly_acyclic;
  flag "aGRD (pred-level, sound)" r.agrd_sound;
  flag "⟹ fes" (implies_fes r);
  flag "⟹ bts" (implies_bts r);
  flag "⟹ core-bts" (implies_core_bts r);
  Fmt.pf ppf "@]"
