(* corechase — command-line front end.

   Subcommands:
     chase      run a chase variant on a DLGP file (--batch: a manifest
                of files, one independent chase per line via Par.Batch)
     resume     continue a chase from an on-disk checkpoint
     entail     decide the file's queries (Theorem-1 skeleton)
     analyze    termination analysis + engine routing (DESIGN.md §13)
     classify   syntactic class analysis + behavioural probes
     treewidth  treewidth of the facts of a DLGP file
     repro      regenerate the paper's figures/tables (F1..F5, T1)
     zoo        print a built-in KB in DLGP syntax
     bench      batched-throughput speedup curves (DESIGN.md §14)

   Exit codes (see README "Exit codes"):
     0  success / everything entailed / fixpoint reached
     1  a query was not entailed
     2  a budget or the deadline stopped the run before a verdict
     3  usage or input error (bad file, bad checkpoint, bad combination);
        also analyze/classify --strict with an `unknown' verdict
     124/125  command-line parse errors (cmdliner's own codes) *)

open Cmdliner
module CTerm = Cmdliner.Term
open Syntax

let exit_ok = 0

(* exit code 1 ("a query was not entailed") is produced through
   [Server.Queryeval.exit_code], the severity mapping shared with the
   serving path *)
let exit_stopped = 2

let exit_input = 3

(* structured aborts: print to stderr, exit with a documented code *)
let die code fmt =
  Fmt.kstr
    (fun msg ->
      Fmt.epr "corechase: %s@." msg;
      exit code)
    fmt

let load_document path =
  match Dlgp.parse_file path with
  | Ok d -> d
  | Error e -> die exit_input "%s: %a" path Dlgp.pp_error e

let load_kb path = Dlgp.kb_of_document (load_document path)

(* common args *)
let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"DLGP input file.")

let steps_arg =
  Arg.(value & opt int 500 & info [ "steps" ] ~doc:"Rule-application budget.")

let atoms_arg =
  Arg.(value & opt int 20000 & info [ "max-atoms" ] ~doc:"Instance size budget.")

let budget_of steps atoms = { Chase.Variants.max_steps = steps; max_atoms = atoms }

(* resilience (DESIGN.md §11) *)
let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget for the run.  When it passes, the engines \
           stop cooperatively at the next poll point and report the \
           $(b,deadline exceeded) outcome (exit code 2) with the last \
           consistent instance.")

let token_of_deadline deadline =
  Option.map (fun s -> Resilience.Token.create ~deadline_s:s ()) deadline

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Write a resumable checkpoint of the engine state to $(docv) \
           (atomically, last one wins) at round boundaries.  Derivation \
           engines only (restricted, frugal, core); resume with \
           $(b,corechase resume).")

let checkpoint_every_arg =
  Arg.(
    value & opt int 1
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Write every $(docv)-th round-boundary checkpoint (default 1).")

(* observability (DESIGN.md §8) *)
let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a JSONL trace of chase events to $(docv).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Collect metrics during the run and print the registry afterwards.")

(* incremental-core scoping (DESIGN.md §9) *)
let core_scope_arg =
  let scope_conv =
    Arg.enum
      [
        ("delta", Homo.Core.Scoped);
        ("full", Homo.Core.Exhaustive);
        ("audit", Homo.Core.Audit);
      ]
  in
  Arg.(
    value
    & opt scope_conv Homo.Core.Scoped
    & info [ "core-scope" ] ~docv:"POLICY"
        ~doc:
          "Core-maintenance fold scoping: $(b,delta) restricts each step's \
           first fold search to the delta's candidate set, $(b,full) always \
           searches exhaustively, $(b,audit) runs both and fails on \
           disagreement.")

(* parallelism (DESIGN.md §10) *)
let jobs_arg =
  let jobs_conv =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ -> Error (`Msg "jobs must be >= 1")
      | None -> Error (`Msg "expected a positive integer")
    in
    Arg.conv (parse, Fmt.int)
  in
  Arg.(
    value
    (* default: the pool CORECHASE_JOBS sized at startup *)
    & opt jobs_conv (Corechase.Par.jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Size of the domain pool the chase's hom searches and the \
           treewidth branch-and-bound fan out over (1 = sequential; \
           results are identical for every $(docv)).  Defaults to \
           $(b,CORECHASE_JOBS) or 1.")

let with_obs ~trace ~metrics f =
  if metrics then begin
    Corechase.Obs.Metrics.reset ();
    Corechase.Obs.Metrics.enabled := true
  end;
  Fun.protect
    ~finally:(fun () ->
      if metrics then begin
        Corechase.Obs.Metrics.enabled := false;
        Fmt.pr "@.metrics:@.%a" Corechase.Obs.Metrics.pp_table ();
        if Corechase.Par.jobs () > 1 then
          Fmt.pr "@.metrics by domain:@.%a"
            Corechase.Obs.Metrics.pp_domain_table ()
      end)
    (fun () ->
      match trace with
      | None -> f ()
      | Some path -> Corechase.Obs.Trace.with_jsonl_file path f)

(* engine routing (DESIGN.md §13) *)
let engine_arg =
  let engine_conv =
    Arg.enum
      [
        ("auto", `Auto);
        ("datalog", `Datalog);
        ("restricted", `Restricted);
        ("core", `Core);
      ]
  in
  Arg.(
    value
    & opt (some engine_conv) None
    & info [ "engine" ]
        ~doc:
          "Engine selection: $(b,auto) runs the termination analyzer and \
           routes to the cheapest sound engine (semi-naive datalog for \
           existential-free rules, restricted chase when termination is \
           certified, core chase otherwise); $(b,datalog), \
           $(b,restricted) and $(b,core) force that engine.  Overrides \
           $(b,--variant).")

(* resolve --engine against the analyzer; prints the routing line so the
   decision is part of the command's visible, pinned output *)
let resolve_engine ~budget kb = function
  | `Datalog -> Chase.Engine_datalog
  | `Restricted -> Chase.Engine_restricted
  | `Core -> Chase.Engine_core
  | `Auto ->
      let report = Analyze.analyze ~budget kb in
      let choice, reason = Analyze.route_of_report kb report in
      Fmt.pr "engine:     %s (%s)@." (Chase.engine_name choice) reason;
      choice

(* chase *)
let variant_arg =
  let variant_conv =
    Arg.enum
      [
        ("oblivious", Chase.Oblivious); ("skolem", Chase.Skolem);
        ("restricted", Chase.Restricted); ("frugal", Chase.Frugal);
        ("core", Chase.Core);
      ]
  in
  Arg.(value & opt variant_conv Chase.Core & info [ "variant"; "v" ] ~doc:"Chase variant: oblivious, skolem, restricted or core.")

let outcome_line o =
  match o with
  | Resilience.Fixpoint -> "terminated (fixpoint reached)"
  | o -> Fmt.str "%a" Resilience.pp_outcome o

let print_report ~verbose (report : Chase.report) =
  Fmt.pr "variant:    %s@." (Chase.variant_name report.Chase.variant);
  Fmt.pr "outcome:    %s@." (outcome_line report.Chase.outcome);
  Fmt.pr "steps:      %d@." report.Chase.steps;
  Fmt.pr "final size: %d atoms@." (Atomset.cardinal report.Chase.final);
  if verbose then
    Atomset.iter
      (fun a -> Fmt.pr "%s.@." (Dlgp.atom_to_string a))
      report.Chase.final

let exit_of_outcome = function
  | Resilience.Fixpoint -> exit_ok
  | _ -> exit_stopped

let checkpoint_hook ~engine ~kb_path ~budget = function
  | None -> None
  | Some path ->
      Some
        (fun state ->
          Chase.Checkpoint.save ~path ~engine ~kb_path
            ?kb_digest:(Chase.Checkpoint.digest_of_file kb_path) ~budget state)

(* write every Nth round-boundary state (N = 1: every round) *)
let hook_with_cadence every hook =
  match hook with
  | None -> None
  | Some save ->
      let calls = ref 0 in
      Some
        (fun state ->
          incr calls;
          if !calls mod max 1 every = 0 then save state)

(* --- --wal plumbing (DESIGN.md §16) -------------------------------- *)

let wal_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal" ] ~docv:"DIR"
        ~doc:
          "Write-ahead-log directory: journal every derivation step as a \
           CRC-checked binary record, so a killed run recovers exactly with \
           $(b,corechase resume --wal) $(i,DIR).")

let wal_sync_arg =
  let policy_conv =
    Arg.conv
      ( (fun s ->
          Result.map_error
            (fun m -> `Msg m)
            (Storage.Wal.sync_policy_of_string s)),
        fun ppf p -> Fmt.string ppf (Storage.Wal.sync_policy_to_string p) )
  in
  Arg.(
    value
    & opt policy_conv Storage.Wal.Sync_every
    & info [ "wal-sync" ] ~docv:"POLICY"
        ~doc:
          "WAL fsync policy: $(b,every) (default; each record is durable \
           before the engine proceeds), $(b,none), or $(b,interval:N).")

let snapshot_every_arg =
  Arg.(
    value & opt int 0
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:
          "Write a binary WAL snapshot and rotate to a fresh segment every \
           $(i,N) completed rounds ($(b,serve): state-changing requests); 0 \
           disables snapshots.")

let open_wal ~sync ~snapshot_every dir =
  match Storage.Wal.open_dir ~sync ~snapshot_every dir with
  | Ok w -> w
  | Error m -> die exit_input "%s" m

let combine_hooks a b =
  match (a, b) with
  | None, h | h, None -> h
  | Some f, Some g ->
      Some
        (fun st ->
          f st;
          g st)

(* the hint when `resume' is handed WAL data in the checkpoint position *)
let wal_hint path =
  if Storage.Wal.looks_like_wal_dir path then Some path
  else if (not (Sys.is_directory path)) && Storage.Xlog.file_has_magic path
  then Some (Filename.dirname path)
  else None

(* --batch: FILE is a manifest of DLGP paths, one per line; every KB is
   chased independently through Par.Batch (DESIGN.md §14).  KBs are
   parsed {e inside} the task so each file mints its variable ids under
   the task's private freshness counter — the per-file report is then
   identical at every --jobs width, and the printed lines follow
   manifest order. *)
let run_batch ~file ~variant ~budget ~token ~trace ~metrics ~jobs =
  let manifest =
    let ic = try open_in file with Sys_error m -> die exit_input "%s" m in
    let lines = ref [] in
    (try
       while true do
         let l = String.trim (input_line ic) in
         if l <> "" && l.[0] <> '#' then lines := l :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !lines
  in
  if manifest = [] then die exit_input "%s: empty batch manifest" file;
  Corechase.Par.set_jobs jobs;
  let task path () =
    match Dlgp.parse_file path with
    | Error e -> (Fmt.str "%s: error: %a" path Dlgp.pp_error e, exit_input)
    | Ok doc ->
        let kb = Dlgp.kb_of_document doc in
        let report = Chase.run ~budget variant kb in
        ( Throughput.summary_line (Throughput.summarize path report),
          exit_of_outcome report.Chase.outcome )
  in
  with_obs ~trace ~metrics (fun () ->
      Resilience.with_token token (fun () ->
          let results =
            Corechase.Par.Batch.run ~site:"cli.batch"
              (Array.of_list (List.map task manifest))
          in
          let worst = ref exit_ok in
          Array.iter
            (fun r ->
              let line, code =
                match r with
                | Ok (line, code) -> (line, code)
                | Error e ->
                    ( Fmt.str "error: %s" (Printexc.to_string e), exit_input )
              in
              if code > !worst then worst := code;
              Fmt.pr "%s@." line)
            results;
          Fmt.pr "batch:      %d file(s), worst exit %d@."
            (Array.length results) !worst;
          !worst))

let chase_cmd =
  let run file variant engine steps atoms deadline ckpt every verbose trace
      metrics core_scope jobs batch wal wal_sync snap_every =
    if batch && (ckpt <> None || engine <> None || wal <> None) then
      die exit_input
        "--batch cannot be combined with --checkpoint, --engine or --wal";
    if batch then begin
      Homo.Core.scoping := core_scope;
      run_batch ~file ~variant ~budget:(budget_of steps atoms)
        ~token:(token_of_deadline deadline) ~trace ~metrics ~jobs
    end
    else begin
    let kb = load_kb file in
    (match (variant, ckpt, wal) with
    | (Chase.Oblivious | Chase.Skolem), Some _, _
    | (Chase.Oblivious | Chase.Skolem), _, Some _ ->
        die exit_input
          "--checkpoint/--wal requires a derivation engine (restricted, \
           frugal or core)"
    | _ -> ());
    (match (engine, ckpt, wal) with
    | Some _, Some _, _ | Some _, _, Some _ ->
        die exit_input "--checkpoint/--wal cannot be combined with --engine"
    | _ -> ());
    Homo.Core.scoping := core_scope;
    Corechase.Par.set_jobs jobs;
    let budget = budget_of steps atoms in
    let token = token_of_deadline deadline in
    let wal_h =
      Option.map (open_wal ~sync:wal_sync ~snapshot_every:snap_every) wal
    in
    (match (wal_h, wal) with
    | Some w, Some dir when not (Storage.Wal.is_empty w) ->
        die exit_input
          "%s already holds a run; use `corechase resume --wal %s' to \
           continue it (or point --wal at a fresh directory)"
          dir dir
    | _ -> ());
    let journal, wal_hook =
      match wal_h with
      | None -> (None, None)
      | Some w ->
          let engine = Chase.variant_name variant in
          let kb_digest = Chase.Checkpoint.digest_of_file file in
          ( Some
              (Storage.Wal.journal w ~engine ~kb_path:file ?kb_digest ~budget
                 ()),
            Some
              (Storage.Wal.checkpoint_hook w ~engine ~kb_path:file ?kb_digest
                 ~budget ()) )
    in
    let checkpoint =
      combine_hooks
        (hook_with_cadence every
           (checkpoint_hook ~engine:(Chase.variant_name variant) ~kb_path:file
              ~budget ckpt))
        wal_hook
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Storage.Wal.close wal_h)
      (fun () ->
        with_obs ~trace ~metrics (fun () ->
            let report =
              match engine with
              | None -> Chase.run ~budget ?token ?checkpoint ?journal variant kb
              | Some e ->
                  let choice = resolve_engine ~budget kb e in
                  Chase.run_engine ~budget ?token choice kb
            in
            print_report ~verbose report;
            exit_of_outcome report.Chase.outcome))
    end
  in
  let verbose =
    Arg.(value & flag & info [ "print"; "p" ] ~doc:"Print the final instance.")
  in
  let batch =
    Arg.(
      value & flag
      & info [ "batch" ]
          ~doc:
            "Treat $(i,FILE) as a batch manifest: one DLGP path per line \
             (blank lines and $(b,#) comments skipped).  Every KB is chased \
             independently across the domain pool ($(b,--jobs)); one result \
             line per file, in manifest order, identical at every width.  \
             The exit code is the worst per-file code.")
  in
  Cmd.v (Cmd.info "chase" ~doc:"Run a chase variant on a DLGP knowledge base.")
    CTerm.(
      const run $ file_arg $ variant_arg $ engine_arg $ steps_arg $ atoms_arg
      $ deadline_arg $ checkpoint_arg $ checkpoint_every_arg $ verbose
      $ trace_arg $ metrics_arg $ core_scope_arg $ jobs_arg $ batch
      $ wal_dir_arg $ wal_sync_arg $ snapshot_every_arg)

(* resume *)
let resume_cmd =
  let variant_of_engine ~where = function
    | "restricted" -> Chase.Restricted
    | "frugal" -> Chase.Frugal
    | "core" -> Chase.Core
    | e -> die exit_input "%s: unknown engine %S" where e
  in
  let kb_file_of ~where ~file_override ~recorded =
    match (file_override, recorded) with
    | Some f, _ -> f
    | None, Some f -> f
    | None, None -> die exit_input "%s records no KB path; pass --file" where
  in
  let check_digest ~where ~kb_file recorded =
    match (recorded, Chase.Checkpoint.digest_of_file kb_file) with
    | Some d, Some d' when d <> d' ->
        (* name the digests, not just the fact of the mismatch: the
           operator deciding whether to re-chase or repoint --file needs
           to see which KB the checkpoint was cut against *)
        die exit_input
          "%s: %s changed since the checkpoint was written (expected digest \
           %s, found %s); resuming against a different KB would not be exact"
          where kb_file d d'
    | Some _, None ->
        die exit_input "%s: cannot read %s to verify the checkpoint digest"
          where kb_file
    | _ -> ()
  in
  let run_text ckpt ~file_override ~steps ~atoms ~deadline ~ckpt_out ~every
      ~verbose ~trace ~metrics ~core_scope ~jobs =
    (match wal_hint ckpt with
    | Some dir ->
        die exit_input
          "%s is a write-ahead log, not a text checkpoint; use `corechase \
           resume --wal %s'"
          ckpt dir
    | None -> ());
    let header =
      match Chase.Checkpoint.read_header ckpt with
      | Ok h -> h
      | Error msg -> die exit_input "%s" msg
    in
    let variant =
      variant_of_engine ~where:ckpt header.Chase.Checkpoint.engine
    in
    let kb_file =
      kb_file_of ~where:ckpt ~file_override
        ~recorded:header.Chase.Checkpoint.kb_path
    in
    check_digest ~where:ckpt ~kb_file header.Chase.Checkpoint.kb_digest;
    (* KB first (deterministic variable ids), checkpoint second: load
       pins the freshness counter to the checkpointed value *)
    let kb = load_kb kb_file in
    let _, saved_budget, state =
      match Chase.Checkpoint.load kb ckpt with
      | Ok v -> v
      | Error msg -> die exit_input "%s" msg
    in
    let budget =
      {
        Chase.Variants.max_steps =
          Option.value steps ~default:saved_budget.Chase.Variants.max_steps;
        max_atoms =
          Option.value atoms ~default:saved_budget.Chase.Variants.max_atoms;
      }
    in
    Homo.Core.scoping := core_scope;
    Corechase.Par.set_jobs jobs;
    let token = token_of_deadline deadline in
    let checkpoint =
      hook_with_cadence every
        (checkpoint_hook ~engine:(Chase.variant_name variant) ~kb_path:kb_file
           ~budget ckpt_out)
    in
    with_obs ~trace ~metrics (fun () ->
        let report =
          Chase.run ~budget ?token ~resume:state ?checkpoint variant kb
        in
        print_report ~verbose report;
        exit_of_outcome report.Chase.outcome)
  in
  let run_wal dir ~wal_sync ~snap_every ~file_override ~steps ~atoms ~deadline
      ~ckpt_out ~every ~verbose ~trace ~metrics ~core_scope ~jobs =
    let w = open_wal ~sync:wal_sync ~snapshot_every:snap_every dir in
    Fun.protect
      ~finally:(fun () -> Storage.Wal.close w)
      (fun () ->
        let header =
          match Storage.Wal.peek_header w with
          | Ok (Some h) -> h
          | Ok None ->
              die exit_input "%s: WAL is empty (nothing to resume)" dir
          | Error msg -> die exit_input "%s" msg
        in
        let variant =
          variant_of_engine ~where:dir header.Storage.Wal.h_engine
        in
        let kb_file =
          kb_file_of ~where:dir ~file_override
            ~recorded:header.Storage.Wal.h_kb_path
        in
        check_digest ~where:dir ~kb_file header.Storage.Wal.h_kb_digest;
        (* same discipline as the text path: KB first, then replay the
           log (recover pins the counters to the last durable boundary) *)
        let kb = load_kb kb_file in
        let recovered =
          match Storage.Wal.recover w kb with
          | Ok r -> r
          | Error msg -> die exit_input "%s" msg
        in
        let saved = header.Storage.Wal.h_budget in
        let budget =
          {
            Chase.Variants.max_steps =
              Option.value steps ~default:saved.Chase.Variants.max_steps;
            max_atoms =
              Option.value atoms ~default:saved.Chase.Variants.max_atoms;
          }
        in
        Homo.Core.scoping := core_scope;
        Corechase.Par.set_jobs jobs;
        let token = token_of_deadline deadline in
        let engine = header.Storage.Wal.h_engine in
        let kb_digest = Chase.Checkpoint.digest_of_file kb_file in
        let journal =
          Storage.Wal.journal w ~engine ~kb_path:kb_file ?kb_digest ~budget
            ~durable:recovered.Storage.Wal.r_durable ()
        in
        let checkpoint =
          combine_hooks
            (hook_with_cadence every
               (checkpoint_hook ~engine ~kb_path:kb_file ~budget ckpt_out))
            (Some
               (Storage.Wal.checkpoint_hook w ~engine ~kb_path:kb_file
                  ?kb_digest ~budget ()))
        in
        with_obs ~trace ~metrics (fun () ->
            let report =
              Chase.run ~budget ?token ?resume:recovered.Storage.Wal.r_state
                ?checkpoint ~journal variant kb
            in
            print_report ~verbose report;
            exit_of_outcome report.Chase.outcome))
  in
  let run ckpt wal file_override steps atoms deadline ckpt_out every verbose
      trace metrics core_scope jobs wal_sync snap_every =
    match (ckpt, wal) with
    | None, None ->
        die exit_input "pass a CHECKPOINT file or --wal DIR (one of the two)"
    | Some _, Some _ ->
        die exit_input "pass either a CHECKPOINT file or --wal DIR, not both"
    | Some ckpt, None ->
        run_text ckpt ~file_override ~steps ~atoms ~deadline ~ckpt_out ~every
          ~verbose ~trace ~metrics ~core_scope ~jobs
    | None, Some dir ->
        run_wal dir ~wal_sync ~snap_every ~file_override ~steps ~atoms
          ~deadline ~ckpt_out ~every ~verbose ~trace ~metrics ~core_scope
          ~jobs
  in
  let ckpt_pos =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"CHECKPOINT"
          ~doc:
            "Checkpoint file written by $(b,corechase chase --checkpoint) \
             (omit when resuming with $(b,--wal)).")
  in
  let file_override =
    Arg.(
      value
      & opt (some file) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:
            "DLGP file to resume against (default: the path recorded in the \
             checkpoint).")
  in
  let steps_override =
    Arg.(
      value & opt (some int) None
      & info [ "steps" ]
          ~doc:"Override the recorded rule-application budget.")
  in
  let atoms_override =
    Arg.(
      value & opt (some int) None
      & info [ "max-atoms" ] ~doc:"Override the recorded instance size budget.")
  in
  let verbose =
    Arg.(value & flag & info [ "print"; "p" ] ~doc:"Print the final instance.")
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Continue a chase from an on-disk checkpoint.  The resumed run \
          agrees step for step with the uninterrupted one (same KB, same \
          budget).")
    CTerm.(
      const run $ ckpt_pos $ wal_dir_arg $ file_override $ steps_override
      $ atoms_override $ deadline_arg $ checkpoint_arg $ checkpoint_every_arg
      $ verbose $ trace_arg $ metrics_arg $ core_scope_arg $ jobs_arg
      $ wal_sync_arg $ snapshot_every_arg)

(* entail *)
let entail_cmd =
  let run file steps atoms max_domain deadline engine =
    let doc = load_document file in
    let kb = Dlgp.kb_of_document doc in
    let budget = budget_of steps atoms in
    let token = token_of_deadline deadline in
    (* the datalog choice saturates; the restricted derivation engine is
       the same fixpoint on full rules, so both map to [`Restricted] *)
    let variant =
      match engine with
      | None -> `Core
      | Some e -> (
          match resolve_engine ~budget kb e with
          | Chase.Engine_core -> `Core
          | Chase.Engine_datalog | Chase.Engine_restricted -> `Restricted)
    in
    let code = ref exit_ok in
    let worsen c = if c > !code then code := c in
    (* rendering shared with the server's ENTAIL handler: the
       differential law (serve ≡ batch CLI, byte for byte) holds
       because both paths go through [Server.Queryeval] *)
    let say (line, sev) =
      worsen (Server.Queryeval.exit_code sev);
      Fmt.pr "%s@." line
    in
    Resilience.with_token token (fun () ->
        (match doc.Dlgp.constraints with
        | [] -> ()
        | constraints ->
            say
              (Server.Queryeval.constraints_line
                 (Corechase.Entailment.inconsistent ~budget ~constraints kb)));
        if doc.Dlgp.queries = [] then Fmt.pr "no queries in %s@." file
        else
          List.iter
            (fun q ->
              if Kb.Query.is_boolean q then
                say
                  (Server.Queryeval.verdict_line q
                     (Corechase.Entailment.decide ~variant ~budget ~max_domain
                        kb q))
              else
                say
                  (Server.Queryeval.answers_line q
                     (Corechase.Entailment.certain_answers ~variant ~budget kb
                        q)))
            doc.Dlgp.queries);
    !code
  in
  let max_domain =
    Arg.(value & opt int 4 & info [ "max-domain" ] ~doc:"Countermodel domain budget.")
  in
  Cmd.v
    (Cmd.info "entail"
       ~doc:"Decide the file's Boolean CQs with the chase + countermodel pair of semi-procedures.")
    CTerm.(
      const run $ file_arg $ steps_arg $ atoms_arg $ max_domain $ deadline_arg
      $ engine_arg)

(* analyze / classify *)
let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Exit with code 3 when the analyzer verdict is $(b,unknown) \
           (without this flag an unknown verdict still exits 0).")

let strict_exit ~strict (report : Analyze.report) =
  if strict && report.Analyze.verdict = Analyze.Unknown then exit_input
  else exit_ok

let analyze_cmd =
  let run file steps atoms strict json trace metrics =
    let kb = load_kb file in
    let budget = budget_of steps atoms in
    with_obs ~trace ~metrics (fun () ->
        let report = Analyze.analyze ~budget kb in
        if json then print_endline (Analyze.to_json kb report)
        else begin
          Fmt.pr "%a@." Analyze.pp_report report;
          let choice, reason = Analyze.route_of_report kb report in
          Fmt.pr "route: %s (%s)@." (Chase.engine_name choice) reason
        end;
        strict_exit ~strict report)
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the machine-readable justification trail as JSON.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Termination analysis with a justification trail, and the engine \
          the router would pick (DESIGN.md §13).")
    CTerm.(
      const run $ file_arg $ steps_arg $ atoms_arg $ strict_arg $ json
      $ trace_arg $ metrics_arg)

let classify_cmd =
  let run file steps atoms strict =
    let kb = load_kb file in
    let report = Rclasses.analyze (Kb.rules kb) in
    Fmt.pr "%a@." Rclasses.pp_report report;
    (match
       Corechase.Probes.core_chase_terminates ~budget:(budget_of steps atoms) kb
     with
    | Corechase.Probes.Terminates n ->
        Fmt.pr "core chase: terminates after %d steps@." n
    | Corechase.Probes.No_verdict o ->
        Fmt.pr "core chase: no fixpoint (%s)@."
          (Fmt.str "%a" Resilience.pp_outcome o));
    let profile =
      Corechase.Probes.tw_profile ~budget:(budget_of (min steps 80) atoms)
        ~variant:`Core kb
    in
    Fmt.pr "core-chase treewidth series: %a@."
      Fmt.(list ~sep:sp int)
      profile.Corechase.Probes.series;
    let analysis = Analyze.analyze ~budget:(budget_of steps atoms) kb in
    Fmt.pr "analyzer verdict: %s@." (Analyze.verdict_name analysis.Analyze.verdict);
    strict_exit ~strict analysis
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:"Syntactic decidability-class analysis plus behavioural probes.")
    CTerm.(const run $ file_arg $ steps_arg $ atoms_arg $ strict_arg)

(* treewidth *)
let treewidth_cmd =
  let run file =
    let kb = load_kb file in
    let facts = Kb.facts kb in
    let w, exact = Treewidth.best_effort facts in
    Fmt.pr "facts: %d atoms over %d terms@." (Atomset.cardinal facts)
      (List.length (Atomset.terms facts));
    Fmt.pr "treewidth: %d (%s)@." w (if exact then "exact" else "min-fill upper bound");
    Fmt.pr "lower bound: %d@." (Treewidth.lower_bound facts);
    let d = Treewidth.decomposition facts in
    Fmt.pr "witnessing decomposition (width %d):@.%a@."
      (Treewidth.Decomposition.width d) Treewidth.Decomposition.pp d;
    exit_ok
  in
  Cmd.v (Cmd.info "treewidth" ~doc:"Treewidth of the facts of a DLGP file.")
    CTerm.(const run $ file_arg)

(* repro *)
let repro_cmd =
  let run names scale trace metrics core_scope jobs =
    Homo.Core.scoping := core_scope;
    Corechase.Par.set_jobs jobs;
    let selected =
      if names = [] then Experiments.all
      else
        List.filter
          (fun (n, _) -> List.mem (String.uppercase_ascii n) (List.map String.uppercase_ascii names))
          Experiments.all
    in
    let ok =
      with_obs ~trace ~metrics (fun () ->
          List.fold_left
            (fun acc (name, f) ->
              Fmt.pr "@.";
              let ok = f ?scale:(Some scale) Format.std_formatter in
              Fmt.pr "--- %s: %s ---@." name (if ok then "PASS" else "FAIL");
              acc && ok)
            true selected)
    in
    if ok then exit_ok else 1
  in
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"EXP" ~doc:"Experiment ids (F1..F5, T1); all when omitted.")
  in
  let scale =
    Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Prefix-length scale factor (1 = quick, 3 = thorough).")
  in
  Cmd.v
    (Cmd.info "repro" ~doc:"Regenerate the paper's figures and tables.")
    CTerm.(
      const run $ names $ scale $ trace_arg $ metrics_arg $ core_scope_arg
      $ jobs_arg)

(* dot *)
let dot_cmd =
  let run file what =
    let kb = load_kb file in
    let facts = Kb.facts kb in
    (match what with
    | `Instance -> print_string (Treewidth.Dot.atomset ~name:file facts)
    | `Decomposition ->
        print_string
          (Treewidth.Dot.decomposition ~name:file (Treewidth.decomposition facts)));
    exit_ok
  in
  let what =
    let w =
      Arg.enum [ ("instance", `Instance); ("decomposition", `Decomposition) ]
    in
    Arg.(value & opt w `Instance & info [ "kind"; "k" ] ~doc:"instance or decomposition.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export the facts (or their tree decomposition) as Graphviz DOT.")
    CTerm.(const run $ file_arg $ what)

(* tptp *)
let tptp_cmd =
  let run file =
    let doc = load_document file in
    let kb = Dlgp.kb_of_document doc in
    (match doc.Dlgp.queries with
    | [] -> Fmt.pr "no queries in %s@." file
    | qs ->
        List.iteri
          (fun i q ->
            Fmt.pr "%s@."
              (Fol.tptp_problem ~name:(Printf.sprintf "q%d" i) kb q))
          qs);
    exit_ok
  in
  Cmd.v
    (Cmd.info "tptp"
       ~doc:"Export the file's entailment problems in TPTP FOF syntax (one problem per query).")
    CTerm.(const run $ file_arg)

(* bench *)
let bench_cmd =
  let run throughput tasks jobs_list reps scale =
    if not throughput then
      die exit_input
        "only --throughput is available here; the full harness is `dune exec \
         bench/main.exe'";
    if tasks < 1 then die exit_input "--tasks must be >= 1";
    if reps < 1 then die exit_input "--reps must be >= 1";
    if jobs_list = [] || List.exists (fun j -> j < 1) jobs_list then
      die exit_input "--jobs-list must be positive widths (e.g. 1,2,4)";
    let mix = Throughput.mix ~scale ~count:tasks () in
    let rows, identical = Throughput.curves ~reps ~jobs_list mix in
    Fmt.pr "throughput: %d independent chase jobs, median of %d rep(s)@." tasks
      reps;
    Throughput.pp_rows Format.std_formatter rows;
    Fmt.pr "results identical across widths/reps: %s@."
      (if identical then "yes" else "NO (determinism violation)");
    if identical then exit_ok else 1
  in
  let throughput =
    Arg.(
      value & flag
      & info [ "throughput" ]
          ~doc:
            "Run the batched-throughput curves (DESIGN.md §14): the standard \
             deterministic task mix through $(b,Par.Batch) at each width of \
             $(b,--jobs-list), reporting wall-clock, tasks/s, speedup and \
             efficiency, plus the cross-width determinism verdict.")
  in
  let tasks =
    Arg.(
      value
      & opt int Throughput.default_count
      & info [ "tasks" ] ~docv:"N" ~doc:"Batch size (independent chase jobs).")
  in
  let jobs_list =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4 ]
      & info [ "jobs-list" ] ~docv:"WIDTHS"
          ~doc:"Comma-separated pool widths to measure (default 1,2,4).")
  in
  let reps =
    Arg.(
      value & opt int 3
      & info [ "reps" ] ~docv:"R" ~doc:"Timed runs per width; the median is kept.")
  in
  let scale =
    Arg.(
      value & opt int 1
      & info [ "scale" ] ~doc:"Step-budget scale factor for each job.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Measure batched chase throughput across domain-pool widths \
          (speedup/efficiency curves).")
    CTerm.(const run $ throughput $ tasks $ jobs_list $ reps $ scale)

(* zoo *)
let zoo_cmd =
  let kbs () =
    Zoo.Classic.all_named ()
    @ [ ("steepening-staircase", Zoo.Staircase.kb ());
        ("inflating-elevator", Zoo.Elevator.kb ()) ]
    @ Zoo.Families.named ()
  in
  let run name =
    match name with
    | None ->
        List.iter (fun (n, _) -> Fmt.pr "%s@." n) (kbs ());
        exit_ok
    | Some n -> (
        match List.assoc_opt n (kbs ()) with
        | None ->
            die exit_input "unknown KB %s (try `corechase zoo' to list)" n
        | Some kb ->
            let doc =
              { Dlgp.facts = Kb.facts kb; rules = Kb.rules kb; egds = Kb.egds kb; queries = []; constraints = [] }
            in
            Fmt.pr "%a@." Dlgp.print_document doc;
            exit_ok)
  in
  let name_arg = Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME") in
  Cmd.v
    (Cmd.info "zoo" ~doc:"List or print the built-in knowledge bases in DLGP syntax.")
    CTerm.(const run $ name_arg)

(* serve / client (DESIGN.md §15) *)
let serve_cmd =
  let run listens drain ready_file quiet trace metrics jobs wal wal_sync
      snap_every =
    let endpoints =
      List.map
        (fun s ->
          match Server.endpoint_of_string s with
          | Ok e -> e
          | Error m -> die exit_input "%s" m)
        listens
    in
    Corechase.Par.set_jobs jobs;
    let wal_h =
      Option.map (open_wal ~sync:wal_sync ~snapshot_every:snap_every) wal
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Storage.Wal.close wal_h)
      (fun () ->
        with_obs ~trace ~metrics (fun () ->
            match
              Server.serve
                {
                  Server.endpoints;
                  drain_timeout = drain;
                  ready_file;
                  quiet;
                  wal = wal_h;
                }
            with
            | Ok () -> exit_ok
            | Error m -> die exit_input "%s" m))
  in
  let listen_arg =
    Arg.(
      non_empty & opt_all string []
      & info [ "listen"; "l" ] ~docv:"ENDPOINT"
          ~doc:
            "Listen endpoint, $(b,unix:PATH) or $(b,tcp:HOST:PORT); repeat \
             the flag to serve several endpoints at once.")
  in
  let drain_arg =
    Arg.(
      value & opt int 5
      & info [ "drain-timeout" ] ~docv:"SECONDS"
          ~doc:
            "After SIGTERM (or a SHUTDOWN request) stop accepting and wait \
             this long for in-flight work before cancelling it through the \
             per-connection tokens.")
  in
  let ready_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ready-file" ] ~docv:"FILE"
          ~doc:
            "Write $(docv) (one bound endpoint per line) once every listener \
             is bound — scripts wait on the file instead of polling connect.")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet"; "q" ] ~doc:"Suppress the stderr lifecycle notes.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve long-lived KB sessions over the corechase wire protocol: one \
          chase writer per session, many concurrent snapshot readers \
          (DESIGN.md §15).")
    CTerm.(
      const run $ listen_arg $ drain_arg $ ready_file_arg $ quiet_arg
      $ trace_arg $ metrics_arg $ jobs_arg $ wal_dir_arg $ wal_sync_arg
      $ snapshot_every_arg)

let client_cmd =
  let run connect wait reqs =
    match Server.endpoint_of_string connect with
    | Error m -> die exit_input "%s" m
    | Ok ep -> (
        match Server.Client.run ~wait_s:wait ep reqs with
        | Ok code -> code
        | Error m -> die exit_input "%s" m)
  in
  let connect_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect"; "c" ] ~docv:"ENDPOINT"
          ~doc:"Server endpoint, $(b,unix:PATH) or $(b,tcp:HOST:PORT).")
  in
  let wait_arg =
    Arg.(
      value & opt float 5.0
      & info [ "wait" ] ~docv:"SECONDS"
          ~doc:
            "Retry connecting for up to $(docv) seconds (the server may \
             still be binding).")
  in
  let reqs_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "Request payloads, sent in order; $(b,\\\\n) escapes separate a \
             payload's lines (e.g. 'ENTAIL s\\\\np(X)?').")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send requests to a running $(b,corechase serve) and print the \
          response frames.")
    CTerm.(const run $ connect_arg $ wait_arg $ reqs_arg)

(* wal export / wal import: the bridge between the binary log and the
   PR-5 text checkpoint format (DESIGN.md §16) *)
let wal_cmd =
  let digest_or_die ~where ~kb_file recorded =
    match (recorded, Chase.Checkpoint.digest_of_file kb_file) with
    | Some d, Some d' when d <> d' ->
        die exit_input
          "%s: %s changed since the log was written (expected digest %s, \
           found %s); converting against a different KB would not be exact"
          where kb_file d d'
    | Some _, None ->
        die exit_input "%s: cannot read %s to verify the recorded digest"
          where kb_file
    | _, fresh -> fresh
  in
  let kb_file_of ~where ~file_override ~recorded =
    match (file_override, recorded) with
    | Some f, _ -> f
    | None, Some f -> f
    | None, None -> die exit_input "%s records no KB path; pass --file" where
  in
  let file_override_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:"DLGP file (default: the path recorded in the source).")
  in
  let export =
    let run dir out file_override =
      let w =
        match Storage.Wal.open_dir ~quiet:false dir with
        | Ok w -> w
        | Error m -> die exit_input "%s" m
      in
      Fun.protect
        ~finally:(fun () -> Storage.Wal.close w)
        (fun () ->
          let header =
            match Storage.Wal.peek_header w with
            | Ok (Some h) -> h
            | Ok None -> die exit_input "%s: WAL is empty" dir
            | Error m -> die exit_input "%s" m
          in
          let kb_file =
            kb_file_of ~where:dir ~file_override
              ~recorded:header.Storage.Wal.h_kb_path
          in
          let kb_digest =
            digest_or_die ~where:dir ~kb_file header.Storage.Wal.h_kb_digest
          in
          let kb = load_kb kb_file in
          let recovered =
            match Storage.Wal.recover w kb with
            | Ok r -> r
            | Error m -> die exit_input "%s" m
          in
          match recovered.Storage.Wal.r_state with
          | None ->
              die exit_input
                "%s: no completed round is durable yet; a text checkpoint \
                 captures only round boundaries"
                dir
          | Some state ->
              Chase.Checkpoint.save ~path:out
                ~engine:header.Storage.Wal.h_engine ~kb_path:kb_file
                ?kb_digest ~budget:header.Storage.Wal.h_budget state;
              Fmt.epr "exported %s (round boundary, %d durable record(s)) to \
                       %s@."
                dir recovered.Storage.Wal.r_records out;
              exit_ok)
    in
    let dir_pos =
      Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"DIR" ~doc:"WAL directory to export.")
    in
    let out_arg =
      Arg.(
        required
        & opt (some string) None
        & info [ "out"; "o" ] ~docv:"CHECKPOINT"
            ~doc:"Text checkpoint file to write.")
    in
    Cmd.v
      (Cmd.info "export"
         ~doc:
           "Convert a WAL directory's last durable round boundary into a \
            $(b,corechase resume)-compatible text checkpoint.")
      CTerm.(const run $ dir_pos $ out_arg $ file_override_arg)
  in
  let import =
    let run ckpt out file_override =
      let header =
        match Chase.Checkpoint.read_header ckpt with
        | Ok h -> h
        | Error m -> die exit_input "%s" m
      in
      let kb_file =
        kb_file_of ~where:ckpt ~file_override
          ~recorded:header.Chase.Checkpoint.kb_path
      in
      let kb_digest =
        digest_or_die ~where:ckpt ~kb_file header.Chase.Checkpoint.kb_digest
      in
      let kb = load_kb kb_file in
      let _, budget, state =
        match Chase.Checkpoint.load kb ckpt with
        | Ok v -> v
        | Error m -> die exit_input "%s" m
      in
      let w =
        match Storage.Wal.open_dir out with
        | Ok w -> w
        | Error m -> die exit_input "%s" m
      in
      Fun.protect
        ~finally:(fun () -> Storage.Wal.close w)
        (fun () ->
          match
            Storage.Wal.import_state w ~engine:header.Chase.Checkpoint.engine
              ~kb_path:kb_file ?kb_digest ~budget state
          with
          | Error m -> die exit_input "%s" m
          | Ok () ->
              Fmt.epr "imported %s into %s@." ckpt out;
              exit_ok)
    in
    let ckpt_pos =
      Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"CHECKPOINT" ~doc:"Text checkpoint file to import.")
    in
    let out_arg =
      Arg.(
        required
        & opt (some string) None
        & info [ "out"; "o" ] ~docv:"DIR"
            ~doc:"WAL directory to seed (must not already hold a log).")
    in
    Cmd.v
      (Cmd.info "import"
         ~doc:
           "Seed an empty WAL directory from a text checkpoint so the run \
            can continue under $(b,corechase resume --wal).")
      CTerm.(const run $ ckpt_pos $ out_arg $ file_override_arg)
  in
  Cmd.group
    (Cmd.info "wal"
       ~doc:
         "Convert between WAL directories and text checkpoints (DESIGN.md \
          §16).")
    [ export; import ]

let () =
  let info =
    Cmd.info "corechase" ~version:"1.0.0"
      ~doc:"Existential-rule reasoning: chase variants, treewidth, robust aggregation (PODS'23 reproduction)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            chase_cmd; resume_cmd; entail_cmd; analyze_cmd; classify_cmd;
            treewidth_cmd; repro_cmd; tptp_cmd; dot_cmd; zoo_cmd; bench_cmd;
            serve_cmd; client_cmd; wal_cmd;
          ]))
