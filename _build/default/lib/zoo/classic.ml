open Syntax

let atom p args = Atom.make p args
let a = Term.const "a"
let b = Term.const "b"
let c = Term.const "c"
let d = Term.const "d"

let bts_not_fes () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" ()
  and z = Term.fresh_var ~hint:"Z" () in
  Kb.of_lists
    ~facts:[ atom "r" [ a; b ] ]
    ~rules:
      [
        Rule.make ~name:"grow"
          ~body:[ atom "r" [ x; y ] ]
          ~head:[ atom "r" [ y; z ] ]
          ();
      ]

let fes_not_bts () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" ()
  and z = Term.fresh_var ~hint:"Z" () and v = Term.fresh_var ~hint:"V" () in
  Kb.of_lists
    ~facts:[ atom "r" [ a; b ]; atom "r" [ b; c ] ]
    ~rules:
      [
        Rule.make ~name:"squash"
          ~body:[ atom "r" [ x; y ]; atom "r" [ y; z ] ]
          ~head:[ atom "r" [ x; x ]; atom "r" [ x; z ]; atom "r" [ z; v ] ]
          ();
      ]

let core_terminating () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" () in
  let r1 =
    Rule.make ~name:"spawn"
      ~body:[ atom "p" [ x ] ]
      ~head:[ atom "e" [ x; y ]; atom "p" [ y ] ]
      ()
  in
  let x2 = Term.fresh_var ~hint:"X" () in
  let r2 =
    Rule.make ~name:"loop" ~body:[ atom "p" [ x2 ] ] ~head:[ atom "e" [ x2; x2 ] ] ()
  in
  Kb.of_lists ~facts:[ atom "p" [ a ] ] ~rules:[ r1; r2 ]

let transitive_closure () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" ()
  and z = Term.fresh_var ~hint:"Z" () in
  Kb.of_lists
    ~facts:[ atom "e" [ a; b ]; atom "e" [ b; c ]; atom "e" [ c; d ] ]
    ~rules:
      [
        Rule.make ~name:"trans"
          ~body:[ atom "e" [ x; y ]; atom "e" [ y; z ] ]
          ~head:[ atom "e" [ x; z ] ]
          ();
      ]

let guarded_ancestor () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" () in
  Kb.of_lists
    ~facts:[ atom "person" [ Term.const "alice" ] ]
    ~rules:
      [
        Rule.make ~name:"parent"
          ~body:[ atom "person" [ x ] ]
          ~head:[ atom "parent" [ x; y ]; atom "person" [ y ] ]
          ();
      ]

let all_named () =
  [
    ("bts-not-fes", bts_not_fes ());
    ("fes-not-bts", fes_not_bts ());
    ("core-terminating", core_terminating ());
    ("transitive-closure", transitive_closure ());
    ("guarded-ancestor", guarded_ancestor ());
  ]
