type t = { pred : string; args : Term.t list }

let make pred args = { pred; args }

let pred a = a.pred

let args a = a.args

let arity a = List.length a.args

let terms a = a.args

let term_set a = List.sort_uniq Term.compare a.args

let vars a = List.filter Term.is_var (term_set a)

let consts a = List.filter Term.is_const (term_set a)

let is_ground a = List.for_all Term.is_const a.args

let mem_term t a = List.exists (Term.equal t) a.args

let compare a1 a2 =
  let c = String.compare a1.pred a2.pred in
  if c <> 0 then c else List.compare Term.compare a1.args a2.args

let equal a1 a2 = compare a1 a2 = 0

let hash a = Hashtbl.hash (a.pred, List.map Term.hash a.args)

let pp_with pp_term ppf a =
  match a.args with
  | [] -> Fmt.string ppf a.pred
  | args -> Fmt.pf ppf "%s(%a)" a.pred Fmt.(list ~sep:comma pp_term) args

let pp ppf a = pp_with Term.pp ppf a

let pp_debug ppf a = pp_with Term.pp_debug ppf a
