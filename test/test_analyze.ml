(* The termination analyzer and the engine router, proven against the
   generated rule zoo (DESIGN.md §13):

   (a) the zoo is honest: every class a family declares shows up as a
       positive flag in the Rclasses report, and every declared chase
       behaviour matches an actual restricted-chase run;
   (b) certificate soundness: whenever the analyzer certifies
       termination (verdict ≥ terminates-restricted) — on any family or
       mutant, at any scale — the restricted chase really reaches a
       fixpoint and its core is isomorphic to the core-chase result,
       under jobs=1 and jobs=4;
   (c) no false certificates: no case whose restricted chase diverges
       is ever certified, mutants included;
   (d) router differential: the engine [Analyze.route] picks agrees
       with the core engine — final instances isomorphic up to core on
       terminating cases, and entailment verdicts never contradict on
       per-predicate Boolean queries over the whole corpus;
   (e) the routing policy itself is pinned: existential-free →
       semi-naive datalog, certified → restricted, EGDs or no
       certificate → core. *)

open Syntax

(* Every Terminating zoo case at the scales below reaches its fixpoint
   well inside this budget; on diverging cases it caps the wasted work
   (restricted steps on a growing instance get expensive fast, so the
   cap keeps the whole corpus sweep quick). *)
let budget = { Chase.Variants.max_steps = 120; max_atoms = 3_000 }

let certified (r : Analyze.report) =
  Analyze.verdict_rank r.Analyze.verdict
  >= Analyze.verdict_rank Analyze.Terminates_restricted

let scales = [ 1; 2; 4 ]

let all_cases ~scale =
  Zoo.Families.families ~scale ()
  @ List.map
      (fun (m : Zoo.Families.mutant) -> m.Zoo.Families.case)
      (Zoo.Families.mutants ~scale ())

let flag_of_klass (c : Rclasses.report) = function
  | Zoo.Families.Datalog -> c.Rclasses.datalog
  | Zoo.Families.Weakly_acyclic -> c.Rclasses.weakly_acyclic
  | Zoo.Families.Jointly_acyclic -> c.Rclasses.jointly_acyclic
  | Zoo.Families.Acyclic_grd -> c.Rclasses.agrd_sound
  | Zoo.Families.Linear -> c.Rclasses.linear
  | Zoo.Families.Guarded -> c.Rclasses.guarded
  | Zoo.Families.Frontier_guarded -> c.Rclasses.frontier_guarded

(* ------------------------------------------------------------------ *)
(* (a) the zoo is honest *)

let test_declared_classes_hold () =
  List.iter
    (fun scale ->
      List.iter
        (fun (c : Zoo.Families.case) ->
          let report = Rclasses.analyze (Kb.rules c.Zoo.Families.kb) in
          List.iter
            (fun k ->
              Alcotest.(check bool)
                (Printf.sprintf "%s is %s" c.Zoo.Families.name
                   (Zoo.Families.klass_name k))
                true
                (flag_of_klass report k))
            c.Zoo.Families.classes)
        (Zoo.Families.families ~scale ()))
    scales

let test_declared_behaviour_holds () =
  List.iter
    (fun scale ->
      List.iter
        (fun (c : Zoo.Families.case) ->
          let run = Chase.run ~budget Chase.Restricted c.Zoo.Families.kb in
          let expected =
            match c.Zoo.Families.behaviour with
            | Zoo.Families.Terminating -> true
            | Zoo.Families.Nonterminating -> false
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s restricted chase terminates" c.Zoo.Families.name)
            expected run.Chase.terminated)
        (all_cases ~scale))
    scales

(* ------------------------------------------------------------------ *)
(* (b) certificate soundness, jobs ∈ {1, 4} *)

let soundness_at ~jobs () =
  Par.with_jobs jobs (fun () ->
      List.iter
        (fun scale ->
          List.iter
            (fun (c : Zoo.Families.case) ->
              let report = Analyze.analyze ~budget c.Zoo.Families.kb in
              if certified report then begin
                let restricted =
                  Chase.run ~budget Chase.Restricted c.Zoo.Families.kb
                in
                Alcotest.(check bool)
                  (Printf.sprintf
                     "%s: certificate implies restricted fixpoint"
                     c.Zoo.Families.name)
                  true restricted.Chase.terminated;
                let core = Chase.run ~budget Chase.Core c.Zoo.Families.kb in
                Alcotest.(check bool)
                  (Printf.sprintf "%s: core chase also terminates"
                     c.Zoo.Families.name)
                  true core.Chase.terminated;
                Alcotest.(check bool)
                  (Printf.sprintf
                     "%s: core(restricted result) ≅ core-chase result"
                     c.Zoo.Families.name)
                  true
                  (Homo.Morphism.isomorphic
                     (Homo.Core.of_atomset restricted.Chase.final)
                     core.Chase.final)
              end)
            (all_cases ~scale))
        scales)

(* ------------------------------------------------------------------ *)
(* (c) no false certificates on diverging cases *)

let test_no_false_certificates () =
  List.iter
    (fun scale ->
      List.iter
        (fun (c : Zoo.Families.case) ->
          if c.Zoo.Families.behaviour = Zoo.Families.Nonterminating then
            let report = Analyze.analyze ~budget c.Zoo.Families.kb in
            Alcotest.(check bool)
              (Printf.sprintf "%s (diverging) is not certified"
                 c.Zoo.Families.name)
              false (certified report))
        (all_cases ~scale))
    scales

let test_termination_mutants_not_certified () =
  (* the near-miss mutants whose single edit destroys termination are
     the designed traps: the certificate must never survive the edit *)
  List.iter
    (fun scale ->
      List.iter
        (fun (m : Zoo.Families.mutant) ->
          match m.Zoo.Families.broken with
          | Zoo.Families.Termination ->
              let report = Analyze.analyze ~budget m.Zoo.Families.case.Zoo.Families.kb in
              Alcotest.(check bool)
                (Printf.sprintf "%s not falsely certified"
                   m.Zoo.Families.case.Zoo.Families.name)
                false (certified report);
              Alcotest.(check bool)
                (Printf.sprintf "%s parent is certified"
                   m.Zoo.Families.parent.Zoo.Families.name)
                true
                (certified (Analyze.analyze ~budget m.Zoo.Families.parent.Zoo.Families.kb))
          | Zoo.Families.Klass _ -> ())
        (Zoo.Families.mutants ~scale ()))
    scales

(* ------------------------------------------------------------------ *)
(* (d) router differential: routed engine ≡ core engine *)

let preds_of_kb kb =
  let add acc (p, k) = if List.mem (p, k) acc then acc else (p, k) :: acc in
  let from_rules =
    List.fold_left
      (fun acc r -> List.fold_left add acc (Rule.preds r))
      [] (Kb.rules kb)
  in
  List.sort compare
    (Atomset.fold
       (fun a acc -> add acc (Atom.pred a, Atom.arity a))
       (Kb.facts kb) from_rules)

let boolean_query (p, k) =
  Kb.Query.make ~name:p
    [ Atom.make p (List.init k (fun _ -> Term.fresh_var ~hint:"q" ())) ]

let contradictory a b =
  match (a, b) with
  | Corechase.Entailment.Entailed, Corechase.Entailment.Not_entailed
  | Corechase.Entailment.Not_entailed, Corechase.Entailment.Entailed ->
      true
  | _ -> false

let routed_variant = function
  (* the CLI mapping: the datalog engine has no derivation to probe, so
     entailment falls back to the restricted chase it agrees with *)
  | Chase.Engine_datalog | Chase.Engine_restricted -> `Restricted
  | Chase.Engine_core -> `Core

let test_routed_engine_agrees_with_core () =
  List.iter
    (fun jobs ->
      Par.with_jobs jobs (fun () ->
          List.iter
            (fun (c : Zoo.Families.case) ->
              let kb = c.Zoo.Families.kb in
              let report = Analyze.analyze ~budget kb in
              let choice, _reason = Analyze.route_of_report kb report in
              let routed = Chase.run_engine ~budget choice kb in
              let core = Chase.run ~budget Chase.Core kb in
              if routed.Chase.terminated && core.Chase.terminated then
                Alcotest.(check bool)
                  (Printf.sprintf "%s jobs=%d: routed ≡ core up to core"
                     c.Zoo.Families.name jobs)
                  true
                  (Homo.Morphism.isomorphic
                     (Homo.Core.of_atomset routed.Chase.final)
                     core.Chase.final))
            (all_cases ~scale:3)))
    [ 1; 4 ]

let test_routed_entailment_agrees_with_core () =
  List.iter
    (fun (c : Zoo.Families.case) ->
      let kb = c.Zoo.Families.kb in
      let variant = routed_variant (Analyze.route ~budget kb) in
      let terminating = c.Zoo.Families.behaviour = Zoo.Families.Terminating in
      List.iter
        (fun pk ->
          let q = boolean_query pk in
          (* via_chase, not decide: the countermodel fallback is shared
             by both variants anyway, and skipping it keeps the sweep
             over the diverging cases cheap *)
          let routed = Corechase.Entailment.via_chase ~variant ~budget kb q in
          let reference =
            Corechase.Entailment.via_chase ~variant:`Core ~budget kb q
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s ⊨ %s? verdicts never contradict"
               c.Zoo.Families.name (fst pk))
            false
            (contradictory routed reference);
          (* on terminating cases both chases reach a universal model
             within budget, so the verdicts are definite and equal *)
          if terminating then
            Alcotest.(check string)
              (Printf.sprintf "%s ⊨ %s? verdicts equal" c.Zoo.Families.name
                 (fst pk))
              (Fmt.str "%a" Corechase.Entailment.pp_verdict reference)
              (Fmt.str "%a" Corechase.Entailment.pp_verdict routed))
        (preds_of_kb kb))
    (all_cases ~scale:3)

(* ------------------------------------------------------------------ *)
(* (e) the routing policy is pinned *)

let route_name kb = Chase.engine_name (Analyze.route ~budget kb)

let find_case name =
  List.find
    (fun (c : Zoo.Families.case) -> c.Zoo.Families.name = name)
    (all_cases ~scale:3)

let test_routing_policy_pinned () =
  let expect name engine =
    Alcotest.(check string)
      (Printf.sprintf "route(%s)" name)
      engine
      (route_name (find_case name).Zoo.Families.kb)
  in
  expect "datalog-clique-3" "datalog";
  expect "wa-ladder-3" "restricted";
  expect "linear-twist-3" "restricted";
  expect "braked-walk-3" "restricted";
  expect "fg-braid-3" "core";
  expect "nonterm-loop-3" "core";
  expect "linear-twist-3-mut" "core"

let test_egds_route_to_core () =
  let x = Term.fresh_var ~hint:"x" ()
  and y = Term.fresh_var ~hint:"y" ()
  and z = Term.fresh_var ~hint:"z" () in
  let kb =
    Kb.make
      ~facts:
        (Atomset.of_list
           [
             Atom.make "p" [ Term.const "a"; Term.const "b" ];
             Atom.make "p" [ Term.const "a"; Term.const "c" ];
           ])
      ~rules:[]
    |> Kb.with_egds
         [ Egd.make ~body:[ Atom.make "p" [ x; y ]; Atom.make "p" [ x; z ] ] y z ]
  in
  let report = Analyze.analyze ~budget kb in
  Alcotest.(check string) "EGD KB verdict capped at unknown" "unknown"
    (Analyze.verdict_name report.Analyze.verdict);
  Alcotest.(check bool) "egds:present criterion recorded" true
    (List.exists
       (fun (c : Analyze.criterion) -> c.Analyze.name = "egds:present" && c.holds)
       report.Analyze.criteria);
  Alcotest.(check string) "EGD KB routes to core" "core" (route_name kb)

let test_verdict_lattice () =
  Alcotest.(check (list int)) "verdict ranks are the chain 0..3"
    [ 0; 1; 2; 3 ]
    (List.map Analyze.verdict_rank
       Analyze.[ Unknown; Bts; Terminates_restricted; Terminates_all ])

let suites =
  [
    ( "analyze.zoo",
      [
        Alcotest.test_case "declared classes hold" `Quick
          test_declared_classes_hold;
        Alcotest.test_case "declared behaviours hold" `Quick
          test_declared_behaviour_holds;
      ] );
    ( "analyze.soundness",
      [
        Alcotest.test_case "certificates sound (jobs=1)" `Quick
          (soundness_at ~jobs:1);
        Alcotest.test_case "certificates sound (jobs=4)" `Quick
          (soundness_at ~jobs:4);
        Alcotest.test_case "no false certificates on diverging cases" `Quick
          test_no_false_certificates;
        Alcotest.test_case "termination mutants never certified" `Quick
          test_termination_mutants_not_certified;
      ] );
    ( "analyze.route",
      [
        Alcotest.test_case "routed engine ≡ core engine" `Quick
          test_routed_engine_agrees_with_core;
        Alcotest.test_case "routed entailment ≡ core entailment" `Quick
          test_routed_entailment_agrees_with_core;
        Alcotest.test_case "routing policy pinned" `Quick
          test_routing_policy_pinned;
        Alcotest.test_case "EGDs route to core" `Quick test_egds_route_to_core;
        Alcotest.test_case "verdict lattice ranks" `Quick test_verdict_lattice;
      ] );
  ]
