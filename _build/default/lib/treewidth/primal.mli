(** Gaifman (primal) graphs of atomsets.

    Vertices are the terms of the atomset; two terms are adjacent iff they
    co-occur in some atom.  Tree decompositions of the atomset in the sense
    of Definition 4 are exactly the tree decompositions of this graph, so
    all width computations go through it. *)

open Syntax

type t = { graph : Graph.t; terms : Term.t array }
(** [terms.(v)] is the term represented by vertex [v]. *)

val of_atomset : Atomset.t -> t

val vertex_of_term : t -> Term.t -> int option

val term_of_vertex : t -> int -> Term.t
