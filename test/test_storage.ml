(* Tests for lib/storage (DESIGN.md §16): the CRC/frame/record codec
   stack, WAL directory open/append/snapshot semantics, torn-tail vs
   mid-file-corruption classification, and — the point of the layer —
   the kill-at-arbitrary-step recovery differential: a run killed at any
   record (or any byte) and recovered from its log must agree step for
   step with the uninterrupted run, for every engine, including the
   serve daemon's session logs. *)

open Syntax
module W = Storage.Wal
module R = Storage.Record
module X = Storage.Xlog

let tc name f = Alcotest.test_case name `Quick f

let reset () = Term.reset_counter_for_tests ()

let ok label = function
  | Ok v -> v
  | Error m -> Alcotest.fail (label ^ ": " ^ m)

let expect_error label = function
  | Ok _ -> Alcotest.fail (label ^ ": expected an error")
  | Error (m : string) -> m

(* fresh scratch directory (removed recursively by [with_dir]) *)
let temp_dir () =
  let path = Filename.temp_file "corechase" ".wal" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* substring check without extra deps *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let with_faults spec f =
  Resilience.Fault.set_spec spec;
  Fun.protect ~finally:Resilience.Fault.clear f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

(* ------------------------------------------------------------------ *)
(* CRC-32 *)

let test_crc_vector () =
  (* the IEEE 802.3 check value: crc32("123456789") *)
  Alcotest.(check int) "known vector" 0xCBF43926 (Storage.Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Storage.Crc32.string "");
  Alcotest.(check int)
    "pair splits anywhere" (Storage.Crc32.string "123456789")
    (Storage.Crc32.pair "1234" "56789");
  Alcotest.(check int)
    "sub window"
    (Storage.Crc32.string "3456")
    (Storage.Crc32.string_sub "123456789" 2 4)

(* ------------------------------------------------------------------ *)
(* Record codec: deterministic round trips for every constructor (the
   randomized totality laws live in test_props.ml) *)

let sample_records () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" () in
  let a = Term.const "a" and b = Term.const "b" in
  let atom p args = Atom.make p args in
  let sigma = Subst.of_list [ (x, a) ] in
  let pi = Subst.of_list [ (x, a); (y, b) ] in
  [
    R.Begin
      {
        engine = "core";
        kb_path = Some "data/family.dlgp";
        kb_digest = Some "7a6fb6c585d99dbe28ce7677c497c203";
        max_steps = 40;
        max_atoms = 5_000;
        term_counter = Term.counter_value ();
        generation_counter = Homo.Instance.generation_counter_value ();
      };
    R.Begin
      {
        engine = "restricted";
        kb_path = None;
        kb_digest = None;
        max_steps = 0;
        max_atoms = 0;
        term_counter = 0;
        generation_counter = 0;
      };
    R.Start { sigma = Subst.empty };
    R.Add
      {
        index = 3;
        pi_safe = pi;
        sigma;
        added = [ atom "r" [ a; y ]; atom "p" [ x ] ];
      };
    R.Retract { index = 3; sigma = pi };
    R.Merge { sigma };
    R.Round
      {
        rounds = 2;
        steps = 7;
        snapshot_index = -1;
        term_counter = 123;
        generation_counter = 45;
      };
    R.Snap_step
      {
        index = 0;
        pi_safe = Subst.empty;
        sigma;
        pre = [ atom "r" [ a; b ] ];
        inst = [ atom "r" [ a; b ]; atom "p" [ a ] ];
      };
    R.Sess_op "OPEN s";
    R.Sess_chase
      {
        session = "s";
        variant = "core";
        max_steps = 500;
        max_atoms = 100_000;
        outcome = "fixpoint";
        chase_steps = 12;
        final = [ atom "p" [ a ]; atom "q" [ b ] ];
      };
    R.Sess_gen { session = "s"; generation = 4 };
  ]

let test_record_roundtrip () =
  reset ();
  List.iter
    (fun r ->
      let bytes = R.encode r in
      match R.decode bytes with
      | Error m -> Alcotest.fail (R.kind_name r ^ ": " ^ m)
      | Ok r' ->
          Alcotest.(check bool)
            (R.kind_name r ^ " round trips") true (R.equal r r'))
    (sample_records ())

let test_record_strict_prefixes_error () =
  reset ();
  List.iter
    (fun r ->
      let bytes = R.encode r in
      for len = 0 to String.length bytes - 1 do
        match R.decode (String.sub bytes 0 len) with
        | Error _ -> ()
        | Ok _ ->
            Alcotest.fail
              (Printf.sprintf "%s: %d-byte prefix decoded" (R.kind_name r) len)
      done)
    (sample_records ())

let test_frame_roundtrip_and_flips () =
  let payload = "hello, wal" in
  let frame = X.encode_frame ~lsn:42 payload in
  (match X.decode_frame frame with
  | Ok (lsn, p, consumed) ->
      Alcotest.(check int) "lsn" 42 lsn;
      Alcotest.(check string) "payload" payload p;
      Alcotest.(check int) "consumed" (String.length frame) consumed
  | Error e -> Alcotest.fail (Fmt.str "frame: %a" X.pp_frame_error e));
  (* every strict prefix is torn *)
  for len = 0 to String.length frame - 1 do
    match X.decode_frame (String.sub frame 0 len) with
    | Error X.Torn -> ()
    | Error e ->
        Alcotest.fail (Fmt.str "prefix %d: expected torn, got %a" len X.pp_frame_error e)
    | Ok _ -> Alcotest.fail (Printf.sprintf "prefix %d decoded" len)
  done;
  (* every single-byte flip is detected *)
  for i = 0 to String.length frame - 1 do
    let b = Bytes.of_string frame in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    match X.decode_frame (Bytes.to_string b) with
    | Ok (lsn, p, _) when lsn = 42 && p = payload ->
        Alcotest.fail (Printf.sprintf "flip at %d undetected" i)
    | Ok _ | Error _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* WAL directory: open/append/reopen, torn tails, corruption *)

let sess_ops n = List.init n (fun i -> R.Sess_op (Printf.sprintf "OPEN s%d" i))

let test_empty_dir () =
  with_dir @@ fun dir ->
  let w = ok "open" (W.open_dir dir) in
  Alcotest.(check bool) "empty" true (W.is_empty w);
  Alcotest.(check bool) "no torn tail" false (W.had_torn_tail w);
  (match W.peek_header w with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "header out of an empty log"
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "no records" 0 (List.length (ok "records" (W.records w)));
  W.close w

let test_append_reopen () =
  with_dir @@ fun dir ->
  let w = ok "open" (W.open_dir dir) in
  List.iter (W.append w) (sess_ops 5);
  W.close w;
  let w2 = ok "reopen" (W.open_dir dir) in
  Alcotest.(check bool) "not empty" false (W.is_empty w2);
  Alcotest.(check bool) "clean tail" false (W.had_torn_tail w2);
  let got = ok "records" (W.records w2) in
  Alcotest.(check int) "5 records" 5 (List.length got);
  List.iter2
    (fun a b -> Alcotest.(check bool) "same record" true (R.equal a b))
    (sess_ops 5) got;
  (* the LSN sequence continues across reopen *)
  List.iter (W.append w2) (sess_ops 3);
  W.close w2;
  let w3 = ok "re-reopen" (W.open_dir dir) in
  Alcotest.(check int) "8 records" 8 (List.length (ok "records" (W.records w3)));
  W.close w3

let test_append_after_close_raises () =
  with_dir @@ fun dir ->
  let w = ok "open" (W.open_dir dir) in
  W.close w;
  W.close w (* idempotent *);
  match W.append w (R.Sess_op "PING") with
  | () -> Alcotest.fail "append after close succeeded"
  | exception Invalid_argument _ -> ()

let segment_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> Filename.check_suffix n ".xlog")
  |> List.sort compare

let test_torn_tail_truncated () =
  with_dir @@ fun dir ->
  let w = ok "open" (W.open_dir dir) in
  List.iter (W.append w) (sess_ops 4);
  W.close w;
  let seg = Filename.concat dir (List.hd (segment_files dir)) in
  let bytes = read_file seg in
  (* chop into the last frame: the classic kill-9 mid-write *)
  write_file seg (String.sub bytes 0 (String.length bytes - 3));
  let w2 = ok "reopen torn" (W.open_dir ~quiet:true dir) in
  Alcotest.(check bool) "torn tail seen" true (W.had_torn_tail w2);
  Alcotest.(check int) "last record dropped" 3
    (List.length (ok "records" (W.records w2)));
  (* the truncated log accepts new appends and reopens clean *)
  W.append w2 (R.Sess_op "OPEN again");
  W.close w2;
  let w3 = ok "reopen clean" (W.open_dir dir) in
  Alcotest.(check bool) "clean after truncate" false (W.had_torn_tail w3);
  Alcotest.(check int) "3 + 1 records" 4
    (List.length (ok "records" (W.records w3)));
  W.close w3

(* every byte-length prefix of a valid log opens: complete frames
   survive, the torn remainder is truncated — never an exception, never
   a refusal.  This is the kill-9-at-arbitrary-byte guarantee. *)
let test_prefix_sweep () =
  with_dir @@ fun dir ->
  let w = ok "open" (W.open_dir dir) in
  List.iter (W.append w) (sess_ops 6);
  W.close w;
  let seg_name = List.hd (segment_files dir) in
  let bytes = read_file (Filename.concat dir seg_name) in
  let total = List.length (sess_ops 6) in
  for len = String.length X.wal_magic to String.length bytes do
    with_dir @@ fun dir2 ->
    write_file (Filename.concat dir2 seg_name) (String.sub bytes 0 len);
    let w2 = ok (Printf.sprintf "prefix %d" len) (W.open_dir ~quiet:true dir2) in
    let got = ok "records" (W.records w2) in
    Alcotest.(check bool)
      (Printf.sprintf "prefix %d is a record prefix" len)
      true
      (List.length got <= total
      && List.for_all2
           (fun a b -> R.equal a b)
           got
           (List.filteri (fun i _ -> i < List.length got) (sess_ops 6)));
    W.close w2
  done

let test_midfile_corruption_refused () =
  with_dir @@ fun dir ->
  let w = ok "open" (W.open_dir dir) in
  List.iter (W.append w) (sess_ops 4);
  W.close w;
  let seg = Filename.concat dir (List.hd (segment_files dir)) in
  let bytes = read_file seg in
  (* flip one payload byte of the FIRST frame: the failure is not at
     end-of-file, so it is corruption, not a torn tail *)
  let b = Bytes.of_string bytes in
  let pos = String.length X.wal_magic + X.header_bytes in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
  write_file seg (Bytes.to_string b);
  let m = expect_error "corrupt open" (W.open_dir ~quiet:true dir) in
  Alcotest.(check bool) "names the segment" true
    (contains ~sub:".xlog" m)

let test_last_frame_crc_flip_is_torn () =
  with_dir @@ fun dir ->
  let w = ok "open" (W.open_dir dir) in
  List.iter (W.append w) (sess_ops 4);
  W.close w;
  let seg = Filename.concat dir (List.hd (segment_files dir)) in
  let bytes = read_file seg in
  let b = Bytes.of_string bytes in
  (* flip the last byte: the damaged frame ends exactly at EOF *)
  Bytes.set b
    (Bytes.length b - 1)
    (Char.chr (Char.code (Bytes.get b (Bytes.length b - 1)) lxor 0xFF));
  write_file seg (Bytes.to_string b);
  let w2 = ok "reopen" (W.open_dir ~quiet:true dir) in
  Alcotest.(check bool) "classified torn" true (W.had_torn_tail w2);
  Alcotest.(check int) "one record dropped" 3
    (List.length (ok "records" (W.records w2)));
  W.close w2

let test_snapshot_and_rotation () =
  with_dir @@ fun dir ->
  let w = ok "open" (W.open_dir ~snapshot_every:3 dir) in
  let compacted = ref [] in
  let tick r =
    W.append w r;
    compacted := !compacted @ [ r ];
    (* the thunk hands back the compacted state, like the serve
       registry does *)
    W.maybe_snapshot w (fun () -> !compacted)
  in
  List.iter tick (sess_ops 7);
  W.close w;
  let snaps =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n ".snap")
  in
  Alcotest.(check int) "two snapshots (after op 3 and 6)" 2 (List.length snaps);
  Alcotest.(check bool) "segments retained" true (List.length (segment_files dir) >= 2);
  let w2 = ok "reopen" (W.open_dir dir) in
  let got = ok "records" (W.records w2) in
  Alcotest.(check int) "snapshot + tail covers all 7" 7 (List.length got);
  List.iter2
    (fun a b -> Alcotest.(check bool) "same record" true (R.equal a b))
    (sess_ops 7) got;
  W.close w2

let test_snap_fault_leaves_log_intact () =
  with_dir @@ fun dir ->
  let w = ok "open" (W.open_dir ~snapshot_every:2 dir) in
  (try
     with_faults "snap:1:cancel" (fun () ->
         List.iter
           (fun r ->
             W.append w r;
             W.maybe_snapshot w (fun () -> sess_ops 2))
           (sess_ops 2))
   with _ -> ());
  W.close w;
  Alcotest.(check bool) "temp file left behind" true
    (Array.exists
       (fun n -> Filename.check_suffix n ".tmp")
       (Sys.readdir dir));
  let w2 = ok "reopen" (W.open_dir dir) in
  Alcotest.(check bool) "temp file swept" false
    (Array.exists
       (fun n -> Filename.check_suffix n ".tmp")
       (Sys.readdir dir));
  Alcotest.(check int) "log intact without the snapshot" 2
    (List.length (ok "records" (W.records w2)));
  W.close w2

(* ------------------------------------------------------------------ *)
(* Kill/resume differential through the WAL: for every engine and
   workload, a run killed by an injected fault — at a step, a round
   boundary, mid-fsync (the [wal] site) or mid-snapshot-rename (the
   [snap] site) — and recovered from its log must agree step for step
   with the uninterrupted run. *)

let diff_budget = { Chase.Variants.max_steps = 30; max_atoms = 5_000 }

type runner = {
  ename : string;
  erun :
    ?resume:Chase.Variants.engine_state ->
    ?checkpoint:(Chase.Variants.engine_state -> unit) ->
    ?journal:Chase.Variants.journal ->
    budget:Chase.Variants.budget ->
    Kb.t ->
    Chase.Variants.run;
}

let runners =
  [
    {
      ename = "restricted";
      erun =
        (fun ?resume ?checkpoint ?journal ~budget kb ->
          Chase.Variants.restricted ~budget ?resume ?checkpoint ?journal kb);
    };
    {
      ename = "frugal";
      erun =
        (fun ?resume ?checkpoint ?journal ~budget kb ->
          Chase.Variants.frugal ~budget ?resume ?checkpoint ?journal kb);
    };
    {
      ename = "core";
      erun =
        (fun ?resume ?checkpoint ?journal ~budget kb ->
          Chase.Variants.core ~budget ?resume ?checkpoint ?journal kb);
    };
    {
      ename = "core-round";
      erun =
        (fun ?resume ?checkpoint ?journal ~budget kb ->
          Chase.Variants.core ~cadence:Chase.Variants.Every_round ~budget
            ?resume ?checkpoint ?journal kb);
    };
  ]

let workloads =
  [
    ("transitive-closure", Zoo.Classic.transitive_closure);
    ("staircase", Zoo.Staircase.kb);
    ("elevator", Zoo.Elevator.kb);
  ]

let same_run label (a : Chase.Variants.run) (b : Chase.Variants.run) =
  Alcotest.(check bool)
    (label ^ ": same outcome") true
    (a.Chase.Variants.outcome = b.Chase.Variants.outcome);
  Alcotest.(check int)
    (label ^ ": same rounds")
    a.Chase.Variants.rounds b.Chase.Variants.rounds;
  let da = a.Chase.Variants.derivation and db = b.Chase.Variants.derivation in
  Alcotest.(check int)
    (label ^ ": same length")
    (Chase.Derivation.length da)
    (Chase.Derivation.length db);
  List.iter2
    (fun (x : Chase.Derivation.step) (y : Chase.Derivation.step) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: step %d pre-instance" label x.Chase.Derivation.index)
        true
        (Atomset.equal x.Chase.Derivation.pre_instance
           y.Chase.Derivation.pre_instance);
      Alcotest.(check bool)
        (Printf.sprintf "%s: step %d simplification" label
           x.Chase.Derivation.index)
        true
        (Subst.equal x.Chase.Derivation.simplification
           y.Chase.Derivation.simplification);
      Alcotest.(check bool)
        (Printf.sprintf "%s: step %d instance" label x.Chase.Derivation.index)
        true
        (Atomset.equal x.Chase.Derivation.instance y.Chase.Derivation.instance))
    (Chase.Derivation.steps da)
    (Chase.Derivation.steps db)

(* resume the interrupted log in a simulated fresh process and check it
   against [reference]; recovery must succeed and the resumed run (its
   journal appending only past the durable watermark) must match. *)
let recover_and_check ~label ~reference r build dir =
  reset ();
  let kb3 = build () in
  let w2 = ok (label ^ ": reopen") (W.open_dir ~quiet:true dir) in
  if W.is_empty w2 then begin
    (* the kill beat even the header write: recovery is a fresh run *)
    let journal = W.journal w2 ~engine:r.ename ~budget:diff_budget () in
    let fresh = r.erun ~budget:diff_budget ~journal kb3 in
    W.close w2;
    same_run label reference fresh
  end
  else begin
    let recovered = ok (label ^ ": recover") (W.recover w2 kb3) in
    let journal =
      W.journal w2 ~engine:r.ename ~budget:diff_budget
        ~durable:recovered.W.r_durable ()
    in
    let resumed =
      r.erun ~budget:diff_budget ?resume:recovered.W.r_state ~journal kb3
    in
    W.close w2;
    same_run label reference resumed;
    (* recover-after-resume: the log now also replays to the finished
       run's boundary — the journal dedup did not double-append *)
    reset ();
    let kb4 = build () in
    let w3 = ok (label ^ ": re-reopen") (W.open_dir ~quiet:true dir) in
    let again = ok (label ^ ": re-recover") (W.recover w3 kb4) in
    W.close w3;
    (* the run's last round may be partial (budget/fault mid-round), so
       its boundary record never exists; every completed one must *)
    Alcotest.(check bool)
      (label ^ ": durable rounds caught up")
      true
      (let d = again.W.r_durable.W.d_rounds in
       d = resumed.Chase.Variants.rounds
       || d = resumed.Chase.Variants.rounds - 1)
  end

let wal_differential ~spec ~snapshot_every r (wname, build) =
  let label = Printf.sprintf "%s/%s[%s]" r.ename wname spec in
  reset ();
  let reference = r.erun ~budget:diff_budget (build ()) in
  reset ();
  let kb2 = build () in
  with_dir @@ fun dir ->
  (let w = ok (label ^ ": open") (W.open_dir ~snapshot_every ~quiet:true dir) in
   let journal = W.journal w ~engine:r.ename ~budget:diff_budget () in
   let checkpoint =
     if snapshot_every > 0 then
       Some (W.checkpoint_hook w ~engine:r.ename ~budget:diff_budget ())
     else None
   in
   let (_ : Chase.Variants.run) =
     with_faults spec (fun () ->
         r.erun ~budget:diff_budget ?checkpoint ~journal kb2)
   in
   (* no [W.close]: the kill left the handle behind; Sync_every already
      made every append durable *)
   ignore w);
  recover_and_check ~label ~reference r build dir

let fault_matrix =
  [
    (* mid-step, mid-round, mid-fsync, mid-snapshot-rename *)
    ("step:7:out_of_memory", 0);
    ("round:3:cancel", 0);
    ("wal:11:cancel", 0);
    ("wal:5:out_of_memory", 2);
    ("snap:1:out_of_memory", 2);
  ]

let differential_all () =
  List.iter
    (fun r ->
      List.iter
        (fun w ->
          List.iter
            (fun (spec, snapshot_every) ->
              wal_differential ~spec ~snapshot_every r w)
            fault_matrix)
        workloads)
    runners

let test_differential_jobs1 () = Par.with_jobs 1 differential_all

let test_differential_jobs4 () =
  (* the reduced matrix: the pool does not change journal contents, so
     one spec per category suffices at jobs=4 *)
  Par.with_jobs 4 (fun () ->
      List.iter
        (fun r ->
          List.iter
            (fun w ->
              wal_differential ~spec:"step:7:out_of_memory" ~snapshot_every:0 r w;
              wal_differential ~spec:"wal:5:cancel" ~snapshot_every:2 r w)
            [ List.hd workloads ])
        runners)

(* kill at every frame boundary and at a mid-frame byte after it: the
   byte-level version of the differential, one engine (the journal
   bytes do not depend on the engine loop, only on the derivation) *)
let test_boundary_sweep () =
  let r = List.hd runners in
  let build = Zoo.Classic.transitive_closure in
  reset ();
  let reference = r.erun ~budget:diff_budget (build ()) in
  reset ();
  let kb2 = build () in
  with_dir @@ fun dir ->
  (let w = ok "open" (W.open_dir dir) in
   let journal = W.journal w ~engine:r.ename ~budget:diff_budget () in
   let (_ : Chase.Variants.run) = r.erun ~budget:diff_budget ~journal kb2 in
   W.close w);
  let seg_name = List.hd (segment_files dir) in
  let bytes = read_file (Filename.concat dir seg_name) in
  let boundaries =
    let rec go pos acc =
      if pos >= String.length bytes then List.rev acc
      else
        match X.decode_frame ~pos bytes with
        | Ok (_, _, consumed) -> go (pos + consumed) ((pos + consumed) :: acc)
        | Error _ -> List.rev acc
    in
    go (String.length X.wal_magic) [ String.length X.wal_magic ]
  in
  List.iter
    (fun b ->
      List.iter
        (fun len ->
          if len <= String.length bytes then begin
            with_dir @@ fun dir2 ->
            write_file
              (Filename.concat dir2 seg_name)
              (String.sub bytes 0 len);
            recover_and_check
              ~label:(Printf.sprintf "cut@%d" len)
              ~reference r build dir2
          end)
        [ b; b + 5 ])
    boundaries

(* library-level export/import round trip: recover → text checkpoint →
   import into a fresh WAL → recover again → the same resumed run *)
let test_export_import_roundtrip () =
  let r = List.nth runners 2 (* core *) in
  let build = Zoo.Staircase.kb in
  let small = { Chase.Variants.max_steps = 12; max_atoms = 5_000 } in
  let big = { Chase.Variants.max_steps = 24; max_atoms = 5_000 } in
  reset ();
  let reference = r.erun ~budget:big (build ()) in
  reset ();
  let kb2 = build () in
  with_dir @@ fun dir1 ->
  with_dir @@ fun dir2 ->
  let ckpt = Filename.temp_file "corechase" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove ckpt with Sys_error _ -> ())
    (fun () ->
      (let w = ok "open" (W.open_dir dir1) in
       let journal = W.journal w ~engine:"core" ~budget:small () in
       let (_ : Chase.Variants.run) = r.erun ~budget:small ~journal kb2 in
       W.close w);
      (* export: recover the log, save its boundary as a text checkpoint *)
      reset ();
      let kb3 = build () in
      let w = ok "reopen" (W.open_dir dir1) in
      let recovered = ok "recover" (W.recover w kb3) in
      W.close w;
      let state =
        match recovered.W.r_state with
        | Some s -> s
        | None -> Alcotest.fail "no durable round to export"
      in
      Chase.Checkpoint.save ~path:ckpt ~engine:"core" ~budget:small state;
      (* import: seed a fresh WAL from the text checkpoint *)
      reset ();
      let kb4 = build () in
      let _, _, loaded =
        ok "checkpoint load" (Chase.Checkpoint.load kb4 ckpt)
      in
      let w2 = ok "open import target" (W.open_dir dir2) in
      ok "import" (W.import_state w2 ~engine:"core" ~budget:small loaded);
      W.close w2;
      (* a second import must refuse: the directory holds a log now *)
      let w2b = ok "reopen import target" (W.open_dir dir2) in
      let m =
        expect_error "double import"
          (W.import_state w2b ~engine:"core" ~budget:small loaded)
      in
      Alcotest.(check bool) "says it holds a log" true
        (contains ~sub:"already holds a log" m);
      W.close w2b;
      (* resume out of the imported WAL with the larger budget *)
      reset ();
      let kb5 = build () in
      let w3 = ok "reopen imported" (W.open_dir dir2) in
      let rec2 = ok "recover imported" (W.recover w3 kb5) in
      let journal =
        W.journal w3 ~engine:"core" ~budget:big ~durable:rec2.W.r_durable ()
      in
      let resumed =
        r.erun ~budget:big ?resume:rec2.W.r_state ~journal kb5
      in
      W.close w3;
      same_run "import-resume" reference resumed)

let test_recover_errors () =
  with_dir @@ fun dir ->
  (* empty log *)
  (let w = ok "open" (W.open_dir dir) in
   let m = expect_error "empty recover" (W.recover w (Kb.of_lists ~facts:[] ~rules:[])) in
   Alcotest.(check bool) "names emptiness" true
     (contains ~sub:"empty" m);
   W.close w);
  (* a session log is not a chase log — recovery reads the records as
     they were at open time, so write, close and reopen *)
  (let w = ok "reopen" (W.open_dir dir) in
   W.append w (R.Sess_op "OPEN s");
   W.close w);
  let w = ok "reopen session log" (W.open_dir dir) in
  let m2 =
    expect_error "session recover"
      (W.recover w (Kb.of_lists ~facts:[] ~rules:[]))
  in
  Alcotest.(check bool) "structured, names the record" true
    (contains ~sub:"sess" m2
    || contains ~sub:"session" m2
    || contains ~sub:"header" m2);
  W.close w

let test_wal_metrics () =
  Obs.Metrics.reset ();
  Obs.Metrics.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.enabled := false;
      Obs.Metrics.reset ())
    (fun () ->
      with_dir @@ fun dir ->
      (let w = ok "open" (W.open_dir dir) in
       List.iter (W.append w) (sess_ops 3);
       W.close w);
      Alcotest.(check bool) "appends counted" true
        (Obs.Metrics.counter_value "wal.appends" >= 3);
      Alcotest.(check bool) "fsyncs counted" true
        (Obs.Metrics.counter_value "wal.fsyncs" >= 3);
      (* tear the tail, reopen: the torn-tail counter moves *)
      let seg = Filename.concat dir (List.hd (segment_files dir)) in
      let bytes = read_file seg in
      write_file seg (String.sub bytes 0 (String.length bytes - 1));
      let w2 = ok "reopen" (W.open_dir ~quiet:true dir) in
      W.close w2;
      Alcotest.(check bool) "torn tail counted" true
        (Obs.Metrics.counter_value "wal.torn_tails" >= 1))

(* ------------------------------------------------------------------ *)
(* The serve daemon's session log: a killed daemon restarted on the
   same WAL answers ENTAIL byte-identically (DESIGN.md §16). *)

module P = Server.Protocol

let preq s = ok ("parse " ^ s) (P.parse_request s)

let frames_bytes frames = String.concat "" (List.map P.encode frames)

let serve_script =
  [
    "OPEN s";
    "LOAD s inline\np(a). q(X) :- p(X). r(X,Y) :- q(X), p(Y).";
    "CHASE s";
    "OPEN t";
    "LOAD t inline\nedge(a,b). edge(b,c). path(X,Y) :- edge(X,Y).\n\
     path(X,Z) :- path(X,Y), edge(Y,Z).";
    "CHASE t";
  ]

let entails =
  [ "ENTAIL s\n? :- r(a,a)."; "ENTAIL t\n? :- path(a,c)."; "ENTAIL t\n? :- path(c,a)." ]

let run_script lb = List.iter (fun s -> ignore (Server.Loopback.request lb (preq s))) serve_script

let entail_bytes lb =
  frames_bytes
    (List.concat_map (fun s -> Server.Loopback.request lb (preq s)) entails)

let test_serve_restart_differential () =
  reset ();
  with_dir @@ fun dir ->
  let before =
    let w = ok "open" (W.open_dir dir) in
    let lb = Server.Loopback.create ~wal:w () in
    run_script lb;
    let bytes = entail_bytes lb in
    (* kill -9: no close; Sync_every already made the ops durable *)
    ignore w;
    bytes
  in
  reset ();
  let w2 = ok "reopen" (W.open_dir ~quiet:true dir) in
  let lb2 = Server.Loopback.create ~wal:w2 () in
  let after = entail_bytes lb2 in
  Alcotest.(check string) "ENTAIL byte-identical across restart" before after;
  (* the restarted daemon keeps counting generations where the dead one
     stopped: session s was chased once before the kill *)
  let frames = Server.Loopback.request lb2 (preq "CHASE s") in
  let final = List.nth frames (List.length frames - 1) in
  Alcotest.(check bool) "generation advances past the replayed one" true
    (contains ~sub:"generation 2" final.P.payload);
  W.close w2

let test_serve_restart_with_snapshots () =
  reset ();
  with_dir @@ fun dir ->
  let before =
    let w = ok "open" (W.open_dir ~snapshot_every:2 dir) in
    let lb = Server.Loopback.create ~wal:w () in
    run_script lb;
    (* a second chase bumps s's generation to 2 pre-kill *)
    ignore (Server.Loopback.request lb (preq "CHASE s"));
    entail_bytes lb
  in
  Alcotest.(check bool) "snapshots were written" true
    (Array.exists
       (fun n -> Filename.check_suffix n ".snap")
       (Sys.readdir dir));
  reset ();
  let w2 = ok "reopen" (W.open_dir ~quiet:true ~snapshot_every:2 dir) in
  let lb2 = Server.Loopback.create ~wal:w2 () in
  let after = entail_bytes lb2 in
  Alcotest.(check string) "ENTAIL byte-identical through compaction" before
    after;
  let frames = Server.Loopback.request lb2 (preq "CHASE s") in
  let final = List.nth frames (List.length frames - 1) in
  Alcotest.(check bool) "generation pinned by the snapshot" true
    (contains ~sub:"generation 3" final.P.payload);
  W.close w2

let test_serve_close_forgotten_session () =
  reset ();
  with_dir @@ fun dir ->
  (let w = ok "open" (W.open_dir dir) in
   let lb = Server.Loopback.create ~wal:w () in
   run_script lb;
   ignore (Server.Loopback.request lb (preq "CLOSE t")));
  reset ();
  let w2 = ok "reopen" (W.open_dir ~quiet:true dir) in
  let lb2 = Server.Loopback.create ~wal:w2 () in
  let frames = Server.Loopback.request lb2 (preq "ENTAIL t\n? :- path(a,c).") in
  let final = List.nth frames (List.length frames - 1) in
  Alcotest.(check bool) "closed session stays closed" true
    (final.P.kind = P.K_err);
  W.close w2

let suites =
  [
    ( "storage.codec",
      [
        tc "crc32 known vectors" test_crc_vector;
        tc "record encode/decode round trips" test_record_roundtrip;
        tc "record strict prefixes are errors" test_record_strict_prefixes_error;
        tc "frame round trip, prefixes, flips" test_frame_roundtrip_and_flips;
      ] );
    ( "storage.wal",
      [
        tc "empty directory" test_empty_dir;
        tc "append and reopen" test_append_reopen;
        tc "append after close raises" test_append_after_close_raises;
        tc "torn tail truncated with warning" test_torn_tail_truncated;
        tc "every byte prefix opens to a record prefix" test_prefix_sweep;
        tc "mid-file corruption refused" test_midfile_corruption_refused;
        tc "crc flip at EOF is a torn tail" test_last_frame_crc_flip_is_torn;
        tc "snapshot cadence and segment rotation" test_snapshot_and_rotation;
        tc "snap fault leaves the log intact" test_snap_fault_leaves_log_intact;
        tc "wal metrics move" test_wal_metrics;
      ] );
    ( "storage.recovery",
      [
        tc "kill/resume differential, jobs=1" test_differential_jobs1;
        tc "kill/resume differential, jobs=4" test_differential_jobs4;
        tc "kill at every frame boundary" test_boundary_sweep;
        tc "export/import round trip" test_export_import_roundtrip;
        tc "recover error taxonomy" test_recover_errors;
      ] );
    ( "storage.serve",
      [
        tc "restart answers ENTAIL byte-identically"
          test_serve_restart_differential;
        tc "restart through snapshot compaction"
          test_serve_restart_with_snapshots;
        tc "CLOSE is durable too" test_serve_close_forgotten_session;
      ] );
  ]
