lib/core/corechase.mli: Atomset Certificate Entailment Kb Measures Probes Robust Syntax
