lib/core/entailment.ml: Chase Fmt Homo Kb List Modelfinder Syntax Term Ucq
