open Syntax

let find_endomorphism_into a target = Hom.find a (Instance.of_atomset target)

let profile a =
  (Atomset.cardinal a, List.length (Atomset.terms a), Atomset.preds a)

let find_isomorphism a b =
  (* Prechecks: same atom count, same term count, same predicate profile,
     and the constants coincide (constants are isomorphism-invariant). *)
  if profile a <> profile b then None
  else if
    not
      (List.equal Term.equal (Atomset.consts a) (Atomset.consts b))
  then None
  else
    (* An injective homomorphism between equinumerous atomsets over
       equinumerous term sets is an isomorphism (see DESIGN.md §2 item 5):
       injectivity on terms makes it injective on atoms, hence surjective
       onto [b]; the inverse is then automatically a homomorphism. *)
    Hom.find ~injective:true a (Instance.of_atomset b)

let isomorphic a b =
  match find_isomorphism a b with Some _ -> true | None -> false

let hom_equivalent a b = Hom.maps_to a b && Hom.maps_to b a

let is_automorphism a sigma =
  Subst.is_endomorphism_of a sigma
  && Atomset.equal (Subst.apply sigma a) a
  && Subst.is_injective_on (Atomset.terms a) sigma

let invert_automorphism a sigma =
  if not (is_automorphism a sigma) then
    invalid_arg "Morphism.invert_automorphism: not an automorphism";
  match Subst.inverse_on (Atomset.terms a) sigma with
  | Some inv -> inv
  | None -> invalid_arg "Morphism.invert_automorphism: not invertible"

let retract_of a sigma =
  if not (Subst.is_retraction_of a sigma) then
    invalid_arg "Morphism.retract_of: not a retraction";
  Subst.apply sigma a
