open Syntax

(* Observability (DESIGN.md §8): robust-form construction and aggregation
   are counted so benchmarks can attribute core-chase post-processing
   work. *)
let m_steps_built = Obs.Metrics.counter "robust.steps_built"

let m_aggregations = Obs.Metrics.counter "robust.aggregations"

module TM = Map.Make (Term)

(* The renaming of Definition 14, for a [sigma] KNOWN to be a retraction
   of [a] — chase engines certify their simplifications (the retraction
   property is asserted where they are built, see Homo.Core), so the
   robust-sequence construction reuses them as-is instead of re-proving
   the property per step.  One pass over vars(a) groups every variable
   under its image and keeps the [<_X]-smallest representative; each
   image variable x is its own preimage (retractions fix their image's
   terms), so x seeds its own group. *)
let renaming_of_retraction a sigma =
  let image = Subst.apply sigma a in
  let best =
    List.fold_left
      (fun best x -> TM.add x x best)
      TM.empty (Atomset.vars image)
  in
  let best =
    List.fold_left
      (fun best y ->
        let x = Subst.apply_term sigma y in
        match TM.find_opt x best with
        | None -> best
        | Some cur ->
            if Term.compare_by_rank y cur < 0 then TM.add x y best else best)
      best (Atomset.vars a)
  in
  TM.fold
    (fun x y acc -> if Term.equal x y then acc else Subst.add x y acc)
    best Subst.empty

let robust_renaming a sigma =
  if not (Subst.is_retraction_of a sigma) then
    invalid_arg "Robust.robust_renaming: not a retraction";
  renaming_of_retraction a sigma

let tau_of a sigma = Subst.compose (robust_renaming a sigma) sigma

type step = {
  index : int;
  a_prime : Atomset.t;
  sigma_prime : Subst.t;
  f_prime : Atomset.t;
  renaming : Subst.t;
  g : Atomset.t;
  rho : Subst.t;
  tau : Subst.t;
}

(* Steps are stored in an array: [aggregation]/[tau_trace] walk the
   sequence index by index, and O(1) [step] access keeps those walks
   linear instead of quadratic. *)
type t = { derivation : Chase.Derivation.t; steps_arr : step array; len : int }

let build_step0 (dstep : Chase.Derivation.step) =
  let f = dstep.Chase.Derivation.pre_instance in
  let sigma0 = dstep.Chase.Derivation.simplification in
  let f0 = dstep.Chase.Derivation.instance in
  let renaming = renaming_of_retraction f sigma0 in
  let g = Subst.apply renaming f0 in
  {
    index = 0;
    a_prime = f;
    sigma_prime = sigma0;
    f_prime = f0;
    renaming;
    g;
    rho = Subst.restrict (Atomset.vars f0) renaming;
    tau = Subst.compose renaming sigma0;
  }

let build_step (prev : step) (prev_f : Atomset.t) (dstep : Chase.Derivation.step) =
  let a_i = dstep.Chase.Derivation.pre_instance in
  let sigma_i = dstep.Chase.Derivation.simplification in
  let f_i = dstep.Chase.Derivation.instance in
  let rho_prev = prev.rho in
  let a_prime = Subst.apply rho_prev a_i in
  let inv =
    match Subst.inverse_on (Atomset.vars prev_f) rho_prev with
    | Some s -> s
    | None -> invalid_arg "Robust: ρ_{i-1} is not invertible (internal error)"
  in
  (* σ'_i = ρ_{i-1} • σ_i • ρ_{i-1}⁻¹, built pointwise on vars(A'_i) *)
  let sigma_prime =
    List.fold_left
      (fun acc x' ->
        let x = Subst.apply_term inv x' in
        let img = Subst.apply_term rho_prev (Subst.apply_term sigma_i x) in
        if Term.equal img x' then acc else Subst.add x' img acc)
      Subst.empty (Atomset.vars a_prime)
  in
  let f_prime = Subst.apply sigma_prime a_prime in
  (* σ'_i is a conjugate of the derivation's retraction σ_i by the
     isomorphism ρ_{i-1}, hence itself a retraction — reused, not
     re-validated ([check_invariants] still verifies it on demand) *)
  let renaming = renaming_of_retraction a_prime sigma_prime in
  let g = Subst.apply renaming f_prime in
  {
    index = dstep.Chase.Derivation.index;
    a_prime;
    sigma_prime;
    f_prime;
    renaming;
    g;
    rho = Subst.restrict (Atomset.vars f_i) (Subst.compose renaming rho_prev);
    tau = Subst.compose renaming sigma_prime;
  }

let of_derivation d =
  let dsteps = Chase.Derivation.steps d in
  match dsteps with
  | [] -> invalid_arg "Robust.of_derivation: empty derivation"
  | d0 :: rest ->
      let s0 = build_step0 d0 in
      let rev_steps, _ =
        List.fold_left
          (fun (acc, prev_f) dstep ->
            let prev = List.hd acc in
            let s = build_step prev prev_f dstep in
            (s :: acc, dstep.Chase.Derivation.instance))
          ([ s0 ], d0.Chase.Derivation.instance)
          rest
      in
      let len = List.length rev_steps in
      if !Obs.Metrics.enabled then Obs.Metrics.add m_steps_built len;
      { derivation = d; steps_arr = Array.of_list (List.rev rev_steps); len }

let derivation r = r.derivation

let length r = r.len

let step r i =
  if i < 0 || i >= r.len then invalid_arg "Robust.step: out of range";
  r.steps_arr.(i)

let steps r = Array.to_list r.steps_arr

let g_at r i = (step r i).g

let tau_trace r ~from_ ~to_ =
  if from_ > to_ then invalid_arg "Robust.tau_trace: from_ > to_";
  let rec go i acc =
    if i > to_ then acc else go (i + 1) (Subst.compose (step r i).tau acc)
  in
  go (from_ + 1) Subst.empty

let aggregation r =
  Obs.Metrics.incr m_aggregations;
  (* τ̄_i^k built from the top down: τ̄_i^k = τ̄_{i+1}^k • τ_{i+1} *)
  let rec go i trace acc =
    if i < 0 then acc
    else
      let acc = Atomset.union acc (Subst.apply trace (g_at r i)) in
      if i = 0 then acc
      else go (i - 1) (Subst.compose trace (step r i).tau) acc
  in
  go (r.len - 1) Subst.empty Atomset.empty

let aggregation_upto r i =
  if i < 0 || i >= r.len then invalid_arg "Robust.aggregation_upto";
  (* ∪_{j≤i} τ̄_j^K(G_j): the same top-down traversal as [aggregation], but
     only indices up to [i] contribute (their images are still pushed
     through every remaining τ of the prefix) *)
  let rec go j trace acc =
    if j < 0 then acc
    else
      let acc =
        if j <= i then Atomset.union acc (Subst.apply trace (g_at r j))
        else acc
      in
      if j = 0 then acc else go (j - 1) (Subst.compose trace (step r j).tau) acc
  in
  go (r.len - 1) Subst.empty Atomset.empty

let fold_indices r =
  List.filter_map
    (fun st ->
      if Subst.is_empty st.Chase.Derivation.simplification then None
      else Some st.Chase.Derivation.index)
    (Chase.Derivation.steps r.derivation)

let stable_aggregation r =
  Obs.Metrics.incr m_aggregations;
  (* Candidate truncation points are the simplification (fold) boundaries;
     the stable part of D⊛ surfaces at the boundaries where a whole step
     has been retracted away.  Pick the latest candidate of minimal atom
     count relative to its depth — concretely: among fold indices, the
     aggregation-upto with the smallest width-proxy (atoms per index),
     preferring later indices on ties.  Falls back to the full aggregation
     when the derivation never simplifies (monotonic case). *)
  match fold_indices r with
  | [] -> aggregation r
  | folds ->
      let scored =
        List.map
          (fun i ->
            let a = aggregation_upto r i in
            (* minimise treewidth; on ties prefer the larger (more complete)
               and later aggregation *)
            let w = Treewidth.upper_bound a in
            ((w, -Atomset.cardinal a, -i), a))
          folds
      in
      let _, best =
        List.fold_left
          (fun (bs, ba) (s, a) -> if s < bs then (s, a) else (bs, ba))
          (match scored with x :: _ -> x | [] -> assert false)
          scored
      in
      best

let check_invariants r =
  let ( let* ) = Result.bind in
  let check b msg = if b then Ok () else Error msg in
  let dsteps = Array.of_list (Chase.Derivation.steps r.derivation) in
  let rsteps = r.steps_arr in
  let n = Array.length rsteps in
  let rec loop i =
    if i >= n then Ok ()
    else begin
      let rs = rsteps.(i) in
      let ds = dsteps.(i) in
      let* () =
        check
          (Subst.is_retraction_of rs.a_prime rs.sigma_prime)
          (Printf.sprintf "step %d: σ' is not a retraction of A'" i)
      in
      let* () =
        check
          (Atomset.equal rs.g (Subst.apply rs.rho ds.Chase.Derivation.instance))
          (Printf.sprintf "step %d: ρ_i(F_i) ≠ G_i" i)
      in
      let* () =
        check
          (Subst.is_injective_on
             (Atomset.terms ds.Chase.Derivation.instance)
             rs.rho)
          (Printf.sprintf "step %d: ρ_i not injective on terms(F_i)" i)
      in
      let* () =
        if i = 0 then Ok ()
        else
          check
            (Atomset.subset (Subst.apply rs.tau rsteps.(i - 1).g) rs.g)
            (Printf.sprintf "step %d: τ_i(G_{i-1}) ⊄ G_i" i)
      in
      loop (i + 1)
    end
  in
  let* () = loop 0 in
  (* Lemma 1(i) on prefixes: pushing the length-j prefix aggregation through
     τ_{j+1} lands inside the length-(j+1) prefix aggregation *)
  let prefix_of j = { r with steps_arr = Array.sub r.steps_arr 0 j; len = j } in
  let rec mono j =
    if j >= r.len then Ok ()
    else
      let a_j = aggregation (prefix_of j) in
      let a_j1 = aggregation (prefix_of (j + 1)) in
      let pushed = Subst.apply rsteps.(j).tau a_j in
      if Atomset.subset pushed a_j1 then mono (j + 1)
      else Error (Printf.sprintf "prefix aggregation not monotone at %d" j)
  in
  mono 1
