lib/homo/core.ml: Atom Atomset List Morphism Subst Syntax
