(* Tests for the interactive shell's command interpreter. *)

let run script =
  List.fold_left
    (fun (st, outs) line ->
      let st', out = Repl.exec st line in
      (st', out :: outs))
    (Repl.initial, []) script
  |> fun (st, outs) -> (st, List.rev outs)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub hay i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let kb_line = "kb p(a). [spawn] e(X,Y), p(Y) :- p(X). [loop] e(X,X) :- p(X)."

let test_load_and_step () =
  let _, outs = run [ kb_line; "step 2"; "show" ] in
  Alcotest.(check bool) "load reports" true
    (contains (List.nth outs 0) "1 facts, 2 rules");
  Alcotest.(check bool) "step reports size" true
    (contains (List.nth outs 1) "|F| = 2");
  Alcotest.(check bool) "show prints atoms" true
    (contains (List.nth outs 2) "p(a")

let test_run_to_fixpoint () =
  let _, outs = run [ kb_line; "run" ] in
  Alcotest.(check bool) "fixpoint" true
    (contains (List.nth outs 1) "fixpoint reached")

let test_variant_switch_resets () =
  let _, outs = run [ kb_line; "step 2"; "variant restricted"; "summary" ] in
  Alcotest.(check bool) "reset noted" true
    (contains (List.nth outs 2) "run reset");
  Alcotest.(check bool) "summary shows only the init row" true
    (contains (List.nth outs 3) "(init)")

let test_query () =
  let _, outs = run [ kb_line; "run"; "query e(U,U)" ] in
  Alcotest.(check bool) "entailed" true
    (contains (List.nth outs 2) "entailed")

let test_errors_are_messages () =
  let _, outs = run [ "step"; "kb this is ( not dlgp"; "frobnicate" ] in
  Alcotest.(check bool) "no kb message" true
    (contains (List.nth outs 0) "no knowledge base");
  Alcotest.(check bool) "parse error reported" true
    (contains (List.nth outs 1) "parse error");
  Alcotest.(check bool) "unknown command help" true
    (contains (List.nth outs 2) "unknown command")

let test_quit () =
  let st, _ = run [ "quit" ] in
  Alcotest.(check bool) "exit flag" true (Repl.wants_exit st)

let test_classify_and_robust () =
  let _, outs = run [ kb_line; "run"; "classify"; "robust" ] in
  Alcotest.(check bool) "classify prints flags" true
    (contains (List.nth outs 2) "guarded");
  Alcotest.(check bool) "robust invariants ok" true
    (contains (List.nth outs 3) "invariants: ok")

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "repl",
      [
        tc "load & step & show" test_load_and_step;
        tc "run to fixpoint" test_run_to_fixpoint;
        tc "variant switch resets" test_variant_switch_resets;
        tc "query" test_query;
        tc "errors are messages" test_errors_are_messages;
        tc "quit" test_quit;
        tc "classify & robust" test_classify_and_robust;
      ] );
  ]
