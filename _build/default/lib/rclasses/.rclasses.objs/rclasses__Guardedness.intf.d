lib/rclasses/guardedness.mli: Position Rule Syntax
