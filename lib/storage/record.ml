open Syntax

(* The typed payloads carried by WAL frames (DESIGN.md §16).  One record
   is one durable event: the chase journal (Begin/Start/Add/Retract/
   Round), the EGD chase's unifications (Merge), the snapshot-only full
   step form (Snap_step), and the serve daemon's session journal
   (Sess_op/Sess_chase/Sess_gen).  The codec below is total: [decode]
   answers a structured [Error] on any byte soup, never an exception —
   the totality laws live in test/test_props.ml next to the wire-codec
   ones. *)

type t =
  | Begin of {
      engine : string;
      kb_path : string option;
      kb_digest : string option;
      max_steps : int;
      max_atoms : int;
      term_counter : int;
      generation_counter : int;
    }
  | Start of { sigma : Subst.t }
  | Add of {
      index : int;
      pi_safe : Subst.t;
      sigma : Subst.t;
      added : Atom.t list;
    }
  | Retract of { index : int; sigma : Subst.t }
  | Merge of { sigma : Subst.t }
  | Round of {
      rounds : int;
      steps : int;
      snapshot_index : int;  (** -1 encodes "no discovery snapshot yet" *)
      term_counter : int;
      generation_counter : int;
    }
  | Snap_step of {
      index : int;
      pi_safe : Subst.t;
      sigma : Subst.t;
      pre : Atom.t list;
      inst : Atom.t list;
    }
  | Sess_op of string
  | Sess_chase of {
      session : string;
      variant : string;
      max_steps : int;
      max_atoms : int;
      outcome : string;
      chase_steps : int;
      final : Atom.t list;
    }
  | Sess_gen of { session : string; generation : int }

let tag = function
  | Begin _ -> 1
  | Start _ -> 2
  | Add _ -> 3
  | Retract _ -> 4
  | Merge _ -> 5
  | Round _ -> 6
  | Snap_step _ -> 7
  | Sess_op _ -> 8
  | Sess_chase _ -> 9
  | Sess_gen _ -> 10

let kind_name = function
  | Begin _ -> "begin"
  | Start _ -> "start"
  | Add _ -> "add"
  | Retract _ -> "retract"
  | Merge _ -> "merge"
  | Round _ -> "round"
  | Snap_step _ -> "snap-step"
  | Sess_op _ -> "sess-op"
  | Sess_chase _ -> "sess-chase"
  | Sess_gen _ -> "sess-gen"

(* ---------------------------------------------------------------- *)
(* encode *)

let w_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))

let w_int b n = Buffer.add_int64_le b (Int64.of_int n)

let w_str b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_opt_str b = function
  | None -> w_u8 b 0
  | Some s ->
      w_u8 b 1;
      w_str b s

let w_term b t =
  if Term.is_const t then begin
    w_u8 b 0;
    w_str b (Term.hint t)
  end
  else begin
    w_u8 b 1;
    w_int b (Term.rank t);
    w_str b (Term.hint t)
  end

let w_list b w xs =
  w_int b (List.length xs);
  List.iter (w b) xs

let w_atom b a =
  w_str b (Atom.pred a);
  w_list b w_term (Atom.args a)

let w_subst b s =
  w_list b
    (fun b (x, t) ->
      w_term b x;
      w_term b t)
    (Subst.to_list s)

let encode r =
  let b = Buffer.create 128 in
  w_u8 b (tag r);
  (match r with
  | Begin
      {
        engine;
        kb_path;
        kb_digest;
        max_steps;
        max_atoms;
        term_counter;
        generation_counter;
      } ->
      w_str b engine;
      w_opt_str b kb_path;
      w_opt_str b kb_digest;
      w_int b max_steps;
      w_int b max_atoms;
      w_int b term_counter;
      w_int b generation_counter
  | Start { sigma } -> w_subst b sigma
  | Add { index; pi_safe; sigma; added } ->
      w_int b index;
      w_subst b pi_safe;
      w_subst b sigma;
      w_list b w_atom added
  | Retract { index; sigma } ->
      w_int b index;
      w_subst b sigma
  | Merge { sigma } -> w_subst b sigma
  | Round { rounds; steps; snapshot_index; term_counter; generation_counter }
    ->
      w_int b rounds;
      w_int b steps;
      w_int b snapshot_index;
      w_int b term_counter;
      w_int b generation_counter
  | Snap_step { index; pi_safe; sigma; pre; inst } ->
      w_int b index;
      w_subst b pi_safe;
      w_subst b sigma;
      w_list b w_atom pre;
      w_list b w_atom inst
  | Sess_op s -> w_str b s
  | Sess_chase { session; variant; max_steps; max_atoms; outcome; chase_steps; final }
    ->
      w_str b session;
      w_str b variant;
      w_int b max_steps;
      w_int b max_atoms;
      w_str b outcome;
      w_int b chase_steps;
      w_list b w_atom final
  | Sess_gen { session; generation } ->
      w_str b session;
      w_int b generation);
  Buffer.contents b

(* ---------------------------------------------------------------- *)
(* decode: bounds-checked reader over the payload string.  Length and
   count fields are validated against the remaining bytes before any
   allocation, so a hostile length cannot force a giant [String.sub];
   variable ranks are range-guarded so byte soup cannot blow the global
   freshness counter to the moon. *)

exception Bad of string

type reader = { s : string; mutable pos : int }

let need r n = if r.pos + n > String.length r.s then raise (Bad "truncated")

let r_u8 r =
  need r 1;
  let c = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  c

let r_int r =
  need r 8;
  let v = ref 0L in
  for i = 7 downto 0 do
    v :=
      Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code r.s.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  (* reject payloads whose integers do not fit a 63-bit OCaml int: they
     cannot have been produced by [encode] *)
  if Int64.to_int !v |> Int64.of_int <> !v then raise (Bad "integer overflow");
  Int64.to_int !v

let r_len r =
  let n = r_int r in
  if n < 0 || n > String.length r.s - r.pos then raise (Bad "bad length");
  n

let r_str r =
  let n = r_len r in
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

let r_opt_str r =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (r_str r)
  | _ -> raise (Bad "bad option tag")

let max_rank = 1 lsl 40

let r_term r =
  match r_u8 r with
  | 0 -> Term.const (r_str r)
  | 1 ->
      let rank = r_int r in
      if rank < 0 || rank > max_rank then raise (Bad "bad variable rank");
      let hint = r_str r in
      Term.var_of_id ~hint rank
  | _ -> raise (Bad "bad term tag")

let r_list r elt =
  let n = r_len r in
  (* each element is at least one byte, so [r_len]'s remaining-bytes
     bound already prevents absurd counts *)
  List.init n (fun _ -> elt r)

let r_atom r =
  let pred = r_str r in
  let args = r_list r r_term in
  Atom.make pred args

let r_subst r =
  Subst.of_list
    (r_list r (fun r ->
         let x = r_term r in
         let t = r_term r in
         (x, t)))

let decode s =
  let r = { s; pos = 0 } in
  match
    let v =
      match r_u8 r with
      | 1 ->
          let engine = r_str r in
          let kb_path = r_opt_str r in
          let kb_digest = r_opt_str r in
          let max_steps = r_int r in
          let max_atoms = r_int r in
          let term_counter = r_int r in
          let generation_counter = r_int r in
          Begin
            {
              engine;
              kb_path;
              kb_digest;
              max_steps;
              max_atoms;
              term_counter;
              generation_counter;
            }
      | 2 -> Start { sigma = r_subst r }
      | 3 ->
          let index = r_int r in
          let pi_safe = r_subst r in
          let sigma = r_subst r in
          let added = r_list r r_atom in
          Add { index; pi_safe; sigma; added }
      | 4 ->
          let index = r_int r in
          let sigma = r_subst r in
          Retract { index; sigma }
      | 5 -> Merge { sigma = r_subst r }
      | 6 ->
          let rounds = r_int r in
          let steps = r_int r in
          let snapshot_index = r_int r in
          let term_counter = r_int r in
          let generation_counter = r_int r in
          Round { rounds; steps; snapshot_index; term_counter; generation_counter }
      | 7 ->
          let index = r_int r in
          let pi_safe = r_subst r in
          let sigma = r_subst r in
          let pre = r_list r r_atom in
          let inst = r_list r r_atom in
          Snap_step { index; pi_safe; sigma; pre; inst }
      | 8 -> Sess_op (r_str r)
      | 9 ->
          let session = r_str r in
          let variant = r_str r in
          let max_steps = r_int r in
          let max_atoms = r_int r in
          let outcome = r_str r in
          let chase_steps = r_int r in
          let final = r_list r r_atom in
          Sess_chase
            { session; variant; max_steps; max_atoms; outcome; chase_steps; final }
      | 10 ->
          let session = r_str r in
          let generation = r_int r in
          Sess_gen { session; generation }
      | t -> raise (Bad (Printf.sprintf "unknown record tag %d" t))
    in
    if r.pos <> String.length s then raise (Bad "trailing bytes");
    v
  with
  | v -> Ok v
  | exception Bad m -> Error m
  | exception Invalid_argument m -> Error m
  | exception Failure m -> Error m

(* ---------------------------------------------------------------- *)

let equal_atoms a b = List.equal Atom.equal a b

let equal a b =
  match (a, b) with
  | Begin a, Begin b ->
      String.equal a.engine b.engine
      && Option.equal String.equal a.kb_path b.kb_path
      && Option.equal String.equal a.kb_digest b.kb_digest
      && a.max_steps = b.max_steps && a.max_atoms = b.max_atoms
      && a.term_counter = b.term_counter
      && a.generation_counter = b.generation_counter
  | Start a, Start b -> Subst.equal a.sigma b.sigma
  | Add a, Add b ->
      a.index = b.index
      && Subst.equal a.pi_safe b.pi_safe
      && Subst.equal a.sigma b.sigma
      && equal_atoms a.added b.added
  | Retract a, Retract b -> a.index = b.index && Subst.equal a.sigma b.sigma
  | Merge a, Merge b -> Subst.equal a.sigma b.sigma
  | Round a, Round b ->
      a.rounds = b.rounds && a.steps = b.steps
      && a.snapshot_index = b.snapshot_index
      && a.term_counter = b.term_counter
      && a.generation_counter = b.generation_counter
  | Snap_step a, Snap_step b ->
      a.index = b.index
      && Subst.equal a.pi_safe b.pi_safe
      && Subst.equal a.sigma b.sigma
      && equal_atoms a.pre b.pre && equal_atoms a.inst b.inst
  | Sess_op a, Sess_op b -> String.equal a b
  | Sess_chase a, Sess_chase b ->
      String.equal a.session b.session
      && String.equal a.variant b.variant
      && a.max_steps = b.max_steps && a.max_atoms = b.max_atoms
      && String.equal a.outcome b.outcome
      && a.chase_steps = b.chase_steps
      && equal_atoms a.final b.final
  | Sess_gen a, Sess_gen b ->
      String.equal a.session b.session && a.generation = b.generation
  | _ -> false

let pp ppf r = Fmt.string ppf (kind_name r)
