(** Typed trace-event stream for the chase engines (DESIGN.md §8).

    Instrumented code emits {!event} values into the current {!sink}.
    The default sink is {!Null}, and every emission site is written as

    {[ if Trace.enabled () then Trace.emit (Trigger_applied { ... }) ]}

    so with the null sink no event value is ever constructed — the
    overhead discipline is a branch per site, no allocation.

    If the environment variable [CORECHASE_TRACE] is set at startup, the
    initial sink is a JSONL sink appending to that file (used by CI to
    smoke-test the sink under the whole test suite). *)

(** The event taxonomy.  [engine] identifies the emitting engine
    ([restricted], [core], [core-round], [frugal], [stream], [egd],
    [oblivious], [skolem], or [chase] for engine-agnostic sites); [step]
    is the derivation step index; [size] the instance cardinality after
    the event. *)
type event =
  | Round_start of { engine : string; round : int; size : int }
      (** a saturation round begins on an instance of [size] atoms *)
  | Trigger_found of { engine : string; found : int; size : int }
      (** one discovery sweep returned [found] active triggers *)
  | Trigger_applied of {
      engine : string;
      step : int;
      rule : string;
      produced : int;
      size : int;
    }  (** a trigger fired: [produced] head atoms added *)
  | Retract of { engine : string; step : int; removed : int; size : int }
      (** a core/frugal simplification retracted [removed] atoms *)
  | Egd_merge of { engine : string; step : int; size : int }
      (** an EGD unified two terms *)
  | Hom_backtrack of { backtracks : int; src_atoms : int; tgt_atoms : int }
      (** one homomorphism search that dead-ended [backtracks] times *)
  | Core_scoped_fold of { candidates : int; folded : bool; size : int }
      (** one delta-scoped fold search over [candidates] candidate
          variables on an instance of [size] atoms; [folded] tells
          whether a fold fired (else the instance was certified a core
          without a full search — see DESIGN.md §9) *)
  | Tw_decomposed of { vertices : int; width : int; exact : bool }
      (** a tree decomposition / width bound was computed *)
  | Par_fanout of { site : string; tasks : int; jobs : int }
      (** the [Par] pool fanned [tasks] tasks out across [jobs] domains
          at the named fan-out site (DESIGN.md §10); emitted only when a
          batch actually runs in parallel, so [--jobs 1] streams are
          byte-identical to pre-pool runs *)
  | Batch_task of { site : string; index : int; slot : int; ms : int }
      (** a [Par.Batch] task finished: task [index] (submission order)
          ran to completion on pool slot [slot] in [ms] milliseconds.
          Emitted by the batch caller after the barrier, in submission
          order, so the event {e stream} is deterministic even though
          [slot]/[ms] record scheduling facts (DESIGN.md §14) *)
  | Deadline_hit of { engine : string; step : int }
      (** the run's wall-clock deadline fired at derivation step [step];
          the engine stopped cooperatively and returned its last
          consistent instance (DESIGN.md §11) *)
  | Checkpoint_written of { engine : string; step : int; path : string }
      (** a resumable checkpoint covering the first [step] derivation
          steps was persisted to [path] (DESIGN.md §11) *)
  | Session_event of { action : string; session : string; generation : int }
      (** a server KB session changed state (DESIGN.md §15): [action] is
          [opened], [loaded], [chased], [analyzed] or [closed];
          [generation] is the session's snapshot generation after the
          event (0 until a first chase completes) *)
  | Conn_event of { action : string; conn : int }
      (** a server connection changed state (DESIGN.md §15): [action] is
          [accepted], [closed], [protocol-error] or [accept-failed];
          [conn] is the per-process connection id ([-1] for
          [accept-failed], which has no connection yet) *)
  | Wal_rotate of { segment : string; lsn : int }
      (** the WAL rotated to a fresh segment file starting at [lsn]
          (after a snapshot; DESIGN.md §16) *)
  | Snapshot_written of { path : string; lsn : int; records : int }
      (** a binary snapshot covering every record up to [lsn] was
          written atomically (tmp + rename) to [path] *)
  | Recovery_replayed of { dir : string; records : int; torn : bool }
      (** a WAL directory was recovered: [records] durable records
          replayed; [torn] reports whether a torn final record (crash
          mid-write) was truncated on open *)

type sink =
  | Null  (** drop everything; {!enabled} is [false] *)
  | Console of Format.formatter  (** one pretty line per event *)
  | Jsonl of out_channel  (** one JSON object per line *)
  | Custom of (event -> unit)  (** callback (tests, custom collectors) *)

val set_sink : sink -> unit

val sink : unit -> sink

val enabled : unit -> bool
(** [true] iff the current sink is not {!Null} {e and} the caller is the
    main domain ([Metrics.slot () = 0]) {e and} the calling domain is
    not muted ({!with_muted}).  Emission sites must check this before
    constructing an event.  Pool workers always read [false]: their
    emissions would interleave schedule-dependently, so the trace
    stream stays a main-domain artefact (DESIGN.md §10). *)

val with_muted : (unit -> 'a) -> 'a
(** Run the thunk with emission muted on the calling domain.  Used by
    [Par.Batch] around task bodies — even the task placed on slot 0 —
    because which engine events a task would emit interleaves
    schedule-dependently; the batch layer emits deterministic
    {!event.Batch_task} summaries after its barrier instead
    (DESIGN.md §14).  The previous mute state is restored on exit. *)

val muted : unit -> bool
(** Whether emission is muted on the calling domain. *)

val emit : event -> unit
(** Deliver the event to the current sink (drops it on {!Null} and on
    worker domains). *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** Run the thunk with the given sink, restoring the previous sink
    afterwards (also on exceptions). *)

val with_jsonl_file : string -> (unit -> 'a) -> 'a
(** {!with_sink} on a JSONL sink writing (truncating) the named file;
    the channel is flushed and closed afterwards. *)

val events_emitted : unit -> int
(** Number of events delivered to non-null sinks since startup (or the
    last {!reset_emitted}).  The null-sink discipline is testable as:
    run under {!Null} and observe this stays 0. *)

val reset_emitted : unit -> unit

(** {1 Serialisation} *)

val pp_event : Format.formatter -> event -> unit

val to_json : event -> string
(** One-line JSON object, e.g.
    [{"ev":"trigger_applied","engine":"core","step":3,"rule":"Rh1","produced":4,"size":12}]. *)

val of_json_line : string -> event option
(** Parse a line produced by {!to_json}; [None] on anything else.
    Round-trip law: [of_json_line (to_json e) = Some e]. *)
