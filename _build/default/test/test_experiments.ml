(* Smoke tests for the experiment drivers: the fast ones run at scale 1
   inside the test suite; the full set runs in bench/main.exe. *)

let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let test_t1 () =
  Alcotest.(check bool) "T1 passes" true (Experiments.exp_t1 ~scale:1 null_ppf)

let test_f3 () =
  Alcotest.(check bool) "F3 passes" true (Experiments.exp_f3 ~scale:1 null_ppf)

let test_all_registered () =
  Alcotest.(check (list string)) "experiment ids"
    [ "F1"; "F2"; "F3"; "F4"; "F5"; "T1" ]
    (List.map fst Experiments.all)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "experiments.smoke",
      [
        tc "T1 (Table 1 replay)" test_t1;
        tc "F3 (elevator KB)" test_f3;
        tc "registry" test_all_registered;
      ] );
  ]
