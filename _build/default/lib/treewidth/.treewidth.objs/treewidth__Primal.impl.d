lib/treewidth/primal.ml: Array Atom Atomset Graph Hashtbl List Syntax Term
