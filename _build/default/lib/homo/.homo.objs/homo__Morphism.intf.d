lib/homo/morphism.mli: Atomset Subst Syntax
