(* Tests for lib/server (DESIGN.md §15): the wire-protocol codec (unit
   round trips, typed rejection of malformed bytes, fuzz), the request
   grammar's parse∘print law, the session lifecycle driven through the
   in-process loopback client (byte-split equivalence, protocol
   violations, shutdown), the differential law — session answers are
   byte-identical to the batch evaluation path, across engines × jobs —
   fault injection mid-chase, and the graceful-drain path over a real
   Unix socket.  Only the last test touches a socket; everything else
   is pure logic against {!Server.Loopback}. *)

open Syntax
module P = Server.Protocol
module L = Server.Loopback
module Q = Server.Queryeval
module E = Corechase.Entailment

let tc name f = Alcotest.test_case name `Quick f
let fr kind payload = { P.kind; payload }

let frame_t : P.frame Alcotest.testable =
  Alcotest.testable
    (fun ppf f -> Fmt.pf ppf "%s %S" (P.kind_name f.P.kind) f.P.payload)
    ( = )

let request_t : P.request Alcotest.testable =
  Alcotest.testable (fun ppf r -> Fmt.string ppf (P.print_request r)) ( = )

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Codec units                                                         *)

let all_kinds =
  [ P.K_hello; P.K_req; P.K_ok; P.K_err; P.K_data; P.K_event; P.K_bye ]

let codec_roundtrip () =
  List.iter
    (fun kind ->
      List.iter
        (fun payload ->
          let f = fr kind payload in
          let s = P.encode f in
          match P.decode s with
          | Ok (g, n) ->
              Alcotest.check frame_t "round trip" f g;
              Alcotest.(check int) "consumed" (String.length s) n
          | Error e -> Alcotest.failf "decode: %a" P.pp_error e)
        [ ""; "x"; "two\nlines\n"; "bin \x00\xff bytes"; String.make 4096 'a' ])
    all_kinds

let codec_kind_names () =
  List.iter
    (fun k ->
      match P.kind_of_name (P.kind_name k) with
      | Some k' -> Alcotest.(check bool) (P.kind_name k) true (k = k')
      | None -> Alcotest.failf "kind %s does not round trip" (P.kind_name k))
    all_kinds;
  Alcotest.(check bool) "unknown kind" true (P.kind_of_name "nope" = None)

let codec_hello () =
  match P.decode (P.encode P.hello_frame) with
  | Ok (f, _) -> Alcotest.(check bool) "hello" true (f.P.kind = P.K_hello)
  | Error e -> Alcotest.failf "hello: %a" P.pp_error e

(* each typed error is reachable, and [Truncated] exactly on strict
   prefixes of well-formed frames *)
let codec_errors () =
  let expect name input check_err =
    match P.decode input with
    | Ok _ -> Alcotest.failf "%s: unexpectedly decoded" name
    | Error e ->
        if not (check_err e) then
          Alcotest.failf "%s: wrong error %a" name P.pp_error e
  in
  expect "bad magic" "borechase/1 ok 0\n\n" (function
    | P.Bad_magic _ -> true
    | _ -> false);
  expect "bad magic mid" "corechasX/1 ok 0\n\n" (function
    | P.Bad_magic _ -> true
    | _ -> false);
  expect "bad version" "corechase/9 ok 0\n\n" (function
    | P.Bad_version _ -> true
    | _ -> false);
  expect "unparseable version" "corechase/x ok 0\n\n" (function
    | P.Bad_version _ -> true
    | _ -> false);
  expect "bad kind" "corechase/1 frob 0\n\n" (function
    | P.Bad_kind _ -> true
    | _ -> false);
  expect "bad length" "corechase/1 ok abc\n\n" (function
    | P.Bad_length _ -> true
    | _ -> false);
  expect "oversized"
    (Fmt.str "corechase/1 ok %d\n" (P.max_payload + 1))
    (function P.Oversized n -> n = P.max_payload + 1 | _ -> false);
  expect "bad terminator" "corechase/1 ok 2\nabX" (function
    | P.Bad_terminator -> true
    | _ -> false);
  (* every strict prefix of a well-formed frame is Truncated *)
  List.iter
    (fun f ->
      let s = P.encode f in
      for i = 0 to String.length s - 1 do
        expect
          (Fmt.str "prefix %d" i)
          (String.sub s 0 i)
          (function P.Truncated -> true | _ -> false)
      done)
    [ fr P.K_ok "pong"; fr P.K_req "ENTAIL s\n? :- p(a)."; fr P.K_bye "" ]

let codec_encode_oversized () =
  match P.encode (fr P.K_data (String.make (P.max_payload + 1) 'x')) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encode accepted an oversized payload"

let codec_decode_all () =
  let fs = [ fr P.K_hello "hi"; fr P.K_data "a\nb"; fr P.K_ok "done" ] in
  let whole = String.concat "" (List.map P.encode fs) in
  (match P.decode_all whole with
  | Ok (gs, n) ->
      Alcotest.(check (list frame_t)) "all frames" fs gs;
      Alcotest.(check int) "all consumed" (String.length whole) n
  | Error (e, _) -> Alcotest.failf "decode_all: %a" P.pp_error e);
  (* a trailing partial frame is left unconsumed, not an error *)
  let partial = whole ^ "corechase/1 ok" in
  (match P.decode_all partial with
  | Ok (gs, n) ->
      Alcotest.(check int) "still three" 3 (List.length gs);
      Alcotest.(check int) "partial unconsumed" (String.length whole) n
  | Error (e, _) -> Alcotest.failf "partial: %a" P.pp_error e);
  (* a malformed frame reports the bytes consumed before it *)
  let broken = P.encode (fr P.K_ok "fine") ^ "garbage" in
  match P.decode_all broken with
  | Ok _ -> Alcotest.fail "decode_all accepted garbage"
  | Error (_, n) ->
      Alcotest.(check int) "consumed before error"
        (String.length (P.encode (fr P.K_ok "fine")))
        n

let has_suffix ~suffix s =
  let n = String.length suffix and m = String.length s in
  m >= n && String.sub s (m - n) n = suffix

let codec_clamp () =
  let small = fr P.K_ok "fine" in
  Alcotest.(check (list frame_t)) "small untouched" [ small ] (P.clamp small);
  let big = String.make (P.max_payload + 5) 'd' in
  let fs = P.clamp (fr P.K_data big) in
  Alcotest.(check int) "data splits" 2 (List.length fs);
  Alcotest.(check string) "no data bytes lost" big
    (String.concat "" (List.map (fun f -> f.P.payload) fs));
  List.iter (fun f -> ignore (P.encode f)) fs;
  match P.clamp (fr P.K_err big) with
  | [ f ] ->
      Alcotest.(check bool) "err kind kept" true (f.P.kind = P.K_err);
      Alcotest.(check bool) "fits" true
        (String.length f.P.payload <= P.max_payload);
      Alcotest.(check bool) "marked" true
        (has_suffix ~suffix:" [truncated]" f.P.payload);
      ignore (P.encode f)
  | fs -> Alcotest.failf "err clamp: %d frames" (List.length fs)

let codec_data_frames () =
  let short = P.data_frames "hello" in
  Alcotest.(check (list frame_t)) "short" [ fr P.K_data "hello" ] short;
  let big = String.make (P.max_payload + 5) 'z' in
  let fs = P.data_frames big in
  Alcotest.(check int) "split in two" 2 (List.length fs);
  Alcotest.(check string) "no bytes lost" big
    (String.concat "" (List.map (fun f -> f.P.payload) fs));
  List.iter
    (fun f ->
      Alcotest.(check bool) "each fits" true
        (String.length f.P.payload <= P.max_payload))
    fs

let all_err_codes =
  [
    P.Bad_request; P.Unknown_session; P.Session_exists; P.No_kb; P.Busy;
    P.Chase_stopped; P.Io_error; P.Shutting_down; P.Protocol_violation;
  ]

let codec_err_frames () =
  List.iter
    (fun c ->
      let name = P.err_code_name c in
      (match P.err_code_of_name name with
      | Some c' -> Alcotest.(check bool) name true (c = c')
      | None -> Alcotest.failf "err code %s does not round trip" name);
      let f = P.err_frame c "something went wrong: badly" in
      Alcotest.(check bool) "err kind" true (f.P.kind = P.K_err);
      match P.parse_err f.P.payload with
      | Some (c', msg) ->
          Alcotest.(check bool) "code" true (c = c');
          Alcotest.(check string) "msg" "something went wrong: badly" msg
      | None -> Alcotest.failf "parse_err failed on %S" f.P.payload)
    all_err_codes;
  Alcotest.(check bool) "unknown code" true (P.parse_err "nope: hi" = None)

(* ------------------------------------------------------------------ *)
(* Request grammar                                                     *)

let request_fixtures =
  [
    P.Open "s1";
    P.Load { session = "kb"; source = P.From_path "/tmp/family.dlgp" };
    P.Load { session = "kb"; source = P.From_text "p(a).\nq(X) :- p(X).\n" };
    P.Chase { session = "kb"; variant = Chase.Core; steps = 500; atoms = 20000 };
    P.Chase { session = "x.y-z_2"; variant = Chase.Restricted; steps = 3; atoms = 7 };
    P.Chase { session = "kb"; variant = Chase.Oblivious; steps = 1; atoms = 1 };
    P.Entail { session = "kb"; query = "? :- p(a)." };
    P.Entail { session = "kb"; query = "?(X) :- q(X).\n? :- p(a)." };
    P.Analyze "kb";
    P.Stats "kb";
    P.Close "kb";
    P.Ping;
    P.Metrics;
    P.Sessions;
    P.Shutdown;
  ]

let request_roundtrip () =
  List.iter
    (fun r ->
      match P.parse_request (P.print_request r) with
      | Ok r' -> Alcotest.check request_t (P.print_request r) r r'
      | Error e -> Alcotest.failf "%s: %s" (P.print_request r) e)
    request_fixtures

let request_defaults_and_case () =
  (match P.parse_request "chase kb" with
  | Ok (P.Chase { variant = Chase.Core; steps = 500; atoms = 20000; _ }) -> ()
  | Ok r -> Alcotest.failf "wrong defaults: %s" (P.print_request r)
  | Error e -> Alcotest.fail e);
  match P.parse_request "ping" with
  | Ok P.Ping -> ()
  | _ -> Alcotest.fail "lowercase ping rejected"

let request_rejections () =
  let rejected s =
    match P.parse_request s with
    | Error _ -> ()
    | Ok r ->
        Alcotest.failf "%S unexpectedly parsed as %s" s (P.print_request r)
  in
  List.iter rejected
    [
      "";
      "FROB x";
      "OPEN";
      "OPEN two words";
      "OPEN bad!name";
      "PING extra";
      "CHASE kb steps=0";
      "CHASE kb steps=-3";
      "CHASE kb steps=many";
      "CHASE kb warp=9";
      "CHASE kb variant=warp";
      "CHASE kb stray";
      "CHASE kb\nbody";
      "LOAD kb";
      "LOAD kb path";
      "LOAD kb inline";
      "LOAD kb inline trailing\np(a).";
      "LOAD kb ftp server";
      "ENTAIL kb";
      "ENTAIL kb\n   ";
      "ENTAIL\n? :- p(a).";
    ]

let session_names () =
  List.iter
    (fun (n, expect) ->
      Alcotest.(check bool) n expect (P.session_name_ok n))
    [
      ("a", true); ("A-b_c.9", true); ("", false); ("a b", false);
      ("a/b", false); ("caf\xc3\xa9", false);
    ]

(* ------------------------------------------------------------------ *)
(* Fuzz: decode never raises, whatever the bytes                       *)

let fuzz_random_bytes () =
  let rng = Random.State.make [| 0x5eed; Hashtbl.hash "server.fuzz" |] in
  for _ = 1 to 1000 do
    let n = Random.State.int rng 64 in
    let s = String.init n (fun _ -> Char.chr (Random.State.int rng 256)) in
    match P.decode s with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "decode raised %s on %S" (Printexc.to_string e) s
  done

let fuzz_mutated_frames () =
  let rng = Random.State.make [| 0x5eed; Hashtbl.hash "server.mutate" |] in
  let base = P.encode (fr P.K_req "CHASE kb variant=core steps=9 atoms=99") in
  for _ = 1 to 1000 do
    let b = Bytes.of_string base in
    let i = Random.State.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Random.State.int rng 256));
    let s = Bytes.to_string b in
    match P.decode s with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "decode raised %s on %S" (Printexc.to_string e) s
  done;
  (* raw loopback ingestion of mutated bytes never raises either *)
  for _ = 1 to 100 do
    let b = Bytes.of_string base in
    let i = Random.State.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Random.State.int rng 256));
    let l = L.create () in
    ignore (L.raw l (Bytes.to_string b))
  done

(* ------------------------------------------------------------------ *)
(* Loopback lifecycle                                                  *)

(* a terminating (datalog) KB: reach is the transitive closure *)
let chain_kb =
  "p(a).\n\
   edge(a, b).\n\
   edge(b, c).\n\
   [r-base] reach(X, Y) :- edge(X, Y).\n\
   [r-step] reach(X, Z) :- reach(X, Y), edge(Y, Z).\n"

(* a non-terminating KB (every person gains a fresh parent) *)
let family_kb =
  "parent(alice, bob).\n\
   parent(bob, carol).\n\
   [anc-base] ancestor(X, Y) :- parent(X, Y).\n\
   [anc-rec] ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).\n\
   [people] person(X) :- parent(X, Y).\n\
   [progenitor] parent(Z, X) :- person(X).\n"

(* a diverging chain: one fresh atom per round, forever *)
let diverge_kb = "r(a, b).\n[chain] r(Y, Z) :- r(X, Y).\n"

let req l s =
  match P.parse_request s with
  | Ok r -> L.request l r
  | Error e -> Alcotest.failf "parse_request %S: %s" s e

let final frames =
  match List.rev frames with
  | f :: _ -> f
  | [] -> Alcotest.fail "empty response"

let data_lines frames =
  List.filter_map
    (fun f -> if f.P.kind = P.K_data then Some f.P.payload else None)
    frames

let expect_ok name frames =
  match final frames with
  | { P.kind = P.K_ok; payload } -> payload
  | { P.kind = P.K_err; payload } -> Alcotest.failf "%s: err %s" name payload
  | f -> Alcotest.failf "%s: final %s" name (P.kind_name f.P.kind)

let expect_err name code frames =
  match final frames with
  | { P.kind = P.K_err; payload } -> (
      match P.parse_err payload with
      | Some (c, msg) when c = code -> msg
      | Some (c, _) ->
          Alcotest.failf "%s: expected %s, got %s" name (P.err_code_name code)
            (P.err_code_name c)
      | None -> Alcotest.failf "%s: unparseable err %S" name payload)
  | f -> Alcotest.failf "%s: final %s not err" name (P.kind_name f.P.kind)

let loopback_lifecycle () =
  let l = L.create () in
  Alcotest.(check bool) "greeting" true ((L.greeting l).P.kind = P.K_hello);
  Alcotest.(check string) "ping" "pong" (expect_ok "ping" (req l "PING"));
  Alcotest.(check string) "open" "opened s" (expect_ok "open" (req l "OPEN s"));
  ignore (expect_err "reopen" P.Session_exists (req l "OPEN s"));
  ignore (expect_err "no kb yet" P.No_kb (req l "ENTAIL s\n? :- p(a)."));
  ignore (expect_err "no kb to chase" P.No_kb (req l "CHASE s"));
  let loaded = expect_ok "load" (req l ("LOAD s inline\n" ^ chain_kb)) in
  Alcotest.(check bool) "load summary" true
    (contains ~sub:"loaded s: 3 facts, 2 rules" loaded);
  ignore
    (expect_err "entail before chase" P.No_kb (req l "ENTAIL s\n? :- p(a)."));
  let chase = req l "CHASE s variant=core steps=100 atoms=20000" in
  let ok = expect_ok "chase" chase in
  Alcotest.(check bool) "chase generation" true
    (contains ~sub:"chased s generation 1: fixpoint" ok);
  Alcotest.(check bool) "round events streamed" true
    (List.exists (fun f -> f.P.kind = P.K_event) chase);
  (* entailed / not-entailed / answers, all against the one snapshot *)
  Alcotest.(check string) "entailed" "ok"
    (expect_ok "entail yes" (req l "ENTAIL s\n? :- reach(a, c)."));
  Alcotest.(check string) "not entailed" "not-entailed"
    (expect_ok "entail no" (req l "ENTAIL s\n? :- reach(c, a)."));
  let ans = req l "ENTAIL s\n?(X) :- reach(a, X)." in
  Alcotest.(check string) "answers severity" "ok" (expect_ok "answers" ans);
  (match data_lines ans with
  | [ line ] ->
      Alcotest.(check bool) "two certain answers" true
        (contains ~sub:"2 certain answer(s): (b) (c)" line)
  | ls -> Alcotest.failf "answers: %d data lines" (List.length ls));
  ignore
    (expect_err "bad query" P.Bad_request (req l "ENTAIL s\nnot dlgp ((("));
  ignore
    (expect_err "no query" P.Bad_request (req l "ENTAIL s\np(a)."));
  (* analyze / stats / sessions *)
  let an = req l "ANALYZE s" in
  ignore (expect_ok "analyze" an);
  Alcotest.(check bool) "analyze routes" true
    (List.exists (contains ~sub:"route:") (data_lines an));
  let st = req l "STATS s" in
  ignore (expect_ok "stats" st);
  Alcotest.(check bool) "stats generation" true
    (List.exists (contains ~sub:"generation: 1") (data_lines st));
  let ss = req l "SESSIONS" in
  Alcotest.(check string) "one session" "1 session(s)"
    (expect_ok "sessions" ss);
  Alcotest.(check bool) "sessions list" true
    (List.exists (contains ~sub:"s generation=1") (data_lines ss));
  (* a second chase stamps generation 2 *)
  let ok2 = expect_ok "rechase" (req l "CHASE s steps=100") in
  Alcotest.(check bool) "generation 2" true
    (contains ~sub:"generation 2" ok2);
  (* a reload invalidates the snapshot *)
  ignore (expect_ok "reload" (req l ("LOAD s inline\n" ^ chain_kb)));
  ignore
    (expect_err "snapshot gone" P.No_kb (req l "ENTAIL s\n? :- p(a)."));
  Alcotest.(check string) "close" "closed s" (expect_ok "close" (req l "CLOSE s"));
  ignore (expect_err "gone" P.Unknown_session (req l "STATS s"));
  ignore (expect_err "load gone" P.Unknown_session (req l "LOAD s path x"));
  ignore (expect_ok "metrics" (req l "METRICS"))

let loopback_load_path_missing () =
  let l = L.create () in
  ignore (req l "OPEN s");
  ignore
    (expect_err "missing file" P.Io_error
       (req l "LOAD s path /nonexistent/kb.dlgp"))

(* the byte-level machine answers identically however the input is
   split — one call with the whole script vs one call per byte *)
let raw_script =
  String.concat ""
    (List.map P.encode
       [
         fr P.K_req "PING";
         fr P.K_req "OPEN s";
         fr P.K_req ("LOAD s inline\n" ^ chain_kb);
         fr P.K_req "CHASE s variant=restricted steps=50 atoms=1000";
         fr P.K_req "ENTAIL s\n? :- reach(a, c).";
         fr P.K_req "SHUTDOWN";
       ])

let raw_byte_split_equivalence () =
  let whole =
    let l = L.create () in
    L.raw l raw_script
  in
  let split =
    let l = L.create () in
    let b = Buffer.create 1024 in
    String.iter
      (fun c -> Buffer.add_string b (L.raw l (String.make 1 c)))
      raw_script;
    Buffer.contents b
  in
  Alcotest.(check string) "byte-split equivalence" whole split;
  (* the whole-script output is itself well-formed frames ending in bye *)
  match P.decode_all whole with
  | Ok (fs, n) ->
      Alcotest.(check int) "output fully framed" (String.length whole) n;
      (match fs with
      | { P.kind = P.K_hello; _ } :: _ -> ()
      | _ -> Alcotest.fail "no greeting first");
      (match final fs with
      | { P.kind = P.K_bye; _ } -> ()
      | f -> Alcotest.failf "no bye last: %s" (P.kind_name f.P.kind))
  | Error (e, _) -> Alcotest.failf "output malformed: %a" P.pp_error e

let raw_violation_closes () =
  let l = L.create () in
  let out = L.raw l "garbage bytes, no magic\n" in
  (match P.decode_all out with
  | Ok (fs, _) ->
      let kinds = List.map (fun f -> f.P.kind) fs in
      Alcotest.(check bool) "hello, err, bye" true
        (kinds = [ P.K_hello; P.K_err; P.K_bye ]);
      List.iter
        (fun f ->
          if f.P.kind = P.K_err then
            match P.parse_err f.P.payload with
            | Some (P.Protocol_violation, _) -> ()
            | _ -> Alcotest.failf "not protocol-error: %S" f.P.payload)
        fs
  | Error (e, _) -> Alcotest.failf "close-out malformed: %a" P.pp_error e);
  Alcotest.(check bool) "closed" true (L.closed l);
  Alcotest.(check string) "input after close-out ignored" ""
    (L.raw l (P.encode (fr P.K_req "PING")))

let raw_non_req_kind_violates () =
  let l = L.create () in
  let out = L.raw l (P.encode (fr P.K_data "client cannot send data")) in
  Alcotest.(check bool) "closed on non-req" true (L.closed l);
  Alcotest.(check bool) "err in close-out" true
    (contains ~sub:"protocol-error" out)

let raw_parse_error_keeps_connection () =
  let l = L.create () in
  let out = L.raw l (P.encode (fr P.K_req "FROB x")) in
  Alcotest.(check bool) "bad-request answered" true
    (contains ~sub:"bad-request" out);
  Alcotest.(check bool) "still open" false (L.closed l);
  let out2 = L.raw l (P.encode (fr P.K_req "PING")) in
  Alcotest.(check bool) "still answering" true (contains ~sub:"pong" out2)

(* an oversized rendered response used to raise [Invalid_argument]
   inside [encode] on the server's push path; now [data] payloads split
   across frames and single-frame kinds truncate in place *)
let raw_oversized_responses_split () =
  let l = L.create () in
  (* a session name just long enough that "opened <name>" and the
     SESSIONS listing both exceed max_payload *)
  let name = String.make (P.max_payload - 5) 'n' in
  let out = L.raw l (P.encode (fr P.K_req ("OPEN " ^ name))) in
  (match P.decode_all out with
  | Ok (fs, _) -> (
      match final fs with
      | { P.kind = P.K_ok; payload } ->
          Alcotest.(check bool) "ok truncated in place" true
            (String.length payload <= P.max_payload
            && has_suffix ~suffix:" [truncated]" payload)
      | f -> Alcotest.failf "open final: %s" (P.kind_name f.P.kind))
  | Error (e, _) -> Alcotest.failf "open response malformed: %a" P.pp_error e);
  let out2 = L.raw l (P.encode (fr P.K_req "SESSIONS")) in
  match P.decode_all out2 with
  | Ok (fs, _) ->
      let datas =
        List.filter_map
          (fun f -> if f.P.kind = P.K_data then Some f.P.payload else None)
          fs
      in
      Alcotest.(check bool) "listing split across data frames" true
        (List.length datas >= 2);
      Alcotest.(check bool) "no listing bytes lost" true
        (contains ~sub:name (String.concat "" datas));
      (match final fs with
      | { P.kind = P.K_ok; _ } -> ()
      | f -> Alcotest.failf "sessions final: %s" (P.kind_name f.P.kind))
  | Error (e, _) ->
      Alcotest.failf "sessions response malformed: %a" P.pp_error e

let raw_shutdown_says_bye () =
  let l = L.create () in
  let out = L.raw l (P.encode (fr P.K_req "SHUTDOWN")) in
  Alcotest.(check bool) "ok then bye" true
    (contains ~sub:"shutting down" out);
  Alcotest.(check bool) "closed" true (L.closed l)

(* ------------------------------------------------------------------ *)
(* Differential: session answers ≡ batch evaluation, byte for byte     *)

let budget = { Chase.Variants.max_steps = 100; max_atoms = 20_000 }

(* what the batch CLI prints for this ENTAIL body: same renderer
   (Queryeval), fresh end-to-end evaluation instead of a snapshot *)
let batch_lines ~variant kb qtext =
  match Dlgp.parse_string qtext with
  | Error e -> Alcotest.failf "query fixture: %a" Dlgp.pp_error e
  | Ok qdoc ->
      let cl =
        match qdoc.Dlgp.constraints with
        | [] -> []
        | constraints ->
            [
              fst
                (Q.constraints_line (E.inconsistent ~budget ~constraints kb));
            ]
      in
      cl
      @ List.map
          (fun q ->
            if Kb.Query.is_boolean q then
              fst (Q.verdict_line q (E.decide ~variant ~budget kb q))
            else
              fst (Q.answers_line q (E.certain_answers ~variant ~budget kb q)))
          qdoc.Dlgp.queries

let differential_queries =
  [
    (* terminating KB: entailed, refuted, complete answers, multi-query *)
    (chain_kb, "? :- reach(a, c).");
    (chain_kb, "? :- reach(c, a).");
    (chain_kb, "?(X) :- reach(a, X).");
    (chain_kb, "? :- p(a).\n?(Y) :- edge(a, Y).");
    (chain_kb, "! :- p(X).\n? :- reach(a, b).");
    (* diverging KB: budget-stopped verdicts and sound answers *)
    (family_kb, "?(X) :- ancestor(alice, X).");
    (family_kb, "? :- ancestor(alice, carol).");
    (family_kb, "? :- ancestor(carol, alice).");
    (family_kb, "! :- parent(X, X).\n? :- ancestor(alice, bob).");
  ]

let differential ~vname ~variant ~jobs () =
  Corechase.Par.with_jobs jobs @@ fun () ->
  let l = L.create () in
  ignore (expect_ok "open" (req l "OPEN d"));
  List.iter
    (fun (kb_text, qtext) ->
      ignore (expect_ok "load" (req l ("LOAD d inline\n" ^ kb_text)));
      ignore
        (expect_ok "chase"
           (req l (Fmt.str "CHASE d variant=%s steps=100 atoms=20000" vname)));
      let frames = req l ("ENTAIL d\n" ^ qtext) in
      (match final frames with
      | { P.kind = P.K_ok; _ } -> ()
      | f -> Alcotest.failf "entail final: %s" (P.kind_name f.P.kind));
      let kb =
        match Dlgp.parse_string kb_text with
        | Ok doc -> Dlgp.kb_of_document doc
        | Error e -> Alcotest.failf "kb fixture: %a" Dlgp.pp_error e
      in
      Alcotest.(check (list string))
        (Fmt.str "%s jobs=%d %S" vname jobs qtext)
        (batch_lines ~variant kb qtext)
        (data_lines frames))
    differential_queries

(* severity of the ok payload matches the worst line, i.e. the CLI exit
   code the same evaluation would produce *)
let differential_severity () =
  let l = L.create () in
  ignore (req l "OPEN d");
  ignore (req l ("LOAD d inline\n" ^ chain_kb));
  ignore (req l "CHASE d steps=100");
  Alcotest.(check string) "fixpoint refutation is definite" "not-entailed"
    (expect_ok "no" (req l "ENTAIL d\n? :- reach(c, a).\n? :- reach(a, b)."));
  ignore (req l ("LOAD d inline\n" ^ family_kb));
  ignore (req l "CHASE d steps=100");
  Alcotest.(check string) "budget-stopped answers are sound only" "stopped"
    (expect_ok "sound" (req l "ENTAIL d\n?(X) :- ancestor(alice, X)."))

(* ------------------------------------------------------------------ *)
(* Fault injection: a killed chase leaves a live session               *)

let with_faults spec f =
  Resilience.Fault.set_spec spec;
  Fun.protect ~finally:Resilience.Fault.clear f

let fault_mid_chase () =
  let l = L.create () in
  ignore (expect_ok "open a" (req l "OPEN a"));
  ignore (expect_ok "load a" (req l ("LOAD a inline\n" ^ family_kb)));
  ignore (expect_ok "open b" (req l "OPEN b"));
  ignore (expect_ok "load b" (req l ("LOAD b inline\n" ^ chain_kb)));
  (* the injected OOM stops the chase; the session answers with a
     structured chase-stopped err frame instead of dying *)
  let msg =
    with_faults "step:2:out_of_memory" (fun () ->
        expect_err "faulted chase" P.Chase_stopped
          (req l "CHASE a variant=restricted steps=100"))
  in
  Alcotest.(check bool) "structured message" true
    (contains ~sub:"keeps generation" msg);
  (* the other session is untouched: it chases and answers *)
  ignore (expect_ok "chase b" (req l "CHASE b steps=100"));
  Alcotest.(check string) "b answers" "ok"
    (expect_ok "entail b" (req l "ENTAIL b\n? :- reach(a, c)."));
  (* the faulted session still serves STATS and ENTAIL from the
     snapshot it stamped before stopping *)
  let st = req l "STATS a" in
  ignore (expect_ok "stats a" st);
  Alcotest.(check bool) "a kept a snapshot" true
    (List.exists (contains ~sub:"out_of_memory") (data_lines st));
  ignore (expect_ok "a still answers" (req l "ENTAIL a\n? :- parent(alice, bob).") );
  (* and a clean re-chase recovers it fully *)
  ignore (expect_ok "rechase a" (req l "CHASE a steps=100"));
  Alcotest.(check string) "a recovered" "ok"
    (expect_ok "entail a" (req l "ENTAIL a\n? :- ancestor(alice, carol)."))

(* ------------------------------------------------------------------ *)
(* Drain over a real socket: SIGALRM cancels the in-flight chase       *)

let rec retry_eintr f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let sock_reader fd =
  let buf = ref "" in
  let chunk = Bytes.create 4096 in
  let rec next () =
    match P.decode !buf with
    | Ok (f, used) ->
        buf := String.sub !buf used (String.length !buf - used);
        Some f
    | Error P.Truncated ->
        let n = retry_eintr (fun () -> Unix.read fd chunk 0 (Bytes.length chunk)) in
        if n = 0 then None
        else begin
          buf := !buf ^ Bytes.sub_string chunk 0 n;
          next ()
        end
    | Error e -> Alcotest.failf "client decode: %a" P.pp_error e
  in
  next

(* Spawn a real daemon on a fresh Unix socket path — pre-seeded with a
   genuinely stale socket file (bound once, closed), which [serve] must
   probe, find dead, and reclaim — run [f sock], then join the server
   domain and check the unlink cleanup.  On a failing [f] the finally
   forces a zero-second drain so the join cannot hang the test run. *)
let with_server ?(drain = 5) f =
  let sock = Filename.temp_file "corechase-serve" ".sock" in
  Sys.remove sock;
  let stale = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind stale (Unix.ADDR_UNIX sock);
  Unix.listen stale 1;
  Unix.close stale;
  let ready = sock ^ ".ready" in
  let cfg =
    {
      Server.endpoints = [ Server.Unix_sock sock ];
      ready_file = Some ready;
      quiet = true;
      drain_timeout = drain;
      wal = None;
    }
  in
  let srv = Domain.spawn (fun () -> Server.serve cfg) in
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (Sys.file_exists ready)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.02
  done;
  Alcotest.(check bool) "server came up" true (Sys.file_exists ready);
  Fun.protect
    ~finally:(fun () ->
      Server.request_shutdown ~drain:0 ();
      match Domain.join srv with
      | Ok () -> ()
      | Error e -> Alcotest.failf "serve: %s" e)
    (fun () -> f sock);
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock);
  Alcotest.(check bool) "ready file removed" false (Sys.file_exists ready)

let sock_connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let sock_send_raw fd s =
  let b = Bytes.of_string s in
  ignore (retry_eintr (fun () -> Unix.write fd b 0 (Bytes.length b)))

let sock_send fd s = sock_send_raw fd (P.encode (fr P.K_req s))

let expect_kind next name k =
  match next () with
  | Some f when f.P.kind = k -> f
  | Some f -> Alcotest.failf "%s: got %s" name (P.kind_name f.P.kind)
  | None -> Alcotest.failf "%s: eof" name

let drain_cancels_in_flight_chase () =
  with_server ~drain:30 (* the test requests its own 1 s drain *)
  @@ fun sock ->
  let fd = sock_connect sock in
  let next = sock_reader fd in
  ignore (expect_kind next "hello" P.K_hello);
  sock_send fd "OPEN d";
  ignore (expect_kind next "opened" P.K_ok);
  sock_send fd ("LOAD d inline\n" ^ diverge_kb);
  ignore (expect_kind next "loaded" P.K_ok);
  (* a chase that cannot finish on its own inside this test *)
  sock_send fd "CHASE d variant=restricted steps=10000000 atoms=100000000";
  ignore (expect_kind next "first round streamed" P.K_event);
  (* the chase is in flight on the server loop; request a 1 s drain *)
  Server.request_shutdown ~drain:1 ();
  let saw_stopped = ref false and saw_bye = ref false in
  let rec collect () =
    match next () with
    | Some { P.kind = P.K_event; _ } -> collect ()
    | Some { P.kind = P.K_err; payload } ->
        (match P.parse_err payload with
        | Some (P.Chase_stopped, msg) ->
            Alcotest.(check bool) "cancelled outcome" true
              (contains ~sub:"cancelled" msg);
            saw_stopped := true
        | _ -> Alcotest.failf "unexpected err: %S" payload);
        collect ()
    | Some { P.kind = P.K_bye; _ } ->
        saw_bye := true;
        collect ()
    | Some f -> Alcotest.failf "unexpected %s" (P.kind_name f.P.kind)
    | None -> ()
  in
  collect ();
  Alcotest.(check bool) "chase answered chase-stopped" true !saw_stopped;
  Alcotest.(check bool) "server said bye" true !saw_bye;
  Unix.close fd

(* the loopback proves the state machine; this drives the daemon path:
   a well-formed frame of the wrong kind closes that one connection
   with err+bye (dropping anything pipelined after it) and must NOT
   take the select loop down — it used to crash the whole daemon *)
let daemon_rejects_non_req_frame () =
  with_server @@ fun sock ->
  let fd = sock_connect sock in
  let next = sock_reader fd in
  ignore (expect_kind next "hello" P.K_hello);
  sock_send_raw fd (P.encode (fr P.K_ok "") ^ P.encode (fr P.K_req "PING"));
  let e = expect_kind next "violation" P.K_err in
  (match P.parse_err e.P.payload with
  | Some (P.Protocol_violation, _) -> ()
  | _ -> Alcotest.failf "not protocol-error: %S" e.P.payload);
  ignore (expect_kind next "bye" P.K_bye);
  Alcotest.(check bool) "conn closed, pipelined PING dropped" true
    (next () = None);
  Unix.close fd;
  (* the daemon survived: a fresh connection still answers *)
  let fd2 = sock_connect sock in
  let next2 = sock_reader fd2 in
  ignore (expect_kind next2 "hello again" P.K_hello);
  sock_send fd2 "PING";
  Alcotest.(check string) "pong" "pong"
    (expect_kind next2 "pong" P.K_ok).P.payload;
  sock_send fd2 "SHUTDOWN";
  ignore (expect_kind next2 "shutdown ok" P.K_ok);
  ignore (expect_kind next2 "bye" P.K_bye);
  Unix.close fd2

(* binding over a path whose socket a live daemon is accepting on must
   refuse, not yank the socket out from under the running server *)
let bind_refuses_live_socket () =
  with_server @@ fun sock ->
  (match
     Server.serve
       {
         Server.endpoints = [ Server.Unix_sock sock ];
         ready_file = None;
         quiet = true;
         drain_timeout = 1;
         wal = None;
       }
   with
  | Error msg ->
      Alcotest.(check bool) "refused as in use" true
        (contains ~sub:"already in use" msg)
  | Ok () -> Alcotest.fail "second serve bound over a live socket");
  (* the first daemon is unharmed: its socket still answers *)
  let fd = sock_connect sock in
  let next = sock_reader fd in
  ignore (expect_kind next "hello" P.K_hello);
  sock_send fd "SHUTDOWN";
  ignore (expect_kind next "shutdown ok" P.K_ok);
  ignore (expect_kind next "bye" P.K_bye);
  Unix.close fd

(* host-resolution failure is a structured [Error], not an escaping
   Not_found from gethostbyname *)
let client_unknown_host () =
  match Server.Client.run (Server.Tcp ("", 9)) [ "PING" ] with
  | Error msg ->
      Alcotest.(check bool) "unknown host" true
        (contains ~sub:"unknown host" msg)
  | Ok _ -> Alcotest.fail "client connected to an empty host"

(* shutting-down refusals while draining are part of the same path but
   need a second connection; loopback covers the refusal text *)
let shutdown_refuses_new_work () =
  let l = L.create () in
  ignore (req l "OPEN s");
  ignore (expect_ok "shutdown" (req l "SHUTDOWN"));
  ()

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "server.codec",
      [
        tc "frames round trip" codec_roundtrip;
        tc "kind names round trip" codec_kind_names;
        tc "hello frame decodes" codec_hello;
        tc "malformed input typed errors" codec_errors;
        tc "encode rejects oversized payloads" codec_encode_oversized;
        tc "decode_all consumes complete frames" codec_decode_all;
        tc "data_frames splits at max_payload" codec_data_frames;
        tc "clamp makes any frame encodable" codec_clamp;
        tc "err frames round trip" codec_err_frames;
      ] );
    ( "server.request",
      [
        tc "parse∘print = id" request_roundtrip;
        tc "defaults and case folding" request_defaults_and_case;
        tc "malformed requests rejected" request_rejections;
        tc "session name validation" session_names;
      ] );
    ( "server.fuzz",
      [
        tc "random bytes never raise" fuzz_random_bytes;
        tc "mutated frames never raise" fuzz_mutated_frames;
      ] );
    ( "server.loopback",
      [
        tc "session lifecycle end to end" loopback_lifecycle;
        tc "load path errors are structured" loopback_load_path_missing;
        tc "byte-split equivalence" raw_byte_split_equivalence;
        tc "framing violation closes with err+bye" raw_violation_closes;
        tc "non-req frame is a violation" raw_non_req_kind_violates;
        tc "parse error keeps the connection" raw_parse_error_keeps_connection;
        tc "oversized responses split or truncate" raw_oversized_responses_split;
        tc "shutdown says bye" raw_shutdown_says_bye;
        tc "shutdown via request api" shutdown_refuses_new_work;
      ] );
    ( "server.differential",
      [
        tc "core jobs=1"
          (differential ~vname:"core" ~variant:`Core ~jobs:1);
        tc "core jobs=4"
          (differential ~vname:"core" ~variant:`Core ~jobs:4);
        tc "restricted jobs=1"
          (differential ~vname:"restricted" ~variant:`Restricted ~jobs:1);
        tc "restricted jobs=4"
          (differential ~vname:"restricted" ~variant:`Restricted ~jobs:4);
        tc "ok payload severity" differential_severity;
      ] );
    ( "server.faults",
      [ tc "killed chase leaves a live session" fault_mid_chase ] );
    ( "server.drain",
      [ tc "drain cancels the in-flight chase" drain_cancels_in_flight_chase ] );
    ( "server.socket",
      [
        tc "non-req frame closes one conn, not the daemon"
          daemon_rejects_non_req_frame;
        tc "bind refuses a live socket" bind_refuses_live_socket;
        tc "client reports unknown hosts" client_unknown_host;
      ] );
  ]
