open Syntax

let check_datalog rules =
  List.iter
    (fun r ->
      if not (Rule.is_datalog r) then
        invalid_arg
          ("Datalog: rule has existential variables: " ^ Rule.name r))
    rules

(* all head atoms derivable from homomorphisms extending [seed] *)
let derive_with indexed r seed =
  List.concat_map
    (fun h ->
      Atomset.to_list (Subst.apply h (Rule.head r)))
    (Homo.Hom.all ~seed (Rule.body r) indexed)

let naive_round rules inst =
  let indexed = Homo.Instance.of_atomset inst in
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc at -> if Atomset.mem at inst then acc else Atomset.add at acc)
        acc
        (derive_with indexed r Subst.empty))
    Atomset.empty rules

let seminaive_round rules inst delta =
  let indexed = Homo.Instance.of_atomset inst in
  List.fold_left
    (fun acc r ->
      let body_atoms = Atomset.to_list (Rule.body r) in
      (* for each body position, anchor it on a delta atom *)
      List.fold_left
        (fun acc anchor ->
          Atomset.fold
            (fun datom acc ->
              match Homo.Hom.extend_via_atom Subst.empty anchor datom with
              | None -> acc
              | Some seed ->
                  List.fold_left
                    (fun acc at ->
                      if Atomset.mem at inst then acc else Atomset.add at acc)
                    acc
                    (derive_with indexed r seed))
            delta acc)
        acc body_atoms)
    Atomset.empty rules

let rounds ?(strategy = `Seminaive) rules facts =
  check_datalog rules;
  let rec go inst delta acc =
    let fresh =
      match strategy with
      | `Naive -> naive_round rules inst
      | `Seminaive -> seminaive_round rules inst delta
    in
    if Atomset.is_empty fresh then List.rev acc
    else
      let inst' = Atomset.union inst fresh in
      go inst' fresh (inst' :: acc)
  in
  go facts facts [ facts ]

let saturate ?strategy rules facts =
  match List.rev (rounds ?strategy rules facts) with
  | last :: _ -> last
  | [] -> facts
