test/test_egd.ml: Alcotest Atom Atomset Chase Dlgp Egd Fmt Kb List Rule Syntax Term
