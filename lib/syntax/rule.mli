(** Existential rules / tuple-generating dependencies (Section 2).

    A rule [R = B → H] has nonempty finite body and head atomsets.  Body
    variables are {e universal}; variables shared between body and head are
    the {e frontier}; head-only variables are {e existential}.  A rule is
    identified with the sentence
    [∀X⃗ Y⃗. B[X⃗,Y⃗] → ∃Z⃗. H[X⃗,Z⃗]]. *)

type t = private {
  id : int;  (** process-unique; no semantics, cache key only *)
  name : string;
  body : Atomset.t;
  head : Atomset.t;
}

val make : ?name:string -> body:Atom.t list -> head:Atom.t list -> unit -> t
(** @raise Invalid_argument if body or head is empty. *)

val make_sets : ?name:string -> body:Atomset.t -> head:Atomset.t -> unit -> t

val id : t -> int
(** A process-unique stamp assigned at construction ({!rename_apart}
    included).  Ignored by {!compare}/{!equal}; intended as a stable,
    collision-free cache-key ingredient (see {!Homo.Hom.find}'s memo). *)

val name : t -> string

val body : t -> Atomset.t

val head : t -> Atomset.t

val universal_vars : t -> Term.t list
(** All body variables, sorted by rank. *)

val frontier : t -> Term.t list
(** Variables occurring in both body and head. *)

val existential_vars : t -> Term.t list
(** Head-only variables. *)

val nonfrontier_universal_vars : t -> Term.t list
(** Body-only variables (the paper's [Y⃗]). *)

val is_datalog : t -> bool
(** No existential variable. *)

val vars : t -> Term.t list
(** All variables of the rule, sorted by rank. *)

val preds : t -> (string * int) list

val rename_apart : t -> t
(** A fresh-variable copy of the rule (same name).  Chase engines rename
    rules apart before matching so rule variables never collide with
    instance nulls. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : t Fmt.t
(** [name: body -> head]. *)
