lib/zoo/randomkb.ml: Array Atom Int64 Kb List Printf Rule Syntax Term
