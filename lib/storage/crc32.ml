(* Table-driven CRC-32 (IEEE 802.3 polynomial, the one zlib and
   tarantool's xlog use).  OCaml ints are 63-bit so the whole update runs
   in plain [land]/[lxor]/[lsr] arithmetic with no boxing; the table is
   built once on first use. *)

let polynomial = 0xedb88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then polynomial lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(* Fold [len] bytes of [s] starting at [pos] into a running (already
   pre-inverted) register. *)
let update_raw reg s pos len =
  let t = Lazy.force table in
  let reg = ref reg in
  for i = pos to pos + len - 1 do
    reg := t.((!reg lxor Char.code (String.unsafe_get s i)) land 0xff)
           lxor (!reg lsr 8)
  done;
  !reg

let string_sub s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.string_sub";
  update_raw 0xffffffff s pos len lxor 0xffffffff land 0xffffffff

let string s = string_sub s 0 (String.length s)

(* CRC over the concatenation [a ^ b] without building it. *)
let pair a b =
  let reg = update_raw 0xffffffff a 0 (String.length a) in
  let reg = update_raw reg b 0 (String.length b) in
  reg lxor 0xffffffff land 0xffffffff
