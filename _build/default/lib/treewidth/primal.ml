open Syntax

type t = { graph : Graph.t; terms : Term.t array }

let of_atomset aset =
  let terms = Array.of_list (Atomset.terms aset) in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i t -> Hashtbl.replace index t i) terms;
  let g = Graph.create (Array.length terms) in
  Atomset.iter
    (fun a ->
      let vs = List.map (Hashtbl.find index) (Atom.term_set a) in
      let rec pairs = function
        | [] -> ()
        | v :: rest ->
            List.iter (fun u -> Graph.add_edge g u v) rest;
            pairs rest
      in
      pairs vs)
    aset;
  { graph = g; terms }

let vertex_of_term p t =
  let n = Array.length p.terms in
  let rec go i =
    if i >= n then None
    else if Term.equal p.terms.(i) t then Some i
    else go (i + 1)
  in
  go 0

let term_of_vertex p v = p.terms.(v)
