examples/data_exchange.ml: Atom Atomset Chase Corechase Dlgp Egd Fmt Homo Kb List Rclasses Syntax Term
