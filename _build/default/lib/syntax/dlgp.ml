type document = {
  facts : Atomset.t;
  rules : Rule.t list;
  egds : Egd.t list;
  queries : Kb.Query.t list;
  constraints : Kb.Query.t list;
}

type error = { line : int; col : int; message : string }

let pp_error ppf e =
  Fmt.pf ppf "parse error at line %d, column %d: %s" e.line e.col e.message

exception Error of error

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token =
  | Lident of string (* lowercase identifier / number / quoted: constant *)
  | Uident of string (* uppercase or _ identifier: variable *)
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Implied (* ":-" *)
  | Equals (* "=" *)
  | Question
  | Bang
  | Label of string (* "[...]" rule label *)
  | Section of string (* "@facts" etc *)
  | Eof

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
}

let mk_lexer src = { src; pos = 0; line = 1; bol = 0 }

let col lx = lx.pos - lx.bol + 1

let fail lx message = raise (Error { line = lx.line; col = col lx; message })

let peek_char lx =
  if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.bol <- lx.pos + 1
  | _ -> ());
  lx.pos <- lx.pos + 1

let is_lower c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')

let is_upper c = (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_lower c || is_upper c || c = '-' || c = '.' && false (* '.' terminates *)

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws lx
  | Some '%' ->
      let rec to_eol () =
        match peek_char lx with
        | Some '\n' | None -> ()
        | Some _ ->
            advance lx;
            to_eol ()
      in
      to_eol ();
      skip_ws lx
  | _ -> ()

let read_while lx pred =
  let start = lx.pos in
  let rec go () =
    match peek_char lx with
    | Some c when pred c ->
        advance lx;
        go ()
    | _ -> ()
  in
  go ();
  String.sub lx.src start (lx.pos - start)

let read_delimited lx close what =
  advance lx;
  let start = lx.pos in
  let rec go () =
    match peek_char lx with
    | Some c when c = close -> ()
    | Some _ ->
        advance lx;
        go ()
    | None -> fail lx (Printf.sprintf "unterminated %s" what)
  in
  go ();
  let s = String.sub lx.src start (lx.pos - start) in
  advance lx;
  s

let next_token lx =
  skip_ws lx;
  match peek_char lx with
  | None -> Eof
  | Some '(' ->
      advance lx;
      Lparen
  | Some ')' ->
      advance lx;
      Rparen
  | Some ',' ->
      advance lx;
      Comma
  | Some '.' ->
      advance lx;
      Dot
  | Some '?' ->
      advance lx;
      Question
  | Some '!' ->
      advance lx;
      Bang
  | Some '=' ->
      advance lx;
      Equals
  | Some ':' ->
      advance lx;
      if peek_char lx = Some '-' then (
        advance lx;
        Implied)
      else fail lx "expected '-' after ':'"
  | Some '[' -> Label (String.trim (read_delimited lx ']' "label"))
  | Some '"' -> Lident (read_delimited lx '"' "string literal")
  | Some '<' -> Lident (read_delimited lx '>' "IRI literal")
  | Some '@' ->
      advance lx;
      Section (read_while lx is_ident_char)
  | Some c when is_lower c -> Lident (read_while lx is_ident_char)
  | Some c when is_upper c -> Uident (read_while lx is_ident_char)
  | Some c -> fail lx (Printf.sprintf "unexpected character %C" c)

(* ------------------------------------------------------------------ *)
(* Parser *)

type parser_state = {
  lx : lexer;
  mutable tok : token;
  mutable vars : (string * Term.t) list; (* per-statement variable scope *)
}

let mk_parser src =
  let lx = mk_lexer src in
  { lx; tok = next_token lx; vars = [] }

let shift st = st.tok <- next_token st.lx

let expect st tok what =
  if st.tok = tok then shift st else fail st.lx ("expected " ^ what)

let var_of st name =
  match List.assoc_opt name st.vars with
  | Some v -> v
  | None ->
      let v = Term.fresh_var ~hint:name () in
      st.vars <- (name, v) :: st.vars;
      v

let parse_term st =
  match st.tok with
  | Lident c ->
      shift st;
      Term.const c
  | Uident x ->
      shift st;
      var_of st x
  | _ -> fail st.lx "expected a term"

let parse_atom st =
  match st.tok with
  | Lident p -> (
      shift st;
      match st.tok with
      | Lparen ->
          shift st;
          let rec args acc =
            let t = parse_term st in
            match st.tok with
            | Comma ->
                shift st;
                args (t :: acc)
            | Rparen ->
                shift st;
                List.rev (t :: acc)
            | _ -> fail st.lx "expected ',' or ')' in atom arguments"
          in
          Atom.make p (args [])
      | _ -> Atom.make p [] (* propositional atom *))
  | _ -> fail st.lx "expected an atom"

let parse_conjunction st =
  let rec go acc =
    let a = parse_atom st in
    match st.tok with
    | Comma ->
        shift st;
        go (a :: acc)
    | _ -> List.rev (a :: acc)
  in
  go []

(* One statement.  Returns [None] on section markers. *)
type statement =
  | Fact_atoms of Atom.t list
  | Rule_stmt of Rule.t
  | Query_stmt of Kb.Query.t
  | Constraint_stmt of Kb.Query.t
  | Egd_stmt of Egd.t

let parse_statement st =
  st.vars <- [];
  match st.tok with
  | Section _ ->
      shift st;
      None
  | Question ->
      shift st;
      let answers =
        match st.tok with
        | Lparen ->
            (* answer list: variables are kept as distinguished answer
               variables; constants in answer position are accepted and
               ignored (Boolean component) *)
            shift st;
            let rec collect acc =
              let acc =
                match st.tok with
                | Uident x ->
                    shift st;
                    var_of st x :: acc
                | Lident _ ->
                    shift st;
                    acc
                | _ -> fail st.lx "expected a term in answer list"
              in
              match st.tok with
              | Comma ->
                  shift st;
                  collect acc
              | Rparen ->
                  shift st;
                  List.rev acc
              | _ -> fail st.lx "expected ',' or ')' in answer list"
            in
            collect []
        | _ -> []
      in
      expect st Implied "':-' after query head";
      let body = parse_conjunction st in
      expect st Dot "'.' at end of query";
      Some (Query_stmt (Kb.Query.make ~answers body))
  | Uident x ->
      (* an EGD head: X = Y :- body. *)
      shift st;
      let l = var_of st x in
      expect st Equals "'=' in an equality head";
      let r =
        match st.tok with
        | Uident y ->
            shift st;
            var_of st y
        | _ -> fail st.lx "expected a variable on the right of '='"
      in
      expect st Implied "':-' after the equality head";
      let body = parse_conjunction st in
      expect st Dot "'.' at end of EGD";
      (try Some (Egd_stmt (Egd.make ~body l r))
       with Invalid_argument m -> fail st.lx m)
  | Bang ->
      shift st;
      expect st Implied "':-' after '!'";
      let body = parse_conjunction st in
      expect st Dot "'.' at end of constraint";
      Some (Constraint_stmt (Kb.Query.make body))
  | Label lbl -> (
      shift st;
      let first = parse_conjunction st in
      match st.tok with
      | Implied ->
          shift st;
          let body = parse_conjunction st in
          expect st Dot "'.' at end of rule";
          Some (Rule_stmt (Rule.make ~name:lbl ~body ~head:first ()))
      | Dot ->
          shift st;
          Some (Fact_atoms first)
      | _ -> fail st.lx "expected ':-' or '.'")
  | _ -> (
      let first = parse_conjunction st in
      match st.tok with
      | Implied ->
          shift st;
          let body = parse_conjunction st in
          expect st Dot "'.' at end of rule";
          Some (Rule_stmt (Rule.make ~body ~head:first ()))
      | Dot ->
          shift st;
          Some (Fact_atoms first)
      | _ -> fail st.lx "expected ':-' or '.'")

let parse_string src =
  let st = mk_parser src in
  let rec go facts rules egds queries constraints =
    match st.tok with
    | Eof ->
        Ok
          {
            facts = Atomset.of_list (List.rev facts);
            rules = List.rev rules;
            egds = List.rev egds;
            queries = List.rev queries;
            constraints = List.rev constraints;
          }
    | _ -> (
        match parse_statement st with
        | None -> go facts rules egds queries constraints
        | Some (Fact_atoms atoms) ->
            go (List.rev_append atoms facts) rules egds queries constraints
        | Some (Rule_stmt r) -> go facts (r :: rules) egds queries constraints
        | Some (Egd_stmt e) -> go facts rules (e :: egds) queries constraints
        | Some (Query_stmt q) -> go facts rules egds (q :: queries) constraints
        | Some (Constraint_stmt c) ->
            go facts rules egds queries (c :: constraints))
  in
  try go [] [] [] [] [] with Error e -> Result.Error e

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string s

let kb_of_document d =
  Kb.with_egds d.egds (Kb.make ~facts:d.facts ~rules:d.rules)

let parse_kb src = Result.map kb_of_document (parse_string src)

(* ------------------------------------------------------------------ *)
(* Printer *)

let needs_quotes c =
  String.length c = 0
  || (not (is_lower c.[0]))
  || String.exists (fun ch -> not (is_ident_char ch)) c

let term_to_string t =
  match t with
  | Term.Const c -> if needs_quotes c then "\"" ^ c ^ "\"" else c
  | Term.Var v ->
      let h = v.Term.hint in
      if h <> "" && is_upper h.[0] && not (String.exists (fun ch -> not (is_ident_char ch)) h)
      then h
      else "V" ^ string_of_int v.Term.id

let atom_to_string a =
  match Atom.args a with
  | [] -> Atom.pred a
  | args ->
      Printf.sprintf "%s(%s)" (Atom.pred a)
        (String.concat ", " (List.map term_to_string args))

let conj_to_string atoms = String.concat ", " (List.map atom_to_string atoms)

let rule_to_string r =
  let label = if Rule.name r = "" then "" else "[" ^ Rule.name r ^ "] " in
  Printf.sprintf "%s%s :- %s." label
    (conj_to_string (Atomset.to_list (Rule.head r)))
    (conj_to_string (Atomset.to_list (Rule.body r)))

let print_document ppf d =
  let pf fmt = Format.fprintf ppf fmt in
  if not (Atomset.is_empty d.facts) then begin
    pf "@[<v>@@facts@,";
    Atomset.iter (fun a -> pf "%s.@," (atom_to_string a)) d.facts;
    pf "@]"
  end;
  if d.rules <> [] || d.egds <> [] then begin
    pf "@[<v>@@rules@,";
    List.iter (fun r -> pf "%s@," (rule_to_string r)) d.rules;
    List.iter
      (fun e ->
        let l, r = Egd.sides e in
        pf "%s = %s :- %s.@," (term_to_string l) (term_to_string r)
          (conj_to_string (Atomset.to_list (Egd.body e))))
      d.egds;
    pf "@]"
  end;
  if d.queries <> [] then begin
    pf "@[<v>@@queries@,";
    List.iter
      (fun q ->
        match Kb.Query.answer_vars q with
        | [] ->
            pf "? :- %s.@,"
              (conj_to_string (Atomset.to_list (Kb.Query.atoms q)))
        | avs ->
            pf "?(%s) :- %s.@,"
              (String.concat ", " (List.map term_to_string avs))
              (conj_to_string (Atomset.to_list (Kb.Query.atoms q))))
      d.queries;
    pf "@]"
  end;
  if d.constraints <> [] then begin
    pf "@[<v>@@constraints@,";
    List.iter
      (fun c ->
        pf "! :- %s.@," (conj_to_string (Atomset.to_list (Kb.Query.atoms c))))
      d.constraints;
    pf "@]"
  end
