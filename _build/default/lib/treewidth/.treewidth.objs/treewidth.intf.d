lib/treewidth/treewidth.mli: Atomset Decomposition Dot Elimination Exact Graph Grid Hypergraph Lowerbound Pathwidth Primal Syntax
