Exercise the observability flags: --metrics prints the registry table
after the run, --trace FILE writes a JSONL event stream.  Counter and
gauge rows are deterministic for a fixed KB; histogram rows carry
timings, so only the counter rows are pinned here.

  $ cat > family.dlgp <<'KB'
  > parent(alice, bob).
  > parent(bob, carol).
  > [anc-base] ancestor(X, Y) :- parent(X, Y).
  > [anc-rec]  ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
  > KB

The runs pin --jobs 1 so the rows stay byte-identical even when the
suite itself is exercised under CORECHASE_JOBS=4 (the par.* rows then
read 0: with one job no fan-out ever happens).

  $ corechase chase family.dlgp --variant core --jobs 1 --trace out.jsonl --metrics | grep -vE "tw.ms|minor_words"
  variant:    core
  outcome:    terminated (fixpoint reached)
  steps:      3
  final size: 5 atoms
  
  metrics:
    chase.discoveries                3
    chase.egd_merges                 0
    chase.instance_size              5 (peak 5)
    chase.retractions                0
    chase.rounds                     2
    chase.triggers_applied           3
    chase.triggers_enumerated        3
    core.full_fallbacks              0
    core.scoped_certified            3
    core.scoped_searches             3
    hom.backtracks                   1
    hom.memo_hits                    2
    hom.memo_misses                  4
    hom.solve_calls                  9
    par.fanouts                      0
    par.tasks                        0
    resilience.cancellations         0
    resilience.checkpoints           0
    resilience.deadline_hits         0
    resilience.faults_injected       0
    resilience.resource_caught       0
    robust.aggregations              0
    robust.steps_built               0
    tw.computations                  0
    wal.appends                      0
    wal.fsyncs                       0
    wal.replayed_records             0
    wal.torn_tails                   0


The core.* rows come from incremental core maintenance (DESIGN.md §9):
each step's delta-scoped fold search is counted, and on this datalog KB
every delta is certified outright — no seeded search, no fallback to
the exhaustive fold.  The hom.memo_* rows count the failed-hom memo
that both the scoped searches and trigger-satisfaction re-checks
consult.

The trace is one JSON object per line; the prefix is stable for this KB
(discovery sweeps, round starts, core_scoped_fold certifications with
their seeded-search counts, trigger firings with rule labels):

  $ grep -v hom_backtrack out.jsonl
  {"ev":"trigger_found","engine":"discover","found":2,"size":2}
  {"ev":"round_start","engine":"core","round":1,"size":2}
  {"ev":"core_scoped_fold","candidates":0,"folded":false,"size":3}
  {"ev":"trigger_applied","engine":"core","step":1,"rule":"anc-base","produced":1,"size":3}
  {"ev":"core_scoped_fold","candidates":0,"folded":false,"size":4}
  {"ev":"trigger_applied","engine":"core","step":2,"rule":"anc-base","produced":1,"size":4}
  {"ev":"trigger_found","engine":"discover","found":1,"size":4}
  {"ev":"round_start","engine":"core","round":2,"size":4}
  {"ev":"core_scoped_fold","candidates":0,"folded":false,"size":5}
  {"ev":"trigger_applied","engine":"core","step":3,"rule":"anc-rec","produced":1,"size":5}
  {"ev":"trigger_found","engine":"discover","found":0,"size":5}

Forcing the exhaustive oracle with --core-scope full disables the
scoped search entirely — the core.* counters stay at zero (the final
instance is identical either way; the scoped ≡ full law is tested
property-style in test_props.ml):

  $ corechase chase family.dlgp --variant core --core-scope full --jobs 1 --metrics | grep "core\."
    core.full_fallbacks              0
    core.scoped_certified            0
    core.scoped_searches             0

Without the flags nothing extra is printed and no file is written:

  $ corechase chase family.dlgp --variant core --jobs 1
  variant:    core
  outcome:    terminated (fixpoint reached)
  steps:      3
  final size: 5 atoms
