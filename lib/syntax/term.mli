(** Terms of the existential-rule formalism (Section 2 of the paper).

    The term universe is [Δ_T = Δ_C ∪ Δ_V]: a countably infinite set of
    constants (written in lowercase in the paper) and a countably infinite,
    disjoint set of variables (uppercase).  We conflate labelled nulls with
    variables, exactly as the paper does.

    Variables carry a globally unique integer {e rank}.  The paper's robust
    renaming (Definition 14) assumes a bijection [rank : Δ_V → ℕ] inducing a
    total order [<_X]; our ranks are that bijection.  Freshly generated
    variables always receive ranks strictly larger than every rank issued
    before, which realises footnote 2 ("fresh" means globally fresh across
    the whole computation). *)

type var = private { id : int; hint : string }
(** A variable: [id] is its rank (unique over the whole process), [hint] a
    display name.  Equality and ordering use [id] only. *)

type t =
  | Const of string  (** a constant of [Δ_C] *)
  | Var of var  (** a variable / labelled null of [Δ_V] *)

val fresh_var : ?hint:string -> unit -> t
(** [fresh_var ()] creates a globally fresh variable.  Ranks are issued by a
    monotone counter, so a variable created later is always [<_X]-greater. *)

val var_of_id : ?hint:string -> int -> t
(** [var_of_id i] builds the variable of rank [i] (registering [i] with the
    freshness counter so later [fresh_var] calls stay fresh).  Used by
    deterministic generators (e.g. the zoo's X_i^j grids) and parsers. *)

val const : string -> t
(** [const c] is the constant named [c]. *)

val is_var : t -> bool

val is_const : t -> bool

val rank : t -> int
(** [rank t] is the rank of variable [t].
    @raise Invalid_argument on constants. *)

val hint : t -> string
(** Display name: the hint for variables, the name for constants. *)

val compare : t -> t -> int
(** Total order: constants (by name) before variables (by rank). *)

val compare_by_rank : t -> t -> int
(** The paper's [<_X] order extended to terms: variables compared by rank;
    constants are smaller than all variables (they never get renamed, which
    is what Definition 14 needs). *)

val equal : t -> t -> bool

val hash : t -> int

val pp : t Fmt.t
(** Prints constants bare and variables as their hint (falling back to
    [?n] for hint-less variables of rank n). *)

val pp_debug : t Fmt.t
(** Like {!pp} but always shows variable ranks, e.g. [X#42]. *)

val with_local_counter : ?from:int -> (unit -> 'a) -> 'a
(** [with_local_counter f] runs [f] with the calling domain drawing ranks
    from a private counter starting at [from] (default 0) instead of the
    process-wide one; the previous counter (local or global) is restored
    on exit.  This is the term-level half of {!Par.Batch} task isolation
    (DESIGN.md §14): N independent tasks batched across the pool each
    mint exactly the ranks a sequential loop over them would, instead of
    interleaving draws from the shared counter.  Within the scope,
    freshness is only guaranteed against terms minted in the same scope
    — callers must not mix terms across isolation scopes. *)

val reset_counter_for_tests : unit -> unit
(** Resets the global freshness counter.  Only for test isolation. *)

val counter_value : unit -> int
(** Current value of the global freshness counter: the next rank
    {!fresh_var} would issue.  Persisted by chase checkpoints so a
    resumed run mints exactly the variables the uninterrupted run would
    have (DESIGN.md §11). *)

val restore_counter_for_resume : int -> unit
(** Set the freshness counter to an exact value, {e downward included}.
    Only sound when every term minted above the new value is being
    discarded — i.e. from checkpoint resume (the aborted run's data is
    dropped wholesale) before any new term is built.  Everywhere else,
    use {!Term.var_of_id}'s monotone bump. *)
