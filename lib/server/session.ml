(* Named KB sessions (DESIGN.md §15).  Transport-free: one parsed
   request in, response frames out.  The daemon and the in-process
   loopback client both drive [exec], so everything the protocol tests
   prove here holds for the socket path minus byte shuffling. *)

open Syntax
module E = Corechase.Entailment
module Trace = Obs.Trace
module Metrics = Obs.Metrics

type kb_info = {
  kb : Kb.t;
  doc : Dlgp.document;
  origin : string;  (* "path" or "(inline)" — for STATS *)
  load_op : string;  (* canonical LOAD request text, for WAL snapshots *)
  mutable analysis : Analyze.report option;  (* cached per loaded KB *)
}

type snapshot = {
  variant : Chase.variant;
  budget : Chase.Variants.budget;
  outcome : Resilience.outcome;
  chase_steps : int;
  final : Atomset.t;
  indexed : Homo.Instance.t;
}

type session = {
  name : string;
  mutable kb : kb_info option;
  mutable snapshot : snapshot option;
  mutable generation : int;  (* 0 until the first CHASE completes *)
  mutable requests : int;
  mutable entails : int;
}

type t = {
  table : (string, session) Hashtbl.t;
  mutable order : string list;  (* reverse opening order *)
  wal : Storage.Wal.t option;
  mutable logging : bool;  (* off while {!restore} replays the log *)
}

let create ?wal () =
  { table = Hashtbl.create 7; order = []; wal; logging = true }

let count t = Hashtbl.length t.table

let names t = List.rev t.order

(* process-wide serving counters; the per-session numbers live on the
   session record and surface through STATS *)
let m_requests = lazy (Metrics.counter "serve.requests")
let m_entails = lazy (Metrics.counter "serve.entails")
let m_chases = lazy (Metrics.counter "serve.chases")

let session_ev action s =
  if Trace.enabled () then
    Trace.emit
      (Trace.Session_event
         { action; session = s.name; generation = s.generation })

let ok payload = { Protocol.kind = Protocol.K_ok; payload }

let err = Protocol.err_frame

let data payload = { Protocol.kind = Protocol.K_data; payload }

let find t name =
  match Hashtbl.find_opt t.table name with
  | Some s -> Ok s
  | None -> Error (err Protocol.Unknown_session (Fmt.str "no session %S" name))

let ( let* ) r f = match r with Ok v -> f v | Error e -> e

(* --- durability (DESIGN.md §16) ------------------------------------ *)

(* State-changing requests journal themselves to the registry's WAL:
   OPEN/LOAD/CLOSE as their canonical request text (replayed through the
   ordinary [exec] path on restart), a completed CHASE as the full
   stamped snapshot (the chase is {e not} re-executed on restart — its
   outcome may depend on wall-clock deadlines).  A WAL snapshot compacts
   the registry to one op sequence per open session, with a [Sess_gen]
   record pinning the generation the single serialized chase cannot
   reproduce by counting. *)

let snapshot_records t =
  List.concat_map
    (fun n ->
      let s = Hashtbl.find t.table n in
      (Storage.Record.Sess_op (Protocol.print_request (Protocol.Open s.name))
      :: (match s.kb with
         | Some info -> [ Storage.Record.Sess_op info.load_op ]
         | None -> []))
      @ (match s.snapshot with
        | Some snap ->
            [
              Storage.Record.Sess_chase
                {
                  session = s.name;
                  variant = Chase.variant_name snap.variant;
                  max_steps = snap.budget.Chase.Variants.max_steps;
                  max_atoms = snap.budget.Chase.Variants.max_atoms;
                  outcome = Resilience.outcome_name snap.outcome;
                  chase_steps = snap.chase_steps;
                  final = Atomset.to_list snap.final;
                };
            ]
        | None -> [])
      @ [ Storage.Record.Sess_gen { session = s.name; generation = s.generation } ])
    (names t)

let wal_record t r =
  match t.wal with
  | Some w when t.logging ->
      Storage.Wal.append w r;
      Storage.Wal.maybe_snapshot w (fun () -> snapshot_records t)
  | _ -> ()

let wal_op t text = wal_record t (Storage.Record.Sess_op text)

(* --- LOAD ---------------------------------------------------------- *)

let load_doc source =
  match source with
  | Protocol.From_path path -> (
      match Dlgp.parse_file path with
      | Ok doc -> Ok (doc, path)
      | Error e ->
          Error
            (err Protocol.Bad_request (Fmt.str "%s: %a" path Dlgp.pp_error e))
      | exception Sys_error m -> Error (err Protocol.Io_error m))
  | Protocol.From_text text -> (
      match Dlgp.parse_string text with
      | Ok doc -> Ok (doc, "(inline)")
      | Error e ->
          Error (err Protocol.Bad_request (Fmt.str "inline: %a" Dlgp.pp_error e))
      )

let kb_summary (doc : Dlgp.document) =
  let opt n what =
    if n = 0 then "" else Fmt.str ", %d %s" n what
  in
  Fmt.str "%d facts, %d rules%s%s%s"
    (Atomset.cardinal doc.Dlgp.facts)
    (List.length doc.Dlgp.rules)
    (opt (List.length doc.Dlgp.egds) "egds")
    (opt (List.length doc.Dlgp.queries) "queries")
    (opt (List.length doc.Dlgp.constraints) "constraints")

let exec_load t ~session ~source =
  let* s = find t session in
  let* doc, origin = load_doc source in
  let kb = Dlgp.kb_of_document doc in
  let load_op =
    Protocol.print_request (Protocol.Load { session; source })
  in
  s.kb <- Some { kb; doc; origin; load_op; analysis = None };
  (* the snapshot described the previous KB; a new CHASE must stamp a
     fresh generation before ENTAIL answers again *)
  s.snapshot <- None;
  session_ev "loaded" s;
  wal_op t load_op;
  ok (Fmt.str "loaded %s: %s" s.name (kb_summary doc))

(* --- CHASE --------------------------------------------------------- *)

(* Tee the engine's trace stream: every event still reaches whatever
   sink the server runs under (e.g. the --trace JSONL file), and round
   starts additionally stream to the client as [event] frames, so a
   long chase is observably alive. *)
let forward_to sink ev =
  match sink with
  | Trace.Null -> ()
  | Trace.Console ppf -> Format.fprintf ppf "%a@." Trace.pp_event ev
  | Trace.Jsonl oc ->
      output_string oc (Trace.to_json ev);
      output_char oc '\n'
  | Trace.Custom f -> f ev

let exec_chase t ~emit ~session ~variant ~steps ~atoms =
  let* s = find t session in
  let* info =
    match s.kb with
    | Some info -> Ok info
    | None ->
        Error
          (err Protocol.No_kb
             (Fmt.str "session %s has no KB (run LOAD first)" s.name))
  in
  let budget = { Chase.Variants.max_steps = steps; max_atoms = atoms } in
  let prev = Trace.sink () in
  let tee ev =
    (match ev with
    | Trace.Round_start { round; size; _ } ->
        emit
          {
            Protocol.kind = Protocol.K_event;
            payload = Fmt.str "round %d: %d atoms" round size;
          }
    | _ -> ());
    forward_to prev ev
  in
  let run () =
    Trace.with_sink (Trace.Custom tee) (fun () ->
        Chase.run ~budget ?token:(Resilience.ambient ()) variant info.kb)
  in
  Lazy.force m_chases |> Metrics.incr;
  match run () with
  | report ->
      s.generation <- s.generation + 1;
      s.snapshot <-
        Some
          {
            variant;
            budget;
            outcome = report.Chase.outcome;
            chase_steps = report.Chase.steps;
            final = report.Chase.final;
            indexed = Homo.Instance.of_atomset report.Chase.final;
          };
      session_ev "chased" s;
      wal_record t
        (Storage.Record.Sess_chase
           {
             session = s.name;
             variant = Chase.variant_name variant;
             max_steps = budget.Chase.Variants.max_steps;
             max_atoms = budget.Chase.Variants.max_atoms;
             outcome = Resilience.outcome_name report.Chase.outcome;
             chase_steps = report.Chase.steps;
             final = Atomset.to_list report.Chase.final;
           });
      let size = Atomset.cardinal report.Chase.final in
      (match report.Chase.outcome with
      | Resilience.Fixpoint | Resilience.Step_budget | Resilience.Atom_budget
        ->
          ok
            (Fmt.str "chased %s generation %d: %s, %d steps, %d atoms" s.name
               s.generation
               (Resilience.outcome_name report.Chase.outcome)
               report.Chase.steps size)
      | o ->
          (* a deadline, cancellation or caught resource fault stopped
             the writer: structured error, but the run still produced a
             consistent instance — stamp it and keep serving *)
          err Protocol.Chase_stopped
            (Fmt.str
               "chase stopped (%s); session %s keeps generation %d (%d atoms)"
               (Resilience.outcome_name o) s.name s.generation size))
  | exception e -> (
      (* an interruption the engine did not fold into its report (e.g. a
         fault injected outside any engine poll point): the session
         survives with whatever snapshot it had *)
      match Resilience.outcome_of_exn e with
      | Some o ->
          err Protocol.Chase_stopped
            (Fmt.str "chase stopped (%s); session %s keeps generation %d"
               (Resilience.outcome_name o) s.name s.generation)
      | None -> raise e)

(* --- ENTAIL -------------------------------------------------------- *)

let eval_entail (info : kb_info) snap query =
  match Dlgp.parse_string query with
  | Error e ->
      [ err Protocol.Bad_request (Fmt.str "query: %a" Dlgp.pp_error e) ]
  | Ok qdoc ->
      if qdoc.Dlgp.queries = [] && qdoc.Dlgp.constraints = [] then
        [ err Protocol.Bad_request "no query in ENTAIL body" ]
      else begin
        let sev = ref Queryeval.Sev_ok in
        let line (text, s) =
          sev := Queryeval.worst !sev s;
          data text
        in
        let cframes =
          match qdoc.Dlgp.constraints with
          | [] -> []
          | constraints ->
              [
                line
                  (Queryeval.constraints_line
                     (E.inconsistent ~budget:snap.budget ~constraints info.kb));
              ]
        in
        let qframes =
          List.map
            (fun q ->
              if Kb.Query.is_boolean q then
                line
                  (Queryeval.verdict_line q
                     (E.decide_in_snapshot ~outcome:snap.outcome snap.indexed
                        info.kb q))
              else
                line
                  (Queryeval.answers_line q
                     (E.certain_answers_in_snapshot ~outcome:snap.outcome
                        snap.final q)))
            qdoc.Dlgp.queries
        in
        cframes @ qframes @ [ ok (Queryeval.severity_name !sev) ]
      end

let entail_task t ~session ~query =
  match find t session with
  | Error e -> fun () -> [ e ]
  | Ok s -> (
      s.requests <- s.requests + 1;
      s.entails <- s.entails + 1;
      Lazy.force m_entails |> Metrics.incr;
      match (s.kb, s.snapshot) with
      | None, _ ->
          fun () ->
            [
              err Protocol.No_kb
                (Fmt.str "session %s has no KB (run LOAD first)" s.name);
            ]
      | _, None ->
          fun () ->
            [
              err Protocol.No_kb
                (Fmt.str
                   "session %s has no chased snapshot (run CHASE first)"
                   s.name);
            ]
      | Some info, Some snap -> fun () -> eval_entail info snap query)

(* --- ANALYZE / STATS / admin --------------------------------------- *)

let exec_analyze t ~emit ~session =
  let* s = find t session in
  let* info =
    match s.kb with
    | Some info -> Ok info
    | None ->
        Error
          (err Protocol.No_kb
             (Fmt.str "session %s has no KB (run LOAD first)" s.name))
  in
  let report =
    match info.analysis with
    | Some r -> r
    | None ->
        let r = Analyze.analyze info.kb in
        info.analysis <- Some r;
        r
  in
  let choice, reason = Analyze.route_of_report info.kb report in
  emit
    (data
       (Fmt.str "%a@.route: %s (%s)" Analyze.pp_report report
          (Chase.engine_name choice) reason));
  session_ev "analyzed" s;
  ok (Analyze.verdict_name report.Analyze.verdict)

let exec_stats t ~emit ~session =
  let* s = find t session in
  let kb_line =
    match s.kb with
    | None -> "(none)"
    | Some info -> Fmt.str "%s (%s)" (kb_summary info.doc) info.origin
  in
  let snap_line =
    match s.snapshot with
    | None -> "(none)"
    | Some snap ->
        Fmt.str "%s, %d atoms, %d steps (%s)"
          (Resilience.outcome_name snap.outcome)
          (Atomset.cardinal snap.final)
          snap.chase_steps
          (Chase.variant_name snap.variant)
  in
  emit
    (data
       (Fmt.str
          "session:    %s@.generation: %d@.kb:         %s@.snapshot:   \
           %s@.requests:   %d@.entails:    %d"
          s.name s.generation kb_line snap_line s.requests s.entails));
  ok "stats"

let exec_sessions t ~emit =
  let ns = names t in
  if ns <> [] then
    emit
      (data
         (String.concat "\n"
            (List.map
               (fun n ->
                 let s = Hashtbl.find t.table n in
                 Fmt.str "%s generation=%d requests=%d" s.name s.generation
                   s.requests)
               ns)));
  ok (Fmt.str "%d session(s)" (List.length ns))

let exec_metrics ~emit =
  if !Metrics.enabled then emit (data (Fmt.str "%a" Metrics.pp_table ()))
  else emit (data "(metrics disabled; start the server with --metrics)");
  ok "metrics"

(* --- dispatch ------------------------------------------------------ *)

let bump t name =
  Lazy.force m_requests |> Metrics.incr;
  match Hashtbl.find_opt t.table name with
  | Some s -> s.requests <- s.requests + 1
  | None -> ()

let exec t ~emit req =
  match req with
  | Protocol.Open name ->
      Lazy.force m_requests |> Metrics.incr;
      if Hashtbl.mem t.table name then
        err Protocol.Session_exists (Fmt.str "session %S already open" name)
      else begin
        let s =
          {
            name;
            kb = None;
            snapshot = None;
            generation = 0;
            requests = 1;
            entails = 0;
          }
        in
        Hashtbl.replace t.table name s;
        t.order <- name :: t.order;
        session_ev "opened" s;
        wal_op t (Protocol.print_request req);
        ok (Fmt.str "opened %s" name)
      end
  | Protocol.Load { session; source } ->
      bump t session;
      exec_load t ~session ~source
  | Protocol.Chase { session; variant; steps; atoms } ->
      bump t session;
      exec_chase t ~emit ~session ~variant ~steps ~atoms
  | Protocol.Entail { session; query } ->
      (* counters bumped by [entail_task] itself *)
      Lazy.force m_requests |> Metrics.incr;
      let frames = entail_task t ~session ~query () in
      let rec go = function
        | [ last ] -> last
        | f :: rest ->
            emit f;
            go rest
        | [] -> assert false
      in
      go frames
  | Protocol.Analyze session ->
      bump t session;
      exec_analyze t ~emit ~session
  | Protocol.Stats session ->
      bump t session;
      exec_stats t ~emit ~session
  | Protocol.Close session ->
      bump t session;
      let* s = find t session in
      Hashtbl.remove t.table session;
      t.order <- List.filter (fun n -> n <> session) t.order;
      session_ev "closed" s;
      wal_op t (Protocol.print_request req);
      ok (Fmt.str "closed %s" session)
  | Protocol.Ping ->
      Lazy.force m_requests |> Metrics.incr;
      ok "pong"
  | Protocol.Metrics ->
      Lazy.force m_requests |> Metrics.incr;
      exec_metrics ~emit
  | Protocol.Sessions ->
      Lazy.force m_requests |> Metrics.incr;
      exec_sessions t ~emit
  | Protocol.Shutdown ->
      Lazy.force m_requests |> Metrics.incr;
      ok "shutting down"

(* --- restore ------------------------------------------------------- *)

let restore t records =
  (* Replay with journaling off (re-appending would duplicate the log)
     and tracing muted (the events were already emitted by the original
     run; a restart is not a second opening). *)
  t.logging <- false;
  Fun.protect
    ~finally:(fun () -> t.logging <- true)
    (fun () ->
      Trace.with_muted (fun () ->
          let replay i r =
            match r with
            | Storage.Record.Sess_op text -> (
                match Protocol.parse_request text with
                | Error m ->
                    Error (Fmt.str "record %d: bad session op %S: %s" i text m)
                | Ok req -> (
                    match exec t ~emit:(fun _ -> ()) req with
                    | { Protocol.kind = Protocol.K_err; payload } ->
                        Error
                          (Fmt.str "record %d: replaying %S failed: %s" i text
                             payload)
                    | _ -> Ok ()))
            | Storage.Record.Sess_chase
                {
                  session;
                  variant;
                  max_steps;
                  max_atoms;
                  outcome;
                  chase_steps;
                  final;
                } -> (
                match
                  ( Hashtbl.find_opt t.table session,
                    Protocol.variant_of_name variant,
                    Resilience.outcome_of_name outcome )
                with
                | None, _, _ ->
                    Error
                      (Fmt.str "record %d: chase for unopened session %S" i
                         session)
                | _, None, _ ->
                    Error
                      (Fmt.str "record %d: unknown chase variant %S" i variant)
                | _, _, None ->
                    Error
                      (Fmt.str "record %d: unknown chase outcome %S" i outcome)
                | Some s, Some variant, Some outcome ->
                    let fin = Atomset.of_list final in
                    s.generation <- s.generation + 1;
                    s.snapshot <-
                      Some
                        {
                          variant;
                          budget = { Chase.Variants.max_steps; max_atoms };
                          outcome;
                          chase_steps;
                          final = fin;
                          indexed = Homo.Instance.of_atomset fin;
                        };
                    Ok ())
            | Storage.Record.Sess_gen { session; generation } -> (
                match Hashtbl.find_opt t.table session with
                | None ->
                    Error
                      (Fmt.str "record %d: generation for unopened session %S"
                         i session)
                | Some s ->
                    s.generation <- generation;
                    Ok ())
            | r ->
                Error
                  (Fmt.str "record %d: %s record in a session log" i
                     (Storage.Record.kind_name r))
          in
          let rec go i = function
            | [] -> Ok ()
            | r :: rest -> (
                match replay i r with Ok () -> go (i + 1) rest | e -> e)
          in
          go 0 records))
