type t =
  | Atom of Atom.t
  | And of t list
  | Or of t list
  | Not of t
  | Implies of t * t
  | Forall of Term.t list * t
  | Exists of Term.t list * t

let conj_of_atomset aset = And (List.map (fun a -> Atom a) (Atomset.to_list aset))

let of_atomset aset =
  match Atomset.vars aset with
  | [] -> conj_of_atomset aset
  | vars -> Exists (vars, conj_of_atomset aset)

let of_rule r =
  let body = conj_of_atomset (Rule.body r) in
  let head = conj_of_atomset (Rule.head r) in
  let head =
    match Rule.existential_vars r with
    | [] -> head
    | ex -> Exists (ex, head)
  in
  match Rule.universal_vars r with
  | [] -> Implies (body, head)
  | univ -> Forall (univ, Implies (body, head))

let of_query q = of_atomset (Kb.Query.atoms q)

let of_ucq u = Or (List.map of_query (Ucq.disjuncts u))

let of_kb kb =
  let facts = Kb.facts kb in
  let fact_sentences =
    if Atomset.is_empty facts then [] else [ of_atomset facts ]
  in
  fact_sentences @ List.map of_rule (Kb.rules kb)

module TS = Set.Make (Term)

let rec free_vars_set = function
  | Atom a -> TS.of_list (Atom.vars a)
  | And fs | Or fs ->
      List.fold_left (fun s f -> TS.union s (free_vars_set f)) TS.empty fs
  | Not f -> free_vars_set f
  | Implies (f, g) -> TS.union (free_vars_set f) (free_vars_set g)
  | Forall (vs, f) | Exists (vs, f) ->
      TS.diff (free_vars_set f) (TS.of_list vs)

let free_vars f = TS.elements (free_vars_set f)

let is_sentence f = free_vars f = []

(* precedence: quantifiers < implies < or < and < not/atom *)
let rec pp_prec prec ppf f =
  let paren p body =
    if prec > p then Fmt.pf ppf "(%t)" body else body ppf
  in
  match f with
  | Atom a -> Atom.pp ppf a
  | And [] -> Fmt.string ppf "⊤"
  | Or [] -> Fmt.string ppf "⊥"
  | And fs ->
      paren 3 (fun ppf ->
          Fmt.(list ~sep:(any " ∧ ") (pp_prec 4)) ppf fs)
  | Or fs ->
      paren 2 (fun ppf -> Fmt.(list ~sep:(any " ∨ ") (pp_prec 3)) ppf fs)
  | Not f -> Fmt.pf ppf "¬%a" (pp_prec 4) f
  | Implies (f, g) ->
      paren 1 (fun ppf ->
          Fmt.pf ppf "%a → %a" (pp_prec 2) f (pp_prec 1) g)
  | Forall (vs, f) ->
      paren 0 (fun ppf ->
          Fmt.pf ppf "∀%a. %a" Fmt.(list ~sep:comma Term.pp) vs (pp_prec 0) f)
  | Exists (vs, f) ->
      paren 0 (fun ppf ->
          Fmt.pf ppf "∃%a. %a" Fmt.(list ~sep:comma Term.pp) vs (pp_prec 0) f)

let pp ppf f = pp_prec 0 ppf f

(* ------------------------------------------------------------------ *)
(* TPTP FOF output *)

let sanitize_lower s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | 'A' .. 'Z' -> Buffer.add_char b (Char.lowercase_ascii c)
      | _ -> Buffer.add_char b '_')
    s;
  let s' = Buffer.contents b in
  if s' = "" || not (match s'.[0] with 'a' .. 'z' -> true | _ -> false) then
    "c_" ^ s'
  else s'

let tptp_term ppf = function
  | Term.Const c -> Fmt.string ppf (sanitize_lower c)
  | Term.Var v -> Fmt.pf ppf "V%d" v.Term.id

let tptp_atom ppf a =
  match Atom.args a with
  | [] -> Fmt.pf ppf "%s" (sanitize_lower (Atom.pred a))
  | args ->
      Fmt.pf ppf "%s(%a)"
        (sanitize_lower (Atom.pred a))
        Fmt.(list ~sep:comma tptp_term)
        args

let rec pp_tptp_prec prec ppf f =
  let paren p body =
    if prec > p then Fmt.pf ppf "(%t)" body else body ppf
  in
  match f with
  | Atom a -> tptp_atom ppf a
  | And [] -> Fmt.string ppf "$true"
  | Or [] -> Fmt.string ppf "$false"
  | And [ f ] -> pp_tptp_prec prec ppf f
  | Or [ f ] -> pp_tptp_prec prec ppf f
  | And fs ->
      paren 3 (fun ppf -> Fmt.(list ~sep:(any " & ") (pp_tptp_prec 4)) ppf fs)
  | Or fs ->
      paren 2 (fun ppf -> Fmt.(list ~sep:(any " | ") (pp_tptp_prec 3)) ppf fs)
  | Not f -> Fmt.pf ppf "~ %a" (pp_tptp_prec 4) f
  | Implies (f, g) ->
      paren 1 (fun ppf ->
          Fmt.pf ppf "%a => %a" (pp_tptp_prec 2) f (pp_tptp_prec 2) g)
  | Forall (vs, f) ->
      paren 0 (fun ppf ->
          Fmt.pf ppf "! [%a] : %a"
            Fmt.(list ~sep:comma tptp_term)
            vs (pp_tptp_prec 4) f)
  | Exists (vs, f) ->
      paren 0 (fun ppf ->
          Fmt.pf ppf "? [%a] : %a"
            Fmt.(list ~sep:comma tptp_term)
            vs (pp_tptp_prec 4) f)

let pp_tptp ppf f = pp_tptp_prec 0 ppf f

let tptp_problem ?(name = "corechase") kb q =
  let b = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer b in
  Format.pp_set_margin ppf 10_000;
  Format.fprintf ppf "%% TPTP export of an existential-rule entailment problem.@.";
  Format.fprintf ppf "%% K ⊨ Q  iff  a refutation prover reports Theorem.@.";
  List.iteri
    (fun i f ->
      Format.fprintf ppf "fof(%s_ax%d, axiom, %a).@." name i pp_tptp f)
    (of_kb kb);
  Format.fprintf ppf "fof(%s_goal, conjecture, %a).@." name pp_tptp (of_query q);
  Format.pp_print_flush ppf ();
  Buffer.contents b
