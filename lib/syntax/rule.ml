type t = { id : int; name : string; body : Atomset.t; head : Atomset.t }

(* Every constructed rule value gets a process-unique id.  It carries no
   semantics ([compare]/[equal] ignore it); it exists so caches can key on
   a rule without printing it — two structurally equal rules built twice
   get different ids, which costs cache hits but never correctness. *)
let id_counter = ref 0

let fresh_id () =
  incr id_counter;
  !id_counter

let make_sets ?(name = "") ~body ~head () =
  if Atomset.is_empty body then invalid_arg "Rule.make: empty body";
  if Atomset.is_empty head then invalid_arg "Rule.make: empty head";
  { id = fresh_id (); name; body; head }

let make ?name ~body ~head () =
  make_sets ?name ~body:(Atomset.of_list body) ~head:(Atomset.of_list head) ()

let id r = r.id

let name r = r.name

let body r = r.body

let head r = r.head

let universal_vars r = Atomset.vars r.body

let frontier r =
  let head_vars = Atomset.vars r.head in
  List.filter (fun v -> List.exists (Term.equal v) head_vars)
    (Atomset.vars r.body)

let existential_vars r =
  let body_vars = Atomset.vars r.body in
  List.filter
    (fun v -> not (List.exists (Term.equal v) body_vars))
    (Atomset.vars r.head)

let nonfrontier_universal_vars r =
  let head_vars = Atomset.vars r.head in
  List.filter
    (fun v -> not (List.exists (Term.equal v) head_vars))
    (Atomset.vars r.body)

let is_datalog r = existential_vars r = []

let vars r =
  List.sort_uniq Term.compare (universal_vars r @ Atomset.vars r.head)

let preds r =
  List.sort_uniq compare (Atomset.preds r.body @ Atomset.preds r.head)

let rename_apart r =
  let renaming =
    List.fold_left
      (fun s v -> Subst.add v (Term.fresh_var ~hint:(Term.hint v) ()) s)
      Subst.empty (vars r)
  in
  {
    id = fresh_id ();
    name = r.name;
    body = Subst.apply renaming r.body;
    head = Subst.apply renaming r.head;
  }

let compare r1 r2 =
  let c = String.compare r1.name r2.name in
  if c <> 0 then c
  else
    let c = Atomset.compare r1.body r2.body in
    if c <> 0 then c else Atomset.compare r1.head r2.head

let equal r1 r2 = compare r1 r2 = 0

let pp ppf r =
  let pp_conj ppf s =
    Fmt.(list ~sep:(any " ∧ ") Atom.pp) ppf (Atomset.to_list s)
  in
  if r.name = "" then Fmt.pf ppf "@[%a → %a@]" pp_conj r.body pp_conj r.head
  else
    Fmt.pf ppf "@[%s: %a → %a@]" r.name pp_conj r.body pp_conj r.head
