(** Simple undirected graphs on integer vertices [0..n-1].

    This is the substrate under all treewidth computations: atomsets are
    turned into their Gaifman (primal) graphs by {!Primal}. *)

type t

val create : int -> t
(** [create n]: [n] vertices, no edges. *)

val vertex_count : t -> int

val edge_count : t -> int

val add_edge : t -> int -> int -> unit
(** Ignores self-loops; idempotent. @raise Invalid_argument when out of
    range. *)

val has_edge : t -> int -> int -> bool

val neighbors : t -> int -> int list
(** Sorted. *)

val degree : t -> int -> int

val of_edges : int -> (int * int) list -> t

val copy : t -> t

val fold_vertices : (int -> 'a -> 'a) -> t -> 'a -> 'a

val is_clique : t -> int list -> bool
(** Do the listed vertices induce a complete subgraph? *)

val connected_components : t -> int list list

val pp : t Fmt.t
