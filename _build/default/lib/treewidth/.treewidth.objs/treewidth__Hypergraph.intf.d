lib/treewidth/hypergraph.mli: Atomset Syntax Term
