lib/homo/instance.mli: Atom Atomset Fmt Subst Syntax Term
