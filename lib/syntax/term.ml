type var = { id : int; hint : string }

type t = Const of string | Var of var

(* Global rank counter: next rank to issue.  [var_of_id] bumps it past any
   explicitly requested rank so that freshness is preserved process-wide.
   Atomic so that terms may be built from any domain (the [Par] pool, raw
   [Domain.spawn] in tests) without ever re-issuing a rank. *)
let counter = Atomic.make 0

(* Batch-task isolation (DESIGN.md §14): inside [with_local_counter] the
   calling domain draws ranks from its own counter instead of the
   process-wide one, so N independent tasks batched across the pool
   allocate exactly the variable names a sequential loop over them
   would — concurrent tasks no longer interleave draws.  Scoping by
   domain is scoping by task because a [Par.Batch] task runs on one
   domain from start to finish (nested fan-outs degrade). *)
let local_key : int ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_local_counter ?(from = 0) f =
  if from < 0 then invalid_arg "Term.with_local_counter: negative start";
  let saved = Domain.DLS.get local_key in
  Domain.DLS.set local_key (Some (ref from));
  Fun.protect ~finally:(fun () -> Domain.DLS.set local_key saved) f

let fresh_var ?(hint = "") () =
  let id =
    match Domain.DLS.get local_key with
    | Some r ->
        let id = !r in
        r := id + 1;
        id
    | None -> Atomic.fetch_and_add counter 1
  in
  Var { id; hint }

let var_of_id ?(hint = "") id =
  if id < 0 then invalid_arg "Term.var_of_id: negative rank";
  (match Domain.DLS.get local_key with
  | Some r -> if id >= !r then r := id + 1
  | None ->
      let rec bump () =
        let cur = Atomic.get counter in
        if id >= cur && not (Atomic.compare_and_set counter cur (id + 1)) then
          bump ()
      in
      bump ());
  Var { id; hint }

let const c = Const c

let is_var = function Var _ -> true | Const _ -> false

let is_const = function Const _ -> true | Var _ -> false

let rank = function
  | Var v -> v.id
  | Const c -> invalid_arg ("Term.rank: constant " ^ c)

let hint = function Var v -> v.hint | Const c -> c

let compare t1 t2 =
  match (t1, t2) with
  | Const c1, Const c2 -> String.compare c1 c2
  | Const _, Var _ -> -1
  | Var _, Const _ -> 1
  | Var v1, Var v2 -> Int.compare v1.id v2.id

let compare_by_rank t1 t2 =
  match (t1, t2) with
  | Const c1, Const c2 -> String.compare c1 c2
  | Const _, Var _ -> -1
  | Var _, Const _ -> 1
  | Var v1, Var v2 -> Int.compare v1.id v2.id

let equal t1 t2 = compare t1 t2 = 0

let hash = function
  | Const c -> Hashtbl.hash (0, c)
  | Var v -> Hashtbl.hash (1, v.id)

let pp ppf = function
  | Const c -> Fmt.string ppf c
  | Var { id; hint } ->
      if hint = "" then Fmt.pf ppf "?%d" id else Fmt.string ppf hint

let pp_debug ppf = function
  | Const c -> Fmt.string ppf c
  | Var { id; hint } ->
      if hint = "" then Fmt.pf ppf "?%d" id else Fmt.pf ppf "%s#%d" hint id

let reset_counter_for_tests () = Atomic.set counter 0

let counter_value () =
  match Domain.DLS.get local_key with
  | Some r -> !r
  | None -> Atomic.get counter

let restore_counter_for_resume n =
  if n < 0 then invalid_arg "Term.restore_counter_for_resume: negative";
  match Domain.DLS.get local_key with
  | Some r -> r := n
  | None -> Atomic.set counter n
