(** Predicate positions and the dependency structures built on them.

    A {e position} is a pair (predicate, argument index).  Two classical
    constructions over positions drive the syntactic termination classes of
    Section 4's landscape:

    - the {e position graph} of Fagin et al. (weak acyclicity): ordinary
      edges propagate frontier variables, special edges mark where
      existential variables are created;
    - {e affected positions} (Calì–Gottlob–Kifer): the positions that may
      hold labelled nulls during any chase, used by weak guardedness. *)

open Syntax

type t = string * int
(** (predicate, 0-based argument index). *)

val compare : t -> t -> int

val pp : t Fmt.t

val positions_of_var : Term.t -> Atomset.t -> t list
(** The positions at which the variable occurs in the atomset. *)

val all_positions : Rule.t list -> t list

(** The weak-acyclicity position graph. *)
module Graph : sig
  type pos := t

  type t

  val build : Rule.t list -> t
  (** For every rule [B → H], every frontier variable [x] at body position
      [π]: an ordinary edge [π → π'] for every position [π'] of [x] in
      [H], and a special edge [π ⇒ π''] for every position [π''] of every
      existential variable of the rule in [H]. *)

  val ordinary_edges : t -> (pos * pos) list

  val special_edges : t -> (pos * pos) list

  val has_special_cycle : t -> bool
  (** A cycle through at least one special edge — the negation of weak
      acyclicity. *)
end

val affected_positions : Rule.t list -> t list
(** Least fixed point: head positions of existential variables are
    affected; if a frontier variable occurs in the body {e only} at
    affected positions, its head positions become affected. *)
