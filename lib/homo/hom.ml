open Syntax

let naive_order = ref false

(* Observability (DESIGN.md §8): one counter pair for the backtracking
   search.  A "backtrack" is a candidate target atom that failed to extend
   the current partial homomorphism (or violated injectivity); the count is
   accumulated in a local ref — one increment per dead end — and flushed to
   the registry / trace sink only when observability is live, so the
   disabled path adds nothing to the search itself. *)
let m_solve_calls = Obs.Metrics.counter "hom.solve_calls"

let m_backtracks = Obs.Metrics.counter "hom.backtracks"

(* Resilience (DESIGN.md §11): the search recurses once per source atom,
   so an adversarially deep pattern (e.g. a folded chain) can exhaust the
   system stack from inside a chase step.  An explicit bound raises the
   same [Stack_overflow] the engine boundary already classifies as
   [Resource `Stack_overflow] — but deterministically, long before the
   runtime guard page.  [CORECHASE_HOM_DEPTH] overrides the default. *)
let default_max_depth = 50_000

let max_depth =
  ref
    (match Sys.getenv_opt "CORECHASE_HOM_DEPTH" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> n
        | _ -> default_max_depth)
    | None -> default_max_depth)

module TS = Set.Make (Term)

let extend_pair sigma pat_t tgt_t acc_new =
  match pat_t with
  | Term.Const _ -> if Term.equal pat_t tgt_t then Some (sigma, acc_new) else None
  | Term.Var _ -> (
      match Subst.find pat_t sigma with
      | Some img -> if Term.equal img tgt_t then Some (sigma, acc_new) else None
      | None -> Some (Subst.add pat_t tgt_t sigma, (pat_t, tgt_t) :: acc_new))

let extend_via_atom_full sigma pattern target =
  if
    (not (String.equal (Atom.pred pattern) (Atom.pred target)))
    || Atom.arity pattern <> Atom.arity target
  then None
  else
    let rec go sigma acc_new ps ts =
      match (ps, ts) with
      | [], [] -> Some (sigma, acc_new)
      | p :: ps', t :: ts' -> (
          match extend_pair sigma p t acc_new with
          | None -> None
          | Some (sigma', acc') -> go sigma' acc' ps' ts')
      | _ -> None
    in
    go sigma [] (Atom.args pattern) (Atom.args target)

let extend_via_atom sigma pattern target =
  Option.map fst (extend_via_atom_full sigma pattern target)

(* Core backtracking engine.  [k] is called on every solution; raising from
   [k] aborts the search (used for early exit). *)
let solve ?(seed = Subst.empty) ?(injective = false) ~(k : Subst.t -> unit)
    (src : Atomset.t) (tgt : Instance.t) : unit =
  Resilience.Fault.hit "hom";
  if Atomset.cardinal src > !max_depth then raise Stdlib.Stack_overflow;
  let bt = ref 0 in
  (* Deadline polls are decimated: one ambient-token check every 256
     search nodes keeps the no-token path to an atomic read amortised
     over the hot recursion (DESIGN.md §11). *)
  let nodes = ref 0 in
  (* The not-yet-matched source atoms live in the prefix [0, live) of a
     worklist array; each entry keeps its original rank so ties in the
     most-constrained-first selection break exactly as they did when the
     worklist was an ordered list.  Removal is an O(1) swap with the last
     live slot.  Deeper recursion may permute the live prefix (swaps are
     never undone on backtrack), which is harmless: the prefix always holds
     the same *set* of atoms, and selection below is a function of
     (candidate count, original rank), not of array order. *)
  let arr =
    Array.of_list (List.mapi (fun i a -> (i, a)) (Atomset.to_list src))
  in
  (* Under injectivity, track the set of image terms already in use.  The
     initial set contains the seed's images and the source's constants
     (which are their own images). *)
  let init_used =
    if not injective then TS.empty
    else
      List.fold_left
        (fun used v ->
          match Subst.find v seed with
          | Some img -> TS.add img used
          | None -> used)
        (TS.of_list (Atomset.consts src))
        (Atomset.vars src)
  in
  let rec go sigma used live =
    incr nodes;
    if !nodes land 255 = 0 then Resilience.poll ();
    if live = 0 then k sigma
    else begin
      let best = ref 0 in
      if live > 1 then
        if !naive_order then
          (* fixed textual order: the live atom of smallest original rank *)
          for i = 1 to live - 1 do
            if fst arr.(i) < fst arr.(!best) then best := i
          done
        else begin
          (* most-constrained-first: smallest candidate bucket.  One pass
             per level; each count is read off the cached bucket
             cardinalities.  Ties go to the smallest original rank — the
             same atom the ordered-list version selected first. *)
          let bc = ref (Instance.candidate_count tgt (snd arr.(0)) sigma) in
          for i = 1 to live - 1 do
            let c = Instance.candidate_count tgt (snd arr.(i)) sigma in
            if c < !bc || (c = !bc && fst arr.(i) < fst arr.(!best)) then begin
              best := i;
              bc := c
            end
          done
        end;
      let chosen = arr.(!best) in
      arr.(!best) <- arr.(live - 1);
      arr.(live - 1) <- chosen;
      match_next sigma used (snd chosen) (live - 1)
    end
  and match_next sigma used next live =
    let try_candidate target_atom =
      match extend_via_atom_full sigma next target_atom with
      | None -> incr bt
      | Some (sigma', new_bindings) ->
          if injective then begin
            (* each fresh image must be unused, and fresh images must be
               pairwise distinct (checked by sequential insertion) *)
            let rec check used = function
              | [] -> Some used
              | (_, img) :: rest ->
                  if TS.mem img used then None
                  else check (TS.add img used) rest
            in
            match check used new_bindings with
            | None -> incr bt
            | Some used' -> go sigma' used' live
          end
          else go sigma' used live
    in
    List.iter try_candidate (Instance.candidates tgt next sigma)
  in
  let run () = go seed init_used (Array.length arr) in
  if not (Obs.live ()) then run ()
  else begin
    Obs.Metrics.incr m_solve_calls;
    (* [k] may abort the search by raising (see [find]/[exists]); flush the
       backtrack count on every exit path *)
    Fun.protect
      ~finally:(fun () ->
        if !bt > 0 then begin
          Obs.Metrics.add m_backtracks !bt;
          if Obs.Trace.enabled () then
            Obs.Trace.emit
              (Obs.Trace.Hom_backtrack
                 {
                   backtracks = !bt;
                   src_atoms = Atomset.cardinal src;
                   tgt_atoms = Instance.cardinal tgt;
                 })
        end)
      run
  end

exception Stop

(* Failure memo (DESIGN.md §9).  Negative [find] results are cached under a
   caller-supplied (key, epoch) pair: the key names the check (pattern,
   seed, flags) stably, the epoch is an {!Instance.generation} that pins
   the target content the failure was observed against.  A stored entry is
   valid only while its epoch matches the query's — generation advance is
   the invalidation, no explicit flush needed.  Only failures are cached:
   a success carries a witness substitution that callers use, while a
   failure is a bare fact that stays true as long as the target does not
   change.  The table is bounded: at [memo_max] entries it is reset
   wholesale (entries for dead epochs dominate by then anyway). *)
let memo_enabled = ref true

let memo_max = 1 lsl 14

(* One table per domain (domain-local storage): pool workers run
   independent searches whose negative results are valid process-wide,
   but sharing one [Hashtbl] across domains is unsound (concurrent
   resize) and a mutex on the hot path costs more than the occasional
   re-derivation of a failure.  Tables are never merged — a worker's
   entry simply stays invisible to the others, which only loses hits
   (DESIGN.md §10 weighs this against the rejected alternatives). *)
let memo_key = Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let memo_tbl () : (string, int) Hashtbl.t = Domain.DLS.get memo_key

let memo_clear () = Hashtbl.reset (memo_tbl ())

let m_memo_hits = Obs.Metrics.counter "hom.memo_hits"

let m_memo_misses = Obs.Metrics.counter "hom.memo_misses"

let find_uncached ?seed ?injective src tgt =
  let result = ref None in
  (try
     solve ?seed ?injective
       ~k:(fun s ->
         result := Some s;
         raise Stop)
       src tgt
   with Stop -> ());
  !result

let find ?seed ?injective ?memo src tgt =
  match memo with
  | Some (key, epoch) when !memo_enabled -> (
      let tbl = memo_tbl () in
      match Hashtbl.find_opt tbl key with
      | Some e when e = epoch ->
          if !Obs.Metrics.enabled then Obs.Metrics.incr m_memo_hits;
          None
      | _ ->
          if !Obs.Metrics.enabled then Obs.Metrics.incr m_memo_misses;
          let r = find_uncached ?seed ?injective src tgt in
          if r = None then begin
            if Hashtbl.length tbl >= memo_max then Hashtbl.reset tbl;
            Hashtbl.replace tbl key epoch
          end;
          r)
  | _ -> find_uncached ?seed ?injective src tgt

let exists ?seed ?injective ?memo src tgt =
  match find ?seed ?injective ?memo src tgt with Some _ -> true | None -> false

let all ?seed ?injective ?limit src tgt =
  let acc = ref [] in
  let n = ref 0 in
  (try
     solve ?seed ?injective
       ~k:(fun s ->
         acc := s :: !acc;
         incr n;
         match limit with Some l when !n >= l -> raise Stop | _ -> ())
       src tgt
   with Stop -> ());
  List.rev !acc

let count ?seed ?injective ?limit src tgt =
  let n = ref 0 in
  (try
     solve ?seed ?injective
       ~k:(fun _ ->
         incr n;
         match limit with Some l when !n >= l -> raise Stop | _ -> ())
       src tgt
   with Stop -> ());
  !n

let iter ?seed ?injective f src tgt = solve ?seed ?injective ~k:f src tgt

let find_into src tgt_atoms = find src (Instance.of_atomset tgt_atoms)

let maps_to src tgt_atoms =
  match find_into src tgt_atoms with Some _ -> true | None -> false
