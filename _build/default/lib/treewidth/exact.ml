let max_vertices = 62

(* Bitmask helpers *)
let popcount m =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go m 0

let iter_bits m f =
  let rec go m =
    if m <> 0 then begin
      let b = m land -m in
      (* index of lowest set bit *)
      let rec idx b i = if b = 1 then i else idx (b lsr 1) (i + 1) in
      f (idx b 0);
      go (m lxor b)
    end
  in
  go m

type state = { n : int; adj : int array }
(* adj.(v): bitmask of current neighbours among alive vertices; dead
   vertices keep stale entries which are masked with [alive] on use. *)

let state_of_graph g =
  let n = Graph.vertex_count g in
  if n > max_vertices then
    invalid_arg "Exact.treewidth: more than 62 vertices";
  let adj =
    Array.init n (fun v ->
        List.fold_left (fun m u -> m lor (1 lsl u)) 0 (Graph.neighbors g v))
  in
  { n; adj }

let full_mask n = if n = 0 then 0 else (1 lsl n) - 1

(* Eliminate v in place given the alive mask; returns its live degree. *)
let eliminate st alive v =
  let nb = st.adj.(v) land alive land lnot (1 lsl v) in
  iter_bits nb (fun u -> st.adj.(u) <- st.adj.(u) lor (nb land lnot (1 lsl u)));
  popcount nb

(* Min-fill upper bound on the current alive subgraph. *)
let minfill_ub st alive0 =
  let st = { st with adj = Array.copy st.adj } in
  let alive = ref alive0 in
  let width = ref (-1) in
  while !alive <> 0 do
    (* pick min-fill vertex *)
    let best = ref (-1) and best_fill = ref max_int in
    iter_bits !alive (fun v ->
        let nb = st.adj.(v) land !alive land lnot (1 lsl v) in
        let fill = ref 0 in
        iter_bits nb (fun u ->
            fill := !fill + popcount (nb land lnot st.adj.(u) land lnot (1 lsl u)));
        if !fill < !best_fill then begin
          best_fill := !fill;
          best := v
        end);
    let v = !best in
    let d = eliminate st !alive v in
    width := max !width d;
    alive := !alive land lnot (1 lsl v)
  done;
  !width

(* MMD (maximum minimum degree / degeneracy-style) lower bound on the alive
   subgraph: repeatedly delete (not eliminate) a minimum-degree vertex; the
   maximum of the minimum degrees seen is a treewidth lower bound. *)
let mmd_lb st alive0 =
  let alive = ref alive0 in
  let best = ref (-1) in
  while !alive <> 0 do
    let minv = ref (-1) and mind = ref max_int in
    iter_bits !alive (fun v ->
        let d = popcount (st.adj.(v) land !alive land lnot (1 lsl v)) in
        if d < !mind then begin
          mind := d;
          minv := v
        end);
    best := max !best !mind;
    alive := !alive land lnot (1 lsl !minv)
  done;
  !best

let treewidth g =
  let st0 = state_of_graph g in
  let n = st0.n in
  if n = 0 then -1
  else begin
    let all = full_mask n in
    let best = ref (minfill_ub { st0 with adj = Array.copy st0.adj } all) in
    (* memo: eliminated-set mask -> smallest current_max explored with *)
    let memo : (int, int) Hashtbl.t = Hashtbl.create 4096 in
    let rec go st alive current_max =
      if current_max >= !best then ()
      else if alive = 0 then best := current_max
      else if popcount alive <= current_max + 1 then
        (* any order on the rest keeps all bags within current_max *)
        best := current_max
      else begin
        let eliminated = all land lnot alive in
        (match Hashtbl.find_opt memo eliminated with
        | Some m when m <= current_max -> ()
        | _ ->
            Hashtbl.replace memo eliminated current_max;
            let lb = mmd_lb st alive in
            if max lb current_max >= !best then ()
            else begin
              (* simplicial rule: eliminate a simplicial vertex for free *)
              let simplicial = ref (-1) in
              iter_bits alive (fun v ->
                  if !simplicial < 0 then begin
                    let nb = st.adj.(v) land alive land lnot (1 lsl v) in
                    let is_clique = ref true in
                    iter_bits nb (fun u ->
                        if
                          nb land lnot st.adj.(u) land lnot (1 lsl u) <> 0
                        then is_clique := false);
                    if !is_clique then simplicial := v
                  end);
              if !simplicial >= 0 then begin
                let v = !simplicial in
                let st' = { st with adj = Array.copy st.adj } in
                let d = eliminate st' alive v in
                go st' (alive land lnot (1 lsl v)) (max current_max d)
              end
              else
                iter_bits alive (fun v ->
                    let d0 =
                      popcount (st.adj.(v) land alive land lnot (1 lsl v))
                    in
                    if max current_max d0 < !best then begin
                      let st' = { st with adj = Array.copy st.adj } in
                      let d = eliminate st' alive v in
                      go st' (alive land lnot (1 lsl v)) (max current_max d)
                    end)
            end)
      end
    in
    go st0 all (-1);
    !best
  end
