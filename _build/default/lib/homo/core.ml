open Syntax

type strategy = By_variable | By_atom

let strategy = ref By_variable

let find_fold_by_variable a =
  List.find_map
    (fun x ->
      let target = Atomset.without_term x a in
      Morphism.find_endomorphism_into a target)
    (Atomset.vars a)

let find_fold_by_atom a =
  List.find_map
    (fun at ->
      if Atom.is_ground at then None
      else Morphism.find_endomorphism_into a (Atomset.remove at a))
    (Atomset.to_list a)

let find_fold a =
  match !strategy with
  | By_variable -> find_fold_by_variable a
  | By_atom -> find_fold_by_atom a

let rec fold_loop sigma current =
  match find_fold current with
  | None -> (sigma, current)
  | Some h -> fold_loop (Subst.compose h sigma) (Subst.apply h current)

let retraction_to_core a =
  let sigma_star, c = fold_loop Subst.empty a in
  if Subst.is_empty sigma_star then Subst.empty
  else begin
    (* σ* : A → C is a homomorphism onto the core C; its restriction to C
       is an endomorphism of the finite core C, hence an automorphism.
       Pre-composing with the inverse yields a retraction. *)
    let g = Subst.restrict (Atomset.vars c) sigma_star in
    let r =
      if Subst.is_identity_on (Atomset.terms c) g then sigma_star
      else
        let g_inv = Morphism.invert_automorphism c g in
        Subst.compose g_inv sigma_star
    in
    assert (Subst.is_retraction_of a r);
    r
  end

let core_with_retraction a =
  let r = retraction_to_core a in
  (Subst.apply r a, r)

let of_atomset a = fst (core_with_retraction a)

let is_core a = match find_fold a with None -> true | Some _ -> false
