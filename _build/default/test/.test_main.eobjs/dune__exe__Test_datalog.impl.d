test/test_datalog.ml: Alcotest Atom Atomset Chase Kb List Printf Rule Syntax Term Zoo
