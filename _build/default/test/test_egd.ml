(* Tests for equality-generating dependencies: syntax, DLGP parsing, and
   the TGD+EGD chase engine. *)

open Syntax

let atom p args = Atom.make p args
let a = Term.const "a"
let b = Term.const "b"
let c = Term.const "c"

(* FD: the second column of emp is functionally determined by the first. *)
let fd_egd () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" ()
  and z = Term.fresh_var ~hint:"Z" () in
  Egd.make ~name:"fd" ~body:[ atom "emp" [ x; y ]; atom "emp" [ x; z ] ] y z

(* ------------------------------------------------------------------ *)
(* Egd module *)

let test_egd_make_validates () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" () in
  (match Egd.make ~body:[ atom "p" [ x ] ] x y with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "y not in body must be rejected");
  match Egd.make ~body:[ atom "p" [ x; y ] ] x y with
  | _ -> ()

let test_egd_rename_apart () =
  let e = fd_egd () in
  let e' = Egd.rename_apart e in
  let l, r = Egd.sides e' in
  Alcotest.(check bool) "sides are body vars" true
    (List.exists (Term.equal l) (Atomset.vars (Egd.body e'))
    && List.exists (Term.equal r) (Atomset.vars (Egd.body e')));
  let shared =
    List.filter
      (fun v -> List.exists (Term.equal v) (Atomset.vars (Egd.body e)))
      (Atomset.vars (Egd.body e'))
  in
  Alcotest.(check int) "no shared vars" 0 (List.length shared)

(* ------------------------------------------------------------------ *)
(* Violations and unification *)

let test_violations () =
  let e = fd_egd () in
  let inst =
    Atomset.of_list [ atom "emp" [ a; b ]; atom "emp" [ a; c ]; atom "emp" [ b; b ] ]
  in
  let vs = Chase.Variants.Egds.violations [ e ] inst in
  (* (b,c) and (c,b) both reported *)
  Alcotest.(check bool) "violations found" true (List.length vs >= 1)

let test_egd_chase_merges_nulls () =
  (* emp(a, Y) ∧ emp(a, Z) with nulls: Y and Z unify *)
  let y = Term.fresh_var ~hint:"Y" () and z = Term.fresh_var ~hint:"Z" () in
  let kb =
    Kb.with_egds [ fd_egd () ]
      (Kb.of_lists
         ~facts:[ atom "emp" [ a; y ]; atom "emp" [ a; z ]; atom "dept" [ y ] ]
         ~rules:[])
  in
  let run = Chase.Variants.Egds.run kb in
  Alcotest.(check bool) "terminated" true
    (run.Chase.Variants.Egds.outcome = Chase.Variants.Egds.Terminated);
  let final = List.nth run.Chase.Variants.Egds.trace
      (List.length run.Chase.Variants.Egds.trace - 1) in
  Alcotest.(check int) "one emp atom remains" 2 (Atomset.cardinal final);
  (* the dept mark survived on the merged null *)
  Alcotest.(check int) "one null" 1 (List.length (Atomset.vars final))

let test_egd_chase_prefers_constants () =
  let y = Term.fresh_var ~hint:"Y" () in
  let kb =
    Kb.with_egds [ fd_egd () ]
      (Kb.of_lists ~facts:[ atom "emp" [ a; b ]; atom "emp" [ a; y ] ] ~rules:[])
  in
  let run = Chase.Variants.Egds.run kb in
  let final = List.nth run.Chase.Variants.Egds.trace
      (List.length run.Chase.Variants.Egds.trace - 1) in
  Alcotest.(check bool) "null merged into the constant" true
    (Atomset.mem (atom "emp" [ a; b ]) final
    && List.length (Atomset.vars final) = 0)

let test_egd_chase_hard_failure () =
  let kb =
    Kb.with_egds [ fd_egd () ]
      (Kb.of_lists ~facts:[ atom "emp" [ a; b ]; atom "emp" [ a; c ] ] ~rules:[])
  in
  let run = Chase.Variants.Egds.run kb in
  match run.Chase.Variants.Egds.outcome with
  | Chase.Variants.Egds.Failed e ->
      Alcotest.(check string) "failing EGD" "fd" (Egd.name e)
  | _ -> Alcotest.fail "two distinct constants must fail"

let test_egd_interacts_with_tgds () =
  (* TGD invents a null office per employee; the FD on office merges them
     per department:
     emp(E, D) → ∃O office(D, O);  office(D,O) ∧ office(D,O') → O = O' *)
  let e = Term.fresh_var ~hint:"E" () and d = Term.fresh_var ~hint:"D" ()
  and o = Term.fresh_var ~hint:"O" () in
  let tgd =
    Rule.make ~name:"office"
      ~body:[ atom "emp" [ e; d ] ]
      ~head:[ atom "office" [ d; o ] ]
      ()
  in
  let d2 = Term.fresh_var ~hint:"D" () and o1 = Term.fresh_var ~hint:"O" ()
  and o2 = Term.fresh_var ~hint:"O'" () in
  let egd =
    Egd.make ~name:"unique-office"
      ~body:[ atom "office" [ d2; o1 ]; atom "office" [ d2; o2 ] ]
      o1 o2
  in
  let kb =
    Kb.with_egds [ egd ]
      (Kb.of_lists
         ~facts:[ atom "emp" [ a; c ]; atom "emp" [ b; c ] ]
         ~rules:[ tgd ])
  in
  let run = Chase.Variants.Egds.run kb in
  Alcotest.(check bool) "terminated" true
    (run.Chase.Variants.Egds.outcome = Chase.Variants.Egds.Terminated);
  let final = List.nth run.Chase.Variants.Egds.trace
      (List.length run.Chase.Variants.Egds.trace - 1) in
  let offices =
    Atomset.filter (fun at -> Atom.pred at = "office") final
  in
  Alcotest.(check int) "one office for the shared department" 1
    (Atomset.cardinal offices)

(* ------------------------------------------------------------------ *)
(* DLGP *)

let test_dlgp_egd () =
  match Dlgp.parse_string "X = Y :- p(Z, X), p(Z, Y)." with
  | Error e -> Alcotest.failf "%a" Dlgp.pp_error e
  | Ok doc -> (
      Alcotest.(check int) "one egd" 1 (List.length doc.Dlgp.egds);
      let egd = List.hd doc.Dlgp.egds in
      Alcotest.(check int) "binary body" 2 (Atomset.cardinal (Egd.body egd));
      let kb = Dlgp.kb_of_document doc in
      Alcotest.(check int) "kb carries it" 1 (List.length (Kb.egds kb));
      (* roundtrip *)
      let printed = Fmt.str "%a" Dlgp.print_document doc in
      match Dlgp.parse_string printed with
      | Ok doc' -> Alcotest.(check int) "roundtrip" 1 (List.length doc'.Dlgp.egds)
      | Error e -> Alcotest.failf "roundtrip: %a" Dlgp.pp_error e)

let test_dlgp_egd_rejects_constant_side () =
  match Dlgp.parse_string "X = a :- p(X)." with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "constant on the right must be rejected"

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "egd",
      [
        tc "make validates" test_egd_make_validates;
        tc "rename apart" test_egd_rename_apart;
        tc "violations" test_violations;
        tc "merges nulls" test_egd_chase_merges_nulls;
        tc "prefers constants" test_egd_chase_prefers_constants;
        tc "hard failure" test_egd_chase_hard_failure;
        tc "TGD+EGD interaction" test_egd_interacts_with_tgds;
        tc "DLGP syntax" test_dlgp_egd;
        tc "DLGP rejects constants" test_dlgp_egd_rejects_constant_side;
      ] );
  ]
