lib/syntax/fol.mli: Atom Atomset Fmt Kb Rule Term Ucq
