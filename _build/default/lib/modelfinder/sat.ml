type result = Sat of bool array | Unsat

(* Assignment codes: 0 unassigned, 1 true, -1 false. *)

let lit_var l = abs l

let lit_sign l = l > 0

let value assign l =
  let v = assign.(lit_var l) in
  if v = 0 then 0 else if lit_sign l then v else -v

let solve ~nvars clauses =
  List.iter
    (List.iter (fun l ->
         if l = 0 || abs l > nvars then
           invalid_arg "Sat.solve: literal out of range"))
    clauses;
  let clauses = Array.of_list (List.map Array.of_list clauses) in
  let nclauses = Array.length clauses in
  let assign = Array.make (nvars + 1) 0 in
  let trail = ref [] in
  (* occurrence lists: clauses containing each variable *)
  let occurs = Array.make (nvars + 1) [] in
  Array.iteri
    (fun ci c ->
      Array.iter (fun l -> occurs.(lit_var l) <- ci :: occurs.(lit_var l)) c)
    clauses;
  let set l =
    assign.(lit_var l) <- (if lit_sign l then 1 else -1);
    trail := lit_var l :: !trail
  in
  let undo_to mark =
    while !trail != mark do
      match !trail with
      | v :: rest ->
          assign.(v) <- 0;
          trail := rest
      | [] -> assert false
    done
  in
  (* Unit propagation over the clauses touched by the queue of newly
     assigned variables; returns false on conflict. *)
  let exception Conflict in
  let propagate queue0 =
    let queue = Queue.create () in
    List.iter (fun v -> Queue.add v queue) queue0;
    try
      (* first pass: all clauses once (to catch initial units) *)
      let scan ci =
        let c = clauses.(ci) in
        let sat = ref false in
        let unassigned = ref 0 in
        let last = ref 0 in
        Array.iter
          (fun l ->
            match value assign l with
            | 1 -> sat := true
            | 0 ->
                incr unassigned;
                last := l
            | _ -> ())
          c;
        if not !sat then
          if !unassigned = 0 then raise Conflict
          else if !unassigned = 1 then begin
            set !last;
            Queue.add (lit_var !last) queue
          end
      in
      if queue0 = [] then
        for ci = 0 to nclauses - 1 do
          scan ci
        done;
      while not (Queue.is_empty queue) do
        let v = Queue.take queue in
        List.iter scan occurs.(v)
      done;
      true
    with Conflict -> false
  in
  let rec search () =
    (* pick first unassigned variable *)
    let rec pick v = if v > nvars then 0 else if assign.(v) = 0 then v else pick (v + 1) in
    let v = pick 1 in
    if v = 0 then true
    else
      let mark = !trail in
      let try_phase phase =
        set (if phase then v else -v);
        if propagate [ v ] && search () then true
        else begin
          undo_to mark;
          false
        end
      in
      try_phase true || try_phase false
  in
  if not (propagate []) then Unsat
  else if search () then begin
    let model = Array.make (nvars + 1) false in
    for v = 1 to nvars do
      model.(v) <- assign.(v) = 1
    done;
    Sat model
  end
  else Unsat

let is_satisfying clauses model =
  List.for_all
    (List.exists (fun l ->
         let v = model.(lit_var l) in
         if lit_sign l then v else not v))
    clauses
