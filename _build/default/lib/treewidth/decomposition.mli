(** Tree decompositions (Definition 4).

    A tree decomposition of an atomset [A] is a tree whose vertices ("bags")
    are sets of terms of [A] such that (i) every atom's terms fit in some
    bag and (ii) for each term, the bags containing it induce a connected
    subtree.  The width is the largest bag size minus one. *)

open Syntax

type t = { bags : Term.t list array; edges : (int * int) list }
(** [bags.(i)] is the i-th bag (terms, no duplicates); [edges] are
    undirected tree edges between bag indices. *)

val width : t -> int
(** Largest bag size minus one; [-1] for the empty decomposition. *)

val is_tree : t -> bool
(** The edge set forms a tree (or forest — a forest is accepted, as a
    decomposition of a disconnected atomset naturally is one). *)

val covers : Atomset.t -> t -> bool
(** Condition (i): every atom's terms lie inside some single bag. *)

val connected : t -> bool
(** Condition (ii): for every term, the bags containing it induce a
    connected subgraph of the (forest) decomposition. *)

val is_valid : Atomset.t -> t -> bool
(** Conjunction of {!is_tree}, {!covers} and {!connected}, plus: every bag
    contains only terms of the atomset. *)

val trivial : Atomset.t -> t
(** The single-bag decomposition (width = #terms - 1). *)

val pp : t Fmt.t
