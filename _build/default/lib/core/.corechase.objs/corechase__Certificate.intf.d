lib/core/certificate.mli: Chase Fmt Kb Subst Syntax
