lib/homo/hom.ml: Atom Atomset Instance List Option Set String Subst Syntax Term
