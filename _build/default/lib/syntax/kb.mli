(** Knowledge bases (Section 2): [K = (F, Σ)] with [F] a finite instance and
    [Σ] a finite ruleset, together with Boolean conjunctive queries. *)

type t = private {
  facts : Atomset.t;
  rules : Rule.t list;
  egds : Egd.t list;  (** equality-generating dependencies, default [] *)
}

val make : facts:Atomset.t -> rules:Rule.t list -> t
(** No EGDs; attach them with {!with_egds}. *)

val of_lists : facts:Atom.t list -> rules:Rule.t list -> t

val with_egds : Egd.t list -> t -> t

val facts : t -> Atomset.t

val rules : t -> Rule.t list

val egds : t -> Egd.t list

val preds : t -> (string * int) list
(** All (predicate, arity) pairs of facts and rules. *)

val consts : t -> Term.t list
(** All constants of facts and rules. *)

val pp : t Fmt.t

(** Boolean conjunctive queries are finite atomsets; we give them a named
    wrapper for clarity of APIs. *)
module Query : sig
  type kb := t

  type t = private {
    name : string;
    atoms : Atomset.t;
    answer_vars : Term.t list;
        (** distinguished (answer) variables; empty for Boolean queries *)
  }

  val make : ?name:string -> ?answers:Term.t list -> Atom.t list -> t
  (** @raise Invalid_argument on the empty query or when an answer
      variable does not occur in the atoms. *)

  val of_atomset : ?name:string -> ?answers:Term.t list -> Atomset.t -> t

  val atoms : t -> Atomset.t

  val name : t -> string

  val answer_vars : t -> Term.t list

  val is_boolean : t -> bool

  val vars : t -> Term.t list

  val pp : t Fmt.t

  val well_formed : kb -> t -> bool
  (** Arity-consistency of the query against the KB's schema usage. *)
end
