(** The `corechase serve' wire protocol (DESIGN.md §15): a pure codec,
    no I/O.  The protocol state machine is specified by this module's
    tests (round-trip laws, typed rejection of malformed input), not by
    the daemon that happens to speak it.

    {2 Frames}

    Every message is one frame:

    {v corechase/<version> <kind> <len>\n<len payload bytes>\n v}

    — a line-oriented versioned header followed by a length-prefixed
    payload (binary-safe: the payload may contain anything, including
    newlines) and a terminating newline.  The server greets with a
    [hello] frame; the client sends [req] frames; each request is
    answered by zero or more [data]/[event] frames followed by exactly
    one [ok] or [err] frame; [bye] closes the conversation.

    {2 Conversation grammar}

    {v
    server:  hello
    repeat:  client: req        (payload: a request, see {!request})
             server: (data | event)* (ok | err)
    finally: server: bye        (after SHUTDOWN, QUIT-by-EOF, or drain)
    v} *)

val version : int
(** Wire version spoken by this build (1). *)

val magic : string
(** The header magic, ["corechase"]. *)

val max_payload : int
(** Maximum payload bytes a frame may carry (1 MiB).  Longer payloads
    must be split into multiple [data] frames ({!data_frames}). *)

type kind =
  | K_hello  (** server greeting, sent once per connection *)
  | K_req  (** client request; payload parses with {!parse_request} *)
  | K_ok  (** final success frame of a response *)
  | K_err  (** final failure frame; payload parses with {!parse_err} *)
  | K_data  (** response body line(s) *)
  | K_event  (** streaming progress during a long chase *)
  | K_bye  (** connection end *)

val kind_name : kind -> string
(** Wire token: [hello], [req], [ok], [err], [data], [event], [bye]. *)

val kind_of_name : string -> kind option

type frame = { kind : kind; payload : string }

(** Typed decode errors.  {!Truncated} means the buffer holds a valid
    but incomplete frame — a streaming reader waits for more bytes;
    every other constructor is a protocol violation and the connection
    answers with one [err] frame and closes. *)
type error =
  | Truncated  (** more bytes needed to complete the frame *)
  | Bad_magic of string  (** header does not start with [corechase/] *)
  | Bad_version of string  (** unparseable or unsupported version *)
  | Bad_kind of string  (** unknown frame kind token *)
  | Bad_length of string  (** unparseable length prefix *)
  | Oversized of int  (** length prefix exceeds {!max_payload} *)
  | Bad_terminator  (** payload not followed by the closing newline *)

val pp_error : error Fmt.t

val error_code : error -> string
(** Stable kebab-case id ([truncated], [bad-magic], …) used in [err]
    frame payloads and assertions. *)

val encode : frame -> string
(** Wire bytes of one frame.
    @raise Invalid_argument when the payload exceeds {!max_payload}. *)

val decode : ?pos:int -> string -> (frame * int, error) result
(** [decode ~pos buf] parses one frame starting at [pos] (default 0),
    returning the frame and the number of bytes consumed.  Total
    round-trip law: [decode (encode f) = Ok (f, String.length (encode
    f))], and every strict prefix of [encode f] decodes to [Error
    Truncated].  Never raises, whatever the bytes. *)

val decode_all : string -> (frame list * int, error * int) result
(** Decode as many complete frames as the buffer holds, returning them
    with the total bytes consumed; a trailing incomplete frame is left
    unconsumed (not an error).  A malformed frame yields [Error (e,
    consumed_before_it)]. *)

val hello_frame : frame
(** The greeting the server opens every connection with. *)

val data_frames : string -> frame list
(** The text as one or more [data] frames, split at {!max_payload}
    boundaries (one frame for ordinary payloads). *)

val clamp : frame -> frame list
(** Make any frame encodable: an oversized [data] payload is split via
    {!data_frames}; any other oversized kind is truncated in place with
    a [" \[truncated\]"] marker (single-frame response positions cannot
    split).  Frames within {!max_payload} pass through untouched.
    Every frame the server queues goes through this, so {!encode} never
    raises on the response path however large a rendered answer line,
    metrics dump, or session listing gets. *)

(** {2 Requests}

    The payload of a [req] frame is line-oriented text: a command word,
    positional arguments and [key=value] options on the first line
    (parsed with {!Repl.Cmdline}), and — for [LOAD … inline] and
    [ENTAIL] — a verbatim multi-line body after it. *)

type source =
  | From_path of string  (** server-side DLGP file path *)
  | From_text of string  (** inline DLGP text shipped in the payload *)

type request =
  | Open of string  (** [OPEN name]: create a named session *)
  | Load of { session : string; source : source }
      (** [LOAD name path P] | [LOAD name inline\n<dlgp>]: set the KB *)
  | Chase of {
      session : string;
      variant : Chase.variant;
      steps : int;
      atoms : int;
    }
      (** [CHASE name \[variant=core\] \[steps=500\] \[atoms=20000\]]:
          run the chase writer, stamp a new snapshot generation *)
  | Entail of { session : string; query : string }
      (** [ENTAIL name\n<dlgp query>]: decide one query against the
          session's snapshot (reader path) *)
  | Analyze of string
      (** [ANALYZE name]: termination analysis, cached per generation *)
  | Stats of string  (** [STATS name]: session counters *)
  | Close of string  (** [CLOSE name]: drop the session *)
  | Ping  (** [PING] → [ok pong] *)
  | Metrics  (** admin: dump the {!Obs.Metrics} registry *)
  | Sessions  (** admin: list open sessions *)
  | Shutdown  (** admin: graceful shutdown with drain *)

val session_name_ok : string -> bool
(** Valid session names: nonempty, [A-Za-z0-9_.-] only. *)

val variant_of_name : string -> Chase.variant option
(** The CHASE argument's variant names ([oblivious] … [core]); also the
    inverse of [Chase.variant_name], used when replaying journaled
    chase records (DESIGN.md §16). *)

val parse_request : string -> (request, string) result
(** Parse a [req] payload; the error string is human-readable and
    becomes a [bad-request] err frame. *)

val print_request : request -> string
(** Canonical payload text.  Round-trip law: [parse_request
    (print_request r) = Ok r] for every well-formed [r] (session names
    satisfying {!session_name_ok}, paths single-line, budgets
    positive). *)

(** {2 Error frames} *)

type err_code =
  | Bad_request  (** unparseable or ill-formed request *)
  | Unknown_session
  | Session_exists
  | No_kb  (** the session has no KB loaded yet *)
  | Busy  (** the session's chase writer is already running *)
  | Chase_stopped
      (** the chase writer was stopped by a non-budget interruption
          (deadline, cancellation, caught resource exhaustion); the
          session survives with its last consistent snapshot *)
  | Io_error
  | Shutting_down
  | Protocol_violation  (** framing error; the connection closes *)

val err_code_name : err_code -> string

val err_code_of_name : string -> err_code option

val err_frame : err_code -> string -> frame
(** [err] frame with payload [<code>: <message>]. *)

val parse_err : string -> (err_code * string) option
(** Parse an [err] payload back.  Round-trip law:
    [parse_err (err_frame c m).payload = Some (c, m)]. *)
