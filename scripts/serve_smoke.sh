#!/usr/bin/env bash
# End-to-end smoke for `corechase serve` over a real Unix socket.
#
# Phase 1: a full session lifecycle (open -> load -> chase -> entail ->
#   analyze -> stats -> close -> shutdown) against a daemon writing a
#   JSONL trace.  Everything runs inside a mktemp scratch dir; set
#   SERVE_SMOKE_ARTIFACT_DIR to also export the trace there for CI to
#   upload (nothing is ever written into the repository itself).
# Phase 2: the same daemon under a low open-file limit (ulimit -n),
#   flooded with held-open connections so accept(2) hits EMFILE; the
#   server must log accept failures, keep serving, and still drain
#   cleanly.  Requires python3 to hold the flood open; the phase is
#   skipped (with a note) when python3 is missing.
# Phase 3: durability (DESIGN.md §16) — a daemon journaling to --wal is
#   kill -9'd mid-life, restarted on the same directory, and must answer
#   the same ENTAIL byte-identically.
#
# Usage: scripts/serve_smoke.sh [path-to-corechase-binary]
set -eu

CC=${1:-_build/install/default/bin/corechase}
test -x "$CC" || { echo "corechase binary not found at $CC (build first)"; exit 3; }
CC=$(realpath "$CC")

dir=$(mktemp -d)
cleanup() {
  [ -n "${srv:-}" ] && kill "$srv" 2>/dev/null || true
  [ -n "${srv2:-}" ] && kill "$srv2" 2>/dev/null || true
  [ -n "${srv3:-}" ] && kill -9 "$srv3" 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

wait_ready() {
  for _ in $(seq 100); do test -f "$1" && return 0; sleep 0.1; done
  echo "server did not come up ($1)"; exit 1
}

cat > "$dir/kb.dlgp" <<'KB'
parent(alice, bob).
parent(bob, carol).
[anc-base] ancestor(X, Y) :- parent(X, Y).
[anc-rec]  ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
KB

echo "== phase 1: lifecycle with a JSONL trace"
"$CC" serve --listen "unix:$dir/s.sock" --ready-file "$dir/ready" \
    --trace "$dir/serve-trace.jsonl" --quiet &
srv=$!
wait_ready "$dir/ready"

"$CC" client -c "unix:$dir/s.sock" \
  "PING" \
  "OPEN kb" \
  "LOAD kb path $dir/kb.dlgp" \
  "CHASE kb variant=restricted steps=100" \
  "ENTAIL kb\n? :- ancestor(alice, carol)." \
  "ANALYZE kb" \
  "STATS kb" \
  "CLOSE kb" \
  "SHUTDOWN"

wait "$srv"; srv=
test -s "$dir/serve-trace.jsonl" || { echo "no trace written"; exit 1; }
grep -q '"ev":"session_event"' "$dir/serve-trace.jsonl" || {
  echo "trace has no session events"; head -5 "$dir/serve-trace.jsonl"; exit 1; }
if [ -n "${SERVE_SMOKE_ARTIFACT_DIR:-}" ]; then
  mkdir -p "$SERVE_SMOKE_ARTIFACT_DIR"
  cp "$dir/serve-trace.jsonl" "$SERVE_SMOKE_ARTIFACT_DIR/serve-trace.jsonl"
fi
echo "trace: $(wc -l < "$dir/serve-trace.jsonl") events"

phase3() {
  echo "== phase 3: kill -9 + restart on the same --wal answers identically"
  "$CC" serve --listen "unix:$dir/s3.sock" --ready-file "$dir/ready3" \
      --wal "$dir/wal" --quiet &
  srv3=$!
  wait_ready "$dir/ready3"
  "$CC" client -c "unix:$dir/s3.sock" \
    "OPEN kb" \
    "LOAD kb path $dir/kb.dlgp" \
    "CHASE kb variant=restricted steps=100" \
    "ENTAIL kb\n? :- ancestor(alice, carol)." > "$dir/before.txt"
  kill -9 "$srv3"; wait "$srv3" 2>/dev/null || true; srv3=
  rm -f "$dir/s3.sock" "$dir/ready3"
  "$CC" serve --listen "unix:$dir/s3.sock" --ready-file "$dir/ready3" \
      --wal "$dir/wal" --quiet &
  srv3=$!
  wait_ready "$dir/ready3"
  "$CC" client -c "unix:$dir/s3.sock" \
    "ENTAIL kb\n? :- ancestor(alice, carol)." > "$dir/after.txt"
  "$CC" client -c "unix:$dir/s3.sock" "SHUTDOWN" >/dev/null
  wait "$srv3"; srv3=
  # the restarted daemon's answer must be byte-identical to the line the
  # dead daemon gave for the same query
  grep 'ancestor' "$dir/before.txt" > "$dir/before-entail.txt"
  grep 'ancestor' "$dir/after.txt"  > "$dir/after-entail.txt"
  cmp "$dir/before-entail.txt" "$dir/after-entail.txt" || {
    echo "restart changed the ENTAIL answer"; exit 1; }
  echo "durability: restart answered byte-identically"
  echo "serve smoke: OK"
}

echo "== phase 2: accept-failure handling under ulimit -n 20"
if ! command -v python3 >/dev/null 2>&1; then
  echo "python3 not available; skipping the connection flood"
  phase3
  exit 0
fi

bash -c "ulimit -n 20 && exec \"$CC\" serve --listen \"unix:$dir/s2.sock\" \
    --ready-file \"$dir/ready2\" --metrics --quiet" &
srv2=$!
wait_ready "$dir/ready2"

# hold ~64 connections open for a second: the 20-fd server exhausts its
# descriptors, accept(2) returns EMFILE, and the loop must back off and
# survive rather than die or spin
python3 - "$dir/s2.sock" <<'PY'
import socket, sys, time
socks = []
for _ in range(64):
    try:
        s = socket.socket(socket.AF_UNIX)
        s.settimeout(2)
        s.connect(sys.argv[1])
        socks.append(s)
    except OSError:
        pass
time.sleep(1.0)
for s in socks:
    s.close()
print(f"flood: held {len(socks)} connections")
PY

# descriptors are free again: the server must still answer, report the
# accept failures it absorbed, and drain cleanly
out=$("$CC" client -c "unix:$dir/s2.sock" "PING" "METRICS" "SHUTDOWN")
echo "$out"
echo "$out" | grep -q "ok: pong" || { echo "server did not survive the flood"; exit 1; }
echo "$out" | grep -q "serve.accept_failures" || {
  echo "no accept failures recorded (flood too small for this limit?)"; exit 1; }
wait "$srv2"; srv2=

phase3
