lib/zoo/staircase.ml: Array Atom Atomset Kb List Printf Rule Syntax Term
