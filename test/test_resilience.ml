(* Tests for lib/resilience and its threading through the chase engines
   (DESIGN.md §11): budget boundary conditions, deadlines, cancellation,
   caught resource exhaustion, the hom depth guard, deterministic fault
   injection, and the checkpoint/resume exactness differential. *)

open Syntax

let tc name f = Alcotest.test_case name `Quick f

let reset () = Term.reset_counter_for_tests ()

let atom p args = Atom.make p args

let small = { Chase.Variants.max_steps = 12; max_atoms = 5_000 }

(* a KB with work to do (infinite chain) *)
let kb_chain () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" ()
  and z = Term.fresh_var ~hint:"Z" () in
  Kb.of_lists
    ~facts:[ atom "r" [ Term.const "a"; Term.const "b" ] ]
    ~rules:
      [ Rule.make ~name:"chain" ~body:[ atom "r" [ x; y ] ]
          ~head:[ atom "r" [ y; z ] ] () ]

(* the four Definition-1 engines under test *)
type runner = {
  ename : string;
  erun :
    ?token:Resilience.Token.t ->
    ?resume:Chase.Variants.engine_state ->
    ?checkpoint:(Chase.Variants.engine_state -> unit) ->
    budget:Chase.Variants.budget ->
    Kb.t ->
    Chase.Variants.run;
}

let runners =
  [
    {
      ename = "restricted";
      erun =
        (fun ?token ?resume ?checkpoint ~budget kb ->
          Chase.Variants.restricted ~budget ?token ?resume ?checkpoint kb);
    };
    {
      ename = "frugal";
      erun =
        (fun ?token ?resume ?checkpoint ~budget kb ->
          Chase.Variants.frugal ~budget ?token ?resume ?checkpoint kb);
    };
    {
      ename = "core-app";
      erun =
        (fun ?token ?resume ?checkpoint ~budget kb ->
          Chase.Variants.core ~budget ?token ?resume ?checkpoint kb);
    };
    {
      ename = "core-round";
      erun =
        (fun ?token ?resume ?checkpoint ~budget kb ->
          Chase.Variants.core ~cadence:Chase.Variants.Every_round ~budget
            ?token ?resume ?checkpoint kb);
    };
  ]

(* ------------------------------------------------------------------ *)
(* Budget boundary conditions: every engine returns a well-formed run,
   never raises *)

let test_zero_step_budget () =
  List.iter
    (fun r ->
      reset ();
      let run =
        r.erun ~budget:{ Chase.Variants.max_steps = 0; max_atoms = 5_000 }
          (kb_chain ())
      in
      Alcotest.(check bool)
        (r.ename ^ ": step budget") true
        (run.Chase.Variants.outcome = Chase.Variants.Step_budget);
      Alcotest.(check int)
        (r.ename ^ ": no step applied") 1
        (Chase.Derivation.length run.Chase.Variants.derivation))
    runners

let test_atom_budget_below_initial () =
  List.iter
    (fun r ->
      reset ();
      (* the chain KB starts with 1 atom; max_atoms = 0 is already
         exceeded at F_0 *)
      let run =
        r.erun ~budget:{ Chase.Variants.max_steps = 50; max_atoms = 0 }
          (kb_chain ())
      in
      Alcotest.(check bool)
        (r.ename ^ ": atom budget") true
        (run.Chase.Variants.outcome = Chase.Variants.Atom_budget);
      Alcotest.(check int)
        (r.ename ^ ": start element only") 1
        (Chase.Derivation.length run.Chase.Variants.derivation))
    runners

let test_pre_expired_deadline () =
  List.iter
    (fun r ->
      reset ();
      let token = Resilience.Token.create ~deadline_s:0.0 () in
      let run = r.erun ~token ~budget:small (kb_chain ()) in
      Alcotest.(check bool)
        (r.ename ^ ": deadline") true
        (run.Chase.Variants.outcome = Chase.Variants.Deadline);
      (* the last consistent instance is still there *)
      Alcotest.(check bool)
        (r.ename ^ ": well-formed derivation") true
        (Chase.Derivation.length run.Chase.Variants.derivation >= 1))
    runners

let test_baselines_and_egds_boundaries () =
  reset ();
  let token = Resilience.Token.create ~deadline_s:0.0 () in
  let ob = Chase.Variants.Baseline.oblivious ~budget:small ~token (kb_chain ()) in
  Alcotest.(check bool) "oblivious deadline" true
    (ob.Chase.Variants.Baseline.outcome = Chase.Variants.Deadline
    && not ob.Chase.Variants.Baseline.terminated);
  reset ();
  let sk =
    Chase.Variants.Baseline.skolem
      ~budget:{ Chase.Variants.max_steps = 0; max_atoms = 100 }
      (kb_chain ())
  in
  Alcotest.(check bool) "skolem step budget" true
    (sk.Chase.Variants.Baseline.outcome = Chase.Variants.Step_budget);
  reset ();
  let eg =
    Chase.Variants.Egds.run
      ~budget:{ Chase.Variants.max_steps = 0; max_atoms = 100 }
      (kb_chain ())
  in
  Alcotest.(check bool) "egds step budget" true
    (eg.Chase.Variants.Egds.outcome
    = Chase.Variants.Egds.Stopped Chase.Variants.Step_budget)

(* ------------------------------------------------------------------ *)
(* Cancellation mid-run: flip the token from the round-boundary hook *)

let test_cancellation_mid_run () =
  List.iter
    (fun r ->
      reset ();
      let token = Resilience.Token.create () in
      let rounds_seen = ref 0 in
      let run =
        r.erun ~token
          ~checkpoint:(fun _ ->
            incr rounds_seen;
            Resilience.Token.cancel token)
          ~budget:small (kb_chain ())
      in
      Alcotest.(check bool)
        (r.ename ^ ": cancelled") true
        (run.Chase.Variants.outcome = Chase.Variants.Cancelled);
      Alcotest.(check bool)
        (r.ename ^ ": saw a round boundary") true (!rounds_seen >= 1))
    runners

(* ------------------------------------------------------------------ *)
(* Fault injection: seeded faults surface as the documented outcomes,
   with the last consistent instance intact *)

let with_faults spec f =
  Resilience.Fault.set_spec spec;
  Fun.protect ~finally:Resilience.Fault.clear f

let test_fault_kinds () =
  List.iter
    (fun (spec, expected) ->
      reset ();
      with_faults spec (fun () ->
          let run = Chase.Variants.restricted ~budget:small (kb_chain ()) in
          Alcotest.(check bool)
            (spec ^ " outcome") true
            (run.Chase.Variants.outcome = expected);
          Alcotest.(check bool)
            (spec ^ " consistent instance") true
            (Chase.Derivation.validate run.Chase.Variants.derivation
            = Ok ())))
    [
      ("step:2:stack_overflow", Chase.Variants.Resource `Stack_overflow);
      ("step:2:out_of_memory", Chase.Variants.Resource `Out_of_memory);
      ("round:2:deadline", Chase.Variants.Deadline);
      ("step:3:cancel", Chase.Variants.Cancelled);
    ]

let test_fault_census_counts () =
  reset ();
  let before = Resilience.Fault.hits "step" in
  with_faults "step:4:cancel" (fun () ->
      ignore (Chase.Variants.restricted ~budget:small (kb_chain ())));
  Alcotest.(check bool) "step site was exercised" true
    (Resilience.Fault.hits "step" >= before + 4)

let test_fault_in_core_fold () =
  reset ();
  with_faults "fold:1:out_of_memory" (fun () ->
      let run = Chase.Variants.core ~budget:small (kb_chain ()) in
      Alcotest.(check bool) "fold fault caught" true
        (run.Chase.Variants.outcome
        = Chase.Variants.Resource `Out_of_memory))

(* ------------------------------------------------------------------ *)
(* Hom depth guard: a source beyond the depth bound raises a synthetic
   Stack_overflow instead of risking the real one deep in the search *)

let test_hom_depth_guard_direct () =
  reset ();
  let chain n =
    List.init n (fun i ->
        atom "p"
          [ Term.const (Printf.sprintf "c%d" i);
            Term.const (Printf.sprintf "c%d" (i + 1)) ])
    |> Atomset.of_list
  in
  let src = chain 10 and tgt = chain 10 in
  let saved = !Homo.Hom.max_depth in
  Fun.protect
    ~finally:(fun () -> Homo.Hom.max_depth := saved)
    (fun () ->
      Homo.Hom.max_depth := 5;
      (match Homo.Hom.maps_to src tgt with
      | _ -> Alcotest.fail "expected Stack_overflow from the depth guard"
      | exception Stack_overflow -> ());
      Homo.Hom.max_depth := saved;
      Alcotest.(check bool) "identity hom found below the bound" true
        (Homo.Hom.maps_to src tgt))

let test_hom_depth_guard_reaches_engine_boundary () =
  reset ();
  let saved = !Homo.Hom.max_depth in
  Fun.protect
    ~finally:(fun () -> Homo.Hom.max_depth := saved)
    (fun () ->
      (* the chain instance quickly outgrows a tiny depth bound, so the
         core engine's fold search trips the guard; the engine reports
         it as an outcome instead of crashing *)
      Homo.Hom.max_depth := 2;
      let run = Chase.Variants.core ~budget:small (kb_chain ()) in
      Alcotest.(check bool) "engine caught the overflow" true
        (run.Chase.Variants.outcome
        = Chase.Variants.Resource `Stack_overflow))

(* ------------------------------------------------------------------ *)
(* Outcome naming round trip *)

let test_outcome_names () =
  List.iter
    (fun o ->
      match Resilience.outcome_of_name (Resilience.outcome_name o) with
      | Some o' ->
          Alcotest.(check bool)
            (Resilience.outcome_name o ^ " round trip") true (o = o')
      | None -> Alcotest.fail "outcome_of_name failed")
    [
      Resilience.Fixpoint; Resilience.Step_budget; Resilience.Atom_budget;
      Resilience.Deadline; Resilience.Resource `Stack_overflow;
      Resilience.Resource `Out_of_memory; Resilience.Cancelled;
    ]

(* ------------------------------------------------------------------ *)
(* Checkpoint file round trip *)

let test_checkpoint_roundtrip () =
  reset ();
  let kb = kb_chain () in
  let states = ref [] in
  let (_ : Chase.Variants.run) =
    Chase.Variants.restricted ~budget:small
      ~checkpoint:(fun st -> states := st :: !states)
      kb
  in
  Alcotest.(check bool) "some rounds completed" true (!states <> []);
  let state = List.hd !states in
  let path = Filename.temp_file "corechase" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Chase.Checkpoint.save ~path ~engine:"restricted" ~budget:small state;
      match Chase.Checkpoint.load kb path with
      | Error m -> Alcotest.fail m
      | Ok (header, budget, state') ->
          Alcotest.(check string) "engine" "restricted"
            header.Chase.Checkpoint.engine;
          Alcotest.(check int) "max_steps" small.Chase.Variants.max_steps
            budget.Chase.Variants.max_steps;
          Alcotest.(check int) "steps done" state.Chase.Variants.state_steps
            state'.Chase.Variants.state_steps;
          Alcotest.(check int) "rounds done" state.Chase.Variants.state_rounds
            state'.Chase.Variants.state_rounds;
          let d = state.Chase.Variants.state_derivation
          and d' = state'.Chase.Variants.state_derivation in
          Alcotest.(check int) "derivation length"
            (Chase.Derivation.length d)
            (Chase.Derivation.length d');
          List.iter2
            (fun (a : Chase.Derivation.step) (b : Chase.Derivation.step) ->
              Alcotest.(check bool) "instances equal" true
                (Atomset.equal a.Chase.Derivation.instance
                   b.Chase.Derivation.instance);
              Alcotest.(check bool) "pre-instances equal" true
                (Atomset.equal a.Chase.Derivation.pre_instance
                   b.Chase.Derivation.pre_instance);
              Alcotest.(check bool) "simplifications equal" true
                (Subst.equal a.Chase.Derivation.simplification
                   b.Chase.Derivation.simplification))
            (Chase.Derivation.steps d)
            (Chase.Derivation.steps d');
          match
            ( state.Chase.Variants.state_snapshot,
              state'.Chase.Variants.state_snapshot )
          with
          | Some s, Some s' ->
              Alcotest.(check bool) "snapshots equal" true (Atomset.equal s s')
          | None, None -> ()
          | _ -> Alcotest.fail "snapshot presence differs")

let test_checkpoint_bad_inputs () =
  reset ();
  let kb = kb_chain () in
  (match Chase.Checkpoint.load kb "/nonexistent/corechase.ckpt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error for a missing file");
  let path = Filename.temp_file "corechase" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc "not a checkpoint\n";
      close_out oc;
      (match Chase.Checkpoint.load kb path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected an error for garbage");
      let oc = open_out path in
      output_string oc "CORECHASE-CHECKPOINT 999\nengine restricted\n";
      close_out oc;
      match Chase.Checkpoint.load kb path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected a version error")

(* ------------------------------------------------------------------ *)
(* Kill/resume differential: for every engine and workload, a run killed
   by an injected fault and resumed from its last on-disk checkpoint
   must agree step for step with the uninterrupted run — same
   derivation, same final instance, same outcome.  Exercised at jobs=1
   and jobs=4 (the deterministic pool keeps runs identical). *)

let diff_budget = { Chase.Variants.max_steps = 30; max_atoms = 5_000 }

let workloads =
  [
    ("transitive-closure", Zoo.Classic.transitive_closure);
    ("staircase", Zoo.Staircase.kb);
    ("elevator", Zoo.Elevator.kb);
    ("randomkb", fun () -> Zoo.Randomkb.generate ~seed:7 Zoo.Randomkb.datalog);
  ]

let same_run label (a : Chase.Variants.run) (b : Chase.Variants.run) =
  Alcotest.(check bool)
    (label ^ ": same outcome") true
    (a.Chase.Variants.outcome = b.Chase.Variants.outcome);
  Alcotest.(check int)
    (label ^ ": same rounds")
    a.Chase.Variants.rounds b.Chase.Variants.rounds;
  let da = a.Chase.Variants.derivation and db = b.Chase.Variants.derivation in
  Alcotest.(check int)
    (label ^ ": same length")
    (Chase.Derivation.length da)
    (Chase.Derivation.length db);
  List.iter2
    (fun (x : Chase.Derivation.step) (y : Chase.Derivation.step) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: step %d pre-instance" label
           x.Chase.Derivation.index)
        true
        (Atomset.equal x.Chase.Derivation.pre_instance
           y.Chase.Derivation.pre_instance);
      Alcotest.(check bool)
        (Printf.sprintf "%s: step %d simplification" label
           x.Chase.Derivation.index)
        true
        (Subst.equal x.Chase.Derivation.simplification
           y.Chase.Derivation.simplification);
      Alcotest.(check bool)
        (Printf.sprintf "%s: step %d instance" label x.Chase.Derivation.index)
        true
        (Atomset.equal x.Chase.Derivation.instance y.Chase.Derivation.instance))
    (Chase.Derivation.steps da)
    (Chase.Derivation.steps db)

(* One kill/resume round trip: reference run; a run with [spec] faults
   armed and a checkpoint hook persisting every completed round; then —
   simulating a fresh process — counters reset, KB rebuilt, checkpoint
   reloaded and the run resumed.  If the fault never fired (the workload
   stopped first), the killed run itself must already equal the
   reference. *)
let differential ~spec r (wname, build) =
  let label = Printf.sprintf "%s/%s[%s]" r.ename wname spec in
  reset ();
  let reference = r.erun ~budget:diff_budget (build ()) in
  reset ();
  let kb2 = build () in
  let path = Filename.temp_file "corechase" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let wrote = ref false in
      let killed =
        with_faults spec (fun () ->
            r.erun ~budget:diff_budget
              ~checkpoint:(fun st ->
                wrote := true;
                Chase.Checkpoint.save ~path ~engine:r.ename
                  ~budget:diff_budget st)
              kb2)
      in
      if not !wrote then same_run label reference killed
      else begin
        (* fresh "process": counters reset, the KB re-parsed the same
           deterministic way, then the checkpoint reloaded (which
           re-pins the freshness counters) before any new term exists *)
        reset ();
        let kb3 = build () in
        match Chase.Checkpoint.load kb3 path with
        | Error m -> Alcotest.fail (label ^ ": " ^ m)
        | Ok (_, budget, state) ->
            let resumed = r.erun ~budget ~resume:state kb3 in
            same_run label reference resumed
      end)

let differential_all () =
  List.iter
    (fun r ->
      List.iter
        (fun w ->
          (* a clean round-boundary kill and a mid-round one *)
          differential ~spec:"round:3:cancel" r w;
          differential ~spec:"step:7:out_of_memory" r w)
        workloads)
    runners

let test_kill_resume_differential_jobs1 () =
  Par.with_jobs 1 differential_all

let test_kill_resume_differential_jobs4 () =
  Par.with_jobs 4 differential_all

(* resuming a budget-stopped run with a larger budget continues it to
   exactly the run the larger budget produces from scratch *)
let test_resume_after_clean_budget_stop () =
  let big = { Chase.Variants.max_steps = 24; max_atoms = 5_000 } in
  List.iter
    (fun r ->
      reset ();
      let reference = r.erun ~budget:big (Zoo.Staircase.kb ()) in
      reset ();
      let path = Filename.temp_file "corechase" ".ckpt" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let wrote = ref false in
          let (_ : Chase.Variants.run) =
            r.erun ~budget:small
              ~checkpoint:(fun st ->
                wrote := true;
                Chase.Checkpoint.save ~path ~engine:r.ename ~budget:small st)
              (Zoo.Staircase.kb ())
          in
          Alcotest.(check bool) (r.ename ^ ": checkpoints seen") true !wrote;
          reset ();
          let kb3 = Zoo.Staircase.kb () in
          match Chase.Checkpoint.load kb3 path with
          | Error m -> Alcotest.fail (r.ename ^ ": " ^ m)
          | Ok (_, _, state) ->
              let resumed = r.erun ~budget:big ~resume:state kb3 in
              same_run (r.ename ^ "/staircase-extend") reference resumed))
    runners

(* ------------------------------------------------------------------ *)
(* resilience metrics are recorded at the boundary *)

let test_resilience_metrics () =
  reset ();
  Obs.Metrics.reset ();
  Obs.Metrics.enabled := true;
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.enabled := false)
    (fun () ->
      let token = Resilience.Token.create ~deadline_s:0.0 () in
      ignore (Chase.Variants.restricted ~budget:small ~token (kb_chain ()));
      Alcotest.(check bool) "deadline hit counted" true
        (Obs.Metrics.counter_value "resilience.deadline_hits" >= 1);
      reset ();
      with_faults "step:1:out_of_memory" (fun () ->
          ignore (Chase.Variants.restricted ~budget:small (kb_chain ())));
      Alcotest.(check bool) "fault + resource counted" true
        (Obs.Metrics.counter_value "resilience.faults_injected" >= 1
        && Obs.Metrics.counter_value "resilience.resource_caught" >= 1))

let suites =
  [
    ( "resilience.boundaries",
      [
        tc "zero step budget" test_zero_step_budget;
        tc "atom budget below initial" test_atom_budget_below_initial;
        tc "pre-expired deadline" test_pre_expired_deadline;
        tc "baselines and egds" test_baselines_and_egds_boundaries;
        tc "cancellation mid-run" test_cancellation_mid_run;
      ] );
    ( "resilience.faults",
      [
        tc "fault kinds surface as outcomes" test_fault_kinds;
        tc "census counts hits" test_fault_census_counts;
        tc "fault in core fold" test_fault_in_core_fold;
      ] );
    ( "resilience.hom-guard",
      [
        tc "direct depth guard" test_hom_depth_guard_direct;
        tc "engine catches the overflow"
          test_hom_depth_guard_reaches_engine_boundary;
      ] );
    ( "resilience.checkpoint",
      [
        tc "outcome names round trip" test_outcome_names;
        tc "file round trip" test_checkpoint_roundtrip;
        tc "bad inputs are errors" test_checkpoint_bad_inputs;
        tc "resume extends a budget stop" test_resume_after_clean_budget_stop;
      ] );
    ( "resilience.differential",
      [
        tc "kill/resume, jobs=1" test_kill_resume_differential_jobs1;
        tc "kill/resume, jobs=4" test_kill_resume_differential_jobs4;
      ] );
    ( "resilience.metrics", [ tc "boundary counters" test_resilience_metrics ] );
  ]
