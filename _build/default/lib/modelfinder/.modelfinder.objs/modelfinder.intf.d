lib/modelfinder/modelfinder.mli: Atomset Encode Kb Sat Syntax Term
