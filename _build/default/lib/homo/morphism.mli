(** Endomorphisms, isomorphisms, retractions and homomorphic equivalence
    (Section 2).

    All notions are relative to finite atomsets.  Recall the paper's
    definitions: an endomorphism of [A] is a homomorphism [A → A]; an
    isomorphism is a bijective homomorphism whose inverse is a
    homomorphism; a retraction is an endomorphism that is the identity on
    the terms of its image (the image then being a {e retract}). *)

open Syntax

val find_endomorphism_into : Atomset.t -> Atomset.t -> Subst.t option
(** [find_endomorphism_into a target] with [target ⊆ a]: a homomorphism
    from [a] into [target] (used by the core-folding loop with
    [target = a] minus the atoms containing some variable). *)

val find_isomorphism : Atomset.t -> Atomset.t -> Subst.t option
(** An isomorphism from the first atomset to the second, if any.  The
    returned substitution is injective on [terms a] and its inverse (via
    {!Syntax.Subst.inverse_on}) is a homomorphism back. *)

val isomorphic : Atomset.t -> Atomset.t -> bool

val hom_equivalent : Atomset.t -> Atomset.t -> bool
(** Homomorphisms in both directions exist. *)

val is_automorphism : Atomset.t -> Subst.t -> bool
(** [σ] is an endomorphism of the atomset that permutes its terms and maps
    the atomset onto itself. *)

val invert_automorphism : Atomset.t -> Subst.t -> Subst.t
(** Inverse of an automorphism on the atomset's terms.
    @raise Invalid_argument if the substitution is not an automorphism. *)

val retract_of : Atomset.t -> Subst.t -> Atomset.t
(** The retract [σ(A)] of a retraction.
    @raise Invalid_argument if [σ] is not a retraction of the atomset. *)
