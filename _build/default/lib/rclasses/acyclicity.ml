open Syntax

let weakly_acyclic rules =
  not (Position.Graph.has_special_cycle (Position.Graph.build rules))

module PSet = Set.Make (Position)

let omega_set rules z =
  let rule_of_z =
    List.find
      (fun r -> List.exists (Term.equal z) (Rule.existential_vars r))
      rules
  in
  let initial = PSet.of_list (Position.positions_of_var z (Rule.head rule_of_z)) in
  let step s =
    List.fold_left
      (fun acc r ->
        List.fold_left
          (fun acc x ->
            let bpos = Position.positions_of_var x (Rule.body r) in
            if bpos <> [] && List.for_all (fun p -> PSet.mem p acc) bpos then
              PSet.union acc
                (PSet.of_list (Position.positions_of_var x (Rule.head r)))
            else acc)
          acc (Rule.frontier r))
      s rules
  in
  let rec fix s =
    let s' = step s in
    if PSet.equal s s' then s else fix s'
  in
  fix initial

let omega rules z = PSet.elements (omega_set rules z)

let jointly_acyclic rules =
  let existentials =
    List.concat_map
      (fun r -> List.map (fun z -> (r, z)) (Rule.existential_vars r))
      rules
  in
  let n = List.length existentials in
  let arr = Array.of_list existentials in
  let omegas = Array.map (fun (_, z) -> omega_set rules z) arr in
  (* edge i → j: a null for z_i can feed the creation of a null for z_j —
     some frontier variable of z_j's rule has all its (nonempty) body
     occurrences inside Ω(z_i) *)
  let edge i j =
    let r', _ = arr.(j) in
    List.exists
      (fun x ->
        let bpos = Position.positions_of_var x (Rule.body r') in
        bpos <> [] && List.for_all (fun p -> PSet.mem p omegas.(i)) bpos)
      (Rule.frontier r')
  in
  let adj =
    Array.init n (fun i ->
        List.concat (List.init n (fun j -> if edge i j then [ j ] else [])))
  in
  let color = Array.make n 0 in
  let rec has_cycle i =
    if color.(i) = 1 then true
    else if color.(i) = 2 then false
    else begin
      color.(i) <- 1;
      let c = List.exists has_cycle adj.(i) in
      color.(i) <- 2;
      c
    end
  in
  not (List.exists has_cycle (List.init n Fun.id))
