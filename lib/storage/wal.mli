(** The write-ahead log manager (DESIGN.md §16).

    A WAL directory holds append-only segments of typed {!Record.t}
    frames ([wal-%016d.xlog], named by first LSN) plus atomic binary
    snapshots ([snap-%016d.snap], named by the LSN they cover), after
    tarantool's xlog/snapshot discipline.  Opening the directory
    recovers: latest valid snapshot, then every segment frame beyond
    it.  A torn final record — an incomplete or checksum-failed frame
    ending exactly at the end of the last segment — is the signature of
    a crash mid-write: it is truncated with a warning and the log
    resumes from the last durable record.  Anything else (mid-file
    checksum failure, LSN gap, torn non-final segment, torn snapshot)
    is corruption and yields a structured [Error]: the log never
    guesses at what was durable.

    Counter discipline: {!recover} replays records that mint variable
    ids and read generation stamps, so the KB must be parsed {e before}
    calling it, exactly as for [Chase.Checkpoint.load].  {!peek_header}
    is safe before the KB parse (the header record builds no terms).

    Fault sites for the kill/resume harness (DESIGN.md §11): [wal]
    fires between a frame's write and its fsync, [snap] between a
    snapshot's temp-file write and its rename. *)

(** When appends reach the disk. *)
type sync_policy =
  | Sync_none  (** never fsync (fastest; a crash can lose a suffix) *)
  | Sync_every  (** fsync after every record (the durability default) *)
  | Sync_interval of int  (** fsync every [n] records *)

val sync_policy_of_string : string -> (sync_policy, string) result
(** ["none"], ["every"] or ["interval:N"] (N > 0). *)

val sync_policy_to_string : sync_policy -> string

type t

val open_dir :
  ?sync:sync_policy ->
  ?snapshot_every:int ->
  ?quiet:bool ->
  string ->
  (t, string) result
(** Open (creating if needed) a WAL directory and recover its contents.
    [sync] defaults to [Sync_every]; [snapshot_every] is the
    {!maybe_snapshot} cadence (0, the default, disables automatic
    snapshots); [quiet] suppresses the torn-tail warning on stderr.
    Removes leftover snapshot temp files; truncates a torn tail in the
    final segment; refuses mid-file corruption with [Error]. *)

val dir : t -> string

val is_empty : t -> bool
(** No durable record: a freshly created directory. *)

val had_torn_tail : t -> bool
(** Whether {!open_dir} truncated a torn final record. *)

val looks_like_wal_dir : string -> bool
(** The path is a directory containing WAL segments or snapshots — used
    by [corechase resume] to hint at [--wal] when handed a WAL directory
    in the text-checkpoint position. *)

val append : t -> Record.t -> unit
(** Append one record as the next-LSN frame and apply the sync policy.
    @raise Invalid_argument after {!close}. *)

val sync : t -> unit
(** Force an fsync of the current segment (no-op after {!close}). *)

val close : t -> unit
(** Final sync and close the segment writer.  Idempotent. *)

val write_snapshot : t -> Record.t list -> unit
(** Write the records as a snapshot covering every LSN appended so far
    (tmp + rename), then rotate to a fresh segment.  No-op when the log
    or the record list is empty.  Old segments are retained — the log
    never deletes data it once called durable. *)

val maybe_snapshot : t -> (unit -> Record.t list) -> unit
(** Count one snapshot-cadence tick (a completed round for the chase,
    an operation for the serve daemon) and {!write_snapshot} the
    thunk's records every [snapshot_every] ticks. *)

(** {1 Recovery} *)

val records : t -> (Record.t list, string) result
(** Decode every recovered record in order (snapshot records first,
    then the log tail) — the serve daemon's replay input. *)

type chase_header = {
  h_engine : string;
  h_kb_path : string option;
  h_kb_digest : string option;
  h_budget : Chase.Variants.budget;
}

val peek_header : t -> (chase_header option, string) result
(** Decode only the run-header record ([Ok None] when the log is
    empty).  Safe before the KB is parsed. *)

(** What the log already holds, so a resumed run's journal sink can
    skip re-appending records that are durable (the kill may have hit
    {e after} an append but {e before} the round boundary the engine
    resumes from). *)
type durable = {
  d_last_step : int;  (** highest durable step index; -1 when none *)
  d_tail_retract : bool;  (** the last durable record is a [Retract] *)
  d_rounds : int;  (** rounds whose [Round] record is durable *)
  d_has_start : bool;  (** σ₀ (or a snapshot step 0) is durable *)
}

val no_durable : durable
(** For a fresh log (nothing to skip). *)

type recovered = {
  r_header : chase_header;
  r_state : Chase.Variants.engine_state option;
      (** the last durable round boundary; [None] when the crash
          happened before the first completed round (re-run from
          scratch — the header's pinned counters make the re-execution
          mint identical nulls) *)
  r_durable : durable;
  r_records : int;
  r_torn : bool;
}

val recover : t -> Syntax.Kb.t -> (recovered, string) result
(** Replay a chase log to the state of the interrupted run: rebuild
    the derivation step by step, then cut at the last durable [Round]
    boundary and pin the [Term]/generation counters recorded there (or
    at the header when no round completed).  The KB must be the run's
    KB, parsed before this call.  Structured [Error] on an empty log,
    undecodable or out-of-order records, or session records. *)

(** {1 The chase-side hooks} *)

val journal :
  t ->
  engine:string ->
  ?kb_path:string ->
  ?kb_digest:string ->
  budget:Chase.Variants.budget ->
  ?durable:durable ->
  unit ->
  Chase.Variants.journal
(** The per-step journal sink for [Chase.run ?journal]: appends a
    header + σ₀ on first use, then one record per
    {!Chase.Variants.journal_event}.  Pass the {!recover}ed [durable]
    summary when resuming so already-durable records are not
    re-appended. *)

val checkpoint_hook :
  t ->
  engine:string ->
  ?kb_path:string ->
  ?kb_digest:string ->
  budget:Chase.Variants.budget ->
  unit ->
  Chase.Variants.engine_state -> unit
(** The [?checkpoint] hook: every [snapshot_every] completed rounds,
    serialize the engine state as a snapshot (header, one
    [Snap_step] per derivation step, a [Round] boundary) and rotate. *)

val chase_snapshot_records :
  engine:string ->
  ?kb_path:string ->
  ?kb_digest:string ->
  budget:Chase.Variants.budget ->
  Chase.Variants.engine_state ->
  Record.t list
(** The snapshot serialization itself (exposed for {!import_state} and
    tests). *)

val import_state :
  t ->
  engine:string ->
  ?kb_path:string ->
  ?kb_digest:string ->
  budget:Chase.Variants.budget ->
  Chase.Variants.engine_state ->
  (unit, string) result
(** Seed an {e empty} WAL directory with a snapshot-form serialization
    of the state — the [corechase wal import] bridge from PR-5 text
    checkpoints.  [Error] if the directory already holds a log, or if
    the state's discovery snapshot matches no derivation prefix (it
    could not be replayed exactly). *)
