lib/zoo/classic.mli: Kb Syntax
