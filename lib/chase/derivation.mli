(** Derivations (Definitions 1–3) and their natural aggregation (Section 3).

    A derivation from [K = (F, Σ)] is a sequence [((tr_i, σ_i, F_i))_{i∈I}]
    where [tr_i] is a trigger for [F_{i-1}] not satisfied in [F_{i-1}], the
    simplification [σ_i] is a retraction, and
    [F_i = σ_i(α(F_{i-1}, tr_i))] (with [F_0 = σ_0(F)]).

    We materialise finite prefixes.  Each step also records the
    pre-simplification instance [A_i = α(F_{i-1}, tr_i)] and the safe
    extension used, which the robust-sequence construction (Definition 15)
    replays. *)

open Syntax

type step = {
  index : int;
  trigger : Trigger.t option;  (** [None] for step 0 *)
  pi_safe : Subst.t;  (** safe extension used at this step (empty at 0) *)
  pre_instance : Atomset.t;  (** [A_i = α(F_{i-1}, tr_i)]; [F] at step 0 *)
  simplification : Subst.t;  (** [σ_i], a retraction of [pre_instance] *)
  instance : Atomset.t;  (** [F_i = σ_i(A_i)] *)
}

type t

val start : ?simplification:Subst.t -> Kb.t -> t
(** The length-1 prefix [F_0 = σ_0(F)] (default [σ_0] = identity).
    @raise Invalid_argument if [σ_0] is not a retraction of [F]. *)

val of_steps : Kb.t -> step list -> t
(** Rebuild a derivation from recorded steps (checkpoint resume,
    {!Chase.Variants.engine_state}).  Checks that indices run
    consecutively from 0 and that each [instance = σ(pre_instance)];
    triggers are typically [None] on reloaded steps, so Definition-1
    side conditions are {e not} replayed (use {!validate} on a
    derivation that still carries its triggers).
    @raise Invalid_argument on an empty list or a structural violation. *)

val kb : t -> Kb.t

val length : t -> int
(** Number of elements [F_0 … F_{k}]: [length d = k+1]. *)

val step : t -> int -> step
(** @raise Invalid_argument when out of range. *)

val steps : t -> step list
(** In order [0 … k]. *)

val last : t -> step

val instance_at : t -> int -> Atomset.t

val extend : ?validate:bool -> t -> Trigger.t -> simplification:Subst.t -> t
(** Apply a trigger to the last instance and simplify.  With
    [~validate:true] (default), checks Definition 1's side conditions:
    the trigger holds and is unsatisfied in [F_{k}], and the
    simplification is a retraction of [α(F_k, tr)].
    @raise Invalid_argument on violation. *)

val extend_applied :
  ?validate:bool -> t -> Trigger.t -> Trigger.application ->
  simplification:Subst.t -> t
(** Like {!extend} when the application has already been computed. *)

val replace_last_simplification : ?validate:bool -> t -> Subst.t -> t
(** Re-simplify the last step with a different retraction of its
    pre-instance (used by the per-round core chase cadence, which decides
    the round's closing retraction only once the round has ended).
    @raise Invalid_argument on step 0 or if not a retraction. *)

val is_monotonic : t -> bool
(** [F_{i-1} ⊆ F_i] for all recorded steps. *)

val validate : t -> (unit, string) result
(** Re-check every Definition-1 side condition of the recorded prefix:
    step 0 is a retraction of the KB's facts; each later step's trigger
    held and was unsatisfied in the previous instance, its pre-instance is
    [α(F_{i-1}, tr_i)] with the recorded safe extension, its
    simplification is a retraction of the pre-instance and [F_i = σ_i(A_i)].
    This makes derivations independently checkable proof objects (see
    {!Corechase.Certificate}). *)

val sigma_trace : t -> from_:int -> to_:int -> Subst.t
(** Definition 2's [σ̄_i^j = σ_j • ⋯ • σ_{i+1}] ([from_ = i ≤ j = to_];
    the identity when [i = j]). *)

val natural_aggregation : t -> Atomset.t
(** [D* = ⋃_i F_i] over the prefix (Section 3). *)

val terminated : t -> bool
(** No unsatisfied trigger exists for the last instance: the derivation
    has reached a fixpoint, and the last instance is a (finite) universal
    model of the KB (Proposition 1). *)

val result : t -> Atomset.t option
(** [Some (last instance)] when {!terminated}. *)

val fairness_debt : t -> (int * Trigger.t) list
(** Finite-prefix fairness check (Definition 3): the pairs [(i, tr)] such
    that [tr] is a trigger for [F_i] whose trace [σ̄_i^j(tr)] is satisfied
    in no recorded [F_j], [j ≥ i].  A terminated derivation is fair iff
    this is empty; for an unterminated prefix a nonempty debt is the work
    that fairness obliges the future to do. *)

val is_fair_prefix : t -> bool
(** [fairness_debt d = []]. *)

val pp_summary : t Fmt.t
(** One line per step: index, rule, instance size. *)
