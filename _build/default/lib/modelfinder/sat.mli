(** A small DPLL SAT solver (unit propagation + chronological backtracking
    over a branching heuristic), used by the bounded-domain model finder to
    decide satisfiability of the propositional grounding of
    [F ∧ Σ ∧ ¬Q] over a fixed domain.

    Variables are positive integers; a literal is [+v] (positive) or [-v]
    (negative).  Clauses are integer lists.  The solver is deliberately
    simple — groundings at the domain sizes the paper's examples need stay
    in the thousands of clauses. *)

type result = Sat of bool array  (** [assignment.(v)] for [v ≥ 1] *) | Unsat

val solve : nvars:int -> int list list -> result
(** [solve ~nvars clauses].  Variables range over [1..nvars]; [0] is
    forbidden in clauses.
    @raise Invalid_argument on a literal out of range or 0. *)

val is_satisfying : int list list -> bool array -> bool
(** Check a model against the clause set (testing aid). *)
