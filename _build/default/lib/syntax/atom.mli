(** Atoms over a schema (Section 2).

    An atom is [p(t₁,…,t_k)] with [p] a predicate symbol and [t_i] terms.
    Arity is implicit in the argument list; {!Schema} can validate that the
    same predicate is always used at a single arity. *)

type t = private { pred : string; args : Term.t list }

val make : string -> Term.t list -> t
(** [make p args] is the atom [p(args)]. *)

val pred : t -> string

val args : t -> Term.t list

val arity : t -> int

val terms : t -> Term.t list
(** Argument list, in position order (possibly with duplicates). *)

val term_set : t -> Term.t list
(** Distinct terms of the atom, sorted. *)

val vars : t -> Term.t list
(** Distinct variables of the atom, sorted by rank. *)

val consts : t -> Term.t list
(** Distinct constants of the atom. *)

val is_ground : t -> bool
(** [true] iff the atom contains no variable. *)

val mem_term : Term.t -> t -> bool

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val pp : t Fmt.t
(** [p(t1,...,tk)]; nullary atoms print as [p]. *)

val pp_debug : t Fmt.t
(** Like {!pp} but with variable ranks. *)
