(** Finite atomsets / instances (Section 2).

    The paper's atomsets are countable; the computable objects we manipulate
    are their finite members and finite prefixes, represented as ordered
    sets of atoms.  An atomset is identified with the existential closure of
    the conjunction of its atoms, and doubles as a first-order instance
    (variables playing the role of labelled nulls). *)

type t

val empty : t

val is_empty : t -> bool

val singleton : Atom.t -> t

val of_list : Atom.t list -> t

val to_list : t -> Atom.t list
(** Atoms in increasing {!Atom.compare} order. *)

val add : Atom.t -> t -> t

val remove : Atom.t -> t -> t

val mem : Atom.t -> t -> bool

val cardinal : t -> int

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val subset : t -> t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val fold : (Atom.t -> 'a -> 'a) -> t -> 'a -> 'a

val iter : (Atom.t -> unit) -> t -> unit

val exists : (Atom.t -> bool) -> t -> bool

val for_all : (Atom.t -> bool) -> t -> bool

val filter : (Atom.t -> bool) -> t -> t

val map : (Atom.t -> Atom.t) -> t -> t

val terms : t -> Term.t list
(** Distinct terms occurring in the atomset, sorted. *)

val vars : t -> Term.t list
(** Distinct variables, sorted by rank ([vars(A)] in the paper). *)

val consts : t -> Term.t list
(** Distinct constants. *)

val preds : t -> (string * int) list
(** Distinct (predicate, arity) pairs used. *)

val atoms_with_term : Term.t -> t -> Atom.t list
(** All atoms in which the given term occurs. *)

val induced : Term.t list -> t -> t
(** [induced ts a]: the substructure induced by the term set [ts] — all
    atoms whose terms all belong to [ts] (used for columns/steps/prefixes of
    the paper's infinite models). *)

val without_term : Term.t -> t -> t
(** All atoms *not* containing the given term (the target of the
    core-folding search in {!module:Homo.Core}). *)

val pp : t Fmt.t
(** [{a1, a2, ...}] on one flowing line. *)

val pp_verbose : t Fmt.t
(** One atom per line, with variable ranks. *)
