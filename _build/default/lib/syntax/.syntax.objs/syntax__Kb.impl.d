lib/syntax/kb.ml: Atom Atomset Egd Fmt List Rule String Term
