(** Linear-rule termination probing, one atom at a time (Leclère,
    Mugnier, Thomazo, Ulliana: "A Single Approach to Decide Chase
    Termination on Linear Existential Rules").

    For a linear ruleset (every body is a single atom) the restricted
    chase explores each atom independently: the chase from an instance
    [I] is the union of the chases from [I]'s atoms, so termination on
    every instance reduces to termination on every {e atomic} instance.
    Up to renaming there are finitely many atomic instances per
    predicate — one per equality partition of its argument positions —
    so we enumerate them (Bell(k) partitions for arity [k ≤ ]{!max_arity})
    and run a budgeted restricted chase from each.

    All probes reaching [Fixpoint] certifies restricted-chase
    termination from every atomic instance under the engine's fair
    round-based strategy; the analyzer combines this with the
    instance-level {!Ranks} fixpoint before certifying a verdict, so a
    strategy-sensitive ruleset can never be certified by this probe
    alone. *)

open Syntax

val max_arity : int
(** Probed predicates are capped at this arity (4 ⇒ ≤ 15 partitions). *)

type result = {
  applicable : bool;
      (** linear ruleset, no EGDs, every body predicate within
          {!max_arity} *)
  certified : bool;  (** applicable and every atomic probe reached fixpoint *)
  probes : int;  (** atomic instances chased *)
  failures : string list;
      (** probes that missed fixpoint, as ["p/2{01}"] — predicate/arity
          plus the position partition, blocks in order *)
  why_not : string option;  (** reason when not applicable *)
}

val partitions : 'a list -> 'a list list list
(** All set partitions, deterministic order (exposed for tests). *)

val check : ?budget:Chase.Variants.budget -> Kb.t -> result
