#!/usr/bin/env python3
"""Compare a fresh benchmark run against the committed baseline.

Usage: bench_compare.py BASELINE.json CURRENT.json [TOLERANCE]

Both files use the BENCH_RESULTS.json schema: timing rows (ns/run) nested
under a top-level "benchmarks" key.  Every benchmark present in CURRENT is
compared against the same key in BASELINE; a row slower than TOLERANCE x
baseline (default 1.5) is flagged.  Exit status 1 when anything is flagged
— the CI job is warn-only, so this marks the job without failing the
workflow.  Stdlib only.
"""

import json
import sys


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    baseline_path, current_path = sys.argv[1], sys.argv[2]
    tolerance = float(sys.argv[3]) if len(sys.argv) > 3 else 1.5
    with open(baseline_path) as f:
        baseline = json.load(f).get("benchmarks", {})
    with open(current_path) as f:
        current = json.load(f).get("benchmarks", {})
    if not current:
        print("no benchmark rows in %s" % current_path)
        return 2
    regressions = []
    width = max(len(name) for name in current)
    print("tolerance: %.2fx baseline (%s)" % (tolerance, baseline_path))
    for name in sorted(current):
        cur = current[name]
        base = baseline.get(name)
        if not isinstance(base, (int, float)) or base <= 0:
            print("  %-*s %14s -> %14.1f ns/run  (no baseline)" % (width, name, "-", cur))
            continue
        ratio = cur / base
        flag = "REGRESSION" if ratio > tolerance else "ok"
        print(
            "  %-*s %14.1f -> %14.1f ns/run  %5.2fx %s"
            % (width, name, base, cur, ratio, flag)
        )
        if ratio > tolerance:
            regressions.append((name, ratio))
    if regressions:
        print()
        print("%d benchmark(s) slower than %.2fx baseline (warn-only):" % (len(regressions), tolerance))
        for name, ratio in regressions:
            print("  %s: %.2fx" % (name, ratio))
        return 1
    print()
    print("all compared benchmarks within %.2fx of baseline" % tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
