lib/treewidth/elimination.ml: Array Decomposition Fun Graph Int List Primal Set
