lib/rclasses/acyclicity.ml: Array Fun List Position Rule Set Syntax Term
