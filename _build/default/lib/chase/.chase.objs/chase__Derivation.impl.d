lib/chase/derivation.ml: Atomset Fmt Kb List Printf Result Rule Subst Syntax Trigger
