(** Bounded-domain finite model finder.

    Entry module of the [modelfinder] library: searches for a finite model
    of a KB — optionally one refuting a conjunctive query — over domains of
    increasing size, by SAT-solving the propositional grounding
    ({!Encode}) with the built-in DPLL solver ({!Sat}).

    In the paper's Theorem 1, the "no" semi-decision procedure checks
    satisfiability of [F ∧ Σ ∧ ¬Q] over structures of treewidth ≤ k.  We
    substitute domain-size-bounded structures (see DESIGN.md §1): finding
    such a model certifies [K ⊭ Q]; exhausting the size budget is
    inconclusive, exactly as the paper's procedure is before the right [k]
    is reached. *)

module Sat = Sat
module Encode = Encode

open Syntax

type model = { domain : Term.t list; atoms : Atomset.t }

(** Search a single domain size. *)
let find_model ~domain_size ?forbid ?forbid_all kb : model option =
  let enc = Encode.encode ~domain_size ?forbid ?forbid_all kb in
  match Sat.solve ~nvars:enc.Encode.nvars enc.Encode.clauses with
  | Sat.Unsat -> None
  | Sat.Sat assignment ->
      Some { domain = enc.Encode.domain; atoms = enc.Encode.decode assignment }

(** Search sizes [1..max_domain], smallest first. *)
let find_model_upto ~max_domain ?forbid ?forbid_all kb : model option =
  let min_size = max 1 (List.length (Kb.consts kb)) in
  let rec go d =
    if d > max_domain then None
    else
      match
        if d < min_size then None
        else find_model ~domain_size:d ?forbid ?forbid_all kb
      with
      | Some m -> Some m
      | None -> go (d + 1)
  in
  go 1

(** Model checking (independent of the SAT path, for validation): the
    atomset receives the facts and satisfies every rule. *)
let is_model_of kb (atoms : Atomset.t) : bool =
  let indexed = Homo.Instance.of_atomset atoms in
  Homo.Hom.exists (Kb.facts kb) indexed
  && List.for_all
       (fun r ->
         List.for_all
           (fun pi ->
             Homo.Hom.exists ~seed:pi
               (Atomset.union (Rule.body r) (Rule.head r))
               indexed)
           (Homo.Hom.all (Rule.body r) indexed))
       (Kb.rules kb)

(** Does the query hold in the atomset? *)
let satisfies_query (q : Kb.Query.t) (atoms : Atomset.t) : bool =
  Homo.Hom.maps_to (Kb.Query.atoms q) atoms
