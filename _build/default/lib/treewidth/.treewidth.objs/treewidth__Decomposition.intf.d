lib/treewidth/decomposition.mli: Atomset Fmt Syntax Term
