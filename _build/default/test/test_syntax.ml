(* Tests for lib/syntax: terms, atoms, atomsets, substitutions, rules, KBs,
   schema inference and the DLGP parser. *)

open Syntax

let x = Term.fresh_var ~hint:"X" ()
let y = Term.fresh_var ~hint:"Y" ()
let z = Term.fresh_var ~hint:"Z" ()
let a = Term.const "a"
let b = Term.const "b"

let atom p args = Atom.make p args

(* tiny substring helper (no external deps) *)
module Astring_contains = struct
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i =
      if i + nn > nh then false
      else if String.sub haystack i nn = needle then true
      else go (i + 1)
    in
    nn = 0 || go 0
end

let term : Term.t Alcotest.testable = Alcotest.testable Term.pp_debug Term.equal
let atom_t : Atom.t Alcotest.testable = Alcotest.testable Atom.pp_debug Atom.equal
let aset_t : Atomset.t Alcotest.testable =
  Alcotest.testable Atomset.pp_verbose Atomset.equal
let subst_t : Subst.t Alcotest.testable = Alcotest.testable Subst.pp_debug Subst.equal

(* ------------------------------------------------------------------ *)
(* Term tests *)

let test_fresh_ranks_increase () =
  let v1 = Term.fresh_var () and v2 = Term.fresh_var () in
  Alcotest.(check bool) "strictly increasing ranks" true
    (Term.rank v1 < Term.rank v2)

let test_var_of_id_bumps_counter () =
  let v = Term.var_of_id 1_000_000 in
  let w = Term.fresh_var () in
  Alcotest.(check bool) "fresh after var_of_id stays fresh" true
    (Term.rank w > Term.rank v)

let test_term_order_consts_before_vars () =
  Alcotest.(check bool) "const < var" true (Term.compare a x < 0);
  Alcotest.(check bool) "var > const" true (Term.compare x a > 0);
  Alcotest.(check bool) "const order by name" true (Term.compare a b < 0)

let test_rank_of_const_raises () =
  Alcotest.check_raises "rank of const" (Invalid_argument "Term.rank: constant a")
    (fun () -> ignore (Term.rank a))

let test_var_identity_by_rank () =
  let id = Term.rank x in
  let x' = Term.var_of_id ~hint:"Other" id in
  Alcotest.(check bool) "same rank, equal terms" true (Term.equal x x')

(* ------------------------------------------------------------------ *)
(* Atom tests *)

let test_atom_accessors () =
  let at = atom "p" [ x; a; x ] in
  Alcotest.(check string) "pred" "p" (Atom.pred at);
  Alcotest.(check int) "arity" 3 (Atom.arity at);
  Alcotest.(check (list term)) "term_set dedups" [ a; x ] (Atom.term_set at);
  Alcotest.(check (list term)) "vars" [ x ] (Atom.vars at);
  Alcotest.(check (list term)) "consts" [ a ] (Atom.consts at)

let test_atom_ground () =
  Alcotest.(check bool) "ground" true (Atom.is_ground (atom "p" [ a; b ]));
  Alcotest.(check bool) "nonground" false (Atom.is_ground (atom "p" [ a; x ]))

let test_atom_compare_distinguishes () =
  Alcotest.(check bool) "pred differs" true
    (Atom.compare (atom "p" [ a ]) (atom "q" [ a ]) <> 0);
  Alcotest.(check bool) "args differ" true
    (Atom.compare (atom "p" [ a ]) (atom "p" [ b ]) <> 0);
  Alcotest.(check atom_t) "equal atoms" (atom "p" [ a; x ]) (atom "p" [ a; x ])

let test_nullary_atom () =
  let at = atom "alive" [] in
  Alcotest.(check int) "arity 0" 0 (Atom.arity at);
  Alcotest.(check bool) "ground" true (Atom.is_ground at)

(* ------------------------------------------------------------------ *)
(* Atomset tests *)

let test_atomset_set_semantics () =
  let s = Atomset.of_list [ atom "p" [ a ]; atom "p" [ a ]; atom "q" [ b ] ] in
  Alcotest.(check int) "duplicates collapse" 2 (Atomset.cardinal s)

let test_atomset_terms_vars () =
  let s = Atomset.of_list [ atom "p" [ x; a ]; atom "q" [ y; a ] ] in
  Alcotest.(check (list term)) "terms" [ a; x; y ] (Atomset.terms s);
  Alcotest.(check (list term)) "vars" [ x; y ] (Atomset.vars s);
  Alcotest.(check (list term)) "consts" [ a ] (Atomset.consts s)

let test_atomset_induced () =
  let s =
    Atomset.of_list [ atom "p" [ x; y ]; atom "p" [ y; z ]; atom "r" [ x ] ]
  in
  let sub = Atomset.induced [ x; y ] s in
  Alcotest.(check aset_t) "induced keeps covered atoms"
    (Atomset.of_list [ atom "p" [ x; y ]; atom "r" [ x ] ])
    sub

let test_atomset_without_term () =
  let s = Atomset.of_list [ atom "p" [ x; y ]; atom "r" [ y ] ] in
  Alcotest.(check aset_t) "drop atoms containing x"
    (Atomset.of_list [ atom "r" [ y ] ])
    (Atomset.without_term x s)

let test_atomset_preds () =
  let s = Atomset.of_list [ atom "p" [ x; y ]; atom "p" [ y; z ]; atom "r" [ x ] ] in
  Alcotest.(check (list (pair string int))) "preds" [ ("p", 2); ("r", 1) ]
    (Atomset.preds s)

let test_atoms_with_term () =
  let s = Atomset.of_list [ atom "p" [ x; y ]; atom "r" [ y ]; atom "r" [ a ] ] in
  Alcotest.(check int) "two atoms with y" 2
    (List.length (Atomset.atoms_with_term y s))

(* ------------------------------------------------------------------ *)
(* Substitution tests *)

let test_subst_apply () =
  let s = Subst.of_list [ (x, a); (y, z) ] in
  Alcotest.(check term) "x->a" a (Subst.apply_term s x);
  Alcotest.(check term) "y->z" z (Subst.apply_term s y);
  Alcotest.(check term) "z unbound" z (Subst.apply_term s z);
  Alcotest.(check term) "const fixed" b (Subst.apply_term s b);
  Alcotest.(check atom_t) "atom image" (atom "p" [ a; z ])
    (Subst.apply_atom s (atom "p" [ x; y ]))

let test_subst_compose_paper_def () =
  (* σ' • σ maps Y ↦ σ'⁺(σ⁺(Y)) on dom σ ∪ dom σ'. *)
  let s = Subst.of_list [ (x, y) ] in
  let s' = Subst.of_list [ (y, a); (z, b) ] in
  let c = Subst.compose s' s in
  Alcotest.(check term) "x through both" a (Subst.apply_term c x);
  Alcotest.(check term) "y via s'" a (Subst.apply_term c y);
  Alcotest.(check term) "z via s'" b (Subst.apply_term c z)

let test_subst_compose_priority () =
  (* If x ∈ dom σ, the composite must use σ'⁺(σ⁺(x)), not σ'(x). *)
  let s = Subst.of_list [ (x, a) ] in
  let s' = Subst.of_list [ (x, b) ] in
  let c = Subst.compose s' s in
  Alcotest.(check term) "x goes through s first" a (Subst.apply_term c x)

let test_subst_compatible () =
  let s1 = Subst.of_list [ (x, a); (y, b) ] in
  let s2 = Subst.of_list [ (y, b); (z, a) ] in
  let s3 = Subst.of_list [ (y, a) ] in
  Alcotest.(check bool) "compatible" true (Subst.compatible s1 s2);
  Alcotest.(check bool) "incompatible" false (Subst.compatible s1 s3);
  Alcotest.(check bool) "merge works" true
    (match Subst.merge s1 s2 with Some _ -> true | None -> false);
  Alcotest.(check (option subst_t)) "merge fails" None (Subst.merge s1 s3)

let test_subst_retraction_predicate () =
  (* σ : x ↦ y on {p(x,y), p(y,y)} is a retraction: image is {p(y,y)} and σ
     is the identity on y. *)
  let s = Subst.of_list [ (x, y) ] in
  let aset = Atomset.of_list [ atom "p" [ x; y ]; atom "p" [ y; y ] ] in
  Alcotest.(check bool) "endo" true (Subst.is_endomorphism_of aset s);
  Alcotest.(check bool) "retraction" true (Subst.is_retraction_of aset s);
  (* σ' : x ↦ y, y ↦ x is an endomorphism (automorphism) but not a
     retraction on a symmetric instance. *)
  let sym = Atomset.of_list [ atom "p" [ x; y ]; atom "p" [ y; x ] ] in
  let swap = Subst.of_list [ (x, y); (y, x) ] in
  Alcotest.(check bool) "swap endo" true (Subst.is_endomorphism_of sym swap);
  Alcotest.(check bool) "swap not retraction" false
    (Subst.is_retraction_of sym swap)

let test_subst_inverse () =
  let swap = Subst.of_list [ (x, y); (y, x) ] in
  match Subst.inverse_on [ x; y ] swap with
  | None -> Alcotest.fail "swap must be invertible"
  | Some inv ->
      Alcotest.(check term) "inv y = x" x (Subst.apply_term inv y);
      Alcotest.(check term) "inv x = y" y (Subst.apply_term inv x)

let test_subst_inverse_fails_on_collapse () =
  let s = Subst.of_list [ (x, a); (y, a) ] in
  Alcotest.(check (option subst_t)) "not injective" None
    (Subst.inverse_on [ x; y ] s)

let test_subst_restrict () =
  let s = Subst.of_list [ (x, a); (y, b) ] in
  let r = Subst.restrict [ x ] s in
  Alcotest.(check (list term)) "domain" [ x ] (Subst.domain r)

let test_subst_of_list_conflict () =
  Alcotest.check_raises "conflicting bindings"
    (Invalid_argument "Subst.of_list: conflicting bindings") (fun () ->
      ignore (Subst.of_list [ (x, a); (x, b) ]))

(* ------------------------------------------------------------------ *)
(* Rule tests *)

let test_rule_var_classification () =
  (* p(x,y) -> q(y,z): universal {x,y}, frontier {y}, existential {z}. *)
  let r = Rule.make ~body:[ atom "p" [ x; y ] ] ~head:[ atom "q" [ y; z ] ] () in
  Alcotest.(check (list term)) "universal" [ x; y ] (Rule.universal_vars r);
  Alcotest.(check (list term)) "frontier" [ y ] (Rule.frontier r);
  Alcotest.(check (list term)) "existential" [ z ] (Rule.existential_vars r);
  Alcotest.(check (list term)) "body-only" [ x ]
    (Rule.nonfrontier_universal_vars r);
  Alcotest.(check bool) "not datalog" false (Rule.is_datalog r)

let test_rule_datalog () =
  let r = Rule.make ~body:[ atom "p" [ x; y ] ] ~head:[ atom "p" [ y; x ] ] () in
  Alcotest.(check bool) "datalog" true (Rule.is_datalog r);
  Alcotest.(check (list term)) "no existentials" [] (Rule.existential_vars r)

let test_rule_empty_rejected () =
  Alcotest.check_raises "empty body" (Invalid_argument "Rule.make: empty body")
    (fun () -> ignore (Rule.make ~body:[] ~head:[ atom "p" [ a ] ] ()))

let test_rule_rename_apart () =
  let r = Rule.make ~name:"r" ~body:[ atom "p" [ x; y ] ] ~head:[ atom "q" [ y; z ] ] () in
  let r' = Rule.rename_apart r in
  Alcotest.(check string) "name kept" "r" (Rule.name r');
  let shared =
    List.filter (fun v -> List.exists (Term.equal v) (Rule.vars r)) (Rule.vars r')
  in
  Alcotest.(check (list term)) "no shared variables" [] shared;
  Alcotest.(check int) "same frontier size" 1 (List.length (Rule.frontier r'))

(* ------------------------------------------------------------------ *)
(* KB and schema tests *)

let test_kb_preds_consts () =
  let kb =
    Kb.of_lists
      ~facts:[ atom "p" [ a; b ] ]
      ~rules:[ Rule.make ~body:[ atom "p" [ x; y ] ] ~head:[ atom "q" [ y ] ] () ]
  in
  Alcotest.(check (list (pair string int))) "preds" [ ("p", 2); ("q", 1) ]
    (Kb.preds kb);
  Alcotest.(check (list term)) "consts" [ a; b ] (Kb.consts kb)

let test_schema_inference_ok () =
  let s = Atomset.of_list [ atom "p" [ a; b ]; atom "q" [ a ] ] in
  match Schema.of_atomset s with
  | Error m -> Alcotest.fail m
  | Ok sch ->
      Alcotest.(check (option int)) "arity p" (Some 2) (Schema.arity "p" sch);
      Alcotest.(check (option int)) "arity q" (Some 1) (Schema.arity "q" sch)

let test_schema_inference_conflict () =
  let s = Atomset.of_list [ atom "p" [ a; b ]; atom "p" [ a ] ] in
  match Schema.of_atomset s with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arity conflict must be detected"

let test_schema_check_rule () =
  let sch = Schema.(declare "p" 2 (declare "q" 1 empty)) in
  let good = Rule.make ~body:[ atom "p" [ x; y ] ] ~head:[ atom "q" [ y ] ] () in
  let bad = Rule.make ~body:[ atom "p" [ x ] ] ~head:[ atom "q" [ x ] ] () in
  Alcotest.(check bool) "good rule" true
    (Result.is_ok (Schema.check_rule sch good));
  Alcotest.(check bool) "bad rule" false
    (Result.is_ok (Schema.check_rule sch bad))

let test_query_well_formed () =
  let kb = Kb.of_lists ~facts:[ atom "p" [ a; b ] ] ~rules:[] in
  let q_ok = Kb.Query.make [ atom "p" [ x; y ] ] in
  let q_bad = Kb.Query.make [ atom "p" [ x ] ] in
  Alcotest.(check bool) "ok" true (Kb.Query.well_formed kb q_ok);
  Alcotest.(check bool) "bad" false (Kb.Query.well_formed kb q_bad)

(* ------------------------------------------------------------------ *)
(* DLGP parser tests *)

let parse_ok src =
  match Dlgp.parse_string src with
  | Ok d -> d
  | Error e -> Alcotest.failf "unexpected %a" Dlgp.pp_error e

let test_dlgp_facts () =
  let d = parse_ok "p(a,b). q(b)." in
  Alcotest.(check int) "two facts" 2 (Atomset.cardinal d.Dlgp.facts);
  Alcotest.(check bool) "p(a,b) present" true
    (Atomset.mem (atom "p" [ a; b ]) d.Dlgp.facts)

let test_dlgp_fact_conjunction () =
  let d = parse_ok "p(a,b), q(b)." in
  Alcotest.(check int) "conjunction splits" 2 (Atomset.cardinal d.Dlgp.facts)

let test_dlgp_rule () =
  let d = parse_ok "[r1] q(Y,Z) :- p(X,Y)." in
  match d.Dlgp.rules with
  | [ r ] ->
      Alcotest.(check string) "label" "r1" (Rule.name r);
      Alcotest.(check int) "one body atom" 1 (Atomset.cardinal (Rule.body r));
      Alcotest.(check int) "1 existential" 1
        (List.length (Rule.existential_vars r));
      Alcotest.(check int) "1 frontier" 1 (List.length (Rule.frontier r))
  | _ -> Alcotest.fail "expected one rule"

let test_dlgp_variable_scope_per_statement () =
  let d = parse_ok "[r1] q(X) :- p(X). [r2] p(X) :- q(X)." in
  match d.Dlgp.rules with
  | [ r1; r2 ] ->
      let v1 = Atomset.vars (Rule.body r1) and v2 = Atomset.vars (Rule.body r2) in
      let shared = List.filter (fun v -> List.exists (Term.equal v) v2) v1 in
      Alcotest.(check (list term)) "X not shared across statements" [] shared
  | _ -> Alcotest.fail "expected two rules"

let test_dlgp_query () =
  let d = parse_ok "?(X) :- p(X,Y), q(Y)." in
  match d.Dlgp.queries with
  | [ q ] ->
      Alcotest.(check int) "two atoms" 2 (Atomset.cardinal (Kb.Query.atoms q));
      Alcotest.(check int) "one answer variable" 1
        (List.length (Kb.Query.answer_vars q));
      Alcotest.(check bool) "answer var occurs in atoms" true
        (let av = List.hd (Kb.Query.answer_vars q) in
         List.exists (Term.equal av) (Kb.Query.vars q))
  | _ -> Alcotest.fail "expected one query"

let test_dlgp_constraint () =
  let d = parse_ok "! :- p(X,X)." in
  Alcotest.(check int) "one constraint" 1 (List.length d.Dlgp.constraints);
  Alcotest.(check int) "no queries" 0 (List.length d.Dlgp.queries)

let test_dlgp_answer_constants_ignored () =
  let d = parse_ok "?(X, a) :- p(X, a)." in
  match d.Dlgp.queries with
  | [ q ] ->
      Alcotest.(check int) "only the variable is distinguished" 1
        (List.length (Kb.Query.answer_vars q))
  | _ -> Alcotest.fail "expected one query"

let test_dlgp_boolean_query () =
  let d = parse_ok "? :- p(X,X)." in
  Alcotest.(check int) "one query" 1 (List.length d.Dlgp.queries)

let test_dlgp_comments_sections () =
  let d =
    parse_ok "% a comment\n@facts\np(a). % trailing\n@rules\n[r] q(X) :- p(X)."
  in
  Alcotest.(check int) "fact" 1 (Atomset.cardinal d.Dlgp.facts);
  Alcotest.(check int) "rule" 1 (List.length d.Dlgp.rules)

let test_dlgp_quoted_and_iri_constants () =
  let d = parse_ok "p(\"hello world\", <http://ex.org/a>)." in
  Alcotest.(check bool) "quoted const" true
    (Atomset.mem
       (atom "p" [ Term.const "hello world"; Term.const "http://ex.org/a" ])
       d.Dlgp.facts)

let test_dlgp_propositional_atom () =
  let d = parse_ok "alive. [r] dead :- alive." in
  Alcotest.(check bool) "nullary fact" true
    (Atomset.mem (atom "alive" []) d.Dlgp.facts)

let test_dlgp_error_position () =
  match Dlgp.parse_string "p(a,\n  ;b)." with
  | Ok _ -> Alcotest.fail "must fail"
  | Error e ->
      Alcotest.(check int) "line" 2 e.Dlgp.line;
      Alcotest.(check bool) "col sane" true (e.Dlgp.col >= 1)

let test_dlgp_unterminated () =
  match Dlgp.parse_string "p(a" with
  | Ok _ -> Alcotest.fail "must fail"
  | Error _ -> ()

let test_dlgp_roundtrip () =
  let src = "p(a,b). [r1] q(Y,Z) :- p(X,Y). ? :- q(X,Y)." in
  let d = parse_ok src in
  let printed = Fmt.str "%a" Dlgp.print_document d in
  let d' = parse_ok printed in
  Alcotest.(check aset_t) "facts roundtrip" d.Dlgp.facts d'.Dlgp.facts;
  Alcotest.(check int) "rules roundtrip" (List.length d.Dlgp.rules)
    (List.length d'.Dlgp.rules);
  Alcotest.(check int) "queries roundtrip" (List.length d.Dlgp.queries)
    (List.length d'.Dlgp.queries)

(* ------------------------------------------------------------------ *)
(* FOL / TPTP tests *)

let test_fol_rule_structure () =
  let r = Rule.make ~body:[ atom "p" [ x; y ] ] ~head:[ atom "q" [ y; z ] ] () in
  match Fol.of_rule r with
  | Fol.Forall (univ, Fol.Implies (_, Fol.Exists (ex, _))) ->
      Alcotest.(check int) "2 universal" 2 (List.length univ);
      Alcotest.(check int) "1 existential" 1 (List.length ex)
  | _ -> Alcotest.fail "unexpected formula shape"

let test_fol_sentences_closed () =
  let r = Rule.make ~body:[ atom "p" [ x; y ] ] ~head:[ atom "q" [ y; z ] ] () in
  Alcotest.(check bool) "rule sentence closed" true (Fol.is_sentence (Fol.of_rule r));
  let aset = Atomset.of_list [ atom "p" [ x; a ] ] in
  Alcotest.(check bool) "atomset closure closed" true
    (Fol.is_sentence (Fol.of_atomset aset));
  Alcotest.(check bool) "bare atom open" false (Fol.is_sentence (Fol.Atom (atom "p" [ x ])))

let test_fol_free_vars () =
  let f = Fol.And [ Fol.Atom (atom "p" [ x; y ]); Fol.Exists ([ y ], Fol.Atom (atom "q" [ y; z ])) ] in
  Alcotest.(check (list term)) "free = {x,y,z} minus bound y in 2nd conjunct"
    [ x; y; z ] (Fol.free_vars f)

let test_fol_pp () =
  let r = Rule.make ~body:[ atom "p" [ x ] ] ~head:[ atom "q" [ x; z ] ] () in
  let s = Fmt.str "%a" Fol.pp (Fol.of_rule r) in
  Alcotest.(check bool) "has ∀" true (String.length s > 0 && Astring_contains.contains s "\xe2\x88\x80");
  Alcotest.(check bool) "has →" true (Astring_contains.contains s "\xe2\x86\x92")

let test_fol_tptp_problem () =
  let kb =
    Kb.of_lists
      ~facts:[ atom "p" [ Term.const "A-strange name" ] ]
      ~rules:[ Rule.make ~name:"r" ~body:[ atom "p" [ x ] ] ~head:[ atom "q" [ x; z ] ] () ]
  in
  let q = Kb.Query.make [ atom "q" [ y; z ] ] in
  let s = Fol.tptp_problem kb q in
  Alcotest.(check bool) "has axioms" true (Astring_contains.contains s "axiom");
  Alcotest.(check bool) "has conjecture" true (Astring_contains.contains s "conjecture");
  Alcotest.(check bool) "constant sanitised" true
    (Astring_contains.contains s "a_strange_name");
  Alcotest.(check bool) "fof wrappers" true (Astring_contains.contains s "fof(");
  Alcotest.(check bool) "no raw spaces in constants" false
    (Astring_contains.contains s "A-strange")

let test_fol_empty_connectives () =
  Alcotest.(check string) "⊤" "⊤" (Fmt.str "%a" Fol.pp (Fol.And []));
  Alcotest.(check string) "$true" "$true" (Fmt.str "%a" Fol.pp_tptp (Fol.And []));
  Alcotest.(check string) "$false" "$false" (Fmt.str "%a" Fol.pp_tptp (Fol.Or []))

(* ------------------------------------------------------------------ *)
(* Property-based tests *)

let gen_term : Term.t QCheck.arbitrary =
  QCheck.make ~print:(Fmt.to_to_string Term.pp_debug)
    QCheck.Gen.(
      oneof
        [
          map (fun i -> Term.const ("c" ^ string_of_int i)) (int_bound 5);
          map (fun i -> Term.var_of_id ~hint:"Q" (i + 500)) (int_bound 8);
        ])

let gen_atom : Atom.t QCheck.arbitrary =
  QCheck.make ~print:(Fmt.to_to_string Atom.pp_debug)
    QCheck.Gen.(
      let* p = oneofl [ "p"; "q"; "r" ] in
      let* n = int_range 1 3 in
      let* args = list_size (return n) (QCheck.gen gen_term) in
      return (Atom.make p args))

let gen_atomset : Atomset.t QCheck.arbitrary =
  QCheck.make ~print:(Fmt.to_to_string Atomset.pp_verbose)
    QCheck.Gen.(
      map Atomset.of_list (list_size (int_bound 12) (QCheck.gen gen_atom)))

let gen_subst : Subst.t QCheck.arbitrary =
  QCheck.make ~print:(Fmt.to_to_string Subst.pp_debug)
    QCheck.Gen.(
      let* pairs =
        list_size (int_bound 6)
          (pair (map (fun i -> Term.var_of_id ~hint:"Q" (i + 500)) (int_bound 8))
             (QCheck.gen gen_term))
      in
      return
        (List.fold_left (fun s (v, t) -> Subst.add v t s) Subst.empty pairs))

let prop_compose_is_sequential_application =
  QCheck.Test.make ~name:"(s' • s)(t) = s'(s(t))" ~count:300
    (QCheck.triple gen_subst gen_subst gen_term)
    (fun (s', s, t) ->
      Term.equal
        (Subst.apply_term (Subst.compose s' s) t)
        (Subst.apply_term s' (Subst.apply_term s t)))

let prop_apply_distributes_over_union =
  QCheck.Test.make ~name:"σ(A ∪ B) = σ(A) ∪ σ(B)" ~count:200
    (QCheck.triple gen_subst gen_atomset gen_atomset)
    (fun (s, a1, a2) ->
      Atomset.equal
        (Subst.apply s (Atomset.union a1 a2))
        (Atomset.union (Subst.apply s a1) (Subst.apply s a2)))

let prop_induced_is_subset =
  QCheck.Test.make ~name:"induced substructure ⊆ original" ~count:200
    gen_atomset (fun s ->
      let ts = Atomset.terms s in
      let half = List.filteri (fun i _ -> i mod 2 = 0) ts in
      Atomset.subset (Atomset.induced half s) s)

let prop_identity_subst_is_retraction =
  QCheck.Test.make ~name:"empty substitution is a retraction of any atomset"
    ~count:100 gen_atomset (fun s -> Subst.is_retraction_of s Subst.empty)

let prop_atomset_cardinal_union =
  QCheck.Test.make ~name:"|A ∪ B| ≤ |A| + |B|" ~count:200
    (QCheck.pair gen_atomset gen_atomset) (fun (a, b) ->
      Atomset.cardinal (Atomset.union a b)
      <= Atomset.cardinal a + Atomset.cardinal b)

let prop_subst_restrict_domain =
  QCheck.Test.make ~name:"restrict shrinks domain" ~count:200 gen_subst
    (fun s ->
      match Subst.domain s with
      | [] -> true
      | v :: _ ->
          let r = Subst.restrict [ v ] s in
          Subst.cardinal r <= 1 && Subst.mem v r)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_compose_is_sequential_application;
      prop_apply_distributes_over_union;
      prop_induced_is_subset;
      prop_identity_subst_is_retraction;
      prop_atomset_cardinal_union;
      prop_subst_restrict_domain;
    ]

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "syntax.term",
      [
        tc "fresh ranks increase" test_fresh_ranks_increase;
        tc "var_of_id bumps counter" test_var_of_id_bumps_counter;
        tc "consts before vars" test_term_order_consts_before_vars;
        tc "rank of const raises" test_rank_of_const_raises;
        tc "var identity by rank" test_var_identity_by_rank;
      ] );
    ( "syntax.atom",
      [
        tc "accessors" test_atom_accessors;
        tc "groundness" test_atom_ground;
        tc "compare" test_atom_compare_distinguishes;
        tc "nullary" test_nullary_atom;
      ] );
    ( "syntax.atomset",
      [
        tc "set semantics" test_atomset_set_semantics;
        tc "terms/vars/consts" test_atomset_terms_vars;
        tc "induced substructure" test_atomset_induced;
        tc "without_term" test_atomset_without_term;
        tc "preds" test_atomset_preds;
        tc "atoms_with_term" test_atoms_with_term;
      ] );
    ( "syntax.subst",
      [
        tc "apply" test_subst_apply;
        tc "compose per Definition" test_subst_compose_paper_def;
        tc "compose priority" test_subst_compose_priority;
        tc "compatibility & merge" test_subst_compatible;
        tc "retraction predicate" test_subst_retraction_predicate;
        tc "inverse of automorphism" test_subst_inverse;
        tc "inverse fails on collapse" test_subst_inverse_fails_on_collapse;
        tc "restrict" test_subst_restrict;
        tc "of_list conflict" test_subst_of_list_conflict;
      ] );
    ( "syntax.rule",
      [
        tc "variable classification" test_rule_var_classification;
        tc "datalog" test_rule_datalog;
        tc "empty body rejected" test_rule_empty_rejected;
        tc "rename_apart" test_rule_rename_apart;
      ] );
    ( "syntax.kb",
      [
        tc "preds & consts" test_kb_preds_consts;
        tc "schema inference ok" test_schema_inference_ok;
        tc "schema arity conflict" test_schema_inference_conflict;
        tc "schema rule check" test_schema_check_rule;
        tc "query well-formedness" test_query_well_formed;
      ] );
    ( "syntax.dlgp",
      [
        tc "facts" test_dlgp_facts;
        tc "fact conjunction" test_dlgp_fact_conjunction;
        tc "labelled rule" test_dlgp_rule;
        tc "per-statement scope" test_dlgp_variable_scope_per_statement;
        tc "query with answer vars" test_dlgp_query;
        tc "negative constraint" test_dlgp_constraint;
        tc "answer constants ignored" test_dlgp_answer_constants_ignored;
        tc "boolean query" test_dlgp_boolean_query;
        tc "comments & sections" test_dlgp_comments_sections;
        tc "quoted & IRI constants" test_dlgp_quoted_and_iri_constants;
        tc "propositional atoms" test_dlgp_propositional_atom;
        tc "error position" test_dlgp_error_position;
        tc "unterminated input" test_dlgp_unterminated;
        tc "roundtrip" test_dlgp_roundtrip;
      ] );
    ( "syntax.fol",
      [
        tc "rule quantifier structure" test_fol_rule_structure;
        tc "sentences closed" test_fol_sentences_closed;
        tc "free variables" test_fol_free_vars;
        tc "pretty printing" test_fol_pp;
        tc "tptp problem" test_fol_tptp_problem;
        tc "empty connectives" test_fol_empty_connectives;
      ] );
    ("syntax.properties", qcheck_cases);
  ]
