lib/syntax/atom.mli: Fmt Term
