open Syntax

let may_depend_pred r ~on =
  let head_preds = Atomset.preds (Rule.head on) in
  List.exists
    (fun (p, ar) ->
      List.exists (fun (q, ar') -> String.equal p q && ar = ar') head_preds)
    (Atomset.preds (Rule.body r))

let freeze aset =
  let subst =
    List.fold_left
      (fun s v ->
        Subst.add v (Term.const (Printf.sprintf "frz_%d" (Term.rank v))) s)
      Subst.empty (Atomset.vars aset)
  in
  (Subst.apply subst aset, subst)

let depends_frozen r ~on =
  let on = Rule.rename_apart on and r = Rule.rename_apart r in
  let frozen_body, frz = freeze (Rule.body on) in
  let tr = Chase.Trigger.make on frz in
  let app = Chase.Trigger.apply tr frozen_body in
  let created = app.Chase.Trigger.produced in
  let after = app.Chase.Trigger.result in
  let indexed = Homo.Instance.of_atomset after in
  (* a homomorphism of body(r) into the result that touches a created atom
     and yields an unsatisfied trigger *)
  List.exists
    (fun pi ->
      let image = Subst.apply pi (Rule.body r) in
      (not (Atomset.is_empty (Atomset.inter image (Atomset.diff created frozen_body))))
      && not (Chase.Trigger.satisfied (Chase.Trigger.make r pi) after))
    (Homo.Hom.all (Rule.body r) indexed)

let graph_with dep rules =
  let arr = Array.of_list rules in
  let n = Array.length arr in
  List.concat
    (List.init n (fun i ->
         List.concat
           (List.init n (fun j ->
                if dep arr.(j) ~on:arr.(i) then [ (i, j) ] else []))))

let pred_graph rules = graph_with may_depend_pred rules

let frozen_graph rules = graph_with depends_frozen rules

let agrd_sound rules =
  let n = List.length rules in
  let edges = pred_graph rules in
  let adj = Array.make n [] in
  List.iter (fun (i, j) -> adj.(i) <- j :: adj.(i)) edges;
  let color = Array.make n 0 in
  let rec has_cycle i =
    if color.(i) = 1 then true
    else if color.(i) = 2 then false
    else begin
      color.(i) <- 1;
      let c = List.exists has_cycle adj.(i) in
      color.(i) <- 2;
      c
    end
  in
  not (List.exists has_cycle (List.init n Fun.id))
