(** Treewidth toolkit (Section 4 of the paper).

    Entry module of the [treewidth] library: re-exports the submodules and
    offers atomset-level convenience functions. *)

module Graph = Graph
module Primal = Primal
module Decomposition = Decomposition
module Elimination = Elimination
module Exact = Exact
module Lowerbound = Lowerbound
module Grid = Grid
module Pathwidth = Pathwidth
module Hypergraph = Hypergraph
module Dot = Dot

open Syntax

type heuristic = Min_fill | Min_degree

(** Heuristic upper bound on [tw(a)] via a greedy elimination order.
    [-1] on atomsets without terms. *)
let upper_bound ?(heuristic = Min_fill) (a : Atomset.t) : int =
  let p = Primal.of_atomset a in
  let order =
    match heuristic with
    | Min_fill -> Elimination.min_fill_order p.Primal.graph
    | Min_degree -> Elimination.min_degree_order p.Primal.graph
  in
  Elimination.width_of_order p.Primal.graph order

(** Sound lower bound on [tw(a)] (degeneracy/clique based). *)
let lower_bound (a : Atomset.t) : int =
  Lowerbound.best (Primal.of_atomset a).Primal.graph

(** Exact treewidth.  [None] when the atomset has more terms than
    {!Exact.max_vertices} (callers then combine {!upper_bound} and
    {!lower_bound}). *)
let exact (a : Atomset.t) : int option =
  let p = Primal.of_atomset a in
  if Graph.vertex_count p.Primal.graph > Exact.max_vertices then None
  else Some (Exact.treewidth p.Primal.graph)

(** Exact when feasible, otherwise the min-fill upper bound.  The boolean
    is [true] when the value is exact. *)
let best_effort (a : Atomset.t) : int * bool =
  match exact a with
  | Some w -> (w, true)
  | None -> (upper_bound a, false)

(** A valid tree decomposition witnessing [upper_bound ~heuristic a]. *)
let decomposition ?(heuristic = Min_fill) (a : Atomset.t) : Decomposition.t =
  let p = Primal.of_atomset a in
  let order =
    match heuristic with
    | Min_fill -> Elimination.min_fill_order p.Primal.graph
    | Min_degree -> Elimination.min_degree_order p.Primal.graph
  in
  Elimination.decomposition_of_order p order

(** [at_most a k]: is [tw(a) ≤ k]?  Uses cheap bounds before the exact
    computation. *)
let at_most (a : Atomset.t) (k : int) : bool =
  if upper_bound a <= k then true
  else if lower_bound a > k then false
  else
    match exact a with
    | Some w -> w <= k
    | None -> false (* conservatively unknown: report not-bounded *)
