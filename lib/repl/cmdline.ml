(* Shared command-line-ish parsing for the interactive surfaces: the
   REPL's `cmd arg' lines and the server protocol's request payloads
   (DESIGN.md §15) split words, first lines and key=value options the
   same way, so the two front ends cannot drift apart. *)

(* first word and the (untrimmed-tail) remainder of a trimmed line *)
let split line =
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

(* first line and the raw rest (no trimming: the rest may be a verbatim
   multi-line body, e.g. inline DLGP text in a LOAD payload) *)
let split_line s =
  match String.index_opt s '\n' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

(* positive integer with a fallback (the REPL's `step [N]' convention) *)
let int_default s d =
  match int_of_string_opt (String.trim s) with Some n when n > 0 -> n | _ -> d

(* split [key=value] words from positional ones, keeping word order
   within each class; repeated keys keep the last occurrence *)
let keyvals ws =
  let kvs, pos =
    List.fold_left
      (fun (kvs, pos) w ->
        match String.index_opt w '=' with
        | Some i when i > 0 ->
            ( (String.sub w 0 i, String.sub w (i + 1) (String.length w - i - 1))
              :: kvs,
              pos )
        | _ -> (kvs, w :: pos))
      ([], []) ws
  in
  (List.rev kvs, List.rev pos)

let lookup key kvs =
  List.fold_left
    (fun acc (k, v) -> if String.equal k key then Some v else acc)
    None kvs
