lib/core/robust.ml: Array Atomset Chase List Printf Result Subst Syntax Term Treewidth
