open Syntax

type t = string * int

let compare (p1, i1) (p2, i2) =
  let c = String.compare p1 p2 in
  if c <> 0 then c else Int.compare i1 i2

let pp ppf (p, i) = Fmt.pf ppf "%s[%d]" p i

let positions_of_var v aset =
  Atomset.fold
    (fun a acc ->
      List.concat
        (List.mapi
           (fun i arg -> if Term.equal arg v then [ (Atom.pred a, i) ] else [])
           (Atom.args a))
      @ acc)
    aset []
  |> List.sort_uniq compare

let all_positions rules =
  List.concat_map
    (fun r ->
      List.concat_map
        (fun (p, ar) -> List.init ar (fun i -> (p, i)))
        (Rule.preds r))
    rules
  |> List.sort_uniq compare

module PSet = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Graph = struct
  type pos = t

  type nonrec t = {
    ordinary : (pos * pos) list;
    special : (pos * pos) list;
  }

  let build rules =
    let ordinary = ref [] and special = ref [] in
    List.iter
      (fun r ->
        let body = Rule.body r and head = Rule.head r in
        let specials_targets =
          List.concat_map
            (fun z -> positions_of_var z head)
            (Rule.existential_vars r)
        in
        List.iter
          (fun x ->
            let body_pos = positions_of_var x body in
            let head_pos = positions_of_var x head in
            List.iter
              (fun bp ->
                List.iter (fun hp -> ordinary := (bp, hp) :: !ordinary) head_pos;
                List.iter (fun sp -> special := (bp, sp) :: !special)
                  specials_targets)
              body_pos)
          (Rule.frontier r))
      rules;
    {
      ordinary = List.sort_uniq Stdlib.compare !ordinary;
      special = List.sort_uniq Stdlib.compare !special;
    }

  let ordinary_edges g = g.ordinary

  let special_edges g = g.special

  (* A special cycle exists iff some special edge (u ⇒ v) admits a path
     from v back to u in the full graph. *)
  let has_special_cycle g =
    let all_edges = g.ordinary @ g.special in
    let reachable_from start =
      let rec go seen frontier =
        match frontier with
        | [] -> seen
        | u :: rest ->
            let next =
              List.filter_map
                (fun (a, b) ->
                  if compare a u = 0 && not (PSet.mem b seen) then Some b
                  else None)
                all_edges
            in
            go (List.fold_left (fun s v -> PSet.add v s) seen next)
              (next @ rest)
      in
      go (PSet.singleton start) [ start ]
    in
    List.exists (fun (u, v) -> PSet.mem u (reachable_from v)) g.special
end

let affected_positions rules =
  let initial =
    List.concat_map
      (fun r ->
        List.concat_map
          (fun z -> positions_of_var z (Rule.head r))
          (Rule.existential_vars r))
      rules
    |> PSet.of_list
  in
  let step affected =
    List.fold_left
      (fun acc r ->
        List.fold_left
          (fun acc x ->
            let body_pos = positions_of_var x (Rule.body r) in
            if
              body_pos <> []
              && List.for_all (fun p -> PSet.mem p acc) body_pos
            then
              List.fold_left
                (fun acc hp -> PSet.add hp acc)
                acc
                (positions_of_var x (Rule.head r))
            else acc)
          acc (Rule.frontier r))
      affected rules
  in
  let rec fix s =
    let s' = step s in
    if PSet.equal s s' then s else fix s'
  in
  PSet.elements (fix initial)
