(** Named KB sessions and the request interpreter (DESIGN.md §15).

    A session is a long-lived server-side object: a loaded KB plus a
    {e generation-stamped chased snapshot} — the final chase element,
    indexed once, together with the outcome that stopped the run.  The
    lifecycle is

    {v OPEN → LOAD → CHASE → (ENTAIL | ANALYZE | STATS)* → CLOSE v}

    with LOAD and CHASE repeatable (a LOAD invalidates the snapshot, a
    CHASE stamps the next generation).  ENTAIL reads the snapshot only
    — one chase writer, many snapshot readers — which is sound because
    every derivation element maps homomorphically into the final one
    (see {!Corechase.Entailment.decide_in_snapshot}).

    This module is transport-free: {!exec} turns one parsed request
    into response frames and is driven identically by the in-process
    loopback client and the socket daemon. *)

type t
(** A registry of open sessions.  Not thread-safe: all mutation happens
    on the server's main loop (the loop is single-threaded; parallelism
    lives inside {!entail_task} thunks, which only read). *)

val create : ?wal:Storage.Wal.t -> unit -> t
(** With [wal], every state-changing request journals itself:
    OPEN/LOAD/CLOSE as canonical request text, a completed CHASE as the
    full generation-stamped snapshot (outcome, steps, final atomset), so
    a restarted registry answers ENTAIL byte-identically without
    re-running chases (DESIGN.md §16).  WAL snapshots compact the log to
    one op sequence per open session. *)

val count : t -> int

val names : t -> string list
(** In opening order. *)

val exec : t -> emit:(Protocol.frame -> unit) -> Protocol.request -> Protocol.frame
(** Execute one request: intermediate [data]/[event] frames go through
    [emit] as they are produced (a CHASE streams one [event] frame per
    saturation round), and the final [ok]/[err] frame is returned.
    [Shutdown] answers [ok shutting down] — stopping the accept loop is
    the transport's business, not this module's.  Never raises: chase
    interruptions and fault injections become [err chase-stopped]
    frames and the session keeps its last consistent snapshot. *)

val restore : t -> Storage.Record.t list -> (unit, string) result
(** Replay a recovered session log (from [Storage.Wal.records]) into
    the registry: ops re-execute through {!exec}, chase records stamp
    their recorded snapshots directly.  Runs with journaling off and
    tracing muted; structured [Error] on a record that does not replay
    (a chase-log record, an op that now fails, an unknown variant or
    outcome name). *)

val entail_task : t -> session:string -> query:string -> (unit -> Protocol.frame list)
(** The batched read path.  Validation and counter bumps happen {e now}
    (on the caller); the returned thunk — response frames, final frame
    last — is read-only on all shared state, so the server can run one
    {!Par.Batch} of these across connections, each under its own
    cancellation token.  [exec] on an [Entail] request is exactly this
    thunk run in place. *)
