lib/rclasses/guardedness.ml: Atom Atomset List Position Rule Syntax
