lib/zoo/elevator.ml: Array Atom Atomset Hashtbl Kb Printf Rule Syntax Term
