lib/core/corechase.ml: Atomset Certificate Entailment Homo List Measures Probes Robust Syntax
