lib/syntax/fol.ml: Atom Atomset Buffer Char Fmt Format Kb List Rule Set String Term Ucq
