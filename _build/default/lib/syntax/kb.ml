type t = { facts : Atomset.t; rules : Rule.t list; egds : Egd.t list }

let make ~facts ~rules = { facts; rules; egds = [] }

let of_lists ~facts ~rules = make ~facts:(Atomset.of_list facts) ~rules

let with_egds egds kb = { kb with egds }

let facts k = k.facts

let rules k = k.rules

let egds k = k.egds

let preds k =
  List.sort_uniq compare
    (Atomset.preds k.facts @ List.concat_map Rule.preds k.rules)

let consts k =
  let rule_consts r =
    Atomset.consts (Rule.body r) @ Atomset.consts (Rule.head r)
  in
  List.sort_uniq Term.compare
    (Atomset.consts k.facts @ List.concat_map rule_consts k.rules)

let pp ppf k =
  Fmt.pf ppf "@[<v>facts: %a@,%a%a@]" Atomset.pp k.facts
    Fmt.(list Rule.pp)
    k.rules
    Fmt.(list Egd.pp)
    k.egds

module Query = struct
  type t = { name : string; atoms : Atomset.t; answer_vars : Term.t list }

  let of_atomset ?(name = "") ?(answers = []) atoms =
    if Atomset.is_empty atoms then invalid_arg "Query.make: empty query";
    let qvars = Atomset.vars atoms in
    if
      not
        (List.for_all
           (fun v -> List.exists (Term.equal v) qvars)
           answers)
    then invalid_arg "Query.make: answer variable absent from the atoms";
    { name; atoms; answer_vars = answers }

  let make ?name ?answers atoms =
    of_atomset ?name ?answers (Atomset.of_list atoms)

  let atoms q = q.atoms

  let name q = q.name

  let answer_vars q = q.answer_vars

  let is_boolean q = q.answer_vars = []

  let vars q = Atomset.vars q.atoms

  let pp ppf q =
    match q.answer_vars with
    | [] ->
        Fmt.pf ppf "@[? :- %a@]"
          Fmt.(list ~sep:comma Atom.pp)
          (Atomset.to_list q.atoms)
    | avs ->
        Fmt.pf ppf "@[?(%a) :- %a@]"
          Fmt.(list ~sep:comma Term.pp)
          avs
          Fmt.(list ~sep:comma Atom.pp)
          (Atomset.to_list q.atoms)

  let well_formed kb q =
    let kb_preds = preds kb in
    List.for_all
      (fun (p, ar) ->
        match List.find_opt (fun (p', _) -> String.equal p p') kb_preds with
        | None -> true (* a predicate unused by the KB is fine, just unsatisfiable *)
        | Some (_, ar') -> ar = ar')
      (Atomset.preds q.atoms)
end
