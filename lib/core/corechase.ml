(** The paper's primary contribution as a library (Sections 5, 8, 9).

    Entry module of [corechase.core]:

    - {!Measures} — structural measures, uniform/recurring boundedness
      (Section 5);
    - {!Robust} — robust renaming, robust sequences and the robust
      aggregation [D⊛] (Definitions 14–16, Lemma 1, Propositions 10–11);
    - {!Entailment} — CQ entailment via universal chase prefixes and
      bounded countermodels (Proposition 1(3), Proposition 9, Theorem 1);
    - {!Probes} — budgeted semi-procedures for the abstract classes fes /
      bts / core-bts of Figure 1 (Definitions 6 and 17).

    Underneath sit [corechase.syntax] (terms/atoms/rules), [corechase.homo]
    (homomorphisms and cores), [corechase.chase] (Definition-1 derivations
    and the four chase variants), [corechase.treewidth] (Definition 4) and
    [corechase.modelfinder] (the bounded countermodel search). *)

module Measures = Measures
module Robust = Robust
module Entailment = Entailment
module Probes = Probes
module Certificate = Certificate
module Obs = Obs
module Par = Par

open Syntax

(** [finitely_universal_on_prefixes prefixes models]: the experimental
    counterpart of Definition 13 — every listed finite prefix (of a
    candidate finitely-universal model) maps homomorphically into every
    listed model. *)
let finitely_universal_on_prefixes (prefixes : Atomset.t list)
    (models : Atomset.t list) : bool =
  List.for_all
    (fun p -> List.for_all (fun m -> Homo.Hom.maps_to p m) models)
    prefixes

(** Proposition 9, experimentally: a CQ holds in a finitely universal model
    iff it is entailed; on finite structures this is just query evaluation,
    re-exported for discoverability. *)
let query_holds = Entailment.holds_in
