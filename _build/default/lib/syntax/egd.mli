(** Equality-generating dependencies (EGDs).

    The classical companions of tuple-generating dependencies in the chase
    literature (Deutsch–Nash–Remmel [9], Fagin et al. [10]): sentences
    [∀X⃗. B[X⃗] → x = y] with [x, y] variables of the body.  Applying an
    EGD to an instance unifies the images of [x] and [y]; unifying two
    distinct constants is a {e hard failure} (the KB has no model).

    The paper's derivations (Definition 1) cover TGDs only; the EGD-aware
    engine lives in {!Chase.Variants} and is documented as the standard
    extension, outside Definition 1. *)

type t = private {
  name : string;
  body : Atomset.t;
  left : Term.t;
  right : Term.t;
}

val make : ?name:string -> body:Atom.t list -> Term.t -> Term.t -> t
(** [make ~body x y].
    @raise Invalid_argument if the body is empty, either side is a
    constant, or either side does not occur in the body. *)

val make_set : ?name:string -> body:Atomset.t -> Term.t -> Term.t -> t

val name : t -> string

val body : t -> Atomset.t

val sides : t -> Term.t * Term.t

val rename_apart : t -> t
(** Fresh-variable copy (engines rename before matching). *)

val pp : t Fmt.t
(** [name: body → l = r]. *)
