(** The `corechase serve' daemon and its clients (DESIGN.md §15).

    One single-threaded [select] loop owns all transport state.  Within
    one loop iteration the completed requests are executed in two
    phases: the leading ENTAILs of every connection's queue run as one
    {!Par.Batch} across the pool — many snapshot readers, each under
    its own connection's cancellation token — and everything else runs
    inline on the loop, so a CHASE is the {e only} writer touching a
    session and can stream [event] frames as its rounds start.

    Graceful drain: SIGTERM (or a SHUTDOWN request) stops the accept
    loop and arms a [drain_timeout]-second alarm; if in-flight work is
    still running when it fires, every connection token is cancelled
    through a {!Resilience.Group}, the engines stop at their next poll
    point, and the affected requests answer with structured
    [chase-stopped] frames before the server says [bye].

    {!Loopback} is the same request interpreter without any socket —
    the protocol logic tests run against it byte for byte. *)

module Protocol : module type of Protocol
(** Re-exported so clients of the wrapped library reach the codec as
    [Server.Protocol]. *)

module Session : module type of Session

module Queryeval : module type of Queryeval

type endpoint =
  | Unix_sock of string  (** [unix:PATH] *)
  | Tcp of string * int  (** [tcp:HOST:PORT] *)

val endpoint_of_string : string -> (endpoint, string) result
(** Parse [unix:PATH] or [tcp:HOST:PORT]. *)

val endpoint_to_string : endpoint -> string

type config = {
  endpoints : endpoint list;  (** listen on all of these *)
  drain_timeout : int;
      (** seconds between SIGTERM and cancelling in-flight work *)
  ready_file : string option;
      (** write this file once every endpoint is bound (scripts wait on
          it instead of polling connect) *)
  quiet : bool;  (** suppress the stderr lifecycle notes *)
  wal : Storage.Wal.t option;
      (** journal every state-changing request; on start, replay a
          prior daemon's log so named sessions come back at their
          generation-stamped snapshots (DESIGN.md §16) *)
}

val default_config : config
(** No endpoints, 5 s drain, no ready file, not quiet, no wal. *)

val serve : config -> (unit, string) result
(** Bind every endpoint and run the loop until SHUTDOWN / SIGTERM /
    SIGINT completes its drain.  [Error] on bind/parse problems (the
    CLI maps it to exit code 3).  Installs SIGTERM/SIGINT/SIGALRM
    handlers and ignores SIGPIPE for the duration.  One [serve] at a
    time per process. *)

val request_shutdown : ?drain:int -> unit -> unit
(** What the SIGTERM handler does, callable from tests: stop accepting
    and arm the drain alarm.  When the alarm fires (immediately for
    [drain = 0]) in-flight work is cancelled and connections that
    still cannot flush their output are force-closed, so the drain
    always terminates even against a peer that stopped reading. *)

(** In-process client: the daemon's request interpreter with no socket
    attached.  Logic tests drive this — same sessions, same frames,
    same byte-level state machine — and leave the cram layer to prove
    only the socket plumbing. *)
module Loopback : sig
  type t

  val create : ?wal:Storage.Wal.t -> unit -> t
  (** A fresh server state (its own session registry).  With [wal] the
      registry journals state-changing requests and replays a prior
      log, exactly like the daemon.
      @raise Failure when the log does not replay (the daemon path
      reports the same condition as a structured [Error] from
      {!serve}). *)

  val greeting : t -> Protocol.frame
  (** The [hello] frame a socket client would receive on connect. *)

  val request : t -> Protocol.request -> Protocol.frame list
  (** Execute one request; response frames in order, final [ok]/[err]
      last. *)

  val raw : t -> string -> string
  (** Byte-level entry: feed wire bytes (any split, any number of
      frames, malformed welcome) and collect the wire bytes the server
      would answer — including the greeting before the first reply and
      the [err]+[bye] close-out after a framing violation.  Never
      raises. *)

  val closed : t -> bool
  (** The byte-level machine reached its close-out (after a framing
      violation or a [bye]); further {!raw} input is ignored. *)
end

(** Socket client used by [corechase client] and the cram layer (so the
    tests need no [socat]).  Each argument is one request payload with
    [\n] escapes translated, e.g. ["ENTAIL s\\np(X)?"]. *)
module Client : sig
  val run :
    ?wait_s:float -> endpoint -> string list -> (int, string) result
  (** Connect (retrying for [wait_s] seconds — the server may still be
      binding), send each request in order, print the response frames
      to stdout ([data] payloads verbatim; [hello:]/[event:]/[ok:]/
      [err:] prefixes otherwise) and return the exit code: 0 when every
      reply was [ok], 1 otherwise.  [Error] when connecting fails. *)
end
