lib/modelfinder/sat.mli:
