lib/treewidth/decomposition.ml: Array Atom Atomset Fmt Fun Hashtbl List Set Syntax Term
