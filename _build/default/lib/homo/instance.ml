open Syntax

module SMap = Map.Make (String)

module PTKey = struct
  type t = string * int * Term.t

  let compare (p1, i1, t1) (p2, i2, t2) =
    let c = String.compare p1 p2 in
    if c <> 0 then c
    else
      let c = Int.compare i1 i2 in
      if c <> 0 then c else Term.compare t1 t2
end

module PTMap = Map.Make (PTKey)

type t = {
  atoms : Atomset.t;
  by_pred : Atom.t list SMap.t;
  by_ppt : Atom.t list PTMap.t;
}

let of_atomset atoms =
  let by_pred, by_ppt =
    Atomset.fold
      (fun a (bp, bt) ->
        let bp =
          SMap.update (Atom.pred a)
            (function None -> Some [ a ] | Some l -> Some (a :: l))
            bp
        in
        let bt, _ =
          List.fold_left
            (fun (bt, i) arg ->
              ( PTMap.update
                  (Atom.pred a, i, arg)
                  (function None -> Some [ a ] | Some l -> Some (a :: l))
                  bt,
                i + 1 ))
            (bt, 0) (Atom.args a)
        in
        (bp, bt))
      atoms (SMap.empty, PTMap.empty)
  in
  { atoms; by_pred; by_ppt }

let atomset ins = ins.atoms

let cardinal ins = Atomset.cardinal ins.atoms

let atoms_with_pred ins p =
  match SMap.find_opt p ins.by_pred with Some l -> l | None -> []

let atoms_with_pred_pos_term ins p i t =
  match PTMap.find_opt (p, i, t) ins.by_ppt with Some l -> l | None -> []

(* The most selective index entry for a pattern atom: among argument
   positions whose pattern term is a constant or a σ-bound variable, the
   (pred, pos, term) bucket with the fewest atoms; otherwise the predicate
   bucket. *)
let best_bucket ins pattern sigma =
  let p = Atom.pred pattern in
  let bound_positions =
    List.filteri
      (fun _ _ -> true)
      (List.mapi (fun i arg -> (i, arg)) (Atom.args pattern))
    |> List.filter_map (fun (i, arg) ->
           match arg with
           | Term.Const _ -> Some (i, arg)
           | Term.Var _ -> (
               match Subst.find arg sigma with
               | Some img -> Some (i, img)
               | None -> None))
  in
  let pred_bucket = atoms_with_pred ins p in
  List.fold_left
    (fun best (i, img) ->
      let bucket = atoms_with_pred_pos_term ins p i img in
      if List.length bucket < List.length best then bucket else best)
    pred_bucket bound_positions

let use_indexes = ref true

let all_atoms ins = Atomset.to_list ins.atoms

let candidates ins pattern sigma =
  if !use_indexes then best_bucket ins pattern sigma else all_atoms ins

let candidate_count ins pattern sigma =
  if !use_indexes then List.length (best_bucket ins pattern sigma)
  else Atomset.cardinal ins.atoms

let pp ppf ins = Atomset.pp ppf ins.atoms
