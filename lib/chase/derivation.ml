open Syntax

type step = {
  index : int;
  trigger : Trigger.t option;
  pi_safe : Subst.t;
  pre_instance : Atomset.t;
  simplification : Subst.t;
  instance : Atomset.t;
}

type t = { kb : Kb.t; rev_steps : step list; len : int }

let start ?(simplification = Subst.empty) kb =
  let f = Kb.facts kb in
  if not (Subst.is_retraction_of f simplification) then
    invalid_arg "Derivation.start: σ_0 is not a retraction of F";
  let step0 =
    {
      index = 0;
      trigger = None;
      pi_safe = Subst.empty;
      pre_instance = f;
      simplification;
      instance = Subst.apply simplification f;
    }
  in
  { kb; rev_steps = [ step0 ]; len = 1 }

(* Rebuild a derivation from previously recorded steps (checkpoint
   resume).  Structural checks only — indices consecutive from 0, each
   instance = σ(pre-instance) — since the triggers themselves are not
   serialized ([trigger = None] on reloaded steps); full Definition-1
   replay is what [validate] is for and is impossible without them. *)
let of_steps kb steps =
  (match steps with
  | [] -> invalid_arg "Derivation.of_steps: empty step list"
  | st0 :: _ ->
      if st0.index <> 0 then
        invalid_arg "Derivation.of_steps: first step must have index 0");
  List.iteri
    (fun i st ->
      if st.index <> i then
        invalid_arg
          (Printf.sprintf
             "Derivation.of_steps: step %d carries index %d (must be \
              consecutive from 0)"
             i st.index);
      if not (Atomset.equal st.instance (Subst.apply st.simplification st.pre_instance))
      then
        invalid_arg
          (Printf.sprintf "Derivation.of_steps: step %d: F ≠ σ(A)" i))
    steps;
  { kb; rev_steps = List.rev steps; len = List.length steps }

let kb d = d.kb

let length d = d.len

let step d i =
  if i < 0 || i >= d.len then invalid_arg "Derivation.step: out of range";
  List.nth d.rev_steps (d.len - 1 - i)

let steps d = List.rev d.rev_steps

let last d = List.hd d.rev_steps

let instance_at d i = (step d i).instance

let extend_applied ?(validate = true) d tr (app : Trigger.application)
    ~simplification =
  let prev = last d in
  if validate then begin
    if not (Trigger.is_trigger_for tr prev.instance) then
      invalid_arg "Derivation.extend: not a trigger for the last instance";
    if Trigger.satisfied tr prev.instance then
      invalid_arg "Derivation.extend: trigger already satisfied (Definition 1)";
    if not (Subst.is_retraction_of app.Trigger.result simplification) then
      invalid_arg "Derivation.extend: simplification is not a retraction"
  end;
  let st =
    {
      index = prev.index + 1;
      trigger = Some tr;
      pi_safe = app.Trigger.pi_safe;
      pre_instance = app.Trigger.result;
      simplification;
      instance = Subst.apply simplification app.Trigger.result;
    }
  in
  { d with rev_steps = st :: d.rev_steps; len = d.len + 1 }

let replace_last_simplification ?(validate = true) d simplification =
  match d.rev_steps with
  | [] | [ _ ] ->
      invalid_arg "Derivation.replace_last_simplification: no applied step"
  | st :: rest ->
      if validate && not (Subst.is_retraction_of st.pre_instance simplification)
      then
        invalid_arg
          "Derivation.replace_last_simplification: not a retraction";
      let st' =
        {
          st with
          simplification;
          instance = Subst.apply simplification st.pre_instance;
        }
      in
      { d with rev_steps = st' :: rest }

let extend ?validate d tr ~simplification =
  let app = Trigger.apply tr (last d).instance in
  extend_applied ?validate d tr app ~simplification

let is_monotonic d =
  let rec go = function
    | newer :: (older :: _ as rest) ->
        Atomset.subset older.instance newer.instance && go rest
    | _ -> true
  in
  go d.rev_steps

let validate d =
  let ( let* ) = Result.bind in
  let check b msg = if b then Ok () else Error msg in
  let rec go prev = function
    | [] -> Ok ()
    | st :: rest -> (
        match (st.trigger, prev) with
        | None, None ->
            (* step 0 *)
            let* () =
              check
                (Atomset.equal st.pre_instance (Kb.facts d.kb))
                "step 0: pre-instance is not the KB's facts"
            in
            let* () =
              check
                (Subst.is_retraction_of st.pre_instance st.simplification)
                "step 0: σ_0 is not a retraction of F"
            in
            let* () =
              check
                (Atomset.equal st.instance
                   (Subst.apply st.simplification st.pre_instance))
                "step 0: F_0 ≠ σ_0(F)"
            in
            go (Some st) rest
        | None, Some _ -> Error "non-initial step without a trigger"
        | Some _, None -> Error "initial step carries a trigger"
        | Some tr, Some prev_st ->
            let i = st.index in
            let* () =
              check
                (Trigger.is_trigger_for tr prev_st.instance)
                (Printf.sprintf "step %d: not a trigger for F_%d" i (i - 1))
            in
            let* () =
              check
                (not (Trigger.satisfied tr prev_st.instance))
                (Printf.sprintf "step %d: trigger already satisfied" i)
            in
            let replay = Trigger.apply_with_pi_safe tr st.pi_safe prev_st.instance in
            let* () =
              check
                (Atomset.equal st.pre_instance replay.Trigger.result)
                (Printf.sprintf "step %d: pre-instance ≠ α(F_%d, tr)" i (i - 1))
            in
            let* () =
              check
                (Subst.is_retraction_of st.pre_instance st.simplification)
                (Printf.sprintf "step %d: σ is not a retraction" i)
            in
            let* () =
              check
                (Atomset.equal st.instance
                   (Subst.apply st.simplification st.pre_instance))
                (Printf.sprintf "step %d: F ≠ σ(A)" i)
            in
            go (Some st) rest)
  in
  go None (steps d)

let sigma_trace d ~from_ ~to_ =
  if from_ > to_ then invalid_arg "Derivation.sigma_trace: from_ > to_";
  let rec go i acc =
    if i > to_ then acc
    else go (i + 1) (Subst.compose (step d i).simplification acc)
  in
  go (from_ + 1) Subst.empty

let natural_aggregation d =
  List.fold_left
    (fun acc st -> Atomset.union acc st.instance)
    Atomset.empty d.rev_steps

let terminated d =
  Trigger.unsatisfied_triggers_in (Kb.rules d.kb)
    (Homo.Instance.of_atomset (last d).instance)
  = []

let result d = if terminated d then Some (last d).instance else None

let fairness_debt d =
  (* index every element once up front; the check below revisits each
     F_j for every unsatisfied trigger of every F_i *)
  let all = List.map (fun st -> (st, Homo.Instance.of_atomset st.instance)) (steps d) in
  List.concat_map
    (fun (st, st_idx) ->
      let i = st.index in
      let triggers = Trigger.unsatisfied_triggers_in (Kb.rules d.kb) st_idx in
      (* a trigger satisfied in F_i itself is no debt; unsatisfied ones must
         have their trace satisfied in some later F_j *)
      List.filter_map
        (fun tr ->
          let settled =
            List.exists
              (fun (st_j, idx_j) ->
                st_j.index > i
                &&
                let trace = sigma_trace d ~from_:i ~to_:st_j.index in
                Trigger.satisfied_in (Trigger.rename trace tr) idx_j)
              all
          in
          if settled then None else Some (i, tr))
        triggers)
    all

let is_fair_prefix d = fairness_debt d = []

let pp_summary ppf d =
  List.iter
    (fun st ->
      Fmt.pf ppf "%3d %-12s |A|=%-4d |F|=%-4d %s@."
        st.index
        (match st.trigger with
        | None -> "(init)"
        | Some tr ->
            let n = Rule.name (Trigger.rule tr) in
            if n = "" then "(rule)" else n)
        (Atomset.cardinal st.pre_instance)
        (Atomset.cardinal st.instance)
        (if Subst.is_empty st.simplification then "" else "simplified"))
    (steps d)
