lib/treewidth/treewidth.ml: Atomset Decomposition Dot Elimination Exact Graph Grid Hypergraph Lowerbound Pathwidth Primal Syntax
