open Syntax

type t = { rule : Rule.t; mapping : Subst.t }

let make rule mapping =
  { rule; mapping = Subst.restrict (Rule.universal_vars rule) mapping }

let rule tr = tr.rule

let mapping tr = tr.mapping

let rename sigma tr =
  {
    tr with
    mapping =
      Subst.restrict (Rule.universal_vars tr.rule)
        (Subst.compose sigma tr.mapping);
  }

let equal tr1 tr2 =
  Rule.equal tr1.rule tr2.rule && Subst.equal tr1.mapping tr2.mapping

let is_trigger_for tr inst =
  Atomset.subset (Subst.apply tr.mapping (Rule.body tr.rule)) inst

let satisfied_in tr indexed =
  (* π extends to a homomorphism from B ∪ H into the instance. *)
  let src = Atomset.union (Rule.body tr.rule) (Rule.head tr.rule) in
  Homo.Hom.exists ~seed:tr.mapping src indexed

let satisfied tr inst = satisfied_in tr (Homo.Instance.of_atomset inst)

type application = {
  result : Atomset.t;
  pi_safe : Subst.t;
  produced : Atomset.t;
  fresh : Term.t list;
}

let pi_safe_of tr =
  let frontier_part = Subst.restrict (Rule.frontier tr.rule) tr.mapping in
  let fresh = ref [] in
  let full =
    List.fold_left
      (fun s z ->
        let nv = Term.fresh_var ~hint:(Term.hint z) () in
        fresh := nv :: !fresh;
        Subst.add z nv s)
      frontier_part
      (Rule.existential_vars tr.rule)
  in
  (full, List.rev !fresh)

let apply_with tr pi_safe fresh inst =
  if not (is_trigger_for tr inst) then
    invalid_arg "Trigger.apply: not a trigger for the instance";
  let produced = Subst.apply pi_safe (Rule.head tr.rule) in
  { result = Atomset.union inst produced; pi_safe; produced; fresh }

let apply tr inst =
  let pi_safe, fresh = pi_safe_of tr in
  apply_with tr pi_safe fresh inst

let apply_with_pi_safe tr pi_safe inst =
  let fresh =
    List.filter_map
      (fun z ->
        match Subst.find z pi_safe with
        | Some t when Term.is_var t -> Some t
        | _ -> None)
      (Rule.existential_vars tr.rule)
  in
  apply_with tr pi_safe fresh inst

let triggers_of r indexed =
  List.map (fun h -> make r h) (Homo.Hom.all (Rule.body r) indexed)

let unsatisfied_triggers rules inst =
  let indexed = Homo.Instance.of_atomset inst in
  List.concat_map
    (fun r ->
      List.filter (fun tr -> not (satisfied_in tr indexed)) (triggers_of r indexed))
    rules

let pp ppf tr =
  Fmt.pf ppf "(%s, %a)"
    (if Rule.name tr.rule = "" then "<rule>" else Rule.name tr.rule)
    Subst.pp tr.mapping
