lib/treewidth/hypergraph.ml: Array Atom Atomset Decomposition Elimination List Primal Set Syntax Term
