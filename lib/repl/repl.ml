open Syntax
module Cmdline = Cmdline

type variant = [ `Restricted | `Core | `Frugal ]

type state = {
  kb : Kb.t option;
  variant : variant;
  derivation : Chase.Derivation.t option;
  rest : Chase.Derivation.t Seq.t option;  (** unconsumed stream tail *)
  exit : bool;
}

let initial =
  { kb = None; variant = `Core; derivation = None; rest = None; exit = false }

let wants_exit st = st.exit

let help_text =
  "commands: load FILE | kb TEXT | variant restricted|core|frugal | step [N]\n\
  \          run [N] | show | tw | summary | robust | query Q | classify\n\
  \          reset | help | quit"

let variant_name = function
  | `Restricted -> "restricted"
  | `Core -> "core"
  | `Frugal -> "frugal"

(* (re)start the stream for the current KB/variant *)
let boot st kb =
  let seq = Chase.Variants.stream ~variant:st.variant kb in
  match seq () with
  | Seq.Cons (d0, rest) ->
      { st with kb = Some kb; derivation = Some d0; rest = Some rest }
  | Seq.Nil -> { st with kb = Some kb; derivation = None; rest = None }

let with_kb st f =
  match (st.kb, st.derivation) with
  | Some kb, Some d -> f kb d
  | _ -> (st, "no knowledge base loaded (use: load FILE or kb TEXT)")

let advance st n =
  with_kb st (fun _ d0 ->
      let rec go d rest k =
        if k = 0 then (d, rest, false)
        else
          match rest () with
          | Seq.Nil -> (d, Seq.empty, true)
          | Seq.Cons (d', rest') -> go d' rest' (k - 1)
      in
      match st.rest with
      | None -> (st, "run finished (reset to start over)")
      | Some rest ->
          let d', rest', finished = go d0 rest n in
          let st' =
            {
              st with
              derivation = Some d';
              rest = (if finished then None else Some rest');
            }
          in
          let last = (Chase.Derivation.last d').Chase.Derivation.instance in
          ( st',
            Fmt.str "%s: %d steps total, |F| = %d%s"
              (variant_name st.variant)
              (Chase.Derivation.length d' - 1)
              (Atomset.cardinal last)
              (if finished then " — fixpoint reached" else "") ))

let parse_int_default = Cmdline.int_default

let cmd_load st arg =
  match Dlgp.parse_file (String.trim arg) with
  | exception Sys_error m -> (st, m)
  | Error e -> (st, Fmt.str "%a" Dlgp.pp_error e)
  | Ok doc ->
      let kb = Dlgp.kb_of_document doc in
      ( boot st kb,
        Fmt.str "loaded %d facts, %d rules" (Atomset.cardinal (Kb.facts kb))
          (List.length (Kb.rules kb)) )

let cmd_kb st arg =
  match Dlgp.parse_kb arg with
  | Error e -> (st, Fmt.str "%a" Dlgp.pp_error e)
  | Ok kb ->
      ( boot st kb,
        Fmt.str "loaded %d facts, %d rules" (Atomset.cardinal (Kb.facts kb))
          (List.length (Kb.rules kb)) )

let cmd_variant st arg =
  let v =
    match String.trim arg with
    | "restricted" -> Some `Restricted
    | "core" -> Some `Core
    | "frugal" -> Some `Frugal
    | _ -> None
  in
  match v with
  | None -> (st, "variants: restricted | core | frugal")
  | Some v -> (
      let st = { st with variant = v } in
      match st.kb with
      | Some kb -> (boot st kb, "variant set; run reset")
      | None -> (st, "variant set"))

let cmd_show st =
  with_kb st (fun _ d ->
      let inst = (Chase.Derivation.last d).Chase.Derivation.instance in
      (st, Fmt.str "%a" Atomset.pp_verbose inst))

let cmd_tw st =
  with_kb st (fun _ d ->
      let inst = (Chase.Derivation.last d).Chase.Derivation.instance in
      let w, exact = Treewidth.best_effort inst in
      ( st,
        Fmt.str "treewidth %d (%s); pathwidth %d" w
          (if exact then "exact" else "min-fill bound")
          (fst (Treewidth.Pathwidth.of_atomset inst)) ))

let cmd_summary st =
  with_kb st (fun _ d -> (st, Fmt.str "%a" Chase.Derivation.pp_summary d))

let cmd_robust st =
  with_kb st (fun _ d ->
      let r = Corechase.Robust.of_derivation d in
      let agg = Corechase.Robust.aggregation r in
      let stable = Corechase.Robust.stable_aggregation r in
      let inv =
        match Corechase.Robust.check_invariants r with
        | Ok () -> "ok"
        | Error m -> "VIOLATED: " ^ m
      in
      ( st,
        Fmt.str
          "invariants: %s@.D⊛ prefix: %d atoms (tw ≤ %d)@.stable part: %d atoms (tw ≤ %d)"
          inv (Atomset.cardinal agg) (Treewidth.upper_bound agg)
          (Atomset.cardinal stable)
          (Treewidth.upper_bound stable) ))

let cmd_query st arg =
  with_kb st (fun kb d ->
      match Dlgp.parse_string ("? :- " ^ String.trim arg ^ ".") with
      | Error e -> (st, Fmt.str "%a" Dlgp.pp_error e)
      | Ok { Dlgp.queries = [ q ]; _ } ->
          let inst = (Chase.Derivation.last d).Chase.Derivation.instance in
          let here = Corechase.Entailment.holds_in q inst in
          let verdict =
            Corechase.Entailment.decide
              ~budget:{ Chase.Variants.max_steps = 200; max_atoms = 5000 }
              kb q
          in
          ( st,
            Fmt.str "in current instance: %b;  K ⊨ Q: %a" here
              Corechase.Entailment.pp_verdict verdict )
      | Ok _ -> (st, "could not parse the query"))

let cmd_classify st =
  match st.kb with
  | None -> (st, "no knowledge base loaded")
  | Some kb -> (st, Fmt.str "%a" Rclasses.pp_report (Rclasses.analyze (Kb.rules kb)))

let cmd_reset st =
  match st.kb with
  | None -> (st, "no knowledge base loaded")
  | Some kb -> (boot st kb, "reset to F_0")

let exec st line =
  let cmd, arg = Cmdline.split line in
  match cmd with
  | "" -> (st, "")
  | "help" -> (st, help_text)
  | "quit" | "exit" -> ({ st with exit = true }, "bye")
  | "load" -> cmd_load st arg
  | "kb" -> cmd_kb st arg
  | "variant" -> cmd_variant st arg
  | "step" -> advance st (parse_int_default arg 1)
  | "run" -> advance st (parse_int_default arg 100)
  | "show" -> cmd_show st
  | "tw" -> cmd_tw st
  | "summary" -> cmd_summary st
  | "robust" -> cmd_robust st
  | "query" -> cmd_query st arg
  | "classify" -> cmd_classify st
  | "reset" -> cmd_reset st
  | _ -> (st, "unknown command\n" ^ help_text)
