module M = Map.Make (Int)

(* Keyed by variable rank; the value stores the (variable, image) pair so
   that domains can be recovered with their hints intact. *)
type t = (Term.t * Term.t) M.t

let empty = M.empty

let is_empty = M.is_empty

let key x =
  match x with
  | Term.Var v -> v.Term.id
  | Term.Const c -> invalid_arg ("Subst: constant in domain: " ^ c)

let add x t s = M.add (key x) (x, t) s

let singleton x t = add x t empty

let of_list l =
  List.fold_left
    (fun s (x, t) ->
      (match M.find_opt (key x) s with
      | Some (_, t') when not (Term.equal t t') ->
          invalid_arg "Subst.of_list: conflicting bindings"
      | _ -> ());
      add x t s)
    empty l

let to_list s = List.map snd (M.bindings s)

let find x s =
  match x with
  | Term.Const _ -> None
  | Term.Var v -> Option.map snd (M.find_opt v.Term.id s)

let mem x s = match find x s with Some _ -> true | None -> false

let domain s = List.map fst (to_list s)

let range s =
  List.map snd (to_list s) |> List.sort_uniq Term.compare

let cardinal = M.cardinal

let apply_term s t =
  match t with
  | Term.Const _ -> t
  | Term.Var v -> (
      match M.find_opt v.Term.id s with Some (_, t') -> t' | None -> t)

let apply_atom s a = Atom.make (Atom.pred a) (List.map (apply_term s) (Atom.args a))

let apply s aset = Atomset.map (apply_atom s) aset

let compose s' s =
  (* σ' • σ : defined on dom σ ∪ dom σ', maps Y to σ'⁺(σ⁺(Y)). *)
  let from_s = M.map (fun (x, t) -> (x, apply_term s' t)) s in
  M.union (fun _ from_s_binding _ -> Some from_s_binding) from_s s'

let compatible s1 s2 =
  M.for_all
    (fun k (_, t1) ->
      match M.find_opt k s2 with
      | None -> true
      | Some (_, t2) -> Term.equal t1 t2)
    s1

let merge s1 s2 =
  if compatible s1 s2 then
    Some (M.union (fun _ b _ -> Some b) s1 s2)
  else None

let restrict vs s =
  let keep = List.filter_map (fun v ->
      match v with Term.Var w -> Some w.Term.id | Term.Const _ -> None) vs
  in
  let keep = List.sort_uniq Int.compare keep in
  M.filter (fun k _ -> List.mem k keep) s

let restrict_to_vars_of aset s = restrict (Atomset.vars aset) s

let equal s1 s2 =
  M.equal (fun (_, t1) (_, t2) -> Term.equal t1 t2) s1 s2

let is_identity_on ts s =
  List.for_all (fun t -> Term.equal (apply_term s t) t) ts

let is_endomorphism_of aset s = Atomset.subset (apply s aset) aset

let is_retraction_of aset s =
  is_endomorphism_of aset s
  && is_identity_on (Atomset.terms (apply s aset)) s

let is_injective_on ts s =
  let images = List.map (apply_term s) ts in
  let distinct = List.sort_uniq Term.compare images in
  List.length distinct = List.length ts

let inverse_on ts s =
  let ts = List.sort_uniq Term.compare ts in
  if not (is_injective_on ts s) then None
  else
    let exception Not_invertible in
    try
      Some
        (List.fold_left
           (fun acc t ->
             let img = apply_term s t in
             match img with
             | Term.Const _ ->
                 if Term.equal img t then acc else raise Not_invertible
             | Term.Var _ -> add img t acc)
           empty ts)
    with Not_invertible -> None

let pp_binding pp_term ppf (x, t) = Fmt.pf ppf "%a↦%a" pp_term x pp_term t

let pp ppf s =
  Fmt.pf ppf "[@[%a@]]" Fmt.(list ~sep:comma (pp_binding Term.pp)) (to_list s)

let pp_debug ppf s =
  Fmt.pf ppf "[@[%a@]]"
    Fmt.(list ~sep:comma (pp_binding Term.pp_debug))
    (to_list s)
