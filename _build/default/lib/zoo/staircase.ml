open Syntax

let atom p args = Atom.make p args

(* Σ_h, Figure 2 (universal quantifiers omitted as in the paper):
   R1: h(X,X) → ∃X'YY'. h(X,Y) ∧ v(X,X') ∧ h(X',Y') ∧ v(Y,Y') ∧ c(Y')
   R2: h(X,X) ∧ v(X,X') ∧ h(X',X') ∧ h(X',Y') → ∃Y. c(Y') ∧ h(X,Y) ∧ v(Y,Y')
   R3: f(X) ∧ h(X,X) ∧ h(X,Y) → f(Y) ∧ h(Y,Y)
   R4: h(X,X) ∧ v(X,X') ∧ c(X') → h(X',X') *)
let rules () =
  let r1 =
    let x = Term.fresh_var ~hint:"X" () in
    let x' = Term.fresh_var ~hint:"X'" () in
    let y = Term.fresh_var ~hint:"Y" () in
    let y' = Term.fresh_var ~hint:"Y'" () in
    Rule.make ~name:"Rh1"
      ~body:[ atom "h" [ x; x ] ]
      ~head:
        [
          atom "h" [ x; y ]; atom "v" [ x; x' ]; atom "h" [ x'; y' ];
          atom "v" [ y; y' ]; atom "c" [ y' ];
        ]
      ()
  in
  let r2 =
    let x = Term.fresh_var ~hint:"X" () in
    let x' = Term.fresh_var ~hint:"X'" () in
    let y = Term.fresh_var ~hint:"Y" () in
    let y' = Term.fresh_var ~hint:"Y'" () in
    Rule.make ~name:"Rh2"
      ~body:
        [
          atom "h" [ x; x ]; atom "v" [ x; x' ]; atom "h" [ x'; x' ];
          atom "h" [ x'; y' ];
        ]
      ~head:[ atom "c" [ y' ]; atom "h" [ x; y ]; atom "v" [ y; y' ] ]
      ()
  in
  let r3 =
    let x = Term.fresh_var ~hint:"X" () in
    let y = Term.fresh_var ~hint:"Y" () in
    Rule.make ~name:"Rh3"
      ~body:[ atom "f" [ x ]; atom "h" [ x; x ]; atom "h" [ x; y ] ]
      ~head:[ atom "f" [ y ]; atom "h" [ y; y ] ]
      ()
  in
  let r4 =
    let x = Term.fresh_var ~hint:"X" () in
    let x' = Term.fresh_var ~hint:"X'" () in
    Rule.make ~name:"Rh4"
      ~body:[ atom "h" [ x; x ]; atom "v" [ x; x' ]; atom "c" [ x' ] ]
      ~head:[ atom "h" [ x'; x' ] ]
      ()
  in
  [ r1; r2; r3; r4 ]

let kb () =
  let x00 = Term.fresh_var ~hint:"X0_0" () in
  Kb.make
    ~facts:(Atomset.of_list [ atom "f" [ x00 ]; atom "h" [ x00; x00 ] ])
    ~rules:(rules ())

type structure = {
  atoms : Atomset.t;
  term : int -> int -> Term.t option;
}

(* I^h restricted to columns 0..n.  Cell (i,j) exists for 0 ≤ j ≤ i+1.
   Variables are created column-major, bottom row first, so that ranks grow
   with (i, j) lexicographically — the order the chase narrative of
   Section 6 creates them in, and the one the robust-renaming discussion of
   Section 8 assumes. *)
let universal_model_prefix ~cols:n =
  if n < 0 then invalid_arg "Staircase: cols must be ≥ 0";
  let cell =
    Array.init (n + 1) (fun i ->
        Array.init (i + 2) (fun j ->
            Term.fresh_var ~hint:(Printf.sprintf "Xh%d_%d" i j) ()))
  in
  let atoms = ref [] in
  let add a = atoms := a :: !atoms in
  for i = 0 to n do
    add (atom "f" [ cell.(i).(0) ]);
    for j = 1 to i do
      add (atom "c" [ cell.(i).(j) ])
    done;
    for j = 0 to i do
      add (atom "h" [ cell.(i).(j); cell.(i).(j) ]);
      add (atom "v" [ cell.(i).(j); cell.(i).(j + 1) ])
    done;
    if i < n then
      for j = 0 to i + 1 do
        add (atom "h" [ cell.(i).(j); cell.(i + 1).(j) ])
      done
  done;
  {
    atoms = Atomset.of_list !atoms;
    term =
      (fun i j ->
        if i >= 0 && i <= n && j >= 0 && j <= i + 1 then Some cell.(i).(j)
        else None);
  }

let cells_exn s pairs =
  List.map
    (fun (i, j) ->
      match s.term i j with
      | Some t -> t
      | None -> invalid_arg "Staircase: cell out of range")
    pairs

let column s k =
  let terms = cells_exn s (List.init (k + 1) (fun j -> (k, j))) in
  Atomset.induced terms s.atoms

let step_atomset s k =
  let terms =
    cells_exn s
      (List.init (k + 2) (fun j -> (k, j))
      @ List.init (k + 2) (fun j -> (k + 1, j)))
  in
  Atomset.induced terms s.atoms

(* Ĩ^h truncated at [height]: one infinite column — f at the bottom, c
   above, an h-self-loop on every cell, a v-path upward. *)
let infinite_column_prefix ~height =
  if height < 0 then invalid_arg "Staircase: height must be ≥ 0";
  let cell =
    Array.init (height + 1) (fun j ->
        Term.fresh_var ~hint:(Printf.sprintf "Col%d" j) ())
  in
  let atoms = ref [] in
  let add a = atoms := a :: !atoms in
  add (atom "f" [ cell.(0) ]);
  for j = 0 to height do
    add (atom "h" [ cell.(j); cell.(j) ]);
    if j >= 1 then add (atom "c" [ cell.(j) ]);
    if j < height then add (atom "v" [ cell.(j); cell.(j + 1) ])
  done;
  {
    atoms = Atomset.of_list !atoms;
    term =
      (fun i j ->
        if i = 0 && j >= 0 && j <= height then Some cell.(j) else None);
  }

let grid_naming s ~n =
  (* Appendix B: T_{n×n} = {X^i_j | n+1 ≤ i ≤ 2n, 0 ≤ j ≤ n-1} *)
  let ok = ref true in
  for a = 1 to n do
    for b = 1 to n do
      if s.term (n + a) (b - 1) = None then ok := false
    done
  done;
  if not !ok then None
  else
    Some
      (fun a b ->
        match s.term (n + a) (b - 1) with
        | Some t -> t
        | None -> assert false)
