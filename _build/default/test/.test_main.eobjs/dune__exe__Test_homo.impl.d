test/test_homo.ml: Alcotest Atom Atomset Fmt Homo Kb List QCheck QCheck_alcotest Subst Syntax Term
