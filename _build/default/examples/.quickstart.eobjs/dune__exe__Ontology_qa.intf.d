examples/ontology_qa.mli:
