lib/core/measures.ml: Array Atomset List Syntax Treewidth
