lib/chase/trigger.ml: Atomset Fmt Homo List Rule Subst Syntax Term
