open Syntax

type strategy = By_variable | By_atom

let strategy = ref By_variable

(* Delta-scoped folding (DESIGN.md §9).  [Full] searches every variable
   (resp. non-ground atom); [Delta] restricts the *first* fold search to
   the candidate set derived from the step's delta, which is complete as
   long as the pre-delta instance was a core.  Once one fold fires that
   invariant is consumed and the loop falls back to the full search. *)
type scope = Full | Delta of { fresh : Term.t list; added : Atom.t list }

(* Scoping policy, mirroring [Trigger.discovery]'s trichotomy: [Scoped]
   trusts the caller's [Delta] scopes, [Exhaustive] ignores them and
   always folds fully (the oracle), [Audit] runs both and fails loudly on
   disagreement (cores are compared up to isomorphism — they are only
   unique up to iso once a fold has fired). *)
type scoping = Scoped | Exhaustive | Audit

let scoping = ref Scoped

let m_scoped = Obs.Metrics.counter "core.scoped_searches"

let m_certified = Obs.Metrics.counter "core.scoped_certified"

let m_fallbacks = Obs.Metrics.counter "core.full_fallbacks"

module TSet = Set.Make (Term)

(* Memo keys (DESIGN.md §12): small int arrays over interned codes, one
   kind tag per fold-candidate family so keys of different families can
   never collide.  Tag 0 is [Trigger]'s satisfaction key; within a
   family the remaining elements determine the candidate uniquely
   ([key_pair] prefixes the first atom's arity so the two flattened
   atoms cannot be re-bracketed into each other). *)
let key_var x = [| 1; Flat.code_of_term x |]

let key_atom at =
  let f = Flat.encode at in
  Array.concat [ [| 2; Flat.pred f |]; Flat.args f ]

let key_fresh z = [| 3; Flat.code_of_term z |]

let key_pair b d =
  let fb = Flat.encode b and fd = Flat.encode d in
  Array.concat
    [
      [| 4; Flat.arity fb; Flat.pred fb |];
      Flat.args fb;
      [| Flat.pred fd |];
      Flat.args fd;
    ]

(* The fold search works on one index of the current instance; candidate
   targets (the instance minus the atoms carrying one variable / minus one
   atom) are derived from it by incremental removal rather than rebuilt.
   Failed per-candidate searches are memoised under the base instance's
   generation: within one epoch (notably when [Audit] re-runs the full
   search after the scoped one) each candidate is searched at most once. *)
let fold_via_var idx a epoch x =
  let target = Instance.remove_atoms idx (Instance.atoms_with_term idx x) in
  Hom.find ~memo:(key_var x, epoch) a target

let fold_via_atom idx a epoch at =
  if Atom.is_ground at then None
  else
    Hom.find ~memo:(key_atom at, epoch) a (Instance.remove_atoms idx [ at ])

(* [Par.find_first_map] is [List.find_map] with jobs = 1; with a pool it
   evaluates the candidates in waves and keeps the lowest-index success,
   so the fold found (and hence the whole retraction chain) is the one
   the sequential search finds. *)
let find_fold_indexed idx =
  let a = Instance.atomset idx in
  let epoch = Instance.generation idx in
  match !strategy with
  | By_variable ->
      Par.find_first_map ~site:"core.fold" (fold_via_var idx a epoch)
        (Atomset.vars a)
  | By_atom ->
      Par.find_first_map ~site:"core.fold" (fold_via_atom idx a epoch)
        (Atomset.to_list a)

let find_fold a = find_fold_indexed (Instance.of_atomset a)

(* The scoped first-fold search after one delta (DESIGN.md §9).  Writing
   the instance as [I = A ∪ D] with [A] a core and [D] the step's delta,
   any proper retraction [r] of [I] falls in exactly one of two cases:

   (a) [r] is the identity on [A] (an idempotent automorphism of a core
       is the identity), so it moves only the delta's fresh nulls — and
       in fact fixes every non-fresh variable of [I];

   (b) [r] moves a variable of [A]; then [r(A) ⊄ A], so some atom [b]
       maps onto a genuinely-new delta atom [d ∈ D ∖ A] with [b ≠ d].
       Atoms are flat, so [r]'s restriction to [vars b] is exactly the
       per-position unifier [h = extend_via_atom ∅ b d]; moreover [r],
       being idempotent, fixes [d]'s variables, and omits every atom
       containing an [h]-moved variable.

   Each case yields a finished search: (a) per alive fresh null [z], a
   search for an endomorphism fixing all non-fresh variables into
   [I ∖ atoms z]; (b) per unifiable pair [(b, d)] whose moved variables
   avoid [vars d], a single [h]-seeded search into [I] minus the atoms
   of all [h]-moved variables.  A [None] over all of them certifies that
   [I] is still a core — the dominant case on long chase prefixes, and
   the reason per-step cost tracks the delta.  [added] must list exactly
   the atoms of [D ∖ A] (new in the instance, not re-derived
   duplicates). *)
let moved_vars h b =
  List.filter
    (fun x ->
      match Subst.find x h with Some t -> not (Term.equal t x) | None -> false)
    (Atom.vars b)

let find_fold_scoped idx ~fresh ~added =
  Resilience.Fault.hit "fold";
  Resilience.poll ();
  let a = Instance.atomset idx in
  let epoch = Instance.generation idx in
  (* Both candidate families are enumerated (cheaply) up front on the
     calling domain, in the order the sequential search visits them; the
     seeded hom searches — the expensive part — then fan out over the
     pool, first-fired-fold resolution going to the lowest seed index
     (= the fold the sequential search fires).  [candidates] in the
     trace event counts the prefiltered seeded searches, whether or not
     an early success makes some of them moot. *)
  (* case (a): a fold eliminating a fresh null, identity elsewhere *)
  let freshset = List.fold_left (fun s z -> TSet.add z s) TSet.empty fresh in
  let alive_fresh =
    List.filter (fun z -> Instance.atoms_with_term idx z <> []) fresh
  in
  let keep_seed =
    (* forced on the calling domain: a shared [lazy] would race *)
    if alive_fresh = [] then Subst.empty
    else
      List.fold_left
        (fun s x -> if TSet.mem x freshset then s else Subst.add x x s)
        Subst.empty (Atomset.vars a)
  in
  let via_fresh z =
    Hom.find ~memo:(key_fresh z, epoch) ~seed:keep_seed a
      (Instance.remove_atoms idx (Instance.atoms_with_term idx z))
  in
  (* case (b): an old atom maps onto a new delta atom *)
  let pair_candidates =
    List.concat_map
      (fun d ->
        List.filter_map
          (fun b ->
            if Atom.equal b d then None
            else
              match Hom.extend_via_atom Subst.empty b d with
              | None -> None
              | Some h -> (
                  match moved_vars h b with
                  | [] -> None
                  | moved
                    when List.exists
                           (fun x -> List.exists (Term.equal x) (Atom.vars d))
                           moved ->
                      (* an idempotent retraction fixes the variables of
                         its image atom [d]; a pair moving one cannot
                         witness (b) *)
                      None
                  | moved -> Some (b, d, h, moved)))
          (Instance.atoms_with_pred idx (Atom.pred d)))
      added
  in
  let via_pair (b, d, h, moved) =
    let dropped = List.concat_map (Instance.atoms_with_term idx) moved in
    Hom.find ~memo:(key_pair b d, epoch) ~seed:h a
      (Instance.remove_atoms idx dropped)
  in
  let searches = List.length alive_fresh + List.length pair_candidates in
  let r =
    match Par.find_first_map ~site:"core.scoped" via_fresh alive_fresh with
    | Some h -> Some h
    | None -> Par.find_first_map ~site:"core.scoped" via_pair pair_candidates
  in
  if !Obs.Metrics.enabled then begin
    Obs.Metrics.incr m_scoped;
    Obs.Metrics.incr (if r = None then m_certified else m_fallbacks)
  end;
  if Obs.Trace.enabled () then
    Obs.Trace.emit
      (Obs.Trace.Core_scoped_fold
         {
           candidates = searches;
           folded = r <> None;
           size = Instance.cardinal idx;
         });
  r

let rec fold_loop sigma idx =
  Resilience.Fault.hit "fold";
  Resilience.poll ();
  match find_fold_indexed idx with
  | None -> (sigma, Instance.atomset idx)
  | Some h -> fold_loop (Subst.compose h sigma) (Instance.apply_subst h idx)

let fold_to_core scope idx =
  match scope with
  | Delta { fresh; added } when !scoping <> Exhaustive -> (
      let scoped () =
        match find_fold_scoped idx ~fresh ~added with
        | None -> (Subst.empty, Instance.atomset idx)
        | Some h ->
            (* the core invariant is consumed by the first fold; finish
               with the unconditional search *)
            fold_loop (Subst.compose h Subst.empty) (Instance.apply_subst h idx)
      in
      match !scoping with
      | Audit ->
          let _, s_core = scoped () in
          let f_sigma, f_core = fold_loop Subst.empty idx in
          if
            not
              (Atomset.cardinal s_core = Atomset.cardinal f_core
              && Morphism.isomorphic s_core f_core)
          then
            failwith
              (Fmt.str
                 "Core: delta-scoped fold disagrees with the full fold (%d \
                  vs %d atoms)"
                 (Atomset.cardinal s_core) (Atomset.cardinal f_core));
          (f_sigma, f_core)
      | _ -> scoped ())
  | _ -> fold_loop Subst.empty idx

let retraction_to_core_indexed ?(scope = Full) idx =
  let a = Instance.atomset idx in
  let sigma_star, c = fold_to_core scope idx in
  if Subst.is_empty sigma_star then Subst.empty
  else begin
    (* σ* : A → C is a homomorphism onto the core C; its restriction to C
       is an endomorphism of the finite core C, hence an automorphism.
       Pre-composing with the inverse yields a retraction. *)
    let g = Subst.restrict (Atomset.vars c) sigma_star in
    let r =
      if Subst.is_identity_on (Atomset.terms c) g then sigma_star
      else
        let g_inv = Morphism.invert_automorphism c g in
        Subst.compose g_inv sigma_star
    in
    assert (Subst.is_retraction_of a r);
    r
  end

let retraction_to_core ?scope a =
  retraction_to_core_indexed ?scope (Instance.of_atomset a)

let core_with_retraction a =
  let r = retraction_to_core a in
  (Subst.apply r a, r)

let of_atomset a = fst (core_with_retraction a)

let is_core a = match find_fold a with None -> true | Some _ -> false
