lib/zoo/staircase.mli: Atomset Kb Syntax Term
