(* Tests for lib/homo: homomorphism search, isomorphism, retraction, cores. *)

open Syntax

let v hint = Term.fresh_var ~hint ()
let x = v "X"
let y = v "Y"
let z = v "Z"
let w = v "W"
let a = Term.const "a"
let b = Term.const "b"
let c = Term.const "c"

let atom p args = Atom.make p args
let aset = Atomset.of_list

let aset_t : Atomset.t Alcotest.testable =
  Alcotest.testable Atomset.pp_verbose Atomset.equal

(* ------------------------------------------------------------------ *)
(* Instance index tests *)

let test_instance_by_pred () =
  let ins = Homo.Instance.of_atomset (aset [ atom "p" [ a; b ]; atom "q" [ a ] ]) in
  Alcotest.(check int) "p bucket" 1
    (List.length (Homo.Instance.atoms_with_pred ins "p"));
  Alcotest.(check int) "missing pred" 0
    (List.length (Homo.Instance.atoms_with_pred ins "r"))

let test_instance_by_pos_term () =
  let ins =
    Homo.Instance.of_atomset
      (aset [ atom "p" [ a; b ]; atom "p" [ a; c ]; atom "p" [ b; c ] ])
  in
  Alcotest.(check int) "a at pos 0" 2
    (List.length (Homo.Instance.atoms_with_pred_pos_term ins "p" 0 a));
  Alcotest.(check int) "c at pos 1" 2
    (List.length (Homo.Instance.atoms_with_pred_pos_term ins "p" 1 c))

let test_instance_candidates_use_constants () =
  let ins =
    Homo.Instance.of_atomset
      (aset [ atom "p" [ a; b ]; atom "p" [ a; c ]; atom "p" [ b; c ] ])
  in
  (* pattern p(b, X): constant at pos 0 narrows to 1 candidate *)
  let cands = Homo.Instance.candidates ins (atom "p" [ b; x ]) Subst.empty in
  Alcotest.(check int) "selective bucket" 1 (List.length cands)

let test_instance_candidates_use_bindings () =
  let ins =
    Homo.Instance.of_atomset
      (aset [ atom "p" [ a; b ]; atom "p" [ a; c ]; atom "p" [ b; c ] ])
  in
  let sigma = Subst.of_list [ (x, b) ] in
  let cands = Homo.Instance.candidates ins (atom "p" [ x; y ]) sigma in
  Alcotest.(check int) "bound var narrows" 1 (List.length cands)

(* ------------------------------------------------------------------ *)
(* Homomorphism tests *)

let find_hom src tgt = Homo.Hom.find_into (aset src) (aset tgt)

let test_hom_identity () =
  let s = [ atom "p" [ x; y ] ] in
  match find_hom s s with
  | None -> Alcotest.fail "identity hom must exist"
  | Some _ -> ()

let test_hom_var_to_const () =
  match find_hom [ atom "p" [ x ] ] [ atom "p" [ a ] ] with
  | Some s -> Alcotest.(check bool) "x->a" true (Term.equal (Subst.apply_term s x) a)
  | None -> Alcotest.fail "hom must exist"

let test_hom_const_mismatch () =
  Alcotest.(check bool) "a cannot map to b" false
    (Homo.Hom.maps_to (aset [ atom "p" [ a ] ]) (aset [ atom "p" [ b ] ]))

let test_hom_join () =
  (* p(x,y), p(y,z) into a path a->b->c: x=a y=b z=c. *)
  match
    find_hom
      [ atom "p" [ x; y ]; atom "p" [ y; z ] ]
      [ atom "p" [ a; b ]; atom "p" [ b; c ] ]
  with
  | Some s ->
      Alcotest.(check bool) "y=b" true (Term.equal (Subst.apply_term s y) b)
  | None -> Alcotest.fail "path hom must exist"

let test_hom_join_fails () =
  (* p(x,y), p(y,z) cannot map into two disconnected edges. *)
  Alcotest.(check bool) "no hom into disconnected edges" false
    (Homo.Hom.maps_to
       (aset [ atom "p" [ x; y ]; atom "p" [ y; z ] ])
       (aset [ atom "p" [ a; b ]; atom "p" [ c; c ] ] |> Atomset.remove (atom "p" [ c; c ])
        |> Atomset.add (atom "q" [ c ])))

let test_hom_cycle_to_loop () =
  (* A 2-cycle maps onto a self-loop (collapsing x,y). *)
  match
    find_hom [ atom "p" [ x; y ]; atom "p" [ y; x ] ] [ atom "p" [ a; a ] ]
  with
  | Some s ->
      Alcotest.(check bool) "x=y=a" true
        (Term.equal (Subst.apply_term s x) a
        && Term.equal (Subst.apply_term s y) a)
  | None -> Alcotest.fail "collapse hom must exist"

let test_hom_loop_not_to_cycle_path () =
  (* A self-loop does not map into a loopless edge. *)
  Alcotest.(check bool) "loop needs loop" false
    (Homo.Hom.maps_to (aset [ atom "p" [ x; x ] ]) (aset [ atom "p" [ a; b ] ]))

let test_hom_seed () =
  let tgt = Homo.Instance.of_atomset (aset [ atom "p" [ a; b ]; atom "p" [ b; c ] ]) in
  let seed = Subst.of_list [ (x, b) ] in
  match Homo.Hom.find ~seed (aset [ atom "p" [ x; y ] ]) tgt with
  | Some s ->
      Alcotest.(check bool) "seed respected" true
        (Term.equal (Subst.apply_term s x) b);
      Alcotest.(check bool) "y=c" true (Term.equal (Subst.apply_term s y) c)
  | None -> Alcotest.fail "seeded hom must exist"

let test_hom_seed_unsatisfiable () =
  let tgt = Homo.Instance.of_atomset (aset [ atom "p" [ a; b ] ]) in
  let seed = Subst.of_list [ (x, b) ] in
  Alcotest.(check bool) "no extension" false
    (Homo.Hom.exists ~seed (aset [ atom "p" [ x; y ] ]) tgt)

let test_hom_all_count () =
  (* p(x,y) into a triangle of edges: 3 homs. *)
  let tgt =
    Homo.Instance.of_atomset
      (aset [ atom "p" [ a; b ]; atom "p" [ b; c ]; atom "p" [ c; a ] ])
  in
  Alcotest.(check int) "3 homs" 3 (Homo.Hom.count (aset [ atom "p" [ x; y ] ]) tgt);
  Alcotest.(check int) "limit 2" 2
    (Homo.Hom.count ~limit:2 (aset [ atom "p" [ x; y ] ]) tgt);
  Alcotest.(check int) "all collects" 3
    (List.length (Homo.Hom.all (aset [ atom "p" [ x; y ] ]) tgt))

let test_hom_injective () =
  (* p(x,y) injectively into {p(a,a)}: impossible; non-injectively: fine. *)
  let tgt = Homo.Instance.of_atomset (aset [ atom "p" [ a; a ] ]) in
  Alcotest.(check bool) "non-injective ok" true
    (Homo.Hom.exists (aset [ atom "p" [ x; y ] ]) tgt);
  Alcotest.(check bool) "injective impossible" false
    (Homo.Hom.exists ~injective:true (aset [ atom "p" [ x; y ] ]) tgt)

let test_hom_injective_respects_constants () =
  (* Injectively, a variable may not land on a constant of the source. *)
  let src = aset [ atom "p" [ x; a ] ] in
  let tgt = Homo.Instance.of_atomset (aset [ atom "p" [ a; a ] ]) in
  Alcotest.(check bool) "x cannot reuse a" false
    (Homo.Hom.exists ~injective:true src tgt)

let test_hom_naive_order_same_answers () =
  let src = aset [ atom "p" [ x; y ]; atom "p" [ y; z ]; atom "q" [ z ] ] in
  let tgt =
    aset [ atom "p" [ a; b ]; atom "p" [ b; c ]; atom "q" [ c ]; atom "p" [ c; a ] ]
  in
  let n_smart = Homo.Hom.count src (Homo.Instance.of_atomset tgt) in
  Homo.Hom.naive_order := true;
  let n_naive = Homo.Hom.count src (Homo.Instance.of_atomset tgt) in
  Homo.Hom.naive_order := false;
  Alcotest.(check int) "same solution count" n_smart n_naive

let test_hom_all_enumeration_order () =
  (* pins the solver's deterministic enumeration order.  The worklist's
     swap-removal must keep selecting the most-constrained live atom with
     ties broken by original rank, so on the "diamond" target the two
     homs of {p(x,y), q(y,z)} enumerate with y ↦ c strictly before
     y ↦ b (the index bucket yields p(a,c) first) — under the smart
     ordering and under the naive textual one alike. *)
  let d = Term.const "d" in
  let src = aset [ atom "p" [ x; y ]; atom "q" [ y; z ] ] in
  let tgt =
    Homo.Instance.of_atomset
      (aset
         [ atom "p" [ a; b ]; atom "p" [ a; c ]; atom "q" [ b; d ];
           atom "q" [ c; d ] ])
  in
  let y_images () =
    List.map
      (fun h -> Fmt.str "%a" Term.pp (Subst.apply_term h y))
      (Homo.Hom.all src tgt)
  in
  Alcotest.(check (list string)) "smart order" [ "c"; "b" ] (y_images ());
  Homo.Hom.naive_order := true;
  let naive = y_images () in
  Homo.Hom.naive_order := false;
  Alcotest.(check (list string)) "naive order" [ "c"; "b" ] naive

let test_extend_via_atom () =
  match Homo.Hom.extend_via_atom Subst.empty (atom "p" [ x; x ]) (atom "p" [ a; b ]) with
  | Some _ -> Alcotest.fail "repeated variable must force equal images"
  | None -> ()

let test_extend_via_atom_pred_mismatch () =
  Alcotest.(check bool) "pred mismatch" true
    (Homo.Hom.extend_via_atom Subst.empty (atom "p" [ x ]) (atom "q" [ a ]) = None)

(* ------------------------------------------------------------------ *)
(* Isomorphism tests *)

let test_iso_renaming () =
  let s1 = aset [ atom "p" [ x; y ]; atom "q" [ y ] ] in
  let s2 = aset [ atom "p" [ z; w ]; atom "q" [ w ] ] in
  Alcotest.(check bool) "isomorphic renamings" true (Homo.Morphism.isomorphic s1 s2)

let test_iso_not_different_shape () =
  let s1 = aset [ atom "p" [ x; y ]; atom "p" [ y; x ] ] in
  let s2 = aset [ atom "p" [ x; y ]; atom "p" [ x; y ] ] in
  (* s2 collapses to one atom: different cardinality *)
  Alcotest.(check bool) "not isomorphic" false (Homo.Morphism.isomorphic s1 s2)

let test_iso_constants_fixed () =
  let s1 = aset [ atom "p" [ a; x ] ] in
  let s2 = aset [ atom "p" [ b; x ] ] in
  Alcotest.(check bool) "different constants, no iso" false
    (Homo.Morphism.isomorphic s1 s2)

let test_iso_cycle_vs_two_loops () =
  (* 2-cycle vs a pair of... both have 2 atoms/2 terms: cycle p(x,y),p(y,x)
     vs p(z,z),p(w,w)?  That second one has 2 atoms, 2 terms too. *)
  let cyc = aset [ atom "p" [ x; y ]; atom "p" [ y; x ] ] in
  let loops = aset [ atom "p" [ z; z ]; atom "p" [ w; w ] ] in
  Alcotest.(check bool) "not isomorphic" false (Homo.Morphism.isomorphic cyc loops)

let test_hom_equivalent_not_isomorphic () =
  (* A loop and a loop plus pendant edge are hom-equivalent, not isomorphic. *)
  let small = aset [ atom "p" [ x; x ] ] in
  let big = aset [ atom "p" [ y; y ]; atom "p" [ y; z ] ] in
  Alcotest.(check bool) "hom equivalent" true (Homo.Morphism.hom_equivalent small big);
  Alcotest.(check bool) "not isomorphic" false (Homo.Morphism.isomorphic small big)

let test_invert_automorphism () =
  let sym = aset [ atom "p" [ x; y ]; atom "p" [ y; x ] ] in
  let swap = Subst.of_list [ (x, y); (y, x) ] in
  let inv = Homo.Morphism.invert_automorphism sym swap in
  Alcotest.(check bool) "inv y = x" true (Term.equal (Subst.apply_term inv y) x)

let test_invert_non_automorphism_raises () =
  let s = aset [ atom "p" [ x; y ] ] in
  let collapse = Subst.of_list [ (x, y) ] in
  (match Homo.Morphism.invert_automorphism s collapse with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "collapse is not an automorphism")

(* ------------------------------------------------------------------ *)
(* Core tests *)

let test_core_of_core_is_identity () =
  (* p(a,b) with constants only: already a core. *)
  let s = aset [ atom "p" [ a; b ] ] in
  Alcotest.(check bool) "ground set is core" true (Homo.Core.is_core s);
  Alcotest.(check aset_t) "unchanged" s (Homo.Core.of_atomset s)

let test_core_collapses_redundant_edge () =
  (* p(a,b) ∧ p(a,y): y folds onto b. *)
  let s = aset [ atom "p" [ a; b ]; atom "p" [ a; y ] ] in
  let core = Homo.Core.of_atomset s in
  Alcotest.(check aset_t) "folded" (aset [ atom "p" [ a; b ] ]) core

let test_core_path_to_loop () =
  (* p(x,y), p(y,y): x folds onto y (the loop); core is the loop alone. *)
  let s = aset [ atom "p" [ x; y ]; atom "p" [ y; y ] ] in
  let core = Homo.Core.of_atomset s in
  Alcotest.(check aset_t) "loop remains" (aset [ atom "p" [ y; y ] ]) core

let test_core_retraction_is_retraction () =
  let s = aset [ atom "p" [ x; y ]; atom "p" [ y; y ]; atom "q" [ x ]; atom "q" [ y ] ] in
  let r = Homo.Core.retraction_to_core s in
  Alcotest.(check bool) "retraction per Section 2" true (Subst.is_retraction_of s r)

let test_core_variable_cycle_is_core () =
  (* A directed 3-cycle of variables with distinct colours is a core. *)
  let s =
    aset
      [
        atom "p" [ x; y ]; atom "p" [ y; z ]; atom "p" [ z; x ];
        atom "cx" [ x ]; atom "cy" [ y ]; atom "cz" [ z ];
      ]
  in
  Alcotest.(check bool) "coloured cycle is core" true (Homo.Core.is_core s)

let test_core_uncoloured_cycle_folds_onto_loop () =
  (* 2-cycle plus loop: whole thing folds onto the loop. *)
  let s = aset [ atom "p" [ x; y ]; atom "p" [ y; x ]; atom "p" [ z; z ] ] in
  let core = Homo.Core.of_atomset s in
  Alcotest.(check aset_t) "loop" (aset [ atom "p" [ z; z ] ]) core

let test_core_strategies_agree () =
  let s =
    aset
      [
        atom "p" [ x; y ]; atom "p" [ y; z ]; atom "p" [ z; z ];
        atom "q" [ x ]; atom "q" [ z ];
      ]
  in
  Homo.Core.strategy := Homo.Core.By_variable;
  let c1 = Homo.Core.of_atomset s in
  Homo.Core.strategy := Homo.Core.By_atom;
  let c2 = Homo.Core.of_atomset s in
  Homo.Core.strategy := Homo.Core.By_variable;
  Alcotest.(check bool) "cores isomorphic across strategies" true
    (Homo.Morphism.isomorphic c1 c2)

let test_core_preserves_hom_equivalence () =
  let s = aset [ atom "p" [ x; y ]; atom "p" [ y; z ]; atom "p" [ z; z ] ] in
  let core = Homo.Core.of_atomset s in
  Alcotest.(check bool) "core ≡hom original" true
    (Homo.Morphism.hom_equivalent s core)

let test_core_idempotent () =
  let s = aset [ atom "p" [ x; y ]; atom "p" [ y; z ]; atom "p" [ z; z ] ] in
  let c1 = Homo.Core.of_atomset s in
  let c2 = Homo.Core.of_atomset c1 in
  Alcotest.(check aset_t) "idempotent" c1 c2

(* ------------------------------------------------------------------ *)
(* CQ theory (Chandra–Merlin) *)

let test_cq_containment () =
  (* q1 = ∃XY p(X,Y) ∧ p(Y,X)  is contained in  q2 = ∃UV p(U,V) *)
  let q1 = Kb.Query.make [ atom "p" [ x; y ]; atom "p" [ y; x ] ] in
  let u = v "U" and w' = v "V" in
  let q2 = Kb.Query.make [ atom "p" [ u; w' ] ] in
  Alcotest.(check bool) "q1 ⊑ q2" true (Homo.Cq.contained_in q1 q2);
  Alcotest.(check bool) "q2 ⋢ q1" false (Homo.Cq.contained_in q2 q1);
  Alcotest.(check bool) "not equivalent" false (Homo.Cq.equivalent q1 q2)

let test_cq_containment_with_constants () =
  let q1 = Kb.Query.make [ atom "p" [ a; b ] ] in
  let q2 = Kb.Query.make [ atom "p" [ x; y ] ] in
  Alcotest.(check bool) "ground ⊑ generic" true (Homo.Cq.contained_in q1 q2);
  Alcotest.(check bool) "generic ⋢ ground" false (Homo.Cq.contained_in q2 q1)

let test_cq_minimize () =
  (* p(X,Y) ∧ p(X,Z): Z folds onto Y — minimal form has one atom *)
  let q = Kb.Query.make [ atom "p" [ x; y ]; atom "p" [ x; z ] ] in
  let m = Homo.Cq.minimize q in
  Alcotest.(check int) "one atom" 1 (Atomset.cardinal (Kb.Query.atoms m));
  Alcotest.(check bool) "equivalent to original" true (Homo.Cq.equivalent q m);
  Alcotest.(check bool) "minimal" true (Homo.Cq.is_minimal m)

let test_cq_answers () =
  let inst =
    aset [ atom "e" [ a; b ]; atom "e" [ b; c ]; atom "e" [ a; y ] ]
  in
  let q = Kb.Query.make ~answers:[ x ] [ atom "e" [ a; x ] ] in
  let all = Homo.Cq.answers ~answer_vars:[ x ] q inst in
  Alcotest.(check int) "two images of x" 2 (List.length all);
  let certain = Homo.Cq.certain_answers ~answer_vars:[ x ] q inst in
  Alcotest.(check int) "one constant answer" 1 (List.length certain);
  Alcotest.(check bool) "answer is b" true
    (List.mem [ b ] certain)

(* ------------------------------------------------------------------ *)
(* Property-based tests *)

let gen_small_atomset : Atomset.t QCheck.arbitrary =
  QCheck.make ~print:(Fmt.to_to_string Atomset.pp_verbose)
    QCheck.Gen.(
      let term_gen =
        oneof
          [
            map (fun i -> Term.const ("k" ^ string_of_int i)) (int_bound 2);
            map (fun i -> Term.var_of_id ~hint:"H" (i + 900)) (int_bound 4);
          ]
      in
      let atom_gen =
        let* p = oneofl [ "e"; "u" ] in
        let* k = oneofl [ 1; 2 ] in
        let* args = list_size (return (if p = "u" then 1 else k)) term_gen in
        return (Atom.make p args)
      in
      map Atomset.of_list (list_size (int_range 1 7) atom_gen))

let prop_core_is_core =
  QCheck.Test.make ~name:"core of any atomset is a core" ~count:150
    gen_small_atomset (fun s -> Homo.Core.is_core (Homo.Core.of_atomset s))

let prop_core_retraction_valid =
  QCheck.Test.make ~name:"retraction_to_core returns a retraction" ~count:150
    gen_small_atomset (fun s ->
      Subst.is_retraction_of s (Homo.Core.retraction_to_core s))

let prop_core_hom_equivalent =
  QCheck.Test.make ~name:"core ≡hom original" ~count:100 gen_small_atomset
    (fun s -> Homo.Morphism.hom_equivalent s (Homo.Core.of_atomset s))

let prop_hom_composition_closed =
  QCheck.Test.make ~name:"found homs compose" ~count:100
    (QCheck.pair gen_small_atomset gen_small_atomset) (fun (s1, s2) ->
      match Homo.Hom.find_into s1 s2 with
      | None -> QCheck.assume_fail ()
      | Some h1 -> (
          match Homo.Hom.find_into s2 s1 with
          | None -> QCheck.assume_fail ()
          | Some h2 ->
              (* h2 • h1 must be a homomorphism s1 → s1, i.e. an endo. *)
              Subst.is_endomorphism_of s1
                (Subst.restrict (Atomset.vars s1) (Subst.compose h2 h1))))

let prop_hom_witness_correct =
  QCheck.Test.make ~name:"hom witness maps src into tgt" ~count:200
    (QCheck.pair gen_small_atomset gen_small_atomset) (fun (s1, s2) ->
      match Homo.Hom.find_into s1 s2 with
      | None -> true
      | Some h -> Atomset.subset (Subst.apply h s1) s2)

let prop_iso_reflexive =
  QCheck.Test.make ~name:"isomorphism is reflexive" ~count:100
    gen_small_atomset (fun s -> Homo.Morphism.isomorphic s s)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_core_is_core;
      prop_core_retraction_valid;
      prop_core_hom_equivalent;
      prop_hom_composition_closed;
      prop_hom_witness_correct;
      prop_iso_reflexive;
    ]

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "homo.instance",
      [
        tc "by_pred index" test_instance_by_pred;
        tc "by (pred,pos,term) index" test_instance_by_pos_term;
        tc "candidates via constants" test_instance_candidates_use_constants;
        tc "candidates via bindings" test_instance_candidates_use_bindings;
      ] );
    ( "homo.hom",
      [
        tc "identity" test_hom_identity;
        tc "var to const" test_hom_var_to_const;
        tc "const mismatch" test_hom_const_mismatch;
        tc "join" test_hom_join;
        tc "join fails" test_hom_join_fails;
        tc "cycle collapses onto loop" test_hom_cycle_to_loop;
        tc "loop needs loop" test_hom_loop_not_to_cycle_path;
        tc "seeded search" test_hom_seed;
        tc "seeded unsatisfiable" test_hom_seed_unsatisfiable;
        tc "all & count & limit" test_hom_all_count;
        tc "injective mode" test_hom_injective;
        tc "injective respects constants" test_hom_injective_respects_constants;
        tc "naive order ablation agrees" test_hom_naive_order_same_answers;
        tc "enumeration order pinned" test_hom_all_enumeration_order;
        tc "extend_via_atom repeated var" test_extend_via_atom;
        tc "extend_via_atom pred mismatch" test_extend_via_atom_pred_mismatch;
      ] );
    ( "homo.morphism",
      [
        tc "iso renaming" test_iso_renaming;
        tc "iso rejects different shape" test_iso_not_different_shape;
        tc "iso fixes constants" test_iso_constants_fixed;
        tc "cycle vs loops" test_iso_cycle_vs_two_loops;
        tc "hom-equivalent ≠ isomorphic" test_hom_equivalent_not_isomorphic;
        tc "invert automorphism" test_invert_automorphism;
        tc "invert non-automorphism raises" test_invert_non_automorphism_raises;
      ] );
    ( "homo.core",
      [
        tc "ground set is core" test_core_of_core_is_identity;
        tc "redundant edge folds" test_core_collapses_redundant_edge;
        tc "path folds onto loop" test_core_path_to_loop;
        tc "retraction validity" test_core_retraction_is_retraction;
        tc "coloured cycle is core" test_core_variable_cycle_is_core;
        tc "cycle+loop folds" test_core_uncoloured_cycle_folds_onto_loop;
        tc "strategies agree" test_core_strategies_agree;
        tc "hom-equivalence preserved" test_core_preserves_hom_equivalence;
        tc "idempotent" test_core_idempotent;
      ] );
    ( "homo.cq",
      [
        tc "containment" test_cq_containment;
        tc "containment with constants" test_cq_containment_with_constants;
        tc "minimization" test_cq_minimize;
        tc "answers & certain answers" test_cq_answers;
      ] );
    ("homo.properties", qcheck_cases);
  ]
