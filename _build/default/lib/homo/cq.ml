open Syntax

(* Freeze a query's variables into fresh constants. *)
let freeze atoms =
  let sigma =
    List.fold_left
      (fun s v ->
        Subst.add v (Term.const (Printf.sprintf "frzq_%d" (Term.rank v))) s)
      Subst.empty (Atomset.vars atoms)
  in
  Subst.apply sigma atoms

let contained_in q1 q2 =
  (* q1 ⊑ q2 iff q2 maps into the frozen q1 (Chandra–Merlin) *)
  Hom.maps_to (Kb.Query.atoms q2) (freeze (Kb.Query.atoms q1))

let equivalent q1 q2 = contained_in q1 q2 && contained_in q2 q1

let minimize q = Kb.Query.of_atomset ~name:(Kb.Query.name q) (Core.of_atomset (Kb.Query.atoms q))

let is_minimal q = Core.is_core (Kb.Query.atoms q)

let evaluate q inst = Hom.maps_to (Kb.Query.atoms q) inst

let answers ~answer_vars q inst =
  let indexed = Instance.of_atomset inst in
  let tuples =
    List.map
      (fun h -> List.map (Subst.apply_term h) answer_vars)
      (Hom.all (Kb.Query.atoms q) indexed)
  in
  List.sort_uniq (List.compare Term.compare) tuples

let certain_answers ~answer_vars q inst =
  List.filter (List.for_all Term.is_const) (answers ~answer_vars q inst)
