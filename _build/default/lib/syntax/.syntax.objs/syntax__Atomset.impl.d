lib/syntax/atomset.ml: Atom Fmt List Set Stdlib Term
