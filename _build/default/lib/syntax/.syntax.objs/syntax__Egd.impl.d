lib/syntax/egd.ml: Atom Atomset Fmt List Subst Term
