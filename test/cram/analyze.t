Static termination analysis and the engine router (DESIGN.md §13).

The ancestor KB is existential-free: the syntactic criteria certify
universal termination and the router picks semi-naive datalog
saturation.

  $ cat > family.dlgp <<'KB'
  > parent(alice, bob).
  > parent(bob, carol).
  > [anc-base] ancestor(X, Y) :- parent(X, Y).
  > [anc-rec]  ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
  > ?(X) :- ancestor(alice, X).
  > ! :- parent(X, X).
  > KB

  $ corechase analyze family.dlgp
    datalog                    yes
    linear                     no
    guarded                    no
    frontier-guarded           no
    frontier-one               no
    weakly guarded             yes
    weakly frontier-guarded    yes
    weakly acyclic             yes
    jointly acyclic            yes
    aGRD (pred-level, sound)   no
    ⟹ fes                    yes
    ⟹ bts                    yes
    ⟹ core-bts               yes
  
  criteria
    yes classes:datalog          universal all rules are existential-free
    yes classes:acyclicity       universal weakly-acyclic jointly-acyclic
    yes grd:datalog-cycles       universal 1 cyclic scc(s), all datalog
    yes classes:guardedness      universal weakly-guarded weakly-frontier-guarded
    yes critical:skolem-fixpoint universal skolem chase fixpoint on the critical instance (2 steps)
    no  linear:atomic-probes     universal not a linear ruleset
    yes ranks:instance-fixpoint  instance  restricted fixpoint at rank 2 (r0:2 r1:2 r2:1)
  verdict: terminates-all
  route: datalog (existential-free ruleset: semi-naive saturation)

One zoo family per verdict.  linear-twist terminates only because its
twist head satisfies every future trigger at birth: the acyclicity
classes and the skolem probe all fail, and the instance-level rank
fixpoint is the certificate (verdict terminates-restricted, an
instance-scope fact).

  $ corechase zoo linear-twist-3 > twist.dlgp
  $ corechase analyze twist.dlgp
    datalog                    no
    linear                     yes
    guarded                    yes
    frontier-guarded           yes
    frontier-one               yes
    weakly guarded             yes
    weakly frontier-guarded    yes
    weakly acyclic             no
    jointly acyclic            no
    aGRD (pred-level, sound)   no
    ⟹ fes                    no
    ⟹ bts                    yes
    ⟹ core-bts               yes
  
  criteria
    no  classes:datalog          universal some rule has existential variables
    no  classes:acyclicity       universal no acyclicity class holds
    no  grd:datalog-cycles       universal cyclic scc {twist} contains an existential rule
    yes classes:guardedness      universal linear guarded frontier-guarded frontier-one weakly-guarded weakly-frontier-guarded
    no  critical:skolem-fixpoint universal no fixpoint within budget (steps)
    yes linear:atomic-probes     universal all 2 atomic instances reach fixpoint
    yes ranks:instance-fixpoint  instance  restricted fixpoint at rank 1 (r0:3 r1:6)
  verdict: terminates-restricted
  route: restricted (termination certified (terminates-restricted): restricted chase suffices)

fg-braid is frontier-guarded, so querying is decidable (bts) — but the
chase diverges and the router keeps the robust core engine.

  $ corechase zoo fg-braid-3 > braid.dlgp
  $ corechase analyze braid.dlgp
    datalog                    no
    linear                     no
    guarded                    no
    frontier-guarded           yes
    frontier-one               yes
    weakly guarded             no
    weakly frontier-guarded    yes
    weakly acyclic             no
    jointly acyclic            no
    aGRD (pred-level, sound)   no
    ⟹ fes                    no
    ⟹ bts                    yes
    ⟹ core-bts               yes
  
  criteria
    no  classes:datalog          universal some rule has existential variables
    no  classes:acyclicity       universal no acyclicity class holds
    no  grd:datalog-cycles       universal cyclic scc {braid} contains an existential rule (also cyclic in the sound frozen graph)
    yes classes:guardedness      universal frontier-guarded frontier-one weakly-frontier-guarded
    no  critical:skolem-fixpoint universal no fixpoint within budget (steps)
    no  linear:atomic-probes     universal not a linear ruleset
    no  ranks:instance-fixpoint  instance  no fixpoint within budget (steps), rank reached 500
  verdict: bts
  route: core (no termination certificate (bts): core chase + robust aggregation)

Its near-miss mutant splits the frontier across two head atoms: no
class survives, verdict unknown, and --strict turns that into the
distinguished exit code 3.

  $ corechase zoo fg-braid-3-mut > braid-mut.dlgp
  $ corechase analyze braid-mut.dlgp --strict
    datalog                    no
    linear                     no
    guarded                    no
    frontier-guarded           no
    frontier-one               no
    weakly guarded             no
    weakly frontier-guarded    no
    weakly acyclic             no
    jointly acyclic            no
    aGRD (pred-level, sound)   no
    ⟹ fes                    no
    ⟹ bts                    no
    ⟹ core-bts               no
  
  criteria
    no  classes:datalog          universal some rule has existential variables
    no  classes:acyclicity       universal no acyclicity class holds
    no  grd:datalog-cycles       universal cyclic scc {braid} contains an existential rule (also cyclic in the sound frozen graph)
    no  classes:guardedness      universal no guardedness class holds
    no  critical:skolem-fixpoint universal no fixpoint within budget (steps)
    no  linear:atomic-probes     universal not a linear ruleset
    no  ranks:instance-fixpoint  instance  no fixpoint within budget (steps), rank reached 8
  verdict: unknown
  route: core (no termination certificate (unknown): core chase + robust aggregation)
  [3]

classify carries the same verdict line and the same --strict contract
(a small step budget keeps its treewidth-series probe off the dense
instances this mutant braids together):

  $ corechase classify braid-mut.dlgp --steps 10 --strict
    datalog                    no
    linear                     no
    guarded                    no
    frontier-guarded           no
    frontier-one               no
    weakly guarded             no
    weakly frontier-guarded    no
    weakly acyclic             no
    jointly acyclic            no
    aGRD (pred-level, sound)   no
    ⟹ fes                    no
    ⟹ bts                    no
    ⟹ core-bts               no
  
  core chase: no fixpoint (step budget exhausted)
  core-chase treewidth series: 1 2 2 3 3 3 3 3 3 3
  4
  analyzer verdict: unknown
  [3]

The machine-readable justification trail:

  $ corechase analyze twist.dlgp --json | python3 -m json.tool | head -12
  {
      "verdict": "terminates-restricted",
      "classes": {
          "datalog": false,
          "linear": true,
          "guarded": true,
          "frontier_guarded": true,
          "frontier_one": true,
          "weakly_guarded": true,
          "weakly_frontier_guarded": true,
          "weakly_acyclic": false,
          "jointly_acyclic": false,

--engine auto on the chase prints the routing decision before running
the chosen engine:

  $ corechase chase twist.dlgp --engine auto
  engine:     restricted (termination certified (terminates-restricted): restricted chase suffices)
  variant:    restricted
  outcome:    terminated (fixpoint reached)
  steps:      3
  final size: 9 atoms

  $ corechase entail family.dlgp --engine auto
  engine:     datalog (existential-free ruleset: semi-naive saturation)
  constraints: consistent
  ?(X) :- ancestor(alice, X)  ⟶  2 certain answer(s): (bob) (carol)

The analyzer meters its own work:

  $ corechase analyze twist.dlgp --metrics | grep 'analyze\.'
    analyze.certified                1
    analyze.probes                   4
    analyze.routed                   1
    analyze.runs                     1
