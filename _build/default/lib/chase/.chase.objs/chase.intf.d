lib/chase/chase.mli: Atomset Datalog Derivation Kb Rule Syntax Trigger Variants
