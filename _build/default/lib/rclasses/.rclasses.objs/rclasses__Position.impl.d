lib/rclasses/position.ml: Atom Atomset Fmt Int List Rule Set Stdlib String Syntax Term
