open Syntax

let naive_order = ref false

(* Representation switch (DESIGN.md §12): the production solver runs on
   the flat interned codes ([solve_flat]); the boxed tree-walking solver
   is kept as the executable specification — the [abl:hom:repr] bench
   row measures the gap and the property tests diff the two on random
   inputs.  Both implement the same search (same atom selection, same
   candidate order, same backtrack accounting), so flipping the switch
   changes nothing observable but speed. *)
let flat_enabled = ref true

(* Observability (DESIGN.md §8): one counter pair for the backtracking
   search.  A "backtrack" is a candidate target atom that failed to extend
   the current partial homomorphism (or violated injectivity); the count is
   accumulated in a local ref — one increment per dead end — and flushed to
   the registry / trace sink only when observability is live, so the
   disabled path adds nothing to the search itself.  [hom.minor_words]
   accumulates the solver's own minor-heap allocation (a [Gc.minor_words]
   delta per call), making the flat path's allocation-free matching
   measurable rather than asserted. *)
let m_solve_calls = Obs.Metrics.counter "hom.solve_calls"

let m_backtracks = Obs.Metrics.counter "hom.backtracks"

let m_minor_words = Obs.Metrics.counter "hom.minor_words"

(* Resilience (DESIGN.md §11): the search recurses once per source atom,
   so an adversarially deep pattern (e.g. a folded chain) can exhaust the
   system stack from inside a chase step.  An explicit bound raises the
   same [Stack_overflow] the engine boundary already classifies as
   [Resource `Stack_overflow] — but deterministically, long before the
   runtime guard page.  [CORECHASE_HOM_DEPTH] overrides the default. *)
let default_max_depth = 50_000

let max_depth =
  ref
    (match Sys.getenv_opt "CORECHASE_HOM_DEPTH" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> n
        | _ -> default_max_depth)
    | None -> default_max_depth)

module TS = Set.Make (Term)

let extend_pair sigma pat_t tgt_t acc_new =
  match pat_t with
  | Term.Const _ -> if Term.equal pat_t tgt_t then Some (sigma, acc_new) else None
  | Term.Var _ -> (
      match Subst.find pat_t sigma with
      | Some img -> if Term.equal img tgt_t then Some (sigma, acc_new) else None
      | None -> Some (Subst.add pat_t tgt_t sigma, (pat_t, tgt_t) :: acc_new))

let extend_via_atom_full sigma pattern target =
  if
    (not (String.equal (Atom.pred pattern) (Atom.pred target)))
    || Atom.arity pattern <> Atom.arity target
  then None
  else
    let rec go sigma acc_new ps ts =
      match (ps, ts) with
      | [], [] -> Some (sigma, acc_new)
      | p :: ps', t :: ts' -> (
          match extend_pair sigma p t acc_new with
          | None -> None
          | Some (sigma', acc') -> go sigma' acc' ps' ts')
      | _ -> None
    in
    go sigma [] (Atom.args pattern) (Atom.args target)

let extend_via_atom sigma pattern target =
  Option.map fst (extend_via_atom_full sigma pattern target)

(* Boxed reference solver.  [k] is called on every solution; raising from
   [k] aborts the search (used for early exit).  [bt]/[nodes] are owned
   by the wrapper below. *)
let solve_boxed ~bt ~nodes ~seed ~injective ~k (src : Atomset.t)
    (tgt : Instance.t) : unit =
  (* The not-yet-matched source atoms live in the prefix [0, live) of a
     worklist array; each entry keeps its original rank so ties in the
     most-constrained-first selection break exactly as they did when the
     worklist was an ordered list.  Removal is an O(1) swap with the last
     live slot.  Deeper recursion may permute the live prefix (swaps are
     never undone on backtrack), which is harmless: the prefix always holds
     the same *set* of atoms, and selection below is a function of
     (candidate count, original rank), not of array order. *)
  let arr =
    Array.of_list (List.mapi (fun i a -> (i, a)) (Atomset.to_list src))
  in
  (* Under injectivity, track the set of image terms already in use.  The
     initial set contains the seed's images and the source's constants
     (which are their own images). *)
  let init_used =
    if not injective then TS.empty
    else
      List.fold_left
        (fun used v ->
          match Subst.find v seed with
          | Some img -> TS.add img used
          | None -> used)
        (TS.of_list (Atomset.consts src))
        (Atomset.vars src)
  in
  let rec go sigma used live =
    incr nodes;
    (* Deadline polls are decimated: one ambient-token check every 256
       search nodes keeps the no-token path to an atomic read amortised
       over the hot recursion (DESIGN.md §11). *)
    if !nodes land 255 = 0 then Resilience.poll ();
    if live = 0 then k sigma
    else begin
      let best = ref 0 in
      if live > 1 then
        if !naive_order then
          (* fixed textual order: the live atom of smallest original rank *)
          for i = 1 to live - 1 do
            if fst arr.(i) < fst arr.(!best) then best := i
          done
        else begin
          (* most-constrained-first: smallest candidate bucket.  One pass
             per level; each count is read off the cached bucket
             cardinalities.  Ties go to the smallest original rank — the
             same atom the ordered-list version selected first. *)
          let bc = ref (Instance.candidate_count tgt (snd arr.(0)) sigma) in
          for i = 1 to live - 1 do
            let c = Instance.candidate_count tgt (snd arr.(i)) sigma in
            if c < !bc || (c = !bc && fst arr.(i) < fst arr.(!best)) then begin
              best := i;
              bc := c
            end
          done
        end;
      let chosen = arr.(!best) in
      arr.(!best) <- arr.(live - 1);
      arr.(live - 1) <- chosen;
      match_next sigma used (snd chosen) (live - 1)
    end
  and match_next sigma used next live =
    let try_candidate target_atom =
      match extend_via_atom_full sigma next target_atom with
      | None -> incr bt
      | Some (sigma', new_bindings) ->
          if injective then begin
            (* each fresh image must be unused, and fresh images must be
               pairwise distinct (checked by sequential insertion) *)
            let rec check used = function
              | [] -> Some used
              | (_, img) :: rest ->
                  if TS.mem img used then None
                  else check (TS.add img used) rest
            in
            match check used new_bindings with
            | None -> incr bt
            | Some used' -> go sigma' used' live
          end
          else go sigma' used live
    in
    List.iter try_candidate (Instance.candidates tgt next sigma)
  in
  go seed init_used (Array.length arr)

(* Flat solver: the same search over interned codes.  The source is
   encoded once per call — its variables get dense slots, each pattern
   atom becomes an [fpat] (original rank, pred id, codes with
   [lnot slot] for the variables, and the predicate's index handle,
   resolved here rather than at every node) — and the inner loop then
   touches only int arrays: the partial homomorphism is [bind]
   (slot -> code, [Flat.no_code] when unbound), candidate matching
   compares codes positionally, and undo pops a slot trail.  No
   [Subst.t], no [Term.t] and no list is built until a full solution is
   emitted. *)
type fpat = {
  rank : int;
  fpred : int;
  fargs : int array;
  fidx : Instance.findex;
}

let solve_flat ~bt ~nodes ~seed ~injective ~k (src : Atomset.t)
    (tgt : Instance.t) : unit =
  let slot_of : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let rev_vars = ref [] in
  let nslots = ref 0 in
  let enc_term t =
    match t with
    | Term.Const _ ->
        (* interning (not [code_of_term_opt]): a never-seen constant gets
           a real id that no target atom carries, so it fails to match
           exactly as boxed [Term.equal] does *)
        Flat.code_of_term t
    | Term.Var v -> (
        match Hashtbl.find_opt slot_of v.Term.id with
        | Some s -> lnot s
        | None ->
            let s = !nslots in
            incr nslots;
            Hashtbl.add slot_of v.Term.id s;
            rev_vars := t :: !rev_vars;
            lnot s)
  in
  let pats =
    Array.of_list
      (List.mapi
         (fun i a ->
           let pid = Flat.Symtab.intern (Atom.pred a) in
           {
             rank = i;
             fpred = pid;
             fargs = Array.of_list (List.map enc_term (Atom.args a));
             fidx = Instance.findex tgt ~pred:pid;
           })
         (Atomset.to_list src))
  in
  let n = !nslots in
  let vars = Array.of_list (List.rev !rev_vars) in
  let bind = Array.make (max n 1) Flat.no_code in
  let seeded = Array.make (max n 1) false in
  let trail = Array.make (max n 1) 0 in
  let tp = ref 0 in
  for s = 0 to n - 1 do
    match Subst.find vars.(s) seed with
    | Some img ->
        bind.(s) <- Flat.code_of_term img;
        seeded.(s) <- true
    | None -> ()
  done;
  (* Injectivity: the codes already used as images — the source's
     constants (their own images) and the seed's images.  Entries from
     this initialisation are permanent; only trail-recorded additions are
     undone. *)
  let used : (int, unit) Hashtbl.t =
    Hashtbl.create (if injective then 32 else 1)
  in
  if injective then begin
    List.iter
      (fun c -> Hashtbl.replace used (Flat.code_of_term c) ())
      (Atomset.consts src);
    for s = 0 to n - 1 do
      if seeded.(s) then Hashtbl.replace used bind.(s) ()
    done
  end;
  (* Decode a full assignment back to a boxed substitution.  Images are
     decoded through the instance's witness terms, so variable hints (and
     hence printed output) are the ones the target atoms carry — bit-
     identical to what the boxed solver binds.  Every bound code comes
     from a target atom, so the witness exists; the [Flat.term_of_code]
     fallback is belt and braces. *)
  let emit () =
    let sigma = ref seed in
    for s = 0 to n - 1 do
      if not seeded.(s) then begin
        let img =
          match Instance.term_of_code tgt bind.(s) with
          | Some t -> t
          | None -> Flat.term_of_code bind.(s)
        in
        sigma := Subst.add vars.(s) img !sigma
      end
    done;
    !sigma
  in
  let undo mark =
    while !tp > mark do
      decr tp;
      let s = trail.(!tp) in
      if injective then Hashtbl.remove used bind.(s);
      bind.(s) <- Flat.no_code
    done
  in
  (* positional match, binding fresh slots onto the trail; the
     injectivity check interleaves (a conjunction — same accepted
     candidates as the boxed check-after-match) *)
  let rec match_args fargs ta plen i =
    i >= plen
    ||
    let p = fargs.(i) in
    let t = ta.(i) in
    if p >= 0 then p = t && match_args fargs ta plen (i + 1)
    else
      let b = bind.(lnot p) in
      if b <> Flat.no_code then b = t && match_args fargs ta plen (i + 1)
      else if injective && Hashtbl.mem used t then false
      else begin
        bind.(lnot p) <- t;
        if injective then Hashtbl.replace used t ();
        trail.(!tp) <- lnot p;
        incr tp;
        match_args fargs ta plen (i + 1)
      end
  in
  let rec go live =
    incr nodes;
    if !nodes land 255 = 0 then Resilience.poll ();
    if live = 0 then k (emit ())
    else begin
      let best = ref 0 in
      if live > 1 then
        if !naive_order then
          for i = 1 to live - 1 do
            if pats.(i).rank < pats.(!best).rank then best := i
          done
        else begin
          (* most-constrained-first over the cached bucket cardinalities;
             identical bucket choice and tie-breaking to [solve_boxed].
             A zero-cardinality count stops the scan: the node is a dead
             end whichever zero-bucket pattern is charged with it, so
             skipping the remaining counts changes nothing observable. *)
          let p0 = pats.(0) in
          let bc = ref (Instance.findex_count p0.fidx ~fargs:p0.fargs ~bind) in
          let i = ref 1 in
          while !bc > 0 && !i < live do
            let p = pats.(!i) in
            let c = Instance.findex_count p.fidx ~fargs:p.fargs ~bind in
            if c < !bc || (c = !bc && p.rank < pats.(!best).rank) then begin
              best := !i;
              bc := c
            end;
            incr i
          done
        end;
      let chosen = pats.(!best) in
      pats.(!best) <- pats.(live - 1);
      pats.(live - 1) <- chosen;
      candidates chosen (live - 1)
        (Instance.findex_items chosen.fidx ~fargs:chosen.fargs ~bind)
    end
  and candidates chosen live = function
    | [] -> ()
    | (e : Instance.fentry) :: rest ->
        let fa = e.Instance.flat in
        let ta = Flat.args fa in
        let fargs = chosen.fargs in
        let plen = Array.length fargs in
        let mark = !tp in
        if
          Flat.pred fa = chosen.fpred
          && Array.length ta = plen
          && match_args fargs ta plen 0
        then begin
          go live;
          undo mark
        end
        else begin
          undo mark;
          incr bt
        end;
        candidates chosen live rest
  in
  go (Array.length pats)

(* Core backtracking engine.  [k] is called on every solution; raising from
   [k] aborts the search (used for early exit). *)
let solve ?(seed = Subst.empty) ?(injective = false) ~(k : Subst.t -> unit)
    (src : Atomset.t) (tgt : Instance.t) : unit =
  Resilience.Fault.hit "hom";
  if Atomset.cardinal src > !max_depth then raise Stdlib.Stack_overflow;
  let bt = ref 0 in
  let nodes = ref 0 in
  let run () =
    if !flat_enabled then solve_flat ~bt ~nodes ~seed ~injective ~k src tgt
    else solve_boxed ~bt ~nodes ~seed ~injective ~k src tgt
  in
  if not (Obs.live ()) then run ()
  else begin
    Obs.Metrics.incr m_solve_calls;
    (* [k] may abort the search by raising (see [find]/[exists]); flush the
       backtrack count on every exit path *)
    Fun.protect
      ~finally:(fun () ->
        if !bt > 0 then begin
          Obs.Metrics.add m_backtracks !bt;
          if Obs.Trace.enabled () then
            Obs.Trace.emit
              (Obs.Trace.Hom_backtrack
                 {
                   backtracks = !bt;
                   src_atoms = Atomset.cardinal src;
                   tgt_atoms = Instance.cardinal tgt;
                 })
        end)
      (fun () -> Obs.Metrics.count_minor_words m_minor_words run)
  end

exception Stop

(* Result memo (DESIGN.md §9, §12).  [find] results are cached under a
   caller-supplied (key, epoch) pair: the key names the check (pattern,
   seed, flags) stably, the epoch is an {!Instance.generation} that pins
   the target content the result was observed against.  A stored entry is
   valid only while its epoch matches the query's — generation advance is
   the invalidation, no explicit flush needed.  Both outcomes are cached:
   epochs are handed out per instance *value*, so an epoch match means
   the search would run against the very same target (same atoms, same
   bucket order) and — the solver being deterministic — return the very
   same witness; replaying a stored success is as sound as replaying a
   stored failure.  (PR-3 cached failures only, which starved the memo
   exactly where it is needed: audit-mode discovery re-asks every
   satisfaction question at an unchanged epoch, and most of those
   succeed.)  Keys are small int arrays over interned codes: hashing one
   is a few machine words, where the PR-3 string keys paid a
   format-and-hash of whole term trees per probe — the reason the memo
   used to lose to the searches it saved.  The table is bounded: at
   [memo_max] entries it is reset wholesale (entries for dead epochs
   dominate by then anyway). *)
let memo_enabled = ref true

let memo_max = 1 lsl 14

(* One table per domain (domain-local storage): pool workers run
   independent searches whose negative results are valid process-wide,
   but sharing one [Hashtbl] across domains is unsound (concurrent
   resize) and a mutex on the hot path costs more than the occasional
   re-derivation of a failure.  Tables are never merged — a worker's
   entry simply stays invisible to the others, which only loses hits
   (DESIGN.md §10 weighs this against the rejected alternatives). *)
(* Created at full capacity: the table is bounded by [memo_max] anyway,
   so pre-sizing means no growth rehash ever happens and [Hashtbl.reset]
   (which restores the creation capacity) keeps the bucket array. *)
let memo_key = Domain.DLS.new_key (fun () -> Hashtbl.create memo_max)

let memo_tbl () : (int array, int * Subst.t option) Hashtbl.t =
  Domain.DLS.get memo_key

let memo_clear () = Hashtbl.reset (memo_tbl ())

(* Batch-task isolation (DESIGN.md §14): every [Par.Batch] task starts
   with this domain's memo table empty, so a task never observes a
   sibling's (or a previous tenant's) cached searches — the memo is
   epoch-keyed and thus correctness-safe across tasks, but hit/miss
   totals would depend on task-to-domain placement. *)
let () = Par.Batch.add_reset_hook memo_clear

let m_memo_hits = Obs.Metrics.counter "hom.memo_hits"

let m_memo_misses = Obs.Metrics.counter "hom.memo_misses"

let find_uncached ?seed ?injective src tgt =
  let result = ref None in
  (try
     solve ?seed ?injective
       ~k:(fun s ->
         result := Some s;
         raise Stop)
       src tgt
   with Stop -> ());
  !result

(* Stale-witness revalidation, the cross-epoch path of the memo: a
   cached success [σ] from an older epoch is still a correct answer for
   the {e current} target iff [σ(src) ⊆ tgt] — checked directly, in
   O(|src|) index lookups, no search.  The resulting boolean is exact no
   matter what the epochs did in between, so [exists]-style consumers
   (trigger satisfaction, asked again and again about the same trigger
   as the instance grows) may take it.  [find] consumers may not: a
   revalidated witness need not be the witness a fresh search would
   return, and the fold search's chosen witness steers the chase — so
   witness-returning calls only replay exact-epoch entries, keeping
   their results independent of cache state (jobs=1 ≡ jobs=4 holds for
   outputs, not just for truth values). *)
let witness_ok sigma src tgt =
  Atomset.for_all (fun a -> Instance.mem tgt (Subst.apply_atom sigma a)) src

let find_memo ~allow_stale ?seed ?injective ?memo src tgt =
  match memo with
  | Some (key, epoch) when !memo_enabled -> (
      let tbl = memo_tbl () in
      let search_and_store () =
        if !Obs.Metrics.enabled then Obs.Metrics.incr m_memo_misses;
        let r = find_uncached ?seed ?injective src tgt in
        if Hashtbl.length tbl >= memo_max then Hashtbl.reset tbl;
        Hashtbl.replace tbl key (epoch, r);
        r
      in
      match Hashtbl.find_opt tbl key with
      | Some (e, r) when e = epoch ->
          if !Obs.Metrics.enabled then Obs.Metrics.incr m_memo_hits;
          r
      | Some (_, (Some sigma as r))
        when allow_stale && injective <> Some true && witness_ok sigma src tgt
        ->
          if !Obs.Metrics.enabled then Obs.Metrics.incr m_memo_hits;
          (* refresh: the witness was just proven valid at this epoch *)
          Hashtbl.replace tbl key (epoch, r);
          r
      | _ -> search_and_store ())
  | _ -> find_uncached ?seed ?injective src tgt

let find ?seed ?injective ?memo src tgt =
  find_memo ~allow_stale:false ?seed ?injective ?memo src tgt

let exists ?seed ?injective ?memo src tgt =
  match find_memo ~allow_stale:true ?seed ?injective ?memo src tgt with
  | Some _ -> true
  | None -> false

let all ?seed ?injective ?limit src tgt =
  let acc = ref [] in
  let n = ref 0 in
  (try
     solve ?seed ?injective
       ~k:(fun s ->
         acc := s :: !acc;
         incr n;
         match limit with Some l when !n >= l -> raise Stop | _ -> ())
       src tgt
   with Stop -> ());
  List.rev !acc

let count ?seed ?injective ?limit src tgt =
  let n = ref 0 in
  (try
     solve ?seed ?injective
       ~k:(fun _ ->
         incr n;
         match limit with Some l when !n >= l -> raise Stop | _ -> ())
       src tgt
   with Stop -> ());
  !n

let iter ?seed ?injective f src tgt = solve ?seed ?injective ~k:f src tgt

let find_into src tgt_atoms = find src (Instance.of_atomset tgt_atoms)

let maps_to src tgt_atoms =
  match find_into src tgt_atoms with Some _ -> true | None -> false
