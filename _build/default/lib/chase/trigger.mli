(** Triggers and rule application (Section 2).

    A trigger for an instance [I] is a pair [tr = (R, π)] where [π] maps
    [body(R)] into [I].  It is {e satisfied} in [I] when [π] extends to a
    homomorphism from [body(R) ∪ head(R)] into [I].  Applying [tr] on [I]
    produces [α(I, tr) = I ∪ π_safe(head(R))] where [π_safe] maps frontier
    variables through [π] and existential variables to globally fresh
    nulls (footnote 2 of the paper). *)

open Syntax

type t = private { rule : Rule.t; mapping : Subst.t }

val make : Rule.t -> Subst.t -> t
(** [make r π].  [π] is restricted to the universal variables of [r]. *)

val rule : t -> Rule.t

val mapping : t -> Subst.t

val rename : Subst.t -> t -> t
(** The paper's [σ(tr) = (R, σ • π)]. *)

val equal : t -> t -> bool
(** Same rule (by name and content) and same mapping on the rule's
    universal variables. *)

val is_trigger_for : t -> Atomset.t -> bool
(** [π(body R) ⊆ I]. *)

val satisfied : t -> Atomset.t -> bool
(** Satisfaction in an arbitrary instance: [π] maps the body into it and
    extends to the head. *)

val satisfied_in : t -> Homo.Instance.t -> bool
(** As {!satisfied} on a pre-indexed instance. *)

type application = {
  result : Atomset.t;  (** [α(I, tr)] *)
  pi_safe : Subst.t;  (** the safe extension used *)
  produced : Atomset.t;  (** [π_safe(head R)] — the atoms added *)
  fresh : Term.t list;  (** the fresh nulls created, by existential var order *)
}

val apply : t -> Atomset.t -> application
(** @raise Invalid_argument if the trigger does not hold in the instance. *)

val apply_with_pi_safe : t -> Subst.t -> Atomset.t -> application
(** Replay an application with a {e given} safe extension (used by the
    robust-sequence construction, which must reuse "the same fresh
    variables as in [α(F_{i-1}, tr)]", Definition 15). *)

val triggers_of : Rule.t -> Homo.Instance.t -> t list
(** All triggers of a rule for an instance (one per body homomorphism),
    in deterministic search order. *)

val unsatisfied_triggers : Rule.t list -> Atomset.t -> t list
(** All triggers of the rules that are {e not} satisfied — the restricted
    chase's active triggers. *)

val pp : t Fmt.t
