lib/treewidth/graph.mli: Fmt
