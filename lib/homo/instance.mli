(** Indexed instances: an {!Syntax.Atomset.t} wrapped with access structures
    for conjunctive matching.

    Three indexes are maintained, with cached bucket cardinalities:
    - by predicate: all atoms with a given predicate symbol;
    - by (predicate, position, term): all atoms with a given term at a given
      argument position;
    - by term: all atoms containing a given term at any position (used to
      locate the atoms a substitution can rewrite).

    Instances are immutable persistent values and {e incrementally
    updatable}: chase engines build the index once per run and patch it
    per step with {!add_atoms} / {!apply_subst} instead of rebuilding it
    per satisfaction check (see DESIGN.md §7 and the [abl:index]
    ablation bench).

    Since the flat-representation refactor (DESIGN.md §12) the indexes
    are keyed on interned {!Syntax.Flat} codes — bucket selection
    compares ints, not strings or term trees — while every public
    accessor still takes and returns boxed atoms.  The solver-facing
    flat view ({!fentry}, {!findex}, {!findex_count}, {!findex_items},
    {!term_of_code}) exposes both representations of each stored atom so
    {!Hom.solve} can match on codes and still emit hint-exact boxed
    substitutions. *)

open Syntax

type t

val empty : t

val of_atomset : Atomset.t -> t

val add_atoms : t -> Atom.t list -> t
(** Insert atoms, updating every index; atoms already present are
    ignored.  [of_atomset s ≡ add_atoms empty (Atomset.to_list s)]. *)

val remove_atoms : t -> Atom.t list -> t
(** Remove atoms, updating every index; absent atoms are ignored. *)

val apply_subst : Subst.t -> t -> t
(** [apply_subst σ ins] is the instance of [σ(atomset ins)].  Only the
    atoms containing a term of [σ]'s domain are touched (found through
    the by-term buckets); all others keep their index entries, so a
    simplification step costs time proportional to the rewritten part,
    not to the whole instance. *)

val atomset : t -> Atomset.t

val generation : t -> int
(** Cache epoch of this instance value.  Epochs are handed out by a
    process-wide counter: every content-changing operation
    ({!add_atoms}, {!remove_atoms}, {!apply_subst}) returns an instance
    with a fresh, strictly larger generation, while no-op updates keep
    the old one.  Consequently equal generations imply equal atom sets,
    which makes the generation a sound invalidation key for memo tables
    over instances (see {!Hom.find}'s failure memo).  The converse does
    not hold — equal content rebuilt independently gets a different
    epoch — so generation-keyed caches can lose hits but never give
    stale answers.  [empty] has generation [0]. *)

val generation_counter_value : unit -> int
(** Current value of the process-wide epoch counter.  Persisted by chase
    checkpoints (DESIGN.md §11). *)

val ensure_generation_counter_at_least : int -> unit
(** Raise the epoch counter to at least the given value (monotone: a
    smaller value is a no-op).  Checkpoint resume calls this so no
    post-resume instance can re-issue a checkpoint-era epoch and alias a
    stale memo entry. *)

val born : t -> Atom.t -> int option
(** [born ins a] is the generation stamp at which [a]'s current entry was
    added to [ins] ([None] if [a ∉ ins]).  An atom removed and later
    re-added carries the stamp of the re-addition. *)

val atoms_since : t -> int -> Atom.t list
(** [atoms_since ins g]: the atoms whose birth stamp postdates epoch [g],
    sorted.  With [g] a previously observed {!generation} of an ancestor
    of [ins], this is the delta of atoms added (or rewritten by
    {!apply_subst}) since that ancestor. *)

val cardinal : t -> int

val mem : t -> Atom.t -> bool

val atoms_with_pred : t -> string -> Atom.t list
(** All atoms with the given predicate (empty list if none). *)

val atoms_with_pred_pos_term : t -> string -> int -> Term.t -> Atom.t list
(** All atoms with the given term at the given 0-based position. *)

val atoms_with_term : t -> Term.t -> Atom.t list
(** All atoms containing the given term at some position. *)

val candidates : t -> Atom.t -> Subst.t -> Atom.t list
(** [candidates ins pattern σ]: a superset of the atoms of [ins] that the
    [pattern] atom can map to under an extension of [σ].  Uses the most
    selective index available given the pattern's constants and
    [σ]-bound variables; callers still verify full consistency. *)

val candidate_count : t -> Atom.t -> Subst.t -> int
(** Length of {!candidates}, read off the cached bucket cardinalities
    without walking any atom list. *)

type fentry = private { flat : Flat.t; boxed : Atom.t }
(** One stored atom, in both representations: [flat] drives matching,
    [boxed] is the original (hints intact) that solutions are built
    from.  [Flat.equal e.flat (Flat.encode e.boxed)] always holds. *)

type findex
(** A pattern's selection handle: the per-predicate index resolved once
    (per pattern, per solve call), so per-node bucket selection touches
    only int-keyed position maps — never the predicate table. *)

val findex : t -> pred:int -> findex
(** The handle for the interned predicate id [pred] (valid for this
    instance value only; an unknown id yields a handle whose buckets are
    all empty). *)

val findex_count : findex -> fargs:int array -> bind:int array -> int
(** Cardinality of the most selective bucket for a flat pattern:
    [fargs] is the pattern's argument codes with search variables
    encoded as [lnot slot], and [bind.(slot)] the code currently bound
    to that slot ([Flat.no_code] when unbound).  Integer map lookups
    only — no allocation, no atom list walked.  Honours {!use_indexes}
    (off: instance cardinality). *)

val findex_items : findex -> fargs:int array -> bind:int array -> fentry list
(** The entries of the bucket {!findex_count} measured, newest first —
    the same atoms, in the same order, as the boxed {!candidates} on the
    equivalent pattern.  Honours {!use_indexes} (off: all entries,
    sorted by {!Syntax.Atom.compare}). *)

val term_of_code : t -> int -> Term.t option
(** A boxed witness of the given code among the instance's atoms:
    decoding through it preserves variable hints, which
    {!Syntax.Flat.term_of_code} cannot.  [None] if no stored atom
    contains the code. *)

val invariants_ok : t -> bool
(** Every index bucket (membership {e and} cached cardinality) agrees
    with a fresh rebuild from the atomset — the differential oracle for
    the incremental-update property tests. *)

val pp : t Fmt.t

val use_indexes : bool ref
(** Ablation switch ([abl:index]): when [false], {!candidates} ignores the
    indexes and returns the whole atom list (the matcher still rejects
    non-matching atoms, so results are unchanged — only slower).  Default
    [true]. *)
