type t = { name : string; disjuncts : Kb.Query.t list }

let make ?(name = "") disjuncts =
  if disjuncts = [] then invalid_arg "Ucq.make: empty union";
  { name; disjuncts }

let disjuncts u = u.disjuncts

let name u = u.name

let of_query q = { name = Kb.Query.name q; disjuncts = [ q ] }

let pp ppf u =
  Fmt.pf ppf "@[%a@]"
    Fmt.(list ~sep:(any " ∨ ") Kb.Query.pp)
    u.disjuncts
