lib/core/certificate.ml: Atomset Chase Fmt Homo Kb List Option Result Rule Subst Syntax
