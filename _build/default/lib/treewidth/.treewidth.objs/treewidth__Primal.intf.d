lib/treewidth/primal.mli: Atomset Graph Syntax Term
