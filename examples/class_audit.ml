(* Auditing rulesets against the decidable-class landscape of Figure 1:
   syntactic certificates (fes / bts via weak acyclicity, guardedness, …)
   side by side with the behavioural probes (does the core chase
   terminate?  how does treewidth evolve along it?).

   Run with:  dune exec examples/class_audit.exe *)

open Syntax

let audit name kb =
  Fmt.pr "== %s ==@." name;
  let report = Rclasses.analyze (Kb.rules kb) in
  Fmt.pr "%a" Rclasses.pp_report report;
  let budget = { Chase.Variants.max_steps = 60; max_atoms = 3_000 } in
  (match Corechase.Probes.core_chase_terminates ~budget kb with
  | Corechase.Probes.Terminates n ->
      Fmt.pr "  core chase:               terminates after %d steps@." n
  | Corechase.Probes.No_verdict o ->
      Fmt.pr "  core chase:               no fixpoint (%s)@."
        (Resilience.outcome_name o));
  let profile = Corechase.Probes.tw_profile ~budget ~variant:`Core kb in
  Fmt.pr "  core-chase treewidth:      max %d%s@." profile.Corechase.Probes.max_seen
    (if profile.Corechase.Probes.monotone_growing then ", monotone growing"
     else "");
  Fmt.pr "@."

let () =
  List.iter (fun (name, kb) -> audit name kb) (Zoo.Classic.all_named ());
  audit "steepening-staircase (K_h)" (Zoo.Staircase.kb ());
  audit "inflating-elevator (K_v)" (Zoo.Elevator.kb ());
  Fmt.pr "Reading the output:@.";
  Fmt.pr "- 'fes-not-bts' has an fes certificate but no bts one;@.";
  Fmt.pr "- 'bts-not-fes' is guarded (bts) and its chase diverges;@.";
  Fmt.pr "- the paper's two KBs carry NO syntactic certificate at all:@.";
  Fmt.pr "  their decidability needs the core-bts argument (Theorem 2).@."
