(** Homomorphism search (Section 2).

    A homomorphism from an atomset [A] to an atomset [B] is a substitution
    [π] with [π(A) ⊆ B].  Constants are fixed; variables may map to any
    term.  Deciding existence is the classical NP-complete CQ-evaluation
    problem; we use backtracking with dynamic most-constrained-atom-first
    ordering over the indexed target (see DESIGN.md §4 and the
    [abl:hom-order] bench). *)

open Syntax

val extend_via_atom : Subst.t -> Atom.t -> Atom.t -> Subst.t option
(** [extend_via_atom σ pattern target] extends [σ] so that the [pattern]
    atom maps onto the [target] atom, or [None] if predicates, arities,
    constants or existing bindings clash.  Exposed for unit testing and for
    single-atom matching in dependency analysis. *)

val find :
  ?seed:Subst.t ->
  ?injective:bool ->
  ?memo:int array * int ->
  Atomset.t ->
  Instance.t ->
  Subst.t option
(** [find src tgt] is a homomorphism from [src] into [tgt] extending
    [seed] (default: empty), restricted to the variables of [src] not bound
    by the seed plus the seed itself.  With [~injective:true] the returned
    substitution is injective on [terms src] (constants included: a variable
    may not map onto a term that is already an image).

    [~memo:(key, epoch)] enables the result memo: if a previous call with
    the same [key] ran at the same [epoch], its result — [None] or the
    witness substitution — is returned without searching; otherwise the
    search runs and its result is recorded under [(key, epoch)].  A
    key is a small int array: a kind tag followed by interned
    {!Syntax.Flat} codes of whatever identifies the check — cheap to
    build, cheap to hash, compared structurally (callers must not mutate
    a key after passing it).  Correctness contract (caller's
    responsibility): for a fixed [key], all calls at a given [epoch] must
    pose the same question — same [src], [seed], [injective] and a target
    constructed the same way from the same instance values.  Pass
    [Instance.generation tgt] as the epoch (epochs are per instance
    value, so an epoch match replays a search against the very same
    target and the deterministic solver's very same answer) or, for
    searches against instances derived from a common base, the base's
    generation.  Counted by the [hom.memo_hits] / [hom.memo_misses]
    metrics. *)

val exists :
  ?seed:Subst.t ->
  ?injective:bool ->
  ?memo:int array * int ->
  Atomset.t ->
  Instance.t ->
  bool

val memo_enabled : bool ref
(** Ablation switch ([abl:hom:memo]): when [false], [~memo] arguments are
    ignored and every {!find}/{!exists} searches.  Default [true]. *)

val memo_clear : unit -> unit
(** Drop every cached failure.  Never required for correctness (epoch
    mismatch already invalidates); useful to isolate benchmark runs. *)

val all :
  ?seed:Subst.t -> ?injective:bool -> ?limit:int -> Atomset.t -> Instance.t ->
  Subst.t list
(** All homomorphisms (up to [limit], default unlimited), in search order.
    Each is restricted to the variables of [src] (plus seed bindings). *)

val count :
  ?seed:Subst.t -> ?injective:bool -> ?limit:int -> Atomset.t -> Instance.t ->
  int

val iter :
  ?seed:Subst.t -> ?injective:bool -> (Subst.t -> unit) -> Atomset.t ->
  Instance.t -> unit

val maps_to : Atomset.t -> Atomset.t -> bool
(** [maps_to a b]: [a] maps to [b] (builds a temporary index for [b]).  This
    is semantic entailment [b ⊨ a] for atomsets read as existentially
    closed conjunctions. *)

val find_into : Atomset.t -> Atomset.t -> Subst.t option
(** Like {!maps_to} but returns the witness. *)

val naive_order : bool ref
(** Ablation switch: when set, the solver matches source atoms in fixed
    textual order instead of most-constrained-first.  Default [false]. *)

val flat_enabled : bool ref
(** Representation switch ([abl:hom:repr], DESIGN.md §12): when [true]
    (the default) the solver backtracks over interned {!Syntax.Flat}
    codes — int compares, a slot trail for undo, no intermediate
    [Term.t] or [Subst.t] values; when [false] it runs the boxed
    tree-walking reference implementation.  Both perform the same
    search (same selection, candidate order, backtrack counts,
    solutions), differing only in speed — the property suite diffs
    them on random inputs. *)

val max_depth : int ref
(** Stack-overflow guard (DESIGN.md §11): the search recurses once per
    source atom, so {!find}/{!solve}-family entry points raise
    [Stack_overflow] {e deterministically} when the source has more than
    [!max_depth] atoms, instead of hitting the runtime guard page at an
    unpredictable depth.  The chase engines classify it as
    [Resource `Stack_overflow] and return their last consistent
    instance.  Default 50_000; [CORECHASE_HOM_DEPTH] overrides at
    startup; tests lower it to force the path on small inputs. *)
