lib/core/entailment.mli: Atomset Chase Fmt Kb Syntax Term Ucq
