test/test_chase.ml: Alcotest Atom Atomset Chase Fmt Homo Kb List QCheck QCheck_alcotest Rule Seq Subst Syntax Term Zoo
