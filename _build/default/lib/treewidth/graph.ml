module ISet = Set.Make (Int)

type t = { n : int; adj : ISet.t array }

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { n; adj = Array.make n ISet.empty }

let vertex_count g = g.n

let check g v =
  if v < 0 || v >= g.n then invalid_arg "Graph: vertex out of range"

let add_edge g u v =
  check g u;
  check g v;
  if u <> v then begin
    g.adj.(u) <- ISet.add v g.adj.(u);
    g.adj.(v) <- ISet.add u g.adj.(v)
  end

let has_edge g u v =
  check g u;
  check g v;
  ISet.mem v g.adj.(u)

let neighbors g v =
  check g v;
  ISet.elements g.adj.(v)

let degree g v =
  check g v;
  ISet.cardinal g.adj.(v)

let edge_count g =
  Array.fold_left (fun acc s -> acc + ISet.cardinal s) 0 g.adj / 2

let of_edges n edges =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) edges;
  g

let copy g = { n = g.n; adj = Array.map Fun.id g.adj }

let fold_vertices f g acc =
  let rec go v acc = if v >= g.n then acc else go (v + 1) (f v acc) in
  go 0 acc

let is_clique g vs =
  let rec go = function
    | [] -> true
    | v :: rest ->
        List.for_all (fun u -> has_edge g u v) rest && go rest
  in
  go vs

let connected_components g =
  let seen = Array.make g.n false in
  let rec dfs v acc =
    if seen.(v) then acc
    else begin
      seen.(v) <- true;
      List.fold_left (fun acc u -> dfs u acc) (v :: acc) (neighbors g v)
    end
  in
  fold_vertices
    (fun v comps ->
      if seen.(v) then comps else List.sort Int.compare (dfs v []) :: comps)
    g []
  |> List.rev

let pp ppf g =
  let edges =
    fold_vertices
      (fun v acc ->
        ISet.fold (fun u acc -> if u > v then (v, u) :: acc else acc) g.adj.(v) acc)
      g []
  in
  Fmt.pf ppf "graph(n=%d; @[%a@])" g.n
    Fmt.(list ~sep:comma (pair ~sep:(any "-") int int))
    (List.rev edges)
