lib/syntax/kb.mli: Atom Atomset Egd Fmt Rule Term
