Exercise the observability flags: --metrics prints the registry table
after the run, --trace FILE writes a JSONL event stream.  Counter and
gauge rows are deterministic for a fixed KB; histogram rows carry
timings, so only the counter rows are pinned here.

  $ cat > family.dlgp <<'KB'
  > parent(alice, bob).
  > parent(bob, carol).
  > [anc-base] ancestor(X, Y) :- parent(X, Y).
  > [anc-rec]  ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
  > KB

  $ corechase chase family.dlgp --variant core --trace out.jsonl --metrics | grep -v "tw.ms"
  variant:    core
  outcome:    terminated (fixpoint reached)
  steps:      3
  final size: 5 atoms
  
  metrics:
    chase.discoveries                3
    chase.egd_merges                 0
    chase.instance_size              5 (peak 5)
    chase.retractions                0
    chase.rounds                     2
    chase.triggers_applied           3
    chase.triggers_enumerated        3
    hom.backtracks                   2
    hom.solve_calls                  11
    robust.aggregations              0
    robust.steps_built               0
    tw.computations                  0


The trace is one JSON object per line; the prefix is stable for this KB
(discovery sweeps, round starts, trigger firings with rule labels):

  $ grep -v hom_backtrack out.jsonl
  {"ev":"trigger_found","engine":"discover","found":2,"size":2}
  {"ev":"round_start","engine":"core","round":1,"size":2}
  {"ev":"trigger_applied","engine":"core","step":1,"rule":"anc-base","produced":1,"size":3}
  {"ev":"trigger_applied","engine":"core","step":2,"rule":"anc-base","produced":1,"size":4}
  {"ev":"trigger_found","engine":"discover","found":1,"size":4}
  {"ev":"round_start","engine":"core","round":2,"size":4}
  {"ev":"trigger_applied","engine":"core","step":3,"rule":"anc-rec","produced":1,"size":5}
  {"ev":"trigger_found","engine":"discover","found":0,"size":5}

Without the flags nothing extra is printed and no file is written:

  $ corechase chase family.dlgp --variant core
  variant:    core
  outcome:    terminated (fixpoint reached)
  steps:      3
  final size: 5 atoms
