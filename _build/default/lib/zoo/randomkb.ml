open Syntax

type config = {
  n_predicates : int;
  n_constants : int;
  n_facts : int;
  n_rules : int;
  max_body_atoms : int;
  max_head_atoms : int;
  existential_bias : float;
  datalog_only : bool;
}

let default =
  {
    n_predicates = 3;
    n_constants = 3;
    n_facts = 4;
    n_rules = 3;
    max_body_atoms = 2;
    max_head_atoms = 2;
    existential_bias = 0.4;
    datalog_only = false;
  }

let datalog = { default with datalog_only = true; existential_bias = 0.0 }

(* Deterministic LCG (Numerical Recipes constants), 32-bit outputs. *)
type rng = { mutable state : int64 }

let mk_rng seed = { state = Int64.of_int (seed land 0x3FFFFFFF) }

let next rng =
  rng.state <-
    Int64.logand
      (Int64.add (Int64.mul rng.state 1664525L) 1013904223L)
      0xFFFFFFFFL;
  Int64.to_int (Int64.shift_right_logical rng.state 8)

let int rng bound = if bound <= 0 then 0 else next rng mod bound

let float01 rng = float_of_int (int rng 10_000) /. 10_000.

let pick rng l = List.nth l (int rng (List.length l))

let predicates cfg =
  List.init cfg.n_predicates (fun i ->
      (Printf.sprintf "p%d" i, 1 + (i mod 2) (* alternate arities 1/2 *)))

let constants cfg = List.init cfg.n_constants (fun i -> Term.const (Printf.sprintf "k%d" i))

let gen_fact rng cfg =
  let p, ar = pick rng (predicates cfg) in
  Atom.make p (List.init ar (fun _ -> pick rng (constants cfg)))

let gen_rule rng cfg idx =
  (* variable pool for this rule *)
  let pool = Array.init 5 (fun i -> Term.fresh_var ~hint:(Printf.sprintf "R%d_%d" idx i) ()) in
  let n_body = 1 + int rng cfg.max_body_atoms in
  let body = ref [] in
  let used_vars = ref [] in
  for k = 0 to n_body - 1 do
    let p, ar = pick rng (predicates cfg) in
    let args =
      List.init ar (fun _ ->
          (* connect to an already-used variable half of the time *)
          if k > 0 && !used_vars <> [] && int rng 2 = 0 then pick rng !used_vars
          else begin
            let v = pool.(int rng (Array.length pool)) in
            used_vars := v :: !used_vars;
            v
          end)
    in
    body := Atom.make p args :: !body
  done;
  let body_vars = List.sort_uniq Term.compare !used_vars in
  let n_head = 1 + int rng cfg.max_head_atoms in
  let existentials =
    Array.init 2 (fun i -> Term.fresh_var ~hint:(Printf.sprintf "R%dE%d" idx i) ())
  in
  let head = ref [] in
  (* guarantee at least one frontier variable in the head *)
  let frontier_anchor = pick rng body_vars in
  for k = 0 to n_head - 1 do
    let p, ar = pick rng (predicates cfg) in
    let args =
      List.init ar (fun pos ->
          if k = 0 && pos = 0 then frontier_anchor
          else if
            (not cfg.datalog_only) && float01 rng < cfg.existential_bias
          then existentials.(int rng 2)
          else pick rng body_vars)
    in
    head := Atom.make p args :: !head
  done;
  Rule.make ~name:(Printf.sprintf "r%d" idx) ~body:!body ~head:!head ()

let generate ~seed cfg =
  let rng = mk_rng seed in
  let facts = List.init cfg.n_facts (fun _ -> gen_fact rng cfg) in
  let rules = List.init cfg.n_rules (fun i -> gen_rule rng cfg i) in
  Kb.of_lists ~facts ~rules

let generate_many ~seed ?(count = 10) cfg =
  List.init count (fun i -> generate ~seed:(seed + (i * 7919)) cfg)
