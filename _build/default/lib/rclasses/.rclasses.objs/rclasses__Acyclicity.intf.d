lib/rclasses/acyclicity.mli: Position Rule Syntax Term
