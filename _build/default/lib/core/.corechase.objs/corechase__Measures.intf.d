lib/core/measures.mli: Atomset Syntax
