(** Deterministic, seeded random knowledge bases, for property testing and
    workload generation.

    All generation is driven by a private linear-congruential PRNG so that
    a seed fully determines the KB: property-test failures reproduce and
    benchmark workloads are stable across runs. *)

open Syntax

type config = {
  n_predicates : int;  (** unary/binary predicate pool size *)
  n_constants : int;
  n_facts : int;
  n_rules : int;
  max_body_atoms : int;
  max_head_atoms : int;
  existential_bias : float;
      (** probability that a head variable is existential (0.0–1.0) *)
  datalog_only : bool;  (** force no existential variables *)
}

val default : config

val datalog : config
(** [default] with [datalog_only = true]. *)

val generate : seed:int -> config -> Kb.t
(** The KB determined by the seed.  Rules are connected (each body atom
    shares a variable with a previous one when possible) and heads reuse
    at least one frontier variable, so the chase has real work to do. *)

val generate_many : seed:int -> ?count:int -> config -> Kb.t list
(** [count] (default 10) KBs from consecutive derived seeds. *)
