(** On-disk chase checkpoints (DESIGN.md §11).

    Serializes the round-boundary {!Variants.engine_state} offered by
    the derivation engines' [?checkpoint] hook to a versioned,
    line-oriented text file, and restores it for [?resume].  The file
    records, besides the derivation itself: the engine name, the
    original budget, the [Term] freshness-counter value and the instance
    generation counter — everything needed for the resumed run to agree
    with the uninterrupted one step for step.

    Format sketch (version 1; one field per line, terms as
    percent-encoded tokens [c%<name>] / [v%<id>%<hint>]):
    {v
    CORECHASE-CHECKPOINT 1
    engine <name>            kb-path <enc|->   kb-digest <hex|->
    max-steps N  max-atoms N  steps-done N  rounds-done N
    term-counter N  generation-counter N
    snapshot <n|->  (n atom lines)
    steps N  then per step: step i / pi-safe ... / sigma ... /
                            pre n + atoms / inst n + atoms
    end
    v} *)

open Syntax

val version : int
(** Current format version (the integer after the magic word). *)

type header = {
  engine : string;  (** e.g. ["restricted"], ["core:round"] *)
  kb_path : string option;  (** KB document path as given at save time *)
  kb_digest : string option;  (** hex MD5 of the KB document *)
  max_steps : int;  (** the {e original} budget, not the remainder *)
  max_atoms : int;
  term_counter : int;  (** freshness counter at checkpoint time *)
  generation_counter : int;  (** instance generation counter *)
}

val save :
  path:string ->
  engine:string ->
  ?kb_path:string ->
  ?kb_digest:string ->
  budget:Variants.budget ->
  Variants.engine_state ->
  unit
(** Write atomically (temp file + rename), bump the
    [resilience.checkpoints] counter and emit
    {!Obs.Trace.Checkpoint_written}.
    @raise Sys_error on I/O failure. *)

val read_header : string -> (header, string) result
(** Parse only the leading header fields.  Builds no terms and touches
    no counters, so it is safe before the KB re-parse — use it to learn
    which KB document and engine to set up, then call {!load}. *)

val load :
  Kb.t ->
  string ->
  (header * Variants.budget * Variants.engine_state, string) result
(** Parse a checkpoint and rebuild the engine state against the
    given KB.  {b Order matters for exact resume}: re-parse the KB
    first (its deterministic variable ids must be allocated before the
    checkpoint's), call [load] second, and build no new terms in
    between — on success the [Term] freshness counter is pinned to the
    checkpointed value and the generation counter bumped at least to
    its.  The KB digest is {e not} verified here; compare
    [header.kb_digest] against {!digest_of_file} at the call site. *)

val digest_of_file : string -> string option
(** Hex MD5 of a file's contents; [None] if unreadable. *)
