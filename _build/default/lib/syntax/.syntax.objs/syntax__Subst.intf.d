lib/syntax/subst.mli: Atom Atomset Fmt Term
