lib/homo/morphism.ml: Atomset Hom Instance List Subst Syntax Term
