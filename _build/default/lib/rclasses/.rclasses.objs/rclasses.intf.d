lib/rclasses/rclasses.mli: Acyclicity Dependency Fmt Guardedness Position Rule Syntax
