lib/modelfinder/encode.mli: Atomset Kb Syntax Term
