examples/staircase_tour.ml: Atom Atomset Chase Corechase Fmt Kb List Syntax Term Treewidth Zoo
