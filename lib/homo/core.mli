(** Cores of finite atomsets (Section 2).

    A finite atomset is a {e core} if its only retraction is the identity.
    Every finite atomset has a retract that is a core, unique up to
    isomorphism.  The core chase (and Definition 14's robust renaming)
    need the {e retraction} onto the core, not merely the core itself, so
    the central entry point here returns the substitution.

    Algorithm: repeatedly look for a variable [x] and an endomorphism of
    [A] into [A] minus the atoms containing [x] (a "fold" eliminating
    [x]); compose the folds; when no variable can be eliminated the image
    is a core.  The composite is a homomorphism [A → core] but not yet a
    retraction; its restriction to the core is an automorphism of the
    core, which we invert and pre-compose to obtain a genuine retraction
    (identity on the core's terms).  Completeness: a non-core finite
    atomset has a proper retraction, whose image omits at least one
    variable, so the per-variable fold search cannot miss it.

    Two fold strategies are available for ablation ([abl:core]):
    [By_variable] (default) searches, per variable [x], for an
    endomorphism into [A] minus the atoms containing [x];
    [By_atom] searches, per non-ground atom [at], for an endomorphism into
    [A ∖ {at}].  Both are complete; their search profiles differ. *)

open Syntax

type strategy = By_variable | By_atom

val strategy : strategy ref
(** Default [Whole_image]. *)

type scope =
  | Full  (** no precondition: search every variable / atom *)
  | Delta of { fresh : Term.t list; added : Atom.t list }
      (** incremental-core precondition (DESIGN.md §9): the instance is
          [A ∪ D] where [A] was a core and [D] is one step's delta.
          [fresh] are the step's freshly invented nulls, [added] the
          atoms of [D] genuinely new in the instance (not re-derived
          duplicates).  The {e first} fold search is then delta-scoped —
          one identity-seeded search per alive fresh null plus one
          unifier-seeded search per (old atom → new delta atom) pair — a
          failure of all of them certifies the instance is still a core;
          once a fold fires the remaining loop reverts to the full
          search. *)

type scoping = Scoped | Exhaustive | Audit

val scoping : scoping ref
(** Policy for honouring [Delta] scopes, mirroring
    [Trigger.discovery]'s trichotomy ([--core-scope delta|full|audit]):
    [Scoped] (default) trusts them; [Exhaustive] ignores them and always
    folds fully (the oracle); [Audit] runs both and raises [Failure] if
    the resulting cores are not isomorphic (returning the full-search
    result).  Counted by [core.scoped_searches] /
    [core.scoped_certified] / [core.full_fallbacks] and traced as
    [Core_scoped_fold] events. *)

val retraction_to_core : ?scope:scope -> Atomset.t -> Subst.t
(** A retraction [σ] of the atomset with [σ(A)] a core.  The identity
    substitution (empty) when the atomset is already a core.  [?scope]
    (default [Full]) may assert the incremental-core precondition; with
    a [Delta] scope whose precondition actually holds the result is a
    retraction onto a core exactly as with [Full], at delta-sized cost
    in the (dominant) no-fold case. *)

val retraction_to_core_indexed : ?scope:scope -> Instance.t -> Subst.t
(** Like {!retraction_to_core} on an already-indexed instance — chase
    engines maintain the index incrementally and pass it here instead of
    paying an [of_atomset] rebuild per simplification. *)

val of_atomset : Atomset.t -> Atomset.t
(** The core itself: [σ(A)] for [σ = retraction_to_core A]. *)

val is_core : Atomset.t -> bool

val core_with_retraction : Atomset.t -> Atomset.t * Subst.t
(** Both at once. *)
