(* Tests for lib/chase: triggers, Definition-1 derivations, the four chase
   variants, termination behaviour on classic discriminating examples. *)

open Syntax

let atom p args = Atom.make p args
let aset = Atomset.of_list
let a = Term.const "a"
let b = Term.const "b"

let mk_rule ?name body head = Rule.make ?name ~body ~head ()

(* KB 1: symmetric closure (datalog, terminating for every variant). *)
let kb_sym () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" () in
  Kb.of_lists
    ~facts:[ atom "p" [ a; b ] ]
    ~rules:[ mk_rule ~name:"sym" [ atom "p" [ x; y ] ] [ atom "p" [ y; x ] ] ]

(* KB 2: infinite chain r(X,Y) → ∃Z r(Y,Z) (non-terminating, all variants). *)
let kb_chain () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" ()
  and z = Term.fresh_var ~hint:"Z" () in
  Kb.of_lists
    ~facts:[ atom "r" [ a; b ] ]
    ~rules:[ mk_rule ~name:"chain" [ atom "r" [ x; y ] ] [ atom "r" [ y; z ] ] ]

(* KB 3: core chase terminates, restricted chase runs forever.
   R1: p(X) → ∃Y e(X,Y) ∧ p(Y);  R2: p(X) → e(X,X). *)
let kb_core_wins () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" () in
  let r1 =
    mk_rule ~name:"r1" [ atom "p" [ x ] ] [ atom "e" [ x; y ]; atom "p" [ y ] ]
  in
  let x2 = Term.fresh_var ~hint:"X" () in
  let r2 = mk_rule ~name:"r2" [ atom "p" [ x2 ] ] [ atom "e" [ x2; x2 ] ] in
  Kb.of_lists ~facts:[ atom "p" [ a ] ] ~rules:[ r1; r2 ]

(* KB 4: skolem terminates where oblivious does not:
   r(X,Y) → ∃Z r(X,Z). *)
let kb_skolem_vs_oblivious () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" ()
  and z = Term.fresh_var ~hint:"Z" () in
  Kb.of_lists
    ~facts:[ atom "r" [ a; b ] ]
    ~rules:[ mk_rule ~name:"so" [ atom "r" [ x; y ] ] [ atom "r" [ x; z ] ] ]

let small_budget = { Chase.Variants.max_steps = 40; max_atoms = 400 }

(* ------------------------------------------------------------------ *)
(* Trigger tests *)

let test_trigger_basic () =
  let kb = kb_sym () in
  let r = List.hd (Kb.rules kb) in
  let trs =
    Chase.Trigger.triggers_of r (Homo.Instance.of_atomset (Kb.facts kb))
  in
  Alcotest.(check int) "one trigger" 1 (List.length trs);
  let tr = List.hd trs in
  Alcotest.(check bool) "is trigger" true
    (Chase.Trigger.is_trigger_for tr (Kb.facts kb));
  Alcotest.(check bool) "not yet satisfied" false
    (Chase.Trigger.satisfied tr (Kb.facts kb))

let test_trigger_apply () =
  let kb = kb_sym () in
  let r = List.hd (Kb.rules kb) in
  let tr =
    List.hd (Chase.Trigger.triggers_of r (Homo.Instance.of_atomset (Kb.facts kb)))
  in
  let app = Chase.Trigger.apply tr (Kb.facts kb) in
  Alcotest.(check bool) "p(b,a) produced" true
    (Atomset.mem (atom "p" [ b; a ]) app.Chase.Trigger.result);
  Alcotest.(check int) "no fresh nulls for datalog" 0
    (List.length app.Chase.Trigger.fresh)

let test_trigger_apply_existential_fresh () =
  let kb = kb_chain () in
  let r = List.hd (Kb.rules kb) in
  let tr =
    List.hd (Chase.Trigger.triggers_of r (Homo.Instance.of_atomset (Kb.facts kb)))
  in
  let app = Chase.Trigger.apply tr (Kb.facts kb) in
  Alcotest.(check int) "one fresh null" 1 (List.length app.Chase.Trigger.fresh);
  let app2 = Chase.Trigger.apply tr (Kb.facts kb) in
  Alcotest.(check bool) "fresh nulls globally fresh across applications" true
    (not
       (Term.equal
          (List.hd app.Chase.Trigger.fresh)
          (List.hd app2.Chase.Trigger.fresh)))

let test_trigger_satisfaction_after_apply () =
  let kb = kb_sym () in
  let r = List.hd (Kb.rules kb) in
  let tr =
    List.hd (Chase.Trigger.triggers_of r (Homo.Instance.of_atomset (Kb.facts kb)))
  in
  let app = Chase.Trigger.apply tr (Kb.facts kb) in
  Alcotest.(check bool) "satisfied after application" true
    (Chase.Trigger.satisfied tr app.Chase.Trigger.result)

let test_trigger_rename () =
  let kb = kb_chain () in
  let r = List.hd (Kb.rules kb) in
  let tr =
    List.hd (Chase.Trigger.triggers_of r (Homo.Instance.of_atomset (Kb.facts kb)))
  in
  (* rename b ↦ a *)
  let sigma = Subst.empty in
  let tr' = Chase.Trigger.rename sigma tr in
  Alcotest.(check bool) "identity rename preserves" true
    (Chase.Trigger.equal tr tr')

let test_trigger_apply_requires_triggerhood () =
  let kb = kb_sym () in
  let r = List.hd (Kb.rules kb) in
  let tr =
    List.hd (Chase.Trigger.triggers_of r (Homo.Instance.of_atomset (Kb.facts kb)))
  in
  match Chase.Trigger.apply tr (aset [ atom "q" [ a ] ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "must reject non-trigger application"

(* ------------------------------------------------------------------ *)
(* Derivation tests *)

let test_derivation_start () =
  let kb = kb_sym () in
  let d = Chase.Derivation.start kb in
  Alcotest.(check int) "length 1" 1 (Chase.Derivation.length d);
  Alcotest.(check bool) "F_0 = F" true
    (Atomset.equal (Chase.Derivation.instance_at d 0) (Kb.facts kb))

let test_derivation_extend_and_access () =
  let kb = kb_sym () in
  let d = Chase.Derivation.start kb in
  let r = List.hd (Kb.rules kb) in
  let tr =
    List.hd (Chase.Trigger.triggers_of r (Homo.Instance.of_atomset (Kb.facts kb)))
  in
  let d = Chase.Derivation.extend d tr ~simplification:Subst.empty in
  Alcotest.(check int) "length 2" 2 (Chase.Derivation.length d);
  Alcotest.(check bool) "F_1 contains p(b,a)" true
    (Atomset.mem (atom "p" [ b; a ]) (Chase.Derivation.instance_at d 1));
  Alcotest.(check bool) "monotonic" true (Chase.Derivation.is_monotonic d)

let test_derivation_rejects_satisfied_trigger () =
  let kb = kb_sym () in
  let d = Chase.Derivation.start kb in
  let r = List.hd (Kb.rules kb) in
  let tr =
    List.hd (Chase.Trigger.triggers_of r (Homo.Instance.of_atomset (Kb.facts kb)))
  in
  let d = Chase.Derivation.extend d tr ~simplification:Subst.empty in
  (* the symmetric closure of the new atom maps back: p(b,a)'s trigger is
     already satisfied by p(a,b) *)
  let r2_triggers =
    Chase.Trigger.triggers_of r
      (Homo.Instance.of_atomset (Chase.Derivation.instance_at d 1))
  in
  let satisfied_one =
    List.find
      (fun t -> Chase.Trigger.satisfied t (Chase.Derivation.instance_at d 1))
      r2_triggers
  in
  match Chase.Derivation.extend d satisfied_one ~simplification:Subst.empty with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Definition 1 forbids firing satisfied triggers"

let test_derivation_rejects_non_retraction () =
  let kb = kb_chain () in
  let d = Chase.Derivation.start kb in
  let r = List.hd (Kb.rules kb) in
  let tr =
    List.hd (Chase.Trigger.triggers_of r (Homo.Instance.of_atomset (Kb.facts kb)))
  in
  let app = Chase.Trigger.apply tr (Kb.facts kb) in
  (* map the created null onto a fresh variable foreign to the instance:
     the image is not inside the pre-instance, so not an endomorphism *)
  let null = List.hd app.Chase.Trigger.fresh in
  let bogus = Subst.of_list [ (null, Term.fresh_var ()) ] in
  match
    Chase.Derivation.extend_applied d tr app ~simplification:bogus
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-retraction simplifications must be rejected"

let test_sigma_trace_identity_when_monotonic () =
  let kb = kb_sym () in
  let r = Chase.Variants.restricted kb in
  let d = r.Chase.Variants.derivation in
  let tr = Chase.Derivation.sigma_trace d ~from_:0 ~to_:(Chase.Derivation.length d - 1) in
  Alcotest.(check bool) "identity trace" true
    (Subst.is_identity_on (Atomset.terms (Chase.Derivation.instance_at d 0)) tr)

(* ------------------------------------------------------------------ *)
(* Restricted chase *)

let test_restricted_terminates_sym () =
  let r = Chase.Variants.restricted (kb_sym ()) in
  Alcotest.(check bool) "terminated" true
    (r.Chase.Variants.outcome = Chase.Variants.Fixpoint);
  let final = (Chase.Derivation.last r.Chase.Variants.derivation).Chase.Derivation.instance in
  Alcotest.(check int) "2 atoms" 2 (Atomset.cardinal final);
  Alcotest.(check bool) "is a model" true (Chase.is_model (kb_sym ()) final)

let test_restricted_result_is_universal_model () =
  let kb = kb_sym () in
  let r = Chase.Variants.restricted kb in
  let final = (Chase.Derivation.last r.Chase.Variants.derivation).Chase.Derivation.instance in
  (* a handmade model: p(a,b), p(b,a), p(a,a) — final must map into it *)
  let m = aset [ atom "p" [ a; b ]; atom "p" [ b; a ]; atom "p" [ a; a ] ] in
  Alcotest.(check bool) "maps into every model" true (Homo.Hom.maps_to final m)

let test_restricted_chain_budget () =
  let r = Chase.Variants.restricted ~budget:small_budget (kb_chain ()) in
  Alcotest.(check bool) "budget exhausted" true
    (match r.Chase.Variants.outcome with
     | Chase.Variants.Step_budget | Chase.Variants.Atom_budget -> true
     | _ -> false);
  Alcotest.(check bool) "monotonic derivation" true
    (Chase.Derivation.is_monotonic r.Chase.Variants.derivation)

let test_restricted_terminated_prefix_is_fair () =
  let r = Chase.Variants.restricted (kb_sym ()) in
  Alcotest.(check bool) "fair" true
    (Chase.Derivation.is_fair_prefix r.Chase.Variants.derivation)

let test_restricted_nonterminating_on_core_wins_kb () =
  let r = Chase.Variants.restricted ~budget:small_budget (kb_core_wins ()) in
  Alcotest.(check bool) "restricted exhausts budget" true
    (match r.Chase.Variants.outcome with
     | Chase.Variants.Step_budget | Chase.Variants.Atom_budget -> true
     | _ -> false)

(* ------------------------------------------------------------------ *)
(* Core chase *)

let test_core_terminates_on_core_wins_kb () =
  let r = Chase.Variants.core ~budget:small_budget (kb_core_wins ()) in
  Alcotest.(check bool) "core chase terminates" true
    (r.Chase.Variants.outcome = Chase.Variants.Fixpoint);
  let final = (Chase.Derivation.last r.Chase.Variants.derivation).Chase.Derivation.instance in
  Alcotest.(check bool) "final is a core" true (Homo.Core.is_core final);
  Alcotest.(check bool) "final is a model" true (Chase.is_model (kb_core_wins ()) final);
  Alcotest.(check int) "minimal model: p(a), e(a,a)" 2 (Atomset.cardinal final)

let test_core_every_round_agrees () =
  let r =
    Chase.Variants.core ~cadence:Chase.Variants.Every_round
      ~budget:small_budget (kb_core_wins ())
  in
  Alcotest.(check bool) "terminates too" true
    (r.Chase.Variants.outcome = Chase.Variants.Fixpoint);
  let final = (Chase.Derivation.last r.Chase.Variants.derivation).Chase.Derivation.instance in
  Alcotest.(check int) "same minimal model" 2 (Atomset.cardinal final)

let test_core_instances_are_cores () =
  let r = Chase.Variants.core ~budget:small_budget (kb_core_wins ()) in
  List.iter
    (fun st ->
      Alcotest.(check bool) "every F_i is a core" true
        (Homo.Core.is_core st.Chase.Derivation.instance))
    (Chase.Derivation.steps r.Chase.Variants.derivation)

let test_core_on_terminating_equals_core_of_restricted () =
  let kb = kb_sym () in
  let rc = Chase.Variants.restricted kb in
  let cc = Chase.Variants.core kb in
  let fr = (Chase.Derivation.last rc.Chase.Variants.derivation).Chase.Derivation.instance in
  let fc = (Chase.Derivation.last cc.Chase.Variants.derivation).Chase.Derivation.instance in
  Alcotest.(check bool) "core result ≅ core of restricted result" true
    (Homo.Morphism.isomorphic (Homo.Core.of_atomset fr) fc)

let test_core_simplify_start () =
  (* initial facts with redundancy: p(a,b) ∧ p(a,Y) retracts to p(a,b) *)
  let y = Term.fresh_var ~hint:"Y" () in
  let kb = Kb.of_lists ~facts:[ atom "p" [ a; b ]; atom "p" [ a; y ] ] ~rules:[] in
  let r = Chase.Variants.core kb in
  let f0 = Chase.Derivation.instance_at r.Chase.Variants.derivation 0 in
  Alcotest.(check int) "σ_0 already retracts" 1 (Atomset.cardinal f0)

let test_fairness_debt_empty_on_terminated () =
  let r = Chase.Variants.restricted (kb_sym ()) in
  Alcotest.(check int) "no debt after fixpoint" 0
    (List.length (Chase.Derivation.fairness_debt r.Chase.Variants.derivation))

let test_fairness_debt_nonempty_on_truncation () =
  (* cut the chain chase short: the last instance's trigger is owed *)
  let r =
    Chase.Variants.restricted
      ~budget:{ Chase.Variants.max_steps = 3; max_atoms = 100 }
      (kb_chain ())
  in
  Alcotest.(check bool) "debt recorded" true
    (Chase.Derivation.fairness_debt r.Chase.Variants.derivation <> [])

let test_validate_accepts_engine_output () =
  List.iter
    (fun run ->
      match Chase.Derivation.validate run.Chase.Variants.derivation with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    [
      Chase.Variants.restricted (kb_sym ());
      Chase.Variants.core ~budget:small_budget (kb_core_wins ());
    ]

let test_index_ablation_same_results () =
  let kb = kb_sym () in
  Homo.Instance.use_indexes := false;
  let r = Chase.Variants.restricted kb in
  Homo.Instance.use_indexes := true;
  Alcotest.(check bool) "scan-only mode agrees" true
    (r.Chase.Variants.outcome = Chase.Variants.Fixpoint
    && Atomset.cardinal
         (Chase.Derivation.last r.Chase.Variants.derivation).Chase.Derivation.instance
       = 2)

(* ------------------------------------------------------------------ *)
(* Lazy streams *)

let test_stream_terminating () =
  let elems =
    List.of_seq (Chase.Variants.stream ~variant:`Restricted (kb_sym ()))
  in
  (* F_0 plus one application *)
  Alcotest.(check int) "two elements" 2 (List.length elems);
  let final =
    (Chase.Derivation.last (List.nth elems 1)).Chase.Derivation.instance
  in
  Alcotest.(check int) "fixpoint reached" 2 (Atomset.cardinal final)

let test_stream_infinite_prefix () =
  let elems =
    List.of_seq
      (Seq.take 12 (Chase.Variants.stream ~variant:`Restricted (kb_chain ())))
  in
  Alcotest.(check int) "12 elements on demand" 12 (List.length elems);
  (* element i is a derivation of length i+1 and extends element i-1 *)
  List.iteri
    (fun i d ->
      Alcotest.(check int) "length grows" (i + 1) (Chase.Derivation.length d))
    elems

let test_stream_core_agrees_with_eager () =
  let kb = kb_core_wins () in
  let eager = Chase.Variants.core ~budget:small_budget ~simplify_start:true kb in
  let last_stream =
    Seq.fold_left (fun _ d -> Some d) None
      (Seq.take 20 (Chase.Variants.stream ~variant:`Core kb))
  in
  match last_stream with
  | None -> Alcotest.fail "stream must produce elements"
  | Some d ->
      let f_stream = (Chase.Derivation.last d).Chase.Derivation.instance in
      let f_eager =
        (Chase.Derivation.last eager.Chase.Variants.derivation).Chase.Derivation.instance
      in
      Alcotest.(check bool) "same fixpoint" true
        (Homo.Morphism.isomorphic f_stream f_eager)

(* ------------------------------------------------------------------ *)
(* Frugal chase *)

let test_frugal_folds_partially_satisfied_heads () =
  (* rule p(X) → ∃Y∃Z e(X,Y) ∧ f(X,Z) over {p(a), e(a,b)}: the trigger is
     unsatisfied (no f(a,_)), but the e-half of the head is redundant; the
     frugal chase folds Y onto b immediately, the restricted chase keeps
     both fresh nulls *)
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" ()
  and z = Term.fresh_var ~hint:"Z" () in
  let kb =
    Kb.of_lists
      ~facts:[ atom "p" [ a ]; atom "e" [ a; b ] ]
      ~rules:
        [ mk_rule ~name:"r" [ atom "p" [ x ] ] [ atom "e" [ x; y ]; atom "f" [ x; z ] ] ]
  in
  let fr = Chase.Variants.frugal kb in
  let rc = Chase.Variants.restricted kb in
  Alcotest.(check bool) "frugal terminates" true
    (fr.Chase.Variants.outcome = Chase.Variants.Fixpoint);
  let last run =
    (Chase.Derivation.last run.Chase.Variants.derivation).Chase.Derivation.instance
  in
  Alcotest.(check int) "frugal folds the e-half" 3 (Atomset.cardinal (last fr));
  Alcotest.(check int) "restricted keeps both nulls" 4
    (Atomset.cardinal (last rc));
  Alcotest.(check bool) "frugal result is a model" true
    (Chase.is_model kb (last fr))

let test_frugal_between_restricted_and_core () =
  (* on the staircase, frugal instances are never larger than restricted
     ones and never smaller than the core chase's at the same step count *)
  let kb = Zoo.Staircase.kb () in
  let b = { Chase.Variants.max_steps = 25; max_atoms = 2000 } in
  let last run =
    Atomset.cardinal
      (Chase.Derivation.last run.Chase.Variants.derivation).Chase.Derivation.instance
  in
  let fr = Chase.Variants.frugal ~budget:b kb in
  let rc = Chase.Variants.restricted ~budget:b kb in
  Alcotest.(check bool) "frugal ≤ restricted in size" true (last fr <= last rc)

let test_frugal_simplifications_are_retractions () =
  let kb = Zoo.Staircase.kb () in
  let r =
    Chase.Variants.frugal
      ~budget:{ Chase.Variants.max_steps = 20; max_atoms = 2000 }
      kb
  in
  List.iter
    (fun st ->
      Alcotest.(check bool) "σ_i is a retraction of A_i" true
        (Subst.is_retraction_of st.Chase.Derivation.pre_instance
           st.Chase.Derivation.simplification))
    (Chase.Derivation.steps r.Chase.Variants.derivation)

let test_frugal_only_moves_fresh_nulls () =
  (* the terms that a frugal simplification actually moves are always
     nulls created at that very step (older terms stay fixed) *)
  let kb = Zoo.Staircase.kb () in
  let r =
    Chase.Variants.frugal
      ~budget:{ Chase.Variants.max_steps = 20; max_atoms = 2000 }
      kb
  in
  let steps = Chase.Derivation.steps r.Chase.Variants.derivation in
  List.iteri
    (fun i st ->
      if i > 0 then begin
        let prev = List.nth steps (i - 1) in
        let old_terms = Atomset.terms prev.Chase.Derivation.instance in
        let moved =
          List.filter
            (fun t ->
              not
                (Term.equal
                   (Subst.apply_term st.Chase.Derivation.simplification t)
                   t))
            (Atomset.terms st.Chase.Derivation.pre_instance)
        in
        List.iter
          (fun t ->
            Alcotest.(check bool)
              (Fmt.str "moved term %a is fresh" Term.pp_debug t)
              false
              (List.exists (Term.equal t) old_terms))
          moved
      end)
    steps

(* ------------------------------------------------------------------ *)
(* Baselines *)

let test_oblivious_infinite_where_skolem_finite () =
  let kb = kb_skolem_vs_oblivious () in
  let ob = Chase.Variants.Baseline.oblivious ~budget:small_budget kb in
  let sk = Chase.Variants.Baseline.skolem ~budget:small_budget kb in
  Alcotest.(check bool) "oblivious diverges" false ob.Chase.Variants.Baseline.terminated;
  Alcotest.(check bool) "skolem terminates" true sk.Chase.Variants.Baseline.terminated;
  Alcotest.(check int) "skolem fires once" 1 sk.Chase.Variants.Baseline.steps

let test_oblivious_on_datalog_terminates () =
  let ob = Chase.Variants.Baseline.oblivious (kb_sym ()) in
  Alcotest.(check bool) "terminates" true ob.Chase.Variants.Baseline.terminated;
  let final = List.nth ob.Chase.Variants.Baseline.instances
      (List.length ob.Chase.Variants.Baseline.instances - 1) in
  Alcotest.(check bool) "model" true (Chase.is_model (kb_sym ()) final)

let test_baseline_monotone () =
  let sk = Chase.Variants.Baseline.skolem ~budget:small_budget (kb_chain ()) in
  let rec mono = function
    | a1 :: (a2 :: _ as rest) -> Atomset.subset a1 a2 && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "skolem trace monotone" true
    (mono sk.Chase.Variants.Baseline.instances)

(* ------------------------------------------------------------------ *)
(* Facade *)

let test_run_facade_all_variants () =
  let kb = kb_sym () in
  List.iter
    (fun v ->
      let rep = Chase.run v kb in
      Alcotest.(check bool)
        (Chase.variant_name v ^ " terminates on datalog")
        true rep.Chase.terminated;
      Alcotest.(check bool)
        (Chase.variant_name v ^ " final is model")
        true
        (Chase.is_model kb rep.Chase.final))
    [ Chase.Oblivious; Chase.Skolem; Chase.Restricted; Chase.Frugal; Chase.Core ]

let test_is_model_negative () =
  let kb = kb_sym () in
  Alcotest.(check bool) "facts alone are not a model" false
    (Chase.is_model kb (Kb.facts kb))

(* ------------------------------------------------------------------ *)
(* Properties *)

(* random datalog KBs over a fixed small vocabulary always terminate, and
   the chase result is a model containing the facts *)
let gen_datalog_kb : Kb.t QCheck.arbitrary =
  QCheck.make
    ~print:(fun kb -> Fmt.str "%a" Kb.pp kb)
    QCheck.Gen.(
      let const_gen = map (fun i -> Term.const ("c" ^ string_of_int i)) (int_bound 2) in
      let* facts =
        list_size (int_range 1 4)
          (let* t1 = const_gen and* t2 = const_gen in
           return (Atom.make "p" [ t1; t2 ]))
      in
      let* swap = bool in
      let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" ()
      and z = Term.fresh_var ~hint:"Z" () in
      let rule =
        if swap then
          Rule.make ~name:"sym" ~body:[ Atom.make "p" [ x; y ] ]
            ~head:[ Atom.make "p" [ y; x ] ] ()
        else
          Rule.make ~name:"trans"
            ~body:[ Atom.make "p" [ x; y ]; Atom.make "p" [ y; z ] ]
            ~head:[ Atom.make "p" [ x; z ] ] ()
      in
      return (Kb.of_lists ~facts ~rules:[ rule ]))

let prop_datalog_restricted_terminates_model =
  QCheck.Test.make ~name:"datalog: restricted chase terminates in a model"
    ~count:60 gen_datalog_kb (fun kb ->
      let r = Chase.Variants.restricted kb in
      r.Chase.Variants.outcome = Chase.Variants.Fixpoint
      && Chase.is_model kb
           (Chase.Derivation.last r.Chase.Variants.derivation).Chase.Derivation.instance)

let prop_core_result_is_core_and_model =
  QCheck.Test.make ~name:"datalog: core chase result is a core model"
    ~count:40 gen_datalog_kb (fun kb ->
      let r = Chase.Variants.core kb in
      let final =
        (Chase.Derivation.last r.Chase.Variants.derivation).Chase.Derivation.instance
      in
      r.Chase.Variants.outcome = Chase.Variants.Fixpoint
      && Homo.Core.is_core final
      && Chase.is_model kb final)

let prop_universality_on_terminating =
  QCheck.Test.make
    ~name:"terminating chase result maps into the oblivious saturation"
    ~count:40 gen_datalog_kb (fun kb ->
      let r = Chase.Variants.restricted kb in
      let final =
        (Chase.Derivation.last r.Chase.Variants.derivation).Chase.Derivation.instance
      in
      let ob = Chase.Variants.Baseline.oblivious kb in
      let obfinal =
        List.nth ob.Chase.Variants.Baseline.instances
          (List.length ob.Chase.Variants.Baseline.instances - 1)
      in
      Homo.Hom.maps_to final obfinal && Homo.Hom.maps_to obfinal final)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_datalog_restricted_terminates_model;
      prop_core_result_is_core_and_model;
      prop_universality_on_terminating;
    ]

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "chase.trigger",
      [
        tc "enumeration & satisfaction" test_trigger_basic;
        tc "application" test_trigger_apply;
        tc "fresh nulls" test_trigger_apply_existential_fresh;
        tc "satisfaction after apply" test_trigger_satisfaction_after_apply;
        tc "rename" test_trigger_rename;
        tc "apply requires triggerhood" test_trigger_apply_requires_triggerhood;
      ] );
    ( "chase.derivation",
      [
        tc "start" test_derivation_start;
        tc "extend & access" test_derivation_extend_and_access;
        tc "rejects satisfied trigger" test_derivation_rejects_satisfied_trigger;
        tc "rejects non-retraction" test_derivation_rejects_non_retraction;
        tc "monotone trace is identity" test_sigma_trace_identity_when_monotonic;
      ] );
    ( "chase.restricted",
      [
        tc "terminates on datalog" test_restricted_terminates_sym;
        tc "result universal" test_restricted_result_is_universal_model;
        tc "chain exhausts budget" test_restricted_chain_budget;
        tc "terminated prefix fair" test_restricted_terminated_prefix_is_fair;
        tc "diverges where core wins" test_restricted_nonterminating_on_core_wins_kb;
      ] );
    ( "chase.core",
      [
        tc "terminates where restricted diverges" test_core_terminates_on_core_wins_kb;
        tc "per-round cadence agrees" test_core_every_round_agrees;
        tc "F_i are cores" test_core_instances_are_cores;
        tc "agrees with core of restricted" test_core_on_terminating_equals_core_of_restricted;
        tc "σ_0 simplifies start" test_core_simplify_start;
      ] );
    ( "chase.fairness",
      [
        tc "no debt after fixpoint" test_fairness_debt_empty_on_terminated;
        tc "debt on truncation" test_fairness_debt_nonempty_on_truncation;
        tc "validate engine output" test_validate_accepts_engine_output;
        tc "index ablation agrees" test_index_ablation_same_results;
      ] );
    ( "chase.stream",
      [
        tc "terminating stream" test_stream_terminating;
        tc "infinite prefix on demand" test_stream_infinite_prefix;
        tc "core stream = eager core" test_stream_core_agrees_with_eager;
      ] );
    ( "chase.frugal",
      [
        tc "folds partially satisfied heads" test_frugal_folds_partially_satisfied_heads;
        tc "between restricted and core" test_frugal_between_restricted_and_core;
        tc "simplifications are retractions" test_frugal_simplifications_are_retractions;
        tc "only fresh nulls move" test_frugal_only_moves_fresh_nulls;
      ] );
    ( "chase.baselines",
      [
        tc "oblivious vs skolem" test_oblivious_infinite_where_skolem_finite;
        tc "oblivious datalog" test_oblivious_on_datalog_terminates;
        tc "monotone traces" test_baseline_monotone;
      ] );
    ( "chase.facade",
      [
        tc "all variants on datalog" test_run_facade_all_variants;
        tc "is_model negative" test_is_model_negative;
      ] );
    ("chase.properties", qcheck_cases);
  ]
