(* Flat interned atoms (DESIGN.md §12).

   The boxed [Term.t]/[Atom.t] trees are the parse/print boundary; the
   hom/instance hot path runs on a flat mirror: every predicate name and
   constant string is interned into a dense non-negative id by a
   process-wide symbol table, variables keep their monotone [Term] ranks
   encoded as negative ints ([lnot rank]), and an atom is a predicate id
   plus an [int array] of term codes.  Hash/equal are O(arity) over
   ints, substitution application writes into a caller-provided scratch
   array, and the two sign classes can never collide: interned ids are
   ≥ 0, variable codes are ≤ -1. *)

module Symtab = struct
  (* One table for predicates and constants alike: the chase never needs
     to know whether id 7 is a predicate or a constant (atoms keep them
     in different slots), and one namespace keeps codes comparable
     everywhere.  All three operations take the mutex: interning happens
     once per atom construction — never inside the backtracking search,
     which only compares codes — so a lock here is off the hot path, and
     it makes the table safely shared across [Par] worker domains. *)
  let mu = Mutex.create ()

  let ids : (string, int) Hashtbl.t = Hashtbl.create 256

  let names = ref (Array.make 256 "")

  let count = ref 0

  let locked f =
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

  let intern s =
    locked (fun () ->
        match Hashtbl.find_opt ids s with
        | Some id -> id
        | None ->
            let id = !count in
            if id >= Array.length !names then begin
              let bigger = Array.make (2 * Array.length !names) "" in
              Array.blit !names 0 bigger 0 id;
              names := bigger
            end;
            !names.(id) <- s;
            Hashtbl.replace ids s id;
            incr count;
            id)

  let find s = locked (fun () -> Hashtbl.find_opt ids s)

  let name id =
    locked (fun () ->
        if id < 0 || id >= !count then
          invalid_arg (Printf.sprintf "Flat.Symtab.name: unknown id %d" id);
        !names.(id))

  let size () = locked (fun () -> !count)
end

(* ------------------------------------------------------------------ *)
(* Term codes *)

let no_code = min_int

let code_of_var_rank r = lnot r

let is_var_code c = c < 0

let rank_of_code c = lnot c

let code_of_term = function
  | Term.Const c -> Symtab.intern c
  | Term.Var v -> lnot v.Term.id

(* Query-side encoding: never allocates a fresh symbol id, so probing an
   index for a constant the instance has never seen stays a no-hit
   instead of growing the table. *)
let code_of_term_opt = function
  | Term.Const c -> Symtab.find c
  | Term.Var v -> Some (lnot v.Term.id)

let term_of_code c =
  if c = no_code then invalid_arg "Flat.term_of_code: no_code"
  else if c < 0 then Term.var_of_id (lnot c)
  else Term.const (Symtab.name c)

(* ------------------------------------------------------------------ *)
(* Flat atoms *)

type t = { pred : int; args : int array }

let make pred args = { pred; args }

let pred a = a.pred

let args a = a.args

let arity a = Array.length a.args

let is_ground a = Array.for_all (fun c -> c >= 0) a.args

let encode (a : Atom.t) =
  {
    pred = Symtab.intern (Atom.pred a);
    args = Array.of_list (List.map code_of_term (Atom.args a));
  }

let decode fa =
  Atom.make (Symtab.name fa.pred) (List.map term_of_code (Array.to_list fa.args))

let equal a b =
  a.pred = b.pred
  && Array.length a.args = Array.length b.args
  &&
  let rec eq i = i < 0 || (a.args.(i) = b.args.(i) && eq (i - 1)) in
  eq (Array.length a.args - 1)

let compare a b =
  let c = Int.compare a.pred b.pred in
  if c <> 0 then c
  else
    let la = Array.length a.args and lb = Array.length b.args in
    let c = Int.compare la lb in
    if c <> 0 then c
    else
      let rec go i =
        if i >= la then 0
        else
          let c = Int.compare a.args.(i) b.args.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

(* FNV-style mixing over raw ints: no boxing and none of the
   polymorphic hash's traversal bookkeeping — a multiply and a xor per
   argument. *)
let hash a =
  let h = ref (a.pred * 0x01000193) in
  for i = 0 to Array.length a.args - 1 do
    h := ((!h lxor a.args.(i)) * 0x01000193) land max_int
  done;
  !h

let pp ppf a =
  if Array.length a.args = 0 then Fmt.pf ppf "#%d" a.pred
  else
    Fmt.pf ppf "#%d(%a)" a.pred
      Fmt.(array ~sep:comma int)
      a.args

(* ------------------------------------------------------------------ *)
(* Flat substitutions: variable code -> term code *)

module Subst = struct
  type nonrec t = (int, int) Hashtbl.t

  let of_subst (s : Subst.t) : t =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (x, t) -> Hashtbl.replace tbl (code_of_term x) (code_of_term t))
      (Subst.to_list s);
    tbl

  let apply_code s c =
    if c >= 0 then c
    else match Hashtbl.find_opt s c with Some c' -> c' | None -> c

  (* The allocation-free application: writes σ(args) into the prefix of
     [scratch] (which must be at least as long as [args]) and reports
     whether anything moved.  Callers keep one scratch array per domain
     and reuse it across every atom of a rewrite, so deciding "is this
     atom touched by σ?" costs zero allocations (the [abl:index] and
     fold-heavy workloads ask that question for every affected atom of
     every simplification step). *)
  let apply_into s ~args ~scratch =
    let n = Array.length args in
    if Array.length scratch < n then
      invalid_arg "Flat.Subst.apply_into: scratch too short";
    let changed = ref false in
    for i = 0 to n - 1 do
      let c = args.(i) in
      let c' = apply_code s c in
      scratch.(i) <- c';
      if c' <> c then changed := true
    done;
    !changed

  let apply s fa =
    let scratch = Array.make (Array.length fa.args) 0 in
    if apply_into s ~args:fa.args ~scratch then { fa with args = scratch }
    else fa
end
