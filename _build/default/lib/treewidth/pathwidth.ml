let max_vertices = 25

let iter_bits m f =
  let rec go m =
    if m <> 0 then begin
      let b = m land -m in
      let rec idx b i = if b = 1 then i else idx (b lsr 1) (i + 1) in
      f (idx b 0);
      go (m lxor b)
    end
  in
  go m

let adj_masks g =
  let n = Graph.vertex_count g in
  Array.init n (fun v ->
      List.fold_left (fun m u -> m lor (1 lsl u)) 0 (Graph.neighbors g v))

(* number of vertices in S with a neighbour outside S *)
let boundary adj all s =
  let b = ref 0 in
  iter_bits s (fun v -> if adj.(v) land all land lnot s <> 0 then incr b);
  !b

let greedy_cost g =
  let n = Graph.vertex_count g in
  if n = 0 then -1
  else begin
    let adj = adj_masks g in
    let all = (1 lsl n) - 1 in
    let placed = ref 0 in
    let cost = ref 0 in
    for _ = 1 to n do
      (* place the vertex minimising the resulting boundary *)
      let best = ref (-1) and best_b = ref max_int in
      iter_bits (all land lnot !placed) (fun v ->
          let b = boundary adj all (!placed lor (1 lsl v)) in
          if b < !best_b then begin
            best_b := b;
            best := v
          end);
      placed := !placed lor (1 lsl !best);
      cost := max !cost !best_b
    done;
    !cost
  end

let upper_bound = greedy_cost

let exact g =
  let n = Graph.vertex_count g in
  if n > max_vertices then invalid_arg "Pathwidth.exact: too many vertices";
  if n = 0 then -1
  else begin
    let adj = adj_masks g in
    let all = (1 lsl n) - 1 in
    let best = ref (greedy_cost g) in
    (* memo: placed-set -> best achievable max-boundary from here given an
       already-incurred maximum; store the smallest incurred max explored *)
    let memo : (int, int) Hashtbl.t = Hashtbl.create 4096 in
    let rec go placed incurred =
      if incurred >= !best then ()
      else if placed = all then best := incurred
      else
        match Hashtbl.find_opt memo placed with
        | Some m when m <= incurred -> ()
        | _ ->
            Hashtbl.replace memo placed incurred;
            iter_bits (all land lnot placed) (fun v ->
                let s = placed lor (1 lsl v) in
                let b = boundary adj all s in
                let incurred' = max incurred b in
                if incurred' < !best then go s incurred')
    in
    go 0 0;
    !best
  end

let of_atomset a =
  let p = Primal.of_atomset a in
  let g = p.Primal.graph in
  if Graph.vertex_count g <= max_vertices then (exact g, true)
  else (greedy_cost g, false)
