(** First-order readings of atomsets, rules, KBs and queries.

    The paper identifies an atomset with the existential closure of the
    conjunction of its atoms and a rule with the sentence
    [∀X⃗Y⃗. B → ∃Z⃗. H] (Section 2); Theorem 1's "yes" semi-procedure relies
    on the completeness of first-order logic.  This module materialises
    those readings as formula ASTs and exports entailment problems in the
    TPTP FOF format, so external first-order provers can be used as an
    independent oracle for [K ⊨ Q]. *)

type t =
  | Atom of Atom.t
  | And of t list  (** [And []] is ⊤ *)
  | Or of t list  (** [Or []] is ⊥ *)
  | Not of t
  | Implies of t * t
  | Forall of Term.t list * t
  | Exists of Term.t list * t

val of_atomset : Atomset.t -> t
(** Existential closure of the conjunction. *)

val of_rule : Rule.t -> t
(** [∀X⃗Y⃗. B[X⃗,Y⃗] → ∃Z⃗. H[X⃗,Z⃗]]. *)

val of_query : Kb.Query.t -> t

val of_ucq : Ucq.t -> t
(** Disjunction of the existentially closed disjuncts. *)

val of_kb : Kb.t -> t list
(** The facts sentence (if any) followed by one sentence per rule. *)

val free_vars : t -> Term.t list
(** Free variables, sorted by rank.  Empty on all [of_*] outputs. *)

val is_sentence : t -> bool

val pp : t Fmt.t
(** Human-readable syntax with ∀/∃/∧/∨/¬/→. *)

val pp_tptp : t Fmt.t
(** The formula in TPTP FOF term syntax (no [fof(...)] wrapper).
    Variables print as [V<rank>]; constants are sanitised to
    [lower_snake] with a [c_] prefix where needed. *)

val tptp_problem : ?name:string -> Kb.t -> Kb.Query.t -> string
(** A complete TPTP problem: one [fof(..., axiom, ...)] per KB sentence
    and the query as [fof(..., conjecture, ...)].  A refutation-complete
    prover reports Theorem iff [K ⊨ Q]. *)
