lib/syntax/ucq.ml: Fmt Kb
