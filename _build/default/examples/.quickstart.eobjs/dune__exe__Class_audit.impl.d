examples/class_audit.ml: Chase Corechase Fmt Kb List Rclasses Syntax Zoo
