open Syntax

module IMap = Map.Make (Int)
module AMap = Map.Make (Atom)

(* Generation epochs.  A single process-wide counter hands out a fresh
   epoch to every instance value whose content differs from its parent's,
   so equal generations imply equal atom sets — the property memo tables
   key on.  The converse does not hold (two independently built instances
   with the same atoms get different generations); caches keyed on
   generations can therefore only lose hits, never correctness. *)
(* Atomic: instances are built from worker domains too (scoped fold
   searches, tests hammering allocation from raw domains), and a
   duplicated epoch would alias two different contents in the hom memo —
   a correctness bug, not just a lost hit. *)
let gen_counter = Atomic.make 0

let next_gen () = Atomic.fetch_and_add gen_counter 1 + 1

let generation_counter_value () = Atomic.get gen_counter

(* Checkpoint resume restores the epoch clock monotonically: raising it
   to at least the persisted value keeps every post-resume generation
   distinct from every checkpoint-era one, so memo entries can never
   alias across the resume boundary.  Never set it down — stale memo
   entries keyed on a re-issued epoch would be a correctness bug. *)
let ensure_generation_counter_at_least n =
  let rec bump () =
    let cur = Atomic.get gen_counter in
    if n > cur && not (Atomic.compare_and_set gen_counter cur n) then bump ()
  in
  bump ()

(* Every atom is stored once, in both representations: the flat mirror
   drives matching and index keys, the boxed original is what every
   public accessor hands back — so hints survive and printing never goes
   through a lossy decode. *)
type fentry = { flat : Flat.t; boxed : Atom.t }

(* A bucket caches its cardinality: selectivity comparisons in
   [fselect_*] and candidate counting in the hom search read [n]
   instead of walking [items]. *)
type bucket = { n : int; items : fentry list }

let bucket_empty = { n = 0; items = [] }

let bucket_add e b = { n = b.n + 1; items = e :: b.items }

(* Every bucket holds an atom at most once (keys are per position), so a
   successful removal decrements the cached cardinality by exactly one.
   Membership is decided on the flat mirror: integer compares, and
   [Flat.equal (encode a) (encode b) = Atom.equal a b]. *)
let bucket_remove fa b =
  let rec rm acc = function
    | [] -> None
    | x :: rest ->
        if Flat.equal x.flat fa then Some (List.rev_append acc rest)
        else rm (x :: acc) rest
  in
  match rm [] b.items with
  | None -> b
  | Some items -> { n = b.n - 1; items }

(* Per-atom bookkeeping: the epoch that added the atom (delta scoping)
   and its encoded entry (so removal and rewriting never re-encode). *)
type info = { stamp : int; entry : fentry }

(* The whole per-predicate index: the predicate's bucket plus, per
   argument position, a map from term code to the bucket of atoms
   carrying that code there.  Hanging the position maps off the
   predicate entry keeps every hot-path lookup an int-keyed [IMap]
   probe — no tuple key is built, and the solver resolves the
   predicate part once per pattern, not once per search node
   (DESIGN.md §12).  The [pos] array is copied on every update
   (it is small — one slot per argument position ever seen for the
   predicate), so sharing across derived instance values stays
   persistent. *)
type pindex = { all : bucket; pos : bucket IMap.t array }

let pindex_empty = { all = bucket_empty; pos = [||] }

type t = {
  atoms : Atomset.t;
  info : info AMap.t;
  by_pred : pindex IMap.t;  (** predicate id -> that predicate's indexes *)
  by_code : (Term.t * bucket) IMap.t;
      (** term code -> (a boxed witness of the code, atoms containing it
          anywhere).  The witness makes decoding solver-found images
          hint-exact: codes drop hints, the witness kept them. *)
  generation : int;  (** cache epoch; equal generations ⇒ equal content *)
}

let empty =
  {
    atoms = Atomset.empty;
    info = AMap.empty;
    by_pred = IMap.empty;
    by_code = IMap.empty;
    generation = 0;
  }

let bump e = function
  | None -> Some (bucket_add e bucket_empty)
  | Some b -> Some (bucket_add e b)

let bump_coded e witness = function
  | None -> Some (witness, bucket_add e bucket_empty)
  | Some (w, b) -> Some (w, bucket_add e b)

let drop fa = function
  | None -> None
  | Some b ->
      let b = bucket_remove fa b in
      if b.n = 0 then None else Some b

let drop_coded fa = function
  | None -> None
  | Some (w, b) ->
      let b = bucket_remove fa b in
      if b.n = 0 then None else Some (w, b)

(* (code, boxed witness) per distinct code of the atom, first occurrence
   first — the by-code index must list each atom once per code, not once
   per position. *)
let distinct_coded_args e =
  let codes = e.flat.Flat.args in
  let rec go i terms acc =
    match terms with
    | [] -> List.rev acc
    | t :: rest ->
        let c = codes.(i) in
        if List.exists (fun (c', _) -> c' = c) acc then go (i + 1) rest acc
        else go (i + 1) rest ((c, t) :: acc)
  in
  go 0 (Atom.args e.boxed) []

let add_atom ins a =
  if Atomset.mem a ins.atoms then ins
  else
    let e = { flat = Flat.encode a; boxed = a } in
    let pid = e.flat.Flat.pred in
    let codes = e.flat.Flat.args in
    let arity = Array.length codes in
    let pi =
      match IMap.find_opt pid ins.by_pred with
      | Some pi -> pi
      | None -> pindex_empty
    in
    let plen = Array.length pi.pos in
    let pos =
      Array.init (max arity plen) (fun i ->
          if i < plen then pi.pos.(i) else IMap.empty)
    in
    Array.iteri (fun i c -> pos.(i) <- IMap.update c (bump e) pos.(i)) codes;
    let by_pred = IMap.add pid { all = bucket_add e pi.all; pos } ins.by_pred in
    let by_code =
      List.fold_left
        (fun bc (c, w) -> IMap.update c (bump_coded e w) bc)
        ins.by_code (distinct_coded_args e)
    in
    let g = next_gen () in
    {
      atoms = Atomset.add a ins.atoms;
      info = AMap.add a { stamp = g; entry = e } ins.info;
      by_pred;
      by_code;
      generation = g;
    }

let remove_atom ins a =
  match AMap.find_opt a ins.info with
  | None -> ins
  | Some { entry = e; _ } ->
      let fa = e.flat in
      let pid = fa.Flat.pred in
      let by_pred =
        match IMap.find_opt pid ins.by_pred with
        | None -> ins.by_pred
        | Some pi ->
            let all = bucket_remove fa pi.all in
            if all.n = 0 then IMap.remove pid ins.by_pred
            else begin
              let pos = Array.copy pi.pos in
              Array.iteri
                (fun i c -> pos.(i) <- IMap.update c (drop fa) pos.(i))
                fa.Flat.args;
              IMap.add pid { all; pos } ins.by_pred
            end
      in
      let by_code =
        List.fold_left
          (fun bc (c, _) -> IMap.update c (drop_coded fa) bc)
          ins.by_code (distinct_coded_args e)
      in
      {
        atoms = Atomset.remove a ins.atoms;
        info = AMap.remove a ins.info;
        by_pred;
        by_code;
        generation = next_gen ();
      }

let add_atoms ins atoms = List.fold_left add_atom ins atoms

let remove_atoms ins atoms = List.fold_left remove_atom ins atoms

let of_atomset atoms = Atomset.fold (fun a ins -> add_atom ins a) atoms empty

(* One scratch buffer per domain for the allocation-free "does σ move
   this atom?" checks below; instances are immutable and shared across
   domains, so the buffer cannot live inside the instance value. *)
let scratch_key = Domain.DLS.new_key (fun () -> ref (Array.make 8 0))

let scratch n =
  let r = Domain.DLS.get scratch_key in
  if Array.length !r < n then r := Array.make (max n (2 * Array.length !r)) 0;
  !r

let apply_subst sigma ins =
  if Subst.is_empty sigma then ins
  else
    let fsigma = Flat.Subst.of_subst sigma in
    (* only atoms containing a term of the substitution's domain can be
       rewritten; the by-code buckets list exactly those *)
    let affected =
      List.fold_left
        (fun acc x ->
          match Flat.code_of_term_opt x with
          | None -> acc
          | Some code -> (
              match IMap.find_opt code ins.by_code with
              | None -> acc
              | Some (_, b) ->
                  List.fold_left
                    (fun acc e -> AMap.add e.boxed e acc)
                    acc b.items))
        AMap.empty (Subst.domain sigma)
    in
    (* flat change detection: σ is applied into the reusable scratch
       array, so deciding which affected atoms actually move allocates
       nothing (DESIGN.md §12) *)
    let changed =
      AMap.filter
        (fun _ e ->
          Flat.Subst.apply_into fsigma ~args:e.flat.Flat.args
            ~scratch:(scratch (Flat.arity e.flat)))
        affected
    in
    (* two phases: remove every rewritten atom, then add every image.  A
       non-idempotent σ (a fold step swapping x and y, say) can map one
       rewritten atom onto another — interleaving removal with insertion
       would silently drop the latter when its own rewrite runs next. *)
    let ins = AMap.fold (fun a _ ins -> remove_atom ins a) changed ins in
    AMap.fold
      (fun a _ ins -> add_atom ins (Subst.apply_atom sigma a))
      changed ins

let atomset ins = ins.atoms

let generation ins = ins.generation

let born ins a =
  match AMap.find_opt a ins.info with
  | Some { stamp; _ } -> Some stamp
  | None -> None

let atoms_since ins g =
  AMap.fold
    (fun a { stamp; _ } acc -> if stamp > g then a :: acc else acc)
    ins.info []
  |> List.sort Atom.compare

let cardinal ins = Atomset.cardinal ins.atoms

let mem ins a = Atomset.mem a ins.atoms

let boxed_items b = List.map (fun e -> e.boxed) b.items

let pred_index ins pid =
  match IMap.find_opt pid ins.by_pred with
  | Some pi -> pi
  | None -> pindex_empty

(* Position lookup on a [pindex]: [Not_found] is caught rather than
   probed with [find_opt] — the handler costs nothing on the hit path
   and the miss path allocates no option, keeping candidate selection
   allocation-free (DESIGN.md §12). *)
let pos_bucket pi i code =
  if i < Array.length pi.pos then
    try IMap.find code pi.pos.(i) with Not_found -> bucket_empty
  else bucket_empty

let atoms_with_pred ins p =
  match Flat.Symtab.find p with
  | None -> []
  | Some pid -> boxed_items (pred_index ins pid).all

let atoms_with_pred_pos_term ins p i t =
  match (Flat.Symtab.find p, Flat.code_of_term_opt t) with
  | Some pid, Some c -> boxed_items (pos_bucket (pred_index ins pid) i c)
  | _ -> []

let atoms_with_term ins t =
  match Flat.code_of_term_opt t with
  | None -> []
  | Some c -> (
      match IMap.find_opt c ins.by_code with
      | Some (_, b) -> boxed_items b
      | None -> [])

let term_of_code ins c =
  match IMap.find_opt c ins.by_code with
  | Some (w, _) -> Some w
  | None -> None

let use_indexes = ref true

let all_atoms ins = Atomset.to_list ins.atoms

let fall_entries ins =
  List.rev (AMap.fold (fun _ { entry; _ } acc -> entry :: acc) ins.info [])

(* A pattern's selection handle: the instance (for the index-free
   fallback) plus its predicate's [pindex], resolved once per pattern
   per solve call — the per-node selection below never touches
   [by_pred] again. *)
type findex = { f_ins : t; f_pi : pindex }

let findex ins ~pred = { f_ins = ins; f_pi = pred_index ins pred }

(* The most selective index entry for a flat pattern: among argument
   positions whose pattern code is concrete — a constant, or a search
   variable the [bind] array has already fixed — the position bucket
   with the fewest atoms; otherwise the predicate bucket.  The pattern
   encodes its search variables as [lnot slot] (negative), so a
   negative arg reads its current code from [bind] and [Flat.no_code]
   marks "still unconstrained".  Comparisons use the cached
   cardinalities, nothing is allocated, and a zero-cardinality bucket
   short-circuits: nothing beats it, and every empty bucket has the
   same (empty) item list, so the early exit is invisible to the
   search. *)
let findex_select fi ~fargs ~bind =
  let n = Array.length fargs in
  let pi = fi.f_pi in
  let rec go i best =
    if i >= n || best.n = 0 then best
    else
      let a = fargs.(i) in
      let code = if a >= 0 then a else bind.(lnot a) in
      if code = Flat.no_code then go (i + 1) best
      else
        let b = pos_bucket pi i code in
        go (i + 1) (if b.n < best.n then b else best)
  in
  go 0 pi.all

let findex_count fi ~fargs ~bind =
  if !use_indexes then (findex_select fi ~fargs ~bind).n
  else Atomset.cardinal fi.f_ins.atoms

let findex_items fi ~fargs ~bind =
  if !use_indexes then (findex_select fi ~fargs ~bind).items
  else fall_entries fi.f_ins

(* Boxed front-end to the same selection, for the reference solver and
   direct index queries: the pattern is encoded per call (constants that
   were never interned select the empty bucket — nothing can match
   them). *)
let best_bucket ins pattern sigma =
  match Flat.Symtab.find (Atom.pred pattern) with
  | None -> bucket_empty
  | Some pid ->
      let pi = pred_index ins pid in
      let best = ref pi.all in
      List.iteri
        (fun i arg ->
          let img =
            match arg with
            | Term.Const _ -> Some arg
            | Term.Var _ -> Subst.find arg sigma
          in
          match img with
          | None -> ()
          | Some img ->
              let b =
                match Flat.code_of_term_opt img with
                | None -> bucket_empty
                | Some c -> pos_bucket pi i c
              in
              if b.n < !best.n then best := b)
        (Atom.args pattern);
      !best

let candidates ins pattern sigma =
  if !use_indexes then boxed_items (best_bucket ins pattern sigma)
  else all_atoms ins

let candidate_count ins pattern sigma =
  if !use_indexes then (best_bucket ins pattern sigma).n
  else Atomset.cardinal ins.atoms

let invariants_ok ins =
  let fresh = of_atomset ins.atoms in
  let norm b = List.sort (fun e1 e2 -> Atom.compare e1.boxed e2.boxed) b.items in
  let bucket_eq b1 b2 =
    b1.n = List.length b1.items
    && b1.n = b2.n
    && List.equal (fun e1 e2 -> Flat.equal e1.flat e2.flat) (norm b1) (norm b2)
  in
  let pindex_eq p1 p2 =
    (* position arrays may carry trailing empty maps (removals never
       shrink them); compare up to the longer length with empty maps
       padding the shorter *)
    let l1 = Array.length p1.pos and l2 = Array.length p2.pos in
    let get p i = if i < Array.length p.pos then p.pos.(i) else IMap.empty in
    bucket_eq p1.all p2.all
    && List.for_all
         (fun i -> IMap.equal bucket_eq (get p1 i) (get p2 i))
         (List.init (max l1 l2) Fun.id)
  in
  IMap.equal pindex_eq ins.by_pred fresh.by_pred
  && IMap.equal
       (fun (w1, b1) (_, b2) ->
         (* witnesses may legitimately differ between builds (first atom
            to carry the code wins); they must still decode to the keyed
            code *)
         bucket_eq b1 b2
         && IMap.for_all
              (fun c (w, _) -> Flat.code_of_term w = c)
              (IMap.singleton (Flat.code_of_term w1) (w1, b1)))
       ins.by_code fresh.by_code
  && (* entries cover exactly the live atoms, agree with a fresh encode,
        and never postdate the instance's own epoch *)
  AMap.cardinal ins.info = Atomset.cardinal ins.atoms
  && AMap.for_all
       (fun a { stamp; entry } ->
         Atomset.mem a ins.atoms
         && stamp <= ins.generation
         && Atom.equal entry.boxed a
         && Flat.equal entry.flat (Flat.encode a))
       ins.info

let pp ppf ins = Atomset.pp ppf ins.atoms
