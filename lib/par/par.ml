(* Domain pool with deterministic fan-out (DESIGN.md §10, §14).

   Each worker owns a persistent worklist: a published chunk array plus
   an [Atomic] sequence number.  Submitting a batch is, per active
   worker, one plain store (the chunk array) and one atomic store (the
   seq bump) — the message-passing publication idiom of the OCaml
   memory model — plus a per-worker condition signal only when that
   worker is parked.  The PR-4 design paid a process mutex and two
   condition broadcasts per fan-out; the worklist path pays atomics,
   and touches a mutex only to sleep or wake.

   Assignment stays static — chunk [i] belongs to slot [i mod jobs],
   the caller runs slot 0's share itself — so which domain executes
   which task is a function of the batch alone, never of timing.  That
   staticness is what makes the per-domain counter split of
   [Obs.Metrics] reproducible; the price (no work stealing within a
   fan-out) is irrelevant at the chunk sizes the chase produces.

   Determinism of results is the combinators' business: they write each
   task's result into its own slot of a caller-allocated array and merge
   by index after the barrier, so the merge order is the input order no
   matter which domain finished first.

   [Batch] (bottom of this file) is the throughput layer on top of the
   same pool: N independent tasks (whole chases, entailment queries)
   claimed dynamically, with per-task isolation of the ambient state. *)

let max_jobs = 64

let m_fanouts = Obs.Metrics.counter "par.fanouts"

let m_tasks = Obs.Metrics.counter "par.tasks"

(* Spinning before parking is only profitable when every domain of the
   pool can actually run at once; an oversubscribed pool (more jobs
   than cores — the single-core CI containers, notably) parks
   immediately, which both avoids burning the one core the caller
   needs and reproduces the PR-4 sleep behaviour there. *)
let cores = Domain.recommended_domain_count ()

let spin_budget jobs = if jobs <= cores then 2_000 else 0

module Pool = struct
  type worklist = {
    seq : int Atomic.t;  (** number of batches submitted to this worker *)
    mutable chunks : (unit -> unit) array;
        (** current batch; written (plain) before the [seq] bump that
            publishes it, read by the worker only after observing the
            bump — the release/acquire pair of the OCaml memory model *)
    sleeping : bool Atomic.t;  (** worker parked on [wc]; set under [wm] *)
    wm : Mutex.t;
    wc : Condition.t;
  }

  type t = {
    jobs : int;
    lists : worklist array;  (** worker slot [k] owns [lists.(k - 1)] *)
    remaining : int Atomic.t;  (** active workers still in the batch *)
    waiting : bool Atomic.t;  (** caller parked on [done_] *)
    dm : Mutex.t;
    done_ : Condition.t;
    abort : exn option Atomic.t;
        (** first chunk/poll failure of the batch; first writer wins,
            re-raised by [run] after the barrier *)
    stop : bool Atomic.t;
    mutable domains : unit Domain.t array;
  }

  let jobs p = p.jobs

  (* The one slice-execution loop both the caller and the workers run:
     chunks [slot], [slot + jobs], [slot + 2·jobs], … of the batch.
     The ambient cancellation token is polled between chunks, so a long
     batch notices a deadline even when the chunk payloads themselves
     do not poll (raw [Pool.run] users); [run_all]'s payloads
     additionally poll per task. *)
  let exec_slice ~jobs chunks slot =
    let n = Array.length chunks in
    let i = ref slot in
    while !i < n do
      chunks.(!i) ();
      i := !i + jobs;
      if !i < n then Resilience.poll ()
    done

  (* A raise (from the slice poll or from a chunk itself) is recorded in
     [abort] and re-raised by [run] after the barrier, so a failure can
     never leave caller and workers out of sync on the batch protocol. *)
  let run_slice p chunks slot =
    match exec_slice ~jobs:p.jobs chunks slot with
    | () -> ()
    | exception e -> ignore (Atomic.compare_and_set p.abort None (Some e))

  let worker p slot () =
    Obs.Metrics.set_slot slot;
    let w = p.lists.(slot - 1) in
    let last = ref 0 in
    let spin = spin_budget p.jobs in
    let running = ref true in
    while !running do
      (* fast path: the next batch usually arrives while we spin *)
      let budget = ref spin in
      while
        (not (Atomic.get p.stop))
        && Atomic.get w.seq = !last
        && !budget > 0
      do
        Domain.cpu_relax ();
        decr budget
      done;
      if Atomic.get w.seq = !last && not (Atomic.get p.stop) then begin
        (* slow path: park.  [sleeping] is set before the re-check of
           [seq] under the mutex; the submitter bumps [seq] before it
           reads [sleeping].  Under sequential consistency of atomics,
           a submission that misses the flag (skips the signal) is one
           whose bump the re-check is guaranteed to see. *)
        Mutex.lock w.wm;
        Atomic.set w.sleeping true;
        while (not (Atomic.get p.stop)) && Atomic.get w.seq = !last do
          Condition.wait w.wc w.wm
        done;
        Atomic.set w.sleeping false;
        Mutex.unlock w.wm
      end;
      if Atomic.get p.stop then running := false
      else begin
        last := Atomic.get w.seq;
        run_slice p w.chunks slot;
        (* barrier: last worker out wakes the caller iff it parked *)
        if
          Atomic.fetch_and_add p.remaining (-1) = 1
          && Atomic.get p.waiting
        then begin
          Mutex.lock p.dm;
          Condition.broadcast p.done_;
          Mutex.unlock p.dm
        end
      end
    done

  let create ~jobs =
    if jobs < 2 then invalid_arg "Par.Pool.create: jobs must be >= 2";
    let p =
      {
        jobs;
        lists =
          Array.init (jobs - 1) (fun _ ->
              {
                seq = Atomic.make 0;
                chunks = [||];
                sleeping = Atomic.make false;
                wm = Mutex.create ();
                wc = Condition.create ();
              });
        remaining = Atomic.make 0;
        waiting = Atomic.make false;
        dm = Mutex.create ();
        done_ = Condition.create ();
        abort = Atomic.make None;
        stop = Atomic.make false;
        domains = [||];
      }
    in
    p.domains <- Array.init (jobs - 1) (fun k -> Domain.spawn (worker p (k + 1)));
    p

  let run p chunks =
    let nchunks = Array.length chunks in
    if nchunks = 0 then ()
    else begin
      (* only the workers that own a nonempty slice take part: a tiny
         fan-out (n = 2, 3 — common at trigger sites with few rules)
         publishes to and waits for [n - 1] workers, not [jobs - 1] *)
      let active = min (nchunks - 1) (p.jobs - 1) in
      Atomic.set p.abort None;
      Atomic.set p.remaining active;
      for k = 1 to active do
        let w = p.lists.(k - 1) in
        w.chunks <- chunks;
        Atomic.incr w.seq;
        if Atomic.get w.sleeping then begin
          Mutex.lock w.wm;
          Condition.signal w.wc;
          Mutex.unlock w.wm
        end
      done;
      (* the caller is slot 0 *)
      run_slice p chunks 0;
      if Atomic.get p.remaining > 0 then begin
        let budget = ref (spin_budget p.jobs) in
        while Atomic.get p.remaining > 0 && !budget > 0 do
          Domain.cpu_relax ();
          decr budget
        done;
        if Atomic.get p.remaining > 0 then begin
          Mutex.lock p.dm;
          Atomic.set p.waiting true;
          while Atomic.get p.remaining > 0 do
            Condition.wait p.done_ p.dm
          done;
          Atomic.set p.waiting false;
          Mutex.unlock p.dm
        end
      end;
      (* drop the chunk closures so finished batches don't pin their
         captured state; workers only read [chunks] after the next seq
         bump, which is ordered after the next batch's store *)
      for k = 1 to active do
        p.lists.(k - 1).chunks <- [||]
      done;
      match Atomic.get p.abort with
      | None -> ()
      | Some e ->
          Atomic.set p.abort None;
          raise e
    end

  let shutdown p =
    Atomic.set p.stop true;
    Array.iter
      (fun w ->
        Mutex.lock w.wm;
        Condition.broadcast w.wc;
        Mutex.unlock w.wm)
      p.lists;
    Array.iter Domain.join p.domains;
    p.domains <- [||]
end

(* ------------------------------------------------------------------ *)
(* The process-wide pool, sized by CORECHASE_JOBS / set_jobs / --jobs. *)

let current : Pool.t option ref = ref None

(* true while a batch is in flight on the caller; nested combinator
   calls (from a chunk the caller runs itself) degrade to sequential *)
let busy = ref false

(* Oversubscription clamp: the pool is spawned at
   [min requested cores] — with more domains than cores they would
   time-share, so a fan-out still pays every worker wake-up (context
   switches on the very core the caller needs) and can never finish
   earlier than a narrower pool; worse, merely keeping surplus domains
   alive taxes every minor collection with their stop-the-world
   synchronisation (~12% on the abl:par workload on a 1-core machine,
   with not a single fan-out run).  Results are pool-width-independent
   (the jobs=4 ≡ jobs=1 differential law), so clamping changes no
   output — on a 1-core machine [--jobs 4] simply runs sequentially,
   with no pool at all.  Tests force the full requested width — their
   differential pins must exercise real cross-domain execution even on
   a 1-core machine, and the per-slot metric splits they pin are only
   machine-independent at full width — via {!force_parallel} /
   CORECHASE_FORCE_PAR=1. *)
let requested = ref 1

let forced = ref false

let effective_width n = if !forced then n else min n (max 1 cores)

let jobs () = !requested

let oversubscribed () = effective_width !requested < !requested

let apply_width () =
  let w = effective_width !requested in
  let cur = match !current with None -> 1 | Some p -> Pool.jobs p in
  if w <> cur then begin
    (match !current with
    | Some p ->
        current := None;
        Pool.shutdown p
    | None -> ());
    if w > 1 then current := Some (Pool.create ~jobs:w)
  end

let set_jobs n =
  if n < 1 then invalid_arg "Par.set_jobs: jobs must be >= 1";
  requested := min n max_jobs;
  apply_width ()

let force_parallel b =
  forced := b;
  apply_width ()

let with_jobs n f =
  let saved = jobs () in
  set_jobs n;
  Fun.protect ~finally:(fun () -> set_jobs saved) f

let sequential () =
  match !current with
  | None -> true
  | Some _ -> !busy || Obs.Metrics.slot () <> 0

(* Chunking width: at most [chunk_factor × jobs] chunks per batch, so a
   large fan-out (a trigger list in the thousands) hands each worker a
   handful of multi-item chunks instead of thousands of single-item
   closures — per item the pool then costs an array read and a strided
   increment, not a closure allocation and a batch-queue slot.  The
   factor keeps more chunks than workers so a slow chunk still overlaps
   the others' progress. *)
let chunk_factor = 8

(* Run [tasks] as one batch on [p], returning results by index.  Each
   task writes its own slot of [out]/[exns]; the pool barrier orders
   those writes before the reads below.  The lowest-index exception is
   re-raised — the one the sequential run would have hit first.

   Tasks are grouped into strided chunks — chunk [c] runs tasks
   [c, c + nchunks, c + 2·nchunks, …] — with [nchunks] either [n]
   itself (small batches: chunk = task, exactly the ungrouped
   behaviour) or a multiple of [jobs].  Either way task [i] still runs
   on slot [(i mod nchunks) mod jobs = i mod jobs], so the static
   task-to-domain assignment — and with it the per-domain counter
   split of [Obs.Metrics] — is byte-identical to the unchunked
   fan-out. *)
let run_all p ~site (tasks : (unit -> 'a) array) : 'a array =
  Resilience.Fault.hit "par";
  let n = Array.length tasks in
  let out : 'a option array = Array.make n None in
  let exns : exn option array = Array.make n None in
  let nchunks = min n (chunk_factor * Pool.jobs p) in
  (* Each task polls the ambient resilience token on its own domain
     before running: a tripped deadline/cancellation is captured like any
     other task exception and re-raised after the barrier, so a [--jobs N]
     run stops within one fan-out wave of the deadline (DESIGN.md §11). *)
  let chunks =
    Array.init nchunks (fun c () ->
        let i = ref c in
        while !i < n do
          (match
             Resilience.poll ();
             tasks.(!i) ()
           with
          | y -> out.(!i) <- Some y
          | exception e -> exns.(!i) <- Some e);
          i := !i + nchunks
        done)
  in
  if !Obs.Metrics.enabled then begin
    Obs.Metrics.incr m_fanouts;
    Obs.Metrics.add m_tasks n
  end;
  if Obs.Trace.enabled () then
    Obs.Trace.emit (Obs.Trace.Par_fanout { site; tasks = n; jobs = Pool.jobs p });
  busy := true;
  Fun.protect ~finally:(fun () -> busy := false) (fun () -> Pool.run p chunks);
  Array.iter (function Some e -> raise e | None -> ()) exns;
  Array.map (function Some y -> y | None -> assert false) out

(* worth fanning out? (n >= 2 and an idle pool on the main domain) *)
let pool_for n =
  if n < 2 || !busy || Obs.Metrics.slot () <> 0 then None else !current

let map ?(site = "par.map") f xs =
  match pool_for (List.length xs) with
  | None -> List.map f xs
  | Some p ->
      let arr = Array.of_list xs in
      Array.to_list (run_all p ~site (Array.map (fun x () -> f x) arr))

let iter ?(site = "par.iter") f xs =
  match pool_for (List.length xs) with
  | None -> List.iter f xs
  | Some p ->
      let arr = Array.of_list xs in
      ignore (run_all p ~site (Array.map (fun x () -> f x) arr))

let rec take_wave k acc = function
  | rest when k = 0 -> (List.rev acc, rest)
  | [] -> (List.rev acc, [])
  | x :: rest -> take_wave (k - 1) (x :: acc) rest

let find_first_map ?(site = "par.find") f xs =
  match pool_for (List.length xs) with
  | None -> List.find_map f xs
  | Some p ->
      let wave = 2 * Pool.jobs p in
      let rec go = function
        | [] -> None
        | xs -> (
            Resilience.poll ();
            let items, rest = take_wave wave [] xs in
            let results =
              match items with
              | [ x ] -> [| f x |]
              | _ ->
                  run_all p ~site
                    (Array.map (fun x () -> f x) (Array.of_list items))
            in
            match Array.find_map Fun.id results with
            | Some _ as r -> r
            | None -> go rest)
      in
      go xs

let map_reduce ?(site = "par.map_reduce") ~map:f ~reduce ~init xs =
  List.fold_left reduce init (map ~site f xs)

(* ------------------------------------------------------------------ *)
(* Batch: the throughput layer (DESIGN.md §14).  N independent tasks
   claimed dynamically across the pool, each run under per-task
   isolation so the result array is byte-identical to a sequential
   loop over the tasks — at any pool width, on any schedule. *)

module Batch = struct
  (* Instruments are registered lazily, on the first [run]: single-chase
     processes keep their metrics tables (cram-pinned) unchanged. *)
  let m_runs = lazy (Obs.Metrics.counter "par.batch.runs")

  let m_batch_tasks = lazy (Obs.Metrics.counter "par.batch.tasks")

  (* Dynamic claiming means these two record scheduling facts: they are
     deterministic in total per run only on a 1-wide pool.  They are
     throughput diagnostics, not determinism-pinned counters. *)
  let m_steal = lazy (Obs.Metrics.counter "par.steal")

  let g_queue_depth = lazy (Obs.Metrics.gauge "par.queue_depth")

  let reset_hooks : (unit -> unit) list ref = ref []

  let add_reset_hook f = reset_hooks := f :: !reset_hooks

  (* Run one task under full isolation:
     - registered reset hooks clear ambient per-domain caches (the hom
       failure/success memo registers one) so a task never observes a
       sibling's — or a previous tenant's — cache;
     - [Term.with_local_counter] gives the task a private fresh-var
       counter starting at 0, so it mints exactly the ranks a
       sequential loop would;
     - [Resilience.with_task_scope] gives it a private ambient-token
       cell seeded with the process-wide token of the submission, so
       engines inside install/poll their own deadlines without
       clobbering sibling tasks;
     - [Obs.Trace.with_muted] silences engine events for the task body
       (placement-dependent interleaving); the batch emits
       deterministic [Batch_task] summaries after the barrier instead.
     A task failure is its own [Error] — sibling tasks are unaffected. *)
  let isolated ?token (f : unit -> 'a) : ('a, exn) result =
    List.iter (fun h -> h ()) !reset_hooks;
    let token =
      match token with Some _ as t -> t | None -> Resilience.ambient ()
    in
    Syntax.Term.with_local_counter (fun () ->
        Resilience.with_task_scope ?token (fun () ->
            Obs.Trace.with_muted (fun () ->
                match f () with v -> Ok v | exception e -> Error e)))

  let run ?(site = "par.batch") ?tokens (tasks : (unit -> 'a) array) :
      ('a, exn) result array =
    let n = Array.length tasks in
    (match tokens with
    | Some a when Array.length a <> n ->
        invalid_arg "Par.Batch.run: tokens array length mismatch"
    | _ -> ());
    (* per-task token override (DESIGN.md §15): the server runs one
       batch of entailment readers where each task belongs to a
       different connection, so each runs under its own token scope;
       a [None] entry falls back to the submission's ambient token *)
    let token_of i =
      match tokens with None -> None | Some a -> a.(i)
    in
    (* One injected-fault opportunity per submitted task, decided on the
       caller in submission order — so a [par:k:kind] fault spec lands on
       the same task at every pool width (the [Fault] hit counters are
       process-wide; letting racing workers take the hits would make the
       fault placement schedule-dependent). *)
    let faults =
      Array.map
        (fun _ ->
          match Resilience.Fault.hit "par" with
          | () -> None
          | exception e -> Some e)
        tasks
    in
    let slots = Array.make n 0 in
    let durs = Array.make n 0. in
    let timed i task =
      let t0 = Unix.gettimeofday () in
      let r =
        match faults.(i) with
        | Some e -> Error e
        | None -> isolated ?token:(token_of i) task
      in
      durs.(i) <- Unix.gettimeofday () -. t0;
      r
    in
    if !Obs.Metrics.enabled && n > 0 then begin
      Obs.Metrics.incr (Lazy.force m_runs);
      Obs.Metrics.add (Lazy.force m_batch_tasks) n
    end;
    let out =
      match pool_for n with
      | None -> Array.mapi timed tasks
      | Some p ->
          let jobs = Pool.jobs p in
          (* forced on the caller before the fan-out: workers must never
             race on forcing a lazy *)
          let steal = Lazy.force m_steal in
          let depth = Lazy.force g_queue_depth in
          let results : ('a, exn) result option array = Array.make n None in
          let next = Atomic.make 0 in
          (* Unlike a fan-out, tasks are claimed dynamically: whole
             chases have wildly uneven durations, and static striding
             would leave domains idle behind the slowest stripe.
             Isolation is what keeps the results placement-independent
             anyway, so staticness buys nothing here. *)
          let claim slot () =
            let continue = ref true in
            while !continue do
              let i = Atomic.fetch_and_add next 1 in
              if i >= n then continue := false
              else begin
                if !Obs.Metrics.enabled then begin
                  Obs.Metrics.set depth (n - i - 1);
                  if i mod jobs <> slot then Obs.Metrics.incr steal
                end;
                slots.(i) <- slot;
                results.(i) <- Some (timed i tasks.(i))
              end
            done
          in
          let chunks = Array.init (min n jobs) claim in
          if Obs.Trace.enabled () then
            Obs.Trace.emit
              (Obs.Trace.Par_fanout { site; tasks = n; jobs });
          busy := true;
          Fun.protect
            ~finally:(fun () -> busy := false)
            (fun () -> Pool.run p chunks);
          Array.map
            (function Some r -> r | None -> assert false)
            results
    in
    if Obs.Trace.enabled () then
      Array.iteri
        (fun i _ ->
          Obs.Trace.emit
            (Obs.Trace.Batch_task
               {
                 site;
                 index = i;
                 slot = slots.(i);
                 ms = int_of_float (durs.(i) *. 1000.);
               }))
        out;
    out

  let map ?site f xs =
    Array.to_list (run ?site (Array.of_list (List.map (fun x () -> f x) xs)))
end

(* CORECHASE_JOBS sizes the pool at startup; --jobs can override later.
   Malformed values fall back to 1 (sequential) rather than failing the
   whole process. *)
let () =
  (match Sys.getenv_opt "CORECHASE_FORCE_PAR" with
  | Some ("1" | "true" | "yes") -> forced := true
  | _ -> ());
  (match Sys.getenv_opt "CORECHASE_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> set_jobs n
      | _ -> ())
  | None -> ());
  at_exit (fun () -> try set_jobs 1 with _ -> ())
