Serving queries over a socket (DESIGN.md §15): `corechase serve' holds
long-lived named KB sessions behind the wire protocol, and `corechase
client' speaks it — so this test needs no socat.

  $ cat > family.dlgp <<'KB'
  > parent(alice, bob).
  > parent(bob, carol).
  > [anc-base] ancestor(X, Y) :- parent(X, Y).
  > [anc-rec]  ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
  > KB

Start a daemon on a Unix socket; the ready file appears once every
endpoint is bound, so scripts wait on it instead of polling connect:

  $ corechase serve --listen unix:serve.sock --ready-file ready --quiet &
  $ for i in $(seq 100); do test -f ready && break; sleep 0.1; done

Open a session, load the KB server-side, and chase it — the daemon
streams one event frame per saturation round, then stamps generation 1:

  $ corechase client -c unix:serve.sock "PING" "OPEN fam" "LOAD fam path family.dlgp" "CHASE fam variant=restricted steps=100"
  hello: corechase 1 ready
  ok: pong
  ok: opened fam
  ok: loaded fam: 2 facts, 2 rules
  event: round 1: 2 atoms
  event: round 2: 4 atoms
  ok: chased fam generation 1: fixpoint, 3 steps, 5 atoms

Entailment reads the snapshot (the chase is not re-run); the verdict
lines are byte-identical to `corechase entail' on the same KB:

  $ corechase client -c unix:serve.sock "ENTAIL fam\n? :- ancestor(alice, carol)."
  hello: corechase 1 ready
  ? :- ancestor(alice, carol)  ⟶  entailed
  ok: ok

  $ corechase client -c unix:serve.sock "ENTAIL fam\n?(X) :- ancestor(alice, X)."
  hello: corechase 1 ready
  ?(X) :- ancestor(alice, X)  ⟶  2 certain answer(s): (bob) (carol)
  ok: ok

Errors are structured frames, and the client exits 1 when any reply
was an err:

  $ corechase client -c unix:serve.sock "ENTAIL nosuch\n? :- p(a)."
  hello: corechase 1 ready
  err: unknown-session: no session "nosuch"
  [1]

Session accounting, then a graceful shutdown from the wire:

  $ corechase client -c unix:serve.sock "STATS fam" "SESSIONS" "CLOSE fam" "SHUTDOWN"
  hello: corechase 1 ready
  session:    fam
  generation: 1
  kb:         2 facts, 2 rules (family.dlgp)
  snapshot:   fixpoint, 5 atoms, 3 steps (restricted)
  requests:   6
  entails:    2
  ok: stats
  fam generation=1 requests=6
  ok: 1 session(s)
  ok: closed fam
  ok: shutting down

The daemon drains and exits 0, unlinking its socket and ready file:

  $ wait
  $ test ! -e serve.sock
  $ test ! -e ready
