(** Propositional grounding of [F ∧ Σ ∧ ¬Q] over a finite domain.

    Given a domain size [d], the encoder fixes a domain consisting of the
    KB's (and query's) constants plus anonymous elements up to [d], creates
    one SAT variable per ground atom, and emits:

    - embedding clauses for the facts [F] (whose nulls may land anywhere:
      one selector variable per assignment of the nulls);
    - rule clauses: for every grounding of a rule's universal variables,
      body implies some grounding of the head (selector variables per
      existential assignment; plain Horn clauses for datalog heads);
    - query refutation clauses: for every grounding of the query variables,
      at least one query atom is false.

    The paper's Theorem 1 uses satisfiability of [F ∧ Σ ∧ ¬Q] over
    structures of treewidth ≤ k (Courcelle); we substitute structures of
    {e domain size} ≤ d — a sound countermodel search exercising the same
    role (see DESIGN.md §1). *)

open Syntax

type t = {
  nvars : int;
  clauses : int list list;
  domain : Term.t list;  (** domain elements as constant terms *)
  decode : bool array -> Atomset.t;  (** model → atomset of true atoms *)
}

val encode :
  domain_size:int -> ?forbid:Kb.Query.t -> ?forbid_all:Kb.Query.t list ->
  Kb.t -> t
(** [forbid_all] refutes every listed query simultaneously (used for UCQ
    countermodels); [forbid] is the single-query convenience.
    @raise Invalid_argument if [domain_size] is smaller than the number of
    constants, or not positive. *)
