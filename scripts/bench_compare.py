#!/usr/bin/env python3
"""Compare a fresh benchmark run against the committed baseline.

Usage: bench_compare.py BASELINE.json CURRENT.json [TOLERANCE]
       bench_compare.py --memo-gate CURRENT.json
       bench_compare.py --route-gate CURRENT.json
       bench_compare.py --scaling-gate CURRENT.json

Both files use the BENCH_RESULTS.json schema: timing rows (ns/run) nested
under a top-level "benchmarks" key and per-workload counter columns under
"counters".  Every benchmark present in CURRENT is compared against the
same key in BASELINE; a row slower than TOLERANCE x baseline (default 1.5)
is flagged.  Allocation counters (*.minor_words) are reported per workload
so the artifact records allocation drift alongside timing drift.

Exit status:
  0  all checks pass
  1  tolerance regressions only (warn-only — marks the job, not the
     workflow)
  2  usage / malformed input
  3  memo gate violation: the "abl:hom:memo:on" row is slower than
     "abl:hom:memo:off" in CURRENT.  This one is a hard failure — a memo
     that loses to its own ablation is a correctness-of-purpose bug, not
     runner noise — so CI runs it as a non-warn step (--memo-gate).
  4  route gate violation: some "abl:route:auto:<family>" row is slower
     than ROUTE_PAD x the best fixed-engine row for that family.  The
     router's whole point is picking an engine no worse than the best
     fixed choice (its analysis cost has its own row and is not part of
     the gate), so this too is a hard failure (--route-gate).
  5  scaling gate violation: the "thr:batch:jobs4" batch did not reach
     SCALING_MIN_SPEEDUP x the "thr:batch:jobs1" throughput on a machine
     with >= SCALING_MIN_CORES cores.  Parallelism that fails to pay on
     real cores is the regression the thr:* family exists to catch
     (--scaling-gate); on narrower machines the pool is clamped and the
     gate degrades to a warning, since speedup ~ 1.0 is the correct
     clamped behaviour there.

Stdlib only.
"""

import json
import os
import sys

MEMO_ON = "corechase abl:hom:memo:on"
MEMO_OFF = "corechase abl:hom:memo:off"
# Per-rep rows behind the canonical medians; the gate recomputes the
# median itself when these are present so a stale canonical row can't
# mask (or fake) a regression.
MEMO_REPS = (1, 2, 3)

# Shared runners are noisy even between two rows of the same run; allow
# the memo row a small pad before calling it a regression.
MEMO_PAD = 1.10

THR_ROW = "corechase thr:batch:jobs%d"
SCALING_MIN_SPEEDUP = 1.5
SCALING_MIN_CORES = 4

ROUTE_AUTO = "corechase abl:route:auto:"
# Fixed-engine rows the routed run is compared against, per family.
ROUTE_FIXED = ("restricted", "core")
ROUTE_PAD = 1.20


def load(path):
    with open(path) as f:
        return json.load(f)


def median(values):
    values = sorted(values)
    return values[len(values) // 2]


def memo_row(bench, canonical):
    """The median of the :r1..:r3 rep rows when present, else the
    canonical row itself; (value, label) or (None, label)."""
    reps = [
        bench.get("%s:r%d" % (canonical, r))
        for r in MEMO_REPS
    ]
    reps = [v for v in reps if isinstance(v, (int, float))]
    if reps:
        return median(reps), "median of %d rep(s)" % len(reps)
    value = bench.get(canonical)
    if isinstance(value, (int, float)):
        return value, "single row"
    return None, "missing"


def memo_gate(current):
    """0 if memo:on beats (or ties, within the pad) memo:off, else 3.

    Both sides are medians of the interleaved :r1..:r3 rep rows —
    single-run OLS estimates drift by more than the few-percent memo
    effect on shared runners, so one noisy rep must not flip the gate.
    """
    bench = current.get("benchmarks", {})
    on, on_how = memo_row(bench, MEMO_ON)
    off, off_how = memo_row(bench, MEMO_OFF)
    if on is None or off is None:
        print("memo gate: rows missing (%s / %s) — skipped" % (MEMO_ON, MEMO_OFF))
        return 0
    verdict = "PASS" if on <= off * MEMO_PAD else "FAIL"
    print(
        "memo gate: on %.1f ns/run (%s) vs off %.1f ns/run (%s) (pad %.2fx) -> %s"
        % (on, on_how, off, off_how, MEMO_PAD, verdict)
    )
    if verdict == "FAIL":
        print("memo gate: abl:hom:memo:on regressed past abl:hom:memo:off")
        return 3
    return 0


def scaling_gate(current):
    """0 if the jobs=4 batch reaches SCALING_MIN_SPEEDUP x the jobs=1
    throughput, else 5; warn-only on machines with < SCALING_MIN_CORES
    cores (the pool is clamped there, so ~1.0x is correct)."""
    bench = current.get("benchmarks", {})
    j1, j4 = bench.get(THR_ROW % 1), bench.get(THR_ROW % 4)
    cores = os.cpu_count() or 1
    if not isinstance(j1, (int, float)) or not isinstance(j4, (int, float)) \
            or j1 <= 0 or j4 <= 0:
        print("scaling gate: rows missing (%s / %s) — skipped"
              % (THR_ROW % 1, THR_ROW % 4))
        return 0
    # rows are wall-clock ns for the same batch, so the throughput ratio
    # is the inverse wall-clock ratio
    speedup = j1 / j4
    enforced = cores >= SCALING_MIN_CORES
    ok = speedup >= SCALING_MIN_SPEEDUP
    print(
        "scaling gate: %d core(s); jobs1 %.1f ms vs jobs4 %.1f ms -> "
        "speedup %.2fx, efficiency %.2f (required %.2fx, %s)"
        % (cores, j1 / 1e6, j4 / 1e6, speedup, speedup / 4.0,
           SCALING_MIN_SPEEDUP, "enforced" if enforced else
           "warn-only: fewer than %d cores" % SCALING_MIN_CORES)
    )
    if ok:
        print("scaling gate: PASS")
        return 0
    if not enforced:
        print("scaling gate: below target but the pool is clamped on this "
              "machine — WARN only")
        return 0
    print("scaling gate: FAIL — parallelism is not paying on real cores")
    return 5


def route_gate(current):
    """0 if every routed run beats ROUTE_PAD x the best fixed engine, else 4."""
    bench = current.get("benchmarks", {})
    autos = {
        name[len(ROUTE_AUTO):]: value
        for name, value in bench.items()
        if name.startswith(ROUTE_AUTO) and isinstance(value, (int, float))
    }
    if not autos:
        print("route gate: no %s* rows — skipped" % ROUTE_AUTO)
        return 0
    failures = []
    for family in sorted(autos):
        fixed = {
            engine: bench.get("corechase abl:route:%s:%s" % (engine, family))
            for engine in ROUTE_FIXED
        }
        fixed = {e: v for e, v in fixed.items() if isinstance(v, (int, float))}
        if not fixed:
            print("route gate: %-18s no fixed-engine rows — skipped" % family)
            continue
        best_engine = min(fixed, key=fixed.get)
        best = fixed[best_engine]
        auto = autos[family]
        ok = auto <= best * ROUTE_PAD
        print(
            "route gate: %-18s auto %.1f vs best fixed (%s) %.1f ns/run "
            "(pad %.2fx) -> %s"
            % (family, auto, best_engine, best, ROUTE_PAD, "PASS" if ok else "FAIL")
        )
        if not ok:
            failures.append(family)
    if failures:
        print("route gate: routed engine slower than the best fixed engine on: %s"
              % ", ".join(failures))
        return 4
    return 0


def alloc_report(baseline, current):
    """Per-workload *.minor_words columns, current vs baseline."""
    cur = current.get("counters", {})
    base = baseline.get("counters", {})
    rows = []
    for workload in sorted(cur):
        for counter, value in sorted(cur[workload].items()):
            if not counter.endswith("minor_words"):
                continue
            prev = base.get(workload, {}).get(counter)
            rows.append((workload, counter, prev, value))
    if not rows:
        return
    print()
    print("allocation counters (minor words per workload):")
    width = max(len("%s %s" % (w, c)) for w, c, _, _ in rows)
    for workload, counter, prev, value in rows:
        label = "%s %s" % (workload, counter)
        if isinstance(prev, (int, float)):
            print("  %-*s %14d -> %14d" % (width, label, prev, value))
        else:
            print("  %-*s %14s -> %14d  (no baseline)" % (width, label, "-", value))


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--memo-gate":
        return memo_gate(load(sys.argv[2]))
    if len(sys.argv) == 3 and sys.argv[1] == "--route-gate":
        return route_gate(load(sys.argv[2]))
    if len(sys.argv) == 3 and sys.argv[1] == "--scaling-gate":
        return scaling_gate(load(sys.argv[2]))
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    baseline_path, current_path = sys.argv[1], sys.argv[2]
    tolerance = float(sys.argv[3]) if len(sys.argv) > 3 else 1.5
    baseline_doc = load(baseline_path)
    current_doc = load(current_path)
    baseline = baseline_doc.get("benchmarks", {})
    current = current_doc.get("benchmarks", {})
    if not current:
        print("no benchmark rows in %s" % current_path)
        return 2
    regressions = []
    width = max(len(name) for name in current)
    print("tolerance: %.2fx baseline (%s)" % (tolerance, baseline_path))
    for name in sorted(current):
        cur = current[name]
        base = baseline.get(name)
        if not isinstance(base, (int, float)) or base <= 0:
            print("  %-*s %14s -> %14.1f ns/run  (no baseline)" % (width, name, "-", cur))
            continue
        ratio = cur / base
        flag = "REGRESSION" if ratio > tolerance else "ok"
        print(
            "  %-*s %14.1f -> %14.1f ns/run  %5.2fx %s"
            % (width, name, base, cur, ratio, flag)
        )
        if ratio > tolerance:
            regressions.append((name, ratio))
    alloc_report(baseline_doc, current_doc)
    print()
    gate = memo_gate(current_doc)
    rgate = route_gate(current_doc)
    if gate:
        return gate
    if rgate:
        return rgate
    if regressions:
        print()
        print("%d benchmark(s) slower than %.2fx baseline (warn-only):" % (len(regressions), tolerance))
        for name, ratio in regressions:
            print("  %s: %.2fx" % (name, ratio))
        return 1
    print()
    print("all compared benchmarks within %.2fx of baseline" % tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
