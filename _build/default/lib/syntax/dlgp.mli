(** Parser and printer for a subset of the DLGP 2.0 format (the textual
    format of the Graal existential-rule toolkit), giving the library a real
    I/O surface.

    Supported statements, each terminated by a dot:

    - facts: [p(a,b), q(b).] — a conjunction of ground-or-null atoms;
    - rules: [\[label\] h1(X,Z), h2(Z) :- b1(X,Y), b2(Y).] — head [:-] body,
      head variables absent from the body read as existentially quantified;
    - queries: [?(X) :- p(X,Y).] (answer variables kept as the query's
      distinguished variables) or [? :- p(X,Y).] (Boolean);
    - negative constraints: [! :- p(X,X).];
    - equality-generating dependencies: [X = Y :- p(Z,X), p(Z,Y).];
    - section markers [@facts] [@rules] [@queries] [@constraints] (accepted,
      non-binding) and [%] line comments.

    Lexical conventions: identifiers starting with a lowercase letter or
    digit (or quoted with ["…"] or [<…>]) are constants; identifiers
    starting with an uppercase letter or [_] are variables, scoped per
    statement. *)

type document = {
  facts : Atomset.t;
  rules : Rule.t list;
  egds : Egd.t list;  (** equality heads: [X = Y :- body.] *)
  queries : Kb.Query.t list;
  constraints : Kb.Query.t list;
      (** negative constraints [! :- body.]: the KB is inconsistent iff
          some constraint body is entailed *)
}

type error = { line : int; col : int; message : string }

val pp_error : error Fmt.t

val parse_string : string -> (document, error) result

val parse_file : string -> (document, error) result
(** @raise Sys_error if the file cannot be read. *)

val kb_of_document : document -> Kb.t
(** Keeps facts, rules and EGDs; forgets queries and constraints. *)

val parse_kb : string -> (Kb.t, error) result
(** [parse_kb s] parses and keeps only facts and rules. *)

val print_document : Format.formatter -> document -> unit
(** Prints a document back in parseable DLGP syntax (modulo variable
    names, which are printed as [V<rank>] when hint-less). *)

val atom_to_string : Atom.t -> string
(** One atom in DLGP syntax. *)

val rule_to_string : Rule.t -> string
(** One rule in DLGP syntax ([head :- body.]). *)
