(* Umbrella test runner; suites are added per library as they land. *)
let () = Alcotest.run "corechase" (Test_syntax.suites @ Test_homo.suites @ Test_treewidth.suites @ Test_chase.suites @ Test_zoo.suites @ Test_core.suites @ Test_rclasses.suites @ Test_integration.suites @ Test_experiments.suites @ Test_repl.suites @ Test_egd.suites @ Test_datalog.suites @ Test_incremental.suites)
