lib/syntax/term.ml: Fmt Hashtbl Int String
