(** Length-prefixed, CRC-checked, LSN-stamped binary frames and the
    xlog/snap file format built from them (DESIGN.md §16).

    One frame is [\[len:u32le\]\[lsn:u64le\]\[crc:u32le\]\[payload\]],
    with the CRC-32 covering the LSN bytes followed by the payload.  A
    file is an 8-byte magic ({!wal_magic} or {!snap_magic}) followed by
    frames.  Torn-vs-corrupt discipline: an incomplete or checksum-torn
    frame at exactly end-of-file is a {e torn tail} (truncate-and-warn);
    any earlier decoding failure is {e corruption} (structured error,
    recovery refuses). *)

val header_bytes : int
(** Frame header size (16). *)

val max_payload : int
(** Per-frame payload limit (256 MiB). *)

type frame_error =
  | Torn  (** incomplete frame: more bytes were expected *)
  | Crc_mismatch of int
      (** full frame present, checksum fails; carries the frame's total
          byte extent so the file layer can test "ends exactly at EOF" *)
  | Malformed of string  (** impossible length field / LSN *)

val pp_frame_error : frame_error Fmt.t

val encode_frame : lsn:int -> string -> string
(** @raise Invalid_argument on a negative LSN or oversized payload. *)

val decode_frame : ?pos:int -> string -> (int * string * int, frame_error) result
(** [decode_frame ~pos buf] parses one frame, returning
    [(lsn, payload, bytes_consumed)].  Total round-trip laws
    (test/test_props.ml): [decode_frame (encode_frame ~lsn p) =
    Ok (lsn, p, _)]; every strict prefix decodes to [Error Torn]; any
    single-byte flip is detected; random bytes never raise. *)

(** {2 Files} *)

val wal_magic : string
(** ["CWAL0001"], opens every log segment. *)

val snap_magic : string
(** ["CSNP0001"], opens every snapshot file. *)

val file_has_magic : string -> bool
(** Does the file start with either magic?  Used by [corechase resume]
    to recognise WAL data handed to the text-checkpoint path and hint
    at [--wal] instead of failing on a version mismatch. *)

type scan = {
  frames : (int * string) list;  (** (lsn, payload) in file order *)
  valid_size : int;  (** offset just past the last valid frame *)
  torn : bool;  (** a torn tail follows [valid_size] *)
}

val scan_file : magic:string -> string -> (scan, string) result
(** Read and validate one file.  [Error] on I/O failure, bad magic, or
    mid-file corruption; a torn tail is reported in the [scan], not as
    an error. *)

(** {2 Writer} *)

type writer

val create_writer : magic:string -> string -> writer
(** Create/truncate the file and write the magic. *)

val append_writer : magic:string -> string -> valid_size:int -> writer
(** Reopen an existing file for appending, truncating a torn tail away
    first ([valid_size] from {!scan_file}). *)

val append : writer -> lsn:int -> string -> unit
(** Write one frame (buffered by the OS; {!sync} makes it durable). *)

val sync : writer -> unit
(** fsync. *)

val close_writer : writer -> unit
