lib/homo/hom.mli: Atom Atomset Instance Subst Syntax
