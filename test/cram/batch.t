Batched throughput mode (DESIGN.md §14): `chase --batch` runs one
chase per manifest line through Par.Batch.  The per-file report lines
are pinned and must be byte-identical at every --jobs width — tasks
are claimed dynamically, but per-task isolation (private freshness
counter, private token scope, cache resets) makes the results
placement-independent, and the lines print in manifest order.

  $ cat > left.dlgp <<'KB'
  > parent(alice, bob).
  > parent(bob, carol).
  > [anc-base] ancestor(X, Y) :- parent(X, Y).
  > [anc-rec]  ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
  > KB
  $ cat > mid.dlgp <<'KB'
  > e(a, b).
  > e(b, c).
  > e(c, d).
  > [tc] e(X, Z) :- e(X, Y), e(Y, Z).
  > KB
  $ cat > right.dlgp <<'KB'
  > p(a).
  > [grow] q(X, Y), p(Y) :- p(X).
  > KB
  $ cat > manifest.txt <<'EOF'
  > left.dlgp
  > # comments and blank lines are skipped
  > 
  > mid.dlgp
  > right.dlgp
  > EOF

  $ corechase chase --batch manifest.txt --variant core --steps 6 --jobs 1
  left.dlgp: core fixpoint steps=3 atoms=5
  mid.dlgp: core fixpoint steps=3 atoms=6
  right.dlgp: core steps steps=6 atoms=13
  batch:      3 file(s), worst exit 2
  [2]

The same manifest at --jobs 4 (forced past the core-count clamp so the
pool really fans out even on a 1-core runner) prints the same bytes:

  $ CORECHASE_FORCE_PAR=1 corechase chase --batch manifest.txt --variant core --steps 6 --jobs 4
  left.dlgp: core fixpoint steps=3 atoms=5
  mid.dlgp: core fixpoint steps=3 atoms=6
  right.dlgp: core steps steps=6 atoms=13
  batch:      3 file(s), worst exit 2
  [2]

With tracing on, worker-side events are muted; after the barrier the
caller emits one batch_task summary per task, in submission order
(slot/ms are scheduling facts, so only the count and order are pinned):

  $ CORECHASE_FORCE_PAR=1 corechase chase --batch manifest.txt --variant core --steps 6 --jobs 4 --trace out.jsonl
  left.dlgp: core fixpoint steps=3 atoms=5
  mid.dlgp: core fixpoint steps=3 atoms=6
  right.dlgp: core steps steps=6 atoms=13
  batch:      3 file(s), worst exit 2
  [2]
  $ grep -c batch_task out.jsonl
  3
  $ grep -o '"ev":"batch_task","site":"cli.batch","index":[0-9]*' out.jsonl
  "ev":"batch_task","site":"cli.batch","index":0
  "ev":"batch_task","site":"cli.batch","index":1
  "ev":"batch_task","site":"cli.batch","index":2

A missing file fails its own task only; siblings are unaffected and
the worst per-file exit code (3: input error) is the batch's:

  $ printf 'left.dlgp\nnope.dlgp\n' > broken.txt
  $ corechase chase --batch broken.txt --variant core --steps 6 --jobs 1
  left.dlgp: core fixpoint steps=3 atoms=5
  error: Sys_error("nope.dlgp: No such file or directory")
  batch:      2 file(s), worst exit 3
  [3]

`corechase bench --throughput` prints the speedup-curve table; timings
vary per machine, so only the structure is pinned:

  $ corechase bench --throughput --tasks 4 --jobs-list 1,2 --reps 1 | grep -vE '^ +[0-9]'
  throughput: 4 independent chase jobs, median of 1 rep(s)
     jobs   wall(ms)   tasks/s   speedup  efficiency
  results identical across widths/reps: yes
