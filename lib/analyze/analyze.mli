(** Static termination analysis and engine routing (DESIGN.md §13).

    Entry module of [corechase.analyze]: re-exports the semantic probes
    — {!Ranks} (k-boundedness estimation by bounded restricted-chase
    runs), {!Linearcheck} (Leclère-style one-atom-at-a-time probing for
    linear rules) and {!Grdcycles} (SCC refinement of the graph of rule
    dependencies) — and combines them with the syntactic
    {!Rclasses.analyze} report into a {!verdict} on the chase
    behaviour of a KB plus a machine-readable justification trail.

    The verdict lattice, least certain first:

    {v Unknown  ⊑  Bts  ⊑  Terminates_restricted  ⊑  Terminates_all v}

    - [Terminates_all]: every chase variant terminates on every
      instance over these rules (acyclicity classes, datalog-only GRD
      cycles, or a skolem fixpoint on the critical instance).
    - [Terminates_restricted]: the restricted chase of {e this} KB
      reaches a fixpoint — certified by actually running it to
      fixpoint within budget ({!Ranks}), with the {!Linearcheck}
      atomic probes as universal supporting evidence on linear rules.
    - [Bts]: the ruleset is in a treewidth-bounded class (guardedness
      family) — querying is decidable but the chase may diverge.
    - [Unknown]: no criterion fired (or EGDs are present, which the
      termination criteria do not cover).

    Every criterion records its {!scope}: [Universal] facts hold for
    all instances over the ruleset, [Instance] facts only for the
    analysed KB. *)

module Ranks = Ranks
module Linearcheck = Linearcheck
module Grdcycles = Grdcycles

open Syntax

type verdict = Unknown | Bts | Terminates_restricted | Terminates_all

val verdict_name : verdict -> string
(** ["unknown" | "bts" | "terminates-restricted" | "terminates-all"]. *)

val verdict_rank : verdict -> int
(** Position in the lattice: [Unknown] is 0, [Terminates_all] is 3.
    Verdicts only ever compare along this chain. *)

type scope = Universal | Instance

type criterion = {
  name : string;  (** stable identifier, e.g. ["classes:acyclicity"] *)
  holds : bool;
  scope : scope;
  detail : string;  (** deterministic human-readable justification *)
}

type report = {
  classes : Rclasses.report;  (** the syntactic class landscape *)
  criteria : criterion list;  (** the justification trail, fixed order *)
  verdict : verdict;
}

val default_budget : Chase.Variants.budget
(** Budget for the semantic probes (smaller than the engine default:
    the analyzer must stay cheap relative to the chase it routes). *)

val analyze : ?budget:Chase.Variants.budget -> Kb.t -> report
(** Run every applicable criterion and fold the verdict.  With EGDs
    present the semantic probes are skipped and the verdict is capped
    at [Unknown] (the certificates only cover TGD chases). *)

val route_of_report : Kb.t -> report -> Chase.engine_choice * string
(** The routing policy, as (decision, reason): semi-naive datalog for
    existential-free EGD-free KBs, the restricted engine when the
    verdict certifies termination, the core engine (robust default)
    otherwise. *)

val route : ?budget:Chase.Variants.budget -> Kb.t -> Chase.engine_choice
(** [route kb = fst (route_of_report kb (analyze kb))]. *)

val pp_report : report Fmt.t
(** The pinned rendering used by [corechase analyze]: the class flags,
    one line per criterion, the verdict. *)

val to_json : Kb.t -> report -> string
(** Machine-readable justification trail (criteria, verdict, route). *)
