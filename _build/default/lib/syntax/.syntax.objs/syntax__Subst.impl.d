lib/syntax/subst.ml: Atom Atomset Fmt Int List Map Option Term
