(** Graphviz (DOT) export, for visualising the paper's structures — the
    staircase, the elevator, tree decompositions and chase snapshots
    render directly with [dot -Tsvg].

    Binary atoms become labelled edges, unary atoms node annotations,
    higher-arity atoms a hyperedge node connected to its arguments. *)

open Syntax

val atomset : ?name:string -> Atomset.t -> string
(** A [graph { ... }] of the instance. *)

val decomposition : ?name:string -> Decomposition.t -> string
(** The bag tree, each node listing its bag's terms. *)
