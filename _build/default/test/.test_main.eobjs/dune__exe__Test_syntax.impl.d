test/test_syntax.ml: Alcotest Atom Atomset Dlgp Fmt Fol Kb List QCheck QCheck_alcotest Result Rule Schema String Subst Syntax Term
