(** Throughput benchmarking over {!Par.Batch} (DESIGN.md §14).

    Runs N independent chase jobs — the reasoning-server load of ROADMAP
    item 1 — across the domain pool at several widths and reports
    wall-clock / speedup / efficiency curves.  Shared by the bench
    harness (the [thr:batch:{jobs1,jobs2,jobs4}] rows, gated by
    [bench_compare.py --scaling-gate] in CI) and the
    [corechase bench --throughput] CLI. *)

type summary = {
  name : string;
  variant : string;
  outcome : string;
  steps : int;
  atoms : int;
}
(** What one job reports: enough to compare runs across pool widths. *)

val summary_line : summary -> string

val summarize : string -> Chase.report -> summary
(** Condense a chase report under the given job name. *)

val mix :
  ?scale:int -> count:int -> unit -> (string * (unit -> summary)) list
(** The standard deterministic task mix ([count] named jobs): staircase
    and elevator core chases, seeded random restricted chases, seeded
    datalog saturations, interleaved by index.  [scale] multiplies the
    step budgets (1 = a few ms per job). *)

val default_count : int
(** Default batch size (32 jobs). *)

val run_once :
  jobs:int -> (string * (unit -> summary)) list -> float * string list
(** One timed batch at the given width: wall-clock seconds plus one
    result line per job, in submission order (failures render as their
    exception). *)

type row = {
  jobs : int;
  wall_s : float;  (** median over the reps *)
  tasks_per_s : float;
  speedup : float;  (** vs the [jobs = 1] row *)
  efficiency : float;  (** speedup / jobs *)
}

val curves :
  ?reps:int ->
  jobs_list:int list ->
  (string * (unit -> summary)) list ->
  row list * bool
(** Measure every width ([reps] runs each, median kept), and check that
    every width and every rep produced identical result lines — the
    [bool] is that cross-width determinism verdict. *)

val pp_rows : Format.formatter -> row list -> unit
(** The curve table (wall ms, tasks/s, speedup, efficiency per width). *)
