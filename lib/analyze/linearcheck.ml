open Syntax

let max_arity = 4

type result = {
  applicable : bool;
  certified : bool;
  probes : int;
  failures : string list;
  why_not : string option;
}

let rec partitions = function
  | [] -> [ [] ]
  | x :: rest ->
      List.concat_map
        (fun p ->
          ([ x ] :: p)
          :: List.mapi
               (fun i _ ->
                 List.mapi (fun j blk -> if i = j then x :: blk else blk) p)
               p)
        (partitions rest)

(* One atomic instance per equality partition of the argument positions:
   positions in the same block share a constant. *)
let atomic_instance pred arity partition =
  let args = Array.make arity (Term.const "lin0") in
  List.iteri
    (fun bi block ->
      let c = Term.const (Printf.sprintf "lin%d" bi) in
      List.iter (fun pos -> args.(pos) <- c) block)
    partition;
  Atom.make pred (Array.to_list args)

let partition_label partition =
  let block b = String.concat "" (List.map string_of_int (List.sort compare b)) in
  "{"
  ^ String.concat "|"
      (List.map block
         (List.sort (fun a b -> compare (List.sort compare a) (List.sort compare b)) partition))
  ^ "}"

let body_preds rules =
  List.sort_uniq compare
    (List.concat_map (fun r -> Atomset.preds (Rule.body r)) rules)

let not_applicable why = { applicable = false; certified = false; probes = 0; failures = []; why_not = Some why }

let check ?(budget = Chase.Variants.default_budget) kb =
  let rules = Kb.rules kb in
  if Kb.egds kb <> [] then not_applicable "EGDs present"
  else if not (Rclasses.Guardedness.ruleset_linear rules) then
    not_applicable "not a linear ruleset"
  else
    let preds = body_preds rules in
    match List.find_opt (fun (_, ar) -> ar > max_arity) preds with
    | Some (p, ar) ->
        not_applicable (Printf.sprintf "body predicate %s/%d exceeds arity cap %d" p ar max_arity)
    | None ->
        let probes = ref 0 and failures = ref [] in
        List.iter
          (fun (p, ar) ->
            List.iter
              (fun partition ->
                incr probes;
                let atom = atomic_instance p ar partition in
                let kb = Kb.make ~facts:(Atomset.singleton atom) ~rules in
                let run = Chase.Variants.restricted ~budget kb in
                if run.Chase.Variants.outcome <> Chase.Variants.Fixpoint then
                  failures :=
                    Printf.sprintf "%s/%d%s" p ar (partition_label partition)
                    :: !failures)
              (partitions (List.init ar Fun.id)))
          preds;
        {
          applicable = true;
          certified = !failures = [];
          probes = !probes;
          failures = List.rev !failures;
          why_not = None;
        }
