(* Domain pool with deterministic fan-out (DESIGN.md §10).

   One mutex/condition pair carries batches from the caller to the
   workers.  A batch is an array of chunks; assignment is static — chunk
   [i] belongs to slot [i mod jobs], the caller runs slot 0's share
   itself — so which domain executes which task is a function of the
   batch alone, never of timing.  That staticness is what makes the
   per-domain counter split of [Obs.Metrics] reproducible; the price
   (no work stealing) is irrelevant at the chunk sizes the chase
   produces.

   Determinism of results is the combinators' business: they write each
   task's result into its own slot of a caller-allocated array and merge
   by index after the barrier, so the merge order is the input order no
   matter which domain finished first. *)

let max_jobs = 64

let m_fanouts = Obs.Metrics.counter "par.fanouts"

let m_tasks = Obs.Metrics.counter "par.tasks"

module Pool = struct
  type t = {
    jobs : int;
    m : Mutex.t;
    work : Condition.t;  (** caller -> workers: a batch is ready *)
    done_ : Condition.t;  (** workers -> caller: batch complete *)
    mutable batch : (unit -> unit) array;
    mutable seq : int;  (** batch sequence number, workers run each once *)
    mutable pending : int;  (** workers still working on the current batch *)
    mutable stop : bool;
    mutable domains : unit Domain.t array;
  }

  let jobs p = p.jobs

  let worker p slot () =
    Obs.Metrics.set_slot slot;
    let last = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock p.m;
      while (not p.stop) && p.seq = !last do
        Condition.wait p.work p.m
      done;
      if p.stop then begin
        Mutex.unlock p.m;
        running := false
      end
      else begin
        let chunks = p.batch in
        last := p.seq;
        Mutex.unlock p.m;
        let n = Array.length chunks in
        let i = ref slot in
        while !i < n do
          chunks.(!i) ();
          i := !i + p.jobs
        done;
        Mutex.lock p.m;
        p.pending <- p.pending - 1;
        if p.pending = 0 then Condition.broadcast p.done_;
        Mutex.unlock p.m
      end
    done

  let create ~jobs =
    if jobs < 2 then invalid_arg "Par.Pool.create: jobs must be >= 2";
    let p =
      {
        jobs;
        m = Mutex.create ();
        work = Condition.create ();
        done_ = Condition.create ();
        batch = [||];
        seq = 0;
        pending = 0;
        stop = false;
        domains = [||];
      }
    in
    p.domains <- Array.init (jobs - 1) (fun k -> Domain.spawn (worker p (k + 1)));
    p

  let run p chunks =
    Mutex.lock p.m;
    p.batch <- chunks;
    p.seq <- p.seq + 1;
    p.pending <- p.jobs - 1;
    Condition.broadcast p.work;
    Mutex.unlock p.m;
    (* the caller is slot 0 *)
    let n = Array.length chunks in
    let i = ref 0 in
    while !i < n do
      chunks.(!i) ();
      i := !i + p.jobs
    done;
    Mutex.lock p.m;
    while p.pending > 0 do
      Condition.wait p.done_ p.m
    done;
    p.batch <- [||];
    Mutex.unlock p.m

  let shutdown p =
    Mutex.lock p.m;
    p.stop <- true;
    Condition.broadcast p.work;
    Mutex.unlock p.m;
    Array.iter Domain.join p.domains;
    p.domains <- [||]
end

(* ------------------------------------------------------------------ *)
(* The process-wide pool, sized by CORECHASE_JOBS / set_jobs / --jobs. *)

let current : Pool.t option ref = ref None

(* true while a batch is in flight on the caller; nested combinator
   calls (from a chunk the caller runs itself) degrade to sequential *)
let busy = ref false

let jobs () = match !current with None -> 1 | Some p -> Pool.jobs p

let set_jobs n =
  if n < 1 then invalid_arg "Par.set_jobs: jobs must be >= 1";
  let n = min n max_jobs in
  if n <> jobs () then begin
    (match !current with
    | Some p ->
        current := None;
        Pool.shutdown p
    | None -> ());
    if n > 1 then current := Some (Pool.create ~jobs:n)
  end

let with_jobs n f =
  let saved = jobs () in
  set_jobs n;
  Fun.protect ~finally:(fun () -> set_jobs saved) f

let sequential () =
  match !current with
  | None -> true
  | Some _ -> !busy || Obs.Metrics.slot () <> 0

(* Chunking width: at most [chunk_factor × jobs] chunks per batch, so a
   large fan-out (a trigger list in the thousands) hands each worker a
   handful of multi-item chunks instead of thousands of single-item
   closures — per item the pool then costs an array read and a strided
   increment, not a closure allocation and a batch-queue slot.  The
   factor keeps more chunks than workers so a slow chunk still overlaps
   the others' progress. *)
let chunk_factor = 8

(* Run [tasks] as one batch on [p], returning results by index.  Each
   task writes its own slot of [out]/[exns]; the pool barrier orders
   those writes before the reads below.  The lowest-index exception is
   re-raised — the one the sequential run would have hit first.

   Tasks are grouped into strided chunks — chunk [c] runs tasks
   [c, c + nchunks, c + 2·nchunks, …] — with [nchunks] either [n]
   itself (small batches: chunk = task, exactly the ungrouped
   behaviour) or a multiple of [jobs].  Either way task [i] still runs
   on slot [(i mod nchunks) mod jobs = i mod jobs], so the static
   task-to-domain assignment — and with it the per-domain counter
   split of [Obs.Metrics] — is byte-identical to the unchunked
   fan-out. *)
let run_all p ~site (tasks : (unit -> 'a) array) : 'a array =
  Resilience.Fault.hit "par";
  let n = Array.length tasks in
  let out : 'a option array = Array.make n None in
  let exns : exn option array = Array.make n None in
  let nchunks = min n (chunk_factor * Pool.jobs p) in
  (* Each task polls the ambient resilience token on its own domain
     before running: a tripped deadline/cancellation is captured like any
     other task exception and re-raised after the barrier, so a [--jobs N]
     run stops within one fan-out wave of the deadline (DESIGN.md §11). *)
  let chunks =
    Array.init nchunks (fun c () ->
        let i = ref c in
        while !i < n do
          (match
             Resilience.poll ();
             tasks.(!i) ()
           with
          | y -> out.(!i) <- Some y
          | exception e -> exns.(!i) <- Some e);
          i := !i + nchunks
        done)
  in
  if !Obs.Metrics.enabled then begin
    Obs.Metrics.incr m_fanouts;
    Obs.Metrics.add m_tasks n
  end;
  if Obs.Trace.enabled () then
    Obs.Trace.emit (Obs.Trace.Par_fanout { site; tasks = n; jobs = Pool.jobs p });
  busy := true;
  Fun.protect ~finally:(fun () -> busy := false) (fun () -> Pool.run p chunks);
  Array.iter (function Some e -> raise e | None -> ()) exns;
  Array.map (function Some y -> y | None -> assert false) out

let pool_for n =
  (* worth fanning out? (n >= 2 and an idle pool on the main domain) *)
  if n < 2 || !busy || Obs.Metrics.slot () <> 0 then None else !current

let map ?(site = "par.map") f xs =
  match pool_for (List.length xs) with
  | None -> List.map f xs
  | Some p ->
      let arr = Array.of_list xs in
      Array.to_list (run_all p ~site (Array.map (fun x () -> f x) arr))

let iter ?(site = "par.iter") f xs =
  match pool_for (List.length xs) with
  | None -> List.iter f xs
  | Some p ->
      let arr = Array.of_list xs in
      ignore (run_all p ~site (Array.map (fun x () -> f x) arr))

let rec take_wave k acc = function
  | rest when k = 0 -> (List.rev acc, rest)
  | [] -> (List.rev acc, [])
  | x :: rest -> take_wave (k - 1) (x :: acc) rest

let find_first_map ?(site = "par.find") f xs =
  match pool_for (List.length xs) with
  | None -> List.find_map f xs
  | Some p ->
      let wave = 2 * Pool.jobs p in
      let rec go = function
        | [] -> None
        | xs -> (
            Resilience.poll ();
            let items, rest = take_wave wave [] xs in
            let results =
              match items with
              | [ x ] -> [| f x |]
              | _ ->
                  run_all p ~site
                    (Array.map (fun x () -> f x) (Array.of_list items))
            in
            match Array.find_map Fun.id results with
            | Some _ as r -> r
            | None -> go rest)
      in
      go xs

let map_reduce ?(site = "par.map_reduce") ~map:f ~reduce ~init xs =
  List.fold_left reduce init (map ~site f xs)

(* CORECHASE_JOBS sizes the pool at startup; --jobs can override later.
   Malformed values fall back to 1 (sequential) rather than failing the
   whole process. *)
let () =
  (match Sys.getenv_opt "CORECHASE_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> set_jobs n
      | _ -> ())
  | None -> ());
  at_exit (fun () -> try set_jobs 1 with _ -> ())
