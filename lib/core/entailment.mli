(** CQ entailment procedures (Proposition 1(3), Proposition 9, Theorems 1–2).

    Three engines are provided:

    - {!via_chase}: the "yes" semi-decision procedure.  Every derivation
      element [F_i] is universal for [K] (Proposition 1(1)), so [Q ↪ F_i]
      certifies [K ⊨ Q]; a terminated chase whose result does not receive
      [Q] certifies [K ⊭ Q] (the result is then a universal model).
    - {!via_countermodel}: the "no" semi-decision procedure.  A finite
      model of [F ∧ Σ ∧ ¬Q] certifies [K ⊭ Q].  (The paper's Theorem 1
      searches treewidth-bounded models via Courcelle; we search
      domain-size-bounded models — see DESIGN.md §1.)
    - {!decide}: Theorem 1's skeleton — both procedures with increasing
      budgets; each is sound, so the first verdict wins. *)

open Syntax

type verdict =
  | Entailed
  | Not_entailed
  | Unknown of string  (** budgets exhausted; the message says which *)

val pp_verdict : verdict Fmt.t

val holds_in : Kb.Query.t -> Atomset.t -> bool
(** [Q] maps homomorphically into the instance. *)

val holds_in_indexed : Kb.Query.t -> Homo.Instance.t -> bool
(** As {!holds_in} on a pre-indexed instance — index a chase element once
    and probe many queries/disjuncts against it. *)

val via_chase :
  ?variant:[ `Restricted | `Core ] -> ?budget:Chase.Variants.budget ->
  Kb.t -> Kb.Query.t -> verdict
(** Default variant: [`Core] (the variant that terminates whenever a finite
    universal model exists). *)

val via_countermodel : max_domain:int -> Kb.t -> Kb.Query.t -> verdict
(** [Not_entailed] if a countermodel with at most [max_domain] elements
    exists; [Unknown] otherwise (never [Entailed]). *)

val decide :
  ?variant:[ `Restricted | `Core ] -> ?budget:Chase.Variants.budget ->
  ?max_domain:int -> Kb.t -> Kb.Query.t -> verdict
(** Runs {!via_chase} (with the chosen chase variant, default [`Core])
    then, if inconclusive, {!via_countermodel} (defaults: the chase
    default budget; domains up to 4).  [`Restricted] is the engine the
    analyzer routes to when it certifies termination: on such KBs both
    variants reach a universal model, so the verdict is unchanged. *)

val decide_in_snapshot :
  ?max_domain:int ->
  outcome:Resilience.outcome ->
  Homo.Instance.t ->
  Kb.t ->
  Kb.Query.t ->
  verdict
(** [decide_in_snapshot ~outcome indexed kb q] decides [q] against a
    chased snapshot: [indexed] is the (indexed) final chase element and
    [outcome] the run's outcome.  Because every derivation element maps
    homomorphically into the final one, probing the snapshot alone
    yields exactly the verdict — including the [Unknown] message — that
    {!decide} on the same KB and budget computes, without re-running
    the chase.  The "no" side falls back to {!via_countermodel} when
    the snapshot is not a fixpoint.  This is the server's read path:
    one chase writer, many snapshot readers (DESIGN.md §15). *)

type answers =
  | Complete of Term.t list list
      (** the chase terminated: exactly the certain answers *)
  | Sound of Term.t list list
      (** budget exhausted: every listed tuple is certain, more may exist *)

val certain_answers :
  ?variant:[ `Restricted | `Core ] -> ?budget:Chase.Variants.budget ->
  Kb.t -> Kb.Query.t -> answers
(** Certain answers of a query with distinguished variables: all-constant
    images of the answer variables over the chase result.  Soundness before
    termination comes from every derivation element being universal for
    [K] (Proposition 1(1)).
    @raise Invalid_argument on Boolean queries (use {!decide}). *)

val certain_answers_in_snapshot :
  outcome:Resilience.outcome -> Atomset.t -> Kb.Query.t -> answers
(** Certain answers of a non-Boolean query over a chased snapshot;
    agrees with {!certain_answers} on the same KB and budget (constant
    tuples persist along the derivation's forward homomorphisms).
    @raise Invalid_argument on Boolean queries. *)

val ucq_holds_in : Ucq.t -> Atomset.t -> bool
(** Some disjunct maps homomorphically into the instance. *)

val decide_ucq :
  ?budget:Chase.Variants.budget -> ?max_domain:int -> Kb.t -> Ucq.t ->
  verdict
(** UCQ entailment: [K ⊨ ⋁ qᵢ] iff some disjunct maps into a universal
    model (UCQs are homomorphism-preserved).  The chase side checks each
    derivation element against the union; the countermodel side refutes
    {e all} disjuncts simultaneously — note a disjunct-wise [decide] would
    be unsound for the "no" direction, since each disjunct could fail in a
    different model. *)

val inconsistent :
  ?budget:Chase.Variants.budget -> ?max_domain:int ->
  constraints:Kb.Query.t list -> Kb.t -> verdict
(** Negative-constraint checking: [Entailed] here means "the KB violates
    some constraint" (a constraint body is entailed); [Not_entailed] means
    consistent (w.r.t. the given constraints). *)
