lib/rclasses/rclasses.ml: Acyclicity Dependency Fmt Guardedness List Position Rule Syntax
