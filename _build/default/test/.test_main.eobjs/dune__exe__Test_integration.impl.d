test/test_integration.ml: Alcotest Atom Atomset Chase Corechase Fmt Homo Kb List Printf Result Rule Schema Syntax Term Zoo
