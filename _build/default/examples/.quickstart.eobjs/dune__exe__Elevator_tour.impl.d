examples/elevator_tour.ml: Atomset Chase Fmt Homo Kb List Syntax Treewidth Zoo
