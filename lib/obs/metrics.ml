let enabled = ref false

type counter = { c_name : string; mutable count : int }

type gauge = { g_name : string; mutable value : int; mutable peak : int }

type histogram = {
  h_name : string;
  mutable n : int;
  mutable sum_ms : float;
  mutable min_ms : float;
  mutable max_ms : float;
}

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters_tbl name with
  | Some c -> c
  | None ->
      let c = { c_name = name; count = 0 } in
      Hashtbl.replace counters_tbl name c;
      c

let incr c = if !enabled then c.count <- c.count + 1

let add c n = if !enabled then c.count <- c.count + n

let gauge name =
  match Hashtbl.find_opt gauges_tbl name with
  | Some g -> g
  | None ->
      let g = { g_name = name; value = 0; peak = 0 } in
      Hashtbl.replace gauges_tbl name g;
      g

let set g v =
  if !enabled then begin
    g.value <- v;
    if v > g.peak then g.peak <- v
  end

let histogram name =
  match Hashtbl.find_opt histograms_tbl name with
  | Some h -> h
  | None ->
      let h =
        { h_name = name; n = 0; sum_ms = 0.; min_ms = infinity; max_ms = 0. }
      in
      Hashtbl.replace histograms_tbl name h;
      h

let observe h ms =
  if !enabled then begin
    h.n <- h.n + 1;
    h.sum_ms <- h.sum_ms +. ms;
    if ms < h.min_ms then h.min_ms <- ms;
    if ms > h.max_ms then h.max_ms <- ms
  end

let time h f =
  if !enabled then begin
    let t0 = Sys.time () in
    Fun.protect ~finally:(fun () -> observe h ((Sys.time () -. t0) *. 1000.)) f
  end
  else f ()

type value =
  | Counter of int
  | Gauge of { value : int; peak : int }
  | Histogram of { n : int; sum_ms : float; min_ms : float; max_ms : float }

let snapshot () =
  let rows = ref [] in
  Hashtbl.iter
    (fun name c -> rows := (name, Counter c.count) :: !rows)
    counters_tbl;
  Hashtbl.iter
    (fun name g -> rows := (name, Gauge { value = g.value; peak = g.peak }) :: !rows)
    gauges_tbl;
  Hashtbl.iter
    (fun name h ->
      rows :=
        ( name,
          Histogram
            {
              n = h.n;
              sum_ms = h.sum_ms;
              min_ms = (if h.n = 0 then 0. else h.min_ms);
              max_ms = h.max_ms;
            } )
        :: !rows)
    histograms_tbl;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !rows

let counters () =
  Hashtbl.fold (fun name c acc -> (name, c.count) :: acc) counters_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counter_value name =
  match Hashtbl.find_opt counters_tbl name with Some c -> c.count | None -> 0

let reset () =
  Hashtbl.iter (fun _ c -> c.count <- 0) counters_tbl;
  Hashtbl.iter
    (fun _ g ->
      g.value <- 0;
      g.peak <- 0)
    gauges_tbl;
  Hashtbl.iter
    (fun _ h ->
      h.n <- 0;
      h.sum_ms <- 0.;
      h.min_ms <- infinity;
      h.max_ms <- 0.)
    histograms_tbl

let pp_table ppf () =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Format.fprintf ppf "  %-32s %d@." name n
      | Gauge { value; peak } ->
          Format.fprintf ppf "  %-32s %d (peak %d)@." name value peak
      | Histogram { n; sum_ms; _ } ->
          Format.fprintf ppf "  %-32s n=%d sum=%.2fms@." name n sum_ms)
    (snapshot ())
