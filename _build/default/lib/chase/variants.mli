(** The chase variants (Sections 1 and 3).

    {b Restricted (standard) chase} — applies only unsatisfied triggers, no
    simplification ([σ_i] = identity): a monotonic Definition-1 derivation.

    {b Core chase} — applies unsatisfied triggers and retracts to a core;
    the cadence is configurable: retract after every rule application
    (each [σ_i] produces a core, the paper's primary reading) or after
    every saturation round (Deutsch–Nash–Remmel's parallel formulation;
    still a core chase sequence since cores recur at finite distance).

    {b Scheduling} — both engines are round-based and breadth-first: the
    unsatisfied triggers of the current instance are collected, then
    applied in order, each re-checked for satisfaction just before
    application (an earlier application may have satisfied it).  In the
    limit this yields fair derivations; on finite prefixes
    {!Derivation.fairness_debt} quantifies the remainder.

    {b Oblivious / semi-oblivious (skolem) chase} — these apply triggers
    regardless of satisfaction, so they are *not* Definition-1 derivations;
    they are provided as the classical monotone baselines and return plain
    instance sequences. *)

open Syntax

type budget = {
  max_steps : int;  (** rule applications (trigger firings) *)
  max_atoms : int;  (** stop when the current instance exceeds this size *)
}

val default_budget : budget

type outcome =
  | Terminated  (** fixpoint: no unsatisfied trigger remains *)
  | Budget_exhausted

type run = { derivation : Derivation.t; outcome : outcome; rounds : int }

val restricted : ?budget:budget -> Kb.t -> run
(** Run the restricted chase from [K]. *)

type cadence = Every_application | Every_round

val core : ?budget:budget -> ?cadence:cadence -> ?simplify_start:bool ->
  Kb.t -> run
(** Run the core chase.  [simplify_start] (default [true]) applies [σ_0] =
    retraction-to-core to the initial facts, matching [F_0 = σ_0(F)]. *)

val frugal : ?budget:budget -> Kb.t -> run
(** The frugal chase (Konstantinidis–Ambite; the paper's Section 3 notes
    that Definition 1 covers it): after each rule application, the
    simplification [σ_i] folds {e only the freshly created nulls} back
    into older terms where possible, leaving the older part untouched.
    Cheaper than a full core retraction, stronger than the restricted
    chase; sits strictly between the two in redundancy removal. *)

val stream :
  variant:[ `Restricted | `Core | `Frugal ] -> Kb.t -> Derivation.t Seq.t
(** The lazy chase: a sequence of growing derivation prefixes, one element
    per rule application — the computational reading of the paper's
    infinite sequences [(F_i)_{i∈ℕ}].  The sequence is infinite for
    non-terminating KBs (consume with [Seq.take]); it ends after the
    element whose last instance is a fixpoint.  Scheduling is the same
    round-based fair strategy as the eager engines. *)

(** The standard chase with equality-generating dependencies.  EGD steps
    unify terms across the whole instance, so they are neither monotonic
    nor Definition-1 simplifications; the engine is documented as the
    classical TGD+EGD chase (Deutsch–Nash–Remmel / Fagin et al.), kept
    separate from the paper's derivations. *)
module Egds : sig
  type outcome =
    | Terminated  (** fixpoint, all TGDs and EGDs satisfied *)
    | Budget_exhausted
    | Failed of Egd.t
        (** hard failure: the EGD forced two distinct constants equal —
            the KB has no model *)

  type run = {
    trace : Atomset.t list;  (** instance after each phase *)
    outcome : outcome;
    steps : int;  (** TGD applications + EGD unifications *)
  }

  val run :
    ?budget:budget -> ?variant:[ `Restricted | `Core ] -> Kb.t -> run
  (** Alternate EGD saturation (unifying violated equalities, preferring
      constants and [<_X]-smaller variables as representatives) with TGD
      rounds of the chosen variant (default [`Restricted]). *)

  val violations : Egd.t list -> Atomset.t -> (Egd.t * Term.t * Term.t) list
  (** The (egd, image of left, image of right) triples with distinct
      images, for inspection. *)
end

(** Monotone baselines outside Definition 1. *)
module Baseline : sig
  type trace = { instances : Atomset.t list; terminated : bool; steps : int }

  val oblivious : ?budget:budget -> Kb.t -> trace
  (** Fires every trigger exactly once (per (rule, body-homomorphism)
      pair), regardless of satisfaction. *)

  val skolem : ?budget:budget -> Kb.t -> trace
  (** Semi-oblivious: fires at most one trigger per (rule, frontier
      restriction) pair — equivalent to skolemisation. *)
end
