lib/chase/variants.ml: Atomset Derivation Egd Fmt Fun Hashtbl Homo Kb List Rule Seq Set Subst Syntax Term Trigger
