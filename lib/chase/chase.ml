(** Chase engines for existential rules (Sections 2–3 of the paper).

    Entry module of the [chase] library: re-exports {!Trigger},
    {!Derivation} and {!Variants}, and offers a uniform runner. *)

module Trigger = Trigger
module Derivation = Derivation
module Datalog = Datalog
module Variants = Variants
module Checkpoint = Checkpoint

open Syntax

type variant = Oblivious | Skolem | Restricted | Frugal | Core

let variant_name = function
  | Oblivious -> "oblivious"
  | Skolem -> "skolem"
  | Restricted -> "restricted"
  | Frugal -> "frugal"
  | Core -> "core"

type report = {
  variant : variant;
  terminated : bool;  (** [outcome = Fixpoint]; kept for existing callers *)
  outcome : Resilience.outcome;  (** why the run stopped (DESIGN.md §11) *)
  steps : int;  (** rule applications performed *)
  final : Atomset.t;  (** last instance computed *)
  sizes : int list;  (** instance sizes along the run, [F_0 …] *)
}

(** Run any variant under a budget and report uniformly.  For [Restricted]
    and [Core] the run is a Definition-1 derivation; use
    {!Variants.restricted} / {!Variants.core} directly to inspect it.
    [token] bounds the run in wall-clock time / supports cancellation;
    [resume]/[checkpoint] (derivation engines only — [Oblivious] and
    [Skolem] reject them) thread the round-boundary checkpoint states of
    {!Variants.engine_state} through. *)
let run ?budget ?token ?resume ?checkpoint ?journal variant kb =
  let of_baseline (t : Variants.Baseline.trace) =
    {
      variant;
      terminated = t.Variants.Baseline.terminated;
      outcome = t.Variants.Baseline.outcome;
      steps = t.Variants.Baseline.steps;
      final =
        List.nth t.Variants.Baseline.instances
          (List.length t.Variants.Baseline.instances - 1);
      sizes = List.map Atomset.cardinal t.Variants.Baseline.instances;
    }
  in
  let of_run (r : Variants.run) =
    let d = r.Variants.derivation in
    {
      variant;
      terminated = r.Variants.outcome = Variants.Fixpoint;
      outcome = r.Variants.outcome;
      steps = Derivation.length d - 1;
      final = (Derivation.last d).Derivation.instance;
      sizes =
        List.map
          (fun st -> Atomset.cardinal st.Derivation.instance)
          (Derivation.steps d);
    }
  in
  match variant with
  | Oblivious | Skolem ->
      if resume <> None || checkpoint <> None || journal <> None then
        invalid_arg
          "Chase.run: checkpoint/resume/journal requires a derivation \
           engine (restricted, frugal or core)";
      of_baseline
        (match variant with
        | Oblivious -> Variants.Baseline.oblivious ?budget ?token kb
        | _ -> Variants.Baseline.skolem ?budget ?token kb)
  | Restricted ->
      of_run
        (Variants.restricted ?budget ?token ?resume ?checkpoint ?journal kb)
  | Frugal ->
      of_run (Variants.frugal ?budget ?token ?resume ?checkpoint ?journal kb)
  | Core ->
      of_run (Variants.core ?budget ?token ?resume ?checkpoint ?journal kb)

(* ------------------------------------------------------------------ *)
(* Engine routing targets (DESIGN.md §13).                             *)
(* ------------------------------------------------------------------ *)

type engine_choice = Engine_datalog | Engine_restricted | Engine_core

let engine_name = function
  | Engine_datalog -> "datalog"
  | Engine_restricted -> "restricted"
  | Engine_core -> "core"

(** Run the routed engine and report uniformly.  [Engine_datalog] is
    semi-naive saturation: on a full (existential-free) program it {e is}
    the restricted chase — every trigger is satisfied exactly when its
    head atoms are present — so the report carries [variant = Restricted];
    saturation always terminates, so the budget only applies to the other
    engines.  [Engine_core] is the full core chase. *)
let run_engine ?budget ?token choice kb =
  match choice with
  | Engine_restricted -> run ?budget ?token Restricted kb
  | Engine_core -> run ?budget ?token Core kb
  | Engine_datalog ->
      if Kb.egds kb <> [] then
        invalid_arg "Chase.run_engine: datalog engine does not handle EGDs";
      let facts = Kb.facts kb in
      let final = Datalog.saturate (Kb.rules kb) facts in
      {
        variant = Restricted;
        terminated = true;
        outcome = Resilience.Fixpoint;
        steps = Atomset.cardinal final - Atomset.cardinal facts;
        final;
        sizes = [ Atomset.cardinal facts; Atomset.cardinal final ];
      }

(** Does the instance satisfy every rule (i.e. is it a model of the
    ruleset)?  An instance is a model of a rule iff every trigger for it is
    satisfied in it. *)
let is_model_of_rules rules inst =
  Trigger.unsatisfied_triggers rules inst = []

(** Is the instance a model of the KB: receives the facts homomorphically
    and satisfies every rule. *)
let is_model kb inst =
  Homo.Hom.maps_to (Kb.facts kb) inst && is_model_of_rules (Kb.rules kb) inst
