open Syntax

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let term_id t =
  match t with
  | Term.Const c -> "c_" ^ escape c
  | Term.Var v -> Printf.sprintf "v_%d" v.Term.id

let term_label t = escape (Fmt.str "%a" Term.pp_debug t)

let atomset ?(name = "instance") a =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "graph \"%s\" {\n" (escape name);
  pf "  node [shape=circle, fontsize=10];\n";
  (* unary predicates annotate the node label *)
  let unary = Hashtbl.create 16 in
  Atomset.iter
    (fun at ->
      match Atom.args at with
      | [ t ] ->
          let cur = try Hashtbl.find unary (term_id t) with Not_found -> [] in
          Hashtbl.replace unary (term_id t) (Atom.pred at :: cur)
      | _ -> ())
    a;
  List.iter
    (fun t ->
      let marks =
        match Hashtbl.find_opt unary (term_id t) with
        | Some ps -> "\\n" ^ escape (String.concat "," (List.sort compare ps))
        | None -> ""
      in
      pf "  %s [label=\"%s%s\"];\n" (term_id t) (term_label t) marks)
    (Atomset.terms a);
  let edge_counter = ref 0 in
  Atomset.iter
    (fun at ->
      match Atom.args at with
      | [] | [ _ ] -> ()
      | [ t1; t2 ] ->
          pf "  %s -- %s [label=\"%s\"%s];\n" (term_id t1) (term_id t2)
            (escape (Atom.pred at))
            (if Term.equal t1 t2 then ", dir=forward" else "")
      | args ->
          (* hyperedge node *)
          incr edge_counter;
          let hid = Printf.sprintf "h_%d" !edge_counter in
          pf "  %s [shape=box, label=\"%s\"];\n" hid (escape (Atom.pred at));
          List.iter (fun t -> pf "  %s -- %s;\n" hid (term_id t)) args)
    a;
  pf "}\n";
  Buffer.contents b

let decomposition ?(name = "decomposition") (d : Decomposition.t) =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "graph \"%s\" {\n" (escape name);
  pf "  node [shape=box, fontsize=10];\n";
  Array.iteri
    (fun i bag ->
      pf "  b%d [label=\"{%s}\"];\n" i
        (escape (String.concat ", " (List.map term_label bag))))
    d.Decomposition.bags;
  List.iter (fun (i, j) -> pf "  b%d -- b%d;\n" i j) d.Decomposition.edges;
  pf "}\n";
  Buffer.contents b
