type event =
  | Round_start of { engine : string; round : int; size : int }
  | Trigger_found of { engine : string; found : int; size : int }
  | Trigger_applied of {
      engine : string;
      step : int;
      rule : string;
      produced : int;
      size : int;
    }
  | Retract of { engine : string; step : int; removed : int; size : int }
  | Egd_merge of { engine : string; step : int; size : int }
  | Hom_backtrack of { backtracks : int; src_atoms : int; tgt_atoms : int }
  | Core_scoped_fold of { candidates : int; folded : bool; size : int }
  | Tw_decomposed of { vertices : int; width : int; exact : bool }
  | Par_fanout of { site : string; tasks : int; jobs : int }
  | Batch_task of { site : string; index : int; slot : int; ms : int }
  | Deadline_hit of { engine : string; step : int }
  | Checkpoint_written of { engine : string; step : int; path : string }
  | Session_event of { action : string; session : string; generation : int }
  | Conn_event of { action : string; conn : int }
  | Wal_rotate of { segment : string; lsn : int }
  | Snapshot_written of { path : string; lsn : int; records : int }
  | Recovery_replayed of { dir : string; records : int; torn : bool }

type sink =
  | Null
  | Console of Format.formatter
  | Jsonl of out_channel
  | Custom of (event -> unit)

let current = ref Null

let emitted = ref 0

let set_sink s = current := s

let sink () = !current

(* Events are only emitted from the main domain (slot 0).  Pool workers
   run deterministic sub-searches whose interleaving is schedule-dependent;
   suppressing their emissions keeps the JSONL stream byte-reproducible
   (DESIGN.md §10).  Sink channels are also not synchronised, so this
   doubles as the thread-safety discipline.

   [Par.Batch] tasks additionally mute emission for the task body — even
   the task that happens to run on slot 0 — because which engine events
   interleave with which depends on task-to-domain placement.  The batch
   layer instead emits one deterministic [Batch_task] summary per task
   after its barrier (DESIGN.md §14). *)
let muted_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let muted () = Domain.DLS.get muted_key

let with_muted f =
  let saved = Domain.DLS.get muted_key in
  Domain.DLS.set muted_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set muted_key saved) f

let enabled () =
  (match !current with Null -> false | _ -> true)
  && Metrics.slot () = 0
  && not (muted ())

let events_emitted () = !emitted

let reset_emitted () = emitted := 0

let pp_event ppf = function
  | Round_start { engine; round; size } ->
      Format.fprintf ppf "[%s] round %d starts (%d atoms)" engine round size
  | Trigger_found { engine; found; size } ->
      Format.fprintf ppf "[%s] %d active trigger(s) on %d atoms" engine found
        size
  | Trigger_applied { engine; step; rule; produced; size } ->
      Format.fprintf ppf "[%s] step %d: %s fired, +%d atoms (%d total)" engine
        step
        (if rule = "" then "<rule>" else rule)
        produced size
  | Retract { engine; step; removed; size } ->
      Format.fprintf ppf "[%s] step %d: retracted %d atom(s) (%d left)" engine
        step removed size
  | Egd_merge { engine; step; size } ->
      Format.fprintf ppf "[%s] step %d: egd merge (%d atoms)" engine step size
  | Hom_backtrack { backtracks; src_atoms; tgt_atoms } ->
      Format.fprintf ppf "[hom] %d backtrack(s) mapping %d atoms into %d"
        backtracks src_atoms tgt_atoms
  | Core_scoped_fold { candidates; folded; size } ->
      Format.fprintf ppf "[core] scoped fold: %d candidate(s) on %d atoms (%s)"
        candidates size
        (if folded then "folded" else "certified core")
  | Tw_decomposed { vertices; width; exact } ->
      Format.fprintf ppf "[tw] decomposed %d vertices: width %d (%s)" vertices
        width
        (if exact then "exact" else "bound")
  | Par_fanout { site; tasks; jobs } ->
      Format.fprintf ppf "[par] %s: %d task(s) over %d domain(s)" site tasks
        jobs
  | Batch_task { site; index; slot; ms } ->
      Format.fprintf ppf "[par] %s: task %d done on slot %d (%d ms)" site index
        slot ms
  | Deadline_hit { engine; step } ->
      Format.fprintf ppf "[%s] step %d: deadline hit, stopping" engine step
  | Checkpoint_written { engine; step; path } ->
      Format.fprintf ppf "[%s] step %d: checkpoint written to %s" engine step
        path
  | Session_event { action; session; generation } ->
      Format.fprintf ppf "[serve] session %s: %s (generation %d)" session
        action generation
  | Conn_event { action; conn } ->
      Format.fprintf ppf "[serve] conn %d: %s" conn action
  | Wal_rotate { segment; lsn } ->
      Format.fprintf ppf "[wal] rotated to %s (next lsn %d)" segment lsn
  | Snapshot_written { path; lsn; records } ->
      Format.fprintf ppf "[wal] snapshot %s covers lsn %d (%d record(s))" path
        lsn records
  | Recovery_replayed { dir; records; torn } ->
      Format.fprintf ppf "[wal] recovered %s: %d record(s)%s" dir records
        (if torn then ", torn tail truncated" else "")

(* ------------------------------------------------------------------ *)
(* JSON encoding: flat objects with string / int / bool fields only.   *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ev =
  let s k v = Printf.sprintf "%S:\"%s\"" k (escape v) in
  let i k v = Printf.sprintf "%S:%d" k v in
  let b k v = Printf.sprintf "%S:%b" k v in
  let fields =
    match ev with
    | Round_start { engine; round; size } ->
        [ s "ev" "round_start"; s "engine" engine; i "round" round; i "size" size ]
    | Trigger_found { engine; found; size } ->
        [ s "ev" "trigger_found"; s "engine" engine; i "found" found; i "size" size ]
    | Trigger_applied { engine; step; rule; produced; size } ->
        [
          s "ev" "trigger_applied"; s "engine" engine; i "step" step;
          s "rule" rule; i "produced" produced; i "size" size;
        ]
    | Retract { engine; step; removed; size } ->
        [
          s "ev" "retract"; s "engine" engine; i "step" step;
          i "removed" removed; i "size" size;
        ]
    | Egd_merge { engine; step; size } ->
        [ s "ev" "egd_merge"; s "engine" engine; i "step" step; i "size" size ]
    | Hom_backtrack { backtracks; src_atoms; tgt_atoms } ->
        [
          s "ev" "hom_backtrack"; i "backtracks" backtracks;
          i "src_atoms" src_atoms; i "tgt_atoms" tgt_atoms;
        ]
    | Core_scoped_fold { candidates; folded; size } ->
        [
          s "ev" "core_scoped_fold"; i "candidates" candidates;
          b "folded" folded; i "size" size;
        ]
    | Tw_decomposed { vertices; width; exact } ->
        [
          s "ev" "tw_decomposed"; i "vertices" vertices; i "width" width;
          b "exact" exact;
        ]
    | Par_fanout { site; tasks; jobs } ->
        [ s "ev" "par_fanout"; s "site" site; i "tasks" tasks; i "jobs" jobs ]
    | Batch_task { site; index; slot; ms } ->
        [
          s "ev" "batch_task"; s "site" site; i "index" index; i "slot" slot;
          i "ms" ms;
        ]
    | Deadline_hit { engine; step } ->
        [ s "ev" "deadline_hit"; s "engine" engine; i "step" step ]
    | Checkpoint_written { engine; step; path } ->
        [
          s "ev" "checkpoint_written"; s "engine" engine; i "step" step;
          s "path" path;
        ]
    | Session_event { action; session; generation } ->
        [
          s "ev" "session_event"; s "action" action; s "session" session;
          i "generation" generation;
        ]
    | Conn_event { action; conn } ->
        [ s "ev" "conn_event"; s "action" action; i "conn" conn ]
    | Wal_rotate { segment; lsn } ->
        [ s "ev" "wal_rotate"; s "segment" segment; i "lsn" lsn ]
    | Snapshot_written { path; lsn; records } ->
        [
          s "ev" "snapshot_written"; s "path" path; i "lsn" lsn;
          i "records" records;
        ]
    | Recovery_replayed { dir; records; torn } ->
        [
          s "ev" "recovery_replayed"; s "dir" dir; i "records" records;
          b "torn" torn;
        ]
  in
  "{" ^ String.concat "," fields ^ "}"

(* Minimal parser for the flat objects [to_json] produces. *)

type jvalue = Jstr of string | Jint of int | Jbool of bool

exception Parse_error

let parse_flat_object line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos >= n then raise Parse_error else line.[!pos] in
  let advance () = incr pos in
  let expect c = if peek () <> c then raise Parse_error else advance () in
  let skip_ws () =
    while !pos < n && (peek () = ' ' || peek () = '\t') do advance () done
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' -> (
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 >= n then raise Parse_error;
              let hex = String.sub line (!pos + 1) 4 in
              let code =
                try int_of_string ("0x" ^ hex) with _ -> raise Parse_error
              in
              pos := !pos + 4;
              if code < 0x100 then Buffer.add_char buf (Char.chr code)
              else raise Parse_error
          | _ -> raise Parse_error);
          advance ();
          go ())
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> Jstr (parse_string ())
    | 't' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
          pos := !pos + 4;
          Jbool true
        end
        else raise Parse_error
    | 'f' ->
        if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
          pos := !pos + 5;
          Jbool false
        end
        else raise Parse_error
    | '-' | '0' .. '9' ->
        let start = !pos in
        if peek () = '-' then advance ();
        while !pos < n && match line.[!pos] with '0' .. '9' -> true | _ -> false
        do advance () done;
        if !pos = start then raise Parse_error;
        Jint (int_of_string (String.sub line start (!pos - start)))
    | _ -> raise Parse_error
  in
  skip_ws ();
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = '}' then advance ()
  else begin
    let rec members () =
      skip_ws ();
      let k = parse_string () in
      skip_ws ();
      expect ':';
      let v = parse_value () in
      fields := (k, v) :: !fields;
      skip_ws ();
      match peek () with
      | ',' -> advance (); members ()
      | '}' -> advance ()
      | _ -> raise Parse_error
    in
    members ()
  end;
  skip_ws ();
  if !pos <> n then raise Parse_error;
  List.rev !fields

let of_json_line line =
  match parse_flat_object (String.trim line) with
  | exception Parse_error -> None
  | exception _ -> None
  | fields -> (
      let str k =
        match List.assoc_opt k fields with
        | Some (Jstr s) -> s
        | _ -> raise Parse_error
      in
      let int k =
        match List.assoc_opt k fields with
        | Some (Jint i) -> i
        | _ -> raise Parse_error
      in
      let bool k =
        match List.assoc_opt k fields with
        | Some (Jbool b) -> b
        | _ -> raise Parse_error
      in
      match
        match str "ev" with
        | "round_start" ->
            Round_start
              { engine = str "engine"; round = int "round"; size = int "size" }
        | "trigger_found" ->
            Trigger_found
              { engine = str "engine"; found = int "found"; size = int "size" }
        | "trigger_applied" ->
            Trigger_applied
              {
                engine = str "engine";
                step = int "step";
                rule = str "rule";
                produced = int "produced";
                size = int "size";
              }
        | "retract" ->
            Retract
              {
                engine = str "engine";
                step = int "step";
                removed = int "removed";
                size = int "size";
              }
        | "egd_merge" ->
            Egd_merge
              { engine = str "engine"; step = int "step"; size = int "size" }
        | "hom_backtrack" ->
            Hom_backtrack
              {
                backtracks = int "backtracks";
                src_atoms = int "src_atoms";
                tgt_atoms = int "tgt_atoms";
              }
        | "core_scoped_fold" ->
            Core_scoped_fold
              {
                candidates = int "candidates";
                folded = bool "folded";
                size = int "size";
              }
        | "tw_decomposed" ->
            Tw_decomposed
              {
                vertices = int "vertices";
                width = int "width";
                exact = bool "exact";
              }
        | "par_fanout" ->
            Par_fanout
              { site = str "site"; tasks = int "tasks"; jobs = int "jobs" }
        | "batch_task" ->
            Batch_task
              {
                site = str "site";
                index = int "index";
                slot = int "slot";
                ms = int "ms";
              }
        | "deadline_hit" ->
            Deadline_hit { engine = str "engine"; step = int "step" }
        | "checkpoint_written" ->
            Checkpoint_written
              { engine = str "engine"; step = int "step"; path = str "path" }
        | "session_event" ->
            Session_event
              {
                action = str "action";
                session = str "session";
                generation = int "generation";
              }
        | "conn_event" -> Conn_event { action = str "action"; conn = int "conn" }
        | "wal_rotate" ->
            Wal_rotate { segment = str "segment"; lsn = int "lsn" }
        | "snapshot_written" ->
            Snapshot_written
              { path = str "path"; lsn = int "lsn"; records = int "records" }
        | "recovery_replayed" ->
            Recovery_replayed
              { dir = str "dir"; records = int "records"; torn = bool "torn" }
        | _ -> raise Parse_error
      with
      | ev -> Some ev
      | exception Parse_error -> None)

(* ------------------------------------------------------------------ *)

let emit ev =
  if Metrics.slot () <> 0 || muted () then ()
  else
  match !current with
  | Null -> ()
  | Console ppf ->
      incr emitted;
      Format.fprintf ppf "%a@." pp_event ev
  | Jsonl oc ->
      incr emitted;
      output_string oc (to_json ev);
      output_char oc '\n'
  | Custom f ->
      incr emitted;
      f ev

let with_sink s f =
  let saved = !current in
  current := s;
  Fun.protect ~finally:(fun () -> current := saved) f

let with_jsonl_file path f =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () ->
      flush oc;
      close_out_noerr oc)
    (fun () -> with_sink (Jsonl oc) f)

(* CI smoke hook: run any corechase process with CORECHASE_TRACE=<file> to
   append a JSONL trace of everything it does (see .github/workflows). *)
let () =
  match Sys.getenv_opt "CORECHASE_TRACE" with
  | Some path when path <> "" -> (
      match open_out_gen [ Open_append; Open_creat ] 0o644 path with
      | oc ->
          at_exit (fun () ->
              try
                flush oc;
                close_out_noerr oc
              with _ -> ());
          current := Jsonl oc
      | exception _ -> ())
  | _ -> ()
