Smoke-test the command-line interface on a bundled knowledge base.

  $ cat > family.dlgp <<'KB'
  > parent(alice, bob).
  > parent(bob, carol).
  > [anc-base] ancestor(X, Y) :- parent(X, Y).
  > [anc-rec]  ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
  > ?(X) :- ancestor(alice, X).
  > ! :- parent(X, X).
  > KB

  $ corechase chase family.dlgp --variant core
  variant:    core
  outcome:    terminated (fixpoint reached)
  steps:      3
  final size: 5 atoms

  $ corechase entail family.dlgp
  constraints: consistent
  ?(X) :- ancestor(alice, X)  ⟶  2 certain answer(s): (bob) (carol)

  $ corechase classify family.dlgp | head -3
    datalog                    yes
    linear                     no
    guarded                    no

  $ corechase zoo | head -3
  bts-not-fes
  fes-not-bts
  core-terminating

A non-positive --jobs is refused up front:

  $ corechase chase family.dlgp --jobs 0
  corechase: option '--jobs': jobs must be >= 1
  Usage: corechase chase [OPTION]… FILE
  Try 'corechase chase --help' or 'corechase --help' for more information.
  [124]
