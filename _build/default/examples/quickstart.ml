(* Quickstart: parse a DLGP knowledge base, run the chase variants, answer
   conjunctive queries.

   Run with:  dune exec examples/quickstart.exe *)

open Syntax

let source =
  {|
  % A toy genealogy ontology with value invention.
  @facts
  parent(alice, bob).
  parent(bob, carol).

  @rules
  [anc-base]  ancestor(X, Y) :- parent(X, Y).
  [anc-rec]   ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
  [everyone]  parent(Z, X), person(Z) :- person(X).
  [people]    person(X), person(Y) :- parent(X, Y).

  @queries
  ? :- ancestor(alice, carol).
  ? :- parent(U, alice), person(U).
  ? :- ancestor(carol, alice).
|}

let () =
  let doc =
    match Dlgp.parse_string source with
    | Ok d -> d
    | Error e -> Fmt.failwith "%a" Dlgp.pp_error e
  in
  let kb = Dlgp.kb_of_document doc in
  Fmt.pr "Parsed %d facts, %d rules, %d queries.@."
    (Atomset.cardinal (Kb.facts kb))
    (List.length (Kb.rules kb))
    (List.length doc.Dlgp.queries);

  (* The [everyone] rule invents ancestors forever: the chase cannot
     terminate, so we work with budgets. *)
  let budget = { Chase.Variants.max_steps = 60; max_atoms = 2_000 } in
  List.iter
    (fun variant ->
      let report = Chase.run ~budget variant kb in
      Fmt.pr "%-10s %-12s %3d steps, final instance: %d atoms@."
        (Chase.variant_name variant)
        (if report.Chase.terminated then "terminated" else "budget")
        report.Chase.steps
        (Atomset.cardinal report.Chase.final))
    [ Chase.Oblivious; Chase.Skolem; Chase.Restricted; Chase.Frugal; Chase.Core ];

  (* Entailment, Theorem-1 style: the chase is the "yes" semi-procedure,
     the bounded model finder the "no" semi-procedure. *)
  List.iter
    (fun q ->
      let verdict = Corechase.Entailment.decide ~budget ~max_domain:3 kb q in
      Fmt.pr "%a  ⟶  %a@." Kb.Query.pp q Corechase.Entailment.pp_verdict
        verdict)
    doc.Dlgp.queries;

  (* Structural analysis of the ruleset. *)
  Fmt.pr "@.Syntactic class analysis:@.%a@." Rclasses.pp_report
    (Rclasses.analyze (Kb.rules kb))
