lib/core/probes.ml: Atom Atomset Chase Kb List Measures Rule Syntax Term
