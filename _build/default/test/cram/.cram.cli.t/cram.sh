  $ cat > family.dlgp <<'KB'
  > parent(alice, bob).
  > parent(bob, carol).
  > [anc-base] ancestor(X, Y) :- parent(X, Y).
  > [anc-rec]  ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
  > ?(X) :- ancestor(alice, X).
  > ! :- parent(X, X).
  > KB
  $ corechase chase family.dlgp --variant core
  $ corechase entail family.dlgp
  $ corechase classify family.dlgp | head -3
  $ corechase zoo | head -3
