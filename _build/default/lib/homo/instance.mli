(** Indexed instances: an {!Syntax.Atomset.t} wrapped with access structures
    for conjunctive matching.

    Two indexes are maintained:
    - by predicate: all atoms with a given predicate symbol;
    - by (predicate, position, term): all atoms with a given term at a given
      argument position.

    Instances are immutable; chase engines rebuild them per round (the
    rebuild is linear and dwarfed by the matching work it accelerates —
    see the [abl:index] ablation bench). *)

open Syntax

type t

val of_atomset : Atomset.t -> t

val atomset : t -> Atomset.t

val cardinal : t -> int

val atoms_with_pred : t -> string -> Atom.t list
(** All atoms with the given predicate (empty list if none). *)

val atoms_with_pred_pos_term : t -> string -> int -> Term.t -> Atom.t list
(** All atoms with the given term at the given 0-based position. *)

val candidates : t -> Atom.t -> Subst.t -> Atom.t list
(** [candidates ins pattern σ]: a superset of the atoms of [ins] that the
    [pattern] atom can map to under an extension of [σ].  Uses the most
    selective index available given the pattern's constants and
    [σ]-bound variables; callers still verify full consistency. *)

val candidate_count : t -> Atom.t -> Subst.t -> int
(** Length of {!candidates} without materialising it beyond the index. *)

val pp : t Fmt.t

val use_indexes : bool ref
(** Ablation switch ([abl:index]): when [false], {!candidates} ignores the
    indexes and returns the whole atom list (the matcher still rejects
    non-matching atoms, so results are unchanged — only slower).  Default
    [true]. *)
