(* Tests for lib/treewidth: graphs, decompositions, elimination orders,
   exact treewidth, lower bounds, grid detection (Definition 5 / Fact 2). *)

open Syntax
module TW = Treewidth

let atom p args = Atom.make p args
let aset = Atomset.of_list

(* graph builders *)
let path_graph n = TW.Graph.of_edges n (List.init (n - 1) (fun i -> (i, i + 1)))

let cycle_graph n =
  TW.Graph.of_edges n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let complete_graph n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  TW.Graph.of_edges n !edges

let grid_graph n =
  (* n×n grid, vertex (i,j) = i*n+j *)
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i + 1 < n then edges := ((i * n) + j, ((i + 1) * n) + j) :: !edges;
      if j + 1 < n then edges := ((i * n) + j, (i * n) + j + 1) :: !edges
    done
  done;
  TW.Graph.of_edges (n * n) !edges

(* atomset builders *)
let path_atomset n =
  let v = Array.init (n + 1) (fun i -> Term.fresh_var ~hint:(Printf.sprintf "P%d" i) ()) in
  aset (List.init n (fun i -> atom "e" [ v.(i); v.(i + 1) ]))

let grid_atomset n =
  let v =
    Array.init n (fun i ->
        Array.init n (fun j ->
            Term.fresh_var ~hint:(Printf.sprintf "G%d_%d" i j) ()))
  in
  let atoms = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i + 1 < n then atoms := atom "h" [ v.(i).(j); v.(i + 1).(j) ] :: !atoms;
      if j + 1 < n then atoms := atom "v" [ v.(i).(j); v.(i).(j + 1) ] :: !atoms
    done
  done;
  (v, aset !atoms)

(* ------------------------------------------------------------------ *)
(* Graph tests *)

let test_graph_basics () =
  let g = TW.Graph.create 3 in
  TW.Graph.add_edge g 0 1;
  TW.Graph.add_edge g 1 0;
  (* idempotent *)
  TW.Graph.add_edge g 1 1;
  (* self-loop ignored *)
  Alcotest.(check int) "edge count" 1 (TW.Graph.edge_count g);
  Alcotest.(check bool) "has edge" true (TW.Graph.has_edge g 0 1);
  Alcotest.(check bool) "symmetric" true (TW.Graph.has_edge g 1 0);
  Alcotest.(check (list int)) "neighbors" [ 1 ] (TW.Graph.neighbors g 0);
  Alcotest.(check int) "degree isolated" 0 (TW.Graph.degree g 2)

let test_graph_out_of_range () =
  let g = TW.Graph.create 2 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph: vertex out of range") (fun () ->
      TW.Graph.add_edge g 0 5)

let test_graph_components () =
  let g = TW.Graph.of_edges 5 [ (0, 1); (1, 2); (3, 4) ] in
  Alcotest.(check int) "two components" 2
    (List.length (TW.Graph.connected_components g))

let test_graph_is_clique () =
  let g = complete_graph 4 in
  Alcotest.(check bool) "K4 clique" true (TW.Graph.is_clique g [ 0; 1; 2; 3 ]);
  let p = path_graph 4 in
  Alcotest.(check bool) "path not clique" false (TW.Graph.is_clique p [ 0; 1; 2 ])

(* ------------------------------------------------------------------ *)
(* Primal graph tests *)

let test_primal_of_atomset () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" ()
  and z = Term.fresh_var ~hint:"Z" () in
  let p = TW.Primal.of_atomset (aset [ atom "t" [ x; y; z ] ]) in
  Alcotest.(check int) "3 vertices" 3 (TW.Graph.vertex_count p.TW.Primal.graph);
  Alcotest.(check int) "triangle" 3 (TW.Graph.edge_count p.TW.Primal.graph)

let test_primal_term_roundtrip () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" () in
  let p = TW.Primal.of_atomset (aset [ atom "e" [ x; y ] ]) in
  (match TW.Primal.vertex_of_term p x with
  | Some v ->
      Alcotest.(check bool) "roundtrip" true
        (Term.equal (TW.Primal.term_of_vertex p v) x)
  | None -> Alcotest.fail "x must be a vertex");
  Alcotest.(check bool) "missing term" true
    (TW.Primal.vertex_of_term p (Term.const "zz") = None)

(* ------------------------------------------------------------------ *)
(* Decomposition tests *)

let test_decomposition_trivial_valid () =
  let a = path_atomset 4 in
  let d = TW.Decomposition.trivial a in
  Alcotest.(check bool) "trivial is valid" true (TW.Decomposition.is_valid a d);
  Alcotest.(check int) "width = n_terms - 1" 4 (TW.Decomposition.width d)

let test_decomposition_width_empty () =
  let d = { TW.Decomposition.bags = [||]; edges = [] } in
  Alcotest.(check int) "empty width" (-1) (TW.Decomposition.width d)

let test_decomposition_invalid_cycle () =
  let a = path_atomset 2 in
  let ts = Atomset.terms a in
  let d =
    { TW.Decomposition.bags = [| ts; ts; ts |]; edges = [ (0, 1); (1, 2); (2, 0) ] }
  in
  Alcotest.(check bool) "cyclic edges rejected" false (TW.Decomposition.is_tree d)

let test_decomposition_connectivity_violation () =
  (* term x in bags 0 and 2, not in bag 1, path 0-1-2: violates (ii). *)
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" ()
  and z = Term.fresh_var ~hint:"Z" () in
  let d =
    {
      TW.Decomposition.bags = [| [ x; y ]; [ y; z ]; [ x; z ] |];
      edges = [ (0, 1); (1, 2) ];
    }
  in
  Alcotest.(check bool) "disconnected occurrence" false (TW.Decomposition.connected d)

let test_decomposition_cover_violation () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" () in
  let a = aset [ atom "e" [ x; y ] ] in
  let d = { TW.Decomposition.bags = [| [ x ]; [ y ] |]; edges = [ (0, 1) ] } in
  Alcotest.(check bool) "atom not covered" false (TW.Decomposition.covers a d)

(* ------------------------------------------------------------------ *)
(* Elimination tests *)

let test_width_of_order_path () =
  let g = path_graph 5 in
  let order = [| 0; 1; 2; 3; 4 |] in
  Alcotest.(check int) "path order width 1" 1
    (TW.Elimination.width_of_order g order)

let test_width_of_order_bad_order_on_path () =
  (* eliminating the middle of a 3-path first costs 2 *)
  let g = path_graph 3 in
  Alcotest.(check int) "bad order" 2
    (TW.Elimination.width_of_order g [| 1; 0; 2 |])

let test_min_degree_on_cycle () =
  let g = cycle_graph 6 in
  let order = TW.Elimination.min_degree_order g in
  Alcotest.(check int) "cycle width 2" 2 (TW.Elimination.width_of_order g order)

let test_min_fill_on_clique () =
  let g = complete_graph 4 in
  let order = TW.Elimination.min_fill_order g in
  Alcotest.(check int) "K4 width 3" 3 (TW.Elimination.width_of_order g order)

let test_decomposition_of_order_valid () =
  let a = snd (grid_atomset 3) in
  let p = TW.Primal.of_atomset a in
  let order = TW.Elimination.min_fill_order p.TW.Primal.graph in
  let d = TW.Elimination.decomposition_of_order p order in
  Alcotest.(check bool) "induced decomposition valid" true
    (TW.Decomposition.is_valid a d);
  Alcotest.(check int) "width matches simulation"
    (TW.Elimination.width_of_order p.TW.Primal.graph order)
    (TW.Decomposition.width d)

(* ------------------------------------------------------------------ *)
(* Exact treewidth tests *)

let test_exact_known_values () =
  Alcotest.(check int) "empty" (-1) (TW.Exact.treewidth (TW.Graph.create 0));
  Alcotest.(check int) "isolated vertices" 0
    (TW.Exact.treewidth (TW.Graph.create 4));
  Alcotest.(check int) "path" 1 (TW.Exact.treewidth (path_graph 6));
  Alcotest.(check int) "cycle" 2 (TW.Exact.treewidth (cycle_graph 7));
  Alcotest.(check int) "K5" 4 (TW.Exact.treewidth (complete_graph 5));
  Alcotest.(check int) "3x3 grid" 3 (TW.Exact.treewidth (grid_graph 3));
  Alcotest.(check int) "4x4 grid" 4 (TW.Exact.treewidth (grid_graph 4))

let test_exact_tree_is_1 () =
  (* a star K1,5 is a tree: tw 1 *)
  let g = TW.Graph.of_edges 6 [ (0, 1); (0, 2); (0, 3); (0, 4); (0, 5) ] in
  Alcotest.(check int) "star" 1 (TW.Exact.treewidth g)

let test_exact_disconnected () =
  (* triangle + isolated edge: tw 2 *)
  let g = TW.Graph.of_edges 5 [ (0, 1); (1, 2); (2, 0); (3, 4) ] in
  Alcotest.(check int) "max over components" 2 (TW.Exact.treewidth g)

let test_exact_too_large_raises () =
  Alcotest.check_raises "63 vertices"
    (Invalid_argument "Exact.treewidth: more than 62 vertices") (fun () ->
      ignore (TW.Exact.treewidth (TW.Graph.create 63)))

(* ------------------------------------------------------------------ *)
(* Lower bound tests *)

let test_mmd_bounds () =
  Alcotest.(check int) "path mmd" 1 (TW.Lowerbound.mmd (path_graph 5));
  Alcotest.(check int) "cycle mmd" 2 (TW.Lowerbound.mmd (cycle_graph 5));
  Alcotest.(check int) "K4 mmd" 3 (TW.Lowerbound.mmd (complete_graph 4))

let test_clique_bound () =
  Alcotest.(check int) "K4 clique bound" 3 (TW.Lowerbound.clique (complete_graph 4));
  Alcotest.(check bool) "grid clique ≤ mmd sound" true
    (TW.Lowerbound.best (grid_graph 3) <= TW.Exact.treewidth (grid_graph 3))

(* ------------------------------------------------------------------ *)
(* Facade tests *)

let test_facade_path_atomset () =
  let a = path_atomset 6 in
  Alcotest.(check (option int)) "exact" (Some 1) (TW.exact a);
  Alcotest.(check bool) "at_most 1" true (TW.at_most a 1);
  Alcotest.(check bool) "not at_most 0" false (TW.at_most a 0)

let test_facade_bounds_sandwich () =
  let _, a = grid_atomset 3 in
  let lb = TW.lower_bound a in
  let ub = TW.upper_bound a in
  (match TW.exact a with
  | Some w ->
      Alcotest.(check bool) "lb ≤ exact" true (lb <= w);
      Alcotest.(check bool) "exact ≤ ub" true (w <= ub);
      Alcotest.(check int) "grid-3 tw" 3 w
  | None -> Alcotest.fail "small instance must be exact");
  let d = TW.decomposition a in
  Alcotest.(check bool) "decomposition valid" true (TW.Decomposition.is_valid a d)

let test_facade_heuristics_disagree_but_sound () =
  let _, a = grid_atomset 4 in
  let ub_fill = TW.upper_bound ~heuristic:TW.Min_fill a in
  let ub_deg = TW.upper_bound ~heuristic:TW.Min_degree a in
  let w = Option.get (TW.exact a) in
  Alcotest.(check bool) "min-fill sound" true (w <= ub_fill);
  Alcotest.(check bool) "min-degree sound" true (w <= ub_deg)

let test_ternary_atom_makes_clique () =
  (* t(x,y,z) alone has treewidth 2 (a triangle). *)
  let x = Term.fresh_var () and y = Term.fresh_var () and z = Term.fresh_var () in
  let a = aset [ atom "t" [ x; y; z ] ] in
  Alcotest.(check (option int)) "triangle" (Some 2) (TW.exact a)

(* ------------------------------------------------------------------ *)
(* Grid detection tests (Definition 5 / Fact 2) *)

let test_grid_check_explicit () =
  let v, a = grid_atomset 3 in
  Alcotest.(check bool) "explicit naming is a grid" true
    (TW.Grid.check (fun i j -> v.(i - 1).(j - 1)) 3 a);
  (* swapping two cells breaks it *)
  let bad i j = if (i, j) = (1, 1) then v.(2).(2) else v.(i - 1).(j - 1) in
  Alcotest.(check bool) "distinctness enforced" false (TW.Grid.check bad 3 a)

let test_grid_find_in_grid () =
  let _, a = grid_atomset 3 in
  Alcotest.(check bool) "finds 2x2" true (TW.Grid.contains ~n:2 a);
  Alcotest.(check bool) "finds 3x3" true (TW.Grid.contains ~n:3 a)

let test_grid_not_in_path () =
  let a = path_atomset 8 in
  Alcotest.(check bool) "no 2x2 in a path" false (TW.Grid.contains ~n:2 a)

let test_grid_lower_bound () =
  let _, a = grid_atomset 3 in
  Alcotest.(check int) "lower bound 3" 3 (TW.Grid.lower_bound_via_grids ~max_n:3 a);
  let p = path_atomset 4 in
  Alcotest.(check int) "path bound 1" 1 (TW.Grid.lower_bound_via_grids p)

let test_grid_found_witness_is_grid () =
  let _, a = grid_atomset 3 in
  match TW.Grid.find ~n:2 a with
  | None -> Alcotest.fail "2x2 grid must be found"
  | Some cells ->
      Alcotest.(check bool) "witness validates" true
        (TW.Grid.check (fun i j -> cells.(i - 1).(j - 1)) 2 a)

(* ------------------------------------------------------------------ *)
(* Pathwidth tests *)

let test_pathwidth_known_values () =
  Alcotest.(check int) "empty" (-1) (TW.Pathwidth.exact (TW.Graph.create 0));
  Alcotest.(check int) "isolated" 0 (TW.Pathwidth.exact (TW.Graph.create 3));
  Alcotest.(check int) "path" 1 (TW.Pathwidth.exact (path_graph 6));
  Alcotest.(check int) "cycle" 2 (TW.Pathwidth.exact (cycle_graph 6));
  Alcotest.(check int) "K4" 3 (TW.Pathwidth.exact (complete_graph 4));
  Alcotest.(check int) "star K1,4" 1
    (TW.Pathwidth.exact (TW.Graph.of_edges 5 [ (0, 1); (0, 2); (0, 3); (0, 4) ]));
  Alcotest.(check int) "3x3 grid" 3 (TW.Pathwidth.exact (grid_graph 3))

let test_pathwidth_exceeds_treewidth_on_trees () =
  (* complete binary tree of depth 3: treewidth 1, pathwidth 2 *)
  let g =
    TW.Graph.of_edges 15
      (List.concat (List.init 7 (fun i -> [ (i, (2 * i) + 1); (i, (2 * i) + 2) ])))
  in
  Alcotest.(check int) "tw" 1 (TW.Exact.treewidth g);
  Alcotest.(check int) "pw" 2 (TW.Pathwidth.exact g)

let test_pathwidth_bounds () =
  let g = grid_graph 3 in
  Alcotest.(check bool) "greedy ≥ exact" true
    (TW.Pathwidth.upper_bound g >= TW.Pathwidth.exact g);
  Alcotest.(check bool) "pw ≥ tw" true
    (TW.Pathwidth.exact g >= TW.Exact.treewidth g)

let test_pathwidth_of_atomset () =
  let a = path_atomset 5 in
  let w, exact = TW.Pathwidth.of_atomset a in
  Alcotest.(check bool) "exact on small" true exact;
  Alcotest.(check int) "path atomset pw 1" 1 w

let test_pathwidth_too_large () =
  match TW.Pathwidth.exact (TW.Graph.create 26) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "26 vertices must be rejected"

let prop_pathwidth_at_least_treewidth =
  QCheck.Test.make ~name:"pw ≥ tw on random graphs" ~count:80
    QCheck.(
      make
        ~print:(fun g -> Fmt.str "%a" TW.Graph.pp g)
        Gen.(
          let* n = int_range 1 8 in
          let* edges =
            list_size (int_bound 12) (pair (int_bound (n - 1)) (int_bound (n - 1)))
          in
          return (TW.Graph.of_edges n (List.filter (fun (u, v) -> u <> v) edges))))
    (fun g -> TW.Pathwidth.exact g >= TW.Exact.treewidth g)

(* ------------------------------------------------------------------ *)
(* Hypergraph / generalized hypertree width tests *)

let test_hypergraph_basics () =
  let x = Term.fresh_var () and y = Term.fresh_var () and z = Term.fresh_var () in
  let a = aset [ atom "t" [ x; y; z ]; atom "e" [ x; y ]; atom "e" [ x; y ] ] in
  let h = TW.Hypergraph.of_atomset a in
  Alcotest.(check int) "3 vertices" 3 (TW.Hypergraph.vertex_count h);
  Alcotest.(check int) "2 distinct edges" 2 (TW.Hypergraph.edge_count h)

let test_cover_number () =
  let x = Term.fresh_var () and y = Term.fresh_var () and z = Term.fresh_var ()
  and w = Term.fresh_var () in
  let a = aset [ atom "e" [ x; y ]; atom "e" [ y; z ]; atom "e" [ z; w ] ] in
  let h = TW.Hypergraph.of_atomset a in
  Alcotest.(check int) "single edge" 1 (TW.Hypergraph.cover_number h [ x; y ]);
  Alcotest.(check int) "two edges for {x,z}" 2 (TW.Hypergraph.cover_number h [ x; z ]);
  Alcotest.(check int) "empty set" 0 (TW.Hypergraph.cover_number h []);
  match TW.Hypergraph.cover_number h [ Term.const "nope" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "uncoverable term must raise"

let test_ghw_acyclic_is_1 () =
  (* a single ternary atom plus unary decorations: ghw 1 *)
  let x = Term.fresh_var () and y = Term.fresh_var () and z = Term.fresh_var () in
  let a = aset [ atom "t" [ x; y; z ]; atom "u" [ x ]; atom "u" [ z ] ] in
  Alcotest.(check int) "ghw 1" 1 (TW.Hypergraph.ghw_upper a);
  Alcotest.(check bool) "acyclicity evidence" true
    (TW.Hypergraph.is_acyclic_evidence a);
  let p = path_atomset 5 in
  Alcotest.(check int) "path ghw 1" 1 (TW.Hypergraph.ghw_upper p)

let test_ghw_grid_small () =
  let _, g = grid_atomset 3 in
  let ghw = TW.Hypergraph.ghw_upper g in
  (* tw(grid3)=3, binary edges: each bag of size k needs ≥ ⌈k/2⌉ edges *)
  Alcotest.(check bool) "grid ghw ≥ 2" true (ghw >= 2);
  Alcotest.(check bool) "grid ghw sound vs tw" true
    (ghw <= TW.Exact.treewidth (grid_graph 3) + 1)

let test_ghw_vs_tw_relation () =
  (* ghw ≤ tw+1 whenever every vertex lies in some edge: binary-edge
     atomsets make each bag coverable pairwise *)
  let _, g = grid_atomset 2 in
  Alcotest.(check bool) "ghw ≤ tw+1 on 2x2 grid" true
    (TW.Hypergraph.ghw_upper g <= TW.Exact.treewidth (grid_graph 2) + 1)

(* ------------------------------------------------------------------ *)
(* DOT export tests *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub hay i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let test_dot_atomset () =
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" () in
  let a =
    aset [ atom "e" [ x; y ]; atom "mark" [ x ]; atom "t3" [ x; y; y ] ]
  in
  let dot = TW.Dot.atomset ~name:"g" a in
  Alcotest.(check bool) "graph header" true (contains dot "graph \"g\"");
  Alcotest.(check bool) "edge label" true (contains dot "label=\"e\"");
  Alcotest.(check bool) "unary annotation" true (contains dot "mark");
  Alcotest.(check bool) "hyperedge box" true (contains dot "shape=box")

let test_dot_decomposition () =
  let a = path_atomset 4 in
  let d = TW.decomposition a in
  let dot = TW.Dot.decomposition d in
  Alcotest.(check bool) "header" true (contains dot "graph \"decomposition\"");
  Alcotest.(check bool) "bags listed" true (contains dot "{");
  Alcotest.(check bool) "tree edges" true (contains dot "--")

let test_dot_escaping () =
  let a = aset [ atom "p" [ Term.const "we\"ird" ] ] in
  let dot = TW.Dot.atomset a in
  Alcotest.(check bool) "quote escaped" true (contains dot "\\\"")

(* ------------------------------------------------------------------ *)
(* Property-based tests *)

let gen_graph : TW.Graph.t QCheck.arbitrary =
  QCheck.make
    ~print:(fun g -> Fmt.str "%a" TW.Graph.pp g)
    QCheck.Gen.(
      let* n = int_range 1 9 in
      let* edges =
        list_size (int_bound 14) (pair (int_bound (n - 1)) (int_bound (n - 1)))
      in
      return (TW.Graph.of_edges n (List.filter (fun (u, v) -> u <> v) edges)))

let prop_exact_between_bounds =
  QCheck.Test.make ~name:"lb ≤ exact tw ≤ heuristic ub" ~count:120 gen_graph
    (fun g ->
      let w = TW.Exact.treewidth g in
      let lb = TW.Lowerbound.best g in
      let ub =
        TW.Elimination.width_of_order g (TW.Elimination.min_fill_order g)
      in
      lb <= w && w <= ub)

let prop_width_monotone_under_edge_removal =
  QCheck.Test.make ~name:"removing edges cannot raise exact tw (Fact 1)"
    ~count:80 gen_graph (fun g ->
      let n = TW.Graph.vertex_count g in
      let w = TW.Exact.treewidth g in
      (* drop edges incident to vertex 0 *)
      let g' = TW.Graph.create n in
      TW.Graph.fold_vertices
        (fun v () ->
          List.iter
            (fun u -> if u <> 0 && v <> 0 && u > v then TW.Graph.add_edge g' v u)
            (TW.Graph.neighbors g v))
        g ();
      TW.Exact.treewidth g' <= w)

let prop_decomposition_of_order_valid =
  QCheck.Test.make ~name:"induced decompositions are valid (Def 4)" ~count:80
    QCheck.(
      make
        ~print:(fun a -> Fmt.str "%a" Atomset.pp_verbose a)
        Gen.(
          let term_gen =
            map (fun i -> Term.var_of_id ~hint:"T" (i + 2000)) (int_bound 7)
          in
          let atom_gen =
            let* p = oneofl [ "e2"; "t3" ] in
            let* args =
              list_size (return (if p = "e2" then 2 else 3)) term_gen
            in
            return (Atom.make p args)
          in
          map Atomset.of_list (list_size (int_range 1 8) atom_gen)))
    (fun a ->
      let p = TW.Primal.of_atomset a in
      let order = TW.Elimination.min_fill_order p.TW.Primal.graph in
      let d = TW.Elimination.decomposition_of_order p order in
      TW.Decomposition.is_valid a d
      && TW.Decomposition.width d
         = TW.Elimination.width_of_order p.TW.Primal.graph order)

let prop_min_degree_ub_sound =
  QCheck.Test.make ~name:"min-degree order is an upper bound" ~count:100
    gen_graph (fun g ->
      TW.Exact.treewidth g
      <= TW.Elimination.width_of_order g (TW.Elimination.min_degree_order g))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_exact_between_bounds;
      prop_width_monotone_under_edge_removal;
      prop_decomposition_of_order_valid;
      prop_min_degree_ub_sound;
    ]

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "treewidth.graph",
      [
        tc "basics" test_graph_basics;
        tc "range check" test_graph_out_of_range;
        tc "components" test_graph_components;
        tc "is_clique" test_graph_is_clique;
      ] );
    ( "treewidth.primal",
      [
        tc "ternary atom" test_primal_of_atomset;
        tc "term/vertex roundtrip" test_primal_term_roundtrip;
      ] );
    ( "treewidth.decomposition",
      [
        tc "trivial valid" test_decomposition_trivial_valid;
        tc "empty width" test_decomposition_width_empty;
        tc "cycle rejected" test_decomposition_invalid_cycle;
        tc "connectivity violation" test_decomposition_connectivity_violation;
        tc "cover violation" test_decomposition_cover_violation;
      ] );
    ( "treewidth.elimination",
      [
        tc "path order" test_width_of_order_path;
        tc "suboptimal order" test_width_of_order_bad_order_on_path;
        tc "min-degree on cycle" test_min_degree_on_cycle;
        tc "min-fill on clique" test_min_fill_on_clique;
        tc "induced decomposition" test_decomposition_of_order_valid;
      ] );
    ( "treewidth.exact",
      [
        tc "known values" test_exact_known_values;
        tc "tree" test_exact_tree_is_1;
        tc "disconnected" test_exact_disconnected;
        tc "too large" test_exact_too_large_raises;
      ] );
    ( "treewidth.lowerbound",
      [ tc "mmd" test_mmd_bounds; tc "clique" test_clique_bound ] );
    ( "treewidth.facade",
      [
        tc "path atomset" test_facade_path_atomset;
        tc "bounds sandwich" test_facade_bounds_sandwich;
        tc "heuristics sound" test_facade_heuristics_disagree_but_sound;
        tc "ternary atom clique" test_ternary_atom_makes_clique;
      ] );
    ( "treewidth.grid",
      [
        tc "explicit check" test_grid_check_explicit;
        tc "find in grid" test_grid_find_in_grid;
        tc "absent in path" test_grid_not_in_path;
        tc "grid lower bound" test_grid_lower_bound;
        tc "witness validates" test_grid_found_witness_is_grid;
      ] );
    ( "treewidth.hypergraph",
      [
        tc "basics" test_hypergraph_basics;
        tc "cover number" test_cover_number;
        tc "acyclic ghw 1" test_ghw_acyclic_is_1;
        tc "grid ghw" test_ghw_grid_small;
        tc "ghw ≤ tw+1" test_ghw_vs_tw_relation;
      ] );
    ( "treewidth.dot",
      [
        tc "atomset export" test_dot_atomset;
        tc "decomposition export" test_dot_decomposition;
        tc "escaping" test_dot_escaping;
      ] );
    ( "treewidth.pathwidth",
      [
        tc "known values" test_pathwidth_known_values;
        tc "tree pw > tw" test_pathwidth_exceeds_treewidth_on_trees;
        tc "bounds" test_pathwidth_bounds;
        tc "of_atomset" test_pathwidth_of_atomset;
        tc "too large" test_pathwidth_too_large;
      ] );
    ("treewidth.properties", QCheck_alcotest.to_alcotest prop_pathwidth_at_least_treewidth :: qcheck_cases);
  ]
