(* Tests for the experiment drivers: every figure/table driver (F1..F5,
   T1) runs at scale 1 inside the suite, its return value must be true,
   its printed output must contain no "[FAIL]" line, and the numeric
   series it prints (the shapes the paper's artwork depicts) are
   re-checked here from the captured text.  The full set also runs in
   bench/main.exe. *)

let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* run a driver, capturing both its verdict and everything it printed *)
let capture (f : ?scale:int -> Format.formatter -> bool) =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let ok = f ~scale:1 ppf in
  Format.pp_print_flush ppf ();
  (ok, Buffer.contents buf)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

(* the whitespace-separated integer tokens of the line carrying [label]
   (series lines print "  <label>  v1 v2 v3 ..."; non-numeric tokens,
   including the label itself, are skipped) *)
let series_after output label =
  let lines = String.split_on_char '\n' output in
  match List.find_opt (fun l -> contains l label) lines with
  | None -> []
  | Some line ->
      List.filter_map int_of_string_opt (String.split_on_char ' ' line)

let check_driver name ok output =
  Alcotest.(check bool) (name ^ " passes") true ok;
  Alcotest.(check bool) (name ^ " prints no [FAIL]") false
    (contains output "FAIL")

let rec nondecreasing = function
  | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
  | _ -> true

let rec strictly_increasing = function
  | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
  | _ -> true

let test_f1 () =
  let ok, out = capture Experiments.exp_f1 in
  check_driver "F1" ok out;
  (* the landscape table visits the whole KB zoo *)
  List.iter
    (fun kb_name ->
      Alcotest.(check bool) ("F1 covers " ^ kb_name) true (contains out kb_name))
    [ "transitive-closure"; "bts-not-fes"; "fes-not-bts";
      "steepening-staircase"; "inflating-elevator" ]

let test_f2 () =
  let ok, out = capture Experiments.exp_f2 in
  check_driver "F2" ok out;
  let tw = series_after out "core-chase treewidth" in
  Alcotest.(check bool) "F2: nonempty tw series" true (tw <> []);
  Alcotest.(check bool) "F2: core-chase tw uniformly ≤ 2 (Prop 4)" true
    (List.for_all (fun w -> w <= 2) tw);
  let core = series_after out "core-chase |F_i|" in
  let restr = series_after out "restricted |F_i|" in
  Alcotest.(check int) "F2: size series align" (List.length core)
    (List.length restr);
  Alcotest.(check bool) "F2: core sizes ≤ restricted sizes" true
    (List.for_all2 (fun c r -> c <= r) core restr);
  let gen_tw = series_after out "tw(P^h_n)" in
  Alcotest.(check bool) "F2: tw(P^h_n) strictly grows (Prop 5)" true
    (List.length gen_tw >= 2 && strictly_increasing gen_tw)

let test_f3 () =
  let ok, out = capture Experiments.exp_f3 in
  check_driver "F3" ok out;
  Alcotest.(check bool) "F3: prints the I^v prefix profile" true
    (contains out "I^v prefix")

let test_f4 () =
  let ok, out = capture Experiments.exp_f4 in
  check_driver "F4" ok out;
  let spine = series_after out "tw(I^v* prefix)" in
  Alcotest.(check bool) "F4: spine is uniformly treewidth 1 (Prop 7)" true
    (spine <> [] && List.for_all (fun w -> w = 1) spine);
  let models = series_after out "tw(I^v_n)" in
  Alcotest.(check bool) "F4: tw(I^v_n) grows past 2 (Prop 8.2)" true
    (nondecreasing models && List.exists (fun w -> w >= 3) models);
  let cc = series_after out "core-chase treewidth" in
  Alcotest.(check bool) "F4: core-chase tw climbs without recurring (Cor 1)"
    true
    (nondecreasing cc && List.exists (fun w -> w >= 2) cc)

let test_f5 () =
  let ok, out = capture Experiments.exp_f5 in
  check_driver "F5" ok out;
  Alcotest.(check bool) "F5: Definition-15 invariants checked" true
    (contains out "all Definition-15 invariants hold");
  Alcotest.(check bool) "F5: aggregation sizes reported" true
    (contains out "|D*|=")

let test_t1 () =
  let ok, out = capture Experiments.exp_t1 in
  check_driver "T1" ok out;
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "T1: schedule replayed for k=%d" k)
        true
        (contains out (Printf.sprintf "k=%d" k)))
    [ 1; 2 ]

let test_run_all_quiet () =
  Alcotest.(check bool) "run_all at scale 1" true
    (Experiments.run_all ~scale:1 null_ppf)

let test_all_registered () =
  Alcotest.(check (list string)) "experiment ids"
    [ "F1"; "F2"; "F3"; "F4"; "F5"; "T1" ]
    (List.map fst Experiments.all)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "experiments.drivers",
      [
        tc "F1 (Figure 1 landscape)" test_f1;
        tc "F2 (staircase series)" test_f2;
        tc "F3 (elevator KB)" test_f3;
        tc "F4 (elevator models & core growth)" test_f4;
        tc "F5 (robust aggregation)" test_f5;
        tc "T1 (Table 1 replay)" test_t1;
        tc "run_all" test_run_all_quiet;
        tc "registry" test_all_registered;
      ] );
  ]
