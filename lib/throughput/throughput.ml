(* Throughput benchmarking (DESIGN.md §14): N independent chase jobs
   batched across the Par pool — the reasoning-server load of ROADMAP
   item 1 (many unrelated KBs and queries in flight), as opposed to one
   wide fan-out inside a single chase.  The driver is shared by
   [bench/main.ml] (the thr:batch:* rows gated in CI) and the
   [corechase bench --throughput] CLI. *)

type summary = {
  name : string;
  variant : string;
  outcome : string;
  steps : int;
  atoms : int;
}

let summary_line s =
  Printf.sprintf "%s: %s %s steps=%d atoms=%d" s.name s.variant s.outcome
    s.steps s.atoms

let summarize name (r : Chase.report) =
  {
    name;
    variant = Chase.variant_name r.Chase.variant;
    outcome = Resilience.outcome_name r.Chase.outcome;
    steps = r.Chase.steps;
    atoms = Syntax.Atomset.cardinal r.Chase.final;
  }

(* The standard task mix: four job shapes interleaved by index, each
   deterministic (seeded generators, fixed budgets) and sized to a few
   milliseconds at [scale = 1] so a default batch exercises scheduling,
   not one long task.  KBs are built {e inside} the task: under
   [Par.Batch] isolation each job then mints the same variable ranks no
   matter which domain builds it. *)
let task ~scale i =
  let budget steps =
    { Chase.Variants.max_steps = steps * scale; max_atoms = 20_000 }
  in
  match i mod 4 with
  | 0 ->
      let name = Printf.sprintf "%03d:staircase-core" i in
      ( name,
        fun () ->
          summarize name (Chase.run ~budget:(budget 18) Core (Zoo.Staircase.kb ())) )
  | 1 ->
      let name = Printf.sprintf "%03d:elevator-core" i in
      ( name,
        fun () ->
          summarize name (Chase.run ~budget:(budget 20) Core (Zoo.Elevator.kb ())) )
  | 2 ->
      let name = Printf.sprintf "%03d:random-restricted" i in
      ( name,
        fun () ->
          let config =
            { Zoo.Randomkb.default with n_facts = 24; n_rules = 10 }
          in
          let kb = Zoo.Randomkb.generate ~seed:(1_000 + i) config in
          summarize name (Chase.run ~budget:(budget 30) Restricted kb) )
  | _ ->
      let name = Printf.sprintf "%03d:datalog-restricted" i in
      ( name,
        fun () ->
          let config =
            { Zoo.Randomkb.datalog with n_facts = 24; n_rules = 10 }
          in
          let kb = Zoo.Randomkb.generate ~seed:(2_000 + i) config in
          summarize name (Chase.run ~budget:(budget 40) Restricted kb) )

let mix ?(scale = 1) ~count () = List.init count (task ~scale)

let default_count = 32

(* One timed batch at the given width.  Failures surface as their
   exception name so a crashing task is visible in the comparison
   rather than silently equal. *)
let run_once ~jobs tasks =
  Corechase.Par.with_jobs jobs (fun () ->
      let t0 = Unix.gettimeofday () in
      let results =
        Corechase.Par.Batch.run ~site:"thr.batch"
          (Array.of_list (List.map (fun (_, f) -> f) tasks))
      in
      let wall = Unix.gettimeofday () -. t0 in
      let lines =
        Array.to_list
          (Array.map
             (function
               | Ok s -> summary_line s
               | Error e -> "error: " ^ Printexc.to_string e)
             results)
      in
      (wall, lines))

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

type row = {
  jobs : int;
  wall_s : float;  (** median over the reps *)
  tasks_per_s : float;
  speedup : float;  (** vs the [jobs = 1] row *)
  efficiency : float;  (** speedup / jobs *)
}

(* Wall-clock curves over the given widths: [reps] timed runs per width
   (median kept — single runs on shared CI machines are too noisy to
   gate on), plus the cross-width determinism check: every width, every
   rep must produce the same result lines, in submission order. *)
let curves ?(reps = 3) ~jobs_list tasks =
  let n = List.length tasks in
  (* one untimed pass so allocation warm-up lands on no width's account *)
  ignore (run_once ~jobs:1 tasks);
  let reference = ref None in
  let identical = ref true in
  let measure jobs =
    let walls =
      List.init reps (fun _ ->
          let wall, lines = run_once ~jobs tasks in
          (match !reference with
          | None -> reference := Some lines
          | Some r -> if lines <> r then identical := false);
          wall)
    in
    (jobs, median walls)
  in
  let walls = List.map measure jobs_list in
  let base =
    match List.assoc_opt 1 walls with
    | Some w -> w
    | None -> ( match walls with (_, w) :: _ -> w | [] -> 1.)
  in
  let rows =
    List.map
      (fun (jobs, wall_s) ->
        let speedup = if wall_s > 0. then base /. wall_s else 0. in
        {
          jobs;
          wall_s;
          tasks_per_s = (if wall_s > 0. then float_of_int n /. wall_s else 0.);
          speedup;
          efficiency = speedup /. float_of_int jobs;
        })
      walls
  in
  (rows, !identical)

let pp_rows ppf rows =
  Format.fprintf ppf "  %5s  %9s  %8s  %8s  %10s@." "jobs" "wall(ms)"
    "tasks/s" "speedup" "efficiency";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %5d  %9.1f  %8.1f  %8.2f  %10.2f@." r.jobs
        (r.wall_s *. 1000.) r.tasks_per_s r.speedup r.efficiency)
    rows
