lib/syntax/dlgp.mli: Atom Atomset Egd Fmt Format Kb Rule
