examples/quickstart.ml: Atomset Chase Corechase Dlgp Fmt Kb List Rclasses Syntax
