(** A parameterised rule zoo: named families per decidability class,
    plus adversarial near-miss mutants (one edit away from class
    membership).

    Each family is generated at a [scale] (ladder height, chain length,
    number of seed facts…) and records the syntactic classes its ruleset
    provably belongs to and its chase behaviour, so the analyzer tests
    can assert soundness over the whole corpus:

    - [wa-ladder]: weakly acyclic ladder of spawn/step levels;
    - [ja-ladder]: jointly acyclic but {e not} weakly acyclic (the
      blocked-propagation pattern: the existential output cycles back
      through a position guarded by an unaffected predicate);
    - [linear-chain]: linear chain of unary spawns, fixpoint at rank
      exactly [scale];
    - [linear-twist]: linear and restricted-chase terminating but with
      a diverging skolem chase (the head [h(Y,Z) ∧ h(Z,Z)] satisfies
      every future trigger at birth) — only the semantic probes certify
      it;
    - [guarded-pair]: guarded but not linear, jointly acyclic;
    - [braked-walk]: no acyclicity class holds, yet the skolem chase on
      the critical instance reaches a fixpoint (Marnette certificate);
    - [fg-braid]: frontier-guarded but not guarded, non-terminating;
    - [nonterm-loop]: the paper's bts-not-fes loop, [scale] seeds;
    - [datalog-clique]: transitive closure, existential-free. *)

open Syntax

type klass =
  | Datalog
  | Weakly_acyclic
  | Jointly_acyclic
  | Acyclic_grd
  | Linear
  | Guarded
  | Frontier_guarded

val klass_name : klass -> string

type behaviour = Terminating | Nonterminating
(** Whether the restricted chase of the generated KB reaches a
    fixpoint (all [Terminating] families also have terminating core
    chases). *)

type case = {
  name : string;  (** e.g. ["wa-ladder-3"] *)
  kb : Kb.t;
  classes : klass list;  (** classes the ruleset belongs to *)
  behaviour : behaviour;
}

val families : ?scale:int -> unit -> case list
(** All families at the given [scale] (default 3, min 1). *)

type broken = Klass of klass | Termination
(** What the one-edit mutation destroys: membership in a class the
    parent belongs to, or chase termination itself. *)

type mutant = { parent : case; case : case; broken : broken }

val mutants : ?scale:int -> unit -> mutant list
(** One near-miss mutant per mutable family: [wa-ladder] loops its last
    step back to level 0 ([Weakly_acyclic], also diverges); [ja-ladder]
    emits into the blocking predicate ([Jointly_acyclic], diverges);
    [linear-chain] gains a second body atom ([Linear]); [linear-twist]
    drops the trigger-satisfying head atom ([Termination]);
    [guarded-pair] unbinds the guard ([Guarded]); [braked-walk] loses
    its brake ([Termination]); [fg-braid] splits the frontier
    ([Frontier_guarded]); [datalog-clique] turns existential
    ([Datalog]). *)

val named : ?scale:int -> unit -> (string * Kb.t) list
(** Families and mutants (suffix ["-mut"]) as a name-indexed list for
    the [corechase zoo] CLI. *)
