lib/treewidth/lowerbound.mli: Graph
