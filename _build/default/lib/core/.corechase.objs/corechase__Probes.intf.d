lib/core/probes.mli: Atomset Chase Kb Rule Syntax
