lib/chase/derivation.mli: Atomset Fmt Kb Subst Syntax Trigger
