(* Differential tests for the incremental instance index and the
   delta-driven (semi-naive) trigger discovery:

   (a) an index grown by random add/simplify sequences equals a fresh
       [of_atomset] rebuild, bucket for bucket (cached cardinalities
       included);
   (b) delta-driven discovery returns the same trigger set as the full
       snapshot re-enumeration at every round of real chases
       ([Trigger.Audit] mode raises on the first disagreement), and
       whole runs under the two modes produce equivalent results;
   (c) the [use_indexes] ablation does not change [Hom.all]. *)

open Syntax

let atom p args = Atom.make p args

(* deterministic LCG so failures reproduce (same recipe as Zoo.Randomkb) *)
let lcg seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound

(* ------------------------------------------------------------------ *)
(* (a) incremental index ≡ rebuild *)

let random_atom rand =
  let preds = [| ("p", 2); ("q", 2); ("r", 1); ("s", 3) |] in
  let p, ar = preds.(rand (Array.length preds)) in
  let term () =
    if rand 3 = 0 then Term.const (Printf.sprintf "c%d" (rand 5))
    else Term.var_of_id ~hint:"x" (800_000 + rand 12)
  in
  atom p (List.init ar (fun _ -> term ()))

(* a substitution folding one live variable onto another live term *)
let random_fold rand aset =
  match Atomset.vars aset with
  | [] -> None
  | vars ->
      let v = List.nth vars (rand (List.length vars)) in
      let terms = Atomset.terms aset in
      let img = List.nth terms (rand (List.length terms)) in
      if Term.equal v img then None else Some (Subst.singleton v img)

let test_index_incremental_vs_rebuild () =
  for seed = 1 to 25 do
    let rand = lcg (seed * 7919) in
    let idx = ref Homo.Instance.empty in
    let reference = ref Atomset.empty in
    for _step = 1 to 40 do
      (match rand 4 with
      | 0 | 1 ->
          (* add a batch of atoms *)
          let batch = List.init (1 + rand 3) (fun _ -> random_atom rand) in
          idx := Homo.Instance.add_atoms !idx batch;
          reference :=
            List.fold_left (fun s a -> Atomset.add a s) !reference batch
      | 2 ->
          (* simplify: fold a variable onto another term *)
          (match random_fold rand !reference with
          | None -> ()
          | Some s ->
              idx := Homo.Instance.apply_subst s !idx;
              reference := Subst.apply s !reference)
      | _ ->
          (* remove some atom *)
          (match Atomset.to_list !reference with
          | [] -> ()
          | atoms ->
              let a = List.nth atoms (rand (List.length atoms)) in
              idx := Homo.Instance.remove_atoms !idx [ a ];
              reference := Atomset.remove a !reference));
      if not (Atomset.equal (Homo.Instance.atomset !idx) !reference) then
        Alcotest.failf "seed %d: incremental atomset diverged from reference"
          seed;
      if not (Homo.Instance.invariants_ok !idx) then
        Alcotest.failf "seed %d: index buckets diverged from a rebuild" seed
    done
  done

let test_index_add_is_idempotent () =
  let a1 = atom "p" [ Term.const "a"; Term.const "b" ] in
  let idx = Homo.Instance.add_atoms Homo.Instance.empty [ a1; a1; a1 ] in
  Alcotest.(check int) "one atom" 1 (Homo.Instance.cardinal idx);
  Alcotest.(check int) "one candidate" 1
    (Homo.Instance.candidate_count idx a1 Subst.empty);
  Alcotest.(check bool) "invariants" true (Homo.Instance.invariants_ok idx)

let test_candidate_count_matches_candidates () =
  let rand = lcg 1234 in
  let atoms = List.init 60 (fun _ -> random_atom rand) in
  let idx = Homo.Instance.add_atoms Homo.Instance.empty atoms in
  let x = Term.var_of_id ~hint:"x" 800_001 in
  List.iter
    (fun pattern ->
      List.iter
        (fun sigma ->
          Alcotest.(check int)
            (Fmt.str "count=|candidates| for %a" Atom.pp pattern)
            (List.length (Homo.Instance.candidates idx pattern sigma))
            (Homo.Instance.candidate_count idx pattern sigma))
        [ Subst.empty; Subst.singleton x (Term.const "c1") ])
    (List.map (fun _ -> random_atom rand) (List.init 20 Fun.id))

let test_apply_subst_merges_collisions () =
  (* p(x,b) and p(a,b): folding x↦a must collapse them to ONE atom *)
  let x = Term.var_of_id ~hint:"x" 800_100 in
  let a = Term.const "a" and b = Term.const "b" in
  let idx =
    Homo.Instance.add_atoms Homo.Instance.empty
      [ atom "p" [ x; b ]; atom "p" [ a; b ] ]
  in
  let idx' = Homo.Instance.apply_subst (Subst.singleton x a) idx in
  Alcotest.(check int) "collapsed" 1 (Homo.Instance.cardinal idx');
  Alcotest.(check bool) "invariants" true (Homo.Instance.invariants_ok idx');
  Alcotest.(check int) "x buckets gone" 0
    (List.length (Homo.Instance.atoms_with_term idx' x))

(* ------------------------------------------------------------------ *)
(* (b) delta-driven discovery ≡ snapshot, audited at every round *)

let with_discovery mode f =
  let saved = !Chase.Trigger.discovery in
  Chase.Trigger.discovery := mode;
  Fun.protect ~finally:(fun () -> Chase.Trigger.discovery := saved) f

let budget steps = { Chase.Variants.max_steps = steps; max_atoms = 5_000 }

let test_audit_staircase () =
  with_discovery Chase.Trigger.Audit (fun () ->
      let kb = Zoo.Staircase.kb () in
      ignore (Chase.Variants.restricted ~budget:(budget 25) kb);
      ignore (Chase.Variants.core ~budget:(budget 20) kb);
      ignore (Chase.Variants.frugal ~budget:(budget 20) kb);
      ignore
        (Chase.Variants.core ~cadence:Chase.Variants.Every_round
           ~budget:(budget 15) kb))

let test_audit_elevator () =
  with_discovery Chase.Trigger.Audit (fun () ->
      let kb = Zoo.Elevator.kb () in
      ignore (Chase.Variants.restricted ~budget:(budget 25) kb);
      ignore (Chase.Variants.core ~budget:(budget 20) kb))

let test_audit_randomkb () =
  with_discovery Chase.Trigger.Audit (fun () ->
      List.iteri
        (fun i kb ->
          ignore (Chase.Variants.restricted ~budget:(budget 40) kb);
          if i < 3 then ignore (Chase.Variants.core ~budget:(budget 25) kb))
        (Zoo.Randomkb.generate_many ~seed:42 ~count:6 Zoo.Randomkb.default))

let test_audit_stream_and_baselines () =
  with_discovery Chase.Trigger.Audit (fun () ->
      let kb = Zoo.Staircase.kb () in
      ignore
        (List.of_seq
           (Seq.take 15 (Chase.Variants.stream ~variant:`Core kb)));
      ignore (Chase.Variants.Baseline.oblivious ~budget:(budget 30) kb);
      ignore (Chase.Variants.Baseline.skolem ~budget:(budget 30) kb);
      List.iter
        (fun kb ->
          ignore (Chase.Variants.Baseline.oblivious ~budget:(budget 60) kb);
          ignore (Chase.Variants.Baseline.skolem ~budget:(budget 60) kb))
        (Zoo.Randomkb.generate_many ~seed:7 ~count:3 Zoo.Randomkb.datalog))

let test_audit_egds () =
  with_discovery Chase.Trigger.Audit (fun () ->
      (* FD over emp + a TGD feeding it, so EGD unifications interleave
         with delta-driven TGD rounds *)
      let x = Term.fresh_var ~hint:"X" ()
      and y = Term.fresh_var ~hint:"Y" ()
      and z = Term.fresh_var ~hint:"Z" () in
      let fd =
        Egd.make ~name:"fd"
          ~body:[ atom "emp" [ x; y ]; atom "emp" [ x; z ] ]
          y z
      in
      let x2 = Term.fresh_var ~hint:"X" () and w = Term.fresh_var ~hint:"W" () in
      let rule =
        Rule.make ~name:"hire"
          ~body:[ atom "dept" [ x2 ] ]
          ~head:[ atom "emp" [ x2; w ]; atom "dept" [ w ] ]
          ()
      in
      let kb =
        Kb.with_egds [ fd ]
          (Kb.of_lists
             ~facts:
               [
                 atom "dept" [ Term.const "d0" ];
                 atom "emp" [ Term.const "d0"; Term.const "e0" ];
               ]
             ~rules:[ rule ])
      in
      ignore (Chase.Variants.Egds.run ~budget:(budget 30) kb);
      ignore (Chase.Variants.Egds.run ~variant:`Core ~budget:(budget 30) kb))

(* whole-run comparison: Delta and Snapshot modes must reach equivalent
   results (fresh nulls differ between runs, so equivalence is
   termination + size + homomorphic equivalence) *)
let equivalent_runs run_a run_b =
  let open Chase.Variants in
  run_a.outcome = run_b.outcome
  && run_a.rounds = run_b.rounds
  && Chase.Derivation.length run_a.derivation
     = Chase.Derivation.length run_b.derivation
  &&
  let fin r = (Chase.Derivation.last r.derivation).Chase.Derivation.instance in
  Atomset.cardinal (fin run_a) = Atomset.cardinal (fin run_b)
  && Homo.Morphism.hom_equivalent (fin run_a) (fin run_b)

let test_delta_vs_snapshot_runs () =
  let compare_on kb name steps =
    let delta_run =
      with_discovery Chase.Trigger.Delta (fun () ->
          Chase.Variants.core ~budget:(budget steps) kb)
    in
    let snap_run =
      with_discovery Chase.Trigger.Snapshot (fun () ->
          Chase.Variants.core ~budget:(budget steps) kb)
    in
    Alcotest.(check bool)
      (name ^ ": delta and snapshot runs equivalent")
      true
      (equivalent_runs delta_run snap_run)
  in
  compare_on (Zoo.Staircase.kb ()) "staircase" 20;
  compare_on (Zoo.Elevator.kb ()) "elevator" 15;
  List.iteri
    (fun i kb -> compare_on kb (Printf.sprintf "randomkb%d" i) 25)
    (Zoo.Randomkb.generate_many ~seed:11 ~count:3 Zoo.Randomkb.default)

let test_delta_vs_snapshot_restricted_termination () =
  (* a terminating datalog KB: both modes must reach the same fixpoint *)
  List.iter
    (fun kb ->
      let fin mode =
        with_discovery mode (fun () ->
            let r = Chase.Variants.restricted ~budget:(budget 500) kb in
            Alcotest.(check bool) "terminated" true
              (r.Chase.Variants.outcome = Chase.Variants.Fixpoint);
            (Chase.Derivation.last r.Chase.Variants.derivation)
              .Chase.Derivation.instance)
      in
      let f_delta = fin Chase.Trigger.Delta in
      let f_snap = fin Chase.Trigger.Snapshot in
      (* datalog: no fresh nulls, fixpoints are literally equal *)
      Alcotest.(check bool) "same fixpoint" true (Atomset.equal f_delta f_snap))
    (Zoo.Randomkb.generate_many ~seed:5 ~count:4 Zoo.Randomkb.datalog)

(* ------------------------------------------------------------------ *)
(* (c) use_indexes ablation does not change Hom.all *)

let test_use_indexes_ablation () =
  let rand = lcg 4242 in
  for _case = 1 to 15 do
    let tgt_atoms = List.init 30 (fun _ -> random_atom rand) in
    let src =
      Atomset.of_list (List.init 3 (fun _ -> random_atom rand))
    in
    let idx =
      Homo.Instance.add_atoms Homo.Instance.empty tgt_atoms
    in
    let canon hs =
      List.sort_uniq compare
        (List.map (fun h -> Fmt.str "%a" Subst.pp_debug h) hs)
    in
    let on =
      (Homo.Instance.use_indexes := true;
       Homo.Hom.all src idx)
    in
    let off =
      (Homo.Instance.use_indexes := false;
       Fun.protect
         ~finally:(fun () -> Homo.Instance.use_indexes := true)
         (fun () -> Homo.Hom.all src idx))
    in
    Alcotest.(check (list string)) "same homomorphisms" (canon on) (canon off)
  done

let suites =
  [
    ( "incremental.index",
      [
        Alcotest.test_case "random ops ≡ rebuild" `Quick
          test_index_incremental_vs_rebuild;
        Alcotest.test_case "add is idempotent" `Quick
          test_index_add_is_idempotent;
        Alcotest.test_case "candidate_count = |candidates|" `Quick
          test_candidate_count_matches_candidates;
        Alcotest.test_case "apply_subst merges collisions" `Quick
          test_apply_subst_merges_collisions;
      ] );
    ( "incremental.triggers",
      [
        Alcotest.test_case "audit: staircase" `Quick test_audit_staircase;
        Alcotest.test_case "audit: elevator" `Quick test_audit_elevator;
        Alcotest.test_case "audit: random KBs" `Quick test_audit_randomkb;
        Alcotest.test_case "audit: stream & baselines" `Quick
          test_audit_stream_and_baselines;
        Alcotest.test_case "audit: egds" `Quick test_audit_egds;
        Alcotest.test_case "delta ≡ snapshot core runs" `Quick
          test_delta_vs_snapshot_runs;
        Alcotest.test_case "delta ≡ snapshot fixpoints" `Quick
          test_delta_vs_snapshot_restricted_termination;
      ] );
    ( "incremental.ablation",
      [
        Alcotest.test_case "use_indexes on/off agree" `Quick
          test_use_indexes_ablation;
      ] );
  ]
