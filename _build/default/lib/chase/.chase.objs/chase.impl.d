lib/chase/chase.ml: Atomset Datalog Derivation Homo Kb List Syntax Trigger Variants
