open Syntax

(* The write-ahead log manager (DESIGN.md §16): a directory of xlog
   segments plus snapshot files, after tarantool's discipline.

     <dir>/wal-%016d.xlog   segments, named by their first LSN
     <dir>/snap-%016d.snap  snapshots, named by the LSN they cover

   One writer per directory appends length-prefixed CRC-checked frames
   (lib/storage/xlog.ml) carrying typed records (lib/storage/record.ml),
   LSNs monotonic from 1.  A snapshot is written tmp+rename, then the
   log rotates to a fresh segment, so recovery reads: latest valid
   snapshot, then every segment frame with a higher LSN.  A torn final
   frame in the {e last} segment is truncated with a warning; a torn
   tail anywhere else, a checksum failure mid-file, or an LSN gap is a
   structured error — the log refuses to lie about what is durable.

   Fault sites for the kill/resume differential harness (DESIGN.md §11):
   [wal] fires between a frame's write and its fsync (the mid-fsync
   kill: the record may or may not survive), [snap] fires between a
   snapshot's temp-file write and its rename (the snapshot is lost, the
   log must still recover from the previous one). *)

let m_appends = Obs.Metrics.counter "wal.appends"

let m_fsyncs = Obs.Metrics.counter "wal.fsyncs"

let m_replayed = Obs.Metrics.counter "wal.replayed_records"

let m_torn = Obs.Metrics.counter "wal.torn_tails"

type sync_policy = Sync_none | Sync_every | Sync_interval of int

let sync_policy_to_string = function
  | Sync_none -> "none"
  | Sync_every -> "every"
  | Sync_interval n -> Printf.sprintf "interval:%d" n

let sync_policy_of_string s =
  match s with
  | "none" -> Ok Sync_none
  | "every" -> Ok Sync_every
  | _ -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "interval" -> (
          let n = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt n with
          | Some n when n > 0 -> Ok (Sync_interval n)
          | _ -> Error (Printf.sprintf "bad fsync interval %S" n))
      | _ ->
          Error
            (Printf.sprintf
               "unknown sync policy %S (expected none, every or interval:N)" s))

type t = {
  dir : string;
  sync_policy : sync_policy;
  snapshot_every : int;
  quiet : bool;
  mutable writer : Xlog.writer;
  mutable segment_first : int;  (** first LSN of the writer's segment *)
  mutable next_lsn : int;
  mutable unsynced : int;
  mutable snap_pending : int;
  mutable payloads : string list;  (** recovered record payloads, in order *)
  mutable torn : bool;  (** a torn tail was truncated on open *)
  mutable closed : bool;
}

let dir t = t.dir

let is_empty t = t.payloads = [] && t.next_lsn = 1

let had_torn_tail t = t.torn

(* ---------------------------------------------------------------- *)
(* Directory layout *)

let seg_name n = Printf.sprintf "wal-%016d.xlog" n

let snap_name n = Printf.sprintf "snap-%016d.snap" n

let parse_numbered ~prefix ~suffix name =
  let lp = String.length prefix and ls = String.length suffix in
  let l = String.length name in
  if
    l = lp + 16 + ls
    && String.sub name 0 lp = prefix
    && String.sub name (l - ls) ls = suffix
  then int_of_string_opt (String.sub name lp 16)
  else None

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let warn t fmt =
  Format.ksprintf
    (fun m -> if not t.quiet then Fmt.epr "corechase: wal: %s@." m)
    fmt

(* A path looks like a WAL directory: used by `corechase resume` to
   hint at --wal when handed one in the text-checkpoint position. *)
let looks_like_wal_dir path =
  Sys.file_exists path && Sys.is_directory path
  && Array.exists
       (fun n ->
         parse_numbered ~prefix:"wal-" ~suffix:".xlog" n <> None
         || parse_numbered ~prefix:"snap-" ~suffix:".snap" n <> None)
       (try Sys.readdir path with Sys_error _ -> [||])

(* ---------------------------------------------------------------- *)
(* Open: scan the directory, classify torn vs corrupt, position the
   writer after the last durable record. *)

let ( let* ) = Result.bind

let scan_segments segs =
  (* [segs] sorted by first-LSN; returns (frames in order, last segment
     info for the writer).  Torn tails are legal only in the last
     segment; LSNs must be continuous across segment boundaries and each
     nonempty segment's first frame must match its filename. *)
  let rec go acc last = function
    | [] -> Ok (List.rev acc, last)
    | (n, path) :: rest ->
        let is_last = rest = [] in
        let* scan = Xlog.scan_file ~magic:Xlog.wal_magic path in
        if scan.Xlog.torn && not is_last then
          Error
            (Printf.sprintf "%s: torn tail in a non-final segment (mid-log corruption)" path)
        else begin
          let check =
            match scan.Xlog.frames with
            | [] ->
                if is_last then Ok ()
                else Error (Printf.sprintf "%s: empty non-final segment" path)
            | (first, _) :: _ ->
                if first <> n then
                  Error
                    (Printf.sprintf "%s: first frame has lsn %d (expected %d)" path first n)
                else Ok ()
          in
          let* () = check in
          let acc = List.rev_append scan.Xlog.frames acc in
          go acc (Some (n, path, scan)) rest
        end
  in
  go [] None segs

let check_continuity frames =
  let rec go expected = function
    | [] -> Ok ()
    | (lsn, _) :: rest -> (
        match expected with
        | Some e when lsn <> e ->
            Error (Printf.sprintf "lsn gap: expected %d, found %d" e lsn)
        | _ -> go (Some (lsn + 1)) rest)
  in
  go None frames

let open_dir ?(sync = Sync_every) ?(snapshot_every = 0) ?(quiet = false) dir =
  match
    mkdir_p dir;
    if not (Sys.is_directory dir) then
      Error (dir ^ ": not a directory")
    else Ok (Sys.readdir dir)
  with
  | exception Sys_error m -> Error m
  | exception Unix.Unix_error (e, _, _) ->
      Error (dir ^ ": " ^ Unix.error_message e)
  | Error m -> Error m
  | Ok entries ->
      (* snapshot temp files are pre-rename leftovers of a crashed (or
         fault-injected) snapshot write: never valid, always removed *)
      Array.iter
        (fun n ->
          if Filename.check_suffix n ".tmp" then
            try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        entries;
      let numbered prefix suffix =
        Array.to_list entries
        |> List.filter_map (fun n ->
               match parse_numbered ~prefix ~suffix n with
               | Some i -> Some (i, Filename.concat dir n)
               | None -> None)
        |> List.sort compare
      in
      let segs = numbered "wal-" ".xlog" in
      let snaps = numbered "snap-" ".snap" in
      let* frames, last_seg = scan_segments segs in
      let* () =
        Result.map_error (fun m -> dir ^ ": " ^ m) (check_continuity frames)
      in
      let* snap_payloads, covers =
        match List.rev snaps with
        | [] -> Ok ([], 0)
        | (n, path) :: _ -> (
            match Xlog.scan_file ~magic:Xlog.snap_magic path with
            | Error m -> Error (m ^ " (corrupt snapshot; delete it to fall back)")
            | Ok scan ->
                if scan.Xlog.torn then
                  Error
                    (path
                   ^ ": torn snapshot (snapshots are written atomically; \
                      delete it to fall back)")
                else Ok (List.map snd scan.Xlog.frames, n))
      in
      let* () =
        (* the tail must connect to the snapshot: every LSN in
           (covers, first-frame) must exist *)
        match frames with
        | (first, _) :: _ when covers > 0 && first > covers + 1 ->
            Error
              (Printf.sprintf
                 "%s: lsn gap between snapshot (covers %d) and first segment \
                  frame %d"
                 dir covers first)
        | [] when covers > 0 && segs = [] ->
            Error (dir ^ ": snapshot without any log segment")
        | _ -> Ok ()
      in
      let last_lsn = match List.rev frames with (l, _) :: _ -> l | [] -> covers in
      let* () =
        if covers > last_lsn then
          Error
            (Printf.sprintf "%s: snapshot covers lsn %d beyond the log end %d"
               dir covers last_lsn)
        else Ok ()
      in
      let next_lsn = last_lsn + 1 in
      let tail =
        List.filter_map
          (fun (lsn, p) -> if lsn > covers then Some p else None)
          frames
      in
      let torn =
        match last_seg with Some (_, _, s) -> s.Xlog.torn | None -> false
      in
      let writer, segment_first =
        match last_seg with
        | Some (n, path, scan) ->
            ( Xlog.append_writer ~magic:Xlog.wal_magic path
                ~valid_size:scan.Xlog.valid_size,
              n )
        | None ->
            ( Xlog.create_writer ~magic:Xlog.wal_magic
                (Filename.concat dir (seg_name next_lsn)),
              next_lsn )
      in
      let t =
        {
          dir;
          sync_policy = sync;
          snapshot_every;
          quiet;
          writer;
          segment_first;
          next_lsn;
          unsynced = 0;
          snap_pending = 0;
          payloads = snap_payloads @ tail;
          torn;
          closed = false;
        }
      in
      if torn then begin
        if !Obs.Metrics.enabled then Obs.Metrics.incr m_torn;
        warn t "%s: truncated a torn final record (crash mid-write); resuming \
                from the last durable record" dir
      end;
      Ok t

(* ---------------------------------------------------------------- *)
(* Appending *)

let do_sync t =
  Xlog.sync t.writer;
  t.unsynced <- 0;
  if !Obs.Metrics.enabled then Obs.Metrics.incr m_fsyncs

let sync t = if not t.closed then do_sync t

let append t record =
  if t.closed then invalid_arg "Wal.append: closed";
  let payload = Record.encode record in
  Xlog.append t.writer ~lsn:t.next_lsn payload;
  t.next_lsn <- t.next_lsn + 1;
  if !Obs.Metrics.enabled then Obs.Metrics.incr m_appends;
  (* the mid-fsync kill window: the frame is written but not yet
     durable — a fault here leaves a tail the next open may find torn *)
  Resilience.Fault.hit "wal";
  match t.sync_policy with
  | Sync_none -> ()
  | Sync_every -> do_sync t
  | Sync_interval n ->
      t.unsynced <- t.unsynced + 1;
      if t.unsynced >= n then do_sync t

let close t =
  if not t.closed then begin
    (try do_sync t with Unix.Unix_error _ -> ());
    Xlog.close_writer t.writer;
    t.closed <- true
  end

(* ---------------------------------------------------------------- *)
(* Snapshots *)

let write_snapshot t records =
  let covers = t.next_lsn - 1 in
  if covers > 0 && records <> [] && not t.closed then begin
    (* the snapshot claims everything ≤ covers is durable: make it so *)
    do_sync t;
    let tmp = Filename.concat t.dir (Printf.sprintf "snap-%016d.tmp" covers) in
    let w = Xlog.create_writer ~magic:Xlog.snap_magic tmp in
    List.iteri (fun i r -> Xlog.append w ~lsn:(i + 1) (Record.encode r)) records;
    Xlog.sync w;
    Xlog.close_writer w;
    (* the pre-rename kill window: the temp file is complete but the
       snapshot does not exist yet — recovery falls back to the
       previous one and a longer replay *)
    Resilience.Fault.hit "snap";
    let path = Filename.concat t.dir (snap_name covers) in
    Unix.rename tmp path;
    if Obs.Trace.enabled () then
      Obs.Trace.emit
        (Obs.Trace.Snapshot_written
           { path; lsn = covers; records = List.length records });
    (* rotate to a fresh segment so recovery never re-reads frames the
       snapshot already covers *)
    if t.segment_first < t.next_lsn then begin
      Xlog.close_writer t.writer;
      let seg = seg_name t.next_lsn in
      t.writer <-
        Xlog.create_writer ~magic:Xlog.wal_magic (Filename.concat t.dir seg);
      t.segment_first <- t.next_lsn;
      t.unsynced <- 0;
      if Obs.Trace.enabled () then
        Obs.Trace.emit (Obs.Trace.Wal_rotate { segment = seg; lsn = t.next_lsn })
    end
  end

let maybe_snapshot t records_fn =
  if t.snapshot_every > 0 then begin
    t.snap_pending <- t.snap_pending + 1;
    if t.snap_pending >= t.snapshot_every then begin
      t.snap_pending <- 0;
      write_snapshot t (records_fn ())
    end
  end

(* ---------------------------------------------------------------- *)
(* Recovery: generic record decode (serve), and the chase replay. *)

let emit_recovered t ~records =
  if !Obs.Metrics.enabled then Obs.Metrics.add m_replayed records;
  if Obs.Trace.enabled () then
    Obs.Trace.emit
      (Obs.Trace.Recovery_replayed { dir = t.dir; records; torn = t.torn })

let records t =
  let rec go acc i = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match Record.decode p with
        | Ok r -> go (r :: acc) (i + 1) rest
        | Error m -> Error (Printf.sprintf "%s: record %d: %s" t.dir i m))
  in
  let* rs = go [] 0 t.payloads in
  emit_recovered t ~records:(List.length rs);
  Ok rs

type chase_header = {
  h_engine : string;
  h_kb_path : string option;
  h_kb_digest : string option;
  h_budget : Chase.Variants.budget;
}

let peek_header t =
  match t.payloads with
  | [] -> Ok None
  | p :: _ -> (
      match Record.decode p with
      | Error m -> Error (Printf.sprintf "%s: first record: %s" t.dir m)
      | Ok
          (Record.Begin
            { engine; kb_path; kb_digest; max_steps; max_atoms; _ }) ->
          Ok
            (Some
               {
                 h_engine = engine;
                 h_kb_path = kb_path;
                 h_kb_digest = kb_digest;
                 h_budget = { Chase.Variants.max_steps; max_atoms };
               })
      | Ok r ->
          Error
            (Printf.sprintf "%s: first record is %s, not a run header" t.dir
               (Record.kind_name r)))

type durable = {
  d_last_step : int;  (** highest durable step index; -1 when none *)
  d_tail_retract : bool;  (** the last durable record is a [Retract] *)
  d_rounds : int;  (** rounds whose [Round] record is durable *)
  d_has_start : bool;  (** σ₀ (or a snapshot step 0) is durable *)
}

let no_durable =
  { d_last_step = -1; d_tail_retract = false; d_rounds = 0; d_has_start = false }

type recovered = {
  r_header : chase_header;
  r_state : Chase.Variants.engine_state option;
      (** the last durable round boundary; [None] when the crash
          happened before the first completed round *)
  r_durable : durable;
  r_records : int;
  r_torn : bool;
}

exception Replay of string

let recover t kb =
  if t.payloads = [] then
    Error (t.dir ^ ": WAL is empty (nothing to recover)")
  else begin
    let fail i fmt =
      Printf.ksprintf (fun m -> raise (Replay (Printf.sprintf "%s: record %d: %s" t.dir i m))) fmt
    in
    let header = ref None in
    let begin_counters = ref None in
    let steps_rev : Chase.Derivation.step list ref = ref [] in
    let boundary = ref None in
    let last_retract = ref false in
    let count = ref 0 in
    match
      List.iteri
        (fun i payload ->
          let r =
            match Record.decode payload with
            | Ok r -> r
            | Error m -> fail i "undecodable payload (%s)" m
          in
          incr count;
          last_retract := (match r with Record.Retract _ -> true | _ -> false);
          match r with
          | Record.Begin
              {
                engine;
                kb_path;
                kb_digest;
                max_steps;
                max_atoms;
                term_counter;
                generation_counter;
              } ->
              if !header <> None then fail i "duplicate run header";
              if i <> 0 then fail i "run header is not the first record";
              header :=
                Some
                  {
                    h_engine = engine;
                    h_kb_path = kb_path;
                    h_kb_digest = kb_digest;
                    h_budget = { Chase.Variants.max_steps; max_atoms };
                  };
              begin_counters := Some (term_counter, generation_counter)
          | Record.Start { sigma } ->
              if !steps_rev <> [] then fail i "start record after steps";
              let f = Kb.facts kb in
              steps_rev :=
                [
                  {
                    Chase.Derivation.index = 0;
                    trigger = None;
                    pi_safe = Subst.empty;
                    pre_instance = f;
                    simplification = sigma;
                    instance = Subst.apply sigma f;
                  };
                ]
          | Record.Add { index; pi_safe; sigma; added } -> (
              match !steps_rev with
              | [] -> fail i "step before the start record"
              | prev :: _ ->
                  if index <> prev.Chase.Derivation.index + 1 then
                    fail i "step index %d does not follow %d" index
                      prev.Chase.Derivation.index;
                  let pre =
                    Atomset.union prev.Chase.Derivation.instance
                      (Atomset.of_list added)
                  in
                  steps_rev :=
                    {
                      Chase.Derivation.index;
                      trigger = None;
                      pi_safe;
                      pre_instance = pre;
                      simplification = sigma;
                      instance = Subst.apply sigma pre;
                    }
                    :: !steps_rev)
          | Record.Snap_step { index; pi_safe; sigma; pre; inst } ->
              (match !steps_rev with
              | [] -> if index <> 0 then fail i "snapshot does not start at 0"
              | prev :: _ ->
                  if index <> prev.Chase.Derivation.index + 1 then
                    fail i "snapshot step index %d does not follow %d" index
                      prev.Chase.Derivation.index);
              steps_rev :=
                {
                  Chase.Derivation.index;
                  trigger = None;
                  pi_safe;
                  pre_instance = Atomset.of_list pre;
                  simplification = sigma;
                  instance = Atomset.of_list inst;
                }
                :: !steps_rev
          | Record.Retract { index; sigma } -> (
              match !steps_rev with
              | st :: rest when st.Chase.Derivation.index = index ->
                  steps_rev :=
                    {
                      st with
                      Chase.Derivation.simplification = sigma;
                      instance =
                        Subst.apply sigma st.Chase.Derivation.pre_instance;
                    }
                    :: rest
              | _ -> fail i "retract does not target the last step")
          | Record.Round
              { rounds; steps; snapshot_index; term_counter; generation_counter }
            ->
              if !steps_rev = [] then fail i "round boundary before any step";
              boundary :=
                Some
                  ( rounds,
                    steps,
                    snapshot_index,
                    term_counter,
                    generation_counter,
                    !steps_rev )
          | Record.Merge _ ->
              fail i "merge record (EGD runs are journaled but not resumable)"
          | Record.Sess_op _ | Record.Sess_chase _ | Record.Sess_gen _ ->
              fail i "session record in a chase log")
        t.payloads
    with
    | exception Replay m -> Error m
    | exception Invalid_argument m -> Error (t.dir ^ ": " ^ m)
    | () -> (
        match !header with
        | None -> Error (t.dir ^ ": no run header record")
        | Some h ->
            let durable =
              {
                d_last_step =
                  (match !steps_rev with
                  | [] -> -1
                  | st :: _ -> st.Chase.Derivation.index);
                d_tail_retract = !last_retract;
                d_rounds =
                  (match !boundary with
                  | Some (r, _, _, _, _, _) -> r
                  | None -> 0);
                d_has_start = !steps_rev <> [];
              }
            in
            let state =
              match !boundary with
              | Some (rounds, steps, snap_index, tc, gc, srev) -> (
                  match Chase.Derivation.of_steps kb (List.rev srev) with
                  | exception Invalid_argument m ->
                      Error (t.dir ^ ": inconsistent log: " ^ m)
                  | d ->
                      Term.restore_counter_for_resume tc;
                      Homo.Instance.ensure_generation_counter_at_least gc;
                      Ok
                        (Some
                           {
                             Chase.Variants.state_derivation = d;
                             state_steps = steps;
                             state_rounds = rounds;
                             state_snapshot =
                               (if snap_index < 0 then None
                                else
                                  Some (Chase.Derivation.instance_at d snap_index));
                           }))
              | None ->
                  (match !begin_counters with
                  | Some (tc, gc) ->
                      Term.restore_counter_for_resume tc;
                      Homo.Instance.ensure_generation_counter_at_least gc
                  | None -> ());
                  Ok None
            in
            let* state = state in
            emit_recovered t ~records:!count;
            Ok
              {
                r_header = h;
                r_state = state;
                r_durable = durable;
                r_records = !count;
                r_torn = t.torn;
              })
  end

(* ---------------------------------------------------------------- *)
(* The chase-side hooks *)

let begin_record ~engine ?kb_path ?kb_digest ~(budget : Chase.Variants.budget)
    () =
  Record.Begin
    {
      engine;
      kb_path;
      kb_digest;
      max_steps = budget.Chase.Variants.max_steps;
      max_atoms = budget.Chase.Variants.max_atoms;
      term_counter = Term.counter_value ();
      generation_counter = Homo.Instance.generation_counter_value ();
    }

let journal t ~engine ?kb_path ?kb_digest ~budget ?(durable = no_durable) () :
    Chase.Variants.journal =
  fun ev ->
  match ev with
  | Chase.Variants.J_start { sigma } ->
      if is_empty t then begin
        append t (begin_record ~engine ?kb_path ?kb_digest ~budget ());
        append t (Record.Start { sigma })
      end
      else if not durable.d_has_start then append t (Record.Start { sigma })
  | Chase.Variants.J_step { index; pi_safe; sigma; added } ->
      if index > durable.d_last_step then
        append t (Record.Add { index; pi_safe; sigma; added })
  | Chase.Variants.J_round_sigma { index; sigma } ->
      if index > durable.d_last_step || not durable.d_tail_retract then
        append t (Record.Retract { index; sigma })
  | Chase.Variants.J_round { rounds; steps; snapshot_index } ->
      if rounds > durable.d_rounds then
        append t
          (Record.Round
             {
               rounds;
               steps;
               snapshot_index;
               term_counter = Term.counter_value ();
               generation_counter = Homo.Instance.generation_counter_value ();
             })
  | Chase.Variants.J_merge { sigma } -> append t (Record.Merge { sigma })

let chase_snapshot_records ~engine ?kb_path ?kb_digest ~budget
    (st : Chase.Variants.engine_state) =
  let d = st.Chase.Variants.state_derivation in
  let snap_index =
    match st.Chase.Variants.state_snapshot with
    | None -> -1
    | Some snap ->
        let rec find i =
          if i < 0 then -1
          else if Atomset.equal (Chase.Derivation.instance_at d i) snap then i
          else find (i - 1)
        in
        find (Chase.Derivation.length d - 1)
  in
  (begin_record ~engine ?kb_path ?kb_digest ~budget ()
  :: List.map
       (fun (s : Chase.Derivation.step) ->
         Record.Snap_step
           {
             index = s.Chase.Derivation.index;
             pi_safe = s.Chase.Derivation.pi_safe;
             sigma = s.Chase.Derivation.simplification;
             pre = Atomset.to_list s.Chase.Derivation.pre_instance;
             inst = Atomset.to_list s.Chase.Derivation.instance;
           })
       (Chase.Derivation.steps d))
  @ [
      Record.Round
        {
          rounds = st.Chase.Variants.state_rounds;
          steps = st.Chase.Variants.state_steps;
          snapshot_index = snap_index;
          term_counter = Term.counter_value ();
          generation_counter = Homo.Instance.generation_counter_value ();
        };
    ]

let checkpoint_hook t ~engine ?kb_path ?kb_digest ~budget () :
    Chase.Variants.engine_state -> unit =
 fun st ->
  maybe_snapshot t (fun () ->
      chase_snapshot_records ~engine ?kb_path ?kb_digest ~budget st)

let import_state t ~engine ?kb_path ?kb_digest ~budget st =
  if not (is_empty t) then
    Error (t.dir ^ ": WAL directory already holds a log")
  else begin
    let records = chase_snapshot_records ~engine ?kb_path ?kb_digest ~budget st in
    let snapshot_lost =
      (* engine-produced states always index their pre-round snapshot at
         some derivation prefix; a state that does not cannot be replayed
         exactly, so refuse rather than resume with a silently different
         discovery delta *)
      st.Chase.Variants.state_snapshot <> None
      && List.exists
           (function
             | Record.Round { snapshot_index; _ } -> snapshot_index < 0
             | _ -> false)
           records
    in
    if snapshot_lost then
      Error
        (t.dir
       ^ ": the state's discovery snapshot matches no derivation prefix; \
          importing it would not resume exactly")
    else begin
      List.iter (append t) records;
      do_sync t;
      Ok ()
    end
  end
