(* Multicore determinism (DESIGN.md §10):

   (a) combinator laws — [Par.map]/[map_reduce] preserve input order,
       [find_first_map] returns the sequential first success even when a
       later task finishes first, exceptions re-raise lowest-index
       first, nested fan-outs degrade instead of deadlocking;
   (b) shared atomics — fresh-variable ids and instance generation
       stamps stay unique when hammered from four raw domains;
   (c) differential runs — every engine (oblivious, skolem, restricted,
       frugal, core) on every workload (staircase, elevator, transitive
       closure, random KBs) produces the *identical* derivation under
       jobs=4 as under jobs=1: same triggers in the same order, equal
       (not merely isomorphic) instances at every step, and equal
       scheduling-independent counters;
   (d) a `Slow stress loop repeating (c) ≥50 times, intended for the CI
       multicore job which also sets OCAMLRUNPARAM=R so that randomised
       hashtable seeding cannot hide iteration-order luck. *)

open Syntax

let atom p args = Atom.make p args

let budget steps = { Chase.Variants.max_steps = steps; max_atoms = 5_000 }

let with_metrics f =
  Obs.Metrics.reset ();
  Obs.Metrics.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.enabled := false) f

(* ------------------------------------------------------------------ *)
(* (a) combinator laws *)

let spin () =
  (* burn enough cycles that a parallel sibling certainly finishes first *)
  let r = ref 0 in
  for _ = 1 to 200_000 do
    incr r
  done;
  ignore (Sys.opaque_identity !r)

let test_map_matches_sequential () =
  let xs = List.init 257 (fun i -> i - 7) in
  let f x = (x * x) - (3 * x) in
  let ambient = Par.jobs () in
  Par.with_jobs 4 (fun () ->
      Alcotest.(check (list int)) "map preserves input order" (List.map f xs)
        (Par.map f xs));
  Alcotest.(check int) "with_jobs restores the width" ambient (Par.jobs ())

let test_find_first_map_sequential_semantics () =
  (* index 3 matches but is slow; later even indices match instantly —
     the lowest index must still win, exactly as List.find_map *)
  let f x =
    if x = 3 then begin
      spin ();
      Some x
    end
    else if x > 3 && x land 1 = 0 then Some x
    else None
  in
  let xs = List.init 64 Fun.id in
  Par.with_jobs 4 (fun () ->
      Alcotest.(check (option int)) "lowest-index success wins"
        (List.find_map f xs) (Par.find_first_map f xs);
      Alcotest.(check (option int)) "no match is None" None
        (Par.find_first_map (fun _ -> None) xs))

let test_map_reduce_input_order () =
  let xs = List.init 40 Fun.id in
  let expected =
    List.fold_left (fun acc x -> acc ^ "," ^ string_of_int x) "" xs
  in
  Par.with_jobs 3 (fun () ->
      Alcotest.(check string) "non-commutative reduce folds in input order"
        expected
        (Par.map_reduce ~map:string_of_int
           ~reduce:(fun acc s -> acc ^ "," ^ s)
           ~init:"" xs))

let test_exceptions_lowest_index () =
  Par.with_jobs 4 (fun () ->
      match
        Par.map
          (fun x -> if x mod 5 = 2 then failwith (string_of_int x) else x)
          (List.init 32 Fun.id)
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure m ->
          Alcotest.(check string) "first failing task re-raised" "2" m)

let test_chunked_map_large () =
  (* 5_000 tasks exceed the [chunk_factor × jobs] chunk budget, so
     multi-item strided chunks carry the batch (DESIGN.md §12): the
     combinator laws — order, coverage, lowest-index exception — must
     hold exactly as on the one-task-per-chunk path *)
  let n = 5_000 in
  let xs = List.init n Fun.id in
  let f x = (7 * x) + (x mod 13) in
  Par.with_jobs 4 (fun () ->
      Alcotest.(check (list int)) "chunked map matches List.map" (List.map f xs)
        (Par.map f xs);
      let hits = Array.make n 0 in
      Par.iter (fun i -> hits.(i) <- hits.(i) + 1) xs;
      Alcotest.(check bool) "chunked iter visits each task exactly once" true
        (Array.for_all (fun c -> c = 1) hits);
      match
        Par.map
          (fun x -> if x >= 100 && x mod 97 = 0 then failwith (string_of_int x) else x)
          xs
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure m ->
          Alcotest.(check string) "lowest failing task re-raised" "194" m)

let test_set_jobs_rejects_nonpositive () =
  Alcotest.check_raises "set_jobs 0 refused"
    (Invalid_argument "Par.set_jobs: jobs must be >= 1") (fun () ->
      Par.set_jobs 0)

let test_nested_fanout_degrades () =
  (* a combinator inside a running batch must fall back to the
     sequential path (no deadlock, same result) *)
  Par.with_jobs 4 (fun () ->
      let inner =
        Par.map (fun row -> Par.map (fun x -> x * row) [ 1; 2; 3 ]) [ 10; 20; 30; 40 ]
      in
      Alcotest.(check (list (list int)))
        "nested map degrades to sequential, same result"
        [ [ 10; 20; 30 ]; [ 20; 40; 60 ]; [ 30; 60; 90 ]; [ 40; 80; 120 ] ]
        inner)

(* ------------------------------------------------------------------ *)
(* (b) shared atomics under raw domains *)

let test_fresh_vars_unique_across_domains () =
  let per = 2_000 in
  let mk () = Array.init per (fun _ -> Term.fresh_var ~hint:"d" ()) in
  let doms = List.init 4 (fun _ -> Domain.spawn mk) in
  let mine = mk () in
  let all =
    Array.to_list mine
    @ List.concat_map (fun d -> Array.to_list (Domain.join d)) doms
  in
  Alcotest.(check int) "fresh-variable ids never collide" (5 * per)
    (List.length (List.sort_uniq Term.compare all))

let test_generations_unique_across_domains () =
  let per = 500 in
  let a = atom "p" [ Term.const "a" ] and b = atom "q" [ Term.const "b" ] in
  let mk () =
    Array.init per (fun _ ->
        let i = Homo.Instance.add_atoms Homo.Instance.empty [ a ] in
        let i = Homo.Instance.add_atoms i [ b ] in
        Homo.Instance.generation i)
  in
  let doms = List.init 4 (fun _ -> Domain.spawn mk) in
  let all = List.concat_map (fun d -> Array.to_list (Domain.join d)) doms in
  Alcotest.(check int) "generation stamps never collide" (4 * per)
    (List.length (List.sort_uniq compare all))

(* ------------------------------------------------------------------ *)
(* (c) differential runs: jobs=4 ≡ jobs=1, byte-for-byte *)

type engine = Restricted | Core | Frugal | Oblivious | Skolem

let engine_name = function
  | Restricted -> "restricted"
  | Core -> "core"
  | Frugal -> "frugal"
  | Oblivious -> "oblivious"
  | Skolem -> "skolem"

(* Counters whose totals are pinned by the determinism discipline.  The
   hom.* counters are deliberately absent: memo hit/miss splits and
   backtrack counts depend on which domain's failure cache a check lands
   in, so only their per-run *effects* (the derivation itself) are
   schedule-independent. *)
let sched_independent =
  [
    "chase.rounds";
    "chase.discoveries";
    "chase.triggers_enumerated";
    "chase.triggers_applied";
    "chase.retractions";
    "chase.egd_merges";
    "core.scoped_searches";
    "core.scoped_certified";
    "core.full_fallbacks";
    "tw.computations";
  ]

let counters_snapshot () =
  List.map
    (fun n ->
      ( n,
        match List.assoc_opt n (Obs.Metrics.counters ()) with
        | Some v -> v
        | None -> 0 ))
    sched_independent

type fingerprint = {
  fp_steps : (string * Atomset.t * Atomset.t) list;
      (* trigger, pre-instance, instance — pre pins the simplification *)
  fp_tail : string; (* outcome / rounds / termination summary *)
  fp_counters : (string * int) list;
}

let fp_equal a b =
  String.equal a.fp_tail b.fp_tail
  && a.fp_counters = b.fp_counters
  && List.length a.fp_steps = List.length b.fp_steps
  && List.for_all2
       (fun (ta, pa, ia) (tb, pb, ib) ->
         String.equal ta tb && Atomset.equal pa pb && Atomset.equal ia ib)
       a.fp_steps b.fp_steps

(* Reset the fresh-variable counter and rebuild the KB inside the run so
   both runs allocate byte-identical nulls; instance equality below is
   Atomset.equal, not isomorphism. *)
let run_fingerprint engine ~jobs mk_kb steps =
  Par.with_jobs jobs (fun () ->
      Term.reset_counter_for_tests ();
      Homo.Hom.memo_clear ();
      let kb = mk_kb () in
      with_metrics (fun () ->
          let fp =
            match engine with
            | Oblivious | Skolem ->
                let run =
                  (match engine with
                  | Oblivious -> Chase.Variants.Baseline.oblivious
                  | _ -> Chase.Variants.Baseline.skolem)
                    ~budget:(budget steps) kb
                in
                let { Chase.Variants.Baseline.instances; terminated; steps; _ } =
                  run
                in
                {
                  fp_steps = List.map (fun i -> ("", i, i)) instances;
                  fp_tail =
                    Printf.sprintf "terminated=%b steps=%d" terminated steps;
                  fp_counters = [];
                }
            | Restricted | Core | Frugal ->
                let run =
                  match engine with
                  | Restricted ->
                      Chase.Variants.restricted ~budget:(budget steps) kb
                  | Core -> Chase.Variants.core ~budget:(budget steps) kb
                  | _ -> Chase.Variants.frugal ~budget:(budget steps) kb
                in
                {
                  fp_steps =
                    List.map
                      (fun (s : Chase.Derivation.step) ->
                        ( (match s.trigger with
                          | None -> "-"
                          | Some tr -> Fmt.str "%a" Chase.Trigger.pp tr),
                          s.pre_instance,
                          s.instance ))
                      (Chase.Derivation.steps run.Chase.Variants.derivation);
                  fp_tail =
                    Printf.sprintf "outcome=%s rounds=%d"
                      (match run.Chase.Variants.outcome with
                      | Chase.Variants.Fixpoint -> "T"
                      | _ -> "B")
                      run.Chase.Variants.rounds;
                  fp_counters = [];
                }
          in
          { fp with fp_counters = counters_snapshot () }))

let workloads () =
  [
    ("staircase", Zoo.Staircase.kb, 18);
    ("elevator", Zoo.Elevator.kb, 14);
    ("transitive-closure", Zoo.Classic.transitive_closure, 40);
    ( "randomkb-101",
      (fun () -> Zoo.Randomkb.generate ~seed:101 Zoo.Randomkb.default),
      20 );
    ( "randomkb-102",
      (fun () -> Zoo.Randomkb.generate ~seed:102 Zoo.Randomkb.default),
      20 );
    ( "randomkb-datalog",
      (fun () -> Zoo.Randomkb.generate ~seed:103 Zoo.Randomkb.datalog),
      25 );
  ]

let test_engine_differential engine () =
  List.iter
    (fun (name, mk, steps) ->
      let s = run_fingerprint engine ~jobs:1 mk steps in
      let p = run_fingerprint engine ~jobs:4 mk steps in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s: jobs=4 identical to jobs=1"
           (engine_name engine) name)
        true (fp_equal s p))
    (workloads ())

let test_parallel_work_lands_on_workers () =
  (* guard against a silently-sequential pool: a jobs=4 run must fan out
     and push payload counter increments onto worker slots *)
  Par.with_jobs 4 (fun () ->
      Term.reset_counter_for_tests ();
      let kb = Zoo.Staircase.kb () in
      with_metrics (fun () ->
          ignore (Chase.Variants.core ~budget:(budget 15) kb);
          let fanouts =
            match List.assoc_opt "par.fanouts" (Obs.Metrics.counters ()) with
            | Some v -> v
            | None -> 0
          in
          Alcotest.(check bool) "fan-outs happened" true (fanouts > 0);
          let off_main =
            List.exists
              (fun (_, cells) ->
                Array.exists (fun v -> v > 0)
                  (Array.sub cells 1 (Array.length cells - 1)))
              (Obs.Metrics.counters_by_slot ())
          in
          Alcotest.(check bool) "some counter incremented on a worker slot"
            true off_main))

(* ------------------------------------------------------------------ *)
(* (d) stress: repeat the differential comparison under domain churn *)

let test_stress_repeated_parallel_runs () =
  let mk_stair () = Zoo.Staircase.kb () in
  let mk_rand () = Zoo.Randomkb.generate ~seed:211 Zoo.Randomkb.default in
  let ref_stair = run_fingerprint Core ~jobs:1 mk_stair 12 in
  let ref_rand = run_fingerprint Restricted ~jobs:1 mk_rand 15 in
  for i = 1 to 50 do
    let engine, mk, steps, reference =
      if i land 1 = 0 then (Core, mk_stair, 12, ref_stair)
      else (Restricted, mk_rand, 15, ref_rand)
    in
    let p = run_fingerprint engine ~jobs:4 mk steps in
    Alcotest.(check bool)
      (Printf.sprintf "stress iteration %d identical" i)
      true (fp_equal reference p)
  done

(* ------------------------------------------------------------------ *)
(* (e) batch laws (DESIGN.md §14): Par.Batch.run over N independent
   jobs is byte-identical to the isolated sequential loop, in
   submission order, at every width — including under fault injection
   and with a seeded cancellation token. *)

let result_line = function
  | Ok s -> "ok:" ^ s
  | Error e -> "err:" ^ Printexc.to_string e

let test_batch_order_and_error_isolation () =
  let tasks =
    Array.init 17 (fun i () ->
        if i = 5 then failwith "task5" else string_of_int (i * i))
  in
  let expected =
    Array.to_list
      (Array.init 17 (fun i ->
           if i = 5 then "err:Failure(\"task5\")"
           else "ok:" ^ string_of_int (i * i)))
  in
  List.iter
    (fun jobs ->
      Par.with_jobs jobs (fun () ->
          Alcotest.(check (list string))
            (Printf.sprintf
               "jobs=%d: results in submission order, failure isolated" jobs)
            expected
            (Array.to_list (Array.map result_line (Par.Batch.run tasks)))))
    [ 1; 4 ]

(* one whole chase per task, KB built inside the task: the batch result
   must equal the handwritten isolated sequential loop — same summary
   strings AND Atomset-equal final instances (not merely isomorphic),
   at jobs=1 and jobs=4 *)
let batch_chase_jobs () =
  [
    (fun () ->
      let r = Chase.Variants.core ~budget:(budget 12) (Zoo.Staircase.kb ()) in
      ("stair", r.Chase.Variants.rounds, (Chase.Derivation.last r.Chase.Variants.derivation).Chase.Derivation.instance));
    (fun () ->
      let r = Chase.Variants.core ~budget:(budget 10) (Zoo.Elevator.kb ()) in
      ("elev", r.Chase.Variants.rounds, (Chase.Derivation.last r.Chase.Variants.derivation).Chase.Derivation.instance));
    (fun () ->
      let kb = Zoo.Randomkb.generate ~seed:311 Zoo.Randomkb.default in
      let r = Chase.Variants.restricted ~budget:(budget 20) kb in
      ("rand", r.Chase.Variants.rounds, (Chase.Derivation.last r.Chase.Variants.derivation).Chase.Derivation.instance));
    (fun () ->
      let kb = Zoo.Randomkb.generate ~seed:312 Zoo.Randomkb.datalog in
      let r = Chase.Variants.restricted ~budget:(budget 20) kb in
      ("data", r.Chase.Variants.rounds, (Chase.Derivation.last r.Chase.Variants.derivation).Chase.Derivation.instance));
  ]

let test_batch_kb_differential () =
  (* the reference: the same per-task isolation, spelled out by hand *)
  let sequential_loop () =
    List.map
      (fun job ->
        Term.reset_counter_for_tests ();
        Homo.Hom.memo_clear ();
        job ())
      (batch_chase_jobs ())
  in
  let expected = sequential_loop () in
  List.iter
    (fun jobs ->
      Par.with_jobs jobs (fun () ->
          let got = Par.Batch.run (Array.of_list (batch_chase_jobs ())) in
          List.iteri
            (fun i (name, rounds, final) ->
              match got.(i) with
              | Error e -> Alcotest.fail (Printexc.to_string e)
              | Ok (name', rounds', final') ->
                  Alcotest.(check string)
                    (Printf.sprintf "jobs=%d task %d name" jobs i)
                    name name';
                  Alcotest.(check int)
                    (Printf.sprintf "jobs=%d task %d rounds" jobs i)
                    rounds rounds';
                  Alcotest.(check bool)
                    (Printf.sprintf
                       "jobs=%d task %d final instance Atomset-equal" jobs i)
                    true
                    (Atomset.equal final final'))
            expected))
    [ 1; 4 ]

let test_batch_fault_same_task_at_every_width () =
  (* par-site hits are decided on the caller in submission order, so
     par:2:cancel must disable the {e second} task at every width *)
  let run jobs =
    Resilience.Fault.set_spec "par:2:cancel";
    Fun.protect ~finally:Resilience.Fault.clear (fun () ->
        Par.with_jobs jobs (fun () ->
            Array.to_list
              (Array.map result_line
                 (Par.Batch.run
                    (Array.init 6 (fun i () -> string_of_int (i + 100)))))))
  in
  let at1 = run 1 and at4 = run 4 in
  Alcotest.(check (list string)) "same task faulted at jobs=1 and jobs=4" at1
    at4;
  Alcotest.(check bool) "task 1 is the faulted one" true
    (String.length (List.nth at1 1) >= 4
    && String.sub (List.nth at1 1) 0 4 = "err:");
  List.iteri
    (fun i line ->
      if i <> 1 then
        Alcotest.(check string)
          (Printf.sprintf "task %d unaffected" i)
          ("ok:" ^ string_of_int (i + 100))
          line)
    at1

let test_batch_nested_degrades () =
  Par.with_jobs 4 (fun () ->
      let outer =
        Par.Batch.run
          (Array.init 3 (fun i () ->
               Par.Batch.run (Array.init 3 (fun j () -> (10 * i) + j))))
      in
      Array.iteri
        (fun i r ->
          match r with
          | Error e -> Alcotest.fail (Printexc.to_string e)
          | Ok inner ->
              Array.iteri
                (fun j r' ->
                  match r' with
                  | Error e -> Alcotest.fail (Printexc.to_string e)
                  | Ok v ->
                      Alcotest.(check int)
                        (Printf.sprintf "nested batch (%d,%d)" i j)
                        ((10 * i) + j)
                        v)
                inner)
        outer)

let test_batch_seeded_token_reaches_tasks () =
  (* a token tripped before submission cancels every task (each task's
     private scope is seeded from the submission's ambient token) *)
  let token = Resilience.Token.create () in
  Resilience.Token.cancel token;
  Par.with_jobs 4 (fun () ->
      Resilience.with_token (Some token) (fun () ->
          Array.iteri
            (fun i r ->
              match r with
              | Error (Resilience.Interrupted _) -> ()
              | Ok _ -> Alcotest.fail (Printf.sprintf "task %d not cancelled" i)
              | Error e -> Alcotest.fail (Printexc.to_string e))
            (Par.Batch.run
               (Array.init 5 (fun _ () ->
                    Resilience.poll ();
                    ())))));
  (* and without a token the same tasks all succeed *)
  Par.with_jobs 4 (fun () ->
      Array.iter
        (fun r ->
          match r with
          | Ok () -> ()
          | Error e -> Alcotest.fail (Printexc.to_string e))
        (Par.Batch.run
           (Array.init 5 (fun _ () ->
                Resilience.poll ();
                ()))))

let test_batch_hot_submission () =
  (* many consecutive small batches across width changes: the worklist
     wake/park protocol must never lose a submission or a result *)
  for round = 1 to 60 do
    let jobs = if round land 1 = 0 then 4 else 1 in
    Par.with_jobs jobs (fun () ->
        let n = 1 + (round mod 7) in
        let got = Par.Batch.run (Array.init n (fun i () -> (round * 100) + i)) in
        Array.iteri
          (fun i r ->
            match r with
            | Ok v ->
                Alcotest.(check int)
                  (Printf.sprintf "round %d task %d" round i)
                  ((round * 100) + i)
                  v
            | Error e -> Alcotest.fail (Printexc.to_string e))
          got)
  done

let suites =
  [
    ( "par.combinators",
      [
        Alcotest.test_case "map matches List.map" `Quick
          test_map_matches_sequential;
        Alcotest.test_case "find_first_map is sequential-first" `Quick
          test_find_first_map_sequential_semantics;
        Alcotest.test_case "map_reduce folds in input order" `Quick
          test_map_reduce_input_order;
        Alcotest.test_case "chunked large fan-out laws" `Quick
          test_chunked_map_large;
        Alcotest.test_case "lowest-index exception re-raised" `Quick
          test_exceptions_lowest_index;
        Alcotest.test_case "set_jobs rejects n < 1" `Quick
          test_set_jobs_rejects_nonpositive;
        Alcotest.test_case "nested fan-out degrades" `Quick
          test_nested_fanout_degrades;
      ] );
    ( "par.atomics",
      [
        Alcotest.test_case "fresh vars unique across domains" `Quick
          test_fresh_vars_unique_across_domains;
        Alcotest.test_case "generation stamps unique across domains" `Quick
          test_generations_unique_across_domains;
      ] );
    ( "par.differential",
      [
        Alcotest.test_case "oblivious: jobs=4 ≡ jobs=1" `Quick
          (test_engine_differential Oblivious);
        Alcotest.test_case "skolem: jobs=4 ≡ jobs=1" `Quick
          (test_engine_differential Skolem);
        Alcotest.test_case "restricted: jobs=4 ≡ jobs=1" `Quick
          (test_engine_differential Restricted);
        Alcotest.test_case "frugal: jobs=4 ≡ jobs=1" `Quick
          (test_engine_differential Frugal);
        Alcotest.test_case "core: jobs=4 ≡ jobs=1" `Quick
          (test_engine_differential Core);
        Alcotest.test_case "work lands on worker slots" `Quick
          test_parallel_work_lands_on_workers;
      ] );
    ( "par.batch",
      [
        Alcotest.test_case "submission order + error isolation" `Quick
          test_batch_order_and_error_isolation;
        Alcotest.test_case "N chases ≡ isolated sequential loop" `Quick
          test_batch_kb_differential;
        Alcotest.test_case "par fault hits the same task at every width"
          `Quick test_batch_fault_same_task_at_every_width;
        Alcotest.test_case "nested batch degrades" `Quick
          test_batch_nested_degrades;
        Alcotest.test_case "seeded token cancels every task" `Quick
          test_batch_seeded_token_reaches_tasks;
        Alcotest.test_case "hot submission across width changes" `Quick
          test_batch_hot_submission;
      ] );
    ( "par.stress",
      [
        Alcotest.test_case "50 repeated parallel runs" `Slow
          test_stress_repeated_parallel_runs;
      ] );
  ]
