(* Ontology-mediated query answering with a guarded (hence bts) ontology:
   the chase never terminates, yet querying stays decidable — the setting
   Section 4's "many concrete fragments of high practical relevance" refers
   to.  Also demonstrates the first-order bridge: exporting the entailment
   problem in TPTP for an external prover.

   Run with:  dune exec examples/ontology_qa.exe *)

open Syntax

let source =
  {|
  % A tiny university ontology (guarded existential rules).
  @facts
  professor(ada).
  teaches(ada, logic101).

  @rules
  % Every professor teaches some course.
  [t1] teaches(P, C), course(C) :- professor(P).
  % Whatever is taught is a course.
  [t2] course(C) :- teaches(P, C).
  % Every course is taught by some professor.
  [t3] teaches(Q, C), professor(Q) :- course(C).
  % Teaching staff are employees.
  [t4] employee(P) :- professor(P).
  % Every employee has a mentor, who is an employee too.
  [t5] mentor(E, M), employee(M) :- employee(E).

  @queries
  ? :- employee(ada).
  ? :- teaches(P, C), course(C).
  ? :- professor(P), course(P).
|}

let () =
  let doc =
    match Dlgp.parse_string source with
    | Ok d -> d
    | Error e -> Fmt.failwith "%a" Dlgp.pp_error e
  in
  let kb = Dlgp.kb_of_document doc in

  (* the ontology is guarded: bts, so CQ answering is decidable although
     the chase runs forever (t1/t3 keep inventing entities) *)
  let report = Rclasses.analyze (Kb.rules kb) in
  Fmt.pr "guarded: %b  ⟹ bts ⟹ decidable CQ entailment@."
    report.Rclasses.guarded;
  let run =
    Chase.Variants.restricted
      ~budget:{ Chase.Variants.max_steps = 40; max_atoms = 1_000 }
      kb
  in
  Fmt.pr "restricted chase: %s after %d steps (t5 invents mentors forever)@."
    (match run.Chase.Variants.outcome with
    | Chase.Variants.Fixpoint -> "terminated"
    | _ -> "budget exhausted")
    (Chase.Derivation.length run.Chase.Variants.derivation - 1);
  (* ... but with bounded treewidth, as guardedness promises *)
  let profile =
    Corechase.Probes.tw_profile
      ~budget:{ Chase.Variants.max_steps = 30; max_atoms = 1_000 }
      ~variant:`Restricted kb
  in
  Fmt.pr "chase treewidth stays ≤ %d@.@." profile.Corechase.Probes.max_seen;

  (* decide the queries *)
  List.iter
    (fun q ->
      let verdict =
        Corechase.Entailment.decide
          ~budget:{ Chase.Variants.max_steps = 60; max_atoms = 1_000 }
          ~max_domain:3 kb q
      in
      Fmt.pr "%a  ⟶  %a@." Kb.Query.pp q Corechase.Entailment.pp_verdict verdict)
    doc.Dlgp.queries;

  (* the first-order bridge: hand the first query to any TPTP prover *)
  match doc.Dlgp.queries with
  | q :: _ ->
      Fmt.pr "@.TPTP export of the first entailment problem:@.%s@."
        (Fol.tptp_problem ~name:"university" kb q)
  | [] -> ()
