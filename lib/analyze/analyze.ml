module Ranks = Ranks
module Linearcheck = Linearcheck
module Grdcycles = Grdcycles

open Syntax

type verdict = Unknown | Bts | Terminates_restricted | Terminates_all

let verdict_name = function
  | Unknown -> "unknown"
  | Bts -> "bts"
  | Terminates_restricted -> "terminates-restricted"
  | Terminates_all -> "terminates-all"

let verdict_rank = function
  | Unknown -> 0
  | Bts -> 1
  | Terminates_restricted -> 2
  | Terminates_all -> 3

type scope = Universal | Instance

type criterion = { name : string; holds : bool; scope : scope; detail : string }

type report = {
  classes : Rclasses.report;
  criteria : criterion list;
  verdict : verdict;
}

let default_budget = Chase.Variants.{ max_steps = 500; max_atoms = 5_000 }

(* The analyze.* counters are registered lazily so that binaries which
   never run the analyzer keep their pinned metric tables unchanged
   (Metrics.pp_table prints every registered counter, zeros included). *)
let m_runs = lazy (Obs.Metrics.counter "analyze.runs")
let m_probes = lazy (Obs.Metrics.counter "analyze.probes")
let m_certified = lazy (Obs.Metrics.counter "analyze.certified")
let m_routed = lazy (Obs.Metrics.counter "analyze.routed")

let join a b = if verdict_rank a >= verdict_rank b then a else b

let analyze ?(budget = default_budget) kb =
  Obs.Metrics.incr (Lazy.force m_runs);
  let rules = Kb.rules kb in
  let classes = Rclasses.analyze rules in
  let has_egds = Kb.egds kb <> [] in
  let criteria = ref [] and verdict = ref Unknown in
  let crit ?(contributes = Unknown) name scope holds detail =
    criteria := { name; holds; scope; detail } :: !criteria;
    if holds then verdict := join !verdict contributes
  in
  (* Syntactic, universal-scope criteria. *)
  crit "classes:datalog" Universal
    ~contributes:(if has_egds then Unknown else Terminates_all)
    (classes.Rclasses.datalog && not has_egds)
    (if classes.Rclasses.datalog then "all rules are existential-free"
     else "some rule has existential variables");
  let acyclic =
    List.filter_map
      (fun (name, b) -> if b then Some name else None)
      [
        ("weakly-acyclic", classes.Rclasses.weakly_acyclic);
        ("jointly-acyclic", classes.Rclasses.jointly_acyclic);
        ("agrd", classes.Rclasses.agrd_sound);
      ]
  in
  crit "classes:acyclicity" Universal
    ~contributes:(if has_egds then Unknown else Terminates_all)
    (acyclic <> [])
    (if acyclic = [] then "no acyclicity class holds"
     else String.concat " " acyclic);
  let grd = Grdcycles.diagnose rules in
  crit "grd:datalog-cycles" Universal
    ~contributes:(if has_egds then Unknown else Terminates_all)
    (grd.Grdcycles.datalog_cycles_only)
    (match grd.Grdcycles.cyclic with
    | [] -> "dependency graph is acyclic"
    | sccs when grd.Grdcycles.datalog_cycles_only ->
        Printf.sprintf "%d cyclic scc(s), all datalog" (List.length sccs)
    | sccs ->
        let existential scc =
          List.exists
            (fun name ->
              List.exists
                (fun r -> Rule.name r = name && not (Rule.is_datalog r))
                rules)
            scc
        in
        let offending =
          match List.find_opt existential sccs with
          | Some scc -> scc
          | None -> List.hd sccs
        in
        Printf.sprintf "cyclic scc {%s} contains an existential rule%s"
          (String.concat " " offending)
          (if grd.Grdcycles.existential_frozen_cycle then
             " (also cyclic in the sound frozen graph)"
           else ""));
  (* also capped with EGDs: the treewidth-boundedness results are for
     TGD chases, and equality merges can defeat them *)
  crit "classes:guardedness" Universal
    ~contributes:(if has_egds then Unknown else Bts)
    (Rclasses.implies_bts classes)
    (if Rclasses.implies_bts classes then
       String.concat " "
         (List.filter_map
            (fun (name, b) -> if b then Some name else None)
            [
              ("linear", classes.Rclasses.linear);
              ("guarded", classes.Rclasses.guarded);
              ("frontier-guarded", classes.Rclasses.frontier_guarded);
              ("frontier-one", classes.Rclasses.frontier_one);
              ("weakly-guarded", classes.Rclasses.weakly_guarded);
              ("weakly-frontier-guarded", classes.Rclasses.weakly_frontier_guarded);
            ])
     else "no guardedness class holds");
  (* Semantic probes — skipped when EGDs are present (the termination
     certificates below only cover TGD chases). *)
  if has_egds then
    crit "egds:present" Universal true
      "EGDs present: semantic probes skipped, verdict capped at unknown"
  else begin
    let critical = Corechase.Probes.critical_instance rules in
    let skolem =
      Chase.Variants.Baseline.skolem ~budget (Kb.make ~facts:critical ~rules)
    in
    Obs.Metrics.incr (Lazy.force m_probes);
    crit "critical:skolem-fixpoint" Universal ~contributes:Terminates_all
      skolem.Chase.Variants.Baseline.terminated
      (if skolem.Chase.Variants.Baseline.terminated then
         Printf.sprintf "skolem chase fixpoint on the critical instance (%d steps)"
           skolem.Chase.Variants.Baseline.steps
       else
         Printf.sprintf "no fixpoint within budget (%s)"
           (Resilience.outcome_name skolem.Chase.Variants.Baseline.outcome));
    let lin = Linearcheck.check ~budget kb in
    Obs.Metrics.add (Lazy.force m_probes) lin.Linearcheck.probes;
    crit "linear:atomic-probes" Universal lin.Linearcheck.certified
      (match lin.Linearcheck.why_not with
      | Some why -> why
      | None ->
          if lin.Linearcheck.certified then
            Printf.sprintf "all %d atomic instances reach fixpoint"
              lin.Linearcheck.probes
          else
            Printf.sprintf "probe(s) missed fixpoint: %s"
              (String.concat " " lin.Linearcheck.failures));
    let ranks = Ranks.probe ~budget kb in
    Obs.Metrics.incr (Lazy.force m_probes);
    crit "ranks:instance-fixpoint" Instance ~contributes:Terminates_restricted
      ranks.Ranks.fixpoint
      (if ranks.Ranks.fixpoint then
         Fmt.str "restricted fixpoint at rank %d (%a)" ranks.Ranks.max_rank
           Ranks.pp_frontier ranks.Ranks.frontier
       else
         Printf.sprintf "no fixpoint within budget (%s), rank reached %d"
           (Resilience.outcome_name ranks.Ranks.outcome)
           ranks.Ranks.max_rank)
  end;
  let report = { classes; criteria = List.rev !criteria; verdict = !verdict } in
  if verdict_rank report.verdict >= verdict_rank Terminates_restricted then
    Obs.Metrics.incr (Lazy.force m_certified);
  report

let route_of_report kb report =
  Obs.Metrics.incr (Lazy.force m_routed);
  if Kb.egds kb <> [] then
    (Chase.Engine_core, "EGDs present: core engine with EGD-aware handling")
  else if report.classes.Rclasses.datalog then
    (Chase.Engine_datalog, "existential-free ruleset: semi-naive saturation")
  else if verdict_rank report.verdict >= verdict_rank Terminates_restricted then
    ( Chase.Engine_restricted,
      Printf.sprintf "termination certified (%s): restricted chase suffices"
        (verdict_name report.verdict) )
  else
    ( Chase.Engine_core,
      Printf.sprintf "no termination certificate (%s): core chase + robust aggregation"
        (verdict_name report.verdict) )

let route ?budget kb = fst (route_of_report kb (analyze ?budget kb))

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%a@," Rclasses.pp_report r.classes;
  Fmt.pf ppf "criteria@,";
  List.iter
    (fun c ->
      Fmt.pf ppf "  %-3s %-24s %-9s %s@,"
        (if c.holds then "yes" else "no")
        c.name
        (match c.scope with Universal -> "universal" | Instance -> "instance")
        c.detail)
    r.criteria;
  Fmt.pf ppf "verdict: %s@]" (verdict_name r.verdict)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json kb r =
  let choice, reason = route_of_report kb r in
  let criterion c =
    Printf.sprintf
      "{\"name\":\"%s\",\"holds\":%b,\"scope\":\"%s\",\"detail\":\"%s\"}"
      (json_escape c.name) c.holds
      (match c.scope with Universal -> "universal" | Instance -> "instance")
      (json_escape c.detail)
  in
  let classes =
    let flag name b = Printf.sprintf "\"%s\":%b" name b in
    String.concat ","
      [
        flag "datalog" r.classes.Rclasses.datalog;
        flag "linear" r.classes.Rclasses.linear;
        flag "guarded" r.classes.Rclasses.guarded;
        flag "frontier_guarded" r.classes.Rclasses.frontier_guarded;
        flag "frontier_one" r.classes.Rclasses.frontier_one;
        flag "weakly_guarded" r.classes.Rclasses.weakly_guarded;
        flag "weakly_frontier_guarded" r.classes.Rclasses.weakly_frontier_guarded;
        flag "weakly_acyclic" r.classes.Rclasses.weakly_acyclic;
        flag "jointly_acyclic" r.classes.Rclasses.jointly_acyclic;
        flag "agrd_sound" r.classes.Rclasses.agrd_sound;
      ]
  in
  Printf.sprintf
    "{\"verdict\":\"%s\",\"classes\":{%s},\"criteria\":[%s],\"route\":{\"engine\":\"%s\",\"reason\":\"%s\"}}"
    (verdict_name r.verdict) classes
    (String.concat "," (List.map criterion r.criteria))
    (Chase.engine_name choice) (json_escape reason)
