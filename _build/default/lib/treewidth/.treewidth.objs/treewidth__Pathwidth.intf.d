lib/treewidth/pathwidth.mli: Graph Syntax
