(** The chase variants (Sections 1 and 3).

    {b Restricted (standard) chase} — applies only unsatisfied triggers, no
    simplification ([σ_i] = identity): a monotonic Definition-1 derivation.

    {b Core chase} — applies unsatisfied triggers and retracts to a core;
    the cadence is configurable: retract after every rule application
    (each [σ_i] produces a core, the paper's primary reading) or after
    every saturation round (Deutsch–Nash–Remmel's parallel formulation;
    still a core chase sequence since cores recur at finite distance).

    {b Scheduling} — both engines are round-based and breadth-first: the
    unsatisfied triggers of the current instance are collected, then
    applied in order, each re-checked for satisfaction just before
    application (an earlier application may have satisfied it).  In the
    limit this yields fair derivations; on finite prefixes
    {!Derivation.fairness_debt} quantifies the remainder.

    {b Oblivious / semi-oblivious (skolem) chase} — these apply triggers
    regardless of satisfaction, so they are *not* Definition-1 derivations;
    they are provided as the classical monotone baselines and return plain
    instance sequences. *)

open Syntax

type budget = {
  max_steps : int;  (** rule applications (trigger firings) *)
  max_atoms : int;  (** stop when the current instance exceeds this size *)
}

val default_budget : budget

(** Why a run stopped — the structured {!Resilience.outcome}, re-exported
    so [Variants.Fixpoint] etc. remain usable without opening that
    library (DESIGN.md §11).  Every engine catches [Stack_overflow],
    [Out_of_memory] and {!Resilience.Interrupted} at its loop boundary
    and reports them here, returning the last consistent instance. *)
type outcome = Resilience.outcome =
  | Fixpoint  (** fixpoint: no unsatisfied trigger remains *)
  | Step_budget  (** [max_steps] rule applications were performed *)
  | Atom_budget  (** the instance outgrew [max_atoms] *)
  | Deadline  (** the run's wall-clock deadline passed *)
  | Resource of Resilience.resource
      (** resource exhaustion caught at the engine boundary *)
  | Cancelled  (** the run's token was cancelled *)

type run = { derivation : Derivation.t; outcome : outcome; rounds : int }

type cadence = Every_application | Every_round

(** A resumable engine state, captured by the [?checkpoint] hook after
    every {e completed} round (mid-round states are never offered: the
    active-trigger snapshot and its σ-traces would not survive
    serialization, see DESIGN.md §11) and accepted back via [?resume].
    Resuming an engine from a state it checkpointed — with the same KB,
    the same [Term] freshness-counter value, and the remaining budget —
    continues the run {e exactly}: derivation steps and final instance
    equal the uninterrupted run's. *)
type engine_state = {
  state_derivation : Derivation.t;
  state_steps : int;  (** rule applications performed so far *)
  state_rounds : int;  (** completed rounds *)
  state_snapshot : Atomset.t option;
      (** the pre-round discovery snapshot, i.e. the atomset the next
          round's delta is computed against *)
}

(** Per-step journal events (DESIGN.md §16): the [?checkpoint] hook
    generalized to step granularity, consumed by the WAL sink in
    [lib/storage].  Events are emitted in commit order, immediately
    after the engine's [d]/[idx] pair advances, so an append-only log
    of them replays to the engine's state at any prefix; a sink that
    raises is caught at the engine's resilience boundary like any
    other interruption. *)
type journal_event =
  | J_start of { sigma : Subst.t }  (** σ₀ of the start step *)
  | J_step of {
      index : int;
      pi_safe : Subst.t;
      sigma : Subst.t;
      added : Atom.t list;  (** the genuinely new atoms of the firing *)
    }
  | J_round_sigma of { index : int; sigma : Subst.t }
      (** a round-end simplification replaced step [index]'s σ *)
  | J_round of { rounds : int; steps : int; snapshot_index : int }
      (** completed-round boundary; [snapshot_index] is the derivation
          index whose instance equals the pre-round discovery snapshot *)
  | J_merge of { sigma : Subst.t }
      (** an EGD unification ({!Egds.run} only; not resumable) *)

type journal = journal_event -> unit

val restricted :
  ?budget:budget ->
  ?token:Resilience.Token.t ->
  ?resume:engine_state ->
  ?checkpoint:(engine_state -> unit) ->
  ?journal:journal ->
  Kb.t ->
  run
(** Run the restricted chase from [K].  [token] arms a wall-clock
    deadline / cancellation for the run (polled at every round and step,
    inside homomorphism search, and on pool workers); [checkpoint]
    receives the engine state after each completed round; [resume]
    continues from such a state instead of starting at [F_0]. *)

val core :
  ?budget:budget -> ?cadence:cadence -> ?simplify_start:bool ->
  ?token:Resilience.Token.t -> ?resume:engine_state ->
  ?checkpoint:(engine_state -> unit) -> ?journal:journal -> Kb.t -> run
(** Run the core chase.  [simplify_start] (default [true]) applies [σ_0] =
    retraction-to-core to the initial facts, matching [F_0 = σ_0(F)].
    [token]/[resume]/[checkpoint] as in {!restricted}. *)

val frugal :
  ?budget:budget -> ?token:Resilience.Token.t -> ?resume:engine_state ->
  ?checkpoint:(engine_state -> unit) -> ?journal:journal -> Kb.t -> run
(** The frugal chase (Konstantinidis–Ambite; the paper's Section 3 notes
    that Definition 1 covers it): after each rule application, the
    simplification [σ_i] folds {e only the freshly created nulls} back
    into older terms where possible, leaving the older part untouched.
    Cheaper than a full core retraction, stronger than the restricted
    chase; sits strictly between the two in redundancy removal. *)

val stream :
  variant:[ `Restricted | `Core | `Frugal ] -> Kb.t -> Derivation.t Seq.t
(** The lazy chase: a sequence of growing derivation prefixes, one element
    per rule application — the computational reading of the paper's
    infinite sequences [(F_i)_{i∈ℕ}].  The sequence is infinite for
    non-terminating KBs (consume with [Seq.take]); it ends after the
    element whose last instance is a fixpoint.  Scheduling is the same
    round-based fair strategy as the eager engines. *)

(** The standard chase with equality-generating dependencies.  EGD steps
    unify terms across the whole instance, so they are neither monotonic
    nor Definition-1 simplifications; the engine is documented as the
    classical TGD+EGD chase (Deutsch–Nash–Remmel / Fagin et al.), kept
    separate from the paper's derivations. *)
module Egds : sig
  type outcome =
    | Terminated  (** fixpoint, all TGDs and EGDs satisfied *)
    | Stopped of Resilience.outcome
        (** the run stopped early — budget, deadline, cancellation or
            caught resource exhaustion; the trace ends with the last
            consistent instance *)
    | Failed of Egd.t
        (** hard failure: the EGD forced two distinct constants equal —
            the KB has no model *)

  type run = {
    trace : Atomset.t list;  (** instance after each phase *)
    outcome : outcome;
    steps : int;  (** TGD applications + EGD unifications *)
  }

  val run :
    ?budget:budget -> ?variant:[ `Restricted | `Core ] ->
    ?token:Resilience.Token.t -> ?journal:journal -> Kb.t -> run
  (** Alternate EGD saturation (unifying violated equalities, preferring
      constants and [<_X]-smaller variables as representatives) with TGD
      rounds of the chosen variant (default [`Restricted]). *)

  val violations : Egd.t list -> Atomset.t -> (Egd.t * Term.t * Term.t) list
  (** The (egd, image of left, image of right) triples with distinct
      images, for inspection. *)
end

(** Monotone baselines outside Definition 1. *)
module Baseline : sig
  type trace = {
    instances : Atomset.t list;
    terminated : bool;
        (** [outcome = Fixpoint]; kept for existing callers *)
    outcome : Resilience.outcome;
    steps : int;
  }

  val oblivious : ?budget:budget -> ?token:Resilience.Token.t -> Kb.t -> trace
  (** Fires every trigger exactly once (per (rule, body-homomorphism)
      pair), regardless of satisfaction. *)

  val skolem : ?budget:budget -> ?token:Resilience.Token.t -> Kb.t -> trace
  (** Semi-oblivious: fires at most one trigger per (rule, frontier
      restriction) pair — equivalent to skolemisation. *)
end
