lib/syntax/term.mli: Fmt
