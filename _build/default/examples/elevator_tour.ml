(* A guided tour of the inflating elevator (Section 7 of the paper): the
   KB that HAS a treewidth-1 universal model, while every core chase
   sequence inflates beyond any treewidth bound (Proposition 8,
   Corollary 1) — the converse failure to the staircase's.

   Run with:  dune exec examples/elevator_tour.exe *)

open Syntax

let tw a = fst (Treewidth.best_effort a)

let () =
  let kb = Zoo.Elevator.kb () in
  Fmt.pr "The inflating elevator K_v:@.%a@.@." Kb.pp kb;

  (* 1. The spine I^v* is a universal model of treewidth 1. *)
  Fmt.pr "The spine I^v* (universal model, Definition 11):@.";
  List.iter
    (fun n ->
      let sp = Zoo.Elevator.spine_prefix ~cols:n in
      Fmt.pr "  prefix cols=%-2d  %3d atoms  treewidth %d@." n
        (Atomset.cardinal sp.Zoo.Elevator.atoms)
        (tw sp.Zoo.Elevator.atoms))
    [ 2; 5; 10 ];
  Fmt.pr "Treewidth 1 at every prefix length (Proposition 7).@.@.";

  (* 2. The full universal model I^v, in contrast, fattens out. *)
  Fmt.pr "The full chase limit I^v (Definition 10):@.";
  List.iter
    (fun n ->
      let s = Zoo.Elevator.universal_model_prefix ~cols:n in
      Fmt.pr "  prefix cols=%-2d  %3d atoms  treewidth %d@." n
        (Atomset.cardinal s.Zoo.Elevator.atoms)
        (tw s.Zoo.Elevator.atoms))
    [ 2; 4; 6 ];
  Fmt.pr "@.";

  (* 3. The growing cores I^v_n that every core chase must pass through. *)
  Fmt.pr "The growing cores I^v_n (Definition 12):@.";
  List.iter
    (fun n ->
      let fc = Zoo.Elevator.frontier_core ~cols:n in
      Fmt.pr "  I^v_%-2d  %3d atoms  core: %-5b  treewidth %d@." n
        (Atomset.cardinal fc.Zoo.Elevator.atoms)
        (Homo.Core.is_core fc.Zoo.Elevator.atoms)
        (tw fc.Zoo.Elevator.atoms))
    [ 1; 2; 3; 4 ];
  Fmt.pr "@.";

  (* 4. And indeed: the core chase's instances get ever wider.  The
     minimal (core) representation of the chase state cannot use the
     skinny spine, because the spine's h-cycle-free unfolding is not yet
     entailed at any finite stage. *)
  let cc =
    Chase.Variants.core
      ~budget:{ Chase.Variants.max_steps = 70; max_atoms = 3_000 }
      kb
  in
  Fmt.pr "Core chase treewidth series (Corollary 1):@.  ";
  List.iter
    (fun st ->
      if st.Chase.Derivation.index mod 5 = 0 then
        Fmt.pr "%d " (tw st.Chase.Derivation.instance))
    (Chase.Derivation.steps cc.Chase.Variants.derivation);
  Fmt.pr "@.@.The elevator shows the second failure direction: a@.";
  Fmt.pr "treewidth-finite universal model exists, yet NO core chase@.";
  Fmt.pr "sequence is treewidth-bounded — the two properties of Figure 1@.";
  Fmt.pr "are independent.@."
