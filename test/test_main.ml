(* Umbrella test runner; suites are added per library as they land.
   Fan-outs are forced past the oversubscription clamp so the
   jobs=4 ≡ jobs=1 differential layers exercise real cross-domain
   execution even on 1-core CI machines. *)
let () = Corechase.Par.force_parallel true

let () = Alcotest.run "corechase" (Test_syntax.suites @ Test_homo.suites @ Test_treewidth.suites @ Test_chase.suites @ Test_zoo.suites @ Test_core.suites @ Test_rclasses.suites @ Test_integration.suites @ Test_experiments.suites @ Test_repl.suites @ Test_egd.suites @ Test_datalog.suites @ Test_incremental.suites @ Test_props.suites @ Test_obs.suites @ Test_scoped_core.suites @ Test_par.suites @ Test_resilience.suites @ Test_analyze.suites @ Test_server.suites @ Test_storage.suites)
