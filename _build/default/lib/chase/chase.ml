(** Chase engines for existential rules (Sections 2–3 of the paper).

    Entry module of the [chase] library: re-exports {!Trigger},
    {!Derivation} and {!Variants}, and offers a uniform runner. *)

module Trigger = Trigger
module Derivation = Derivation
module Datalog = Datalog
module Variants = Variants

open Syntax

type variant = Oblivious | Skolem | Restricted | Frugal | Core

let variant_name = function
  | Oblivious -> "oblivious"
  | Skolem -> "skolem"
  | Restricted -> "restricted"
  | Frugal -> "frugal"
  | Core -> "core"

type report = {
  variant : variant;
  terminated : bool;
  steps : int;  (** rule applications performed *)
  final : Atomset.t;  (** last instance computed *)
  sizes : int list;  (** instance sizes along the run, [F_0 …] *)
}

(** Run any variant under a budget and report uniformly.  For [Restricted]
    and [Core] the run is a Definition-1 derivation; use
    {!Variants.restricted} / {!Variants.core} directly to inspect it. *)
let run ?budget variant kb =
  match variant with
  | Oblivious ->
      let t = Variants.Baseline.oblivious ?budget kb in
      {
        variant;
        terminated = t.Variants.Baseline.terminated;
        steps = t.Variants.Baseline.steps;
        final = List.nth t.Variants.Baseline.instances
            (List.length t.Variants.Baseline.instances - 1);
        sizes = List.map Atomset.cardinal t.Variants.Baseline.instances;
      }
  | Skolem ->
      let t = Variants.Baseline.skolem ?budget kb in
      {
        variant;
        terminated = t.Variants.Baseline.terminated;
        steps = t.Variants.Baseline.steps;
        final = List.nth t.Variants.Baseline.instances
            (List.length t.Variants.Baseline.instances - 1);
        sizes = List.map Atomset.cardinal t.Variants.Baseline.instances;
      }
  | Restricted | Frugal ->
      let r =
        (match variant with
        | Frugal -> Variants.frugal ?budget kb
        | _ -> Variants.restricted ?budget kb)
      in
      let d = r.Variants.derivation in
      {
        variant;
        terminated = r.Variants.outcome = Variants.Terminated;
        steps = Derivation.length d - 1;
        final = (Derivation.last d).Derivation.instance;
        sizes =
          List.map
            (fun st -> Atomset.cardinal st.Derivation.instance)
            (Derivation.steps d);
      }
  | Core ->
      let r = Variants.core ?budget kb in
      let d = r.Variants.derivation in
      {
        variant;
        terminated = r.Variants.outcome = Variants.Terminated;
        steps = Derivation.length d - 1;
        final = (Derivation.last d).Derivation.instance;
        sizes =
          List.map
            (fun st -> Atomset.cardinal st.Derivation.instance)
            (Derivation.steps d);
      }

(** Does the instance satisfy every rule (i.e. is it a model of the
    ruleset)?  An instance is a model of a rule iff every trigger for it is
    satisfied in it. *)
let is_model_of_rules rules inst =
  Trigger.unsatisfied_triggers rules inst = []

(** Is the instance a model of the KB: receives the facts homomorphically
    and satisfies every rule. *)
let is_model kb inst =
  Homo.Hom.maps_to (Kb.facts kb) inst && is_model_of_rules (Kb.rules kb) inst
