examples/ontology_qa.ml: Chase Corechase Dlgp Fmt Fol Kb List Rclasses Syntax
