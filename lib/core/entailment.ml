open Syntax

type verdict = Entailed | Not_entailed | Unknown of string

let pp_verdict ppf = function
  | Entailed -> Fmt.string ppf "entailed"
  | Not_entailed -> Fmt.string ppf "not entailed"
  | Unknown why -> Fmt.pf ppf "unknown (%s)" why

let holds_in q inst = Homo.Hom.maps_to (Kb.Query.atoms q) inst

let holds_in_indexed q indexed = Homo.Hom.exists (Kb.Query.atoms q) indexed

(* Scan a derivation's elements against a per-element check, indexing each
   instance exactly once (the indexed form is shared by every query /
   disjunct probed against that element). *)
let exists_step d check =
  List.exists
    (fun st ->
      check (Homo.Instance.of_atomset st.Chase.Derivation.instance))
    (Chase.Derivation.steps d)

(* The engines catch deadline/cancellation at their own boundary, but the
   hom searches probing the derivation elements afterwards run outside it
   and re-raise [Resilience.Interrupted]; fold that into the verdict so
   no entailment entry point lets an armed token crash the caller. *)
let guard_verdict f =
  try f ()
  with e -> (
    match Resilience.outcome_of_exn e with
    | Some o -> Unknown (Resilience.outcome_name o)
    | None -> raise e)

let stopped_why outcome =
  Fmt.str "chase stopped (%s) without finding the query"
    (Resilience.outcome_name outcome)

let via_chase ?(variant = `Core) ?budget kb q =
  guard_verdict @@ fun () ->
  let run =
    match variant with
    | `Restricted -> Chase.Variants.restricted ?budget kb
    | `Core -> Chase.Variants.core ?budget kb
  in
  let d = run.Chase.Variants.derivation in
  let hit = exists_step d (holds_in_indexed q) in
  if hit then Entailed
  else if run.Chase.Variants.outcome = Chase.Variants.Fixpoint then
    Not_entailed
  else Unknown (stopped_why run.Chase.Variants.outcome)

let via_countermodel ~max_domain kb q =
  match Modelfinder.find_model_upto ~max_domain ~forbid:q kb with
  | Some _ -> Not_entailed
  | None -> Unknown "no countermodel within the domain budget"

type answers = Complete of Term.t list list | Sound of Term.t list list

let certain_answers ?(variant = `Core) ?budget kb q =
  let avars = Kb.Query.answer_vars q in
  if avars = [] then
    invalid_arg "Entailment.certain_answers: Boolean query";
  let run =
    match variant with
    | `Restricted -> Chase.Variants.restricted ?budget kb
    | `Core -> Chase.Variants.core ?budget kb
  in
  let d = run.Chase.Variants.derivation in
  (* collect over every derivation element: each is universal for K, so a
     constant tuple found anywhere is certain; a tuple can be present early
     and collapsed later, so the union over elements is still sound *)
  match
    List.fold_left
      (fun acc st ->
        List.fold_left
          (fun acc t -> if List.mem t acc then acc else t :: acc)
          acc
          (Homo.Cq.certain_answers ~answer_vars:avars q
             st.Chase.Derivation.instance))
      []
      (Chase.Derivation.steps d)
    |> List.sort_uniq (List.compare Term.compare)
  with
  | tuples ->
      if run.Chase.Variants.outcome = Chase.Variants.Fixpoint then
        Complete tuples
      else Sound tuples
  | exception e -> (
      (* interrupted while scanning: the tuples found so far are still
         certain, but completeness is off the table *)
      match Resilience.outcome_of_exn e with
      | Some _ -> Sound []
      | None -> raise e)

let decide ?(variant = `Core) ?budget ?(max_domain = 4) kb q =
  guard_verdict @@ fun () ->
  match via_chase ~variant ?budget kb q with
  | (Entailed | Not_entailed) as v -> v
  | Unknown why1 -> (
      match via_countermodel ~max_domain kb q with
      | Not_entailed -> Not_entailed
      | Unknown why2 -> Unknown (why1 ^ "; " ^ why2)
      | Entailed -> assert false)

(* Snapshot-based entailment (DESIGN.md §15): the server chases a KB
   once and serves many queries from the stamped result.  Soundness of
   the final-instance-only checks: every derivation element maps
   homomorphically into the final one (monotone growth for restricted /
   datalog, the fold endomorphisms for core and frugal), so [Q ↪ F_i]
   for any [i] implies [Q ↪ F_final] — probing the final element alone
   decides exactly what [via_chase]'s every-element scan decides, and a
   constant answer tuple found anywhere persists into the final element
   (homomorphisms fix constants).  The verdicts — including the Unknown
   message strings — therefore match a fresh {!decide} on the same KB
   and budget byte for byte, which the server differential suite pins. *)
let decide_in_snapshot ?(max_domain = 4) ~outcome indexed kb q =
  guard_verdict @@ fun () ->
  if holds_in_indexed q indexed then Entailed
  else if Resilience.terminated outcome then Not_entailed
  else
    let why1 = stopped_why outcome in
    match via_countermodel ~max_domain kb q with
    | Not_entailed -> Not_entailed
    | Unknown why2 -> Unknown (why1 ^ "; " ^ why2)
    | Entailed -> assert false

let certain_answers_in_snapshot ~outcome final q =
  let avars = Kb.Query.answer_vars q in
  if avars = [] then
    invalid_arg "Entailment.certain_answers_in_snapshot: Boolean query";
  match
    Homo.Cq.certain_answers ~answer_vars:avars q final
    |> List.sort_uniq (List.compare Term.compare)
  with
  | tuples ->
      if Resilience.terminated outcome then Complete tuples else Sound tuples
  | exception e -> (
      match Resilience.outcome_of_exn e with
      | Some _ -> Sound []
      | None -> raise e)

let inconsistent ?budget ?(max_domain = 4) ~constraints kb =
  let verdicts = List.map (fun c -> decide ?budget ~max_domain kb c) constraints in
  if List.exists (fun v -> v = Entailed) verdicts then Entailed
  else if List.for_all (fun v -> v = Not_entailed) verdicts then Not_entailed
  else Unknown "some constraint checks exhausted their budget"

let ucq_holds_in u inst =
  let indexed = Homo.Instance.of_atomset inst in
  List.exists (fun q -> holds_in_indexed q indexed) (Ucq.disjuncts u)

let decide_ucq ?budget ?(max_domain = 4) kb u =
  guard_verdict @@ fun () ->
  let run = Chase.Variants.core ?budget kb in
  let d = run.Chase.Variants.derivation in
  let hit =
    exists_step d (fun indexed ->
        List.exists (fun q -> holds_in_indexed q indexed) (Ucq.disjuncts u))
  in
  if hit then Entailed
  else if run.Chase.Variants.outcome = Chase.Variants.Fixpoint then
    Not_entailed
  else
    match
      Modelfinder.find_model_upto ~max_domain ~forbid_all:(Ucq.disjuncts u) kb
    with
    | Some _ -> Not_entailed
    | None -> Unknown "chase budget exhausted; no countermodel either"
