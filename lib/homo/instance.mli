(** Indexed instances: an {!Syntax.Atomset.t} wrapped with access structures
    for conjunctive matching.

    Three indexes are maintained, with cached bucket cardinalities:
    - by predicate: all atoms with a given predicate symbol;
    - by (predicate, position, term): all atoms with a given term at a given
      argument position;
    - by term: all atoms containing a given term at any position (used to
      locate the atoms a substitution can rewrite).

    Instances are immutable persistent values and {e incrementally
    updatable}: chase engines build the index once per run and patch it
    per step with {!add_atoms} / {!apply_subst} instead of rebuilding it
    per satisfaction check (see DESIGN.md §7 and the [abl:index]
    ablation bench). *)

open Syntax

type t

val empty : t

val of_atomset : Atomset.t -> t

val add_atoms : t -> Atom.t list -> t
(** Insert atoms, updating every index; atoms already present are
    ignored.  [of_atomset s ≡ add_atoms empty (Atomset.to_list s)]. *)

val remove_atoms : t -> Atom.t list -> t
(** Remove atoms, updating every index; absent atoms are ignored. *)

val apply_subst : Subst.t -> t -> t
(** [apply_subst σ ins] is the instance of [σ(atomset ins)].  Only the
    atoms containing a term of [σ]'s domain are touched (found through
    the by-term buckets); all others keep their index entries, so a
    simplification step costs time proportional to the rewritten part,
    not to the whole instance. *)

val atomset : t -> Atomset.t

val cardinal : t -> int

val mem : t -> Atom.t -> bool

val atoms_with_pred : t -> string -> Atom.t list
(** All atoms with the given predicate (empty list if none). *)

val atoms_with_pred_pos_term : t -> string -> int -> Term.t -> Atom.t list
(** All atoms with the given term at the given 0-based position. *)

val atoms_with_term : t -> Term.t -> Atom.t list
(** All atoms containing the given term at some position. *)

val candidates : t -> Atom.t -> Subst.t -> Atom.t list
(** [candidates ins pattern σ]: a superset of the atoms of [ins] that the
    [pattern] atom can map to under an extension of [σ].  Uses the most
    selective index available given the pattern's constants and
    [σ]-bound variables; callers still verify full consistency. *)

val candidate_count : t -> Atom.t -> Subst.t -> int
(** Length of {!candidates}, read off the cached bucket cardinalities
    without walking any atom list. *)

val invariants_ok : t -> bool
(** Every index bucket (membership {e and} cached cardinality) agrees
    with a fresh rebuild from the atomset — the differential oracle for
    the incremental-update property tests. *)

val pp : t Fmt.t

val use_indexes : bool ref
(** Ablation switch ([abl:index]): when [false], {!candidates} ignores the
    indexes and returns the whole atom list (the matcher still rejects
    non-matching atoms, so results are unchanged — only slower).  Default
    [true]. *)
