module M = Map.Make (String)

type t = int M.t

let empty = M.empty

let declare p ar s =
  match M.find_opt p s with
  | Some ar' when ar <> ar' ->
      invalid_arg
        (Printf.sprintf "Schema.declare: %s used at arities %d and %d" p ar' ar)
  | _ -> M.add p ar s

let arity p s = M.find_opt p s

let mem p s = M.mem p s

let preds s = M.bindings s

let declare_res p ar s =
  match M.find_opt p s with
  | Some ar' when ar <> ar' ->
      Error
        (Printf.sprintf "predicate %s used at arities %d and %d" p ar' ar)
  | _ -> Ok (M.add p ar s)

let fold_result f init xs =
  List.fold_left
    (fun acc x -> Result.bind acc (fun s -> f x s))
    (Ok init) xs

let of_atoms atoms s =
  fold_result (fun a s -> declare_res (Atom.pred a) (Atom.arity a) s) s atoms

let of_atomset aset = of_atoms (Atomset.to_list aset) empty

let of_kb kb =
  let atoms_of_rule r =
    Atomset.to_list (Rule.body r) @ Atomset.to_list (Rule.head r)
  in
  Result.bind
    (of_atoms (Atomset.to_list (Kb.facts kb)) empty)
    (fun s -> of_atoms (List.concat_map atoms_of_rule (Kb.rules kb)) s)

let check_atom s a =
  match M.find_opt (Atom.pred a) s with
  | None -> Error (Printf.sprintf "undeclared predicate %s" (Atom.pred a))
  | Some ar when ar <> Atom.arity a ->
      Error
        (Printf.sprintf "predicate %s declared with arity %d, used with %d"
           (Atom.pred a) ar (Atom.arity a))
  | Some _ -> Ok ()

let check_atomset s aset =
  fold_result (fun a () -> check_atom s a) () (Atomset.to_list aset)

let check_rule s r =
  Result.bind (check_atomset s (Rule.body r)) (fun () ->
      check_atomset s (Rule.head r))

let check_kb s kb =
  Result.bind (check_atomset s (Kb.facts kb)) (fun () ->
      fold_result (fun r () -> check_rule s r) () (Kb.rules kb))

let union s1 s2 =
  fold_result (fun (p, ar) s -> declare_res p ar s) s1 (M.bindings s2)

let pp ppf s =
  Fmt.pf ppf "{@[%a@]}"
    Fmt.(list ~sep:comma (pair ~sep:(any "/") string int))
    (M.bindings s)
