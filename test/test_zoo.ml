(* Tests for lib/zoo: the steepening staircase (Section 6) and the
   inflating elevator (Section 7), checking the paper's propositions on
   finite prefixes. *)

open Syntax
module TW = Treewidth

let atom p args = Atom.make p args

(* The 1-element collapse model of K_h: f,c,h-loop,v-loop on one node. *)
let tiny_staircase_model () =
  let u = Term.const "u" in
  Atomset.of_list
    [ atom "f" [ u ]; atom "c" [ u ]; atom "h" [ u; u ]; atom "v" [ u; u ] ]

(* The 1-element collapse model of K_v. *)
let tiny_elevator_model () =
  let u = Term.const "u" in
  Atomset.of_list
    [
      atom "c" [ u ]; atom "d" [ u ]; atom "f" [ u ]; atom "h" [ u; u ];
      atom "v" [ u; u ];
    ]

(* Unsatisfied triggers whose body image touches only the given frontier
   terms are expected on truncated prefixes of infinite models. *)
let unsatisfied_confined_to kb inst frontier =
  let module TS = Set.Make (Term) in
  let fr = TS.of_list frontier in
  List.for_all
    (fun tr ->
      let image =
        Subst.apply (Chase.Trigger.mapping tr)
          (Rule.body (Chase.Trigger.rule tr))
      in
      List.exists (fun t -> TS.mem t fr) (Atomset.terms image))
    (Chase.Trigger.unsatisfied_triggers (Kb.rules kb) inst)

(* ------------------------------------------------------------------ *)
(* Staircase: structure sanity *)

let test_staircase_kb_schema () =
  let kb = Zoo.Staircase.kb () in
  (match Schema.of_kb kb with
  | Ok s ->
      Alcotest.(check (option int)) "h binary" (Some 2) (Schema.arity "h" s);
      Alcotest.(check (option int)) "f unary" (Some 1) (Schema.arity "f" s)
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "4 rules" 4 (List.length (Kb.rules kb));
  Alcotest.(check int) "2 facts" 2 (Atomset.cardinal (Kb.facts kb))

let test_staircase_prefix_shape () =
  let s = Zoo.Staircase.universal_model_prefix ~cols:3 in
  (* cells: column i has i+2 cells: 2+3+4+5 = 14 terms *)
  Alcotest.(check int) "term count" 14 (List.length (Atomset.terms s.Zoo.Staircase.atoms));
  Alcotest.(check bool) "cell (3,4) exists" true (s.Zoo.Staircase.term 3 4 <> None);
  Alcotest.(check bool) "cell (3,5) absent" true (s.Zoo.Staircase.term 3 5 = None)

let test_staircase_facts_embed () =
  let kb = Zoo.Staircase.kb () in
  let s = Zoo.Staircase.universal_model_prefix ~cols:2 in
  Alcotest.(check bool) "F_h ↪ P^h_2" true
    (Homo.Hom.maps_to (Kb.facts kb) s.Zoo.Staircase.atoms)

let test_staircase_tiny_model_is_model () =
  let kb = Zoo.Staircase.kb () in
  Alcotest.(check bool) "collapse model satisfies K_h" true
    (Chase.is_model kb (tiny_staircase_model ()))

let test_staircase_prefix_frontier_only () =
  (* the prefix is a model except at its frontier (last column) *)
  let kb = Zoo.Staircase.kb () in
  let s = Zoo.Staircase.universal_model_prefix ~cols:3 in
  let frontier =
    List.filter_map (fun j -> s.Zoo.Staircase.term 3 j) [ 0; 1; 2; 3; 4 ]
  in
  Alcotest.(check bool) "unsatisfied triggers touch last column" true
    (unsatisfied_confined_to kb s.Zoo.Staircase.atoms frontier)

let test_staircase_column_is_core () =
  let s = Zoo.Staircase.universal_model_prefix ~cols:4 in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "C^h_%d is a core" k)
        true
        (Homo.Core.is_core (Zoo.Staircase.column s k)))
    [ 1; 2; 3 ]

let test_staircase_step_retracts_to_next_column () =
  let s = Zoo.Staircase.universal_model_prefix ~cols:4 in
  let k = 2 in
  let step = Zoo.Staircase.step_atomset s k in
  let core, retr = Homo.Core.core_with_retraction step in
  Alcotest.(check bool) "retraction valid" true (Subst.is_retraction_of step retr);
  (* The paper: S^h_k retracts to a core isomorphic to C^h_{k+1} with its
     top cell, i.e. the (k+1)-column part of the step. *)
  let expected =
    Atomset.induced
      (List.filter_map (fun j -> s.Zoo.Staircase.term (k + 1) j)
         (List.init (k + 2) Fun.id))
      s.Zoo.Staircase.atoms
  in
  Alcotest.(check bool) "core ≅ next column" true
    (Homo.Morphism.isomorphic core expected)

let test_staircase_step_treewidth_2 () =
  let s = Zoo.Staircase.universal_model_prefix ~cols:4 in
  List.iter
    (fun k ->
      match TW.exact (Zoo.Staircase.step_atomset s k) with
      | Some w ->
          Alcotest.(check bool)
            (Printf.sprintf "tw(S^h_%d) ≤ 2" k)
            true (w <= 2)
      | None -> Alcotest.fail "exact treewidth must be available")
    [ 0; 1; 2; 3 ]

let test_staircase_column_treewidth_1 () =
  let s = Zoo.Staircase.universal_model_prefix ~cols:4 in
  Alcotest.(check (option int)) "tw(C^h_3) = 1" (Some 1)
    (TW.exact (Zoo.Staircase.column s 3))

let test_staircase_prefix_contains_grids () =
  (* Proposition 5's grid witness: P^h_{2n} contains an n×n grid *)
  let s = Zoo.Staircase.universal_model_prefix ~cols:6 in
  (match Zoo.Staircase.grid_naming s ~n:3 with
  | None -> Alcotest.fail "naming must exist for cols=6, n=3"
  | Some naming ->
      Alcotest.(check bool) "3x3 grid by naming" true
        (TW.Grid.check naming 3 s.Zoo.Staircase.atoms));
  Alcotest.(check bool) "2x2 grid found by search" true
    (TW.Grid.contains ~n:2 s.Zoo.Staircase.atoms)

let test_staircase_prefix_treewidth_grows () =
  let s = Zoo.Staircase.universal_model_prefix ~cols:6 in
  match TW.exact s.Zoo.Staircase.atoms with
  | Some w -> Alcotest.(check bool) "tw(P^h_6) ≥ 3" true (w >= 3)
  | None -> Alcotest.fail "exact must be available (35 terms)"

let test_staircase_infinite_column_prefix () =
  let kb = Zoo.Staircase.kb () in
  let c = Zoo.Staircase.infinite_column_prefix ~height:5 in
  (* treewidth 1 (a path with loops) *)
  Alcotest.(check (option int)) "tw(Ĩ^h prefix) = 1" (Some 1)
    (TW.exact c.Zoo.Staircase.atoms);
  (* truncated only at the top cell *)
  let frontier = [ Option.get (c.Zoo.Staircase.term 0 5) ] in
  Alcotest.(check bool) "model except at the top" true
    (unsatisfied_confined_to kb c.Zoo.Staircase.atoms frontier)

let test_staircase_column_prefix_finitely_universal_evidence () =
  (* Ĩ^h's finite prefixes map into the staircase prefix (they are
     universal: here we check against the two models we have) *)
  let c = Zoo.Staircase.infinite_column_prefix ~height:3 in
  let p = Zoo.Staircase.universal_model_prefix ~cols:5 in
  Alcotest.(check bool) "column prefix ↪ P^h_5" true
    (Homo.Hom.maps_to c.Zoo.Staircase.atoms p.Zoo.Staircase.atoms);
  Alcotest.(check bool) "column prefix ↪ tiny model" true
    (Homo.Hom.maps_to c.Zoo.Staircase.atoms (tiny_staircase_model ()))

let test_staircase_no_backward_hom () =
  (* P^h_4 contains a 2x2 grid, the column does not: no hom can exist from
     the grid-bearing prefix into the loop-free-in-v column?  (It can:
     h-loops absorb grids!)  The real separation is via v-paths: the
     staircase prefix maps into a sufficiently TALL column, but a SHORT
     column cannot host its longest v-path. *)
  let p = Zoo.Staircase.universal_model_prefix ~cols:4 in
  let short = Zoo.Staircase.infinite_column_prefix ~height:2 in
  Alcotest.(check bool) "P^h_4 does not map into a height-2 column" false
    (Homo.Hom.maps_to p.Zoo.Staircase.atoms short.Zoo.Staircase.atoms);
  let tall = Zoo.Staircase.infinite_column_prefix ~height:6 in
  Alcotest.(check bool) "P^h_4 maps into a height-6 column" true
    (Homo.Hom.maps_to p.Zoo.Staircase.atoms tall.Zoo.Staircase.atoms)

(* ------------------------------------------------------------------ *)
(* Staircase: chase behaviour (Propositions 3 and 4) *)

let test_staircase_restricted_chase_builds_staircase () =
  let kb = Zoo.Staircase.kb () in
  let run =
    Chase.Variants.restricted
      ~budget:{ Chase.Variants.max_steps = 30; max_atoms = 2000 }
      kb
  in
  let d = run.Chase.Variants.derivation in
  Alcotest.(check bool) "does not terminate" true
    (match run.Chase.Variants.outcome with
     | Chase.Variants.Step_budget | Chase.Variants.Atom_budget -> true
     | _ -> false);
  (* every F_i maps into a sufficiently large staircase prefix *)
  let p = Zoo.Staircase.universal_model_prefix ~cols:12 in
  let final = (Chase.Derivation.last d).Chase.Derivation.instance in
  Alcotest.(check bool) "F_last ↪ P^h_12" true
    (Homo.Hom.maps_to final p.Zoo.Staircase.atoms)

let test_staircase_core_chase_bounded_treewidth () =
  (* Proposition 4: a core chase sequence uniformly treewidth-bounded by 2 *)
  let kb = Zoo.Staircase.kb () in
  let run =
    Chase.Variants.core
      ~budget:{ Chase.Variants.max_steps = 40; max_atoms = 2000 }
      kb
  in
  let d = run.Chase.Variants.derivation in
  List.iter
    (fun st ->
      let w, exact = TW.best_effort st.Chase.Derivation.instance in
      Alcotest.(check bool)
        (Printf.sprintf "tw(F_%d) ≤ 2 (exact=%b)" st.Chase.Derivation.index
           exact)
        true (w <= 2))
    (Chase.Derivation.steps d)

let test_staircase_core_chase_stays_small () =
  (* the core chase keeps instances column-sized while the restricted chase
     accumulates the whole staircase *)
  let kb = Zoo.Staircase.kb () in
  let budget = { Chase.Variants.max_steps = 30; max_atoms = 2000 } in
  let cc = Chase.Variants.core ~budget kb in
  let rc = Chase.Variants.restricted ~budget kb in
  let last r =
    Atomset.cardinal
      (Chase.Derivation.last r.Chase.Variants.derivation).Chase.Derivation.instance
  in
  Alcotest.(check bool) "core stays leaner" true (last cc < last rc)

let test_staircase_natural_aggregation_of_core_chase_has_grid () =
  (* the futility of core computation for the natural aggregation:
     D*_c = I^h accumulates grids even though every F_i is thin *)
  let kb = Zoo.Staircase.kb () in
  let run =
    Chase.Variants.core
      ~budget:{ Chase.Variants.max_steps = 45; max_atoms = 2000 }
      kb
  in
  let agg = Chase.Derivation.natural_aggregation run.Chase.Variants.derivation in
  Alcotest.(check bool) "2x2 grid inside D*" true (TW.Grid.contains ~n:2 agg)

(* ------------------------------------------------------------------ *)
(* Elevator: structure sanity *)

let test_elevator_kb_schema () =
  let kb = Zoo.Elevator.kb () in
  Alcotest.(check int) "7 rules" 7 (List.length (Kb.rules kb));
  Alcotest.(check int) "4 facts" 4 (Atomset.cardinal (Kb.facts kb));
  match Schema.of_kb kb with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m

let test_elevator_prefix_shape () =
  let s = Zoo.Elevator.universal_model_prefix ~cols:3 in
  (* column 0: 1 cell; column i≥1: i+2 cells: 1+3+4+5 = 13 *)
  Alcotest.(check int) "term count" 13
    (List.length (Atomset.terms s.Zoo.Elevator.atoms));
  Alcotest.(check bool) "top (3,6)" true (s.Zoo.Elevator.term 3 6 <> None);
  Alcotest.(check bool) "(3,1) absent" true (s.Zoo.Elevator.term 3 1 = None)

let test_elevator_facts_embed () =
  let kb = Zoo.Elevator.kb () in
  let s = Zoo.Elevator.universal_model_prefix ~cols:2 in
  Alcotest.(check bool) "F_v ↪ I^v prefix" true
    (Homo.Hom.maps_to (Kb.facts kb) s.Zoo.Elevator.atoms);
  let sp = Zoo.Elevator.spine_prefix ~cols:2 in
  Alcotest.(check bool) "F_v ↪ I^v* prefix" true
    (Homo.Hom.maps_to (Kb.facts kb) sp.Zoo.Elevator.atoms)

let test_elevator_tiny_model () =
  let kb = Zoo.Elevator.kb () in
  Alcotest.(check bool) "collapse model satisfies K_v" true
    (Chase.is_model kb (tiny_elevator_model ()))

let test_elevator_spine_is_treewidth_1 () =
  let sp = Zoo.Elevator.spine_prefix ~cols:6 in
  Alcotest.(check (option int)) "tw(I^v* prefix) = 1" (Some 1)
    (TW.exact sp.Zoo.Elevator.atoms)

let test_elevator_spine_frontier_only () =
  let kb = Zoo.Elevator.kb () in
  let sp = Zoo.Elevator.spine_prefix ~cols:4 in
  let frontier = [ Option.get (sp.Zoo.Elevator.term 4 0) ] in
  Alcotest.(check bool) "model except at last top" true
    (unsatisfied_confined_to kb sp.Zoo.Elevator.atoms frontier)

let test_elevator_prefix_frontier_only () =
  let kb = Zoo.Elevator.kb () in
  let s = Zoo.Elevator.universal_model_prefix ~cols:3 in
  let frontier =
    List.filter_map (fun j -> s.Zoo.Elevator.term 3 j) (List.init 7 Fun.id)
  in
  Alcotest.(check bool) "unsatisfied triggers touch last column" true
    (unsatisfied_confined_to kb s.Zoo.Elevator.atoms frontier)

let test_elevator_hom_equivalence_spine_vs_full () =
  let s = Zoo.Elevator.universal_model_prefix ~cols:4 in
  let sp = Zoo.Elevator.spine_prefix ~cols:4 in
  Alcotest.(check bool) "spine ↪ full" true
    (Homo.Hom.maps_to sp.Zoo.Elevator.atoms s.Zoo.Elevator.atoms);
  Alcotest.(check bool) "full ↪ spine (columns collapse onto tops)" true
    (Homo.Hom.maps_to s.Zoo.Elevator.atoms sp.Zoo.Elevator.atoms)

let test_elevator_prefix_treewidth_grows () =
  let tw_at n =
    let s = Zoo.Elevator.universal_model_prefix ~cols:n in
    fst (TW.best_effort s.Zoo.Elevator.atoms)
  in
  let w3 = tw_at 3 and w6 = tw_at 6 in
  Alcotest.(check bool) "tw grows with columns" true (w6 > w3);
  Alcotest.(check bool) "tw(I^v prefix 6) ≥ 3" true (w6 >= 3)

let test_elevator_frontier_core_is_core () =
  List.iter
    (fun n ->
      let fc = Zoo.Elevator.frontier_core ~cols:n in
      Alcotest.(check bool)
        (Printf.sprintf "I^v_%d is a core" n)
        true
        (Homo.Core.is_core fc.Zoo.Elevator.atoms))
    [ 0; 1; 2; 3 ]

let test_elevator_frontier_core_grid () =
  (* Proposition 8.2: I^v_n contains a (⌊n/3⌋+1)-grid; n = 3 → 2x2 *)
  let fc = Zoo.Elevator.frontier_core ~cols:3 in
  Alcotest.(check bool) "2x2 grid in I^v_3" true
    (TW.Grid.contains ~n:2 fc.Zoo.Elevator.atoms)

let test_elevator_frontier_core_treewidth_grows () =
  let tw n =
    fst (TW.best_effort (Zoo.Elevator.frontier_core ~cols:n).Zoo.Elevator.atoms)
  in
  Alcotest.(check bool) "tw(I^v_4) > tw(I^v_1)" true (tw 4 > tw 1)

(* ------------------------------------------------------------------ *)
(* Elevator: chase behaviour (Proposition 8.4 / Corollary 1 prefix view) *)

let test_elevator_core_chase_treewidth_grows () =
  let kb = Zoo.Elevator.kb () in
  let run =
    Chase.Variants.core
      ~budget:{ Chase.Variants.max_steps = 60; max_atoms = 3000 }
      kb
  in
  let series =
    List.map
      (fun st -> fst (TW.best_effort st.Chase.Derivation.instance))
      (Chase.Derivation.steps run.Chase.Variants.derivation)
  in
  let max_tw = List.fold_left max 0 series in
  Alcotest.(check bool) "core-chase treewidth reaches ≥ 2" true (max_tw >= 2);
  (* and the tail stays high: the last elements are at the max region *)
  let tail = List.filteri (fun i _ -> i >= List.length series - 5) series in
  Alcotest.(check bool) "treewidth does not fall back to 1 at the end" true
    (List.for_all (fun w -> w >= max_tw - 1) tail)

let test_elevator_restricted_chase_consistent_with_generator () =
  let kb = Zoo.Elevator.kb () in
  let run =
    Chase.Variants.restricted
      ~budget:{ Chase.Variants.max_steps = 40; max_atoms = 3000 }
      kb
  in
  let final =
    (Chase.Derivation.last run.Chase.Variants.derivation).Chase.Derivation.instance
  in
  (* every chase prefix maps into the collapse model and into a long spine *)
  Alcotest.(check bool) "F_last ↪ tiny model" true
    (Homo.Hom.maps_to final (tiny_elevator_model ()));
  let sp = Zoo.Elevator.spine_prefix ~cols:25 in
  Alcotest.(check bool) "F_last ↪ spine prefix" true
    (Homo.Hom.maps_to final sp.Zoo.Elevator.atoms)

(* ------------------------------------------------------------------ *)
(* Classic rulesets *)

let test_classic_bts_not_fes () =
  let kb = Zoo.Classic.bts_not_fes () in
  let run =
    Chase.Variants.core
      ~budget:{ Chase.Variants.max_steps = 25; max_atoms = 500 }
      kb
  in
  Alcotest.(check bool) "core chase diverges" true
    (match run.Chase.Variants.outcome with
     | Chase.Variants.Step_budget | Chase.Variants.Atom_budget -> true
     | _ -> false);
  (* but treewidth stays 1: it is bts *)
  List.iter
    (fun st ->
      Alcotest.(check bool) "tw ≤ 1" true
        (fst (TW.best_effort st.Chase.Derivation.instance) <= 1))
    (Chase.Derivation.steps run.Chase.Variants.derivation)

let test_classic_fes_not_bts () =
  let kb = Zoo.Classic.fes_not_bts () in
  let run =
    Chase.Variants.core
      ~budget:{ Chase.Variants.max_steps = 400; max_atoms = 4000 }
      kb
  in
  Alcotest.(check bool) "core chase terminates (fes)" true
    (run.Chase.Variants.outcome = Chase.Variants.Fixpoint)

let test_classic_all_named_well_formed () =
  List.iter
    (fun (name, kb) ->
      match Schema.of_kb kb with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "%s: %s" name m)
    (Zoo.Classic.all_named ())

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "zoo.staircase.structure",
      [
        tc "kb schema" test_staircase_kb_schema;
        tc "prefix shape" test_staircase_prefix_shape;
        tc "facts embed" test_staircase_facts_embed;
        tc "tiny model is model" test_staircase_tiny_model_is_model;
        tc "prefix model except frontier" test_staircase_prefix_frontier_only;
        tc "columns are cores" test_staircase_column_is_core;
        tc "step retracts to next column" test_staircase_step_retracts_to_next_column;
        tc "tw(step) ≤ 2" test_staircase_step_treewidth_2;
        tc "tw(column) = 1" test_staircase_column_treewidth_1;
        tc "prefix contains grids (Prop 5)" test_staircase_prefix_contains_grids;
        tc "prefix treewidth grows" test_staircase_prefix_treewidth_grows;
        tc "infinite column prefix" test_staircase_infinite_column_prefix;
        tc "column finitely universal evidence"
          test_staircase_column_prefix_finitely_universal_evidence;
        tc "v-path forces column height" test_staircase_no_backward_hom;
      ] );
    ( "zoo.staircase.chase",
      [
        tc "restricted builds staircase (Prop 3)"
          test_staircase_restricted_chase_builds_staircase;
        tc "core chase tw ≤ 2 (Prop 4)" test_staircase_core_chase_bounded_treewidth;
        tc "core chase stays lean" test_staircase_core_chase_stays_small;
        tc "natural aggregation grows grids"
          test_staircase_natural_aggregation_of_core_chase_has_grid;
      ] );
    ( "zoo.elevator.structure",
      [
        tc "kb schema" test_elevator_kb_schema;
        tc "prefix shape" test_elevator_prefix_shape;
        tc "facts embed" test_elevator_facts_embed;
        tc "tiny model is model" test_elevator_tiny_model;
        tc "tw(I^v*) = 1 (Prop 7)" test_elevator_spine_is_treewidth_1;
        tc "spine model except frontier" test_elevator_spine_frontier_only;
        tc "prefix model except frontier" test_elevator_prefix_frontier_only;
        tc "spine ≡hom full prefix" test_elevator_hom_equivalence_spine_vs_full;
        tc "I^v prefix treewidth grows" test_elevator_prefix_treewidth_grows;
        tc "I^v_n are cores (Prop 8.1)" test_elevator_frontier_core_is_core;
        tc "I^v_n contains grids (Prop 8.2)" test_elevator_frontier_core_grid;
        tc "tw(I^v_n) grows" test_elevator_frontier_core_treewidth_grows;
      ] );
    ( "zoo.elevator.chase",
      [
        tc "core chase treewidth grows (Cor 1)"
          test_elevator_core_chase_treewidth_grows;
        tc "restricted consistent with generator"
          test_elevator_restricted_chase_consistent_with_generator;
      ] );
    ( "zoo.classic",
      [
        tc "bts-not-fes behaviour" test_classic_bts_not_fes;
        tc "fes-not-bts behaviour" test_classic_fes_not_bts;
        tc "all well-formed" test_classic_all_named_well_formed;
      ] );
  ]
