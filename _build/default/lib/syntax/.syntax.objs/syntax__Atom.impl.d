lib/syntax/atom.ml: Fmt Hashtbl List String Term
