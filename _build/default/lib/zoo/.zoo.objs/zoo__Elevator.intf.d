lib/zoo/elevator.mli: Atomset Kb Syntax Term
