(* The serving transport (DESIGN.md §15): a single-threaded select loop
   over listening sockets and connections, the in-process loopback
   client, and the socket client the cram layer uses.

   The loop is the only writer of all server state.  Parallelism enters
   in exactly one place: the leading ENTAILs of every connection's
   request queue run as one [Par.Batch] across the domain pool, each
   task under its connection's own cancellation token — many snapshot
   readers, never concurrent with a chase writer, which runs inline on
   the loop (and is thereby the only code that may stream trace-teed
   [event] frames, since trace emission is main-domain-only). *)

module Protocol = Protocol
module Session = Session
module Queryeval = Queryeval
module P = Protocol
module Trace = Obs.Trace
module Metrics = Obs.Metrics

type endpoint = Unix_sock of string | Tcp of string * int

let endpoint_of_string s =
  let fail () =
    Error (Fmt.str "bad endpoint %S (expected unix:PATH or tcp:HOST:PORT)" s)
  in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some i -> (
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match scheme with
      | "unix" -> if rest = "" then fail () else Ok (Unix_sock rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> fail ()
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when p >= 0 && p < 65536 && host <> "" ->
                  Ok (Tcp (host, p))
              | _ -> fail ()))
      | _ -> fail ())

let endpoint_to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Fmt.str "tcp:%s:%d" h p

type config = {
  endpoints : endpoint list;
  drain_timeout : int;
  ready_file : string option;
  quiet : bool;
  wal : Storage.Wal.t option;
}

let default_config =
  {
    endpoints = [];
    drain_timeout = 5;
    ready_file = None;
    quiet = false;
    wal = None;
  }

(* Build the session registry, replaying the WAL if it holds a prior
   daemon's log (DESIGN.md §16). *)
let restore_sessions wal =
  let sessions = Session.create ?wal () in
  match wal with
  | Some w when not (Storage.Wal.is_empty w) ->
      Result.bind (Storage.Wal.records w) (fun records ->
          Result.map
            (fun () -> sessions)
            (Session.restore sessions records))
  | _ -> Ok sessions

(* --- shutdown plumbing --------------------------------------------- *)

(* Signal handlers cannot reach the loop's state record, so the drain
   flag and the token group live at module level (one [serve] at a time
   per process, as the mli says). *)
let shutting = Atomic.make false

(* the drain deadline has passed: stop being graceful — cancel tokens
   (done by the alarm) and let the loop force-close any connection that
   still cannot flush, so a peer that stopped reading cannot keep the
   daemon alive forever *)
let drain_expired = Atomic.make false

let active_group : Resilience.Group.t option ref = ref None

let drain_s = ref 5

let cancel_in_flight () =
  match !active_group with
  | Some g -> Resilience.Group.cancel_all g
  | None -> ()

let drain_deadline_hit () =
  cancel_in_flight ();
  Atomic.set drain_expired true

let request_shutdown ?drain () =
  let d = match drain with Some d -> d | None -> !drain_s in
  Atomic.set shutting true;
  if d <= 0 then drain_deadline_hit () else ignore (Unix.alarm d)

(* --- shared frame-level helpers ------------------------------------ *)

let bye = { P.kind = P.K_bye; payload = "" }

(* the two-frame close-out after a framing violation *)
let violation msg =
  [ P.err_frame P.Protocol_violation msg; bye ]

let bad_frame_kind k =
  Fmt.str "expected a req frame, got %s" (P.kind_name k)

(* --- metrics / trace ----------------------------------------------- *)

let m_conns = lazy (Metrics.counter "serve.conns")

let m_accept_failures = lazy (Metrics.counter "serve.accept_failures")

let conn_ev action conn =
  if Trace.enabled () then Trace.emit (Trace.Conn_event { action; conn })

(* --- loopback ------------------------------------------------------ *)

module Loopback = struct
  type t = {
    sessions : Session.t;
    mutable inbuf : string;
    out : Buffer.t;
    mutable greeted : bool;
    mutable closed : bool;
  }

  let create ?wal () =
    match restore_sessions wal with
    | Error m -> failwith ("wal recovery: " ^ m)
    | Ok sessions ->
        {
          sessions;
          inbuf = "";
          out = Buffer.create 256;
          greeted = false;
          closed = false;
        }

  let greeting _ = P.hello_frame

  let closed t = t.closed

  let request t req =
    let frames = ref [] in
    let final =
      Session.exec t.sessions ~emit:(fun f -> frames := f :: !frames) req
    in
    List.rev (final :: !frames)

  let push t f =
    List.iter (fun f -> Buffer.add_string t.out (P.encode f)) (P.clamp f)

  let raw t bytes =
    if t.closed then ""
    else begin
      if not t.greeted then begin
        t.greeted <- true;
        push t P.hello_frame
      end;
      t.inbuf <- t.inbuf ^ bytes;
      let rec go pos =
        if t.closed || pos >= String.length t.inbuf then
          t.inbuf <-
            String.sub t.inbuf pos (String.length t.inbuf - pos)
        else
          match P.decode ~pos t.inbuf with
          | Ok (f, n) ->
              (if f.P.kind <> P.K_req then begin
                 List.iter (push t) (violation (bad_frame_kind f.P.kind));
                 t.closed <- true
               end
               else
                 match P.parse_request f.P.payload with
                 | Error m -> push t (P.err_frame P.Bad_request m)
                 | Ok req ->
                     List.iter (push t) (request t req);
                     if req = P.Shutdown then begin
                       push t bye;
                       t.closed <- true
                     end);
              go (pos + n)
          | Error P.Truncated ->
              t.inbuf <- String.sub t.inbuf pos (String.length t.inbuf - pos)
          | Error e ->
              List.iter (push t) (violation (Fmt.str "%a" P.pp_error e));
              t.closed <- true;
              t.inbuf <- ""
      in
      go 0;
      let reply = Buffer.contents t.out in
      Buffer.clear t.out;
      reply
    end
end

(* --- daemon connections -------------------------------------------- *)

type conn = {
  id : int;
  fd : Unix.file_descr;
  mutable inbuf : string;
  outbuf : Buffer.t;
  token : Resilience.Token.t;
  pending : (P.request, P.frame) result Queue.t;
  mutable closing : bool;  (* flush remaining output, then close *)
  mutable eof : bool;  (* peer stopped sending *)
  mutable dead : bool;  (* close now, drop output *)
}

let try_flush c =
  if not c.dead then begin
    let s = Buffer.contents c.outbuf in
    if s <> "" then begin
      Buffer.clear c.outbuf;
      let n =
        try Unix.write_substring c.fd s 0 (String.length s) with
        | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> 0
        | Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
            c.dead <- true;
            String.length s
      in
      if n < String.length s then
        Buffer.add_substring c.outbuf s n (String.length s - n)
    end
  end

let push_frame c f =
  if not c.dead then
    List.iter (fun f -> Buffer.add_string c.outbuf (P.encode f)) (P.clamp f)

(* Longest conceivable frame: ~32 header bytes + max_payload + 1.  More
   buffered input without a complete frame is not a slow client, it is
   garbage that happens to avoid every parse error — cut it off. *)
let max_inbuf = P.max_payload + 128

let abort_conn c msg =
  List.iter (push_frame c) (violation msg);
  c.closing <- true;
  c.inbuf <- "";
  conn_ev "protocol-error" c.id

let drain_input c =
  let rec go pos =
    (* [abort_conn] empties [c.inbuf], so a violation must stop the
       scan here — recursing (or trimming from [pos]) would index past
       the cleared buffer *)
    if c.closing then ()
    else if pos >= String.length c.inbuf then
      c.inbuf <- String.sub c.inbuf pos (String.length c.inbuf - pos)
    else
      match P.decode ~pos c.inbuf with
      | Ok (f, n) ->
          if f.P.kind <> P.K_req then abort_conn c (bad_frame_kind f.P.kind)
          else begin
            Queue.add
              (Result.map_error
                 (fun m -> P.err_frame P.Bad_request m)
                 (P.parse_request f.P.payload))
              c.pending;
            go (pos + n)
          end
      | Error P.Truncated ->
          c.inbuf <- String.sub c.inbuf pos (String.length c.inbuf - pos);
          if String.length c.inbuf > max_inbuf then
            abort_conn c "frame larger than any the protocol allows"
      | Error e -> abort_conn c (Fmt.str "%a" P.pp_error e)
  in
  go 0

(* --- daemon state and loop ----------------------------------------- *)

type state = {
  sessions : Session.t;
  mutable listeners : (endpoint * Unix.file_descr) list;
  mutable conns : conn list;
  group : Resilience.Group.t;
  mutable next_id : int;
  mutable draining : bool;  (* byes queued, listeners closed *)
  quiet : bool;
}

let note state fmt =
  if state.quiet then Fmt.kstr ignore fmt
  else Fmt.kstr (fun m -> Fmt.epr "corechase serve: %s@.%!" m) fmt

let resolve_host h =
  if h = "" then raise Not_found;
  try Unix.inet_addr_of_string h
  with Failure _ -> (Unix.gethostbyname h).Unix.h_addr_list.(0)

(* A live daemon owns this path iff something accepts on it; anything
   else there (a stale socket from a crash, a leftover file) is
   reclaimed — but never yank a running server's socket out from under
   it. *)
let unix_path_live path =
  Sys.file_exists path
  &&
  let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close probe with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error (_, _, _) -> false)

let bind_one ep =
  match ep with
  | Unix_sock path when unix_path_live path ->
      Error
        (Fmt.str "%s: address already in use (another server is accepting)"
           (endpoint_to_string ep))
  | Unix_sock path -> (
      (try if Sys.file_exists path then Sys.remove path with Sys_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      try
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        Unix.set_nonblock fd;
        Ok fd
      with Unix.Unix_error (e, _, _) ->
        Unix.close fd;
        Error (Fmt.str "%s: %s" (endpoint_to_string ep) (Unix.error_message e)))
  | Tcp (host, port) -> (
      match resolve_host host with
      | exception _ -> Error (Fmt.str "tcp:%s:%d: unknown host" host port)
      | addr -> (
          let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
          try
            Unix.setsockopt fd Unix.SO_REUSEADDR true;
            Unix.bind fd (Unix.ADDR_INET (addr, port));
            Unix.listen fd 64;
            Unix.set_nonblock fd;
            Ok fd
          with Unix.Unix_error (e, _, _) ->
            Unix.close fd;
            Error
              (Fmt.str "%s: %s" (endpoint_to_string ep) (Unix.error_message e))))

let bind_all endpoints =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | ep :: rest -> (
        match bind_one ep with
        | Ok fd -> go ((ep, fd) :: acc) rest
        | Error e ->
            List.iter (fun (_, fd) -> Unix.close fd) acc;
            Error e)
  in
  go [] endpoints

let accept_burst state lfd =
  let rec go () =
    match Unix.accept ~cloexec:true lfd with
    | fd, _ ->
        Unix.set_nonblock fd;
        let id = state.next_id in
        state.next_id <- id + 1;
        let c =
          {
            id;
            fd;
            inbuf = "";
            outbuf = Buffer.create 256;
            token = Resilience.Group.token state.group;
            pending = Queue.create ();
            closing = false;
            eof = false;
            dead = false;
          }
        in
        push_frame c P.hello_frame;
        try_flush c;
        state.conns <- state.conns @ [ c ];
        Lazy.force m_conns |> Metrics.incr;
        conn_ev "accepted" id;
        go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((EMFILE | ENFILE | ECONNABORTED | EINTR), _, _)
      ->
        (* transient accept failure (fd exhaustion, aborted handshake):
           count it, note it, back off, keep serving the open conns *)
        Lazy.force m_accept_failures |> Metrics.incr;
        conn_ev "accept-failed" (-1);
        note state "accept failed (transient); backing off";
        Unix.sleepf 0.05
  in
  go ()

let read_conn c =
  let buf = Bytes.create 8192 in
  match Unix.read c.fd buf 0 8192 with
  | 0 -> c.eof <- true
  | n ->
      c.inbuf <- c.inbuf ^ Bytes.sub_string buf 0 n;
      drain_input c
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> c.dead <- true

(* Execute one connection's queued non-ENTAIL requests inline, in
   arrival order.  A CHASE streams its [event] frames live through
   [try_flush] from inside [Session.exec]. *)
let rec exec_inline state c =
  if not (c.closing || c.dead) then
    match Queue.take_opt c.pending with
    | None -> ()
    | Some entry ->
        (match entry with
        | Error f -> push_frame c f
        | Ok req ->
            if Atomic.get shutting && req <> P.Shutdown then
              push_frame c
                (P.err_frame P.Shutting_down "server is draining")
            else begin
              let final =
                Resilience.with_token (Some c.token) (fun () ->
                    Session.exec state.sessions
                      ~emit:(fun f ->
                        push_frame c f;
                        try_flush c)
                      req)
              in
              push_frame c final;
              (* arm the drain alarm too, not just the flag: a wire
                 SHUTDOWN must also force-close stuck peers eventually *)
              if req = P.Shutdown then request_shutdown ()
            end);
        try_flush c;
        exec_inline state c

(* One batch of snapshot readers across connections: the leading
   ENTAILs of every queue, each task under its connection's token. *)
let exec_batch state =
  let jobs = ref [] in
  List.iter
    (fun c ->
      if not (c.closing || c.dead || Atomic.get shutting) then
        let rec take () =
          match Queue.peek_opt c.pending with
          | Some (Ok (P.Entail { session; query })) ->
              ignore (Queue.take c.pending);
              (* validation and counter bumps happen here, on the loop *)
              jobs :=
                (c, Session.entail_task state.sessions ~session ~query)
                :: !jobs;
              take ()
          | _ -> ()
        in
        take ())
    state.conns;
  match List.rev !jobs with
  | [] -> ()
  | [ (c, task) ] ->
      (* a single reader needs no pool round-trip *)
      let frames = Resilience.with_token (Some c.token) task in
      List.iter (push_frame c) frames;
      try_flush c
  | jobs ->
      let tasks = Array.of_list (List.map snd jobs) in
      let tokens =
        Array.of_list (List.map (fun (c, _) -> Some c.token) jobs)
      in
      let results = Par.Batch.run ~site:"serve.entail" ~tokens tasks in
      List.iteri
        (fun i (c, _) ->
          (match results.(i) with
          | Ok frames -> List.iter (push_frame c) frames
          | Error e ->
              push_frame c (P.err_frame P.Io_error (Printexc.to_string e)));
          try_flush c)
        jobs

let close_listeners state =
  List.iter (fun (_, fd) -> try Unix.close fd with Unix.Unix_error _ -> ()) state.listeners;
  state.listeners <- []

let start_drain state =
  if not state.draining then begin
    state.draining <- true;
    note state "shutting down (draining %d connection(s))"
      (List.length state.conns);
    close_listeners state;
    List.iter
      (fun c ->
        if not (c.closing || c.dead || c.eof) then push_frame c bye;
        c.closing <- true;
        try_flush c)
      state.conns
  end

let reap state =
  let live, gone =
    List.partition
      (fun c ->
        if c.dead then false
        else if c.closing then
          (* pending requests will never execute once closing; only
             unflushed output keeps the connection around *)
          Buffer.length c.outbuf > 0
        else if c.eof then
          (* the peer half-closed: still answer what it already sent *)
          Buffer.length c.outbuf > 0 || not (Queue.is_empty c.pending)
        else true)
      state.conns
  in
  List.iter
    (fun c ->
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      Resilience.Token.cancel c.token;
      conn_ev "closed" c.id)
    gone;
  state.conns <- live

let serve config =
  match restore_sessions config.wal with
  | Error e -> Error e
  | Ok sessions -> (
  match bind_all config.endpoints with
  | Error e -> Error e
  | Ok [] -> Error "no --listen endpoint given"
  | Ok listeners ->
      Atomic.set shutting false;
      Atomic.set drain_expired false;
      drain_s := config.drain_timeout;
      let state =
        {
          sessions;
          listeners;
          conns = [];
          group = Resilience.Group.create ();
          next_id = 0;
          draining = false;
          quiet = config.quiet;
        }
      in
      active_group := Some state.group;
      let old_term =
        Sys.signal Sys.sigterm
          (Sys.Signal_handle (fun _ -> request_shutdown ()))
      in
      let old_int =
        Sys.signal Sys.sigint
          (Sys.Signal_handle (fun _ -> request_shutdown ()))
      in
      let old_alrm =
        Sys.signal Sys.sigalrm
          (Sys.Signal_handle (fun _ -> drain_deadline_hit ()))
      in
      let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
      (match config.ready_file with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          List.iter
            (fun (ep, _) ->
              output_string oc (endpoint_to_string ep);
              output_char oc '\n')
            listeners;
          close_out oc);
      List.iter
        (fun (ep, _) -> note state "listening on %s" (endpoint_to_string ep))
        state.listeners;
      if Session.count state.sessions > 0 then
        note state "recovered %d session(s) from the wal"
          (Session.count state.sessions);
      let rec loop () =
        if state.draining && state.conns = [] then ()
        else begin
          let reads =
            List.map snd state.listeners
            @ List.filter_map
                (fun c ->
                  if c.eof || c.dead || c.closing then None else Some c.fd)
                state.conns
          in
          let writes =
            List.filter_map
              (fun c ->
                if (not c.dead) && Buffer.length c.outbuf > 0 then Some c.fd
                else None)
              state.conns
          in
          let r, w, _ =
            try Unix.select reads writes [] 0.2
            with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
          in
          List.iter
            (fun (_, lfd) -> if List.mem lfd r then accept_burst state lfd)
            state.listeners;
          List.iter
            (fun c -> if List.mem c.fd r then read_conn c)
            state.conns;
          (* execute: the cross-connection reader batch first, then
             everything else inline per connection; only then queue the
             drain byes, so every reply precedes its connection's bye *)
          exec_batch state;
          List.iter (fun c -> exec_inline state c) state.conns;
          if Atomic.get shutting then start_drain state;
          List.iter (fun c -> if List.mem c.fd w then try_flush c) state.conns;
          (* past the drain deadline every connection has had its flush
             chances; whoever still holds output gets force-closed so
             the loop is guaranteed to terminate *)
          if Atomic.get drain_expired && state.draining then
            List.iter
              (fun c ->
                if (not c.dead) && Buffer.length c.outbuf > 0 then begin
                  c.dead <- true;
                  conn_ev "drain-expired" c.id
                end)
              state.conns;
          reap state;
          loop ()
        end
      in
      let finish () =
        ignore (Unix.alarm 0);
        List.iter
          (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
          state.conns;
        close_listeners state;
        List.iter
          (fun ep ->
            match ep with
            | Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
            | Tcp _ -> ())
          config.endpoints;
        (match config.ready_file with
        | Some path -> ( try Sys.remove path with Sys_error _ -> ())
        | None -> ());
        active_group := None;
        Sys.set_signal Sys.sigterm old_term;
        Sys.set_signal Sys.sigint old_int;
        Sys.set_signal Sys.sigalrm old_alrm;
        Sys.set_signal Sys.sigpipe old_pipe
      in
      Fun.protect ~finally:finish (fun () ->
          loop ();
          note state "bye");
      Ok ())

(* --- socket client ------------------------------------------------- *)

module Client = struct
  (* "\n" and "\\" escapes in request arguments, so multi-line payloads
     (ENTAIL, LOAD … inline) fit on a shell command line *)
  let unescape s =
    let b = Buffer.create (String.length s) in
    let rec go i =
      if i >= String.length s then Buffer.contents b
      else if s.[i] = '\\' && i + 1 < String.length s then begin
        (match s.[i + 1] with
        | 'n' -> Buffer.add_char b '\n'
        | '\\' -> Buffer.add_char b '\\'
        | c ->
            Buffer.add_char b '\\';
            Buffer.add_char b c);
        go (i + 2)
      end
      else begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
    in
    go 0

  (* resolution failures (gethostbyname Not_found, empty address list)
     become [Error], never an escaping exception — the CLI turns the
     string into its usual die path *)
  let sockaddr_of = function
    | Unix_sock path -> Ok (Unix.ADDR_UNIX path)
    | Tcp (host, port) -> (
        match resolve_host host with
        | addr -> Ok (Unix.ADDR_INET (addr, port))
        | exception _ ->
            Error (Fmt.str "tcp:%s:%d: unknown host" host port))

  let domain_of = function
    | Unix_sock _ -> Unix.PF_UNIX
    | Tcp _ -> Unix.PF_INET

  let connect ~wait_s ep =
    match sockaddr_of ep with
    | Error e -> Error e
    | Ok addr ->
        let deadline = Unix.gettimeofday () +. wait_s in
        let rec go () =
          let fd =
            Unix.socket ~cloexec:true (domain_of ep) Unix.SOCK_STREAM 0
          in
          match Unix.connect fd addr with
          | () -> Ok fd
          | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _)
            when Unix.gettimeofday () < deadline ->
              Unix.close fd;
              Unix.sleepf 0.05;
              go ()
          | exception Unix.Unix_error (e, _, _) ->
              Unix.close fd;
              Error
                (Fmt.str "%s: %s" (endpoint_to_string ep)
                   (Unix.error_message e))
          | exception e ->
              Unix.close fd;
              raise e
        in
        go ()

  exception Closed of string

  type reader = { fd : Unix.file_descr; mutable buf : string }

  let read_frame r =
    let chunk = Bytes.create 4096 in
    let rec go () =
      match P.decode r.buf with
      | Ok (f, n) ->
          r.buf <- String.sub r.buf n (String.length r.buf - n);
          f
      | Error P.Truncated -> (
          match Unix.read r.fd chunk 0 4096 with
          | 0 -> raise (Closed "connection closed by server")
          | n ->
              r.buf <- r.buf ^ Bytes.sub_string chunk 0 n;
              go ()
          | exception Unix.Unix_error (EINTR, _, _) -> go ())
      | Error e -> raise (Closed (Fmt.str "protocol error: %a" P.pp_error e))
    in
    go ()

  let send fd frame =
    let s = P.encode frame in
    let rec go off =
      if off < String.length s then
        match Unix.write_substring fd s off (String.length s - off) with
        | n -> go (off + n)
        | exception Unix.Unix_error (EINTR, _, _) -> go off
    in
    go 0

  let run ?(wait_s = 0.) ep reqs =
    match connect ~wait_s ep with
    | Error e -> Error e
    | Ok fd -> (
        let r = { fd; buf = "" } in
        let failed = ref false in
        let print_frame (f : P.frame) =
          match f.P.kind with
          | P.K_hello -> Fmt.pr "hello: %s@." f.P.payload
          | P.K_data -> Fmt.pr "%s@." f.P.payload
          | P.K_event -> Fmt.pr "event: %s@." f.P.payload
          | P.K_ok -> Fmt.pr "ok: %s@." f.P.payload
          | P.K_err ->
              failed := true;
              Fmt.pr "err: %s@." f.P.payload
          | P.K_bye -> Fmt.pr "bye@."
          | P.K_req -> Fmt.pr "req?: %s@." f.P.payload
        in
        let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
        match
          Fun.protect ~finally (fun () ->
              (match read_frame r with
              | { P.kind = P.K_hello; _ } as f -> print_frame f
              | f -> print_frame f);
              List.iter
                (fun req ->
                  send fd { P.kind = P.K_req; payload = unescape req };
                  let rec until_final () =
                    let f = read_frame r in
                    print_frame f;
                    match f.P.kind with
                    | P.K_ok | P.K_err -> ()
                    | P.K_bye -> raise (Closed "bye")
                    | _ -> until_final ()
                  in
                  until_final ())
                reqs)
        with
        | () -> Ok (if !failed then 1 else 0)
        | exception Closed "bye" -> Ok (if !failed then 1 else 0)
        | exception Closed m -> Error m)
end
