(** Unions of conjunctive queries.

    UCQs are preserved under homomorphisms, so everything the paper builds
    for CQs lifts verbatim (the abstract introduces universal models as
    deciding "all queries preserved under homomorphisms"): [K ⊨ ⋁ qᵢ] iff
    some disjunct maps into a universal model of [K]. *)

type t = private { name : string; disjuncts : Kb.Query.t list }

val make : ?name:string -> Kb.Query.t list -> t
(** @raise Invalid_argument on an empty disjunct list. *)

val disjuncts : t -> Kb.Query.t list

val name : t -> string

val of_query : Kb.Query.t -> t

val pp : t Fmt.t
(** Evaluation and entailment live in [Corechase.Entailment] (they need
    the homomorphism machinery of higher layers). *)
