(* Tests for lib/rclasses: position graphs, guardedness family, weak/joint
   acyclicity, rule dependencies, and agreement between syntactic
   certificates and chase behaviour. *)

open Syntax

let atom p args = Atom.make p args
let v h = Term.fresh_var ~hint:h ()

let rule ?name body head = Rule.make ?name ~body ~head ()

(* r(X,Y) → ∃Z r(Y,Z): the classic WA violation. *)
let chain_rule () =
  let x = v "X" and y = v "Y" and z = v "Z" in
  rule ~name:"chain" [ atom "r" [ x; y ] ] [ atom "r" [ y; z ] ]

(* p(X,Y) → ∃Z q(Y,Z); q(X,Y) → p(Y,X): WA? q[1] special from p-rule;
   q-rule moves q[0]→p[1], q[1]→p[0]; cycle p[1]→(special)q[1]→p[0]→?
   p-rule: p[0]=X not in head... p[1]=Y→q[0]. So q[1]→p[0]: p[0] dead end.
   No special cycle: weakly acyclic. *)
let wa_pair () =
  let x = v "X" and y = v "Y" and z = v "Z" in
  let r1 = rule ~name:"r1" [ atom "p" [ x; y ] ] [ atom "q" [ y; z ] ] in
  let x2 = v "X" and y2 = v "Y" in
  let r2 = rule ~name:"r2" [ atom "q" [ x2; y2 ] ] [ atom "p" [ y2; x2 ] ] in
  [ r1; r2 ]

(* ------------------------------------------------------------------ *)
(* Position utilities *)

let test_positions_of_var () =
  let x = v "X" and y = v "Y" in
  let aset = Atomset.of_list [ atom "p" [ x; y ]; atom "q" [ x ] ] in
  Alcotest.(check int) "x at two positions" 2
    (List.length (Rclasses.Position.positions_of_var x aset));
  Alcotest.(check int) "y at one" 1
    (List.length (Rclasses.Position.positions_of_var y aset))

let test_position_graph_edges () =
  let g = Rclasses.Position.Graph.build [ chain_rule () ] in
  (* frontier Y at r[1] moves to r[0]: ordinary edge; existential Z lands
     at r[1]: special edges from every body position of Y *)
  Alcotest.(check bool) "ordinary r[1]->r[0]" true
    (List.mem (("r", 1), ("r", 0)) (Rclasses.Position.Graph.ordinary_edges g));
  Alcotest.(check bool) "special r[1]=>r[1]" true
    (List.mem (("r", 1), ("r", 1)) (Rclasses.Position.Graph.special_edges g))

let test_affected_positions () =
  let affected = Rclasses.Position.affected_positions [ chain_rule () ] in
  (* Z lands at r[1]; then Y (occurring only at r[1] in the body... Y is at
     r[1] in body) propagates to its head position r[0] *)
  Alcotest.(check bool) "r[1] affected" true
    (List.exists (fun p -> Rclasses.Position.compare p ("r", 1) = 0) affected);
  Alcotest.(check bool) "r[0] affected via propagation" true
    (List.exists (fun p -> Rclasses.Position.compare p ("r", 0) = 0) affected)

let test_affected_positions_datalog_empty () =
  let x = v "X" and y = v "Y" in
  let r = rule [ atom "p" [ x; y ] ] [ atom "p" [ y; x ] ] in
  Alcotest.(check (list (pair string int))) "no affected positions" []
    (Rclasses.Position.affected_positions [ r ])

(* ------------------------------------------------------------------ *)
(* Guardedness family *)

let test_guardedness_flags () =
  let g = Rclasses.Guardedness.is_guarded in
  Alcotest.(check bool) "chain rule guarded (single body atom)" true
    (g (chain_rule ()));
  let x = v "X" and y = v "Y" and z = v "Z" in
  let two_atoms =
    rule [ atom "p" [ x; y ]; atom "q" [ y; z ] ] [ atom "s" [ x; z ] ]
  in
  Alcotest.(check bool) "no atom guards {x,y,z}" false (g two_atoms);
  Alcotest.(check bool) "not linear" false
    (Rclasses.Guardedness.is_linear two_atoms);
  Alcotest.(check bool) "frontier {x,z} unguarded" false
    (Rclasses.Guardedness.is_frontier_guarded two_atoms);
  let x2 = v "X" and y2 = v "Y" and w = v "W" in
  let fg =
    rule [ atom "p" [ x2; y2 ]; atom "q" [ y2; x2 ] ] [ atom "s" [ x2; y2; w ] ]
  in
  Alcotest.(check bool) "frontier-guarded" true
    (Rclasses.Guardedness.is_frontier_guarded fg);
  Alcotest.(check bool) "not frontier-one" false
    (Rclasses.Guardedness.is_frontier_one fg)

let test_weakly_guarded_datalog_trivially () =
  (* with no affected positions, every rule is weakly guarded *)
  let x = v "X" and y = v "Y" and z = v "Z" in
  let r = rule [ atom "p" [ x; y ]; atom "q" [ y; z ] ] [ atom "p" [ x; z ] ] in
  Alcotest.(check bool) "weakly guarded" true
    (Rclasses.Guardedness.ruleset_weakly_guarded [ r ]);
  Alcotest.(check bool) "but not guarded" false
    (Rclasses.Guardedness.ruleset_guarded [ r ])

let test_paper_rulesets_guardedness () =
  (* staircase rules: R1 is guarded (single body atom h(X,X)); R2 has body
     {h(X,X), v(X,X'), h(X',X'), h(X',Y')}: no guard for {X,X',Y'} *)
  let rules = Kb.rules (Zoo.Staircase.kb ()) in
  Alcotest.(check bool) "Σ_h not guarded" false
    (Rclasses.Guardedness.ruleset_guarded rules);
  let elevator = Kb.rules (Zoo.Elevator.kb ()) in
  Alcotest.(check bool) "Σ_v not guarded" false
    (Rclasses.Guardedness.ruleset_guarded elevator)

(* ------------------------------------------------------------------ *)
(* Weak / joint acyclicity *)

let test_weak_acyclicity () =
  Alcotest.(check bool) "chain not WA" false
    (Rclasses.Acyclicity.weakly_acyclic [ chain_rule () ]);
  Alcotest.(check bool) "pair WA" true
    (Rclasses.Acyclicity.weakly_acyclic (wa_pair ()));
  let x = v "X" and y = v "Y" in
  let datalog = rule [ atom "p" [ x; y ] ] [ atom "p" [ y; x ] ] in
  Alcotest.(check bool) "datalog WA" true
    (Rclasses.Acyclicity.weakly_acyclic [ datalog ])

let test_joint_acyclicity_subsumes_wa () =
  Alcotest.(check bool) "WA pair is JA" true
    (Rclasses.Acyclicity.jointly_acyclic (wa_pair ()));
  Alcotest.(check bool) "chain not JA" false
    (Rclasses.Acyclicity.jointly_acyclic [ chain_rule () ])

let test_joint_acyclicity_strictly_more () =
  (* classic JA-but-not-WA: r: p(X) → ∃Z q(X,Z); s: q(X,Y) ∧ q(Y,X) → p(Y)?
     Build one where a special cycle exists at position level but the
     Ω-propagation is blocked because a frontier var occurs at both an
     affected and an unaffected position. *)
  let x = v "X" and z = v "Z" in
  let r1 = rule ~name:"r1" [ atom "p" [ x ] ] [ atom "q" [ x; z ] ] in
  let x2 = v "X" and y2 = v "Y" in
  (* body q(Y,X) ∧ base(Y): Y occurs at q[0] (where nulls can be) AND at
     base[0] (never affected): Y cannot be a null, so no new p-null feed *)
  let r2 =
    rule ~name:"r2"
      [ atom "q" [ y2; x2 ]; atom "base" [ y2 ] ]
      [ atom "p" [ y2 ] ]
  in
  (* WA: q[1] special; q[1]→? r2: frontier Y at q[0],base[0] → p[0]; X2 at
     q[1] → not in head.  p[0] → q[0] ordinary, q[1] special.  Cycle
     q[1]⇒? q[1] reachable from p[0]... special edge p[0]⇒q[1]; from q[1]:
     r2's X2 at q[1] has no head occurrence → no outgoing: acyclic!  Make
     the WA-cycle real: let r2 use X2 in the head instead. *)
  let x3 = v "X" and y3 = v "Y" in
  let r2' =
    rule ~name:"r2'"
      [ atom "q" [ y3; x3 ]; atom "base" [ x3 ] ]
      [ atom "p" [ x3 ] ]
  in
  ignore r2;
  let rules = [ r1; r2' ] in
  Alcotest.(check bool) "not weakly acyclic" false
    (Rclasses.Acyclicity.weakly_acyclic rules);
  Alcotest.(check bool) "jointly acyclic" true
    (Rclasses.Acyclicity.jointly_acyclic rules)

let test_omega () =
  let r1 = chain_rule () in
  let z =
    List.hd (Rule.existential_vars r1)
  in
  let om = Rclasses.Acyclicity.omega [ r1 ] z in
  (* z lands at r[1], propagates through Y (only body position r[1]) to
     r[0]: Ω(z) = {r[0], r[1]} *)
  Alcotest.(check int) "Ω(z) has both positions" 2 (List.length om)

(* ------------------------------------------------------------------ *)
(* Dependencies *)

let test_dependency_pred_level () =
  let r1 = chain_rule () in
  Alcotest.(check bool) "chain self-depends (pred)" true
    (Rclasses.Dependency.may_depend_pred r1 ~on:r1);
  let x = v "X" in
  let other = rule [ atom "s" [ x ] ] [ atom "t" [ x ] ] in
  Alcotest.(check bool) "disjoint preds don't depend" false
    (Rclasses.Dependency.may_depend_pred other ~on:r1)

let test_dependency_frozen () =
  let r1 = chain_rule () in
  Alcotest.(check bool) "chain self-depends (frozen)" true
    (Rclasses.Dependency.depends_frozen r1 ~on:r1);
  (* r: p(X,Y) → p(Y,X) twice does NOT re-trigger itself (the second
     application is satisfied by symmetry) *)
  let x = v "X" and y = v "Y" in
  let sym = rule ~name:"sym" [ atom "p" [ x; y ] ] [ atom "p" [ y; x ] ] in
  Alcotest.(check bool) "sym does not usefully self-depend" false
    (Rclasses.Dependency.depends_frozen sym ~on:sym)

let test_agrd () =
  let x = v "X" and y = v "Y" and z = v "Z" in
  let r1 = rule ~name:"a" [ atom "p" [ x ] ] [ atom "q" [ x; y ] ] in
  let r2 = rule ~name:"b" [ atom "q" [ x; z ] ] [ atom "s" [ z ] ] in
  Alcotest.(check bool) "p→q→s pipeline acyclic" true
    (Rclasses.Dependency.agrd_sound [ r1; r2 ]);
  Alcotest.(check bool) "chain cyclic" false
    (Rclasses.Dependency.agrd_sound [ chain_rule () ])

let test_dependency_graphs_consistent () =
  (* frozen graph edges ⊆ predicate graph edges *)
  let rules = Kb.rules (Zoo.Elevator.kb ()) in
  let pg = Rclasses.Dependency.pred_graph rules in
  let fg = Rclasses.Dependency.frozen_graph rules in
  Alcotest.(check bool) "frozen ⊆ pred" true
    (List.for_all (fun e -> List.mem e pg) fg)

(* ------------------------------------------------------------------ *)
(* Facade & agreement with chase behaviour *)

let test_analyze_transitive_closure () =
  let r = Rclasses.analyze (Kb.rules (Zoo.Classic.transitive_closure ())) in
  Alcotest.(check bool) "datalog" true r.Rclasses.datalog;
  Alcotest.(check bool) "fes certificate" true (Rclasses.implies_fes r);
  Alcotest.(check bool) "core-bts certificate" true (Rclasses.implies_core_bts r)

let test_analyze_bts_not_fes () =
  let r = Rclasses.analyze (Kb.rules (Zoo.Classic.bts_not_fes ())) in
  Alcotest.(check bool) "guarded" true r.Rclasses.guarded;
  Alcotest.(check bool) "bts certificate" true (Rclasses.implies_bts r);
  Alcotest.(check bool) "no fes certificate" false (Rclasses.implies_fes r)

let test_analyze_guarded_ancestor () =
  let r = Rclasses.analyze (Kb.rules (Zoo.Classic.guarded_ancestor ())) in
  Alcotest.(check bool) "guarded" true r.Rclasses.guarded;
  Alcotest.(check bool) "not weakly acyclic" false r.Rclasses.weakly_acyclic

let test_syntactic_fes_matches_chase () =
  (* every ruleset certified fes must have a terminating core chase on the
     critical instance *)
  List.iter
    (fun (name, kb) ->
      let report = Rclasses.analyze (Kb.rules kb) in
      if Rclasses.implies_fes report then
        match
          Corechase.Probes.fes_probe
            ~budget:{ Chase.Variants.max_steps = 500; max_atoms = 5000 }
            (Kb.rules kb)
        with
        | Corechase.Probes.Terminates _ -> ()
        | Corechase.Probes.No_verdict _ ->
            Alcotest.failf "%s: fes certificate but chase did not terminate"
              name)
    (Zoo.Classic.all_named ())

let test_paper_kbs_have_no_syntactic_certificate () =
  (* the whole point of the paper: K_h and K_v escape the standard
     syntactic classes *)
  let rh = Rclasses.analyze (Kb.rules (Zoo.Staircase.kb ())) in
  let rv = Rclasses.analyze (Kb.rules (Zoo.Elevator.kb ())) in
  Alcotest.(check bool) "K_h: no fes certificate" false (Rclasses.implies_fes rh);
  Alcotest.(check bool) "K_v: no fes certificate" false (Rclasses.implies_fes rv)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "rclasses.position",
      [
        tc "positions of var" test_positions_of_var;
        tc "position graph edges" test_position_graph_edges;
        tc "affected positions" test_affected_positions;
        tc "datalog has none" test_affected_positions_datalog_empty;
      ] );
    ( "rclasses.guardedness",
      [
        tc "flags" test_guardedness_flags;
        tc "weakly guarded datalog" test_weakly_guarded_datalog_trivially;
        tc "paper rulesets" test_paper_rulesets_guardedness;
      ] );
    ( "rclasses.acyclicity",
      [
        tc "weak acyclicity" test_weak_acyclicity;
        tc "JA subsumes WA" test_joint_acyclicity_subsumes_wa;
        tc "JA strictly more" test_joint_acyclicity_strictly_more;
        tc "omega" test_omega;
      ] );
    ( "rclasses.dependency",
      [
        tc "pred-level" test_dependency_pred_level;
        tc "frozen" test_dependency_frozen;
        tc "aGRD" test_agrd;
        tc "graphs consistent" test_dependency_graphs_consistent;
      ] );
    ( "rclasses.facade",
      [
        tc "transitive closure" test_analyze_transitive_closure;
        tc "bts-not-fes" test_analyze_bts_not_fes;
        tc "guarded ancestor" test_analyze_guarded_ancestor;
        tc "fes certificates terminate" test_syntactic_fes_matches_chase;
        tc "paper KBs uncertified" test_paper_kbs_have_no_syntactic_certificate;
      ] );
  ]
