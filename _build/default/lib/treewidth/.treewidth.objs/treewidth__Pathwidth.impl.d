lib/treewidth/pathwidth.ml: Array Graph Hashtbl List Primal
