(** Regeneration of every figure and table of the paper (see DESIGN.md §3
    for the experiment index and EXPERIMENTS.md for paper-vs-measured).

    Each experiment prints a human-readable report of the measured series
    whose shape the paper's artwork depicts, and returns [true] iff every
    checked property held.  The [scale] parameter trades runtime for
    prefix length (1 = test-suite scale, 2–3 = bench scale). *)

val exp_f1 : ?scale:int -> Format.formatter -> bool
(** Figure 1: the class-membership matrix over the ruleset zoo —
    syntactic certificates (fes/bts), core-chase termination probes, and
    treewidth profiles, reproducing the Venn diagram's separations. *)

val exp_f2 : ?scale:int -> Format.formatter -> bool
(** Figure 2 / Propositions 3–5: the steepening staircase.  Core-chase
    treewidth series (uniform bound 2), restricted-vs-core instance sizes,
    and grid growth inside the natural aggregation. *)

val exp_f3 : ?scale:int -> Format.formatter -> bool
(** Figure 3 / Proposition 6: the inflating elevator KB and the
    correctness of the [I^v] generator (facts embed; unsatisfied triggers
    confined to the frontier). *)

val exp_f4 : ?scale:int -> Format.formatter -> bool
(** Figure 4 / Propositions 7–8, Corollary 1: [I^v*] has treewidth 1 at
    every prefix length; the growing cores [I^v_n] are cores with growing
    treewidth; the core chase's treewidth series grows. *)

val exp_f5 : ?scale:int -> Format.formatter -> bool
(** Figures 5–6 / Definitions 14–16, Propositions 10–12: the robust
    sequence of the staircase core chase — all commutation invariants, τ
    stabilisation, and the aggregation treewidth story (D⊛ bounded, D*
    unbounded). *)

val exp_t1 : ?scale:int -> Format.formatter -> bool
(** Table 1: replay the rule-application schedule turning column [C^h_k]
    into step [S^h_k] and check the result is isomorphic to the
    generator's step. *)

val all : (string * (?scale:int -> Format.formatter -> bool)) list
(** Every experiment, keyed by its DESIGN.md id ("F1".."F5", "T1"). *)

val run_all : ?scale:int -> Format.formatter -> bool
(** Run every experiment; [true] iff all pass. *)
